(* Tests for the wire-format model: sizes, constructors, validation and
   pretty-printing. *)

let data_tcp ?(payload = Packet.default_mss) ?(dss = None) () =
  {
    Packet.conn = 1;
    subflow = 0;
    kind = Packet.Data;
    seq = 1000;
    payload;
    ack = 0;
    sack = [];
    ece = false;
    dss;
    data_ack = 0;
  }

let sizes () =
  Alcotest.(check int) "header" 52 Packet.header_bytes;
  Alcotest.(check int) "mss" 1448 Packet.default_mss;
  let p =
    Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 (data_tcp ())
  in
  Alcotest.(check int) "full segment is 1500B on the wire" 1500 p.Packet.size;
  Alcotest.(check int) "wire bits" 12000 (Packet.wire_bits p);
  let ack =
    Packet.make_tcp ~id:2 ~src:1 ~dst:0 ~tag:1 ~born:0
      { (data_tcp ~payload:0 ()) with Packet.kind = Packet.Ack; ack = 2448 }
  in
  Alcotest.(check int) "pure ACK is header-only" 52 ack.Packet.size

let is_data () =
  let d = Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 (data_tcp ()) in
  Alcotest.(check bool) "data" true (Packet.is_data d);
  let a =
    Packet.make_tcp ~id:2 ~src:1 ~dst:0 ~tag:1 ~born:0
      { (data_tcp ~payload:0 ()) with Packet.kind = Packet.Ack }
  in
  Alcotest.(check bool) "ack is not data" false (Packet.is_data a);
  let plain = Packet.make_plain ~id:3 ~src:0 ~dst:1 ~tag:9 ~born:0 ~size:1500 in
  Alcotest.(check bool) "plain is not data" false (Packet.is_data plain)

let dss_consistency () =
  Alcotest.(check bool) "mismatched DSS rejected" true
    (try
       ignore
         (Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
            (data_tcp ~payload:100
               ~dss:(Some { Packet.dseq = 0; dlen = 99 })
               ()));
       false
     with Invalid_argument _ -> true);
  let ok =
    Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
      (data_tcp ~payload:100 ~dss:(Some { Packet.dseq = 500; dlen = 100 }) ())
  in
  match (Packet.tcp_exn ok).Packet.dss with
  | Some { Packet.dseq = 500; dlen = 100 } -> ()
  | _ -> Alcotest.fail "DSS not preserved"

let negative_payload () =
  Alcotest.(check bool) "negative payload rejected" true
    (try
       ignore
         (Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
            (data_tcp ~payload:(-1) ()));
       false
     with Invalid_argument _ -> true)

let plain_validation () =
  Alcotest.(check bool) "zero-size plain rejected" true
    (try
       ignore (Packet.make_plain ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 ~size:0);
       false
     with Invalid_argument _ -> true)

let tcp_exn_on_plain () =
  let p = Packet.make_plain ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0 ~size:100 in
  Alcotest.check_raises "tcp_exn on plain"
    (Invalid_argument "Packet.tcp_exn: not a TCP packet") (fun () ->
      ignore (Packet.tcp_exn p))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let pretty_printing () =
  let d =
    Packet.make_tcp ~id:7 ~src:0 ~dst:5 ~tag:2 ~born:0
      (data_tcp ~dss:(Some { Packet.dseq = 42; dlen = Packet.default_mss }) ())
  in
  let s = Format.asprintf "%a" Packet.pp d in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "pp mentions %S" fragment)
        true (contains ~needle:fragment s))
    [ "DATA"; "tag=2"; "dss=42" ]

(* --- freelist --- *)

let acquire ?pool ~id () =
  Packet.Pool.acquire_tcp ?pool ~id ~src:0 ~dst:1 ~tag:1 ~born:0 ~conn:1
    ~subflow:0 ~kind:Packet.Data ~seq:1000 ~payload:Packet.default_mss ~ack:0
    ~sack:[] ~ece:false ~dss:None ~data_ack:0 ()

let pool_recycles () =
  let pool = Packet.Pool.create () in
  let p = acquire ~pool ~id:1 () in
  Alcotest.(check int) "fresh size" 1500 p.Packet.size;
  Packet.Pool.release pool p;
  Alcotest.(check bool) "poisoned after release" true (Packet.is_poisoned p);
  let q = acquire ~pool ~id:2 () in
  Alcotest.(check bool) "record physically reused" true (p == q);
  Alcotest.(check int) "rebuilt id" 2 q.Packet.id;
  Alcotest.(check bool) "no longer poisoned" false (Packet.is_poisoned q);
  let s = Packet.Pool.stats pool in
  Alcotest.(check int) "acquired" 2 s.Packet.Pool.acquired;
  Alcotest.(check int) "recycled" 1 s.Packet.Pool.recycled;
  Alcotest.(check int) "released" 1 s.Packet.Pool.released;
  Alcotest.(check int) "live" 1 (Packet.Pool.live pool)

let pool_without_pool_allocates () =
  let p = acquire ~id:7 () in
  Alcotest.(check int) "plain constructor path" 7 p.Packet.id

let pool_double_release_counted () =
  let pool = Packet.Pool.create () in
  let p = acquire ~pool ~id:1 () in
  Packet.Pool.release pool p;
  Packet.Pool.release pool p;
  let s = Packet.Pool.stats pool in
  Alcotest.(check int) "counted once" 1 s.Packet.Pool.double_releases;
  Alcotest.(check int) "released once" 1 s.Packet.Pool.released;
  (* The freelist must not hand the same record out twice. *)
  let a = acquire ~pool ~id:2 () in
  let b = acquire ~pool ~id:3 () in
  Alcotest.(check bool) "distinct records" true (not (a == b))

let pool_debug_raises () =
  let pool = Packet.Pool.create ~debug:true () in
  let p = acquire ~pool ~id:1 () in
  Packet.Pool.release pool p;
  Alcotest.(check bool) "double release raises in debug" true
    (try
       Packet.Pool.release pool p;
       false
     with Failure _ -> true)

let pool_debug_scrubs () =
  let pool = Packet.Pool.create ~debug:true () in
  let p = acquire ~pool ~id:1 () in
  Packet.Pool.release pool p;
  Alcotest.(check int) "id poisoned" Packet.poison_id p.Packet.id;
  Alcotest.(check int) "src scrubbed" (-1) p.Packet.src;
  let s = Format.asprintf "%a" Packet.pp p in
  Alcotest.(check bool) "pp guards released records" true
    (contains ~needle:"released" s)

let copy_is_deep () =
  let p =
    Packet.make_tcp ~id:5 ~src:0 ~dst:1 ~tag:2 ~born:0
      (data_tcp ~dss:(Some { Packet.dseq = 10; dlen = Packet.default_mss }) ())
  in
  let c = Packet.copy p in
  Alcotest.(check bool) "fresh record" true (not (p == c));
  (match (p.Packet.body, c.Packet.body) with
  | Packet.Tcp a, Packet.Tcp b ->
    Alcotest.(check bool) "fresh tcp record" true (not (a == b));
    a.Packet.seq <- 9999;
    Alcotest.(check int) "copy unaffected by mutation" 1000 b.Packet.seq
  | _ -> Alcotest.fail "expected TCP bodies");
  p.Packet.id <- 42;
  Alcotest.(check int) "copy keeps original id" 5 c.Packet.id

let sack_bound_o1 () =
  let sack4 = [ (1, 2); (3, 4); (5, 6); (7, 8) ] in
  Alcotest.(check bool) "4 blocks rejected" true
    (try
       ignore
         (Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
            { (data_tcp ~payload:0 ()) with
              Packet.kind = Packet.Ack;
              sack = sack4 });
       false
     with Invalid_argument _ -> true);
  let sack3 = [ (1, 2); (3, 4); (5, 6) ] in
  let p =
    Packet.make_tcp ~id:1 ~src:0 ~dst:1 ~tag:1 ~born:0
      { (data_tcp ~payload:0 ()) with Packet.kind = Packet.Ack; sack = sack3 }
  in
  Alcotest.(check int) "3 blocks accepted" 3
    (List.length (Packet.tcp_exn p).Packet.sack)

let () =
  Alcotest.run "packet"
    [
      ( "packet",
        [
          Alcotest.test_case "wire sizes" `Quick sizes;
          Alcotest.test_case "is_data" `Quick is_data;
          Alcotest.test_case "DSS consistency enforced" `Quick dss_consistency;
          Alcotest.test_case "negative payload rejected" `Quick
            negative_payload;
          Alcotest.test_case "plain size validation" `Quick plain_validation;
          Alcotest.test_case "tcp_exn on plain raises" `Quick tcp_exn_on_plain;
          Alcotest.test_case "pretty printing" `Quick pretty_printing;
        ] );
      ( "pool",
        [
          Alcotest.test_case "acquire recycles released records" `Quick
            pool_recycles;
          Alcotest.test_case "acquire without a pool still works" `Quick
            pool_without_pool_allocates;
          Alcotest.test_case "double release counted, freelist safe" `Quick
            pool_double_release_counted;
          Alcotest.test_case "debug mode raises on double release" `Quick
            pool_debug_raises;
          Alcotest.test_case "debug mode scrubs released records" `Quick
            pool_debug_scrubs;
          Alcotest.test_case "copy is deep" `Quick copy_is_deep;
          Alcotest.test_case "SACK bound check is O(1)" `Quick sack_bound_o1;
        ] );
    ]
