(* Resident-daemon tests: wire-protocol codecs and framing, the
   in-process single-flight table, admission control, warm resubmission
   (zero simulation work, no domain respawn), concurrent-client dedup
   (exactly one fresh run), graceful drain with an in-flight batch, and
   the periodic store-GC pass holding the byte bound while batches
   append. *)

module P = Daemon.Protocol

let sexps s = Events.Sexp.parse_string s

(* Unique relative paths per daemon: dune sandboxes the test cwd, and
   short relative socket paths dodge the 108-byte sockaddr_un limit. *)
let fresh_conf =
  let counter = ref 0 in
  fun () ->
    incr counter;
    {
      (Daemon.default_conf
         ~socket_path:(Printf.sprintf "_dmn_%d.sock" !counter)
         ~store_dir:(Printf.sprintf "_dmn_store_%d" !counter))
      with
      Daemon.jobs = Some 1;
      log = false;
    }

let tiny_form ?(seed = 1) ?(cc = "cubic") label =
  Printf.sprintf
    "(preset (label %s) (cc %s) (seed %d) (duration-s 0.5) (sampling-ms 100))"
    label cc seed

let submit ?seed ?cc label = P.Submit (sexps (tiny_form ?seed ?cc label))

let batch_reply = function
  | P.Batch b -> b
  | P.Error (_, msg) -> Alcotest.failf "unexpected error reply: %s" msg
  | _ -> Alcotest.fail "expected a batch reply"

(* --- protocol codecs --- *)

let request_roundtrip () =
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "request survives render/parse" true
        (P.parse_request (P.render_request req) = req))
    [
      P.Submit (sexps "(preset (label x) (cc cubic) (seed 3))");
      P.Submit (sexps "(grid (ccs cubic lia) (seeds 1 2)) (status-also fine)");
      P.Status;
      P.Stats;
      P.Invalidate;
      P.Gc 4096;
      P.Gc 0;
      P.Drain;
    ]

let response_roundtrip () =
  let outcome kind =
    {
      P.kind;
      hash = String.make 32 'f';
      label = "golden-cubic";
      tail_mbps = 88.4;
      opt_mbps = 90.;
      sim_events = 51_204;
    }
  in
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response survives render/parse" true
        (P.parse_response (P.render_response resp) = resp))
    [
      P.Batch
        {
          P.outcomes = [ outcome P.Hit; outcome P.Fresh; outcome P.Shared ];
          entries = 3;
          hits = 1;
          fresh = 1;
          shared = 1;
          fresh_sim_events = 51_204;
        };
      P.Batch
        {
          P.outcomes = [];
          entries = 0;
          hits = 0;
          fresh = 0;
          shared = 0;
          fresh_sim_events = 0;
        };
      P.Status_reply
        {
          P.pid = 4242;
          draining = true;
          queue_depth = 7;
          inflight = 3;
          pool_domains = 4;
          store_records = 19;
        };
      P.Stats_reply
        {
          P.submissions = 12;
          served_entries = 40;
          s_hits = 30;
          s_fresh = 8;
          s_shared = 2;
          rejected = 1;
          protocol_errors = 5;
          gc_runs = 3;
          store_records = 19;
          store_bytes = 25_000;
          trend_entries = 40;
        };
      P.Invalidated 19;
      P.Gc_done
        {
          P.examined = 19;
          evicted = 11;
          evicted_bytes = 14_000;
          kept = 8;
          kept_bytes = 11_000;
        };
      P.Drained;
    ]

let error_roundtrip () =
  List.iter
    (fun kind ->
      match
        P.parse_response
          (P.render_response
             (P.Error (kind, "bad: (unbalanced \"quoted; text\")")))
      with
      | P.Error (kind', msg) ->
        Alcotest.(check bool) "error kind survives" true (kind = kind');
        Alcotest.(check bool) "error text survives" true
          (String.length msg > 0)
      | _ -> Alcotest.fail "error reply did not parse as an error")
    [ P.Parse; P.Version; P.Oversized; P.Busy; P.Draining; P.Failed ]

let float_precision () =
  let o =
    {
      P.kind = P.Fresh;
      hash = "h";
      label = "l";
      tail_mbps = 88.123456789012345;
      opt_mbps = 1. /. 3.;
      sim_events = 1;
    }
  in
  let resp =
    P.Batch
      {
        P.outcomes = [ o ];
        entries = 1;
        hits = 0;
        fresh = 1;
        shared = 0;
        fresh_sim_events = 1;
      }
  in
  match P.parse_response (P.render_response resp) with
  | P.Batch { P.outcomes = [ o' ]; _ } ->
    Alcotest.(check bool) "tail is bit-exact" true
      (o'.P.tail_mbps = o.P.tail_mbps);
    Alcotest.(check bool) "opt is bit-exact" true (o'.P.opt_mbps = o.P.opt_mbps)
  | _ -> Alcotest.fail "batch reply did not parse"

(* --- framing over a socketpair --- *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

let header n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let framing_roundtrip () =
  with_pair (fun a b ->
      P.write_frame a "hello (world)";
      P.write_frame a "";
      (match P.read_frame b with
      | P.Frame s -> Alcotest.(check string) "payload" "hello (world)" s
      | _ -> Alcotest.fail "expected a frame");
      (match P.read_frame b with
      | P.Frame s -> Alcotest.(check string) "empty payload" "" s
      | _ -> Alcotest.fail "expected the empty frame");
      Unix.close a;
      match P.read_frame b with
      | P.Eof -> ()
      | _ -> Alcotest.fail "clean close must read as Eof")

let framing_truncated () =
  with_pair (fun a b ->
      write_raw a (header 128 ^ String.make 40 'x');
      Unix.close a;
      match P.read_frame b with
      | P.Truncated -> ()
      | _ -> Alcotest.fail "mid-frame close must read as Truncated")

let framing_too_large () =
  with_pair (fun a b ->
      write_raw a (header (P.max_frame + 17));
      match P.read_frame b with
      | P.Too_large n ->
        Alcotest.(check int) "declared length" (P.max_frame + 17) n
      | _ -> Alcotest.fail "oversized prefix must read as Too_large")

let framing_idle_stop () =
  with_pair (fun _a b ->
      match P.read_frame ~idle_stop:(fun () -> true) b with
      | P.Idle_stop -> ()
      | _ -> Alcotest.fail "idle_stop must stop an idle read")

let framing_write_limit () =
  with_pair (fun a _b ->
      Alcotest.check_raises "oversized write refused"
        (Invalid_argument
           (Printf.sprintf "Protocol.write_frame: %d bytes > max_frame"
              (P.max_frame + 1)))
        (fun () -> P.write_frame a (String.make (P.max_frame + 1) 'x')))

(* --- the single-flight table --- *)

let flights_roles () =
  let f = Daemon.Flights.create () in
  match Daemon.Flights.enter f ~hash:"h" with
  | Daemon.Flights.Follower _ -> Alcotest.fail "first entrant must lead"
  | Daemon.Flights.Leader slot -> (
    Alcotest.(check int) "one flight open" 1 (Daemon.Flights.inflight f);
    match Daemon.Flights.enter f ~hash:"h" with
    | Daemon.Flights.Leader _ -> Alcotest.fail "second entrant must follow"
    | Daemon.Flights.Follower slot' ->
      Alcotest.(check int) "still one flight" 1 (Daemon.Flights.inflight f);
      Daemon.Flights.publish f ~hash:"h" slot (Error Exit);
      (match Daemon.Flights.wait f slot' with
      | Error Exit -> ()
      | _ -> Alcotest.fail "follower must see the published result");
      Alcotest.(check int) "flight retired" 0 (Daemon.Flights.inflight f);
      (* retired: the next entrant opens a fresh flight *)
      (match Daemon.Flights.enter f ~hash:"h" with
      | Daemon.Flights.Leader slot2 ->
        Daemon.Flights.publish f ~hash:"h" slot2 (Error Exit)
      | Daemon.Flights.Follower _ ->
        Alcotest.fail "a retired hash must lead again"))

let flights_cross_thread () =
  let f = Daemon.Flights.create () in
  match Daemon.Flights.enter f ~hash:"x" with
  | Daemon.Flights.Follower _ -> Alcotest.fail "first entrant must lead"
  | Daemon.Flights.Leader slot ->
    let got = ref None in
    let waiter =
      Thread.create
        (fun () ->
          match Daemon.Flights.enter f ~hash:"x" with
          | Daemon.Flights.Follower s ->
            got := Some (Daemon.Flights.wait f s)
          | Daemon.Flights.Leader _ -> ())
        ()
    in
    Thread.delay 0.05;
    Daemon.Flights.publish f ~hash:"x" slot (Error Not_found);
    Thread.join waiter;
    (match !got with
    | Some (Error Not_found) -> ()
    | Some _ -> Alcotest.fail "waiter saw the wrong result"
    | None -> Alcotest.fail "waiter entered as leader or never waited")

(* --- daemon behaviour (in-process handle + sockets) --- *)

let with_daemon ?(conf = fresh_conf ()) ?(serve = false) f =
  let t = Daemon.start conf in
  let server = if serve then Some (Thread.create Daemon.serve t) else None in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (Daemon.handle t P.Drain) with _ -> ());
      match server with
      | Some th -> Thread.join th
      | None ->
        (* no serve loop: its cleanup never ran, so mimic it *)
        (try Sys.remove conf.Daemon.socket_path with Sys_error _ -> ()))
    (fun () -> f conf t)

let warm_resubmission () =
  with_daemon (fun _conf t ->
      Engine.Pool.reset_global_stats ();
      let pools0 = Engine.Pool.global_pools () in
      let b1 = batch_reply (Daemon.handle t (submit "warm")) in
      Alcotest.(check int) "first pass simulates" 1 b1.P.fresh;
      Alcotest.(check bool) "first pass did work" true
        (b1.P.fresh_sim_events > 0);
      let b2 = batch_reply (Daemon.handle t (submit "warm")) in
      Alcotest.(check int) "second pass all hits" 1 b2.P.hits;
      Alcotest.(check int)
        "second pass does zero simulation work" 0 b2.P.fresh_sim_events;
      Alcotest.(check int)
        "no pool was respawned between submissions" pools0
        (Engine.Pool.global_pools ());
      match Daemon.handle t P.Stats with
      | P.Stats_reply s ->
        Alcotest.(check int) "two submissions counted" 2 s.P.submissions;
        Alcotest.(check int) "one fresh, one hit" 1 s.P.s_fresh;
        Alcotest.(check int) "trend logged both passes" 2 s.P.trend_entries
      | _ -> Alcotest.fail "expected a stats reply")

let concurrent_clients_dedup () =
  with_daemon (fun _conf t ->
      let req = submit ~seed:7 "dedup" in
      let r1 = ref None and r2 = ref None in
      let client r () = r := Some (Daemon.handle t req) in
      let a = Thread.create (client r1) () in
      let b = Thread.create (client r2) () in
      Thread.join a;
      Thread.join b;
      let kinds =
        List.concat_map
          (fun r ->
            match !r with
            | Some (P.Batch b) -> List.map (fun o -> o.P.kind) b.P.outcomes
            | _ -> Alcotest.fail "a client did not get a batch reply")
          [ r1; r2 ]
      in
      let count k = List.length (List.filter (( = ) k) kinds) in
      Alcotest.(check int) "exactly one fresh run" 1 (count P.Fresh);
      Alcotest.(check int)
        "the other client shared or hit" 1
        (count P.Hit + count P.Shared);
      Alcotest.(check int) "one record stored" 1
        (Serve.Store.count (Daemon.store t)))

let admission_bound () =
  with_daemon
    ~conf:{ (fresh_conf ()) with Daemon.max_queue = 1 }
    (fun _conf t ->
      (match
         Daemon.handle t
           (P.Submit
              (sexps (tiny_form "one" ^ " " ^ tiny_form ~seed:2 "two")))
       with
      | P.Error (P.Busy, _) -> ()
      | _ -> Alcotest.fail "a 2-entry batch must bounce off max_queue 1");
      match Daemon.handle t P.Stats with
      | P.Stats_reply s ->
        Alcotest.(check int) "rejection counted" 1 s.P.rejected
      | _ -> Alcotest.fail "expected a stats reply")

let bad_requests_over_socket () =
  let conf = fresh_conf () in
  with_daemon ~conf ~serve:true (fun conf t ->
      let socket = conf.Daemon.socket_path in
      (* malformed batch forms inside a well-formed request *)
      (match
         P.call_once ~socket (P.Submit (sexps "(preset (cc warp-speed))"))
       with
      | P.Error ((P.Parse | P.Failed), _) -> ()
      | _ -> Alcotest.fail "a bad batch must get a typed error");
      (* empty submissions are refused, not simulated *)
      (match P.call_once ~socket (P.Submit []) with
      | P.Error ((P.Parse | P.Failed), _) -> ()
      | _ -> Alcotest.fail "an empty batch must get a typed error");
      (* a negative gc budget is the store's Invalid_argument, typed *)
      (match P.call_once ~socket (P.Gc (-1)) with
      | P.Error (P.Failed, _) -> ()
      | _ -> Alcotest.fail "a negative budget must get a typed error");
      (* and the daemon still serves fine afterwards *)
      (match P.call_once ~socket P.Status with
      | P.Status_reply s ->
        Alcotest.(check bool) "not draining" false s.P.draining
      | _ -> Alcotest.fail "status after bad requests failed");
      ignore t)

let drain_with_in_flight () =
  let conf = fresh_conf () in
  let t = Daemon.start conf in
  let server = Thread.create Daemon.serve t in
  let reply = ref None in
  let client =
    Thread.create
      (fun () ->
        reply :=
          Some
            (P.call_once ~socket:conf.Daemon.socket_path
               (submit ~seed:11 "drainee")))
      ()
  in
  (* wait until the submission is actually in flight *)
  let rec wait_busy tries =
    if tries = 0 then Alcotest.fail "submission never became in-flight";
    match Daemon.handle t P.Status with
    | P.Status_reply s when s.P.queue_depth > 0 -> ()
    | _ ->
      Thread.delay 0.01;
      wait_busy (tries - 1)
  in
  wait_busy 1000;
  Daemon.initiate_drain t;
  (* new work is refused with the typed drain error *)
  (match Daemon.handle t (submit "latecomer") with
  | P.Error (P.Draining, _) -> ()
  | _ -> Alcotest.fail "a submission during drain must be refused");
  Thread.join client;
  Thread.join server;
  (* the in-flight client got its complete reply *)
  (match !reply with
  | Some (P.Batch b) ->
    Alcotest.(check int) "in-flight batch completed" 1 b.P.fresh;
    Alcotest.(check bool) "with real work" true (b.P.fresh_sim_events > 0)
  | _ -> Alcotest.fail "the in-flight client lost its reply");
  (* the socket is gone and the results landed durably *)
  Alcotest.(check bool)
    "socket unlinked" false
    (Sys.file_exists conf.Daemon.socket_path);
  let st = Serve.Store.open_store ~dir:conf.Daemon.store_dir in
  Alcotest.(check int) "record persisted" 1 (Serve.Store.count st);
  let entries, _ = Serve.Trend.load ~dir:conf.Daemon.store_dir in
  Alcotest.(check int) "trend flushed" 1 (List.length entries)

let periodic_gc_bounds_store () =
  let budget = 3_000 in
  let conf =
    {
      (fresh_conf ()) with
      Daemon.gc_max_bytes = Some budget;
      gc_interval_s = 0.1;
    }
  in
  (* serve so the helper threads run; submissions go in-process *)
  with_daemon ~conf ~serve:true (fun _conf t ->
      (* keep appending batches; after each one the periodic pass must
         bring the store back under the byte bound *)
      List.iter
        (fun seed ->
          let b =
            batch_reply
              (Daemon.handle t
                 (submit ~seed (Printf.sprintf "gc-%d" seed)))
          in
          Alcotest.(check int) "each batch simulates" 1 b.P.fresh;
          let rec wait_bound tries =
            if Serve.Store.bytes (Daemon.store t) <= budget then ()
            else if tries = 0 then
              Alcotest.failf "store stayed over budget: %d > %d bytes"
                (Serve.Store.bytes (Daemon.store t))
                budget
            else begin
              Thread.delay 0.05;
              wait_bound (tries - 1)
            end
          in
          wait_bound 100)
        [ 21; 22; 23; 24 ];
      Alcotest.(check bool) "the gc pass actually ran" true
        (Serve.Store.evicted_total (Daemon.store t) > 0);
      match Daemon.handle t P.Stats with
      | P.Stats_reply s ->
        Alcotest.(check bool) "gc runs counted" true (s.P.gc_runs > 0)
      | _ -> Alcotest.fail "expected a stats reply")

let () =
  Alcotest.run "daemon"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick response_roundtrip;
          Alcotest.test_case "error roundtrip" `Quick error_roundtrip;
          Alcotest.test_case "float precision" `Quick float_precision;
        ] );
      ( "framing",
        [
          Alcotest.test_case "roundtrip and eof" `Quick framing_roundtrip;
          Alcotest.test_case "truncated" `Quick framing_truncated;
          Alcotest.test_case "too large" `Quick framing_too_large;
          Alcotest.test_case "idle stop" `Quick framing_idle_stop;
          Alcotest.test_case "write limit" `Quick framing_write_limit;
        ] );
      ( "flights",
        [
          Alcotest.test_case "leader and follower" `Quick flights_roles;
          Alcotest.test_case "cross-thread wait" `Quick flights_cross_thread;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "warm resubmission is free" `Slow
            warm_resubmission;
          Alcotest.test_case "concurrent clients dedup" `Slow
            concurrent_clients_dedup;
          Alcotest.test_case "admission bound" `Quick admission_bound;
          Alcotest.test_case "bad requests over the socket" `Quick
            bad_requests_over_socket;
          Alcotest.test_case "drain with in-flight batch" `Slow
            drain_with_in_flight;
          Alcotest.test_case "periodic gc bounds the store" `Slow
            periodic_gc_bounds_store;
        ] );
    ]
