(* Tests for the top-level reproduction API: the paper network's
   analytics, scenario determinism, figure generation, and (as Alcotest
   `Slow cases) the headline qualitative results of the paper. *)

let check_float = Alcotest.(check (float 1e-6))

(* --- Paper_net --- *)

let paper_optimum () =
  let opt = Core.Paper_net.optimum () in
  check_float "90 Mbps" 90e6 opt.Netgraph.Constraints.total_bps;
  let x = opt.Netgraph.Constraints.per_path_bps in
  check_float "x1" 10e6 x.(0);
  check_float "x2" 30e6 x.(1);
  check_float "x3" 50e6 x.(2)

let paper_greedy () =
  check_float "from path 2: 80" 80.0 (Core.Paper_net.greedy_total_mbps ~default:2);
  check_float "from path 1: 60" 60.0 (Core.Paper_net.greedy_total_mbps ~default:1);
  check_float "from path 3: 80" 80.0 (Core.Paper_net.greedy_total_mbps ~default:3)

let paper_tagged_default () =
  let topo = Core.Paper_net.topology () in
  List.iter
    (fun d ->
      match Core.Paper_net.tagged_paths ~default:d topo with
      | (tag, _) :: _ -> Alcotest.(check int) "default first" d tag
      | [] -> Alcotest.fail "no paths")
    [ 1; 2; 3 ];
  Alcotest.(check bool) "bad default rejected" true
    (try ignore (Core.Paper_net.tagged_paths ~default:4 topo); false
     with Invalid_argument _ -> true)

let paper_shortest_is_path2 () =
  (* Path 2 must be the default shortest path, as in the paper. *)
  let topo = Core.Paper_net.topology () in
  let s = Netgraph.Topology.node_id topo "s" in
  let d = Netgraph.Topology.node_id topo "d" in
  match
    Netgraph.Shortest.shortest_path topo ~src:s ~dst:d
      ~weight:Netgraph.Shortest.delay_ns
  with
  | Some p ->
    let path2 = List.nth (Core.Paper_net.paths topo) 1 in
    Alcotest.(check bool) "shortest = path 2" true (Netgraph.Path.equal p path2)
  | None -> Alcotest.fail "unreachable"

(* --- Scenario --- *)

let quick_spec ?(cc = Mptcp.Algorithm.Cubic) ?(seed = 1) ?(duration = 2) () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  Core.Scenario.make ~topo ~paths ~cc ~duration:(Engine.Time.s duration)
    ~sampling:(Engine.Time.ms 100) ~seed ()

let scenario_deterministic () =
  let r1 = Core.Scenario.run (quick_spec ()) in
  let r2 = Core.Scenario.run (quick_spec ()) in
  Alcotest.(check int) "same event count" r1.Core.Scenario.events_processed
    r2.Core.Scenario.events_processed;
  Alcotest.(check int) "same delivery" r1.Core.Scenario.delivered_bytes
    r2.Core.Scenario.delivered_bytes;
  Measure.Series.iteri r1.Core.Scenario.total ~f:(fun i _ v ->
      check_float "identical series" v
        (Measure.Series.value_at r2.Core.Scenario.total i))

let scenario_seed_matters () =
  let r1 = Core.Scenario.run (quick_spec ~seed:1 ()) in
  let r2 = Core.Scenario.run (quick_spec ~seed:2 ()) in
  (* The RED/rng split keeps streams per link; with drop-tail the seed
     only affects rng-split order... event counts may coincide, so check
     the weaker property: runs complete and produce sane totals. *)
  Alcotest.(check bool) "both deliver" true
    (r1.Core.Scenario.delivered_bytes > 0
     && r2.Core.Scenario.delivered_bytes > 0)

let scenario_reports_subflows () =
  let r = Core.Scenario.run (quick_spec ()) in
  Alcotest.(check int) "three subflows" 3 (List.length r.Core.Scenario.subflows);
  Alcotest.(check (list int)) "tags with default 2 first" [ 2; 1; 3 ]
    (List.map (fun s -> s.Core.Scenario.tag) r.Core.Scenario.subflows);
  List.iter
    (fun s ->
      Alcotest.(check bool) "each subflow sent" true
        (s.Core.Scenario.segments_sent > 0))
    r.Core.Scenario.subflows;
  (* Wire capture per tag is at least the subflow's acked payload. *)
  Alcotest.(check bool) "per-tag series present" true
    (List.length r.Core.Scenario.per_tag = 3)

let scenario_total_is_sum () =
  let r = Core.Scenario.run (quick_spec ()) in
  let sum = Measure.Series.sum (List.map snd r.Core.Scenario.per_tag) in
  Measure.Series.iteri r.Core.Scenario.total ~f:(fun i _ v ->
      Alcotest.(check (float 1e-6)) "total = sum of paths" v
        (Measure.Series.value_at sum i))

let scenario_feasibility () =
  (* Measured per-path wire rates can never exceed the LP region by more
     than the ACK/header slack: check each path's tail against its own
     bottleneck. *)
  let r = Core.Scenario.run (quick_spec ~duration:4 ()) in
  let topo = r.Core.Scenario.spec.Core.Scenario.topo in
  List.iteri
    (fun i (_, series) ->
      let cap_mbps =
        float_of_int
          (Netgraph.Path.bottleneck_bps topo
             (List.nth (List.map snd r.Core.Scenario.spec.Core.Scenario.paths) i))
        /. 1e6
      in
      Alcotest.(check bool)
        (Printf.sprintf "path %d below its bottleneck" (i + 1))
        true
        (Measure.Series.mean_from series ~from_s:3.0 < cap_mbps +. 2.0))
    r.Core.Scenario.per_tag

let scenario_trace () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  let spec =
    Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
      ~duration:(Engine.Time.ms 200) ~trace_limit:1000 ()
  in
  let r = Core.Scenario.run spec in
  match r.Core.Scenario.trace_text with
  | None -> Alcotest.fail "trace requested but absent"
  | Some text ->
    Alcotest.(check bool) "trace has content" true (String.length text > 100);
    Alcotest.(check bool) "mentions the destination" true
      (String.split_on_char '\n' text
       |> List.exists (fun l -> String.length l > 2 && String.sub l 0 1 = "0"))

(* --- Figures --- *)

let figures_all_present () =
  let figs = Core.Figures.all ~seed:1 () in
  Alcotest.(check (list string)) "ids" [ "1"; "1c"; "2a"; "2b"; "2c" ]
    (List.map (fun f -> f.Core.Figures.id) figs);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "figure %s has a chart" f.Core.Figures.id)
        true
        (String.length f.Core.Figures.chart > 0))
    figs

let figure_lookup () =
  Alcotest.(check bool) "2a found" true (Core.Figures.by_id "2a" <> None);
  Alcotest.(check bool) "unknown is None" true (Core.Figures.by_id "9z" = None)

let figure_csv_wellformed () =
  let f = Core.Figures.fig2a ~seed:1 () in
  let lines = String.split_on_char '\n' (String.trim f.Core.Figures.csv) in
  (* header + one row per 100 ms window over 4 s *)
  Alcotest.(check int) "41 lines" 41 (List.length lines);
  Alcotest.(check string) "header" "time_s,path1,path2,path3,total"
    (List.hd lines);
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int)
          (Printf.sprintf "row %d has 5 columns" i)
          5
          (List.length (String.split_on_char ',' line)))
    lines

let fig2c_shape () =
  let f = Core.Figures.fig2c ~seed:1 () in
  match f.Core.Figures.result with
  | None -> Alcotest.fail "fig2c must carry a measured result"
  | Some r ->
    Alcotest.(check int) "50 windows of 10 ms" 50
      (Measure.Series.length r.Core.Scenario.total);
    (* The default path (tag 2, 40 Mbps bottleneck) must dominate the
       first half second, as in the paper. *)
    let tail t = Measure.Series.mean_from (List.assoc t r.Core.Scenario.per_tag)
        ~from_s:0.2 in
    Alcotest.(check bool) "path 2 is active early" true (tail 2 > 10.0)

(* --- headline results (slower: several seconds of simulated time) --- *)

let residency r =
  (* Fraction of post-slow-start windows at or near the optimum — the
     robust version of "found and kept the optimal throughput". *)
  Measure.Converge.fraction_above r.Core.Scenario.total
    ~target:(Core.Scenario.optimal_total_mbps r) ~tolerance:0.05 ~from_s:2.0 ()

let cubic_reaches_optimum () =
  (* Paper section 3: the default CUBIC always reached the optimum, with
     transient instability afterwards. *)
  let r = Core.Scenario.run (quick_spec ~cc:Mptcp.Algorithm.Cubic ~duration:8 ()) in
  (match Core.Scenario.time_to_optimum_s r with
  | Some t -> Alcotest.(check bool) "within the run" true (t < 8.0)
  | None -> Alcotest.fail "CUBIC should reach the optimum");
  Alcotest.(check bool)
    (Printf.sprintf "high residency near 90 (%.2f)" (residency r))
    true (residency r > 0.7);
  Alcotest.(check bool) "tail well above the greedy Pareto point" true
    (Core.Scenario.tail_mean_mbps r > 82.0)

let lia_stays_below_cubic () =
  (* Paper section 3: LIA never could reach the optimum.  In this
     simulator LIA brushes the optimum occasionally but cannot hold it:
     its residency stays far below CUBIC's. *)
  let lia = Core.Scenario.run (quick_spec ~cc:Mptcp.Algorithm.Lia ~duration:20 ()) in
  let cubic = Core.Scenario.run (quick_spec ~cc:Mptcp.Algorithm.Cubic ~duration:20 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "lia residency %.2f << cubic %.2f" (residency lia)
       (residency cubic))
    true
    (residency lia +. 0.15 < residency cubic);
  Alcotest.(check bool)
    (Printf.sprintf "lia tail %.1f below 88" (Core.Scenario.tail_mean_mbps lia))
    true
    (Core.Scenario.tail_mean_mbps lia < 88.0)

let olia_slower_than_cubic () =
  (* Fig. 2a vs 2b: within the 4 s window CUBIC has found the optimum,
     OLIA has not. *)
  let olia = Core.Scenario.run (quick_spec ~cc:Mptcp.Algorithm.Olia ~duration:4 ()) in
  let cubic = Core.Scenario.run (quick_spec ~cc:Mptcp.Algorithm.Cubic ~duration:4 ()) in
  let t_olia = Core.Scenario.time_to_optimum_s olia in
  let t_cubic = Core.Scenario.time_to_optimum_s cubic in
  Alcotest.(check bool) "cubic reached within 4 s" true (t_cubic <> None);
  Alcotest.(check bool) "olia has not reached by 4 s" true (t_olia = None)

let olia_depends_on_default_path () =
  (* Paper section 3: OLIA could reach the optimum only when Path 2 was
     the default.  With Path 1 as default it stays on a suboptimal (but
     stable) plateau for the whole 20 s run. *)
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:1 topo in
  let spec =
    Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Olia
      ~duration:(Engine.Time.s 20) ~sampling:(Engine.Time.ms 100) ()
  in
  let r = Core.Scenario.run spec in
  Alcotest.(check bool) "never reaches the optimum" true
    (Core.Scenario.time_to_optimum_s r = None);
  Alcotest.(check bool)
    (Printf.sprintf "plateau below optimum (%.1f)" (Core.Scenario.tail_mean_mbps r))
    true
    (Core.Scenario.tail_mean_mbps r < 86.0
     && Core.Scenario.tail_mean_mbps r > 60.0)

(* --- Scaling extension --- *)

let scaling_two_paths () =
  (* n = 2 with spread caps: one shared 35 Mbps bottleneck; optimum is
     simply 35, and any algorithm should fill it. *)
  let rows =
    Core.Scaling.sweep ~ns:[ 2 ] ~ccs:[ Mptcp.Algorithm.Cubic ]
      ~duration:(Engine.Time.s 8) ()
  in
  match rows with
  | [ row ] ->
    Alcotest.(check (float 1e-3)) "optimum 35" 35.0 row.Core.Scaling.optimal_mbps;
    Alcotest.(check bool)
      (Printf.sprintf "filled (%.2f)" row.Core.Scaling.ratio)
      true
      (row.Core.Scaling.ratio > 0.85)
  | _ -> Alcotest.fail "expected one row"

let scaling_ratios_sane () =
  let rows =
    Core.Scaling.sweep ~ns:[ 3; 4 ] ~ccs:Mptcp.Algorithm.[ Cubic; Lia ]
      ~duration:(Engine.Time.s 8) ()
  in
  Alcotest.(check int) "rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d %s ratio %.2f in (0.5, 1.02]" r.Core.Scaling.n
           (Mptcp.Algorithm.name r.Core.Scaling.cc)
           r.Core.Scaling.ratio)
        true
        (r.Core.Scaling.ratio > 0.5 && r.Core.Scaling.ratio <= 1.02))
    rows

let delayed_ack_scenario () =
  (* Delayed ACKs must not break the paper scenario, only reduce the ACK
     load; the totals stay in the same band. *)
  let r =
    Core.Scenario.run
      (let topo = Core.Paper_net.topology () in
       let paths = Core.Paper_net.tagged_paths ~default:2 topo in
       Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
         ~delayed_ack:true ~duration:(Engine.Time.s 6) ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "still near the optimum (%.1f)" (Core.Scenario.tail_mean_mbps r))
    true
    (Core.Scenario.tail_mean_mbps r > 75.0)

(* --- Summary --- *)

let summary_single_cell () =
  let rows =
    Core.Summary.sweep ~ccs:[ Mptcp.Algorithm.Cubic ] ~defaults:[ 2 ]
      ~seeds:[ 1 ] ~duration:(Engine.Time.s 6) ()
  in
  match rows with
  | [ row ] ->
    Alcotest.(check int) "one seed" 1 row.Core.Summary.seeds;
    Alcotest.(check int) "cubic reached" 1 row.Core.Summary.reached;
    Alcotest.(check bool) "tail near optimum" true
      (row.Core.Summary.mean_tail_mbps > 78.0);
    let csv = Core.Summary.to_csv rows in
    Alcotest.(check bool) "csv rows" true
      (List.length (String.split_on_char '\n' (String.trim csv)) = 2)
  | _ -> Alcotest.fail "expected exactly one row"

(* --- Runner / parallel determinism --- *)

let runner_jobs_deterministic () =
  (* The tentpole guarantee: a sweep split across 4 domains must render
     byte-identically to the serial one — every scenario seeds its own
     Sched/Rng from the spec alone. *)
  let sweep jobs =
    Core.Summary.sweep
      ~ccs:Mptcp.Algorithm.[ Cubic; Lia ]
      ~defaults:[ 1; 2 ] ~seeds:[ 1 ]
      ~duration:(Engine.Time.s 2) ~jobs ()
  in
  let render rows = Format.asprintf "%a" Core.Summary.pp_table rows in
  let serial = sweep 1 and parallel = sweep 4 in
  Alcotest.(check string) "rendered tables identical" (render serial)
    (render parallel);
  Alcotest.(check string) "CSV identical" (Core.Summary.to_csv serial)
    (Core.Summary.to_csv parallel)

let runner_scenarios_deterministic () =
  let specs = List.map (fun seed -> quick_spec ~seed ~duration:1 ()) [ 1; 2; 3; 4 ] in
  let summaries jobs =
    Core.Runner.scenarios ~jobs specs
    |> List.map (fun r ->
           ( r.Core.Scenario.events_processed,
             r.Core.Scenario.delivered_bytes,
             Format.asprintf "%a" Core.Scenario.pp_summary r ))
  in
  Alcotest.(check bool) "jobs:1 = jobs:4" true (summaries 1 = summaries 4)

let runner_pool_deterministic () =
  (* The freelist is per-Net and sims stay serial inside a domain, so
     pooling must not perturb parallel determinism: the same batch on 1
     and 4 domains yields identical results AND identical pool traffic
     (acquire/recycle/release counts and wire-id totals). *)
  let specs =
    List.map (fun seed -> quick_spec ~seed ~duration:1 ()) [ 1; 2; 3 ]
  in
  let fingerprint jobs =
    Core.Runner.scenarios ~jobs specs
    |> List.map (fun r ->
           let s = r.Core.Scenario.pool_stats in
           ( r.Core.Scenario.events_processed,
             r.Core.Scenario.delivered_bytes,
             r.Core.Scenario.packets_created,
             ( s.Packet.Pool.acquired,
               s.Packet.Pool.recycled,
               s.Packet.Pool.released,
               s.Packet.Pool.double_releases ) ))
  in
  let f1 = fingerprint 1 and f4 = fingerprint 4 in
  Alcotest.(check bool) "pool counters identical for jobs 1 and 4" true
    (f1 = f4);
  List.iter
    (fun (_, _, created, (acquired, recycled, released, doubles)) ->
      Alcotest.(check int) "no double releases" 0 doubles;
      Alcotest.(check bool) "pool actually used" true (acquired > 0);
      Alcotest.(check bool) "recycling actually happens" true (recycled > 0);
      Alcotest.(check bool) "released within acquired" true
        (released <= acquired);
      Alcotest.(check bool) "wire ids cover pooled acquisitions" true
        (created >= acquired))
    f1

let runner_propagates_failures () =
  let boom = Invalid_argument "Scenario.make: no paths" in
  Alcotest.check_raises "spec validation escapes the pool" boom (fun () ->
      let topo = Core.Paper_net.topology () in
      ignore
        (Core.Runner.map ~jobs:2
           (fun _ -> Core.Scenario.make ~topo ~paths:[] ~cc:Mptcp.Algorithm.Cubic ())
           [ 1; 2 ]))

let figures_parallel_match () =
  let strip (f : Core.Figures.figure) = (f.Core.Figures.id, f.Core.Figures.chart, f.Core.Figures.csv) in
  Alcotest.(check bool) "charts identical across jobs" true
    (List.map strip (Core.Figures.all ~seed:1 ~jobs:1 ())
    = List.map strip (Core.Figures.all ~seed:1 ~jobs:4 ()))

let () =
  Alcotest.run "core"
    [
      ( "paper-net",
        [
          Alcotest.test_case "LP optimum (10,30,50), 90 total" `Quick
            paper_optimum;
          Alcotest.test_case "greedy Pareto totals" `Quick paper_greedy;
          Alcotest.test_case "default path selection" `Quick
            paper_tagged_default;
          Alcotest.test_case "path 2 is the shortest path" `Quick
            paper_shortest_is_path2;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "bit-for-bit determinism" `Quick
            scenario_deterministic;
          Alcotest.test_case "seeds vary safely" `Quick scenario_seed_matters;
          Alcotest.test_case "subflow reports" `Quick scenario_reports_subflows;
          Alcotest.test_case "total equals per-path sum" `Quick
            scenario_total_is_sum;
          Alcotest.test_case "rates respect bottlenecks" `Quick
            scenario_feasibility;
          Alcotest.test_case "packet trace on demand" `Quick scenario_trace;
        ] );
      ( "figures",
        [
          Alcotest.test_case "all five figures render" `Quick
            figures_all_present;
          Alcotest.test_case "lookup by id" `Quick figure_lookup;
          Alcotest.test_case "figure CSV well-formed" `Quick
            figure_csv_wellformed;
          Alcotest.test_case "fig 2c sampling shape" `Quick fig2c_shape;
        ] );
      ( "headline",
        [
          Alcotest.test_case "CUBIC reaches the 90 Mbps optimum" `Slow
            cubic_reaches_optimum;
          Alcotest.test_case "LIA stays at or below CUBIC" `Slow
            lia_stays_below_cubic;
          Alcotest.test_case "OLIA slower than CUBIC (Fig. 2b)" `Slow
            olia_slower_than_cubic;
          Alcotest.test_case "OLIA stuck when Path 1 is default" `Slow
            olia_depends_on_default_path;
        ] );
      ( "summary",
        [ Alcotest.test_case "single sweep cell" `Slow summary_single_cell ] );
      ( "runner",
        [
          Alcotest.test_case "sweep identical for jobs 1 and 4" `Slow
            runner_jobs_deterministic;
          Alcotest.test_case "scenario batch identical for jobs 1 and 4"
            `Quick runner_scenarios_deterministic;
          Alcotest.test_case "pool counters identical for jobs 1 and 4"
            `Quick runner_pool_deterministic;
          Alcotest.test_case "job failures propagate" `Quick
            runner_propagates_failures;
          Alcotest.test_case "figures identical across jobs" `Slow
            figures_parallel_match;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "scaling: n=2 trivially filled" `Slow
            scaling_two_paths;
          Alcotest.test_case "scaling: ratios sane for n=3,4" `Slow
            scaling_ratios_sane;
          Alcotest.test_case "delayed ACKs keep the scenario intact" `Slow
            delayed_ack_scenario;
        ] );
    ]
