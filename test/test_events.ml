(* Conformance tier for the dynamic-events workload pack: the scenario
   DSL parser, the Path_manager liveness registry, and golden
   goodput/completion-time pins for the headline dynamic scenarios —
   primary-path kill mid-transfer (MPTCP reroutes, single-path TCP
   stalls), WiFi->LTE handover, and the 10% lossy-link regime.  Every
   dynamic run executes under the full invariant audit, so the new
   link.down-delivery and subflow-churn checks are exercised here too. *)

open Events.Sexp

let parse = Events.Sexp.parse_string

let failover_topo () =
  Events.Parse.topology
    (parse
       {|
       ; slow primary through p1, fast backup through p2
       (topology
        (nodes a p1 p2 z)
        (links
         (a p1 (mbps 10) (delay-ms 5))
         (p1 z (mbps 10) (delay-ms 5))
         (a p2 (mbps 90) (delay-ms 5))
         (p2 z (mbps 90) (delay-ms 5))))|})

let both_paths topo =
  Mptcp.Path_manager.tag_paths
    [
      Netgraph.Path.of_names topo [ "a"; "p1"; "z" ];
      Netgraph.Path.of_names topo [ "a"; "p2"; "z" ];
    ]

(* Deep enough buffers that the 90 Mbps path runs near capacity; the
   examples/*.sexp files use the same setting. *)
let net_config = { Core.Scenario.default_net_config with limit_pkts = 64 }

let run_spec ?(scheduler = Mptcp.Scheduler.Min_rtt) ?events ?rto_cap ?duration
    ~paths ~total_bytes topo =
  Core.Scenario.run
    (Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Lia ~scheduler
       ?duration ~net_config ~total_bytes ~audit:true ?events ?rto_cap ())

let violations r =
  match r.Core.Scenario.audit with
  | None -> Alcotest.fail "audit report missing"
  | Some rep -> rep.Audit.total_violations

let check_clean name r = Alcotest.(check int) (name ^ ": audit") 0 (violations r)

let completed name r =
  match r.Core.Scenario.completed_at_s with
  | Some t -> t
  | None -> Alcotest.failf "%s: transfer did not complete" name

(* --- S-expression parser --- *)

let sexp_basics () =
  (match parse "(a (b c) d) e" with
  | [ List [ Atom "a"; List [ Atom "b"; Atom "c" ]; Atom "d" ]; Atom "e" ] ->
    ()
  | _ -> Alcotest.fail "unexpected parse");
  (match parse "; comment\n(x ; trailing\n 1.5)" with
  | [ List [ Atom "x"; Atom "1.5" ] ] -> ()
  | _ -> Alcotest.fail "comments not stripped");
  Alcotest.(check string)
    "round trip" "(a (b c) d)"
    (Events.Sexp.to_string (List.hd (parse "( a ( b c )\n d )")))

let sexp_errors () =
  let raises what input =
    match parse input with
    | exception Events.Sexp.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  raises "unbalanced open" "(a (b)";
  raises "unbalanced close" "a))";
  raises "empty input can't hide an open paren" "((()"

let parse_converters () =
  Alcotest.(check int)
    "mbps" 25_000_000
    (Events.Parse.rate_exn (List.hd (parse "(mbps 25)")));
  Alcotest.(check int)
    "bps" 1234 (Events.Parse.rate_exn (List.hd (parse "(bps 1234)")));
  Alcotest.(check bool)
    "ms" true
    (Events.Parse.duration_exn (List.hd (parse "(ms 40)")) = Engine.Time.ms 40);
  (match Events.Parse.time_of_s (-1.0) with
  | exception Events.Sexp.Parse_error _ -> ()
  | _ -> Alcotest.fail "negative time accepted");
  match Events.Parse.rate_exn (List.hd (parse "(mbps -3)")) with
  | exception Events.Sexp.Parse_error _ -> ()
  | _ -> Alcotest.fail "negative rate accepted"

let parse_actions () =
  let topo = failover_topo () in
  let evs =
    Events.Parse.events topo
      (parse
         {|(at-s 1 (link-down a p1))
           (at-s 2 (capacity-ramp a p2 (mbps 40) (over-s 2) (steps 8)))
           (at-s 2.5 (delay-set p1 z (ms 20)))
           (at-s 3 (loss-set a p1 0.1))
           (at-s 4 (subflow-close 0))
           (at-s 5 (traffic-start a z (tag 9) (mbps 20) (stop-s 8)))|})
  in
  Alcotest.(check int) "count" 6 (List.length evs);
  Alcotest.(check (list string))
    "validates" []
    (Events.Event.validate ~topo ~num_subflows:2 ~reserved_tags:[ 1; 2 ] evs);
  (match (List.hd evs).Events.Event.action with
  | Events.Event.Link_down { link } ->
    let expect =
      match Netgraph.Topology.find_link topo ~u:0 ~v:1 with
      | Some l -> l.Netgraph.Topology.id
      | None -> Alcotest.fail "a-p1 missing"
    in
    Alcotest.(check int) "link id" expect link
  | _ -> Alcotest.fail "first action not link-down");
  match
    Events.Parse.events topo (parse "(at-s 1 (link-down a nowhere))")
  with
  | exception Events.Sexp.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown node accepted"

let validate_rejects () =
  let topo = failover_topo () in
  let ev src = Events.Parse.events topo (parse src) in
  let expect_error what src =
    match
      Events.Event.validate ~topo ~num_subflows:2 ~reserved_tags:[ 1; 2 ]
        (ev src)
    with
    | [] -> Alcotest.failf "%s passed validation" what
    | _ -> ()
  in
  (* raising capacity above the declared topology rate would invalidate
     the static LP bound the audit checks against *)
  expect_error "capacity above declared" "(at-s 1 (capacity-set a p1 (mbps 20)))";
  expect_error "loss above 1" "(at-s 1 (loss-set a p1 1.5))";
  expect_error "subflow out of range" "(at-s 1 (subflow-close 7))";
  expect_error "reserved traffic tag" "(at-s 1 (traffic-start a z (tag 2) (mbps 1)))";
  Alcotest.(check (list string))
    "in-range events pass" []
    (Events.Event.validate ~topo ~num_subflows:2 ~reserved_tags:[ 1; 2 ]
       (ev "(at-s 1 (capacity-set a p1 (mbps 5)))"))

let expfile_examples () =
  (* every checked-in scenario file must parse and validate; cwd is
     test/ under `dune runtest` but the root under `dune exec` *)
  let dir =
    match
      List.find_opt
        (fun d -> Sys.file_exists (Filename.concat d "failover_topo.sexp"))
        [ "../examples"; "examples" ]
    with
    | Some d -> d
    | None -> Alcotest.fail "examples directory not found"
  in
  List.iter
    (fun (t, x) ->
      let _topo, spec =
        Core.Expfile.load
          ~topo_file:(Filename.concat dir t)
          ~xp_file:(Filename.concat dir x)
      in
      ignore (spec : Core.Scenario.spec))
    [
      ("failover_topo.sexp", "failover_xp.sexp");
      ("failover_topo.sexp", "tcp_killed_xp.sexp");
      ("failover_topo.sexp", "lossy_xp.sexp");
      ("handover_topo.sexp", "handover_xp.sexp");
    ]

(* --- Path_manager.Liveness (satellite: deactivate/reactivate hook) --- *)

let liveness_basics () =
  let topo = failover_topo () in
  let lv = Mptcp.Path_manager.Liveness.create (both_paths topo) in
  let log = ref [] in
  Mptcp.Path_manager.Liveness.set_on_change lv
    (Some (fun ~tag ~active -> log := (tag, active) :: !log));
  Alcotest.(check int) "all start active" 2
    (Mptcp.Path_manager.Liveness.active_count lv);
  Alcotest.(check bool) "deactivate transitions" true
    (Mptcp.Path_manager.Liveness.deactivate lv ~tag:1);
  Alcotest.(check bool) "deactivate is idempotent" false
    (Mptcp.Path_manager.Liveness.deactivate lv ~tag:1);
  Alcotest.(check bool) "now inactive" false
    (Mptcp.Path_manager.Liveness.is_active lv ~tag:1);
  Alcotest.(check bool) "other path untouched" true
    (Mptcp.Path_manager.Liveness.is_active lv ~tag:2);
  Alcotest.(check bool) "reactivate transitions" true
    (Mptcp.Path_manager.Liveness.reactivate lv ~tag:1);
  Alcotest.(check bool) "reactivate is idempotent" false
    (Mptcp.Path_manager.Liveness.reactivate lv ~tag:1);
  Alcotest.(check int) "churn counts transitions only" 2
    (Mptcp.Path_manager.Liveness.churn lv);
  Alcotest.(check (list (pair int bool)))
    "hook saw both transitions, in order"
    [ (1, false); (1, true) ]
    (List.rev !log);
  match Mptcp.Path_manager.Liveness.is_active lv ~tag:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown tag accepted"

(* --- Headline goldens --- *)

(* Primary-path kill at 50% of a 100 MB transfer: MPTCP must finish
   within 1.2x the no-failure completion time (the paper-level
   resilience claim), while a single-path flow pinned to the killed
   path never completes. *)
let failover_100mb () =
  let topo = failover_topo () in
  let total_bytes = 100_000_000 in
  let duration = Engine.Time.s 20 in
  let baseline =
    run_spec ~paths:(both_paths topo) ~total_bytes ~duration topo
  in
  check_clean "baseline" baseline;
  let t0 = completed "baseline" baseline in
  let kill_at = Engine.Time.of_float_s (t0 /. 2.0) in
  let link =
    match Netgraph.Topology.find_link topo ~u:0 ~v:1 with
    | Some l -> l.Netgraph.Topology.id
    | None -> Alcotest.fail "a-p1 missing"
  in
  let events = [ Events.Event.(at (Link_down { link }) ~at:kill_at) ] in
  let failover =
    run_spec ~paths:(both_paths topo) ~total_bytes ~duration ~events
      ~rto_cap:2 topo
  in
  check_clean "failover" failover;
  let t1 = completed "failover" failover in
  if t1 > 1.2 *. t0 then
    Alcotest.failf "failover too slow: %.2fs vs %.2fs no-failure (>1.2x)" t1
      t0;
  Alcotest.(check int) "one liveness transition" 1
    failover.Core.Scenario.subflow_churn;
  Alcotest.(check int) "every byte arrived" total_bytes
    failover.Core.Scenario.delivered_bytes;
  (* same kill, single path: stalls at whatever crossed before the cut *)
  let pinned =
    Mptcp.Path_manager.tag_paths [ Netgraph.Path.of_names topo [ "a"; "p1"; "z" ] ]
  in
  let stalled =
    run_spec ~paths:pinned ~total_bytes ~duration ~events topo
  in
  check_clean "single-path" stalled;
  (match stalled.Core.Scenario.completed_at_s with
  | None -> ()
  | Some t -> Alcotest.failf "single-path completed at %.2fs?!" t);
  (* 10 Mbps until the kill, then nothing: far below the total *)
  let ceiling =
    int_of_float (10e6 /. 8.0 *. (t0 /. 2.0 +. 1.0))
  in
  if stalled.Core.Scenario.delivered_bytes > ceiling then
    Alcotest.failf "single-path kept delivering after the kill: %d > %d"
      stalled.Core.Scenario.delivered_bytes ceiling

(* WiFi -> LTE handover: capacity ramp down, delay jump, then the
   association drops; the transfer must still complete, with the dead
   subflow detected (liveness churn). *)
let handover () =
  let topo =
    Events.Parse.topology
      (parse
         {|(topology
            (nodes phone wifi lte server)
            (links
             (phone wifi (mbps 50) (delay-ms 3))
             (phone lte (mbps 30) (delay-ms 25))
             (wifi server (mbps 100) (delay-ms 5))
             (lte server (mbps 100) (delay-ms 5))))|})
  in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "phone"; "wifi"; "server" ];
        Netgraph.Path.of_names topo [ "phone"; "lte"; "server" ];
      ]
  in
  let events =
    Events.Parse.events topo
      (parse
         {|(at-s 0.8 (capacity-ramp phone wifi (mbps 2) (over-s 1) (steps 5)))
           (at-s 1.5 (delay-set phone wifi (ms 40)))
           (at-s 2 (link-down phone wifi))|})
  in
  let r =
    run_spec ~paths ~total_bytes:30_000_000 ~duration:(Engine.Time.s 15)
      ~events ~rto_cap:2 topo
  in
  check_clean "handover" r;
  let t = completed "handover" r in
  if t < 2.0 then Alcotest.failf "finished before the handover (%.2fs)" t;
  Alcotest.(check int) "wifi subflow declared dead" 1
    r.Core.Scenario.subflow_churn;
  Alcotest.(check int) "every byte arrived" 30_000_000
    r.Core.Scenario.delivered_bytes

(* 10% random loss on the primary from 0.5 s: loss-based congestion
   control collapses there and the clean backup carries the load. *)
let lossy_regime () =
  let topo = failover_topo () in
  let events =
    Events.Parse.events topo (parse "(at-s 0.5 (loss-set a p1 0.1))")
  in
  let r =
    Core.Scenario.run
      (Core.Scenario.make ~topo ~paths:(both_paths topo)
         ~cc:Mptcp.Algorithm.Lia ~duration:(Engine.Time.s 4) ~net_config
         ~audit:true ~events ())
  in
  check_clean "lossy" r;
  let tails = Core.Scenario.per_path_tail_mbps r in
  let tail tag = List.assoc tag tails in
  if tail 1 > 2.0 then
    Alcotest.failf "lossy path still fast: %.1f Mbps" (tail 1);
  if tail 2 < 60.0 then
    Alcotest.failf "clean path under-used: %.1f Mbps" (tail 2);
  if tail 2 < 10.0 *. tail 1 then
    Alcotest.failf "load did not migrate: %.1f vs %.1f Mbps" (tail 2) (tail 1)

(* Link repair + subflow reactivation: down at 1 s kills the subflow
   (rto-cap), up at 2.5 s plus an explicit subflow-add brings it back —
   two liveness transitions and a completed transfer. *)
let down_up_recovery () =
  let topo = failover_topo () in
  let events =
    Events.Parse.events topo
      (parse
         {|(at-s 1 (link-down a p1))
           (at-s 2.5 (link-up a p1))
           (at-s 2.6 (subflow-add 0))|})
  in
  (* unbounded transfer so the tail window (last quarter of 10 s) sits
     well after the dead sender's backed-off retransmit reconnects *)
  let r =
    Core.Scenario.run
      (Core.Scenario.make ~topo ~paths:(both_paths topo)
         ~cc:Mptcp.Algorithm.Lia ~duration:(Engine.Time.s 10) ~net_config
         ~audit:true ~events ~rto_cap:2 ())
  in
  check_clean "down-up" r;
  Alcotest.(check int) "down then up" 2 r.Core.Scenario.subflow_churn;
  (* the revived path must carry real traffic again *)
  let tail1 = List.assoc 1 (Core.Scenario.per_path_tail_mbps r) in
  if tail1 < 4.0 then
    Alcotest.failf "revived subflow idle: %.1f Mbps tail" tail1

(* Dynamic runs are a pure function of the spec: same events, same
   result, bit for bit. *)
let dynamic_determinism () =
  let run () =
    let topo = failover_topo () in
    let events =
      Events.Parse.events topo
        (parse
           {|(at-s 0.4 (link-down a p1))
             (at-s 0.9 (capacity-set a p2 (mbps 40)))
             (at-s 1.3 (traffic-start p2 z (tag 9) (mbps 15) (stop-s 2.5)))|})
    in
    let r =
      run_spec ~paths:(both_paths topo) ~total_bytes:8_000_000
        ~duration:(Engine.Time.s 6) ~events ~rto_cap:2 topo
    in
    ( r.Core.Scenario.delivered_bytes,
      r.Core.Scenario.completed_at_s,
      r.Core.Scenario.subflow_churn,
      r.Core.Scenario.cross_traffic_bytes,
      r.Core.Scenario.events_processed,
      r.Core.Scenario.packets_created,
      violations r )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical replay" true (a = b);
  let _, completed_at, churn, cross, _, _, bad = a in
  Alcotest.(check int) "audit clean" 0 bad;
  Alcotest.(check int) "churn" 1 churn;
  Alcotest.(check bool) "transfer completed" true (completed_at <> None);
  Alcotest.(check bool) "cross traffic flowed" true (cross > 1_000_000)

let () =
  Alcotest.run "events"
    [
      ( "parser",
        [
          Alcotest.test_case "sexp basics" `Quick sexp_basics;
          Alcotest.test_case "sexp errors" `Quick sexp_errors;
          Alcotest.test_case "converters" `Quick parse_converters;
          Alcotest.test_case "actions" `Quick parse_actions;
          Alcotest.test_case "validate rejects" `Quick validate_rejects;
          Alcotest.test_case "example files load" `Quick expfile_examples;
        ] );
      ( "liveness",
        [ Alcotest.test_case "transitions and hook" `Quick liveness_basics ] );
      ( "golden",
        [
          Alcotest.test_case "failover 100MB" `Slow failover_100mb;
          Alcotest.test_case "wifi-lte handover" `Slow handover;
          Alcotest.test_case "lossy regime" `Slow lossy_regime;
          Alcotest.test_case "down-up recovery" `Slow down_up_recovery;
          Alcotest.test_case "determinism" `Slow dynamic_determinism;
        ] );
    ]
