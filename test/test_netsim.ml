(* Tests for the network simulator: exact link timing, FIFO queueing and
   tail drop, (dst, tag) forwarding, taps, RED behaviour, and the
   cross-traffic generators. *)

let ms = Engine.Time.ms
let us = Engine.Time.us
let mb = Netgraph.Topology.mbps

let fresh = ref 0

let plain ~src ~dst ?(tag = 1) ?(size = 1500) () =
  incr fresh;
  Packet.make_plain ~id:!fresh ~src ~dst ~tag ~born:0 ~size

(* Two-node fixture with one configurable link. *)
let two_nodes ?(capacity = mb 12) ?(delay = ms 1) ?(config = Netsim.Net.default_config) () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let z = Netgraph.Topology.add_node b "z" in
  let lid = Netgraph.Topology.add_link b ~u:a ~v:z ~capacity_bps:capacity ~delay in
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 1) ~config topo in
  Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:lid;
  Netsim.Net.install_route net ~node:z ~dst:a ~tag:1 ~link:lid;
  (sched, net, a, z, lid)

let link_timing_exact () =
  (* 1500 B at 12 Mbps = exactly 1 ms serialization + 1 ms propagation. *)
  let sched, net, a, z, _ = two_nodes () in
  let arrived = ref Engine.Time.zero in
  Netsim.Net.attach_host net ~node:z (fun _ -> arrived := Engine.Sched.now sched);
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Engine.Sched.run sched;
  Alcotest.(check int) "tx + prop" (ms 2) !arrived

let link_serializes_back_to_back () =
  (* Two packets: second arrives one serialization time after the first. *)
  let sched, net, a, z, _ = two_nodes () in
  let times = ref [] in
  Netsim.Net.attach_host net ~node:z (fun _ ->
      times := Engine.Sched.now sched :: !times);
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Engine.Sched.run sched;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check int) "first" (ms 2) t1;
    Alcotest.(check int) "second is one tx later" (ms 3) t2
  | _ -> Alcotest.fail "expected two arrivals"

let fifo_order () =
  let sched, net, a, z, _ = two_nodes () in
  let ids = ref [] in
  Netsim.Net.attach_host net ~node:z (fun p -> ids := p.Packet.id :: !ids);
  let sent = List.init 5 (fun _ ->
      let p = plain ~src:a ~dst:z () in
      Netsim.Net.inject net ~at:a p;
      p.Packet.id) in
  Engine.Sched.run sched;
  Alcotest.(check (list int)) "FIFO" sent (List.rev !ids)

let tail_drop_when_full () =
  let config = { Netsim.Net.default_config with Netsim.Net.limit_pkts = 5 } in
  let sched, net, a, z, lid = two_nodes ~config () in
  let count = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun _ -> incr count);
  (* Burst of 20 into a 5-packet buffer (+1 in the serializer). *)
  for _ = 1 to 20 do
    Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
  done;
  Engine.Sched.run sched;
  Alcotest.(check int) "delivered = buffer + in-service" 6 !count;
  let st = Netsim.Linkq.stats (Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd) in
  Alcotest.(check int) "dropped the rest" 14 st.Netsim.Linkq.dropped;
  Alcotest.(check int) "net-wide counter" 14 (Netsim.Net.total_drops net)

let full_duplex_independent () =
  (* Traffic in both directions at once must not interfere: each
     direction has its own serializer. *)
  let sched, net, a, z, _ = two_nodes () in
  let t_az = ref Engine.Time.zero and t_za = ref Engine.Time.zero in
  Netsim.Net.attach_host net ~node:z (fun _ -> t_az := Engine.Sched.now sched);
  Netsim.Net.attach_host net ~node:a (fun _ -> t_za := Engine.Sched.now sched);
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Netsim.Net.inject net ~at:z (plain ~src:z ~dst:a ());
  Engine.Sched.run sched;
  Alcotest.(check int) "a->z" (ms 2) !t_az;
  Alcotest.(check int) "z->a unaffected" (ms 2) !t_za

(* Three-node fixture to exercise forwarding by tag. *)
let triangle () =
  let b = Netgraph.Topology.builder () in
  let s = Netgraph.Topology.add_node b "s" in
  let m1 = Netgraph.Topology.add_node b "m1" in
  let m2 = Netgraph.Topology.add_node b "m2" in
  let d = Netgraph.Topology.add_node b "d" in
  let link u v =
    Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb 10) ~delay:(us 100)
  in
  let _ = link s m1 and _ = link s m2 in
  let _ = link m1 d and _ = link m2 d in
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 1) topo in
  (sched, net, topo, s, m1, m2, d)

let tag_forwarding () =
  let sched, net, topo, s, m1, m2, d = triangle () in
  Netsim.Net.install_path net ~tag:1 (Netgraph.Path.of_names topo [ "s"; "m1"; "d" ]);
  Netsim.Net.install_path net ~tag:2 (Netgraph.Path.of_names topo [ "s"; "m2"; "d" ]);
  let via1 = ref 0 and via2 = ref 0 in
  Netsim.Net.add_tap net ~node:m1 (fun _ -> incr via1);
  Netsim.Net.add_tap net ~node:m2 (fun _ -> incr via2);
  let delivered = ref 0 in
  Netsim.Net.attach_host net ~node:d (fun _ -> incr delivered);
  Netsim.Net.inject net ~at:s (plain ~src:s ~dst:d ~tag:1 ());
  Netsim.Net.inject net ~at:s (plain ~src:s ~dst:d ~tag:2 ());
  Netsim.Net.inject net ~at:s (plain ~src:s ~dst:d ~tag:2 ());
  Engine.Sched.run sched;
  Alcotest.(check int) "tag 1 via m1" 1 !via1;
  Alcotest.(check int) "tag 2 via m2" 2 !via2;
  Alcotest.(check int) "all delivered" 3 !delivered

let reverse_route_installed () =
  let sched, net, topo, s, _, _, d = triangle () in
  Netsim.Net.install_path net ~tag:1 (Netgraph.Path.of_names topo [ "s"; "m1"; "d" ]);
  let back = ref 0 in
  Netsim.Net.attach_host net ~node:s (fun _ -> incr back);
  Netsim.Net.inject net ~at:d (plain ~src:d ~dst:s ~tag:1 ());
  Engine.Sched.run sched;
  Alcotest.(check int) "reverse path works" 1 !back

let no_route_counted () =
  let sched, net, _, s, _, _, d = triangle () in
  Netsim.Net.inject net ~at:s (plain ~src:s ~dst:d ~tag:77 ());
  Engine.Sched.run sched;
  Alcotest.(check int) "no-route drop counted" 1 (Netsim.Net.no_route_drops net)

let install_route_validation () =
  let _, net, _, s, _, _, _ = triangle () in
  Alcotest.(check bool) "wrong endpoint rejected" true
    (try
       (* link 2 is m1-d; s is not an endpoint. *)
       Netsim.Net.install_route net ~node:s ~dst:0 ~tag:1 ~link:2;
       false
     with Invalid_argument _ -> true)

let double_host_rejected () =
  let _, net, _, s, _, _, _ = triangle () in
  Netsim.Net.attach_host net ~node:s (fun _ -> ());
  Alcotest.check_raises "second host"
    (Invalid_argument "Net.attach_host: host already attached") (fun () ->
      Netsim.Net.attach_host net ~node:s (fun _ -> ()))

let utilisation_counter () =
  let sched, net, a, z, lid = two_nodes () in
  Netsim.Net.attach_host net ~node:z (fun _ -> ());
  for _ = 1 to 6 do
    Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
  done;
  Engine.Sched.run ~until:(ms 12) sched;
  (* 6 ms of transmission over 12 ms elapsed = 50%. *)
  let q = Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd in
  Alcotest.(check (float 0.01)) "utilisation" 0.5
    (Netsim.Linkq.utilisation q ~now:(Engine.Sched.now sched))

let delay_jitter_spreads_arrivals () =
  (* With jitter on, inter-arrival times vary and may even reorder;
     without it the timing is exact. *)
  let run jitter =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let z = Netgraph.Topology.add_node b "z" in
    let lid = Netgraph.Topology.add_link b ~u:a ~v:z
        ~capacity_bps:(mb 100) ~delay:(ms 5) in
    let topo = Netgraph.Topology.build b in
    let sched = Engine.Sched.create () in
    let config = { Netsim.Net.qdisc = Netsim.Qdisc.Drop_tail; limit_pkts = 50;
                   delay_jitter = jitter } in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 7) ~config topo in
    Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:lid;
    let times = ref [] in
    Netsim.Net.attach_host net ~node:z (fun _ ->
        times := Engine.Sched.now sched :: !times);
    for _ = 1 to 20 do
      Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
    done;
    Engine.Sched.run sched;
    List.rev !times
  in
  let exact = run Engine.Time.zero in
  let gaps l = List.map2 (fun a b -> b - a) (List.filteri (fun i _ -> i < 19) l)
      (List.tl l) in
  let distinct l = List.length (List.sort_uniq compare l) in
  Alcotest.(check int) "exact timing: one gap value" 1 (distinct (gaps exact));
  let jittered = run (ms 2) in
  Alcotest.(check bool) "jitter: many gap values" true
    (distinct (gaps jittered) > 5);
  Alcotest.(check int) "all still delivered" 20 (List.length jittered)

(* --- link failure --- *)

let link_down_destroys_packets () =
  let sched, net, a, z, lid = two_nodes () in
  let delivered = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun _ -> incr delivered);
  Netsim.Net.set_link_up net ~link:lid false;
  Alcotest.(check bool) "reported down" false (Netsim.Net.link_is_up net ~link:lid);
  for _ = 1 to 5 do
    Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
  done;
  Engine.Sched.run sched;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  let st = Netsim.Linkq.stats (Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd) in
  Alcotest.(check int) "all counted as lost" 5 st.Netsim.Linkq.lost_down

let link_down_mid_flight () =
  (* A packet already past the serializer when the cut happens must not
     arrive. *)
  let sched, net, a, z, lid = two_nodes () in
  let delivered = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun _ -> incr delivered);
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  (* Serialization ends at 1 ms; cut at 1.5 ms, before the 2 ms arrival. *)
  ignore (Engine.Sched.at sched (Engine.Time.us 1500) (fun () ->
      Netsim.Net.set_link_up net ~link:lid false));
  Engine.Sched.run sched;
  Alcotest.(check int) "lost mid-flight" 0 !delivered

let link_restore () =
  let sched, net, a, z, lid = two_nodes () in
  let delivered = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun _ -> incr delivered);
  Netsim.Net.set_link_up net ~link:lid false;
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Netsim.Net.set_link_up net ~link:lid true;
  Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ());
  Engine.Sched.run sched;
  Alcotest.(check int) "flows again after restore" 1 !delivered

let link_down_flushes_queue () =
  let sched, net, a, z, lid = two_nodes () in
  Netsim.Net.attach_host net ~node:z (fun _ -> ());
  for _ = 1 to 10 do
    Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
  done;
  (* 9 packets queued behind the one in service. *)
  Netsim.Net.set_link_up net ~link:lid false;
  let q = Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd in
  Alcotest.(check int) "queue flushed" 0 (Netsim.Linkq.queue_pkts q);
  Alcotest.(check int) "flushed packets counted" 9
    (Netsim.Linkq.stats q).Netsim.Linkq.lost_down;
  Engine.Sched.run sched

(* Conservation: every injected packet is accounted for exactly once. *)
let qcheck_link_conservation =
  QCheck.Test.make ~name:"link conserves packets (enqueued+dropped, delivered)"
    ~count:100
    QCheck.(pair (1 -- 60) (2 -- 20))
    (fun (burst, limit) ->
      let config =
        { Netsim.Net.qdisc = Netsim.Qdisc.Drop_tail; limit_pkts = limit;
          delay_jitter = Engine.Time.zero }
      in
      let sched, net, a, z, lid = two_nodes ~config () in
      let delivered = ref 0 in
      Netsim.Net.attach_host net ~node:z (fun _ -> incr delivered);
      for _ = 1 to burst do
        Netsim.Net.inject net ~at:a (plain ~src:a ~dst:z ())
      done;
      Engine.Sched.run sched;
      let st =
        Netsim.Linkq.stats (Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd)
      in
      st.Netsim.Linkq.enqueued + st.Netsim.Linkq.dropped = burst
      && st.Netsim.Linkq.delivered = st.Netsim.Linkq.enqueued
      && !delivered = st.Netsim.Linkq.delivered)

(* --- qdisc --- *)

let red_drops_before_full () =
  (* Sustained overload: RED must drop early, drop-tail only when full. *)
  let run qdisc =
    let config = { Netsim.Net.qdisc; limit_pkts = 30; delay_jitter = Engine.Time.zero } in
    let sched, net, a, z, lid = two_nodes ~capacity:(mb 10) ~config () in
    Netsim.Net.attach_host net ~node:z (fun _ -> ());
    (* 15 Mbps into a 10 Mbps link for 2 s. *)
    let _ =
      Netsim.Traffic.cbr ~net ~src:a ~dst:z ~tag:1 ~rate_bps:(mb 15)
        ~stop_at:(Engine.Time.s 2) ()
    in
    Engine.Sched.run ~until:(Engine.Time.s 3) sched;
    let q = Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd in
    (Netsim.Linkq.stats q).Netsim.Linkq.dropped
  in
  let red = run (Netsim.Qdisc.Red Netsim.Qdisc.default_red) in
  let dt = run Netsim.Qdisc.Drop_tail in
  Alcotest.(check bool) "both drop under overload" true (red > 0 && dt > 0);
  (* RED keeps the average queue near min_th, so its drop count under the
     same offered load is at least as high as tail-drop's. *)
  Alcotest.(check bool) "red drops early" true (red >= dt)

let qdisc_unit () =
  let rng = Engine.Rng.create 3 in
  let st = Netsim.Qdisc.make_state Netsim.Qdisc.Drop_tail in
  Alcotest.(check bool) "drop-tail admits below limit" true
    (Netsim.Qdisc.admit Netsim.Qdisc.Drop_tail st ~queue_pkts:9 ~limit_pkts:10 ~rng);
  Alcotest.(check bool) "drop-tail drops at limit" false
    (Netsim.Qdisc.admit Netsim.Qdisc.Drop_tail st ~queue_pkts:10 ~limit_pkts:10 ~rng);
  let red = Netsim.Qdisc.Red Netsim.Qdisc.default_red in
  let st = Netsim.Qdisc.make_state red in
  (* With a persistently long queue, the EWMA average must eventually
     exceed max_th and force drops. *)
  let forced = ref false in
  for _ = 1 to 20_000 do
    if not (Netsim.Qdisc.admit red st ~queue_pkts:25 ~limit_pkts:100 ~rng) then
      forced := true
  done;
  Alcotest.(check bool) "red eventually drops" true !forced;
  Alcotest.(check bool) "avg tracked" true (Netsim.Qdisc.avg_queue st > 15.0)

let codel_defeats_bufferbloat () =
  (* CoDel's design case: a responsive TCP flow through a deep buffer.
     Drop-tail lets CUBIC fill all 100 packets (~120 ms of standing
     queue); CoDel holds the sojourn near its 5 ms target while keeping
     the link busy. *)
  let run qdisc =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let z = Netgraph.Topology.add_node b "z" in
    ignore
      (Netgraph.Topology.add_link b ~u:a ~v:z ~capacity_bps:(mb 10)
         ~delay:(ms 5));
    let topo = Netgraph.Topology.build b in
    let sched = Engine.Sched.create () in
    let config = { Netsim.Net.qdisc; limit_pkts = 100;
                   delay_jitter = Engine.Time.zero } in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 4) ~config topo in
    Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:0;
    Netsim.Net.install_route net ~node:z ~dst:a ~tag:1 ~link:0;
    let src = Tcp.Endpoint.create net ~node:a in
    let dst = Tcp.Endpoint.create net ~node:z in
    let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 () in
    Engine.Sched.run ~until:(Engine.Time.s 12) sched;
    let srtt =
      match Tcp.Sender.srtt (Tcp.Flow.sender flow) with
      | Some v -> v
      | None -> 0
    in
    (srtt, Tcp.Flow.bytes_delivered flow)
  in
  let dt_rtt, dt_bytes = run Netsim.Qdisc.Drop_tail in
  let cd_rtt, cd_bytes = run (Netsim.Qdisc.Codel Netsim.Qdisc.default_codel) in
  Alcotest.(check bool)
    (Printf.sprintf "drop-tail bufferbloat visible (srtt %.1f ms)"
       (float_of_int dt_rtt /. 1e6))
    true
    (dt_rtt > ms 60);
  Alcotest.(check bool)
    (Printf.sprintf "codel tames it (srtt %.1f ms)"
       (float_of_int cd_rtt /. 1e6))
    true
    (cd_rtt < ms 30);
  Alcotest.(check bool)
    (Printf.sprintf "throughput preserved (%.1f vs %.1f MB)"
       (float_of_int cd_bytes /. 1e6)
       (float_of_int dt_bytes /. 1e6))
    true
    (float_of_int cd_bytes > 0.85 *. float_of_int dt_bytes)

let codel_idle_below_target () =
  (* A trickle that never builds a queue must never be dropped. *)
  let config = { Netsim.Net.qdisc = Netsim.Qdisc.Codel Netsim.Qdisc.default_codel;
                 limit_pkts = 30; delay_jitter = Engine.Time.zero } in
  let sched, net, a, z, lid = two_nodes ~capacity:(mb 10) ~config () in
  let got = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun _ -> incr got);
  let _ = Netsim.Traffic.cbr ~net ~src:a ~dst:z ~tag:1 ~rate_bps:(mb 2)
      ~stop_at:(Engine.Time.s 2) () in
  Engine.Sched.run sched;
  let st = Netsim.Linkq.stats (Netsim.Net.linkq net ~link:lid ~dir:Netsim.Net.Fwd) in
  Alcotest.(check int) "no drops below target" 0 st.Netsim.Linkq.dropped;
  Alcotest.(check bool) "everything arrives" true (!got > 300)

(* --- traffic --- *)

let cbr_rate () =
  let sched, net, a, z, _ = two_nodes ~capacity:(mb 100) () in
  let bytes = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun p -> bytes := !bytes + p.Packet.size);
  let src =
    Netsim.Traffic.cbr ~net ~src:a ~dst:z ~tag:1 ~rate_bps:(mb 12)
      ~stop_at:(Engine.Time.s 1) ()
  in
  Engine.Sched.run ~until:(Engine.Time.s 2) sched;
  (* 12 Mbps for 1 s = 1.5 MB (1000 packets of 1500 B; the tick at
     exactly t = 1 s is past stop_at). *)
  Alcotest.(check int) "packets" 1000 (Netsim.Traffic.packets_sent src);
  Alcotest.(check bool) "delivered about 1.5 MB" true
    (!bytes >= 1_499_000 && !bytes <= 1_502_000)

let cbr_stop () =
  let sched, net, a, z, _ = two_nodes () in
  Netsim.Net.attach_host net ~node:z (fun _ -> ());
  let src = Netsim.Traffic.cbr ~net ~src:a ~dst:z ~tag:1 ~rate_bps:(mb 12) () in
  ignore (Engine.Sched.at sched (ms 100) (fun () -> Netsim.Traffic.stop src));
  Engine.Sched.run ~until:(Engine.Time.s 1) sched;
  let sent = Netsim.Traffic.packets_sent src in
  Alcotest.(check bool) "stopped around 100 packets" true
    (sent >= 99 && sent <= 102)

let on_off_duty_cycle () =
  let sched, net, a, z, _ = two_nodes ~capacity:(mb 100) () in
  let bytes = ref 0 in
  Netsim.Net.attach_host net ~node:z (fun p -> bytes := !bytes + p.Packet.size);
  let _ =
    Netsim.Traffic.on_off ~net ~rng:(Engine.Rng.create 5) ~src:a ~dst:z ~tag:1
      ~rate_bps:(mb 20) ~mean_on:(ms 100) ~mean_off:(ms 100)
      ~stop_at:(Engine.Time.s 20) ()
  in
  Engine.Sched.run ~until:(Engine.Time.s 21) sched;
  (* ~50% duty cycle of 20 Mbps over 20 s = ~25 MB; allow wide slack. *)
  let mbytes = float_of_int !bytes /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "on/off mean rate plausible (%.1f MB)" mbytes)
    true
    (mbytes > 15.0 && mbytes < 35.0)

(* --- pktring --- *)

let ring_pkt id = Packet.make_plain ~id ~src:0 ~dst:1 ~tag:1 ~born:0 ~size:100

let pktring_fifo_across_growth () =
  (* Start tiny so several doublings happen mid-stream. *)
  let r = Netsim.Pktring.create ~capacity:2 () in
  for i = 1 to 100 do
    Netsim.Pktring.push r (ring_pkt i) ~stamp:(i * 10)
  done;
  Alcotest.(check int) "length" 100 (Netsim.Pktring.length r);
  Alcotest.(check bool) "capacity grew" true (Netsim.Pktring.capacity r >= 100);
  for i = 1 to 100 do
    Alcotest.(check int) "head stamp" (i * 10) (Netsim.Pktring.head_stamp r);
    let p = Netsim.Pktring.pop r in
    Alcotest.(check int) "FIFO order" i p.Packet.id
  done;
  Alcotest.(check bool) "empty" true (Netsim.Pktring.is_empty r)

let pktring_wraparound () =
  (* Interleave pushes and pops so head walks around the ring without
     triggering growth, then force one growth from a wrapped state. *)
  let r = Netsim.Pktring.create ~capacity:4 () in
  let next = ref 0 and expect = ref 0 in
  let push () = incr next; Netsim.Pktring.push r (ring_pkt !next) ~stamp:!next in
  let pop () =
    incr expect;
    Alcotest.(check int) "wrap FIFO" !expect (Netsim.Pktring.pop r).Packet.id
  in
  push (); push (); push ();
  pop (); pop ();
  (* head is now mid-array; fill past the physical end. *)
  push (); push (); push ();
  Alcotest.(check int) "still 4 capacity" 4 (Netsim.Pktring.capacity r);
  (* One more push forces a grow while the ring is wrapped. *)
  push ();
  for _ = 1 to 5 do pop () done;
  Alcotest.(check bool) "drained" true (Netsim.Pktring.is_empty r)

let pktring_iter_and_clear () =
  let r = Netsim.Pktring.create ~capacity:4 () in
  (* Wrap the ring first so iter must follow the head offset. *)
  Netsim.Pktring.push r (ring_pkt 90) ~stamp:0;
  ignore (Netsim.Pktring.pop r);
  for i = 1 to 4 do Netsim.Pktring.push r (ring_pkt i) ~stamp:i done;
  let seen = ref [] in
  Netsim.Pktring.iter r (fun p -> seen := p.Packet.id :: !seen);
  Alcotest.(check (list int)) "iter oldest first" [ 1; 2; 3; 4 ]
    (List.rev !seen);
  Netsim.Pktring.clear r;
  Alcotest.(check int) "cleared" 0 (Netsim.Pktring.length r);
  Alcotest.(check bool)
    "empty ops raise" true
    (try ignore (Netsim.Pktring.pop r); false with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "head_stamp raises when empty" true
    (try ignore (Netsim.Pktring.head_stamp r); false
     with Invalid_argument _ -> true)

let pktring_does_not_retain_popped () =
  (* Popped/cleared slots must be overwritten, otherwise the ring keeps
     recycled pool records alive behind the freelist's back.  We can't
     observe GC reachability directly, so check the observable contract:
     after pop the slot is reused for the next push (physical equality of
     the dummy is an implementation detail; reuse of indices is not). *)
  let r = Netsim.Pktring.create ~capacity:2 () in
  Netsim.Pktring.push r (ring_pkt 1) ~stamp:1;
  Netsim.Pktring.push r (ring_pkt 2) ~stamp:2;
  ignore (Netsim.Pktring.pop r);
  Netsim.Pktring.push r (ring_pkt 3) ~stamp:3;
  Alcotest.(check int) "no growth needed after pop" 2
    (Netsim.Pktring.capacity r);
  Alcotest.(check int) "order preserved" 2 (Netsim.Pktring.pop r).Packet.id;
  Alcotest.(check int) "order preserved" 3 (Netsim.Pktring.pop r).Packet.id

let () =
  Alcotest.run "netsim"
    [
      ( "link",
        [
          Alcotest.test_case "timing is exact" `Quick link_timing_exact;
          Alcotest.test_case "serialization back to back" `Quick
            link_serializes_back_to_back;
          Alcotest.test_case "FIFO order" `Quick fifo_order;
          Alcotest.test_case "tail drop when full" `Quick tail_drop_when_full;
          Alcotest.test_case "full duplex independence" `Quick
            full_duplex_independent;
          Alcotest.test_case "utilisation counter" `Quick utilisation_counter;
          Alcotest.test_case "delay jitter spreads arrivals" `Quick
            delay_jitter_spreads_arrivals;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "per-tag routes" `Quick tag_forwarding;
          Alcotest.test_case "reverse route installed" `Quick
            reverse_route_installed;
          Alcotest.test_case "missing route counted" `Quick no_route_counted;
          Alcotest.test_case "install validation" `Quick
            install_route_validation;
          Alcotest.test_case "one host per node" `Quick double_host_rejected;
        ] );
      ( "failure",
        [
          Alcotest.test_case "down link destroys arrivals" `Quick
            link_down_destroys_packets;
          Alcotest.test_case "mid-flight packets lost" `Quick
            link_down_mid_flight;
          Alcotest.test_case "restore resumes delivery" `Quick link_restore;
          Alcotest.test_case "queue flushed on cut" `Quick
            link_down_flushes_queue;
        ] );
      ( "qdisc",
        [
          QCheck_alcotest.to_alcotest qcheck_link_conservation;
          Alcotest.test_case "admit/drop decisions" `Quick qdisc_unit;
          Alcotest.test_case "RED drops under sustained load" `Quick
            red_drops_before_full;
          Alcotest.test_case "CoDel defeats bufferbloat" `Quick
            codel_defeats_bufferbloat;
          Alcotest.test_case "CoDel leaves light traffic alone" `Quick
            codel_idle_below_target;
        ] );
      ( "pktring",
        [
          Alcotest.test_case "FIFO across growth" `Quick
            pktring_fifo_across_growth;
          Alcotest.test_case "wraparound and grow-while-wrapped" `Quick
            pktring_wraparound;
          Alcotest.test_case "iter, clear, empty ops" `Quick
            pktring_iter_and_clear;
          Alcotest.test_case "popped slots are reusable" `Quick
            pktring_does_not_retain_popped;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "CBR rate" `Quick cbr_rate;
          Alcotest.test_case "CBR stop" `Quick cbr_stop;
          Alcotest.test_case "on/off duty cycle" `Quick on_off_duty_cycle;
        ] );
    ]
