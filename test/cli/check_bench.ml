(* Smoke-checker for `bench/main.exe --quick --jobs 2 --profile`: the
   harness must exit 0 (enforced by the dune rule that produced the
   capture) and its output must contain every figure header plus each
   sweep/ablation section, the domain-utilisation profile, and the JSON
   marker.  The timing numbers themselves vary run to run, so a golden
   diff is not applicable here. *)

let required =
  [
    "Fig. 1a/1b: the network and the three overlapping paths";
    "Fig. 1c: throughput constraints and LP optimum";
    "Fig. 2a: per-path rate, MPTCP-CUBIC, 100 ms sampling";
    "Fig. 2b: per-path rate, MPTCP-OLIA, 100 ms sampling";
    "Fig. 2c: per-path rate, MPTCP-CUBIC, first 0.5 s at 10 ms";
    "paper vs measured (figure summary)";
    "Table 1: convergence by congestion control x default path";
    "Ablation: buffer size";
    "Ablation: queue discipline";
    "Ablation: subflow scheduler";
    "Ablation: delayed ACKs";
    "Ablation: scheduler under a 64 KB send buffer";
    "Baseline: single-path TCP";
    "Extension: n pairwise-overlapping paths";
    "Extension: two MPTCP connections";
    "Hybrid: fluid background classes vs all-packet equivalent";
    "Daemon: cold-process vs warm-daemon submission latency";
    "allocation profile: paper sim (CUBIC)";
    "words per packet";
    "Bechamel micro-benchmarks";
    "fluid equilibrium paper (CUBIC)";
    "fluid speedup: paper equilibrium";
    "profile: per-phase domain utilisation";
    "[json] wrote";
    "=== done ===";
  ]

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  match Sys.argv with
  | [| _; output; json |] ->
    let text = read_file output in
    let missing = List.filter (fun h -> not (contains text h)) required in
    List.iter (Printf.eprintf "missing section: %S\n") missing;
    let j = read_file json in
    let json_ok =
      contains j "\"microbench_ns\"" && contains j "\"wall_clock_s\""
      && contains j "\"jobs\": 2" && contains j "\"profile\""
      && contains j "\"alloc\"" && contains j "\"words_per_packet\""
      && contains j "\"pool_recycled\"" && contains j "\"hybrid\""
      && contains j "\"speedup\"" && contains j "\"daemon\""
      && contains j "\"warm_p99_ms\""
    in
    if not json_ok then Printf.eprintf "malformed %s:\n%s\n" json j;
    if missing <> [] || not json_ok then exit 1;
    print_endline "bench --quick --jobs 2 output complete"
  | _ ->
    prerr_endline "usage: check_bench <bench-output> <bench-json>";
    exit 2
