(* Golden test for the resident daemon at the CLI level.

   Starts `mptcp_sim serve --listen` as a real subprocess, submits the
   same preset batch from two separate client processes, and pins both
   replies byte-for-byte: the first must simulate, the second must be
   all hits with `0 simulation events` — the warm-pool acceptance check
   — then `submit --drain` must exit 0, the daemon must exit 0, and the
   socket file must be gone.

   Usage: check_daemon MPTCP_SIM BATCH EXPECTED1 EXPECTED2 *)

let sock = "daemon.sock"
let store = "daemon_store"

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("check_daemon: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run [exe args], stdout to [out_path], and return the exit code. *)
let run_capture exe args out_path =
  let out =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) -> 128 + n

let () =
  let exe, batch, expected1, expected2 =
    match Sys.argv with
    | [| _; exe; batch; e1; e2 |] -> (exe, batch, e1, e2)
    | _ -> die "usage: check_daemon MPTCP_SIM BATCH EXPECTED1 EXPECTED2"
  in
  if Sys.file_exists sock then Sys.remove sock;
  let daemon =
    Unix.create_process exe
      [| exe; "serve"; "--listen"; sock; "--store"; store; "--jobs"; "1" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let daemon_done = ref false in
  Fun.protect
    ~finally:(fun () ->
      (* never leave an orphaned daemon behind a failing check *)
      if not !daemon_done then begin
        (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] daemon)
      end)
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_sock () =
        if Sys.file_exists sock then ()
        else if Unix.gettimeofday () > deadline then
          die "the daemon's socket never appeared"
        else begin
          ignore (Unix.select [] [] [] 0.05);
          wait_sock ()
        end
      in
      wait_sock ();
      let check what expected actual =
        let e = read_file expected and a = read_file actual in
        if e <> a then
          die "%s drifted\n--- expected (%s):\n%s--- got (%s):\n%s" what
            expected e actual a
      in
      (* client 1: a cold store, so everything simulates *)
      let rc = run_capture exe [ "submit"; "--socket"; sock; batch ] "daemon1.out" in
      if rc <> 0 then die "first submit exited %d" rc;
      check "first submission" expected1 "daemon1.out";
      (* client 2: the same batch from a second process must be served
         warm — all hits, zero simulation events, no respawned domains *)
      let rc = run_capture exe [ "submit"; "--socket"; sock; batch ] "daemon2.out" in
      if rc <> 0 then die "second submit exited %d" rc;
      check "second submission" expected2 "daemon2.out";
      (* drain: exits 0, the daemon exits 0, the socket is unlinked *)
      let rc =
        run_capture exe [ "submit"; "--socket"; sock; "--drain" ] "daemon_drain.out"
      in
      if rc <> 0 then die "submit --drain exited %d" rc;
      (match Unix.waitpid [] daemon with
      | _, Unix.WEXITED 0 -> daemon_done := true
      | _, Unix.WEXITED n -> die "the daemon exited %d after the drain" n
      | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
        die "the daemon died on signal %d" n);
      if Sys.file_exists sock then die "the socket survived the drain";
      print_endline "daemon golden ok")
