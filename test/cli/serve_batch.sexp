; Golden batch for the serve/report CLI tests: two short paper-network
; presets.  Everything the default serve/report output prints for these
; (hashes, goodputs, event counts) is deterministic, so the stdout of a
; cold pass, a warm pass and the trend report are pinned byte-for-byte.
(preset (label golden-cubic) (cc cubic) (seed 1) (duration-s 0.6))
(preset (label golden-lia) (cc lia) (seed 2) (duration-s 0.6))
