(* Smoke-checker for the observability flags on `mptcp_sim run`: the
   run must report each export, the Chrome trace must be a well-formed
   one-object-per-line JSON array, and the CSV exports must carry their
   documented headers.  Event counts and timings vary with ring capacity
   and host speed, so this is structural, not a golden diff. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail = ref false

let check what ok =
  if not ok then begin
    Printf.eprintf "check_obs: %s\n" what;
    fail := true
  end

let lines_of s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let () =
  match Sys.argv with
  | [| _; run_out; trace_json; trace_csv; metrics_csv |] ->
    let out = read_file run_out in
    check "run did not report the Chrome trace"
      (contains out "wrote Chrome trace to");
    check "run did not report the trace CSV"
      (contains out "wrote trace CSV to");
    check "run did not report the metrics CSV"
      (contains out "wrote metrics CSV to");
    check "--profile printed no summary line" (contains out "profile: wall");
    let tj = lines_of (read_file trace_json) in
    let n = List.length tj in
    check "trace JSON too short" (n > 10);
    check "trace JSON does not open an array" (List.nth tj 0 = "[");
    check "trace JSON does not close the array" (List.nth tj (n - 1) = "]");
    check "trace JSON misses track metadata" (contains (read_file trace_json) "thread_name");
    List.iteri
      (fun i l ->
        if i > 0 && i < n - 1 then
          check
            (Printf.sprintf "trace JSON line %d is not an object: %s" i l)
            (String.length l > 1
            && l.[0] = '{'
            && (l.[String.length l - 1] = '}' || l.[String.length l - 1] = ',')))
      tj;
    let tc = read_file trace_csv in
    check "trace CSV misses its header"
      (contains tc "kind,sim_ns,wall_ns,track,a,b,label");
    let mc = read_file metrics_csv in
    check "metrics CSV misses its header" (contains mc "sim_ns,name,value");
    check "metrics CSV misses engine counters"
      (contains mc "engine.events_dispatched");
    check "metrics CSV misses end-of-run wall metric"
      (contains mc "core.wall_time_s");
    if !fail then exit 1;
    print_endline "obs exports complete"
  | _ ->
    prerr_endline
      "usage: check_obs <run-output> <trace-json> <trace-csv> <metrics-csv>";
    exit 2
