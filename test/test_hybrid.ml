(* Accuracy goldens for the hybrid fluid/packet co-simulation: on the
   paper topology, a fluid CBR background field must cost the
   foreground MPTCP connection the same goodput (within 5%) as the
   equivalent packet-level cross-traffic source on the same route —
   the cheap fluid abstraction and the expensive packet one agree on
   what the foreground experiences.  Four ablations cover light and
   heavy background load, coupled and uncoupled foreground
   controllers, and a doubled buffer; every hybrid run is audited. *)

module E = Events.Event

let foreground_tail r =
  List.fold_left (fun acc (_, m) -> acc +. m) 0.0
    (Core.Scenario.per_path_tail_mbps r)

(* One (hybrid, all-packet) spec pair: same topology, paths, seed and
   duration; the only difference is whether the background load is a
   fluid field or a packet-level CBR source. *)
let run_pair ?(duration_s = 2) ~cc ~bg_mbps ~flows ~limit_pkts () =
  let make events =
    let topo = Core.Paper_net.topology () in
    let paths = Core.Paper_net.tagged_paths ~default:2 topo in
    let net_config =
      { Core.Scenario.default_net_config with Netsim.Net.limit_pkts }
    in
    ( Core.Scenario.make ~topo ~paths ~cc ~duration:(Engine.Time.s duration_s)
        ~seed:1 ~net_config ~audit:true ~events (),
      paths )
  in
  (* Endpoints of the MPTCP connection: both load models route from s
     to d along the same delay-shortest path. *)
  let topo = Core.Paper_net.topology () in
  let p0 = List.hd (Core.Paper_net.paths topo) in
  let src = Netgraph.Path.src p0 and dst = Netgraph.Path.dst p0 in
  let total_bps = int_of_float (bg_mbps *. 1e6) in
  let hybrid_spec, _ =
    make
      [ E.at
          (E.Background_start
             { src; dst; classes = 1; flows; cc = None;
               rate_bps = total_bps / flows; rtt = Engine.Time.ms 20 })
          ~at:Engine.Time.zero ]
  in
  let packet_spec, _ =
    make
      [ E.at
          (E.Traffic_start
             { src; dst; tag = 100; rate_bps = total_bps; stop_at = None })
          ~at:Engine.Time.zero ]
  in
  (Core.Scenario.run hybrid_spec, Core.Scenario.run packet_spec)

let check_pair ?duration_s ~name ~cc ~bg_mbps ~flows ~limit_pkts
    ~golden_hybrid () =
  let rh, rp = run_pair ?duration_s ~cc ~bg_mbps ~flows ~limit_pkts () in
  (* The hybrid run must hold every audit invariant with the fluid
     field slowing the shared serializers. *)
  (match rh.Core.Scenario.audit with
  | None -> Alcotest.fail "hybrid run not audited"
  | Some rep ->
    Alcotest.(check int) (name ^ " audit clean") 0 rep.Audit.total_violations);
  (match rh.Core.Scenario.background with
  | None -> Alcotest.fail "hybrid run has no background summary"
  | Some s ->
    Alcotest.(check bool) (name ^ " driver ticked") true
      (s.Fluid.Background.Driver.ticks > 0);
    (* A CBR field under capacity delivers what it offers. *)
    Alcotest.(check (float 0.05)) (name ^ " bg goodput") bg_mbps
      s.Fluid.Background.Driver.goodput_mbps);
  let h = foreground_tail rh and p = foreground_tail rp in
  Alcotest.(check bool)
    (Printf.sprintf "%s hybrid %.2f within 5%% of packet %.2f" name h p)
    true
    (Float.abs (h -. p) <= 0.05 *. p);
  (* Pin the hybrid side so accuracy regressions show up as a golden
     diff, not just a widened gap. *)
  Alcotest.(check (float 1.0)) (name ^ " hybrid golden") golden_hybrid h

let light_lia () =
  check_pair ~name:"lia light" ~cc:Mptcp.Algorithm.Lia ~bg_mbps:8.0
    ~flows:10 ~limit_pkts:16 ~golden_hybrid:75.36 ()

let heavy_lia () =
  check_pair ~name:"lia heavy" ~cc:Mptcp.Algorithm.Lia ~bg_mbps:24.0
    ~flows:10 ~limit_pkts:16 ~golden_hybrid:59.18 ()

let light_olia () =
  check_pair ~duration_s:4 ~name:"olia light" ~cc:Mptcp.Algorithm.Olia
    ~bg_mbps:8.0 ~flows:10 ~limit_pkts:16 ~golden_hybrid:74.95 ()

let big_buffer_cubic () =
  check_pair ~name:"cubic 32-pkt" ~cc:Mptcp.Algorithm.Cubic ~bg_mbps:8.0
    ~flows:10 ~limit_pkts:32 ~golden_hybrid:81.40 ()

let () =
  Alcotest.run "hybrid"
    [
      ( "accuracy",
        [
          Alcotest.test_case "lia light background" `Quick light_lia;
          Alcotest.test_case "lia heavy background" `Quick heavy_lia;
          Alcotest.test_case "olia light background" `Quick light_olia;
          Alcotest.test_case "cubic big buffers" `Quick big_buffer_cubic;
        ] );
    ]
