(* Tests for the domain worker pool: order preservation, exception
   propagation, pool reuse, and agreement with the serial path. *)

open Engine

exception Boom of int

let check_ints = Alcotest.(check (list int))

let map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  check_ints "parallel = serial"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~domains:4 (fun x -> x * x) xs)

let map_serial_shortcut () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  check_ints "domains:1 is List.map" (List.map succ xs)
    (Pool.map ~domains:1 succ xs)

let map_edge_lists () =
  check_ints "empty" [] (Pool.map ~domains:4 succ []);
  check_ints "singleton" [ 2 ] (Pool.map ~domains:4 succ [ 1 ])

let map_uneven_work () =
  (* Fast jobs must not overtake slow ones in the result list. *)
  let work x =
    let spin = if x mod 7 = 0 then 200_000 else 10 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := !acc + ((x + i) land 1023)
    done;
    (x, !acc)
  in
  let xs = List.init 50 (fun i -> i) in
  Alcotest.(check bool) "ordered despite uneven cost" true
    (Pool.map ~domains:3 work xs = List.map work xs)

let exceptions_propagate () =
  Alcotest.check_raises "raises the failing job's exception" (Boom 7)
    (fun () ->
      ignore
        (Pool.map ~domains:3
           (fun x -> if x = 7 then raise (Boom 7) else x)
           (List.init 20 (fun i -> i))))

let exception_lowest_index_wins () =
  (* Several failures: the propagated one must be deterministic (the
     lowest input index), whatever the worker interleaving. *)
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest index" (Boom 2) (fun () ->
        ignore
          (Pool.map ~domains:4
             (fun x -> if x >= 2 then raise (Boom x) else x)
             [ 0; 1; 2; 3; 4; 5 ]))
  done

let pool_reuse () =
  let pool = Pool.create ~domains:2 () in
  Alcotest.(check int) "two workers" 2 (Pool.size pool);
  let a = Pool.map_pool pool succ [ 1; 2; 3 ] in
  let b = Pool.run_list pool [ (fun () -> "x"); (fun () -> "y") ] in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  check_ints "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second batch" [ "x"; "y" ] b

let rejects_bad_domains () =
  Alcotest.check_raises "create 0"
    (Invalid_argument "Pool.create: domains must be >= 1") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Alcotest.check_raises "map 0"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Pool.map ~domains:0 succ [ 1; 2 ]))

let default_domains_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_domains () >= 1)

let parallel_simulations_deterministic () =
  (* The real workload: independent schedulers/RNGs per job.  Running
     the same seeded simulation on 1 and 4 domains must agree. *)
  let sim seed =
    let sched = Sched.create () in
    let rng = Rng.create seed in
    let count = ref 0 in
    let rec tick n () =
      count := !count + (Rng.int rng 97);
      if n > 0 then
        ignore (Sched.after sched (Time.us (1 + Rng.int rng 50)) (tick (n - 1)))
    in
    ignore (Sched.at sched Time.zero (tick 200));
    Sched.run sched;
    (!count, Sched.events_processed sched)
  in
  let seeds = List.init 8 (fun i -> i + 1) in
  Alcotest.(check bool) "1 domain = 4 domains" true
    (Pool.map ~domains:1 sim seeds = Pool.map ~domains:4 sim seeds)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "preserves order" `Quick map_preserves_order;
          Alcotest.test_case "domains:1 shortcut" `Quick map_serial_shortcut;
          Alcotest.test_case "empty and singleton" `Quick map_edge_lists;
          Alcotest.test_case "uneven job cost" `Quick map_uneven_work;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "propagate to caller" `Quick exceptions_propagate;
          Alcotest.test_case "lowest index wins" `Quick
            exception_lowest_index_wins;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "reuse across batches" `Quick pool_reuse;
          Alcotest.test_case "bad domain counts rejected" `Quick
            rejects_bad_domains;
          Alcotest.test_case "default_domains >= 1" `Quick
            default_domains_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded sims agree across domain counts" `Quick
            parallel_simulations_deterministic;
        ] );
    ]
