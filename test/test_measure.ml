(* Tests for the measurement layer: capture recording, exact sampler
   binning, series statistics, convergence metrics, and rendering. *)

let ms = Engine.Time.ms

(* --- Capture --- *)

let capture_manual () =
  let c = Measure.Capture.create () in
  Measure.Capture.record c ~time:(ms 10) ~tag:1 ~bytes:1500;
  Measure.Capture.record c ~time:(ms 20) ~tag:2 ~bytes:1500;
  Measure.Capture.record c ~time:(ms 30) ~tag:1 ~bytes:52;
  Alcotest.(check int) "count" 3 (Measure.Capture.count c);
  Alcotest.(check int) "tag 1 bytes" 1552 (Measure.Capture.bytes_for_tag c 1);
  Alcotest.(check (list int)) "tags" [ 1; 2 ] (Measure.Capture.tags c);
  let evs = Measure.Capture.events c in
  Alcotest.(check int) "events array" 3 (Array.length evs);
  Alcotest.(check int) "arrival order" (ms 10) evs.(0).Measure.Capture.time

let capture_growth () =
  (* Force several internal array doublings. *)
  let c = Measure.Capture.create () in
  for i = 1 to 5000 do
    Measure.Capture.record c ~time:i ~tag:(i mod 3) ~bytes:100
  done;
  Alcotest.(check int) "all kept" 5000 (Measure.Capture.count c);
  (* i = 1, 4, ..., 4999: 1667 events with tag 1. *)
  Alcotest.(check int) "per-tag split" (1667 * 100)
    (Measure.Capture.bytes_for_tag c 1)

(* --- Sampler --- *)

let sampler_exact_bins () =
  let c = Measure.Capture.create () in
  (* Window 100 ms: events at 50 ms and 99 ms land in bin 0; 100 ms in
     bin 1. *)
  Measure.Capture.record c ~time:(ms 50) ~tag:1 ~bytes:1250;
  Measure.Capture.record c ~time:(ms 99) ~tag:1 ~bytes:1250;
  Measure.Capture.record c ~time:(ms 100) ~tag:1 ~bytes:2500;
  let s =
    Measure.Sampler.throughput (Measure.Capture.events c) ~window:(ms 100)
      ~until:(ms 300) ()
  in
  Alcotest.(check int) "three bins" 3 (Measure.Series.length s);
  (* 2500 B in 0.1 s = 0.2 Mbps. *)
  Alcotest.(check (float 1e-9)) "bin 0" 0.2 (Measure.Series.value_at s 0);
  Alcotest.(check (float 1e-9)) "bin 1" 0.2 (Measure.Series.value_at s 1);
  Alcotest.(check (float 1e-9)) "bin 2 empty" 0.0 (Measure.Series.value_at s 2)

let sampler_tag_filter () =
  let c = Measure.Capture.create () in
  Measure.Capture.record c ~time:(ms 10) ~tag:1 ~bytes:1000;
  Measure.Capture.record c ~time:(ms 20) ~tag:2 ~bytes:3000;
  let s1 =
    Measure.Sampler.throughput (Measure.Capture.events c) ~window:(ms 100)
      ~until:(ms 100) ~tag:1 ()
  in
  Alcotest.(check (float 1e-9)) "only tag 1" 0.08 (Measure.Series.value_at s1 0)

let sampler_per_tag_total () =
  let c = Measure.Capture.create () in
  Measure.Capture.record c ~time:(ms 10) ~tag:1 ~bytes:1000;
  Measure.Capture.record c ~time:(ms 20) ~tag:2 ~bytes:3000;
  let per, total = Measure.Sampler.per_tag c ~window:(ms 100) ~until:(ms 100) in
  Alcotest.(check int) "two tags" 2 (List.length per);
  Alcotest.(check (float 1e-9)) "total is the sum" 0.32
    (Measure.Series.value_at total 0);
  let sum =
    List.fold_left
      (fun acc (_, s) -> acc +. Measure.Series.value_at s 0)
      0.0 per
  in
  Alcotest.(check (float 1e-9)) "per-tag adds up" 0.32 sum

let sampler_events_beyond_horizon_dropped () =
  let c = Measure.Capture.create () in
  Measure.Capture.record c ~time:(ms 150) ~tag:1 ~bytes:1000;
  let s =
    Measure.Sampler.throughput (Measure.Capture.events c) ~window:(ms 100)
      ~until:(ms 100) ()
  in
  Alcotest.(check int) "one bin" 1 (Measure.Series.length s);
  Alcotest.(check (float 1e-9)) "nothing counted" 0.0
    (Measure.Series.value_at s 0)

(* --- Series --- *)

let series_stats () =
  let s = Measure.Series.create ~t0:0.0 ~dt:1.0 [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "mean" 25.0 (Measure.Series.mean s);
  Alcotest.(check (float 1e-9)) "max" 40.0 (Measure.Series.max_value s);
  Alcotest.(check (float 1e-9)) "time of window 0 is its end" 1.0
    (Measure.Series.time_at s 0);
  Alcotest.(check (float 1e-9)) "mean of the tail" 35.0
    (Measure.Series.mean_from s ~from_s:3.0);
  Alcotest.(check (float 1e-9)) "mean between" 25.0
    (Measure.Series.mean_between s ~from_s:2.0 ~to_s:4.0);
  (* Tail {30, 40}: mean 35, std 5. *)
  Alcotest.(check (float 1e-9)) "std of the tail" 5.0
    (Measure.Series.std_from s ~from_s:3.0);
  Alcotest.(check bool) "empty tail is nan" true
    (Float.is_nan (Measure.Series.mean_from s ~from_s:100.0))

let series_sum_and_map2 () =
  let a = Measure.Series.create ~t0:0.0 ~dt:0.1 [| 1.; 2. |] in
  let b = Measure.Series.create ~t0:0.0 ~dt:0.1 [| 10.; 20. |] in
  let s = Measure.Series.sum [ a; b ] in
  Alcotest.(check (float 1e-9)) "sum" 22.0 (Measure.Series.value_at s 1);
  let c = Measure.Series.create ~t0:0.0 ~dt:0.2 [| 1.; 2. |] in
  Alcotest.(check bool) "shape mismatch rejected" true
    (try ignore (Measure.Series.map2 a c ~f:( +. )); false
     with Invalid_argument _ -> true)

(* --- Converge --- *)

let synthetic ramp =
  Measure.Series.create ~t0:0.0 ~dt:0.1 (Array.of_list ramp)

let converge_time_to_reach () =
  let s = synthetic [ 10.; 50.; 86.; 87.; 88.; 90.; 40.; 90. ] in
  (match Measure.Converge.time_to_reach s ~target:90.0 ~tolerance:0.05 ~hold:3 () with
  | Some t ->
    (* Windows 2,3,4 (>= 85.5) are the first 3-window hold; window 2 ends
       at 0.3 s. *)
    Alcotest.(check (float 1e-9)) "reach time" 0.3 t
  | None -> Alcotest.fail "should reach");
  (* Never reaches with a tight tolerance and long hold. *)
  Alcotest.(check bool) "hold breaks on the dip" true
    (Measure.Converge.time_to_reach s ~target:90.0 ~tolerance:0.01 ~hold:4 ()
     = None)

let converge_fraction_and_dips () =
  let s = synthetic [ 90.; 90.; 40.; 90.; 90.; 40.; 90. ] in
  Alcotest.(check (float 1e-9)) "fraction above" (5.0 /. 7.0)
    (Measure.Converge.fraction_above s ~target:90.0 ~tolerance:0.05 ());
  Alcotest.(check int) "two dips" 2
    (Measure.Converge.dip_count s ~target:90.0 ());
  Alcotest.(check int) "no dip when never above" 0
    (Measure.Converge.dip_count (synthetic [ 1.; 2. ]) ~target:90.0 ())

let converge_cv () =
  let flat = synthetic [ 50.; 50.; 50.; 50. ] in
  Alcotest.(check (float 1e-9)) "flat series has cv 0" 0.0
    (Measure.Converge.coefficient_of_variation flat ~from_s:0.0);
  let noisy = synthetic [ 40.; 60.; 40.; 60. ] in
  Alcotest.(check bool) "noisy cv > 0" true
    (Measure.Converge.coefficient_of_variation noisy ~from_s:0.0 > 0.1)

let jain () =
  Alcotest.(check (float 1e-9)) "even split" 1.0
    (Measure.Converge.jain_fairness [| 10.; 10.; 10. |]);
  Alcotest.(check (float 1e-9)) "one hog" (1.0 /. 3.0)
    (Measure.Converge.jain_fairness [| 30.; 0.; 0. |]);
  Alcotest.(check (float 1e-9)) "all zero treated as fair" 1.0
    (Measure.Converge.jain_fairness [| 0.; 0. |]);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Measure.Converge.jain_fairness [||]); false
     with Invalid_argument _ -> true)

(* --- Stats --- *)

let stats_summary () =
  match Measure.Stats.summarise [ 1.0; 2.0; 3.0; 4.0; 5.0 ] with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
    Alcotest.(check int) "count" 5 s.Measure.Stats.count;
    Alcotest.(check (float 1e-9)) "mean" 3.0 s.Measure.Stats.mean;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Measure.Stats.min;
    Alcotest.(check (float 1e-9)) "max" 5.0 s.Measure.Stats.max;
    Alcotest.(check (float 1e-9)) "median" 3.0 s.Measure.Stats.p50;
    (* sample std of 1..5 = sqrt(2.5) *)
    Alcotest.(check (float 1e-9)) "std" (Float.sqrt 2.5) s.Measure.Stats.std

let stats_percentile () =
  let v = [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Measure.Stats.percentile v ~p:0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 4.0
    (Measure.Stats.percentile v ~p:100.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5
    (Measure.Stats.percentile v ~p:50.0);
  Alcotest.(check bool) "empty rejected" true
    (try ignore (Measure.Stats.percentile [||] ~p:50.0); false
     with Invalid_argument _ -> true)

let stats_edge_cases () =
  Alcotest.(check bool) "empty list" true (Measure.Stats.summarise [] = None);
  (match Measure.Stats.summarise [ 7.0 ] with
  | Some s ->
    Alcotest.(check (float 1e-9)) "singleton std 0" 0.0 s.Measure.Stats.std;
    Alcotest.(check (float 1e-9)) "ci 0 for n=1" 0.0
      (Measure.Stats.confidence95 s)
  | None -> Alcotest.fail "singleton must summarise");
  Alcotest.(check bool) "nan rejected" true
    (try ignore (Measure.Stats.summarise [ Float.nan ]); false
     with Invalid_argument _ -> true)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p and bounded"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.0))
              (pair (0 -- 100) (0 -- 100)))
    (fun (values, (p1, p2)) ->
      match values with
      | [] -> true
      | _ ->
        let arr = Array.of_list values in
        let lo = min p1 p2 and hi = max p1 p2 in
        let v_lo = Measure.Stats.percentile arr ~p:(float_of_int lo) in
        let v_hi = Measure.Stats.percentile arr ~p:(float_of_int hi) in
        let mn = Measure.Stats.percentile arr ~p:0.0 in
        let mx = Measure.Stats.percentile arr ~p:100.0 in
        v_lo <= v_hi +. 1e-9 && mn <= v_lo +. 1e-9 && v_hi <= mx +. 1e-9)

let qcheck_percentile_vs_naive =
  (* Reference model: sort the list, interpolate by hand — exercised on
     unsorted input with duplicates. *)
  QCheck.Test.make ~name:"percentile agrees with a naive model" ~count:300
    QCheck.(
      pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 1000.0))
        (0 -- 100))
    (fun (values, p) ->
      match values with
      | [] -> true
      | _ ->
        let arr = Array.of_list (List.sort Float.compare values) in
        let n = Array.length arr in
        let rank = float_of_int p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = int_of_float (Float.ceil rank) in
        let expect =
          if lo = hi then arr.(lo)
          else begin
            let frac = rank -. float_of_int lo in
            (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
          end
        in
        let got =
          Measure.Stats.percentile (Array.of_list values)
            ~p:(float_of_int p)
        in
        Float.abs (got -. expect) <= 1e-9 *. (1.0 +. Float.abs expect))

let qcheck_summarise_roundtrip =
  QCheck.Test.make ~name:"summarise round-trips min/max/p50" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_inclusive 500.0))
    (fun values ->
      match Measure.Stats.summarise values with
      | None -> values = []
      | Some s ->
        let sorted = List.sort Float.compare values in
        s.Measure.Stats.count = List.length values
        && s.Measure.Stats.min = List.hd sorted
        && s.Measure.Stats.max = List.nth sorted (List.length sorted - 1)
        && s.Measure.Stats.p50
           = Measure.Stats.percentile (Array.of_list values) ~p:50.0
        && s.Measure.Stats.min <= s.Measure.Stats.p50 +. 1e-9
        && s.Measure.Stats.p50 <= s.Measure.Stats.max +. 1e-9
        && s.Measure.Stats.mean >= s.Measure.Stats.min -. 1e-9
        && s.Measure.Stats.mean <= s.Measure.Stats.max +. 1e-9)

(* --- Trace --- *)

let trace_records_and_filters () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let z = Netgraph.Topology.add_node b "z" in
  let lid = Netgraph.Topology.add_link b ~u:a ~v:z
      ~capacity_bps:(Netgraph.Topology.mbps 100) ~delay:(ms 1) in
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 1) topo in
  Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:lid;
  Netsim.Net.attach_host net ~node:z (fun _ -> ());
  let all = Measure.Trace.attach net ~nodes:[ z ] () in
  let plain_only =
    Measure.Trace.attach net ~nodes:[ z ]
      ~keep:(fun p -> p.Packet.body = Packet.Plain) ()
  in
  for i = 1 to 3 do
    Netsim.Net.inject net ~at:a
      (Packet.make_plain ~id:i ~src:a ~dst:z ~tag:1 ~born:0 ~size:1500)
  done;
  Netsim.Net.inject net ~at:a
    (Packet.make_tcp ~id:9 ~src:a ~dst:z ~tag:1 ~born:0
       { Packet.conn = 1; subflow = 0; kind = Packet.Data; seq = 0;
         payload = 100; ack = 0; sack = []; ece = false; dss = None; data_ack = 0 });
  Engine.Sched.run sched;
  Alcotest.(check int) "all events" 4 (Measure.Trace.count all);
  Alcotest.(check int) "filtered events" 3 (Measure.Trace.count plain_only);
  let text = Measure.Trace.to_text net all in
  Alcotest.(check int) "one line per event" 4
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)));
  Alcotest.(check bool) "conn filter works" true
    (Measure.Trace.conn_filter 1
       (Measure.Trace.events all).(3).Measure.Trace.packet)

let trace_limit () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let z = Netgraph.Topology.add_node b "z" in
  let lid = Netgraph.Topology.add_link b ~u:a ~v:z
      ~capacity_bps:(Netgraph.Topology.mbps 100) ~delay:(ms 1) in
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 1) topo in
  Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:lid;
  Netsim.Net.attach_host net ~node:z (fun _ -> ());
  let tr = Measure.Trace.attach net ~nodes:[ z ] ~limit:2 () in
  for i = 1 to 5 do
    Netsim.Net.inject net ~at:a
      (Packet.make_plain ~id:i ~src:a ~dst:z ~tag:1 ~born:0 ~size:1500)
  done;
  Engine.Sched.run sched;
  Alcotest.(check int) "capped" 2 (Measure.Trace.count tr);
  Alcotest.(check int) "excess counted" 3 (Measure.Trace.dropped tr)

(* --- Probe --- *)

let probe_samples_state () =
  let sched = Engine.Sched.create () in
  let counter = ref 0.0 in
  ignore
    (Engine.Sched.at sched (ms 15) (fun () -> counter := 5.0));
  let probe =
    Measure.Probe.attach ~sched ~period:(ms 10) ~until:(ms 40) (fun () ->
        !counter)
  in
  Engine.Sched.run sched;
  Alcotest.(check int) "four samples" 4 (Measure.Probe.samples probe);
  let s = Measure.Probe.series probe in
  Alcotest.(check (float 1e-9)) "before the change" 0.0
    (Measure.Series.value_at s 0);
  Alcotest.(check (float 1e-9)) "after the change" 5.0
    (Measure.Series.value_at s 1);
  Alcotest.(check (float 1e-9)) "aligned timestamps" 0.02
    (Measure.Series.time_at s 1)

let probe_started_late () =
  let sched = Engine.Sched.create () in
  ignore
    (Engine.Sched.at sched (ms 100) (fun () ->
         let probe =
           Measure.Probe.attach ~sched ~period:(ms 10) ~until:(ms 130)
             (fun () -> 1.0)
         in
         ignore probe));
  (* Attaching mid-run must not raise (ticks are relative to now). *)
  Engine.Sched.run sched

let probe_validation () =
  let sched = Engine.Sched.create () in
  Alcotest.(check bool) "zero period rejected" true
    (try
       ignore (Measure.Probe.attach ~sched ~period:0 ~until:(ms 10) (fun () -> 0.0));
       false
     with Invalid_argument _ -> true)

(* --- Render --- *)

let csv_output () =
  let s1 = Measure.Series.create ~t0:0.0 ~dt:0.5 [| 1.; 2. |] in
  let s2 = Measure.Series.create ~t0:0.0 ~dt:0.5 [| 10.; 20. |] in
  let csv = Measure.Render.series_csv [ ("a", s1); ("b", s2) ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "time_s,a,b" (List.hd lines);
  Alcotest.(check string) "first row" "0.5,1,10" (List.nth lines 1)

let csv_row_mismatch () =
  Alcotest.(check bool) "ragged rows rejected" true
    (try
       ignore (Measure.Render.to_csv ~header:[ "a"; "b" ] ~rows:[ [ 1.0 ] ]);
       false
     with Invalid_argument _ -> true)

let ascii_chart_shape () =
  let s = Measure.Series.create ~t0:0.0 ~dt:0.1 (Array.init 40 float_of_int) in
  let chart =
    Measure.Render.ascii_chart ~width:40 ~height:10 ~title:"t" [ ("x", s) ]
  in
  let lines = String.split_on_char '\n' chart in
  (* title + height rows + axis + x labels + legend *)
  Alcotest.(check bool) "row count plausible" true (List.length lines >= 13);
  Alcotest.(check bool) "legend present" true
    (List.exists (fun l -> l = "legend: *=x") lines)

let () =
  Alcotest.run "measure"
    [
      ( "capture",
        [
          Alcotest.test_case "manual recording" `Quick capture_manual;
          Alcotest.test_case "array growth" `Quick capture_growth;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "exact binning" `Quick sampler_exact_bins;
          Alcotest.test_case "tag filter" `Quick sampler_tag_filter;
          Alcotest.test_case "per-tag + total" `Quick sampler_per_tag_total;
          Alcotest.test_case "horizon respected" `Quick
            sampler_events_beyond_horizon_dropped;
        ] );
      ( "series",
        [
          Alcotest.test_case "statistics" `Quick series_stats;
          Alcotest.test_case "sum and shape checks" `Quick series_sum_and_map2;
        ] );
      ( "converge",
        [
          Alcotest.test_case "time to reach with hold" `Quick
            converge_time_to_reach;
          Alcotest.test_case "fraction above and dips" `Quick
            converge_fraction_and_dips;
          Alcotest.test_case "coefficient of variation" `Quick converge_cv;
          Alcotest.test_case "jain fairness" `Quick jain;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "percentile" `Quick stats_percentile;
          Alcotest.test_case "edge cases" `Quick stats_edge_cases;
          QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
          QCheck_alcotest.to_alcotest qcheck_percentile_vs_naive;
          QCheck_alcotest.to_alcotest qcheck_summarise_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record and filter" `Quick
            trace_records_and_filters;
          Alcotest.test_case "limit" `Quick trace_limit;
        ] );
      ( "probe",
        [
          Alcotest.test_case "samples state over time" `Quick
            probe_samples_state;
          Alcotest.test_case "attach mid-run" `Quick probe_started_late;
          Alcotest.test_case "validation" `Quick probe_validation;
        ] );
      ( "render",
        [
          Alcotest.test_case "csv" `Quick csv_output;
          Alcotest.test_case "csv validation" `Quick csv_row_mismatch;
          Alcotest.test_case "ascii chart" `Quick ascii_chart_shape;
        ] );
    ]
