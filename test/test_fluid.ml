(* Tests for the fluid-model engine: the integrator on a closed-form
   ODE, golden equilibria on the paper topology, LP feasibility via the
   shared constraint checker, and jobs-independence of batched
   sweeps. *)

let feps = 1e-6

let paper_spec cc =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  Core.Scenario.make ~topo ~paths ~cc ()

let paper_model controller =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.paths topo in
  Fluid.Model.compile topo ~paths ~controller ()

(* --- integrator --- *)

let rk4_exponential_decay () =
  (* dy/dt = -y from y(0) = 1 over one unit of time: y(1) = e^-1.
     Step-doubling must hold the global error well under the per-step
     tolerance here (smooth scalar field). *)
  let p =
    { Fluid.Ode.dim = 1;
      f = (fun y dy -> dy.(0) <- -.y.(0));
      project = (fun _ -> ()) }
  in
  let y = [| 1.0 |] in
  let stats = Fluid.Ode.integrate p ~y ~t0:0.0 ~t1:1.0 ~tol:1e-9 () in
  Alcotest.(check (float 1e-7)) "e^-1" (exp (-1.0)) y.(0);
  Alcotest.(check bool) "accepted steps" true (stats.Fluid.Ode.steps > 0)

let rk4_projection_clamps () =
  (* A field pushing below zero with a [max 0] projection must pin the
     trajectory at the boundary instead of escaping the box. *)
  let p =
    { Fluid.Ode.dim = 1;
      f = (fun _ dy -> dy.(0) <- -10.0);
      project = (fun y -> if y.(0) < 0.0 then y.(0) <- 0.0) }
  in
  let y = [| 0.5 |] in
  ignore (Fluid.Ode.integrate p ~y ~t0:0.0 ~t1:1.0 ());
  Alcotest.(check (float feps)) "clamped at 0" 0.0 y.(0)

(* --- golden equilibria on the paper topology --- *)

(* Totals pinned from the verified equilibria (see doc/FLUID.md): the
   fluid model's analogue of the paper's Fig. 2 story.  OLIA attains
   the 90 Mbps LP optimum, LIA lands 2.2% short (only the 40 and 60
   Mbps links saturate at its equilibrium), CUBIC's uncoupled subflows
   overshare the 40 Mbps bottleneck and pay for it in total. *)
let solve_total kind =
  let m = paper_model kind in
  let y, diag = Fluid.Equilibrium.solve m () in
  Alcotest.(check bool)
    (Fluid.Controller.name kind ^ " converged")
    true diag.Fluid.Equilibrium.converged;
  (m, y, Fluid.Model.total_mbps m y)

let golden_cubic () =
  let m, y, total = solve_total Fluid.Controller.Cubic in
  Alcotest.(check (float 0.5)) "cubic total" 85.44 total;
  (* The uncoupled split: path 1 holds more of the shared 40 Mbps link
     than the LP's 10 Mbps allotment (paths are in plain 1, 2, 3
     order here, unlike the CLI's default-first tagged order). *)
  let rates = Fluid.Model.rates_bps m y in
  Alcotest.(check bool) "path-1 overshare" true (rates.(0) /. 1e6 > 12.0)

let golden_lia () =
  let _, _, total = solve_total Fluid.Controller.Lia in
  Alcotest.(check (float 0.5)) "lia total" 88.05 total;
  Alcotest.(check bool) "lia within 3% of LP" true (total >= 90.0 *. 0.97)

let golden_olia () =
  let m, y, total = solve_total Fluid.Controller.Olia in
  Alcotest.(check (float 0.5)) "olia total" 89.98 total;
  Alcotest.(check bool) "olia within 2% of LP" true (total >= 90.0 *. 0.98);
  (* Per-path: the LP vertex (10, 30, 50) in plain path order. *)
  let rates = Fluid.Model.rates_bps m y in
  Alcotest.(check (float 0.6)) "path 1" 10.0 (rates.(0) /. 1e6);
  Alcotest.(check (float 0.6)) "path 2" 30.0 (rates.(1) /. 1e6);
  Alcotest.(check (float 0.6)) "path 3" 50.0 (rates.(2) /. 1e6)

let paper_ordering () =
  (* The packet-sim ordering (Table 1) reproduced analytically:
     CUBIC < LIA < OLIA <= LP. *)
  let _, _, cubic = solve_total Fluid.Controller.Cubic in
  let _, _, lia = solve_total Fluid.Controller.Lia in
  let _, _, olia = solve_total Fluid.Controller.Olia in
  Alcotest.(check bool) "cubic < lia" true (cubic < lia);
  Alcotest.(check bool) "lia < olia" true (lia < olia);
  Alcotest.(check bool) "olia <= LP" true (olia <= 90.0 +. feps)

let cold_start_agrees () =
  (* The solver must find the same equilibrium from the cold start as
     from the warm start (same basin; only the iteration count
     differs). *)
  let m = paper_model Fluid.Controller.Lia in
  let y_warm, d1 = Fluid.Equilibrium.solve m () in
  let y_cold, d2 = Fluid.Equilibrium.solve m ~y0:(Fluid.Model.initial m) () in
  Alcotest.(check bool) "warm converged" true d1.Fluid.Equilibrium.converged;
  Alcotest.(check bool) "cold converged" true d2.Fluid.Equilibrium.converged;
  Alcotest.(check (float 0.1))
    "same total" (Fluid.Model.total_mbps m y_warm)
    (Fluid.Model.total_mbps m y_cold)

let lossy_pack_warm_start () =
  (* The 10%-loss scenario pack (PR 7): failover topology, LIA, a
     loss-set event at 0.5 s.  The fluid model compiles the same spec
     the simulator runs; the warm start must land in the same basin as
     the cold start, in no more iterations, and the totals are pinned
     as goldens against the 100 Mbps LP optimum of the 10 + 90 Mbps
     failover paths. *)
  let _topo, spec =
    Core.Expfile.load ~topo_file:"../examples/failover_topo.sexp"
      ~xp_file:"../examples/lossy_xp.sexp"
  in
  let m =
    match Validate.model_of_spec spec with
    | Ok m -> m
    | Error e -> Alcotest.failf "model_of_spec: %s" e
  in
  let y_warm, d_warm = Fluid.Equilibrium.solve m () in
  let y_cold, d_cold = Fluid.Equilibrium.solve m ~y0:(Fluid.Model.initial m) () in
  Alcotest.(check bool) "warm converged" true d_warm.Fluid.Equilibrium.converged;
  Alcotest.(check bool) "cold converged" true d_cold.Fluid.Equilibrium.converged;
  (* The whole point of Model.warm_start: seeding at the LP operating
     point must not cost more Newton iterations than the cold start. *)
  Alcotest.(check bool) "warm start no slower" true
    (d_warm.Fluid.Equilibrium.iterations <= d_cold.Fluid.Equilibrium.iterations);
  let warm_total = Fluid.Model.total_mbps m y_warm in
  (* Disjoint 10 + 90 Mbps paths: LIA saturates both, so the fluid
     equilibrium attains the LP optimum (no shared bottleneck to
     misallocate). *)
  Alcotest.(check (float 0.5)) "lossy-pack total" 100.0 warm_total;
  Alcotest.(check (float 0.1)) "same total" warm_total
    (Fluid.Model.total_mbps m y_cold);
  (* Golden + LP cross-check through the validation harness. *)
  (match Validate.equilibrium spec with
  | Error e -> Alcotest.failf "equilibrium: %s" e
  | Ok v ->
    Alcotest.(check (float 0.01)) "lp total" 100.0 v.Validate.lp_total_mbps;
    Alcotest.(check bool) "lp feasible" true v.Validate.lp_feasible;
    Alcotest.(check (float 0.1)) "harness agrees" warm_total
      v.Validate.fluid_total_mbps)

(* --- validation harness --- *)

let validate_lp_feasible () =
  List.iter
    (fun cc ->
      match Validate.equilibrium (paper_spec cc) with
      | Error e -> Alcotest.failf "%s: %s" (Mptcp.Algorithm.name cc) e
      | Ok v ->
        Alcotest.(check bool)
          (Mptcp.Algorithm.name cc ^ " feasible")
          true v.Validate.lp_feasible;
        (* The LP side of the report comes from the shared
           Core.Scenario.optimum_rates entry point. *)
        Alcotest.(check (float 0.01)) "lp total" 90.0
          v.Validate.lp_total_mbps)
    Mptcp.Algorithm.[ Cubic; Lia; Olia ]

let validate_rejects_unmodelled () =
  match Validate.equilibrium (paper_spec Mptcp.Algorithm.Balia) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "balia has no fluid model yet"

let sweep_jobs_deterministic () =
  (* Batched sweeps must be bit-identical across domain counts: each
     job compiles its own model, so nothing is shared. *)
  let specs =
    List.concat_map
      (fun cc -> [ paper_spec cc; paper_spec cc ])
      Mptcp.Algorithm.[ Cubic; Lia; Olia ]
  in
  let run jobs =
    List.map
      (function
        | Ok v ->
          List.map (fun p -> p.Validate.fluid_mbps)
            v.Validate.per_path
        | Error e -> Alcotest.failf "sweep: %s" e)
      (Validate.sweep ~jobs specs)
  in
  let r1 = run 1 and r4 = run 4 in
  List.iter2
    (List.iter2 (fun a b ->
         Alcotest.(check bool) "bit-identical" true (Float.equal a b)))
    r1 r4

let () =
  Alcotest.run "fluid"
    [
      ( "ode",
        [
          Alcotest.test_case "rk4 exponential decay" `Quick
            rk4_exponential_decay;
          Alcotest.test_case "projection clamps" `Quick rk4_projection_clamps;
        ] );
      ( "equilibrium",
        [
          Alcotest.test_case "golden cubic" `Quick golden_cubic;
          Alcotest.test_case "golden lia" `Quick golden_lia;
          Alcotest.test_case "golden olia" `Quick golden_olia;
          Alcotest.test_case "paper ordering" `Quick paper_ordering;
          Alcotest.test_case "cold start agrees" `Quick cold_start_agrees;
          Alcotest.test_case "lossy pack warm start" `Quick
            lossy_pack_warm_start;
        ] );
      ( "validate",
        [
          Alcotest.test_case "lp feasible" `Quick validate_lp_feasible;
          Alcotest.test_case "rejects unmodelled" `Quick
            validate_rejects_unmodelled;
          Alcotest.test_case "sweep jobs=1 = jobs=4" `Quick
            sweep_jobs_deterministic;
        ] );
    ]
