(* Tests for topologies, paths, shortest paths (Dijkstra cross-checked
   against Bellman-Ford on random graphs), Yen's k-shortest paths,
   Bhandari disjoint pairs, Edmonds-Karp max-flow, and the LP constraint
   extraction used for Fig. 1c. *)

open Netgraph

let ms = Engine.Time.ms
let mb = Topology.mbps

(* A small fixture: the paper's network. *)
let paper () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.paths topo in
  (topo, paths)

(* --- Topology --- *)

let topology_basic () =
  let topo, _ = paper () in
  Alcotest.(check int) "nodes" 6 (Topology.num_nodes topo);
  Alcotest.(check int) "links" 8 (Topology.num_links topo);
  Alcotest.(check string) "name" "v2" (Topology.node_name topo 2);
  Alcotest.(check int) "id round trip" 2 (Topology.node_id topo "v2");
  let s = Topology.node_id topo "s" and v1 = Topology.node_id topo "v1" in
  (match Topology.find_link topo ~u:s ~v:v1 with
  | Some l -> Alcotest.(check int) "s-v1 is 40 Mbps" (mb 40) l.Topology.capacity_bps
  | None -> Alcotest.fail "s-v1 link missing");
  Alcotest.(check int) "degree of s" 2 (List.length (Topology.neighbours topo s))

let topology_validation () =
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Topology.add_node: duplicate node \"a\"") (fun () ->
      ignore (Topology.add_node b "a"));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology.add_link: self-loop") (fun () ->
      ignore (Topology.add_link b ~u:a ~v:a ~capacity_bps:1 ~delay:0));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Topology.add_link: capacity must be positive")
    (fun () ->
      let b2 = Topology.builder () in
      let x = Topology.add_node b2 "x" and y = Topology.add_node b2 "y" in
      ignore (Topology.add_link b2 ~u:x ~v:y ~capacity_bps:0 ~delay:0))

let other_end () =
  let topo, _ = paper () in
  let l = Topology.link topo 0 in
  Alcotest.(check int) "forward" l.Topology.v
    (Topology.other_end l l.Topology.u);
  Alcotest.(check int) "backward" l.Topology.u
    (Topology.other_end l l.Topology.v)

(* --- Path --- *)

let path_construction () =
  let topo, paths = paper () in
  match paths with
  | [ p1; p2; p3 ] ->
    Alcotest.(check int) "path1 hops" 4 (Path.hop_count p1);
    Alcotest.(check int) "path2 hops" 3 (Path.hop_count p2);
    Alcotest.(check int) "path3 hops" 4 (Path.hop_count p3);
    Alcotest.(check int) "path1 bottleneck" (mb 40) (Path.bottleneck_bps topo p1);
    Alcotest.(check int) "path3 bottleneck" (mb 60) (Path.bottleneck_bps topo p3);
    (* 1 + 0.5 + 1 ms: the v1-v4 link runs at half delay so Path 2 is
       strictly the shortest route. *)
    Alcotest.(check int) "path2 delay" (Engine.Time.us 2500)
      (Path.one_way_delay topo p2);
    Alcotest.(check int) "p1 n p2" 1 (List.length (Path.shared_links p1 p2));
    Alcotest.(check int) "p1 n p3" 1 (List.length (Path.shared_links p1 p3));
    Alcotest.(check int) "p2 n p3" 1 (List.length (Path.shared_links p2 p3));
    Alcotest.(check bool) "not disjoint" false (Path.disjoint p1 p2)
  | _ -> Alcotest.fail "expected three paths"

let path_validation () =
  let topo, _ = paper () in
  Alcotest.(check bool) "no link between s and d" true
    (try ignore (Path.of_names topo [ "s"; "d" ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "repeated node rejected" true
    (try ignore (Path.of_names topo [ "s"; "v1"; "v2"; "v1" ]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "single node rejected" true
    (try ignore (Path.of_names topo [ "s" ]); false
     with Invalid_argument _ -> true)

let path_of_links_roundtrip () =
  let topo, paths = paper () in
  List.iter
    (fun p ->
      let q = Path.of_links topo ~src:(Path.src p) (Array.to_list p.Path.links) in
      Alcotest.(check bool) "round trip" true (Path.equal p q))
    paths

(* --- Shortest paths --- *)

let dijkstra_paper () =
  let topo, _ = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  match Shortest.shortest_path topo ~src:s ~dst:d ~weight:Shortest.hops with
  | Some p -> Alcotest.(check int) "shortest s-d is 3 hops" 3 (Path.hop_count p)
  | None -> Alcotest.fail "no path found"

let dijkstra_unreachable () =
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let _b = Topology.add_node b "b" in
  let topo = Topology.build b in
  let dist, _ = Shortest.dijkstra topo ~src:a ~weight:Shortest.hops in
  Alcotest.(check int) "unreachable is max_int" max_int dist.(1)

(* Random graphs (spanning chain + extra edges) for oracle tests. *)
let gen_graph =
  QCheck.Gen.(
    2 -- 8 >>= fun n ->
    pair (return n)
      (list_size (0 -- 12) (pair (int_bound (n - 1)) (int_bound (n - 1)))))

let build_graph (n, extra) =
  let b = Topology.builder () in
  let ids = Array.init n (fun i -> Topology.add_node b (string_of_int i)) in
  for i = 0 to n - 2 do
    ignore
      (Topology.add_link b ~u:ids.(i) ~v:ids.(i + 1) ~capacity_bps:(mb 10)
         ~delay:(ms ((i mod 5) + 1)))
  done;
  List.iteri
    (fun k (u, v) ->
      if u <> v then
        ignore
          (Topology.add_link b ~u:ids.(u) ~v:ids.(v) ~capacity_bps:(mb 10)
             ~delay:(ms ((k mod 7) + 1))))
    extra;
  Topology.build b

let qcheck_dijkstra_vs_bf =
  QCheck.Test.make ~name:"dijkstra distances = bellman-ford" ~count:200
    (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let dist, _ = Shortest.dijkstra topo ~src:0 ~weight:Shortest.delay_ns in
      let bf = Shortest.bellman_ford topo ~src:0 ~weight:Shortest.delay_ns in
      dist = bf)

let qcheck_dijkstra_path_consistent =
  QCheck.Test.make ~name:"reconstructed path weight matches the distance"
    ~count:200 (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let n = Topology.num_nodes topo in
      let dist, _ = Shortest.dijkstra topo ~src:0 ~weight:Shortest.delay_ns in
      let ok = ref true in
      for dst = 1 to n - 1 do
        match
          Shortest.shortest_path topo ~src:0 ~dst ~weight:Shortest.delay_ns
        with
        | None -> if dist.(dst) <> max_int then ok := false
        | Some p ->
          if Kshortest.path_weight topo Shortest.delay_ns p <> dist.(dst) then
            ok := false
      done;
      !ok)

(* --- Yen --- *)

let yen_paper () =
  let topo, _ = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  let ps = Kshortest.yen topo ~src:s ~dst:d ~k:3 ~weight:Shortest.hops in
  Alcotest.(check int) "three paths exist" 3 (List.length ps);
  let ws = List.map (Kshortest.path_weight topo Shortest.hops) ps in
  Alcotest.(check bool) "sorted" true (List.sort compare ws = ws);
  let distinct = List.sort_uniq Path.compare ps in
  Alcotest.(check int) "distinct" 3 (List.length distinct)

let yen_exhaustive () =
  let topo, _ = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  let ps = Kshortest.yen topo ~src:s ~dst:d ~k:100 ~weight:Shortest.hops in
  Alcotest.(check bool) "at least 3" true (List.length ps >= 3);
  let distinct = List.sort_uniq Path.compare ps in
  Alcotest.(check int) "all distinct" (List.length ps) (List.length distinct);
  List.iter
    (fun p ->
      Alcotest.(check int) "ends at d" d (Path.dst p);
      Alcotest.(check int) "starts at s" s (Path.src p))
    ps

let qcheck_yen_sorted =
  QCheck.Test.make ~name:"yen yields sorted, distinct simple paths" ~count:100
    (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let n = Topology.num_nodes topo in
      let dst = n - 1 in
      if dst = 0 then true
      else begin
        let ps = Kshortest.yen topo ~src:0 ~dst ~k:5 ~weight:Shortest.delay_ns in
        let ws = List.map (Kshortest.path_weight topo Shortest.delay_ns) ps in
        List.sort compare ws = ws
        && List.length (List.sort_uniq Path.compare ps) = List.length ps
      end)

let qcheck_yen_agrees_with_shortest =
  (* Every Yen path is simple (no repeated node), and the first one —
     when any exists — has exactly Dijkstra's distance. *)
  QCheck.Test.make ~name:"yen: simple paths, first agrees with dijkstra"
    ~count:100 (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let n = Topology.num_nodes topo in
      let dst = n - 1 in
      if dst = 0 then true
      else begin
        let ps =
          Kshortest.yen topo ~src:0 ~dst ~k:4 ~weight:Shortest.delay_ns
        in
        let simple p =
          let nodes = Array.to_list p.Path.nodes in
          List.length (List.sort_uniq compare nodes) = List.length nodes
        in
        let dist, _ = Shortest.dijkstra topo ~src:0 ~weight:Shortest.delay_ns in
        List.for_all simple ps
        &&
        match ps with
        | [] -> dist.(dst) = max_int
        | first :: _ ->
          Kshortest.path_weight topo Shortest.delay_ns first = dist.(dst)
      end)

(* --- Disjoint pairs --- *)

let disjoint_paper () =
  let topo, _ = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  match Disjoint.link_disjoint_pair topo ~src:s ~dst:d ~weight:Shortest.hops with
  | Some (p, q) ->
    Alcotest.(check bool) "link disjoint" true (Path.disjoint p q);
    Alcotest.(check bool) "ordered by weight" true
      (Path.hop_count p <= Path.hop_count q)
  | None -> Alcotest.fail "the paper network has a disjoint pair"

let disjoint_none_on_chain () =
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let c = Topology.add_node b "c" in
  ignore (Topology.add_link b ~u:a ~v:c ~capacity_bps:(mb 1) ~delay:(ms 1));
  let topo = Topology.build b in
  Alcotest.(check bool) "single link has no disjoint pair" true
    (Disjoint.link_disjoint_pair topo ~src:a ~dst:c ~weight:Shortest.hops
     = None)

let disjoint_trap_topology () =
  (* The classic "trap": the shortest path s-a-b-d uses links that both
     members of the optimal disjoint pair need to avoid; a naive
     remove-shortest-and-retry fails here, Bhandari does not. *)
  let b = Topology.builder () in
  let s = Topology.add_node b "s" in
  let a = Topology.add_node b "a" in
  let bb = Topology.add_node b "b" in
  let d = Topology.add_node b "d" in
  let link u v w =
    ignore (Topology.add_link b ~u ~v ~capacity_bps:(mb 1) ~delay:(ms w))
  in
  link s a 1;
  link a bb 1;
  link bb d 1;
  link s bb 10;
  link a d 10;
  let topo = Topology.build b in
  match
    Disjoint.link_disjoint_pair topo ~src:s ~dst:d ~weight:Shortest.delay_ns
  with
  | Some (p, q) ->
    Alcotest.(check bool) "disjoint" true (Path.disjoint p q);
    let total =
      Kshortest.path_weight topo Shortest.delay_ns p
      + Kshortest.path_weight topo Shortest.delay_ns q
    in
    Alcotest.(check int) "optimal total: s-a-d + s-b-d" (ms 22) total
  | None -> Alcotest.fail "trap topology has a disjoint pair"

let bridges_detection () =
  (* Chain a-b-c: both links are bridges.  Add a parallel a-b link: only
     b-c remains one.  The paper network has no bridges at all. *)
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let bb = Topology.add_node b "b" in
  let c = Topology.add_node b "c" in
  let l1 = Topology.add_link b ~u:a ~v:bb ~capacity_bps:(mb 1) ~delay:0 in
  let l2 = Topology.add_link b ~u:bb ~v:c ~capacity_bps:(mb 1) ~delay:0 in
  let topo = Topology.build b in
  Alcotest.(check (list int)) "chain: both links" [ l1; l2 ]
    (Disjoint.bridges topo);
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let bb = Topology.add_node b "b" in
  let c = Topology.add_node b "c" in
  let _ = Topology.add_link b ~u:a ~v:bb ~capacity_bps:(mb 1) ~delay:0 in
  let _ = Topology.add_link b ~u:a ~v:bb ~capacity_bps:(mb 1) ~delay:0 in
  let l2 = Topology.add_link b ~u:bb ~v:c ~capacity_bps:(mb 1) ~delay:0 in
  let topo = Topology.build b in
  Alcotest.(check (list int)) "parallel pair is no bridge" [ l2 ]
    (Disjoint.bridges topo);
  let paper_topo, _ = paper () in
  Alcotest.(check (list int)) "the paper network is 2-edge-connected" []
    (Disjoint.bridges paper_topo)

let qcheck_bridges_vs_removal =
  (* Oracle: a link is a bridge iff removing it disconnects its
     endpoints (checked with a filtered Dijkstra). *)
  QCheck.Test.make ~name:"bridges = links whose removal disconnects"
    ~count:100 (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let br = Disjoint.bridges topo in
      Array.for_all
        (fun (l : Topology.link) ->
          let dist, _ =
            Shortest.dijkstra topo ~src:l.Topology.u ~weight:Shortest.hops
              ~avoid_links:(fun lid -> lid = l.Topology.id)
          in
          let disconnects = dist.(l.Topology.v) = max_int in
          disconnects = List.mem l.Topology.id br)
        (Topology.links topo))

let qcheck_disjoint_really_disjoint =
  QCheck.Test.make ~name:"bhandari pairs are link-disjoint" ~count:100
    (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let n = Topology.num_nodes topo in
      if n < 2 then true
      else
        match
          Disjoint.link_disjoint_pair topo ~src:0 ~dst:(n - 1)
            ~weight:Shortest.delay_ns
        with
        | None -> true
        | Some (p, q) ->
          Path.disjoint p q
          && Path.src p = 0 && Path.dst p = n - 1
          && Path.src q = 0 && Path.dst q = n - 1)

(* --- Max flow --- *)

let maxflow_paper () =
  let topo, _ = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  let flow = Maxflow.max_flow topo ~src:s ~dst:d in
  Alcotest.(check int) "max flow 140 Mbps (s's outgoing cut)" (mb 140) flow;
  let cut = Maxflow.min_cut topo ~src:s ~dst:d in
  let cut_cap =
    List.fold_left
      (fun acc lid -> acc + (Topology.link topo lid).Topology.capacity_bps)
      0 cut
  in
  Alcotest.(check int) "min cut capacity = max flow" flow cut_cap

let maxflow_series () =
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let m = Topology.add_node b "m" in
  let z = Topology.add_node b "z" in
  ignore (Topology.add_link b ~u:a ~v:m ~capacity_bps:(mb 30) ~delay:0);
  ignore (Topology.add_link b ~u:m ~v:z ~capacity_bps:(mb 10) ~delay:0);
  let topo = Topology.build b in
  Alcotest.(check int) "series takes the min" (mb 10)
    (Maxflow.max_flow topo ~src:a ~dst:z)

let maxflow_parallel () =
  let b = Topology.builder () in
  let a = Topology.add_node b "a" in
  let z = Topology.add_node b "z" in
  ignore (Topology.add_link b ~u:a ~v:z ~capacity_bps:(mb 30) ~delay:0);
  ignore (Topology.add_link b ~u:a ~v:z ~capacity_bps:(mb 12) ~delay:0);
  let topo = Topology.build b in
  Alcotest.(check int) "parallel links add" (mb 42)
    (Maxflow.max_flow topo ~src:a ~dst:z)

let maxflow_bounds_lp () =
  (* The chain of bounds behind the audit's lp.maxflow-bound invariant:
     audited goodput <= LP optimum (90 Mbps) <= max flow (140 Mbps). *)
  let topo, paths = paper () in
  let s = Topology.node_id topo "s" and d = Topology.node_id topo "d" in
  let flow = Maxflow.max_flow topo ~src:s ~dst:d in
  Alcotest.(check int) "paper max flow" (mb 140) flow;
  let opt = Constraints.optimum topo paths in
  Alcotest.(check bool) "LP optimum within max flow" true
    (opt.Constraints.total_bps <= float_of_int flow +. 1e-6)

let qcheck_maxflow_bounds_lp =
  QCheck.Test.make ~name:"LP optimum <= max flow on generated overlap nets"
    ~count:50
    QCheck.(triple (int_range 2 5) (int_range 5 30) (int_range 1 8))
    (fun (n, base_mbps, step_mbps) ->
      let topo, paths =
        Generate.pairwise_overlap ~n
          ~cap_bps:(Generate.spread_caps ~base_mbps ~step_mbps)
          ()
      in
      let opt = Constraints.optimum topo paths in
      let p0 = List.hd paths in
      let flow =
        Maxflow.max_flow topo ~src:(Path.src p0) ~dst:(Path.dst p0)
      in
      opt.Constraints.total_bps <= float_of_int flow +. 1e-6)

let qcheck_flow_bounded =
  QCheck.Test.make ~name:"max flow bounded by the source's capacity"
    ~count:100 (QCheck.make gen_graph) (fun g ->
      let topo = build_graph g in
      let n = Topology.num_nodes topo in
      if n < 2 then true
      else begin
        let flow = Maxflow.max_flow topo ~src:0 ~dst:(n - 1) in
        let out_cap =
          List.fold_left
            (fun acc (lid, _) ->
              acc + (Topology.link topo lid).Topology.capacity_bps)
            0 (Topology.neighbours topo 0)
        in
        flow <= out_cap && flow >= 0
      end)

(* --- Generators --- *)

let generate_paper_equivalent () =
  let topo, paths =
    Generate.pairwise_overlap ~n:3 ~cap_bps:Generate.paper_caps ()
  in
  let opt = Constraints.optimum topo paths in
  Alcotest.(check (float 1e-3)) "same optimum as Fig. 1c" 90e6
    opt.Constraints.total_bps;
  let x = opt.Constraints.per_path_bps in
  Alcotest.(check (float 1e-3)) "x1" 10e6 x.(0);
  Alcotest.(check (float 1e-3)) "x2" 30e6 x.(1);
  Alcotest.(check (float 1e-3)) "x3" 50e6 x.(2)

let qcheck_generate_pairwise =
  QCheck.Test.make ~name:"pairwise_overlap: every pair shares exactly 1 link"
    ~count:20
    QCheck.(2 -- 5)
    (fun n ->
      let topo, paths =
        Generate.pairwise_overlap ~n
          ~cap_bps:(Generate.spread_caps ~base_mbps:20 ~step_mbps:7) ()
      in
      ignore topo;
      let arr = Array.of_list paths in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if List.length (Path.shared_links arr.(i) arr.(j)) <> 1 then
            ok := false
        done
      done;
      !ok)

let qcheck_generate_lp_structure =
  QCheck.Test.make
    ~name:"pairwise_overlap: LP optimum below every pair constraint"
    ~count:20
    QCheck.(2 -- 5)
    (fun n ->
      let topo, paths =
        Generate.pairwise_overlap ~n
          ~cap_bps:(Generate.spread_caps ~base_mbps:20 ~step_mbps:7) ()
      in
      let opt = Constraints.optimum topo paths in
      let x = opt.Constraints.per_path_bps in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let cap = float_of_int (Generate.spread_caps ~base_mbps:20 ~step_mbps:7 i j) in
          if x.(i) +. x.(j) > cap +. 1.0 then ok := false
        done
      done;
      !ok)

let generate_dumbbell () =
  let topo, paths = Generate.dumbbell ~flows:3 ~bottleneck_bps:(mb 10) () in
  Alcotest.(check int) "three paths" 3 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "3 hops" 3 (Path.hop_count p);
      Alcotest.(check int) "bottlenecked" (mb 10) (Path.bottleneck_bps topo p))
    paths;
  (* All pairs share exactly the bottleneck link. *)
  match paths with
  | [ p1; p2; _ ] ->
    Alcotest.(check int) "share the middle" 1
      (List.length (Path.shared_links p1 p2))
  | _ -> Alcotest.fail "expected three paths"

let generate_parking_lot () =
  let topo, e2e, crosses = Generate.parking_lot ~hops:4 ~cap_bps:(mb 10) () in
  Alcotest.(check int) "end-to-end spans the chain" 4 (Path.hop_count e2e);
  Alcotest.(check int) "one cross per hop" 4 (List.length crosses);
  List.iter
    (fun c ->
      Alcotest.(check int) "cross shares exactly one backbone link" 1
        (List.length (Path.shared_links e2e c)))
    crosses;
  (* LP: e2e flow x0 and each cross x_i satisfy x0 + x_i <= 10 on every
     hop; optimum is x0 = 0, crosses = 10 -> total 40 + 0. *)
  let opt = Constraints.optimum topo (e2e :: crosses) in
  Alcotest.(check (float 1e-3)) "parking lot optimum starves e2e" 40e6
    opt.Constraints.total_bps

let generate_validation () =
  Alcotest.(check bool) "n < 2 rejected" true
    (try ignore (Generate.pairwise_overlap ~n:1 ~cap_bps:Generate.paper_caps ()); false
     with Invalid_argument _ -> true)

(* --- Constraints (Fig. 1c) --- *)

let constraints_paper () =
  let topo, paths = paper () in
  let sys = Constraints.extract topo paths in
  Alcotest.(check int) "one row per used link" 8
    (Array.length sys.Constraints.link_rows);
  let opt = Constraints.optimum topo paths in
  Alcotest.(check (float 1e-3)) "total 90 Mbps" 90e6 opt.Constraints.total_bps;
  let x = opt.Constraints.per_path_bps in
  Alcotest.(check (float 1e-3)) "x1 = 10" 10e6 x.(0);
  Alcotest.(check (float 1e-3)) "x2 = 30" 30e6 x.(1);
  Alcotest.(check (float 1e-3)) "x3 = 50" 50e6 x.(2);
  Alcotest.(check int) "three binding bottlenecks" 3
    (List.length opt.Constraints.bottlenecks)

let greedy_pareto () =
  let topo, paths = paper () in
  (* Fill Path 2 first (the paper's narrative): (0, 40, 40) = 80 Mbps. *)
  let x = Constraints.greedy_from topo paths ~order:[ 1; 0; 2 ] in
  Alcotest.(check (float 1e-3)) "x1" 0.0 x.(0);
  Alcotest.(check (float 1e-3)) "x2" 40e6 x.(1);
  Alcotest.(check (float 1e-3)) "x3" 40e6 x.(2);
  (* Fill Path 1 first: 40 + 0 + 20 = 60 Mbps — even worse. *)
  let y = Constraints.greedy_from topo paths ~order:[ 0; 1; 2 ] in
  Alcotest.(check (float 1e-3)) "greedy from path 1" 60e6
    (y.(0) +. y.(1) +. y.(2))

let greedy_validation () =
  let topo, paths = paper () in
  Alcotest.(check bool) "bad permutation rejected" true
    (try
       ignore (Constraints.greedy_from topo paths ~order:[ 0; 0; 2 ]);
       false
     with Invalid_argument _ -> true)

let qcheck_greedy_feasible =
  QCheck.Test.make
    ~name:"greedy allocations are feasible and never beat the LP" ~count:50
    QCheck.(triple (0 -- 2) (0 -- 2) (0 -- 2))
    (fun (a, b, c) ->
      if List.sort compare [ a; b; c ] <> [ 0; 1; 2 ] then true
      else begin
        let topo, paths = paper () in
        let x = Constraints.greedy_from topo paths ~order:[ a; b; c ] in
        let sys = Constraints.extract topo paths in
        let total = Array.fold_left ( +. ) 0.0 x in
        Lp.Simplex.feasible ~a:sys.Constraints.a ~b:sys.Constraints.b ~x
          ~eps:1.0
        && total <= 90e6 +. 1.0
      end)

let () =
  Alcotest.run "netgraph"
    [
      ( "topology",
        [
          Alcotest.test_case "paper network shape" `Quick topology_basic;
          Alcotest.test_case "builder validation" `Quick topology_validation;
          Alcotest.test_case "other_end" `Quick other_end;
        ] );
      ( "path",
        [
          Alcotest.test_case "paper paths and overlaps" `Quick
            path_construction;
          Alcotest.test_case "invalid paths rejected" `Quick path_validation;
          Alcotest.test_case "of_links round trip" `Quick
            path_of_links_roundtrip;
        ] );
      ( "shortest",
        [
          Alcotest.test_case "paper shortest path" `Quick dijkstra_paper;
          Alcotest.test_case "unreachable nodes" `Quick dijkstra_unreachable;
          QCheck_alcotest.to_alcotest qcheck_dijkstra_vs_bf;
          QCheck_alcotest.to_alcotest qcheck_dijkstra_path_consistent;
        ] );
      ( "kshortest",
        [
          Alcotest.test_case "paper three paths" `Quick yen_paper;
          Alcotest.test_case "exhaustive enumeration" `Quick yen_exhaustive;
          QCheck_alcotest.to_alcotest qcheck_yen_sorted;
          QCheck_alcotest.to_alcotest qcheck_yen_agrees_with_shortest;
        ] );
      ( "disjoint",
        [
          Alcotest.test_case "paper disjoint pair" `Quick disjoint_paper;
          Alcotest.test_case "chain has none" `Quick disjoint_none_on_chain;
          Alcotest.test_case "trap topology solved optimally" `Quick
            disjoint_trap_topology;
          Alcotest.test_case "bridge detection" `Quick bridges_detection;
          QCheck_alcotest.to_alcotest qcheck_bridges_vs_removal;
          QCheck_alcotest.to_alcotest qcheck_disjoint_really_disjoint;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "paper value and min cut" `Quick maxflow_paper;
          Alcotest.test_case "series" `Quick maxflow_series;
          Alcotest.test_case "parallel" `Quick maxflow_parallel;
          Alcotest.test_case "bounds the LP optimum" `Quick maxflow_bounds_lp;
          QCheck_alcotest.to_alcotest qcheck_maxflow_bounds_lp;
          QCheck_alcotest.to_alcotest qcheck_flow_bounded;
        ] );
      ( "generate",
        [
          Alcotest.test_case "paper instance via the generator" `Quick
            generate_paper_equivalent;
          Alcotest.test_case "dumbbell" `Quick generate_dumbbell;
          Alcotest.test_case "parking lot" `Quick generate_parking_lot;
          Alcotest.test_case "validation" `Quick generate_validation;
          QCheck_alcotest.to_alcotest qcheck_generate_pairwise;
          QCheck_alcotest.to_alcotest qcheck_generate_lp_structure;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "Fig. 1c optimum" `Quick constraints_paper;
          Alcotest.test_case "greedy Pareto points" `Quick greedy_pareto;
          Alcotest.test_case "greedy validation" `Quick greedy_validation;
          QCheck_alcotest.to_alcotest qcheck_greedy_feasible;
        ] );
    ]
