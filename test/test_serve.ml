(* Scenario-service tests: canonical hashing, the content-addressed
   store's integrity layers, batch parsing, trend history, and the
   cache-correctness property the whole subsystem rests on — a second
   submission of an identical batch performs zero simulation work and
   returns bit-identical results. *)

let sexps s = Events.Sexp.parse_string s

let batch_of s = Serve.Batch.of_sexps ~base_dir:"." (sexps s)

let one_entry s =
  match batch_of s with
  | [ e ] -> e
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

(* A fresh store directory per test; dune runs tests sandboxed, so a
   relative directory in the cwd is private to the run. *)
let fresh_store =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Serve.Store.open_store ~dir:(Printf.sprintf "_serve_store_%d" !counter)

(* Fast paper-network cell: 0.5 simulated seconds is enough to produce
   nonzero goodput on every path while keeping the suite quick. *)
let tiny ?(seed = 1) ?(cc = "cubic") ?(label = "tiny") () =
  one_entry
    (Printf.sprintf
       "(preset (label %s) (cc %s) (seed %d) (duration-s 0.5) (sampling-ms 100))"
       label cc seed)

(* --- canonical hashing --- *)

let hash_field_order () =
  let a =
    one_entry
      {|(preset (cc lia) (seed 3) (default 1) (duration-s 2) (scheduler round-robin))|}
  and b =
    one_entry
      {|(preset (scheduler round-robin) (duration-s 2) (default 1) (seed 3) (cc lia))|}
  in
  Alcotest.(check string)
    "field order does not change the hash" (Serve.Service.hash_entry a)
    (Serve.Service.hash_entry b)

let hash_sensitivity () =
  let h spec_s = Serve.Service.hash_entry (one_entry spec_s) in
  let base = h {|(preset (cc cubic) (seed 1) (duration-s 2))|} in
  Alcotest.(check bool)
    "seed changes the hash" false
    (base = h {|(preset (cc cubic) (seed 2) (duration-s 2))|});
  Alcotest.(check bool)
    "cc changes the hash" false
    (base = h {|(preset (cc lia) (seed 1) (duration-s 2))|});
  Alcotest.(check bool)
    "duration changes the hash" false
    (base = h {|(preset (cc cubic) (seed 1) (duration-s 3))|});
  Alcotest.(check bool)
    "label does not change the hash" true
    (base = h {|(preset (label renamed) (cc cubic) (seed 1) (duration-s 2))|})

let hash_ignores_observation () =
  let spec = (tiny ()).Serve.Batch.spec in
  let observed =
    {
      spec with
      Core.Scenario.trace_limit = Some 64;
      audit = true;
      obs = Some Obs.Collect.default_conf;
    }
  in
  Alcotest.(check string)
    "trace/audit/obs are excluded from the hash" (Core.Canon.hash spec)
    (Core.Canon.hash observed);
  Alcotest.(check bool)
    "canonical text mentions its version" true
    (String.length (Core.Canon.text spec) > 0
    && Core.Canon.short (Core.Canon.hash spec)
       = String.sub (Core.Canon.hash spec) 0 12)

(* --- batch parsing --- *)

let grid_expansion () =
  let entries =
    batch_of {|(grid (ccs cubic lia) (defaults 1 2) (seeds 1 2) (duration-s 1))|}
  in
  Alcotest.(check int) "2 ccs x 2 defaults x 2 seeds" 8 (List.length entries);
  let labels = List.map (fun e -> e.Serve.Batch.label) entries in
  Alcotest.(check bool)
    "generated labels" true
    (List.mem "paper-cubic-d1-s1" labels && List.mem "paper-lia-d2-s2" labels);
  let hashes =
    List.sort_uniq compare (List.map Serve.Service.hash_entry entries)
  in
  Alcotest.(check int) "all cells hash distinctly" 8 (List.length hashes)

let batch_rejects () =
  let bad s =
    match batch_of s with
    | exception Events.Sexp.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed batch %s" s
  in
  bad {|(mystery (cc cubic))|};
  bad {|(preset (cc warpdrive))|};
  bad {|(experiment (label x))|}

(* --- store integrity --- *)

let sample_record hash =
  {
    Serve.Store.hash;
    label = "sample";
    cc = "olia";
    seed = 7;
    paths = 3;
    tail_mbps = 88.125;
    per_path_mbps = [ (0, 30.5); (1, 29.25); (2, 28.375) ];
    opt_mbps = 90.;
    delivered_bytes = 5_500_000;
    completed_at_s = Some 3.25;
    subflow_churn = 2;
    cross_traffic_bytes = 123_456;
    queue_drops = 17;
    sim_events = 42_000;
    packets_created = 9_000;
    audit = Some { Serve.Store.violations = 0; checks = 1234 };
    metrics = [ ("engine.events_total", 42_000.); ("net.drops", 17.) ];
    wall_s = 0.25;
    alloc_words = 1e6;
    created_unix = 1.75e9;
  }

let store_roundtrip () =
  let store = fresh_store () in
  let hash = String.make 32 'a' in
  let r = sample_record hash in
  Alcotest.(check bool) "empty lookup" true (Serve.Store.lookup store ~hash = None);
  Serve.Store.insert store r;
  (match Serve.Store.lookup store ~hash with
  | None -> Alcotest.fail "inserted record not found"
  | Some r' ->
    Alcotest.(check bool)
      "roundtrip preserves every deterministic field" true
      (Serve.Store.same_results r r');
    Alcotest.(check (float 0.)) "perf metadata survives too" r.Serve.Store.wall_s
      r'.Serve.Store.wall_s);
  Alcotest.(check int) "count" 1 (Serve.Store.count store);
  Alcotest.(check int) "invalidate removes it" 1 (Serve.Store.invalidate store);
  Alcotest.(check int) "store empty again" 0 (Serve.Store.count store)

(* Rewrite just the header line: the body (and its checksum) stay
   valid, so the record must read as stale — a clean miss — not corrupt
   and never a hit. *)
let store_version_bump () =
  let store = fresh_store () in
  let hash = String.make 32 'b' in
  Serve.Store.insert store (sample_record hash);
  let path = Serve.Store.record_path store ~hash in
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let nl = String.index content '\n' in
  let bumped =
    Printf.sprintf "mptcp-sim-record %d%s"
      (Serve.Store.format_version + 1)
      (String.sub content nl (String.length content - nl))
  in
  let oc = open_out_bin path in
  output_string oc bumped;
  close_out oc;
  Alcotest.(check bool)
    "future-version record is a miss" true
    (Serve.Store.lookup store ~hash = None);
  Alcotest.(check int) "counted as stale" 1 (Serve.Store.stale_seen store);
  Alcotest.(check int) "not counted as corrupt" 0 (Serve.Store.corrupt_seen store)

let store_corruption () =
  let store = fresh_store () in
  let damage hash mangle =
    Serve.Store.insert store (sample_record hash);
    let path = Serve.Store.record_path store ~hash in
    let content =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let oc = open_out_bin path in
    output_string oc (mangle content);
    close_out oc;
    Alcotest.(check bool)
      "damaged record is a miss, not a mis-read" true
      (Serve.Store.lookup store ~hash = None)
  in
  (* Truncation: cut the file mid-body. *)
  damage (String.make 32 'c') (fun c -> String.sub c 0 (String.length c / 2));
  (* Bit rot: flip one digit inside the body, checksum now disagrees. *)
  damage (String.make 32 'd') (fun c ->
      let i = String.index c '7' in
      String.mapi (fun j ch -> if j = i then '8' else ch) c);
  (* Garbage file. *)
  damage (String.make 32 'e') (fun _ -> "not a record at all");
  Alcotest.(check int) "all three counted corrupt" 3
    (Serve.Store.corrupt_seen store);
  Alcotest.(check int) "none counted stale" 0 (Serve.Store.stale_seen store)

(* GC evicts oldest-mtime first until the survivors fit the budget;
   the sweep's byte accounting is exact and the per-store eviction
   counter accumulates across sweeps. *)
let store_gc () =
  let store = fresh_store () in
  let hashes =
    List.map (fun c -> String.make 32 c) [ 'f'; 'g'; 'h'; 'i' ]
  in
  List.iteri
    (fun i hash ->
      Serve.Store.insert store (sample_record hash);
      (* Pin distinct, increasing mtimes so "oldest" is unambiguous
         regardless of filesystem timestamp granularity. *)
      let t = 1.7e9 +. (float_of_int i *. 100.) in
      Unix.utimes (Serve.Store.record_path store ~hash) t t)
    hashes;
  let total = Serve.Store.bytes store in
  Alcotest.(check bool) "records occupy bytes" true (total > 0);
  (* Records are identical sizes, so half the bytes keep the newest
     two and evict the oldest two. *)
  let stats = Serve.Store.gc store ~max_bytes:(total / 2) in
  Alcotest.(check int) "examined all" 4 stats.Serve.Store.examined;
  Alcotest.(check int) "evicted oldest two" 2 stats.Serve.Store.evicted;
  Alcotest.(check int) "kept newest two" 2 stats.Serve.Store.kept;
  Alcotest.(check int) "byte split is exact" total
    (stats.Serve.Store.evicted_bytes + stats.Serve.Store.kept_bytes);
  Alcotest.(check int) "kept bytes within budget" stats.Serve.Store.kept_bytes
    (Serve.Store.bytes store);
  List.iteri
    (fun i hash ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d %s" i (if i < 2 then "evicted" else "kept"))
        (i >= 2)
        (Serve.Store.lookup store ~hash <> None))
    hashes;
  (* Idempotent under the same budget; a zero budget clears the rest. *)
  Alcotest.(check int) "second sweep evicts nothing" 0
    (Serve.Store.gc store ~max_bytes:(total / 2)).Serve.Store.evicted;
  Alcotest.(check int) "zero budget clears" 2
    (Serve.Store.gc store ~max_bytes:0).Serve.Store.evicted;
  Alcotest.(check int) "eviction counter accumulates" 4
    (Serve.Store.evicted_total store);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Store.gc: negative byte budget") (fun () ->
      ignore (Serve.Store.gc store ~max_bytes:(-1)))

(* --- trend history --- *)

let trend_entry i cached =
  {
    Serve.Trend.at_unix = 1.7e9 +. float_of_int i;
    label = (if i mod 2 = 0 then "even" else "odd");
    hash = String.make 32 'f';
    cc = "cubic";
    cached;
    tail_mbps = 80. +. float_of_int i;
    opt_mbps = 90.;
    wall_s = 0.1;
    delivered_bytes = 1_000_000 * (i + 1);
    sim_events = 10_000;
  }

let trend_roundtrip () =
  let dir = Serve.Store.dir (fresh_store ()) in
  List.iter
    (fun i -> Serve.Trend.append ~dir (trend_entry i (i > 1)))
    [ 0; 1; 2; 3 ];
  (* A torn/foreign line must be skipped and counted, not fatal. *)
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (Filename.concat dir "trend.log")
  in
  output_string oc "(run 999 (garbage from the future))\n";
  output_string oc "not even a sexp (((\n";
  close_out oc;
  let entries, skipped = Serve.Trend.load ~dir in
  Alcotest.(check int) "entries load in order" 4 (List.length entries);
  Alcotest.(check int) "bad lines skipped, counted" 2 skipped;
  Alcotest.(check (float 0.)) "append order preserved" 83.
    (List.nth entries 3).Serve.Trend.tail_mbps;
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Serve.Trend.report fmt entries;
  Format.pp_print_flush fmt ();
  let table = Buffer.contents buf in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report lists both labels" true
    (contains table "even" && contains table "odd");
  Alcotest.(check bool) "report shows the trend arrow" true
    (contains table "80.0 -> 82.0");
  let buf2 = Buffer.create 64 in
  let fmt2 = Format.formatter_of_buffer buf2 in
  Serve.Trend.report fmt2 [];
  Format.pp_print_flush fmt2 ();
  Alcotest.(check bool) "empty store message" true
    (contains (Buffer.contents buf2) "empty")

(* --- the service: cache correctness end to end --- *)

let find_record outcomes label =
  match
    List.find_opt (fun (e, _) -> e.Serve.Batch.label = label) outcomes
  with
  | Some (_, Serve.Service.Hit r) -> (`Hit, r)
  | Some (_, Serve.Service.Fresh r) -> (`Fresh, r)
  | None -> Alcotest.failf "no outcome for %s" label

let second_submission_is_free () =
  let store = fresh_store () in
  let batch = [ tiny ~cc:"cubic" ~label:"a" (); tiny ~cc:"lia" ~label:"b" () ] in
  let outcomes1, stats1 = Serve.Service.run_batch ~jobs:1 ~store batch in
  Alcotest.(check int) "first pass: all fresh" 2 stats1.Serve.Service.fresh;
  Alcotest.(check bool)
    "first pass simulated" true
    (stats1.Serve.Service.fresh_sim_events > 0);
  let outcomes2, stats2 = Serve.Service.run_batch ~jobs:1 ~store batch in
  (* The acceptance criterion: an identical batch re-submission runs
     the engine for zero events. *)
  Alcotest.(check int) "second pass: zero simulation events" 0
    stats2.Serve.Service.fresh_sim_events;
  Alcotest.(check int) "second pass: all hits" 2 stats2.Serve.Service.hits;
  Alcotest.(check int) "second pass: nothing fresh" 0 stats2.Serve.Service.fresh;
  List.iter
    (fun label ->
      let k1, r1 = find_record outcomes1 label in
      let k2, r2 = find_record outcomes2 label in
      Alcotest.(check bool) "first fresh, second hit" true
        (k1 = `Fresh && k2 = `Hit);
      Alcotest.(check bool)
        "cached record bit-identical to the fresh run" true
        (Serve.Store.same_results r1 r2))
    [ "a"; "b" ];
  (* --no-cache re-simulates and must reproduce the same results. *)
  let outcomes3, stats3 =
    Serve.Service.run_batch ~jobs:1 ~cache:false ~store batch
  in
  Alcotest.(check int) "no-cache re-simulates" 2 stats3.Serve.Service.fresh;
  List.iter
    (fun label ->
      let _, r1 = find_record outcomes1 label in
      let _, r3 = find_record outcomes3 label in
      Alcotest.(check bool) "re-simulation is deterministic" true
        (Serve.Store.same_results r1 r3))
    [ "a"; "b" ];
  (* Every submission, hit or fresh, lands in the trend history. *)
  let entries, skipped = Serve.Trend.load ~dir:(Serve.Store.dir store) in
  Alcotest.(check int) "trend has all six submissions" 6 (List.length entries);
  Alcotest.(check int) "no skipped trend lines" 0 skipped;
  Alcotest.(check int) "two of them were hits" 2
    (List.length (List.filter (fun e -> e.Serve.Trend.cached) entries))

let duplicate_entries_simulate_once () =
  let store = fresh_store () in
  let e = tiny ~label:"dup" () in
  let outcomes, stats = Serve.Service.run_batch ~jobs:1 ~store [ e; e ] in
  Alcotest.(check int) "both outcomes answered" 2 (List.length outcomes);
  Alcotest.(check int) "one record stored" 1 (Serve.Store.count store);
  let _, r = find_record outcomes "dup" in
  Alcotest.(check int)
    "only one simulation ran" r.Serve.Store.sim_events
    stats.Serve.Service.fresh_sim_events

let jobs_do_not_change_results () =
  let batch =
    [
      tiny ~seed:1 ~label:"s1" ();
      tiny ~seed:2 ~label:"s2" ();
      tiny ~seed:3 ~label:"s3" ();
    ]
  in
  let serial_store = fresh_store () and pooled_store = fresh_store () in
  let serial, _ = Serve.Service.run_batch ~jobs:1 ~store:serial_store batch in
  let pooled, _ = Serve.Service.run_batch ~jobs:3 ~store:pooled_store batch in
  List.iter2
    (fun (ea, oa) (eb, ob) ->
      Alcotest.(check string) "submission order preserved" ea.Serve.Batch.label
        eb.Serve.Batch.label;
      let ra = match oa with Serve.Service.Hit r | Fresh r -> r in
      let rb = match ob with Serve.Service.Hit r | Fresh r -> r in
      Alcotest.(check bool)
        "parallel and serial runs agree bit for bit" true
        (Serve.Store.same_results ra rb))
    serial pooled

(* --- advisory in-flight claims (cross-process single-flight) --- *)

(* Two Store.t handles on one directory stand in for two processes:
   the claim lives in the filesystem, not in the handle. *)

let claim_exclusive () =
  let store = fresh_store () in
  let store2 = Serve.Store.open_store ~dir:(Serve.Store.dir store) in
  let hash = String.make 32 'a' in
  match Serve.Store.try_claim store ~hash with
  | `Busy -> Alcotest.fail "fresh hash was already busy"
  | `Claimed c ->
    (match Serve.Store.try_claim store2 ~hash with
    | `Busy -> ()
    | `Claimed _ -> Alcotest.fail "second handle claimed a held hash");
    Serve.Store.release_claim c;
    (* release is idempotent and frees the hash for the peer *)
    Serve.Store.release_claim c;
    (match Serve.Store.try_claim store2 ~hash with
    | `Claimed c2 -> Serve.Store.release_claim c2
    | `Busy -> Alcotest.fail "released claim still reads as busy")

let claim_stale_takeover () =
  let store = fresh_store () in
  let store2 = Serve.Store.open_store ~dir:(Serve.Store.dir store) in
  let hash = String.make 32 'b' in
  (match Serve.Store.try_claim store ~hash with
  | `Busy -> Alcotest.fail "fresh hash was already busy"
  | `Claimed _held_by_crashed_peer -> ());
  (* backdate the lock: its holder 'crashed' ten minutes ago *)
  let path = Serve.Store.claim_path store ~hash in
  let old = Unix.gettimeofday () -. 600. in
  Unix.utimes path old old;
  match Serve.Store.try_claim ~stale_after_s:120. store2 ~hash with
  | `Claimed c2 -> Serve.Store.release_claim c2
  | `Busy -> Alcotest.fail "stale lock was not taken over"

let claim_refresh () =
  let store = fresh_store () in
  let store2 = Serve.Store.open_store ~dir:(Serve.Store.dir store) in
  let hash = String.make 32 'e' in
  match Serve.Store.try_claim store ~hash with
  | `Busy -> Alcotest.fail "fresh hash was already busy"
  | `Claimed c ->
    (* the lock looks long-abandoned... *)
    let path = Serve.Store.claim_path store ~hash in
    let old = Unix.gettimeofday () -. 600. in
    Unix.utimes path old old;
    (* ...until the live holder refreshes it: no takeover *)
    Serve.Store.refresh_claim c;
    (match Serve.Store.try_claim ~stale_after_s:120. store2 ~hash with
    | `Busy -> ()
    | `Claimed _ -> Alcotest.fail "refreshed claim was stolen");
    Serve.Store.release_claim c;
    (* refresh after release is a no-op, not a lock resurrection *)
    Serve.Store.refresh_claim c;
    Alcotest.(check bool)
      "released lock stays gone through a late refresh" false
      (Sys.file_exists path)

let claim_adoption () =
  let store = fresh_store () in
  let store2 = Serve.Store.open_store ~dir:(Serve.Store.dir store) in
  let e = tiny ~label:"claimed" () in
  let hash = Serve.Service.hash_entry e in
  match Serve.Store.try_claim store ~hash with
  | `Busy -> Alcotest.fail "fresh hash was already busy"
  | `Claimed c ->
    (* handle 1 'is simulating' (holds the claim); its record lands *)
    let r, kind =
      Serve.Service.simulate_entry ~claim:false ~store e ~hash
    in
    Alcotest.(check bool)
      "the no-claim path always simulates" true
      (kind = Serve.Service.Simulated);
    (* handle 2 finds the claim held and the record present: it must
       adopt the peer's result, not re-simulate *)
    let r2, kind2 = Serve.Service.simulate_entry ~store:store2 e ~hash in
    Alcotest.(check bool)
      "second handle adopted the in-flight result" true
      (kind2 = Serve.Service.Adopted);
    Alcotest.(check bool)
      "adopted record equals the simulated one" true
      (Serve.Store.same_results r r2);
    Serve.Store.release_claim c

let claim_invisible_to_iteration () =
  let store = fresh_store () in
  let hash = String.make 32 'c' in
  match Serve.Store.try_claim store ~hash with
  | `Busy -> Alcotest.fail "fresh hash was already busy"
  | `Claimed c ->
    (* lock files are not records: counting, byte accounting, gc and
       invalidate must all skip them *)
    Alcotest.(check int) "count skips locks" 0 (Serve.Store.count store);
    Alcotest.(check int) "bytes skips locks" 0 (Serve.Store.bytes store);
    let g = Serve.Store.gc store ~max_bytes:0 in
    Alcotest.(check int) "gc examines no locks" 0 g.Serve.Store.examined;
    Alcotest.(check int) "invalidate removes no locks" 0
      (Serve.Store.invalidate store);
    Alcotest.(check bool)
      "the lock survives a full sweep" true
      (Sys.file_exists (Serve.Store.claim_path store ~hash));
    Serve.Store.release_claim c

let () =
  Alcotest.run "serve"
    [
      ( "canon",
        [
          Alcotest.test_case "field order" `Quick hash_field_order;
          Alcotest.test_case "sensitivity" `Quick hash_sensitivity;
          Alcotest.test_case "observation excluded" `Quick
            hash_ignores_observation;
        ] );
      ( "batch",
        [
          Alcotest.test_case "grid expansion" `Quick grid_expansion;
          Alcotest.test_case "rejects malformed" `Quick batch_rejects;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick store_roundtrip;
          Alcotest.test_case "version bump is stale" `Quick store_version_bump;
          Alcotest.test_case "corruption rejected" `Quick store_corruption;
          Alcotest.test_case "gc evicts oldest first" `Quick store_gc;
        ] );
      ( "trend",
        [ Alcotest.test_case "append, load, report" `Quick trend_roundtrip ] );
      ( "claims",
        [
          Alcotest.test_case "mutual exclusion across handles" `Quick
            claim_exclusive;
          Alcotest.test_case "stale lock takeover" `Quick claim_stale_takeover;
          Alcotest.test_case "live holder refresh defeats takeover" `Quick
            claim_refresh;
          Alcotest.test_case "in-flight adoption" `Slow claim_adoption;
          Alcotest.test_case "locks invisible to record iteration" `Quick
            claim_invisible_to_iteration;
        ] );
      ( "service",
        [
          Alcotest.test_case "second submission is free" `Slow
            second_submission_is_free;
          Alcotest.test_case "duplicates simulate once" `Slow
            duplicate_entries_simulate_once;
          Alcotest.test_case "jobs determinism" `Slow jobs_do_not_change_results;
        ] );
    ]
