(* Tests for the invariant-audit subsystem: the paper-figure grid runs
   clean under the full checker, deliberate misbehaviour (an
   oversubscribing qdisc, a duplicated wire packet) is caught with a
   usable report, and audited runs are deterministic across worker
   counts. *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let paper_spec ?net_config ~cc ~default ?(duration = 2) () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default topo in
  Core.Scenario.make ~topo ~paths ~cc ?net_config
    ~duration:(Engine.Time.s duration) ~sampling:(Engine.Time.ms 100)
    ~audit:true ()

let report_exn r =
  match r.Core.Scenario.audit with
  | Some rep -> rep
  | None -> Alcotest.fail "audited run returned no report"

(* Acceptance gate for the subsystem itself: every paper-figure cell
   (congestion control x default path) is violation-free, and the
   conservation ledger closes exactly. *)
let paper_grid_clean () =
  let grid =
    List.concat_map
      (fun cc -> List.map (fun d -> (cc, d)) [ 1; 2; 3 ])
      Mptcp.Algorithm.[ Cubic; Lia; Olia ]
  in
  let specs = List.map (fun (cc, default) -> paper_spec ~cc ~default ()) grid in
  let results = Core.Runner.scenarios specs in
  List.iter2
    (fun (cc, d) r ->
      let rep = report_exn r in
      if rep.Audit.total_violations > 0 then
        Alcotest.failf "%s default=%d:@.%s" (Mptcp.Algorithm.name cc) d
          (Format.asprintf "%a" Audit.pp_report rep);
      Alcotest.(check bool) "performed checks" true (rep.Audit.checks > 0);
      let l = rep.Audit.ledger in
      Alcotest.(check int) "ledger closes" l.Audit.injected_pkts
        (l.Audit.delivered_pkts + l.Audit.dropped_pkts + l.Audit.no_route_pkts
        + l.Audit.lost_down_pkts + l.Audit.inflight_pkts);
      Alcotest.(check bool) "traffic flowed" true (l.Audit.delivered_pkts > 0))
    grid results

(* The deliberately broken qdisc admits past the buffer limit; the
   occupancy invariant must fire, with a timestamped, self-describing
   report. *)
let broken_qdisc_caught () =
  let net_config =
    { Netsim.Net.qdisc = Netsim.Qdisc.Broken_oversubscribe; limit_pkts = 4;
      delay_jitter = Engine.Time.zero }
  in
  let spec =
    paper_spec ~cc:Mptcp.Algorithm.Cubic ~default:2 ~net_config ~duration:1 ()
  in
  let rep = report_exn (Core.Scenario.run spec) in
  Alcotest.(check bool) "violations found" true (rep.Audit.total_violations > 0);
  let occ =
    List.filter
      (fun v -> v.Audit.invariant = "link.occupancy")
      rep.Audit.violations
  in
  Alcotest.(check bool) "occupancy invariant fired" true (occ <> []);
  let text = Format.asprintf "%a" Audit.pp_violation (List.hd occ) in
  Alcotest.(check bool) "report names the invariant" true
    (contains text "link.occupancy");
  Alcotest.(check bool) "report is timestamped" true (contains text "[t=");
  let full = Format.asprintf "%a" Audit.pp_report rep in
  Alcotest.(check bool) "full report renders the ledger" true
    (contains full "injected")

(* Injecting the same wire packet twice is a conservation forgery the
   ledger must spot. *)
let duplicate_inject_caught () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let z = Netgraph.Topology.add_node b "z" in
  let lid =
    Netgraph.Topology.add_link b ~u:a ~v:z
      ~capacity_bps:(Netgraph.Topology.mbps 10) ~delay:(Engine.Time.ms 1)
  in
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 1) topo in
  let audit = Audit.create ~sched () in
  Audit.attach_net audit net;
  Netsim.Net.install_route net ~node:a ~dst:z ~tag:1 ~link:lid;
  let p =
    Packet.make_plain ~id:(Netsim.Net.fresh_packet_id net) ~src:a ~dst:z ~tag:1
      ~born:0 ~size:1500
  in
  Netsim.Net.inject net ~at:a p;
  Netsim.Net.inject net ~at:a p;
  Engine.Sched.run sched;
  Audit.finish audit ();
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists
       (fun v -> v.Audit.invariant = "conservation.duplicate-packet")
       (Audit.violations audit))

(* Audited runs must stay bit-for-bit reproducible whatever the domain
   count: same summaries, same check counts, zero violations on both
   sides. *)
let determinism_across_jobs () =
  let specs =
    List.map
      (fun cc -> paper_spec ~cc ~default:2 ~duration:1 ())
      Mptcp.Algorithm.[ Cubic; Lia; Olia ]
  in
  let r1 = Core.Runner.scenarios ~jobs:1 specs in
  let r4 = Core.Runner.scenarios ~jobs:4 specs in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "delivered bytes" a.Core.Scenario.delivered_bytes
        b.Core.Scenario.delivered_bytes;
      Alcotest.(check int) "events processed" a.Core.Scenario.events_processed
        b.Core.Scenario.events_processed;
      Alcotest.(check int) "queue drops" a.Core.Scenario.queue_drops
        b.Core.Scenario.queue_drops;
      Alcotest.(check (float 1e-9)) "tail mean"
        (Core.Scenario.tail_mean_mbps a)
        (Core.Scenario.tail_mean_mbps b);
      let ra = report_exn a and rb = report_exn b in
      Alcotest.(check int) "same check count" ra.Audit.checks rb.Audit.checks;
      Alcotest.(check int) "clean at jobs=1" 0 ra.Audit.total_violations;
      Alcotest.(check int) "clean at jobs=4" 0 rb.Audit.total_violations)
    r1 r4

let () =
  Alcotest.run "audit"
    [
      ( "paper-grid",
        [ Alcotest.test_case "cc x default path, all clean" `Quick
            paper_grid_clean ] );
      ( "misbehaviour",
        [
          Alcotest.test_case "broken qdisc caught" `Quick broken_qdisc_caught;
          Alcotest.test_case "duplicate inject caught" `Quick
            duplicate_inject_caught;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs=1 vs jobs=4" `Quick determinism_across_jobs ]
      );
    ]
