(* Seed-pinned property-based fuzzing sweep (also behind the @fuzz
   alias): 120 random audited scenarios — random pairwise-overlap
   topologies, congestion controllers, schedulers, qdiscs, buffers and
   jitter — must all be violation-free, 60 more must keep the packet
   freelist honest (no double release, no resurrection, coherent
   counters), and 100 analytic cases must produce converged,
   LP-feasible fluid equilibria.  The data-structure properties drive
   the timing wheel against the reference heap and the flat SACK
   scoreboard against a naive list model on random programs, and a
   final sweep re-checks jobs=1 vs jobs=4 bit-identity with the
   wheel's heap-shadow lockstep armed.  The pinned RNG keeps the sweep
   reproducible; QCheck shrinks any failure to a minimal case. *)

let () =
  exit
    (QCheck_base_runner.run_tests ~colors:false ~verbose:true
       ~rand:(Random.State.make [| 0x5eed |])
       [
         Fuzz.test ~count:120 ();
         Fuzz.pool_test ~count:60 ();
         Fuzz.fluid_test ~count:100 ();
         Fuzz.wheel_test ~count:400 ();
         Fuzz.scoreboard_test ~count:400 ();
         Fuzz.determinism_test ~count:20 ();
       ])
