(* Seed-pinned property-based fuzzing sweep (also behind the @fuzz
   alias): random audited scenarios — random pairwise-overlap
   topologies, congestion controllers, schedulers, qdiscs, buffers and
   jitter — must all be violation-free, more must keep the packet
   freelist honest (no double release, no resurrection, coherent
   counters), and the analytic cases must produce converged,
   LP-feasible fluid equilibria.  The dynamic sweep interleaves random
   timed events (link kills and repairs, capacity cuts and ramps,
   delay/loss changes, subflow churn, cross-traffic) with the same
   topologies and requires the full audit to stay clean.  The
   data-structure properties drive the timing wheel against the
   reference heap and the flat SACK scoreboard against a naive list
   model on random programs, and the final sweeps re-check jobs=1 vs
   jobs=4 bit-identity — static and dynamic — with the wheel's
   heap-shadow lockstep armed.  The hybrid sweep crosses the same
   topologies with random fluid background mixes (CBR and windowed
   classes, staggered activations) and requires audit-clean,
   buffer-respecting, jobs-deterministic co-simulations.  The pinned
   RNG keeps the sweep reproducible; QCheck shrinks any failure to a
   minimal case.

   The daemon sweep feeds protocol garbage (unframed bytes, oversized
   and truncated frames, bit flips, unknown forms, wrong versions) to a
   live resident daemon and requires typed error replies, continued
   service and a clean drain.

   Case counts multiply by FUZZ_SCALE when set: `dune build @fuzz-long`
   runs the whole sweep at 10x depth.  FUZZ_ONLY=<name> restricts the
   run to one named sweep (the @daemon alias uses FUZZ_ONLY=daemon). *)

let scale =
  match Sys.getenv_opt "FUZZ_SCALE" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> invalid_arg "FUZZ_SCALE must be a positive integer")

let n count = count * scale

let sweeps =
  [
    ("audit", Fuzz.test ~count:(n 120) ());
    ("pool", Fuzz.pool_test ~count:(n 60) ());
    ("fluid", Fuzz.fluid_test ~count:(n 100) ());
    ("events", Fuzz.events_test ~count:(n 200) ());
    ("hybrid", Fuzz.hybrid_test ~count:(n 40) ());
    ("wheel", Fuzz.wheel_test ~count:(n 400) ());
    ("scoreboard", Fuzz.scoreboard_test ~count:(n 400) ());
    ("determinism", Fuzz.determinism_test ~count:(n 20) ());
    ("events-determinism", Fuzz.events_determinism_test ~count:(n 12) ());
    ("daemon", Fuzz.daemon_test ~count:(n 12) ());
  ]

let () =
  let selected =
    match Sys.getenv_opt "FUZZ_ONLY" with
    | None | Some "" -> List.map snd sweeps
    | Some key -> (
      match List.assoc_opt key sweeps with
      | Some t -> [ t ]
      | None ->
        Printf.eprintf "FUZZ_ONLY=%s matches no sweep (have: %s)\n" key
          (String.concat ", " (List.map fst sweeps));
        exit 2)
  in
  exit
    (QCheck_base_runner.run_tests ~colors:false ~verbose:true
       ~rand:(Random.State.make [| 0x5eed |])
       selected)
