(* Tests for the MPTCP layer: data-sequence reassembly, the coupled
   congestion-control laws (LIA alpha against hand-computed values, OLIA
   alpha sets, BALIA/EWTCP gains), schedulers, the path manager, and
   end-to-end connections over the simulator. *)

let ms = Engine.Time.ms
let mb = Netgraph.Topology.mbps
let mss = Packet.default_mss

(* --- Reassembly --- *)

let reassembly_in_order () =
  let r = Mptcp.Reassembly.create () in
  Mptcp.Reassembly.insert r ~dseq:0 ~len:100;
  Mptcp.Reassembly.insert r ~dseq:100 ~len:100;
  Alcotest.(check int) "next" 200 (Mptcp.Reassembly.next_expected r);
  Alcotest.(check int) "no gaps" 0 (Mptcp.Reassembly.gap_count r)

let reassembly_gap () =
  let r = Mptcp.Reassembly.create () in
  Mptcp.Reassembly.insert r ~dseq:100 ~len:100;
  Alcotest.(check int) "stuck at 0" 0 (Mptcp.Reassembly.next_expected r);
  Alcotest.(check int) "one gap" 1 (Mptcp.Reassembly.gap_count r);
  Alcotest.(check int) "buffered" 100 (Mptcp.Reassembly.buffered_bytes r);
  Mptcp.Reassembly.insert r ~dseq:0 ~len:100;
  Alcotest.(check int) "drained" 200 (Mptcp.Reassembly.next_expected r);
  Alcotest.(check int) "buffer empty" 0 (Mptcp.Reassembly.buffered_bytes r)

let reassembly_duplicates_and_overlap () =
  let r = Mptcp.Reassembly.create () in
  Mptcp.Reassembly.insert r ~dseq:0 ~len:100;
  Mptcp.Reassembly.insert r ~dseq:0 ~len:100;   (* exact duplicate *)
  Mptcp.Reassembly.insert r ~dseq:50 ~len:100;  (* overlaps delivered data *)
  Alcotest.(check int) "overlap extends" 150 (Mptcp.Reassembly.next_expected r);
  Mptcp.Reassembly.insert r ~dseq:300 ~len:50;
  Mptcp.Reassembly.insert r ~dseq:250 ~len:100; (* merges with the range *)
  Alcotest.(check int) "single merged gap" 1 (Mptcp.Reassembly.gap_count r);
  Alcotest.(check int) "buffered merged" 100
    (Mptcp.Reassembly.buffered_bytes r);
  Mptcp.Reassembly.insert r ~dseq:150 ~len:100;
  Alcotest.(check int) "all drained" 350 (Mptcp.Reassembly.next_expected r)

let reassembly_validation () =
  let r = Mptcp.Reassembly.create () in
  Alcotest.check_raises "zero len"
    (Invalid_argument "Reassembly.insert: len must be positive") (fun () ->
      Mptcp.Reassembly.insert r ~dseq:0 ~len:0)

let reassembly_boundaries () =
  (* The documented edge cases: len <= 0 and dseq < 0 are rejected
     before any state changes. *)
  let r = Mptcp.Reassembly.create () in
  Alcotest.check_raises "negative len"
    (Invalid_argument "Reassembly.insert: len must be positive") (fun () ->
      Mptcp.Reassembly.insert r ~dseq:0 ~len:(-5));
  Alcotest.check_raises "negative dseq"
    (Invalid_argument "Reassembly.insert: negative dseq") (fun () ->
      Mptcp.Reassembly.insert r ~dseq:(-1) ~len:10);
  Alcotest.(check int) "rejected inserts leave no trace" 0
    (Mptcp.Reassembly.next_expected r + Mptcp.Reassembly.buffered_bytes r
    + Mptcp.Reassembly.gap_count r)

let qcheck_reassembly_distinct_bytes =
  (* The audit subsystem's reassembly ledger, as a standalone property:
     after any insert sequence — permuted, duplicated, overlapping —
     delivered + buffered equals the number of distinct bytes ever
     inserted. *)
  let module S = Set.Make (Int) in
  QCheck.Test.make ~name:"delivered + buffered = distinct bytes inserted"
    ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_bound 300) (1 -- 25)))
    (fun inserts ->
      let r = Mptcp.Reassembly.create () in
      let seen = ref S.empty in
      List.for_all
        (fun (dseq, len) ->
          Mptcp.Reassembly.insert r ~dseq ~len;
          for i = dseq to dseq + len - 1 do
            seen := S.add i !seen
          done;
          Mptcp.Reassembly.delivered_bytes r
          + Mptcp.Reassembly.buffered_bytes r
          = S.cardinal !seen)
        inserts)

let qcheck_reassembly_any_order =
  QCheck.Test.make
    ~name:"reassembly completes under any interleaving with duplicates"
    ~count:300
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(5 -- 40) (int_bound 19)))
    (fun (_, chunks) ->
      let n = 20 in
      let r = Mptcp.Reassembly.create () in
      (* Insert the hinted chunks (with duplicates), then every chunk to
         guarantee completeness. *)
      List.iter
        (fun i -> Mptcp.Reassembly.insert r ~dseq:(i * 10) ~len:10)
        chunks;
      for i = 0 to n - 1 do
        Mptcp.Reassembly.insert r ~dseq:(i * 10) ~len:10
      done;
      Mptcp.Reassembly.next_expected r = n * 10
      && Mptcp.Reassembly.gap_count r = 0)

let qcheck_reassembly_monotone =
  QCheck.Test.make ~name:"next_expected is monotone" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_bound 500) (1 -- 30)))
    (fun inserts ->
      let r = Mptcp.Reassembly.create () in
      let prev = ref 0 in
      List.for_all
        (fun (dseq, len) ->
          Mptcp.Reassembly.insert r ~dseq ~len;
          let next = Mptcp.Reassembly.next_expected r in
          let ok = next >= !prev in
          prev := next;
          ok)
        inserts)

let qcheck_reassembly_oracle =
  (* Reference model: a plain byte set.  next_expected must equal the
     first missing byte, buffered_bytes the count of received bytes
     beyond it — after every insert. *)
  QCheck.Test.make ~name:"reassembly agrees with a byte-set oracle" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (pair (int_bound 120) (1 -- 15)))
    (fun inserts ->
      let r = Mptcp.Reassembly.create () in
      let horizon = 200 in
      let received = Array.make horizon false in
      List.for_all
        (fun (dseq, len) ->
          let len = min len (horizon - dseq) in
          if len <= 0 then true
          else begin
            Mptcp.Reassembly.insert r ~dseq ~len;
            for i = dseq to dseq + len - 1 do
              received.(i) <- true
            done;
            let next = ref 0 in
            while !next < horizon && received.(!next) do incr next done;
            let buffered = ref 0 in
            for i = !next to horizon - 1 do
              if received.(i) then incr buffered
            done;
            Mptcp.Reassembly.next_expected r = !next
            && Mptcp.Reassembly.buffered_bytes r = !buffered
          end)
        inserts)

(* --- coupled congestion control units --- *)

type fake_sub = { mutable cwnd : float; mutable ssthresh : float }

(* One slot's worth of state for a hand-built coupled-CC group. *)
let sibling ~cwnd ~rtt_s ?(loss_bytes = 0) ?(established = true) () =
  (cwnd, rtt_s, loss_bytes, established)

let group_of sibs =
  let g = Tcp.Cc.group_create (Array.length sibs) in
  Array.iteri
    (fun i (cwnd, rtt_s, loss_bytes, established) ->
      g.Tcp.Cc.cwnds.(i) <- cwnd;
      g.Tcp.Cc.srtts.(i) <- rtt_s;
      g.Tcp.Cc.loss_intervals.(i) <- float_of_int loss_bytes;
      Tcp.Cc.group_set_established g i established)
    sibs;
  g

let coupled_ctx sub ~rtt_s ~siblings ~self_index =
  let g = group_of siblings in
  {
    Tcp.Cc.now_s = (fun () -> 0.0);
    mss;
    get_cwnd = (fun () -> sub.cwnd);
    set_cwnd = (fun w -> sub.cwnd <- Float.max 1.0 w);
    get_ssthresh = (fun () -> sub.ssthresh);
    set_ssthresh = (fun w -> sub.ssthresh <- Float.max 2.0 w);
    srtt_s = (fun () -> rtt_s);
    group = (fun () -> g);
    self_index = (fun () -> self_index);
  }

let lia_single_path_is_reno () =
  (* With one subflow, alpha = w * (w/r^2) / (w/r)^2 = 1, so the increase
     min(1/w, 1/w) equals Reno's. *)
  let sub = { cwnd = 10.0; ssthresh = 5.0 } in
  let sibs = [| sibling ~cwnd:10.0 ~rtt_s:0.1 () |] in
  let cc = Mptcp.Cc_lia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "reno-equivalent" 10.1 sub.cwnd

let lia_alpha_hand_computed () =
  (* Two equal-RTT paths, windows 10 and 30:
     alpha = 40 * (30/r^2) / (40/r)^2 = 40*30/1600 = 0.75
     increase on path 0 (w=10) = min(0.75/40, 1/10) = 0.01875 MSS/ack. *)
  let sub = { cwnd = 10.0; ssthresh = 5.0 } in
  let sibs =
    [| sibling ~cwnd:10.0 ~rtt_s:0.1 (); sibling ~cwnd:30.0 ~rtt_s:0.1 () |]
  in
  let cc = Mptcp.Cc_lia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "coupled increase" (10.0 +. 0.01875) sub.cwnd

let lia_less_aggressive_than_reno () =
  (* Coupling caps the per-path increase at 1/w, and typically below. *)
  let sub = { cwnd = 20.0; ssthresh = 5.0 } in
  let sibs =
    [| sibling ~cwnd:20.0 ~rtt_s:0.1 (); sibling ~cwnd:20.0 ~rtt_s:0.1 () |]
  in
  let cc = Mptcp.Cc_lia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  let inc = sub.cwnd -. 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "increase %.5f < reno's %.5f" inc (1.0 /. 20.0))
    true (inc < 1.0 /. 20.0)

let lia_loss_halves () =
  let sub = { cwnd = 20.0; ssthresh = 100.0 } in
  let sibs = [| sibling ~cwnd:20.0 ~rtt_s:0.1 () |] in
  let cc = Mptcp.Cc_lia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-9)) "halved" 10.0 sub.cwnd

let olia_moves_window_to_best_path () =
  (* Path 0: small window but excellent loss history (best, not max):
     alpha_0 = +1/(n |B\M|) = 1/2.  Path 1: max window, alpha = -1/2n. *)
  let sibs =
    [|
      sibling ~cwnd:5.0 ~rtt_s:0.1 ~loss_bytes:1_000_000 ();
      sibling ~cwnd:50.0 ~rtt_s:0.1 ~loss_bytes:10_000 ();
    |]
  in
  (* On the best-but-small path the increase must exceed the pure coupled
     term; on the max path the alpha term drags the increase negative. *)
  let sub0 = { cwnd = 5.0; ssthresh = 2.0 } in
  let cc0 = Mptcp.Cc_olia.factory (coupled_ctx sub0 ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc0.Tcp.Cc.on_ack ~acked:mss;
  let coupled_term = 5.0 /. (0.1 *. 0.1) /. ((55.0 /. 0.1) ** 2.0) in
  Alcotest.(check bool) "boosted above coupled term" true
    (sub0.cwnd -. 5.0 > coupled_term);
  let sub1 = { cwnd = 50.0; ssthresh = 2.0 } in
  let cc1 = Mptcp.Cc_olia.factory (coupled_ctx sub1 ~rtt_s:0.1 ~siblings:sibs ~self_index:1) in
  cc1.Tcp.Cc.on_ack ~acked:mss;
  (* alpha_1 = -1/(2*1): the negative term must slow this path well below
     its own coupled increase (it may or may not go strictly negative,
     depending on the window sizes). *)
  let coupled_term_1 = 50.0 /. (0.1 *. 0.1) /. ((55.0 /. 0.1) ** 2.0) in
  let inc_1 = sub1.cwnd -. 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "max-window path dampened (%.4f < %.4f - 0.005)" inc_1
       coupled_term_1)
    true
    (inc_1 < coupled_term_1 -. 0.005)

let olia_neutral_when_best_is_max () =
  (* If the best path already has the max window, B \ M is empty and all
     alphas are 0: pure coupled increase everywhere. *)
  let sibs =
    [|
      sibling ~cwnd:50.0 ~rtt_s:0.1 ~loss_bytes:1_000_000 ();
      sibling ~cwnd:5.0 ~rtt_s:0.1 ~loss_bytes:10_000 ();
    |]
  in
  let sub = { cwnd = 5.0; ssthresh = 2.0 } in
  let cc = Mptcp.Cc_olia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:1) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  let coupled_term = 5.0 /. (0.1 *. 0.1) /. ((55.0 /. 0.1) ** 2.0) in
  Alcotest.(check (float 1e-9)) "pure coupled term" (5.0 +. coupled_term)
    sub.cwnd

let balia_increase_bounded () =
  let sub = { cwnd = 10.0; ssthresh = 5.0 } in
  let sibs =
    [| sibling ~cwnd:10.0 ~rtt_s:0.1 (); sibling ~cwnd:10.0 ~rtt_s:0.1 () |]
  in
  let cc = Mptcp.Cc_balia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  let inc = sub.cwnd -. 10.0 in
  Alcotest.(check bool) "positive" true (inc > 0.0);
  Alcotest.(check bool) "bounded by 1/w" true (inc <= 1.0 /. 10.0 +. 1e-12)

let balia_loss_scales_with_alpha () =
  (* Equal rates: alpha = 1, decrease = w/2. *)
  let sub = { cwnd = 20.0; ssthresh = 100.0 } in
  let sibs =
    [| sibling ~cwnd:20.0 ~rtt_s:0.1 (); sibling ~cwnd:20.0 ~rtt_s:0.1 () |]
  in
  let cc = Mptcp.Cc_balia.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-9)) "w/2 at alpha 1" 10.0 sub.cwnd;
  (* This path much slower than the best: alpha = 4 capped at 1.5 ->
     decrease w * 0.75. *)
  let sub2 = { cwnd = 20.0; ssthresh = 100.0 } in
  let sibs2 =
    [| sibling ~cwnd:20.0 ~rtt_s:0.1 (); sibling ~cwnd:80.0 ~rtt_s:0.1 () |]
  in
  let cc2 = Mptcp.Cc_balia.factory (coupled_ctx sub2 ~rtt_s:0.1 ~siblings:sibs2 ~self_index:0) in
  cc2.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-9)) "capped decrease" 5.0 sub2.cwnd

let ewtcp_gain () =
  (* Four subflows: gain 1/2, so +0.5/w per MSS acked. *)
  let sub = { cwnd = 10.0; ssthresh = 5.0 } in
  let sibs = Array.init 4 (fun _ -> sibling ~cwnd:10.0 ~rtt_s:0.1 ()) in
  let cc = Mptcp.Cc_ewtcp.factory (coupled_ctx sub ~rtt_s:0.1 ~siblings:sibs ~self_index:0) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "1/sqrt(4) gain" (10.0 +. 0.05) sub.cwnd

let wvegas_backs_off_on_delay () =
  (* With rtt well above base, the backlog exceeds the quota and the
     window shrinks; with rtt = base it grows. *)
  let now = ref 0.0 in
  let run rtt_s =
    let sub = { cwnd = 20.0; ssthresh = 5.0 } in
    let sibs = [| sibling ~cwnd:20.0 ~rtt_s () |] in
    let ctx = { (coupled_ctx sub ~rtt_s ~siblings:sibs ~self_index:0) with
                Tcp.Cc.now_s = (fun () -> !now) } in
    let cc = Mptcp.Cc_wvegas.factory ctx in
    (* First ack learns base rtt; adjustments happen once per rtt. *)
    now := 0.0;
    cc.Tcp.Cc.on_ack ~acked:mss;
    now := 1.0;
    cc.Tcp.Cc.on_ack ~acked:mss;
    sub.cwnd
  in
  Alcotest.(check bool) "grows when un-queued" true (run 0.01 > 20.0);
  (* Simulate a congested path: base is learnt low, then rtt doubles.
     The window is large enough that the backlog clearly exceeds the
     quota's alpha+2 dead zone (diff = w/2 > 12). *)
  let sub = { cwnd = 30.0; ssthresh = 5.0 } in
  let rtt = ref 0.01 in
  let group () = group_of [| sibling ~cwnd:sub.cwnd ~rtt_s:!rtt () |] in
  let ctx =
    { (coupled_ctx sub ~rtt_s:0.01
         ~siblings:[| sibling ~cwnd:sub.cwnd ~rtt_s:0.01 () |] ~self_index:0)
      with
      Tcp.Cc.now_s = (fun () -> !now);
      srtt_s = (fun () -> !rtt);
      group } in
  let cc = Mptcp.Cc_wvegas.factory ctx in
  now := 0.0;
  cc.Tcp.Cc.on_ack ~acked:mss; (* learn base = 0.01 *)
  rtt := 0.02;
  now := 1.0;
  cc.Tcp.Cc.on_ack ~acked:mss;
  now := 2.0;
  cc.Tcp.Cc.on_ack ~acked:mss;
  (* diff = w * (1 - 0.01/0.02) ~ w/2 packets >> quota: two adjustment
     rounds under queueing shrink the window below where it started. *)
  Alcotest.(check bool)
    (Printf.sprintf "shrinks under queueing (%.1f)" sub.cwnd)
    true (sub.cwnd < 30.0)

let algorithm_registry () =
  List.iter
    (fun a ->
      match Mptcp.Algorithm.of_string (Mptcp.Algorithm.name a) with
      | Some b ->
        Alcotest.(check string) "round trip" (Mptcp.Algorithm.name a)
          (Mptcp.Algorithm.name b)
      | None -> Alcotest.fail "name round trip failed")
    Mptcp.Algorithm.all;
  Alcotest.(check bool) "unknown rejected" true
    (Mptcp.Algorithm.of_string "bbr" = None);
  Alcotest.(check bool) "cubic uncoupled" false
    (Mptcp.Algorithm.coupled Mptcp.Algorithm.Cubic);
  Alcotest.(check bool) "olia coupled" true
    (Mptcp.Algorithm.coupled Mptcp.Algorithm.Olia)

(* --- Scheduler decisions --- *)

let cand ~index ~srtt_s ~space =
  { Mptcp.Scheduler.index; srtt_s; window_space = space }

let scheduler_minrtt () =
  let cursor = ref 0 in
  let cands = [| cand ~index:0 ~srtt_s:0.05 ~space:1000;
                 cand ~index:1 ~srtt_s:0.01 ~space:1000 |] in
  (match Mptcp.Scheduler.decide Mptcp.Scheduler.Min_rtt ~cursor ~requester:1 cands with
  | Mptcp.Scheduler.Grant -> ()
  | _ -> Alcotest.fail "lowest RTT requester must be granted");
  (match Mptcp.Scheduler.decide Mptcp.Scheduler.Min_rtt ~cursor ~requester:0 cands with
  | Mptcp.Scheduler.Defer (Some 1) -> ()
  | _ -> Alcotest.fail "higher-RTT requester defers to subflow 1");
  (* When the faster path has no window space, the slower one gets it. *)
  let cands2 = [| cand ~index:0 ~srtt_s:0.05 ~space:1000;
                  cand ~index:1 ~srtt_s:0.01 ~space:0 |] in
  match Mptcp.Scheduler.decide Mptcp.Scheduler.Min_rtt ~cursor ~requester:0 cands2 with
  | Mptcp.Scheduler.Grant -> ()
  | _ -> Alcotest.fail "fallback to the only subflow with space"

let scheduler_round_robin () =
  let cursor = ref 0 in
  let cands = Array.init 3 (fun i -> cand ~index:i ~srtt_s:0.01 ~space:1000) in
  (match Mptcp.Scheduler.decide Mptcp.Scheduler.Round_robin ~cursor ~requester:0 cands with
  | Mptcp.Scheduler.Grant -> ()
  | _ -> Alcotest.fail "cursor 0 grants requester 0");
  Alcotest.(check int) "cursor advanced" 1 !cursor;
  (match Mptcp.Scheduler.decide Mptcp.Scheduler.Round_robin ~cursor ~requester:0 cands with
  | Mptcp.Scheduler.Defer (Some 1) -> ()
  | _ -> Alcotest.fail "requester 0 must defer to 1");
  (* Skips subflows without space. *)
  cands.(1) <- cand ~index:1 ~srtt_s:0.01 ~space:0;
  match Mptcp.Scheduler.decide Mptcp.Scheduler.Round_robin ~cursor ~requester:2 cands with
  | Mptcp.Scheduler.Grant -> Alcotest.(check int) "cursor wrapped" 0 !cursor
  | _ -> Alcotest.fail "cursor must skip the stalled subflow"

let scheduler_redundant_grants_all () =
  let cursor = ref 0 in
  let cands = [| cand ~index:0 ~srtt_s:0.05 ~space:0 |] in
  match Mptcp.Scheduler.decide Mptcp.Scheduler.Redundant ~cursor ~requester:0 cands with
  | Mptcp.Scheduler.Grant -> ()
  | _ -> Alcotest.fail "redundant always grants"

(* --- Path manager --- *)

let path_manager_tags () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.paths topo in
  let tagged = Mptcp.Path_manager.tag_paths paths in
  Alcotest.(check (list int)) "tags 1..3" [ 1; 2; 3 ] (List.map fst tagged);
  let reordered = Mptcp.Path_manager.with_default tagged ~default_tag:3 in
  Alcotest.(check (list int)) "default first" [ 3; 1; 2 ]
    (List.map fst reordered);
  Alcotest.(check bool) "missing default raises" true
    (try ignore (Mptcp.Path_manager.with_default tagged ~default_tag:9); false
     with Not_found -> true)

let path_manager_fullmesh () =
  (* A dual-homed pair: phone has wifi + lte access, server has two
     uplinks, each access network reaching exactly one uplink.  Fullmesh
     must find exactly the two disjoint paths, shortest first. *)
  let b = Netgraph.Topology.builder () in
  let phone = Netgraph.Topology.add_node b "phone" in
  let wifi = Netgraph.Topology.add_node b "wifi" in
  let lte = Netgraph.Topology.add_node b "lte" in
  let server = Netgraph.Topology.add_node b "server" in
  let link u v d =
    ignore (Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb 10) ~delay:d)
  in
  link phone wifi (ms 3);
  link phone lte (ms 25);
  link wifi server (ms 5);
  link lte server (ms 5);
  let topo = Netgraph.Topology.build b in
  let mesh = Mptcp.Path_manager.fullmesh topo ~src:phone ~dst:server () in
  Alcotest.(check int) "two subflows" 2 (List.length mesh);
  (match mesh with
  | (_, first) :: _ ->
    (* The wifi path (8 ms) is the default, not the lte one (30 ms). *)
    Alcotest.(check bool) "default via wifi" true
      (Netgraph.Path.mem_link first 0)
  | [] -> Alcotest.fail "no paths");
  let ps = List.map snd mesh in
  match ps with
  | [ p; q ] -> Alcotest.(check bool) "disjoint" true (Netgraph.Path.disjoint p q)
  | _ -> Alcotest.fail "expected two paths"

let path_manager_ndiffports () =
  let topo = Core.Paper_net.topology () in
  let s = Netgraph.Topology.node_id topo "s" in
  let d = Netgraph.Topology.node_id topo "d" in
  let tagged = Mptcp.Path_manager.ndiffports topo ~src:s ~dst:d ~subflows:3 () in
  Alcotest.(check int) "three subflows" 3 (List.length tagged);
  (* First = default = shortest by delay = the 3-hop path. *)
  match tagged with
  | (_, p) :: _ -> Alcotest.(check int) "default is shortest" 3
                     (Netgraph.Path.hop_count p)
  | [] -> Alcotest.fail "no paths"

(* --- end-to-end connections --- *)

let diamond () =
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let up = Netgraph.Topology.add_node b "up" in
  let down = Netgraph.Topology.add_node b "down" in
  let z = Netgraph.Topology.add_node b "z" in
  let link u v mbps =
    ignore
      (Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb mbps)
         ~delay:(ms 2))
  in
  link a up 20;
  link up z 20;
  link a down 20;
  link down z 20;
  (Netgraph.Topology.build b, a, z)

let run_conn ?(cc = Mptcp.Algorithm.Lia) ?(seconds = 8) ?config topo a z paths =
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths ~cc ?config ()
  in
  Engine.Sched.run ~until:(Engine.Time.s seconds) sched;
  (conn, sched)

let connection_aggregates_disjoint_paths () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let conn, sched = run_conn topo a z paths in
  let mbps =
    Mptcp.Connection.total_throughput_bps conn ~now:(Engine.Sched.now sched)
    /. 1e6
  in
  (* Two disjoint 20 Mbps paths: the aggregate must clearly exceed one
     path and approach 40 Mbps of goodput (~38.6 max). *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.1f Mbps > 30" mbps)
    true (mbps > 30.0);
  (* Both subflows carried real traffic. *)
  Alcotest.(check bool) "subflow 0 active" true
    (Mptcp.Connection.subflow_rx_bytes conn 0 > 1_000_000);
  Alcotest.(check bool) "subflow 1 active" true
    (Mptcp.Connection.subflow_rx_bytes conn 1 > 1_000_000);
  (* In-order delivery kept up: reassembly is not holding megabytes. *)
  Alcotest.(check bool) "reassembly bounded" true
    (Mptcp.Connection.reassembly_buffered conn < 2_000_000)

let connection_data_ack_consistent () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let conn, _ = run_conn topo a z paths in
  Alcotest.(check int) "data_ack = delivered" (Mptcp.Connection.delivered_bytes conn)
    (Mptcp.Connection.data_ack conn);
  (* Subflow payloads together cover the delivered stream. *)
  let rx01 =
    Mptcp.Connection.subflow_rx_bytes conn 0
    + Mptcp.Connection.subflow_rx_bytes conn 1
  in
  Alcotest.(check bool) "subflow bytes >= delivered" true
    (rx01 >= Mptcp.Connection.delivered_bytes conn)

let connection_bounded_transfer () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ~total_bytes:2_000_000 ()
  in
  Engine.Sched.run ~until:(Engine.Time.s 10) sched;
  Alcotest.(check int) "exactly the requested bytes" 2_000_000
    (Mptcp.Connection.delivered_bytes conn);
  Alcotest.(check bool) "completion recorded" true
    (Mptcp.Connection.completed_at conn <> None)

let redundant_scheduler_duplicates () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let config =
    { Mptcp.Connection.default_config with
      Mptcp.Connection.scheduler = Mptcp.Scheduler.Redundant }
  in
  let conn, _ = run_conn ~seconds:4 ~config topo a z paths in
  let delivered = Mptcp.Connection.delivered_bytes conn in
  let rx01 =
    Mptcp.Connection.subflow_rx_bytes conn 0
    + Mptcp.Connection.subflow_rx_bytes conn 1
  in
  (* Every byte travels on both paths: subflow payload is about twice the
     delivered stream. *)
  Alcotest.(check bool)
    (Printf.sprintf "duplication factor %.2f ~ 2"
       (float_of_int rx01 /. float_of_int delivered))
    true
    (float_of_int rx01 > 1.7 *. float_of_int delivered);
  Alcotest.(check bool) "still delivers" true (delivered > 1_000_000)

let shared_bottleneck_do_no_harm () =
  (* LIA's design goal: an MPTCP connection whose subflows share one
     bottleneck should take about one TCP's share, not two.  Run MPTCP
     (2 subflows on the same 20 Mbps link) against one plain TCP. *)
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let c = Netgraph.Topology.add_node b "c" in
  let z = Netgraph.Topology.add_node b "z" in
  ignore (Netgraph.Topology.add_link b ~u:a ~v:c ~capacity_bps:(mb 20) ~delay:(ms 5));
  ignore (Netgraph.Topology.add_link b ~u:c ~v:z ~capacity_bps:(mb 100) ~delay:(ms 1));
  let topo = Netgraph.Topology.build b in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 5) topo in
  let path = Netgraph.Path.of_names topo [ "a"; "c"; "z" ] in
  (* Same physical route under three tags: two MPTCP subflows + 1 TCP. *)
  let paths = Mptcp.Path_manager.tag_paths [ path; path ] in
  Netsim.Net.install_path net ~tag:7 path;
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let mconn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ()
  in
  let tcp = Tcp.Flow.start ~src ~dst ~tag:7 ~conn:2 ~cc:Tcp.Cc_reno.factory () in
  Engine.Sched.run ~until:(Engine.Time.s 15) sched;
  let m = float_of_int (Mptcp.Connection.delivered_bytes mconn) in
  let t = float_of_int (Tcp.Flow.bytes_delivered tcp) in
  let ratio = m /. t in
  (* Uncoupled would give ~2.0; LIA must stay nearer parity.  The band is
     deliberately wide: the point is the order of magnitude, not the
     decimals. *)
  Alcotest.(check bool)
    (Printf.sprintf "LIA takes %.2fx one TCP (expect < 1.8)" ratio)
    true (ratio < 1.8);
  Alcotest.(check bool) "and is not starved" true (ratio > 0.4)

let uncoupled_grabs_more_than_lia () =
  (* Contrast to the previous test: per-subflow Reno (uncoupled) on the
     same shared bottleneck takes more than LIA does. *)
  let share cc =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let c = Netgraph.Topology.add_node b "c" in
    let z = Netgraph.Topology.add_node b "z" in
    ignore (Netgraph.Topology.add_link b ~u:a ~v:c ~capacity_bps:(mb 20) ~delay:(ms 5));
    ignore (Netgraph.Topology.add_link b ~u:c ~v:z ~capacity_bps:(mb 100) ~delay:(ms 1));
    let topo = Netgraph.Topology.build b in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 5) topo in
    let path = Netgraph.Path.of_names topo [ "a"; "c"; "z" ] in
    let paths = Mptcp.Path_manager.tag_paths [ path; path ] in
    Netsim.Net.install_path net ~tag:7 path;
    let src = Tcp.Endpoint.create net ~node:a in
    let dst = Tcp.Endpoint.create net ~node:z in
    let mconn = Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths ~cc () in
    let tcp = Tcp.Flow.start ~src ~dst ~tag:7 ~conn:2 ~cc:Tcp.Cc_reno.factory () in
    Engine.Sched.run ~until:(Engine.Time.s 15) sched;
    float_of_int (Mptcp.Connection.delivered_bytes mconn)
    /. float_of_int (Tcp.Flow.bytes_delivered tcp)
  in
  let reno_ratio = share Mptcp.Algorithm.Reno in
  let lia_ratio = share Mptcp.Algorithm.Lia in
  Alcotest.(check bool)
    (Printf.sprintf "uncoupled %.2f > coupled %.2f" reno_ratio lia_ratio)
    true (reno_ratio > lia_ratio)

let wvegas_nearly_lossless_end_to_end () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Wvegas ()
  in
  Engine.Sched.run ~until:(Engine.Time.s 10) sched;
  let mbps =
    Mptcp.Connection.total_throughput_bps conn ~now:(Engine.Sched.now sched)
    /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "delay-based still fills the paths (%.1f Mbps)" mbps)
    true (mbps > 28.0);
  Alcotest.(check bool)
    (Printf.sprintf "with almost no losses (%d drops)" (Netsim.Net.total_drops net))
    true
    (Netsim.Net.total_drops net < 100)

let failover_shifts_traffic () =
  (* Cut one of two disjoint paths mid-transfer: the aggregate must keep
     flowing on the survivor, and resume on both after repair. *)
  let b = Netgraph.Topology.builder () in
  let a = Netgraph.Topology.add_node b "a" in
  let up = Netgraph.Topology.add_node b "up" in
  let down = Netgraph.Topology.add_node b "down" in
  let z = Netgraph.Topology.add_node b "z" in
  let link u v =
    Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb 20)
      ~delay:(Engine.Time.ms 2)
  in
  let _ = link a up in
  let up_z = link up z in
  let _ = link a down in
  let _ = link down z in
  let topo = Netgraph.Topology.build b in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let capture = Measure.Capture.attach net ~node:z ~conn:1 () in
  let _conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ()
  in
  ignore
    (Engine.Sched.at sched (Engine.Time.s 4) (fun () ->
         Netsim.Net.set_link_up net ~link:up_z false));
  ignore
    (Engine.Sched.at sched (Engine.Time.s 8) (fun () ->
         Netsim.Net.set_link_up net ~link:up_z true));
  Engine.Sched.run ~until:(Engine.Time.s 12) sched;
  let per_tag, total =
    Measure.Sampler.per_tag capture ~window:(Engine.Time.ms 250)
      ~until:(Engine.Time.s 12)
  in
  let s1 = List.assoc 1 per_tag and s2 = List.assoc 2 per_tag in
  Alcotest.(check (float 0.01)) "cut path silent during the outage" 0.0
    (Measure.Series.mean_between s1 ~from_s:5.0 ~to_s:8.0);
  Alcotest.(check bool) "survivor carries on" true
    (Measure.Series.mean_between s2 ~from_s:5.0 ~to_s:8.0 > 15.0);
  Alcotest.(check bool) "total never collapses for long" true
    (Measure.Series.mean_between total ~from_s:5.0 ~to_s:8.0 > 15.0);
  Alcotest.(check bool) "cut path resumes after repair" true
    (Measure.Series.mean_between s1 ~from_s:10.0 ~to_s:12.0 > 5.0)

let scheduler_hol_blocking () =
  (* Asymmetric RTTs + a small connection-level send buffer: chunks
     mapped onto the slow path stall the data-sequence window (head-of-
     line blocking), so the min-RTT scheduler must clearly beat blind
     round-robin in goodput.  This is what the default scheduler is
     for. *)
  let run policy =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let fast = Netgraph.Topology.add_node b "fast" in
    let slow = Netgraph.Topology.add_node b "slow" in
    let z = Netgraph.Topology.add_node b "z" in
    let link u v delay =
      ignore
        (Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb 20) ~delay)
    in
    link a fast (ms 2);
    link fast z (ms 2);
    link a slow (ms 50);
    link slow z (ms 50);
    let topo = Netgraph.Topology.build b in
    let paths =
      Mptcp.Path_manager.tag_paths
        [
          Netgraph.Path.of_names topo [ "a"; "fast"; "z" ];
          Netgraph.Path.of_names topo [ "a"; "slow"; "z" ];
        ]
    in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
    let src = Tcp.Endpoint.create net ~node:a in
    let dst = Tcp.Endpoint.create net ~node:z in
    let config =
      { Mptcp.Connection.default_config with
        Mptcp.Connection.scheduler = policy;
        send_buffer = Some 65_536 }
    in
    let conn =
      Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
        ~cc:Mptcp.Algorithm.Lia ~config ()
    in
    Engine.Sched.run ~until:(Engine.Time.s 10) sched;
    float_of_int (Mptcp.Connection.delivered_bytes conn) *. 8.0 /. 10.0 /. 1e6
  in
  let minrtt = run Mptcp.Scheduler.Min_rtt in
  let rr = run Mptcp.Scheduler.Round_robin in
  Alcotest.(check bool)
    (Printf.sprintf "min-RTT %.1f Mbps beats round-robin %.1f Mbps" minrtt rr)
    true
    (minrtt > 1.5 *. rr);
  Alcotest.(check bool) "round robin is HoL-bound" true (rr < 15.0)

let reinjection_clears_hol () =
  (* Same asymmetric-path, small-buffer setup as the HoL test: with
     opportunistic reinjection the blocking chunks are re-sent on the
     fast path, so even the naive round-robin scheduler recovers most of
     the goodput. *)
  let run reinjection =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let fast = Netgraph.Topology.add_node b "fast" in
    let slow = Netgraph.Topology.add_node b "slow" in
    let z = Netgraph.Topology.add_node b "z" in
    let link u v delay =
      ignore
        (Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb 20) ~delay)
    in
    link a fast (ms 2);
    link fast z (ms 2);
    link a slow (ms 50);
    link slow z (ms 50);
    let topo = Netgraph.Topology.build b in
    let paths =
      Mptcp.Path_manager.tag_paths
        [
          Netgraph.Path.of_names topo [ "a"; "fast"; "z" ];
          Netgraph.Path.of_names topo [ "a"; "slow"; "z" ];
        ]
    in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
    let src = Tcp.Endpoint.create net ~node:a in
    let dst = Tcp.Endpoint.create net ~node:z in
    let config =
      { Mptcp.Connection.default_config with
        Mptcp.Connection.scheduler = Mptcp.Scheduler.Round_robin;
        send_buffer = Some 65_536;
        reinjection }
    in
    let conn =
      Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
        ~cc:Mptcp.Algorithm.Lia ~config ()
    in
    Engine.Sched.run ~until:(Engine.Time.s 10) sched;
    ( float_of_int (Mptcp.Connection.delivered_bytes conn) *. 8.0 /. 10.0
      /. 1e6,
      Mptcp.Connection.reinjections conn )
  in
  let plain, r0 = run false in
  let boosted, r1 = run true in
  Alcotest.(check int) "no reinjection when off" 0 r0;
  Alcotest.(check bool)
    (Printf.sprintf "reinjection used (%d times)" r1)
    true (r1 > 0);
  Alcotest.(check bool)
    (Printf.sprintf "goodput recovers (%.1f -> %.1f Mbps)" plain boosted)
    true
    (boosted > 1.5 *. plain)

let two_connections_share () =
  (* Two MPTCP connections with the same three tagged paths must share
     the 90 Mbps optimum roughly evenly (same demux network, distinct
     connection ids). *)
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  let sched = Engine.Sched.create () in
  let rng = Engine.Rng.create 1 in
  let net =
    Netsim.Net.create ~sched ~rng
      ~config:{ Netsim.Net.qdisc = Netsim.Qdisc.Drop_tail; limit_pkts = 16;
        delay_jitter = Engine.Time.zero }
      topo
  in
  let s_node = Netgraph.Topology.node_id topo "s" in
  let d_node = Netgraph.Topology.node_id topo "d" in
  let src = Tcp.Endpoint.create net ~node:s_node in
  let dst = Tcp.Endpoint.create net ~node:d_node in
  let conns =
    List.map
      (fun id ->
        Mptcp.Connection.establish ~net ~src ~dst ~conn:id ~paths
          ~cc:Mptcp.Algorithm.Cubic ~rng:(Engine.Rng.split rng)
          ~config:
            { Mptcp.Connection.default_config with
              Mptcp.Connection.start_jitter = Engine.Time.ms 2 }
          ())
      [ 1; 2 ]
  in
  Engine.Sched.run ~until:(Engine.Time.s 15) sched;
  let rates =
    List.map
      (fun c ->
        Mptcp.Connection.total_throughput_bps c ~now:(Engine.Sched.now sched)
        /. 1e6)
      conns
  in
  let total = List.fold_left ( +. ) 0.0 rates in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate near the optimum (%.1f)" total)
    true
    (total > 70.0 && total < 92.0);
  let jain = Measure.Converge.jain_fairness (Array.of_list rates) in
  Alcotest.(check bool)
    (Printf.sprintf "roughly fair (jain %.3f)" jain)
    true (jain > 0.85)

let join_delay_respected () =
  let topo, a, z = diamond () in
  let paths =
    Mptcp.Path_manager.tag_paths
      [
        Netgraph.Path.of_names topo [ "a"; "up"; "z" ];
        Netgraph.Path.of_names topo [ "a"; "down"; "z" ];
      ]
  in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
  let src = Tcp.Endpoint.create net ~node:a in
  let dst = Tcp.Endpoint.create net ~node:z in
  let config =
    { Mptcp.Connection.default_config with
      Mptcp.Connection.join_delay = Engine.Time.ms 500 }
  in
  let conn =
    Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
      ~cc:Mptcp.Algorithm.Lia ~config ()
  in
  Engine.Sched.run ~until:(Engine.Time.ms 400) sched;
  Alcotest.(check bool) "default subflow sending" true
    ((Tcp.Sender.stats (Mptcp.Connection.subflow_sender conn 0))
       .Tcp.Sender.segments_sent > 0);
  Alcotest.(check int) "second subflow still quiet" 0
    (Tcp.Sender.stats (Mptcp.Connection.subflow_sender conn 1))
      .Tcp.Sender.segments_sent;
  Engine.Sched.run ~until:(Engine.Time.s 1) sched;
  Alcotest.(check bool) "second subflow joined" true
    ((Tcp.Sender.stats (Mptcp.Connection.subflow_sender conn 1))
       .Tcp.Sender.segments_sent > 0)

let () =
  Alcotest.run "mptcp"
    [
      ( "reassembly",
        [
          Alcotest.test_case "in order" `Quick reassembly_in_order;
          Alcotest.test_case "gap then fill" `Quick reassembly_gap;
          Alcotest.test_case "duplicates and overlaps" `Quick
            reassembly_duplicates_and_overlap;
          Alcotest.test_case "validation" `Quick reassembly_validation;
          Alcotest.test_case "boundary cases" `Quick reassembly_boundaries;
          QCheck_alcotest.to_alcotest qcheck_reassembly_distinct_bytes;
          QCheck_alcotest.to_alcotest qcheck_reassembly_any_order;
          QCheck_alcotest.to_alcotest qcheck_reassembly_monotone;
          QCheck_alcotest.to_alcotest qcheck_reassembly_oracle;
        ] );
      ( "coupled-cc",
        [
          Alcotest.test_case "LIA on one path is Reno" `Quick
            lia_single_path_is_reno;
          Alcotest.test_case "LIA alpha hand-computed" `Quick
            lia_alpha_hand_computed;
          Alcotest.test_case "LIA less aggressive than Reno" `Quick
            lia_less_aggressive_than_reno;
          Alcotest.test_case "LIA halves on loss" `Quick lia_loss_halves;
          Alcotest.test_case "OLIA shifts window to best path" `Quick
            olia_moves_window_to_best_path;
          Alcotest.test_case "OLIA neutral when best is max" `Quick
            olia_neutral_when_best_is_max;
          Alcotest.test_case "BALIA increase bounded" `Quick
            balia_increase_bounded;
          Alcotest.test_case "BALIA loss response" `Quick
            balia_loss_scales_with_alpha;
          Alcotest.test_case "EWTCP gain" `Quick ewtcp_gain;
          Alcotest.test_case "wVegas delay response" `Quick
            wvegas_backs_off_on_delay;
          Alcotest.test_case "algorithm registry" `Quick algorithm_registry;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "min-RTT" `Quick scheduler_minrtt;
          Alcotest.test_case "round robin" `Quick scheduler_round_robin;
          Alcotest.test_case "redundant" `Quick scheduler_redundant_grants_all;
        ] );
      ( "path-manager",
        [
          Alcotest.test_case "tagging and default selection" `Quick
            path_manager_tags;
          Alcotest.test_case "ndiffports via Yen" `Quick path_manager_ndiffports;
          Alcotest.test_case "fullmesh on a dual-homed pair" `Quick
            path_manager_fullmesh;
        ] );
      ( "connection",
        [
          Alcotest.test_case "aggregates disjoint paths" `Quick
            connection_aggregates_disjoint_paths;
          Alcotest.test_case "data ack consistency" `Quick
            connection_data_ack_consistent;
          Alcotest.test_case "bounded transfer completes" `Quick
            connection_bounded_transfer;
          Alcotest.test_case "redundant scheduler duplicates" `Quick
            redundant_scheduler_duplicates;
          Alcotest.test_case "LIA does no harm at a shared bottleneck" `Quick
            shared_bottleneck_do_no_harm;
          Alcotest.test_case "uncoupled grabs more than LIA" `Quick
            uncoupled_grabs_more_than_lia;
          Alcotest.test_case "join delay respected" `Quick join_delay_respected;
          Alcotest.test_case "wVegas end-to-end, nearly lossless" `Quick
            wvegas_nearly_lossless_end_to_end;
          Alcotest.test_case "failover to the surviving path" `Quick
            failover_shifts_traffic;
          Alcotest.test_case "min-RTT avoids HoL blocking" `Quick
            scheduler_hol_blocking;
          Alcotest.test_case "two connections share fairly" `Quick
            two_connections_share;
          Alcotest.test_case "reinjection clears HoL blocking" `Quick
            reinjection_clears_hol;
        ] );
    ]
