(* Tests for the discrete-event engine: time arithmetic, the binary heap,
   the scheduler's ordering/cancellation semantics, and the RNG. *)

open Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time --- *)

let time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "s" 1_000_000_000 (Time.s 1);
  check_int "composition" (Time.s 2) (Time.add (Time.ms 1999) (Time.us 1000))

let time_float_roundtrip () =
  check_int "of_float_s" (Time.ms 1500) (Time.of_float_s 1.5);
  Alcotest.(check (float 1e-12)) "to_float_s" 0.25 (Time.to_float_s (Time.ms 250));
  check_int "rounding" 1 (Time.of_float_s 1e-9);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Time.of_float_s: negative or non-finite") (fun () ->
      ignore (Time.of_float_s (-1.0)))

let time_scale () =
  check_int "scale by 2" (Time.ms 20) (Time.scale (Time.ms 10) 2.0);
  check_int "scale by 0.5" (Time.ms 5) (Time.scale (Time.ms 10) 0.5);
  check_int "scale rounds" 1 (Time.scale 1 0.6)

let time_tx_exact () =
  (* 1500 B at 100 Mbps is exactly 120 us. *)
  check_int "1500B@100M" (Time.us 120)
    (Time.tx_time ~bits:12000 ~rate_bps:100_000_000);
  (* Rounding must be up: 1 bit at 3 bps = ceil(1e9/3). *)
  check_int "round up" 333_333_334 (Time.tx_time ~bits:1 ~rate_bps:3);
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Time.tx_time: rate must be positive") (fun () ->
      ignore (Time.tx_time ~bits:1 ~rate_bps:0))

let time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "ms" "1.5ms" (Time.to_string (Time.us 1500));
  Alcotest.(check string) "s" "2.5s" (Time.to_string (Time.ms 2500))

(* --- Heap --- *)

let heap_basic () =
  let h = Heap.create () in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h ~key:5 ~tie:0 "five";
  Heap.push h ~key:1 ~tie:0 "one";
  Heap.push h ~key:3 ~tie:0 "three";
  check_int "length" 3 (Heap.length h);
  (match Heap.peek h with
  | Some (1, _, "one") -> ()
  | _ -> Alcotest.fail "peek should be the minimum");
  let order = List.filter_map (fun () -> Option.map (fun (_, _, v) -> v)
      (Heap.pop h)) [ (); (); () ] in
  Alcotest.(check (list string)) "sorted" [ "one"; "three"; "five" ] order;
  check_bool "drained" true (Heap.pop h = None)

let heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~key:7 ~tie:i v) [ "a"; "b"; "c" ];
  let popped = List.init 3 (fun _ ->
      match Heap.pop h with Some (_, _, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c" ]
    popped

let heap_clear () =
  let h = Heap.create () in
  Heap.push h ~key:1 ~tie:0 0;
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h);
  (* The heap must stay usable after clear. *)
  Heap.push h ~key:2 ~tie:0 7;
  (match Heap.pop h with
  | Some (2, _, 7) -> ()
  | _ -> Alcotest.fail "push after clear");
  check_bool "drained again" true (Heap.is_empty h)

let heap_capacity () =
  let h = Heap.create ~capacity:64 () in
  check_int "preallocated" 64 (Heap.capacity h);
  for i = 0 to 63 do
    Heap.push h ~key:i ~tie:i i
  done;
  check_int "no growth within capacity" 64 (Heap.capacity h);
  Heap.push h ~key:64 ~tie:64 64;
  check_bool "doubles when full" true (Heap.capacity h >= 128);
  check_int "default is 256" 256 (Heap.capacity (Heap.create ()));
  check_int "explicit zero allowed" 0 (Heap.capacity (Heap.create ~capacity:0 ()))

let heap_compact_basic () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.push h ~key:k ~tie:i k) [ 5; 1; 4; 2; 3 ];
  Heap.compact h ~keep:(fun ~tie:_ v -> v mod 2 = 1);
  check_int "three survivors" 3 (Heap.length h);
  let popped =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (k, _, _) -> k | None -> -1)
  in
  Alcotest.(check (list int)) "survivors in order" [ 1; 3; 5 ] popped

let heap_qcheck_sorted =
  QCheck.Test.make ~name:"heap pops keys in non-decreasing order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~tie:i k) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, _, _) -> k >= prev && drain k
      in
      drain min_int)

let heap_qcheck_conserves =
  QCheck.Test.make ~name:"heap returns exactly the pushed multiset" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~tie:i k) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> acc
        | Some (k, _, _) -> drain (k :: acc)
      in
      List.sort compare (drain []) = List.sort compare keys)

let drain_pairs h =
  let rec go acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (k, t, _) -> go ((k, t) :: acc)
  in
  go []

let heap_qcheck_key_tie_order =
  (* Random keys AND random ties: pops must follow (key, tie)
     lexicographic order exactly. *)
  QCheck.Test.make ~name:"heap pops in (key, tie) lexicographic order"
    ~count:200
    QCheck.(list (pair (int_bound 50) (int_bound 50)))
    (fun pairs ->
      let h = Heap.create ~capacity:4 () in
      List.iteri (fun i (k, t) -> Heap.push h ~key:k ~tie:t i) pairs;
      drain_pairs h = List.sort compare (List.map (fun (k, t) -> (k, t)) pairs))

let heap_qcheck_compact_order =
  (* Dropping a random subset must not disturb the order of what
     remains: compact-then-drain equals filter-then-sort. *)
  QCheck.Test.make ~name:"compact keeps surviving order" ~count:200
    QCheck.(list (pair (int_bound 100) bool))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (k, keep) -> Heap.push h ~key:k ~tie:i keep) entries;
      Heap.compact h ~keep:(fun ~tie:_ b -> b);
      let surviving =
        List.mapi (fun i (k, keep) -> (k, i, keep)) entries
        |> List.filter (fun (_, _, keep) -> keep)
        |> List.map (fun (k, i, _) -> (k, i))
        |> List.sort compare
      in
      drain_pairs h = surviving)

(* --- Wheel --- *)

let wheel_drain w =
  let rec go acc =
    if Wheel.is_empty w then List.rev acc
    else
      let k = Wheel.min_key_exn w and t = Wheel.min_tie_exn w in
      let v = Wheel.pop_exn w in
      go ((k, t, v) :: acc)
  in
  go []

let wheel_basic () =
  let w = Wheel.create () in
  check_bool "empty" true (Wheel.is_empty w);
  ignore (Wheel.push w ~key:5 ~tie:2 "five");
  ignore (Wheel.push w ~key:1 ~tie:0 "one");
  ignore (Wheel.push w ~key:3 ~tie:1 "three");
  check_int "length" 3 (Wheel.length w);
  check_int "min key" 1 (Wheel.min_key_exn w);
  Alcotest.(check (list string)) "sorted" [ "one"; "three"; "five" ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w));
  check_bool "drained" true (Wheel.is_empty w)

let wheel_fifo_ties () =
  let w = Wheel.create () in
  List.iteri (fun i v -> ignore (Wheel.push w ~key:7 ~tie:i v)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "FIFO among equal keys" [ "a"; "b"; "c" ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w))

let wheel_overdue_push () =
  (* Popping advances the wheel's position; a later push below that
     position is "overdue" and must still pop first, in full (key, tie)
     order against other overdue entries. *)
  let w = Wheel.create () in
  ignore (Wheel.push w ~key:1_000_000 ~tie:0 "future");
  check_int "positioned" 1_000_000 (Wheel.min_key_exn w);
  ignore (Wheel.pop_exn w);
  ignore (Wheel.push w ~key:10 ~tie:1 "overdue-b");
  ignore (Wheel.push w ~key:3 ~tie:2 "overdue-a");
  ignore (Wheel.push w ~key:2_000_000 ~tie:3 "future-2");
  Alcotest.(check (list string)) "overdue first, ordered"
    [ "overdue-a"; "overdue-b"; "future-2" ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w))

let wheel_cancel () =
  let w = Wheel.create () in
  let _a = Wheel.push w ~key:1 ~tie:0 "a" in
  let b = Wheel.push w ~key:2 ~tie:1 "b" in
  let _c = Wheel.push w ~key:3 ~tie:2 "c" in
  Wheel.cancel w b;
  check_int "length after cancel" 2 (Wheel.length w);
  Alcotest.(check (list string)) "survivors in order" [ "a"; "c" ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w));
  check_bool "stale handle rejected" true
    (try Wheel.cancel w b; false with Invalid_argument _ -> true)

let wheel_negative_key_rejected () =
  let w = Wheel.create () in
  check_bool "raises" true
    (try ignore (Wheel.push w ~key:(-1) ~tie:0 ()); false
     with Invalid_argument _ -> true)

let wheel_overflow_level () =
  (* Keys beyond the wheel's 2^52 ns span wait in the overflow heap and
     must migrate in as the wheel drains — including after a cancel. *)
  let span = 1 lsl 52 in
  let w = Wheel.create () in
  ignore (Wheel.push w ~key:5 ~tie:0 "near");
  ignore (Wheel.push w ~key:(span + 7) ~tie:1 "far-b");
  let dead = Wheel.push w ~key:(span + 3) ~tie:2 "dead" in
  ignore (Wheel.push w ~key:(span + 1) ~tie:3 "far-a");
  check_int "all queued" 4 (Wheel.length w);
  Wheel.cancel w dead;
  Alcotest.(check (list string)) "near then migrated overflow in order"
    [ "near"; "far-a"; "far-b" ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w))

let wheel_qcheck_vs_heap =
  (* The wheel and the heap implement the same ordering contract: any
     multiset of (key, tie) pairs drains identically, across level
     boundaries and into the overflow region. *)
  QCheck.Test.make ~name:"wheel pops exactly like the heap" ~count:200
    QCheck.(list (pair (int_bound 5_000_000) (int_bound 1000)))
    (fun pairs ->
      let w = Wheel.create ~capacity:4 () in
      let h = Heap.create () in
      (* Make ties unique so the expected order is total. *)
      List.iteri
        (fun i (k, t) ->
          let tie = (t * 10_000) + i in
          ignore (Wheel.push w ~key:k ~tie i);
          Heap.push h ~key:k ~tie i)
        pairs;
      let rec drain_heap acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, t, v) -> drain_heap ((k, t, v) :: acc)
      in
      wheel_drain w = drain_heap [])

let wheel_cascades_counted () =
  let w = Wheel.create () in
  (* Spread entries over several levels, then drain: redistributions
     must have happened and been counted. *)
  for i = 0 to 199 do
    ignore (Wheel.push w ~key:(i * 7919) ~tie:i i)
  done;
  ignore (wheel_drain w);
  check_bool "cascades happened" true (Wheel.cascade_count w > 0)

let wheel_span_boundary () =
  (* The exact edge of the wheel's 2^52 ns span: span - 1 is the last
     key the levels can hold, span and beyond live in the overflow heap
     until the drain reaches them.  Ordering must be seamless across
     the boundary, and equal keys on both sides of it keep FIFO ties. *)
  let span = 1 lsl 52 in
  let w = Wheel.create () in
  ignore (Wheel.push w ~key:(span - 1) ~tie:0 "last-in-wheel");
  ignore (Wheel.push w ~key:span ~tie:1 "first-overflow");
  ignore (Wheel.push w ~key:(span + 1) ~tie:2 "second-overflow");
  ignore (Wheel.push w ~key:0 ~tie:3 "now");
  ignore (Wheel.push w ~key:span ~tie:4 "first-overflow-tie");
  Alcotest.(check (list string))
    "seamless order across the span edge"
    [
      "now"; "last-in-wheel"; "first-overflow"; "first-overflow-tie";
      "second-overflow";
    ]
    (List.map (fun (_, _, v) -> v) (wheel_drain w))

let wheel_mixed_cancel_vs_heap () =
  (* Satellite conformance pin: a deterministic program that pushes
     across every key regime (near, multi-level, beyond-span), cancels
     a third of the handles — some in the wheel levels, some in the
     overflow heap, one already popped — and interleaves pops, driven
     against the reference heap through the shared Timer_queue
     signature.  Lengths, minima and pop streams must agree at every
     step. *)
  let module Wq = Engine.Timer_queue.Of_wheel in
  let module Hq = Engine.Timer_queue.Of_heap in
  let span = 1 lsl 52 in
  let w = Wq.create () and h = Hq.create () in
  let agree ctx =
    check_int (ctx ^ ": length") (Hq.length h) (Wq.length w);
    if Wq.length w > 0 then begin
      check_int (ctx ^ ": min key") (Hq.min_key_exn h) (Wq.min_key_exn w);
      check_int (ctx ^ ": min tie") (Hq.min_tie_exn h) (Wq.min_tie_exn w)
    end
  in
  let pop ctx =
    agree ctx;
    check_int (ctx ^ ": popped value") (Hq.pop_exn h) (Wq.pop_exn w)
  in
  let handles =
    List.mapi
      (fun i key -> (Wq.push w ~key ~tie:i i, Hq.push h ~key ~tie:i i))
      [
        3; 1_000; 777; 40_000_000; 5_000_000_000; 123_456_789_000;
        span - 2; span; span + 99; span + 5; (2 * span) + 1; 17;
      ]
  in
  agree "after pushes";
  (* pop the two earliest (3 and 17) ... *)
  pop "first";
  pop "second";
  let cancel i =
    let hw, hh = List.nth handles i in
    Wq.cancel w hw;
    Hq.cancel h hh;
    agree (Printf.sprintf "after cancel %d" i)
  in
  cancel 0 (* already popped: must be a no-op on both *);
  cancel 2 (* low wheel level *);
  cancel 3 (* higher wheel level *);
  cancel 7 (* overflow heap, minimal overflow key *);
  cancel 10 (* overflow heap, largest key *);
  cancel 10 (* double cancel: idempotent *);
  (* remaining live: 1_000, 5e9, 123_456_789_000, span-2, span+99, span+5 *)
  check_int "live entries" 6 (Wq.length w);
  let drained = ref [] in
  while Wq.length w > 0 do
    agree "drain";
    drained := Wq.pop_exn w :: !drained;
    ignore (Hq.pop_exn h)
  done;
  Alcotest.(check (list int))
    "survivors in key order"
    [ 1; 4; 5; 6; 9; 8 ]
    (List.rev !drained);
  check_bool "heap drained too" true (Hq.is_empty h)

(* --- Sched --- *)

let sched_ordering () =
  let s = Sched.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sched.at s (Time.ms 30) (note "c"));
  ignore (Sched.at s (Time.ms 10) (note "a"));
  ignore (Sched.at s (Time.ms 20) (note "b"));
  Sched.run s;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  check_int "clock at last event" (Time.ms 30) (Sched.now s);
  check_int "fired" 3 (Sched.events_processed s)

let sched_same_time_fifo () =
  let s = Sched.create () in
  let log = ref [] in
  List.iter
    (fun tag -> ignore (Sched.at s (Time.ms 5) (fun () -> log := tag :: !log)))
    [ "x"; "y"; "z" ];
  Sched.run s;
  Alcotest.(check (list string)) "insertion order" [ "x"; "y"; "z" ]
    (List.rev !log)

let sched_cancel () =
  let s = Sched.create () in
  let fired = ref false in
  let t = Sched.at s (Time.ms 1) (fun () -> fired := true) in
  check_bool "pending" true (Sched.pending t);
  Sched.cancel t;
  Sched.run s;
  check_bool "cancelled event must not fire" false !fired;
  check_bool "not pending" false (Sched.pending t)

let sched_until () =
  let s = Sched.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sched.after s (Time.ms 10) tick)
  in
  ignore (Sched.at s Time.zero tick);
  Sched.run ~until:(Time.ms 95) s;
  check_int "ticks in [0, 95ms]" 10 !count;
  check_int "clock advanced to horizon" (Time.ms 95) (Sched.now s);
  Sched.run ~until:(Time.ms 100) s;
  check_int "one more tick at 100ms" 11 !count

let sched_nested_scheduling () =
  let s = Sched.create () in
  let log = ref [] in
  ignore
    (Sched.at s (Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sched.after s Time.zero (fun () -> log := "inner" :: !log))));
  ignore (Sched.at s (Time.ms 2) (fun () -> log := "later" :: !log));
  Sched.run s;
  Alcotest.(check (list string)) "inner runs before later"
    [ "outer"; "inner"; "later" ] (List.rev !log)

let sched_cancel_from_callback () =
  (* A callback may cancel a later event; the cancelled event must not
     fire even though it was already queued. *)
  let s = Sched.create () in
  let fired = ref [] in
  let victim = Sched.at s (Time.ms 10) (fun () -> fired := "victim" :: !fired) in
  ignore
    (Sched.at s (Time.ms 5) (fun () ->
         fired := "killer" :: !fired;
         Sched.cancel victim));
  Sched.run s;
  Alcotest.(check (list string)) "victim never fires" [ "killer" ]
    (List.rev !fired);
  check_int "only one event counted" 1 (Sched.events_processed s)

let sched_queue_length () =
  let s = Sched.create () in
  ignore (Sched.at s (Time.ms 1) (fun () -> ()));
  ignore (Sched.at s (Time.ms 2) (fun () -> ()));
  check_int "two pending" 2 (Sched.queue_length s);
  Sched.run s;
  check_int "drained" 0 (Sched.queue_length s)

let sched_stats () =
  let s = Sched.create () in
  let timers =
    List.init 5 (fun i -> Sched.at s (Time.ms (i + 1)) (fun () -> ()))
  in
  check_int "five pending" 5 (Sched.queue_length s);
  Sched.cancel (List.nth timers 1);
  Sched.cancel (List.nth timers 3);
  Sched.cancel (List.nth timers 3);
  (* double cancel is a no-op *)
  let st = Sched.stats s in
  check_int "pending excludes cancelled" 3 st.Sched.pending;
  check_int "cancelled" 2 st.Sched.cancelled;
  check_int "nothing fired yet" 0 st.Sched.fired;
  Sched.run s;
  let st = Sched.stats s in
  check_int "drained" 0 st.Sched.pending;
  check_int "three fired" 3 st.Sched.fired;
  check_int "cancel count is cumulative" 2 (Sched.cancelled_count s)

let sched_mass_cancel_compacts () =
  (* The retransmit-timer pattern: cancel nearly everything.  Live
     events must still fire in order, and the cancelled ones never. *)
  let s = Sched.create () in
  let log = ref [] in
  let timers =
    List.init 200 (fun i ->
        (i, Sched.at s (Time.ms (i + 1)) (fun () -> log := i :: !log)))
  in
  List.iter (fun (i, tm) -> if i mod 10 <> 0 then Sched.cancel tm) timers;
  check_int "only survivors pending" 20 (Sched.queue_length s);
  check_int "180 cancelled" 180 (Sched.cancelled_count s);
  Sched.run s;
  Alcotest.(check (list int)) "survivors fire in time order"
    (List.init 20 (fun i -> i * 10))
    (List.rev !log);
  check_int "fired" 20 (Sched.events_processed s)

let sched_qcheck_cancel_order =
  (* Against an arbitrary cancellation pattern, the fired sequence is
     exactly the non-cancelled events sorted by (time, insertion):
     compaction must never lose or reorder a live timer. *)
  QCheck.Test.make ~name:"random cancels preserve firing order" ~count:100
    QCheck.(list (pair (int_bound 30) bool))
    (fun events ->
      let s = Sched.create () in
      let log = ref [] in
      let timers =
        List.mapi
          (fun i (t_ms, cancel) ->
            (i, cancel, Sched.at s (Time.ms t_ms) (fun () -> log := i :: !log)))
          events
      in
      List.iter
        (fun (_, cancel, tm) -> if cancel then Sched.cancel tm)
        timers;
      Sched.run s;
      let expected =
        List.mapi (fun i (t_ms, cancel) -> (t_ms, i, cancel)) events
        |> List.filter (fun (_, _, cancel) -> not cancel)
        |> List.sort compare
        |> List.map (fun (_, i, _) -> i)
      in
      List.rev !log = expected)

let sched_lockstep_shadow () =
  (* With the heap shadow armed, every dispatch is cross-checked; a
     mixed workload with cancellation must run to completion in the
     same order (any divergence raises Failure mid-run). *)
  let s = Sched.create () in
  Sched.set_lockstep s true;
  check_bool "armed" true (Sched.lockstep s);
  let log = ref [] in
  let victim = Sched.at s (Time.ms 4) (fun () -> log := "victim" :: !log) in
  ignore (Sched.at s (Time.ms 2) (fun () -> log := "a" :: !log));
  ignore
    (Sched.at s (Time.ms 3) (fun () ->
         log := "b" :: !log;
         ignore (Sched.after s (Time.ms 5) (fun () -> log := "c" :: !log))));
  Sched.cancel victim;
  Sched.run s;
  Alcotest.(check (list string)) "order under lockstep" [ "a"; "b"; "c" ]
    (List.rev !log)

let sched_lockstep_requires_empty () =
  let s = Sched.create () in
  ignore (Sched.at s (Time.ms 1) (fun () -> ()));
  Alcotest.check_raises "non-empty rejected"
    (Invalid_argument "Sched.set_lockstep: scheduler already has queued events")
    (fun () -> Sched.set_lockstep s true)

let sched_past_rejected () =
  let s = Sched.create () in
  ignore (Sched.at s (Time.ms 5) (fun () -> ()));
  Sched.run s;
  check_bool "raises on past" true
    (try ignore (Sched.at s (Time.ms 1) (fun () -> ())); false
     with Invalid_argument _ -> true)

(* --- Rng --- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done;
  let c = Rng.create 43 in
  check_bool "different seed differs" true (Rng.bits64 (Rng.create 42) <> Rng.bits64 c)

let rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let f = Rng.float r 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let rng_uniformity () =
  (* chi-square-ish sanity: all 10 buckets within 3x of expectation. *)
  let r = Rng.create 123 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c -> check_bool "bucket roughly uniform" true (c > 700 && c < 1300))
    buckets

let rng_exponential_mean () =
  let r = Rng.create 99 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:3.0
  done;
  let m = !sum /. float_of_int n in
  check_bool "sample mean near 3.0" true (Float.abs (m -. 3.0) < 0.15)

let rng_split_independent () =
  let r = Rng.create 5 in
  let a = Rng.split r in
  let b = Rng.split r in
  check_bool "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let rng_uniform_time () =
  let r = Rng.create 1 in
  for _ = 1 to 100 do
    let v = Rng.uniform_time r ~lo:(Time.ms 1) ~hi:(Time.ms 2) in
    check_bool "in closed range" true (v >= Time.ms 1 && v <= Time.ms 2)
  done

let () =
  Alcotest.run "engine"
    [
      ( "time",
        [
          Alcotest.test_case "unit constructors" `Quick time_units;
          Alcotest.test_case "float round trip" `Quick time_float_roundtrip;
          Alcotest.test_case "scale" `Quick time_scale;
          Alcotest.test_case "tx_time exact and rounded up" `Quick time_tx_exact;
          Alcotest.test_case "pretty printing" `Quick time_pp;
        ] );
      ( "heap",
        [
          Alcotest.test_case "push/pop basic" `Quick heap_basic;
          Alcotest.test_case "FIFO tie-break" `Quick heap_fifo_ties;
          Alcotest.test_case "clear" `Quick heap_clear;
          Alcotest.test_case "capacity honoured" `Quick heap_capacity;
          Alcotest.test_case "compact drops and keeps order" `Quick
            heap_compact_basic;
          QCheck_alcotest.to_alcotest heap_qcheck_sorted;
          QCheck_alcotest.to_alcotest heap_qcheck_conserves;
          QCheck_alcotest.to_alcotest heap_qcheck_key_tie_order;
          QCheck_alcotest.to_alcotest heap_qcheck_compact_order;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "push/pop basic" `Quick wheel_basic;
          Alcotest.test_case "FIFO tie-break" `Quick wheel_fifo_ties;
          Alcotest.test_case "overdue push still ordered" `Quick
            wheel_overdue_push;
          Alcotest.test_case "cancel unlinks, stale handle rejected" `Quick
            wheel_cancel;
          Alcotest.test_case "negative key rejected" `Quick
            wheel_negative_key_rejected;
          Alcotest.test_case "overflow level migrates in order" `Quick
            wheel_overflow_level;
          Alcotest.test_case "cascades counted" `Quick wheel_cascades_counted;
          Alcotest.test_case "span boundary seamless" `Quick
            wheel_span_boundary;
          Alcotest.test_case "mixed wheel/overflow cancel vs heap" `Quick
            wheel_mixed_cancel_vs_heap;
          QCheck_alcotest.to_alcotest wheel_qcheck_vs_heap;
        ] );
      ( "sched",
        [
          Alcotest.test_case "events fire in time order" `Quick sched_ordering;
          Alcotest.test_case "same-time events are FIFO" `Quick
            sched_same_time_fifo;
          Alcotest.test_case "cancel prevents firing" `Quick sched_cancel;
          Alcotest.test_case "run ~until stops at horizon" `Quick sched_until;
          Alcotest.test_case "zero-delay nested events" `Quick
            sched_nested_scheduling;
          Alcotest.test_case "scheduling in the past rejected" `Quick
            sched_past_rejected;
          Alcotest.test_case "cancel from a callback" `Quick
            sched_cancel_from_callback;
          Alcotest.test_case "queue length" `Quick sched_queue_length;
          Alcotest.test_case "stats snapshot" `Quick sched_stats;
          Alcotest.test_case "mass cancellation compacts" `Quick
            sched_mass_cancel_compacts;
          Alcotest.test_case "lockstep shadow agrees" `Quick
            sched_lockstep_shadow;
          Alcotest.test_case "lockstep requires empty queue" `Quick
            sched_lockstep_requires_empty;
          QCheck_alcotest.to_alcotest sched_qcheck_cancel_order;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "rough uniformity" `Quick rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick rng_split_independent;
          Alcotest.test_case "uniform_time range" `Quick rng_uniform_time;
        ] );
    ]
