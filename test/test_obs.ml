(* Observability layer: ring semantics, trace export well-formedness,
   metrics determinism across domain counts, and the guarantee that
   attaching the collector does not perturb the simulation itself. *)

let spec ?obs ?(audit = false) ?(seed = 1) () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
    ~duration:(Engine.Time.ms 600) ~sampling:(Engine.Time.ms 100) ~seed
    ~audit ?obs ()

let obs_conf ?(trace = true) ?(metrics = true) ?(capacity = 65536) () =
  { Obs.Collect.trace; metrics; trace_capacity = capacity }

(* --- ring --- *)

let test_ring_basic () =
  let r = Obs.Ring.create ~capacity:4 in
  Alcotest.(check int) "empty length" 0 (Obs.Ring.length r);
  List.iter (Obs.Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "under capacity" [ 1; 2; 3 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "no overwrites yet" 0 (Obs.Ring.overwritten r);
  List.iter (Obs.Ring.push r) [ 4; 5; 6 ];
  Alcotest.(check (list int))
    "keeps the most recent, oldest first" [ 3; 4; 5; 6 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "length capped" 4 (Obs.Ring.length r);
  Alcotest.(check int) "pushed counts everything" 6 (Obs.Ring.pushed r);
  Alcotest.(check int) "overwritten = pushed - kept" 2 (Obs.Ring.overwritten r);
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Obs.Ring.length r);
  Obs.Ring.push r 7;
  Alcotest.(check (list int)) "usable after clear" [ 7 ] (Obs.Ring.to_list r)

let test_ring_wrap_many () =
  let cap = 7 in
  let r = Obs.Ring.create ~capacity:cap in
  for i = 1 to 100 do
    Obs.Ring.push r i
  done;
  Alcotest.(check (list int))
    "exactly the last [capacity] values"
    (List.init cap (fun i -> 100 - cap + 1 + i))
    (Obs.Ring.to_list r);
  Alcotest.(check int) "overwritten" (100 - cap) (Obs.Ring.overwritten r);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Ring.create: capacity must be >= 1") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* --- trace export --- *)

let substr_idx s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let float_after line key =
  Option.map
    (fun i ->
      let j = ref i in
      let num = function
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      in
      while !j < String.length line && num line.[!j] do
        incr j
      done;
      float_of_string (String.sub line i (!j - i)))
    (substr_idx line key)

let run_with_trace () =
  let result =
    Core.Scenario.run (spec ~obs:(obs_conf ()) ())
  in
  match result.Core.Scenario.obs with
  | None -> Alcotest.fail "obs missing from result"
  | Some o -> (
    match Obs.Collect.trace o with
    | None -> Alcotest.fail "trace layer missing"
    | Some tr -> tr)

let chrome_lines tr =
  let path = Filename.temp_file "obs_trace" ".json" in
  let oc = open_out path in
  Obs.Trace.write_chrome tr oc;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  List.rev !lines

let test_chrome_well_formed () =
  let tr = run_with_trace () in
  Alcotest.(check bool) "recorded events" true (Obs.Trace.recorded tr > 0);
  let lines = chrome_lines tr in
  let n = List.length lines in
  Alcotest.(check bool) "has events" true (n > 2);
  Alcotest.(check string) "array open" "[" (List.nth lines 0);
  Alcotest.(check string) "array close" "]" (List.nth lines (n - 1));
  List.iteri
    (fun i line ->
      if i > 0 && i < n - 1 then begin
        let body =
          if String.length line > 0 && line.[String.length line - 1] = ','
          then String.sub line 0 (String.length line - 1)
          else line
        in
        let last_i = i = n - 2 in
        if (not last_i) && body = line then
          Alcotest.failf "line %d misses its comma: %s" i line;
        if
          String.length body < 2
          || body.[0] <> '{'
          || body.[String.length body - 1] <> '}'
        then Alcotest.failf "line %d is not an object: %s" i line
      end)
    lines

let test_chrome_monotone_per_track () =
  let tr = run_with_trace () in
  let last : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun line ->
      (* skip metadata: only timed events carry "ts" *)
      match (float_after line "\"tid\":", float_after line "\"ts\":") with
      | Some tid, Some ts ->
        let tid = int_of_float tid in
        (match Hashtbl.find_opt last tid with
        | Some prev when ts < prev ->
          Alcotest.failf "track %d goes back in time: %f after %f" tid ts prev
        | _ -> ());
        Hashtbl.replace last tid ts
      | _ -> ())
    (chrome_lines tr);
  Alcotest.(check bool) "saw several tracks" true (Hashtbl.length last >= 3)

let test_trace_ring_bounded () =
  let result =
    Core.Scenario.run (spec ~obs:(obs_conf ~capacity:256 ()) ())
  in
  let tr =
    match result.Core.Scenario.obs with
    | Some o -> Option.get (Obs.Collect.trace o)
    | None -> Alcotest.fail "obs missing"
  in
  Alcotest.(check int) "kept at most capacity" 256
    (List.length (Obs.Trace.events tr));
  Alcotest.(check bool) "overflow recorded" true (Obs.Trace.dropped tr > 0);
  (* ring order is emission order, so sim_ns is nondecreasing *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Obs.Trace.sim_ns <= b.Obs.Trace.sim_ns && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "events time-ordered" true
    (sorted (Obs.Trace.events tr))

(* --- metrics --- *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "tcp.retransmits" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:3 c;
  Alcotest.(check int) "counter value" 4 (Obs.Metrics.value c);
  Obs.Metrics.gauge m "engine.heap_depth" (fun () -> 42.0);
  let h = Obs.Metrics.histogram m "core.rtt_s" in
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 3.0;
  Obs.Metrics.set m "core.wall_time_s" 0.5;
  Obs.Metrics.snapshot m ~sim_ns:1000;
  (match Obs.Metrics.snapshots m with
  | [ snap ] ->
    Alcotest.(check int) "snapshot stamped" 1000 snap.Obs.Metrics.sim_ns;
    let names = List.map fst snap.Obs.Metrics.values in
    Alcotest.(check (list string))
      "values sorted by name"
      [
        "core.rtt_s.count"; "core.rtt_s.max"; "core.rtt_s.mean";
        "core.rtt_s.min"; "core.rtt_s.sum"; "core.wall_time_s";
        "engine.heap_depth"; "tcp.retransmits";
      ]
      names;
    Alcotest.(check (float 1e-9))
      "histogram mean" 2.0
      (List.assoc "core.rtt_s.mean" snap.Obs.Metrics.values)
  | snaps -> Alcotest.failf "expected 1 snapshot, got %d" (List.length snaps));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: tcp.retransmits is a counter, not a gauge")
    (fun () -> Obs.Metrics.gauge m "tcp.retransmits" (fun () -> 0.0))

let is_wall (name, _) =
  substr_idx name "wall" <> None

let metric_rows result =
  match result.Core.Scenario.obs with
  | Some o -> (
    match Obs.Collect.metrics o with
    | Some m ->
      List.concat_map
        (fun s ->
          List.filter_map
            (fun ((name, v) as kv) ->
              if is_wall kv then None
              else Some (s.Obs.Metrics.sim_ns, name, v))
            s.Obs.Metrics.values)
        (Obs.Metrics.snapshots m)
    | None -> Alcotest.fail "metrics layer missing")
  | None -> Alcotest.fail "obs missing"

let test_metrics_deterministic_across_jobs () =
  let specs =
    List.map
      (fun seed -> spec ~obs:(obs_conf ~trace:false ()) ~seed ())
      [ 1; 2; 3; 4 ]
  in
  let serial = Core.Runner.scenarios ~jobs:1 specs in
  let parallel = Core.Runner.scenarios ~jobs:4 specs in
  List.iter2
    (fun a b ->
      let ra = metric_rows a and rb = metric_rows b in
      Alcotest.(check int)
        "same number of metric rows" (List.length ra) (List.length rb);
      List.iter2
        (fun (ta, na, va) (tb, nb, vb) ->
          Alcotest.(check int) "same snapshot time" ta tb;
          Alcotest.(check string) "same metric name" na nb;
          if va <> vb then
            Alcotest.failf "%s differs at %d ns: %.17g vs %.17g" na ta va vb)
        ra rb)
    serial parallel

(* --- non-perturbation --- *)

let check_series_equal msg (a : Measure.Series.t) (b : Measure.Series.t) =
  Alcotest.(check (float 0.0)) (msg ^ ": t0") a.Measure.Series.t0 b.Measure.Series.t0;
  Alcotest.(check (float 0.0)) (msg ^ ": dt") a.Measure.Series.dt b.Measure.Series.dt;
  Alcotest.(check (array (float 0.0)))
    (msg ^ ": values") a.Measure.Series.values b.Measure.Series.values

let test_obs_does_not_perturb () =
  let baseline = Core.Scenario.run (spec ()) in
  let observed = Core.Scenario.run (spec ~obs:(obs_conf ()) ()) in
  Alcotest.(check int)
    "delivered bytes identical" baseline.Core.Scenario.delivered_bytes
    observed.Core.Scenario.delivered_bytes;
  Alcotest.(check int)
    "queue drops identical" baseline.Core.Scenario.queue_drops
    observed.Core.Scenario.queue_drops;
  List.iter2
    (fun (tag_a, sa) (tag_b, sb) ->
      Alcotest.(check int) "same tag" tag_a tag_b;
      check_series_equal "per-path series" sa sb)
    baseline.Core.Scenario.per_tag observed.Core.Scenario.per_tag;
  check_series_equal "total series" baseline.Core.Scenario.total
    observed.Core.Scenario.total;
  List.iter2
    (fun (a : Core.Scenario.subflow_report) (b : Core.Scenario.subflow_report) ->
      Alcotest.(check int)
        "segments_sent identical" a.Core.Scenario.segments_sent
        b.Core.Scenario.segments_sent;
      Alcotest.(check int)
        "retransmits identical" a.Core.Scenario.retransmits
        b.Core.Scenario.retransmits)
    baseline.Core.Scenario.subflows observed.Core.Scenario.subflows

let test_obs_chains_with_audit () =
  let result = Core.Scenario.run (spec ~obs:(obs_conf ()) ~audit:true ()) in
  (match result.Core.Scenario.audit with
  | None -> Alcotest.fail "audit report missing"
  | Some rep ->
    Alcotest.(check int) "clean audited run" 0 rep.Audit.total_violations;
    Alcotest.(check bool) "audit still ran checks" true (rep.Audit.checks > 0));
  match result.Core.Scenario.obs with
  | None -> Alcotest.fail "obs missing"
  | Some o ->
    let tr = Option.get (Obs.Collect.trace o) in
    Alcotest.(check bool) "trace captured alongside audit" true
      (Obs.Trace.recorded tr > 0)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "push/overwrite" `Quick test_ring_basic;
          Alcotest.test_case "wrap far past capacity" `Quick
            test_ring_wrap_many;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome json well-formed" `Quick
            test_chrome_well_formed;
          Alcotest.test_case "monotone per track" `Quick
            test_chrome_monotone_per_track;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_metrics_deterministic_across_jobs;
        ] );
      ( "integration",
        [
          Alcotest.test_case "no perturbation" `Quick
            test_obs_does_not_perturb;
          Alcotest.test_case "chains with audit" `Quick
            test_obs_chains_with_audit;
        ] );
    ]
