(* Tests for the TCP substrate.

   Three layers of testing:
   - unit tests of the RTT estimator and congestion-control laws against
     hand-computed values;
   - a "wire harness" that captures the sender's segments and feeds it
     hand-crafted ACKs, pinning down the loss-recovery state machine
     (fast retransmit, NewReno partial ACKs, RTO with backoff, Karn);
   - end-to-end runs over the simulated network (throughput reaches the
     bottleneck; competing flows share it). *)

let ms = Engine.Time.ms
let mb = Netgraph.Topology.mbps
let mss = Packet.default_mss

(* --- Rtt --- *)

let rtt_first_sample () =
  let r = Tcp.Rtt.create () in
  Alcotest.(check bool) "no srtt yet" true (Tcp.Rtt.srtt r = None);
  Alcotest.(check int) "initial rto 1s" (Engine.Time.s 1) (Tcp.Rtt.rto r);
  Tcp.Rtt.sample r (ms 100);
  Alcotest.(check (option int)) "srtt = first sample" (Some (ms 100))
    (Tcp.Rtt.srtt r);
  Alcotest.(check int) "rttvar = r/2" (ms 50) (Tcp.Rtt.rttvar r);
  (* rto = srtt + 4 var = 300 ms *)
  Alcotest.(check int) "rto" (ms 300) (Tcp.Rtt.rto r)

let rtt_smoothing () =
  let r = Tcp.Rtt.create () in
  Tcp.Rtt.sample r (ms 100);
  Tcp.Rtt.sample r (ms 200);
  (* srtt = 7/8*100 + 1/8*200 = 112.5 ms;
     rttvar = 3/4*50 + 1/4*|100-200| = 62.5 ms *)
  Alcotest.(check (option int)) "srtt" (Some (ms 100 + (ms 100 / 8)))
    (Tcp.Rtt.srtt r);
  Alcotest.(check int) "rttvar" (ms 50 + (ms 50 / 4)) (Tcp.Rtt.rttvar r)

let rtt_min_rto () =
  let r = Tcp.Rtt.create () in
  Tcp.Rtt.sample r (ms 1);
  (* 1 + 4 * 0.5 = 3 ms, clamped to the 200 ms floor. *)
  Alcotest.(check int) "min rto enforced" (ms 200) (Tcp.Rtt.rto r)

let rtt_backoff () =
  let r = Tcp.Rtt.create () in
  Tcp.Rtt.sample r (ms 100);
  let base = Tcp.Rtt.rto r in
  Tcp.Rtt.backoff r;
  Alcotest.(check int) "doubled" (2 * base) (Tcp.Rtt.rto r);
  Tcp.Rtt.backoff r;
  Alcotest.(check int) "doubled again" (4 * base) (Tcp.Rtt.rto r);
  Tcp.Rtt.sample r (ms 100);
  (* The new sample clears the backoff factor and also tightens rttvar:
     var = 3/4 * 50 + 1/4 * 0 = 37.5 ms, so rto = 100 + 150 = 250 ms. *)
  Alcotest.(check int) "sample resets backoff" (ms 250) (Tcp.Rtt.rto r)

let rtt_max_cap () =
  let r = Tcp.Rtt.create ~max_rto:(Engine.Time.s 4) () in
  Tcp.Rtt.sample r (Engine.Time.s 1);
  for _ = 1 to 10 do Tcp.Rtt.backoff r done;
  Alcotest.(check int) "capped" (Engine.Time.s 4) (Tcp.Rtt.rto r)

(* --- congestion-control unit harness --- *)

type fake_sub = { mutable cwnd : float; mutable ssthresh : float }

let fake_ctx ?(rtt_s = 0.1) ?(now = ref 0.0) sub =
  (* A private 1-slot group tracking this subflow, re-synced on read —
     the single-path view a plain TCP controller sees. *)
  let own = Tcp.Cc.group_create 1 in
  let group () =
    own.Tcp.Cc.cwnds.(0) <- sub.cwnd;
    own.Tcp.Cc.srtts.(0) <- rtt_s;
    Tcp.Cc.group_set_established own 0 true;
    own
  in
  {
    Tcp.Cc.now_s = (fun () -> !now);
    mss;
    get_cwnd = (fun () -> sub.cwnd);
    set_cwnd = (fun w -> sub.cwnd <- Float.max 1.0 w);
    get_ssthresh = (fun () -> sub.ssthresh);
    set_ssthresh = (fun w -> sub.ssthresh <- Float.max 2.0 w);
    srtt_s = (fun () -> rtt_s);
    group;
    self_index = (fun () -> 0);
  }

let reno_slow_start () =
  let sub = { cwnd = 1.0; ssthresh = 64.0 } in
  let cc = Tcp.Cc_reno.factory (fake_ctx sub) in
  (* One MSS acked per segment: cwnd + 1 per ACK — doubling per RTT. *)
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "after 1 ack" 2.0 sub.cwnd;
  cc.Tcp.Cc.on_ack ~acked:mss;
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "after 3 acks" 4.0 sub.cwnd

let reno_slow_start_capped () =
  let sub = { cwnd = 9.5; ssthresh = 10.0 } in
  let cc = Tcp.Cc_reno.factory (fake_ctx sub) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "capped at ssthresh" 10.0 sub.cwnd

let reno_congestion_avoidance () =
  let sub = { cwnd = 10.0; ssthresh = 5.0 } in
  let cc = Tcp.Cc_reno.factory (fake_ctx sub) in
  cc.Tcp.Cc.on_ack ~acked:mss;
  Alcotest.(check (float 1e-9)) "+1/cwnd" 10.1 sub.cwnd;
  (* A full window of ACKs adds ~1 MSS. *)
  let sub2 = { cwnd = 10.0; ssthresh = 5.0 } in
  let cc2 = Tcp.Cc_reno.factory (fake_ctx sub2) in
  for _ = 1 to 10 do cc2.Tcp.Cc.on_ack ~acked:mss done;
  Alcotest.(check bool) "about +1 per RTT" true
    (sub2.cwnd > 10.95 && sub2.cwnd < 11.05)

let reno_loss_halves () =
  let sub = { cwnd = 20.0; ssthresh = 100.0 } in
  let cc = Tcp.Cc_reno.factory (fake_ctx sub) in
  cc.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-9)) "cwnd" 10.0 sub.cwnd;
  Alcotest.(check (float 1e-9)) "ssthresh" 10.0 sub.ssthresh;
  (* Floor at 2 MSS. *)
  let sub2 = { cwnd = 2.5; ssthresh = 100.0 } in
  let cc2 = Tcp.Cc_reno.factory (fake_ctx sub2) in
  cc2.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-9)) "floor" 2.0 sub2.cwnd

let reno_rto_collapses () =
  let sub = { cwnd = 20.0; ssthresh = 100.0 } in
  let cc = Tcp.Cc_reno.factory (fake_ctx sub) in
  cc.Tcp.Cc.on_rto ();
  Alcotest.(check (float 1e-9)) "cwnd 1" 1.0 sub.cwnd;
  Alcotest.(check (float 1e-9)) "ssthresh half" 10.0 sub.ssthresh

let cubic_decrease () =
  let sub = { cwnd = 100.0; ssthresh = 1e9 } in
  let cc = Tcp.Cc_cubic.factory (fake_ctx sub) in
  cc.Tcp.Cc.on_loss ();
  Alcotest.(check (float 1e-6)) "beta = 0.7" 70.0 sub.cwnd

let cubic_regrows_toward_wmax () =
  let now = ref 0.0 in
  let sub = { cwnd = 100.0; ssthresh = 1e9 } in
  let ctx = fake_ctx ~now sub in
  let cc = Tcp.Cc_cubic.factory ctx in
  cc.Tcp.Cc.on_loss ();
  (* ssthresh is now 70, so we are in congestion avoidance. *)
  let prev = ref sub.cwnd in
  let monotone = ref true in
  for i = 1 to 2000 do
    now := float_of_int i *. 0.01;
    cc.Tcp.Cc.on_ack ~acked:mss;
    if sub.cwnd < !prev then monotone := false;
    prev := sub.cwnd
  done;
  Alcotest.(check bool) "grows monotonically" true !monotone;
  Alcotest.(check bool)
    (Printf.sprintf "passes w_max eventually (%.1f)" sub.cwnd)
    true (sub.cwnd > 100.0)

let cubic_concave_then_convex () =
  (* Drive a continuous ACK clock after a loss and compare window growth
     per fixed wall-time slice: CUBIC must grow fast initially, flatten
     in a plateau around w_max (t = K), then accelerate again. *)
  let now = ref 0.0 in
  let sub = { cwnd = 100.0; ssthresh = 1e9 } in
  let cc = Tcp.Cc_cubic.factory (fake_ctx ~now sub) in
  cc.Tcp.Cc.on_loss ();
  let snapshots = ref [] in
  let steps = 1200 in
  for i = 1 to steps do
    now := float_of_int i *. 0.01;
    cc.Tcp.Cc.on_ack ~acked:mss;
    if i mod 300 = 0 then snapshots := sub.cwnd :: !snapshots
  done;
  match List.rev !snapshots with
  | [ w3; w6; w9; w12 ] ->
    let g1 = w3 -. 70.0 and g2 = w6 -. w3 and g3 = w9 -. w6 in
    let g4 = w12 -. w9 in
    (* K = cbrt(30 / 0.4) ~ 4.2 s: the 3-6 s window straddles the
       plateau, so it must grow the least; the tail is convex. *)
    Alcotest.(check bool)
      (Printf.sprintf "concave: %.2f > %.2f" g1 g2)
      true (g1 > g2);
    Alcotest.(check bool)
      (Printf.sprintf "convex tail: %.2f > %.2f" g4 g3)
      true (g4 > g3)
  | _ -> Alcotest.fail "expected four snapshots"

(* --- wire harness: drive the sender by hand --- *)

type harness = {
  sched : Engine.Sched.t;
  sender : Tcp.Sender.t;
  mutable sent : Packet.t list; (* newest first *)
}

(* The hand-driven harness feeds ACKs without SACK blocks, exercising
   the classic NewReno machinery; SACK recovery has its own tests. *)
let newreno_config = { Tcp.Sender.default_config with Tcp.Sender.sack = false }

let make_harness ?(config = newreno_config) () =
  let sched = Engine.Sched.create () in
  let h = ref None in
  let ids = ref 0 in
  let sender =
    Tcp.Sender.create ~sched ~config ~conn:1 ~subflow:0 ~src:0 ~dst:1 ~tag:1
      ~fresh_id:(fun () -> incr ids; !ids)
      ~transmit:(fun p ->
        match !h with Some h -> h.sent <- p :: h.sent | None -> ())
      ~source:(fun ~max_len -> Some { Tcp.Sender.dss = None; len = max_len })
      ~cc:Tcp.Cc_reno.factory ()
  in
  let harness = { sched; sender; sent = [] } in
  h := Some harness;
  harness

let ack h ?(advance = ms 10) value =
  Engine.Sched.run ~until:(Engine.Time.add (Engine.Sched.now h.sched) advance)
    h.sched;
  Tcp.Sender.handle_ack h.sender
    {
      Packet.conn = 1; subflow = 0; kind = Packet.Ack; seq = 0; payload = 0;
      ack = value; sack = []; ece = false; dss = None; data_ack = 0;
    }

let seqs h =
  List.rev_map (fun p -> (Packet.tcp_exn p).Packet.seq) h.sent

let initial_window () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  Alcotest.(check int) "IW10 segments" 10 (List.length h.sent);
  Alcotest.(check (list int)) "sequential seqs"
    (List.init 10 (fun i -> i * mss))
    (seqs h);
  Alcotest.(check int) "in flight" (10 * mss)
    (Tcp.Sender.in_flight_bytes h.sender)

let ack_advances_and_grows () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  let before = List.length h.sent in
  ack h mss;
  (* Slow start: one ACK of one MSS grows cwnd by 1, freeing 2 slots. *)
  Alcotest.(check int) "two new segments" (before + 2) (List.length h.sent);
  Alcotest.(check (float 0.001)) "cwnd 11" 11.0 (Tcp.Sender.cwnd h.sender);
  Alcotest.(check int) "bytes acked" mss
    (Tcp.Sender.stats h.sender).Tcp.Sender.bytes_acked

let rtt_sampled_from_ack () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  ack h ~advance:(ms 42) mss;
  Alcotest.(check (option int)) "srtt from the wire" (Some (ms 42))
    (Tcp.Sender.srtt h.sender)

let fast_retransmit_on_3_dupacks () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  ack h mss;
  (* duplicate ACKs at the same level *)
  h.sent <- [];
  ack h mss;
  ack h mss;
  Alcotest.(check int) "no retransmit before 3" 0 (List.length h.sent);
  Alcotest.(check bool) "not yet recovering" false
    (Tcp.Sender.in_recovery h.sender);
  ack h mss;
  Alcotest.(check bool) "in recovery" true (Tcp.Sender.in_recovery h.sender);
  (* The first retransmission is the lost segment (seq = mss). *)
  (match List.rev h.sent with
  | p :: _ -> Alcotest.(check int) "retransmits snd_una" mss
                (Packet.tcp_exn p).Packet.seq
  | [] -> Alcotest.fail "expected a retransmission");
  Alcotest.(check int) "fast recovery counted" 1
    (Tcp.Sender.stats h.sender).Tcp.Sender.fast_recoveries;
  Alcotest.(check (float 0.01)) "window halved" 5.5 (Tcp.Sender.ssthresh h.sender)

let newreno_partial_ack () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  ack h mss;
  ack h mss; ack h mss; ack h mss; (* enter recovery *)
  Alcotest.(check bool) "recovering" true (Tcp.Sender.in_recovery h.sender);
  h.sent <- [];
  (* Partial ACK: advances but below recover point -> retransmit next
     hole, stay in recovery. *)
  ack h (3 * mss);
  Alcotest.(check bool) "still recovering" true (Tcp.Sender.in_recovery h.sender);
  (match List.rev h.sent with
  | p :: _ -> Alcotest.(check int) "hole retransmitted" (3 * mss)
                (Packet.tcp_exn p).Packet.seq
  | [] -> Alcotest.fail "expected hole retransmission");
  (* Full ACK past the recovery point exits recovery. *)
  ack h (12 * mss);
  Alcotest.(check bool) "recovered" false (Tcp.Sender.in_recovery h.sender)

let dupack_inflation_sends_new_data () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  ack h mss;
  ack h mss; ack h mss; ack h mss; (* recovery entered; cwnd 5.5 + 3 *)
  h.sent <- [];
  (* Each further dup ACK inflates the window by 1 MSS; once inflation
     covers the in-flight data, new segments flow again. *)
  for _ = 1 to 5 do ack h mss done;
  Alcotest.(check bool) "inflation reopened the window" true
    (List.length h.sent >= 1);
  (* New data, not retransmissions: seq >= snd_max before the dupacks. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "new data" true
        ((Packet.tcp_exn p).Packet.seq >= 11 * mss))
    h.sent

let rto_fires_and_backs_off () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  (* No ACKs at all: initial RTO (1 s) must fire. *)
  h.sent <- [];
  Engine.Sched.run ~until:(Engine.Time.s 1) h.sched;
  Alcotest.(check int) "one timeout" 1
    (Tcp.Sender.stats h.sender).Tcp.Sender.timeouts;
  (* Go-back-N from snd_una with cwnd collapsed to 1. *)
  (match List.rev h.sent with
  | p :: _ -> Alcotest.(check int) "first segment resent" 0
                (Packet.tcp_exn p).Packet.seq
  | [] -> Alcotest.fail "expected an RTO retransmission");
  Alcotest.(check (float 0.001)) "cwnd 1" 1.0 (Tcp.Sender.cwnd h.sender);
  (* Second RTO after a doubled interval. *)
  Engine.Sched.run ~until:(Engine.Time.s 3) h.sched;
  Alcotest.(check int) "backoff doubled -> second timeout by 3 s" 2
    (Tcp.Sender.stats h.sender).Tcp.Sender.timeouts

let karn_no_sample_from_retx () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  Engine.Sched.run ~until:(Engine.Time.s 1) h.sched; (* RTO, segment resent *)
  ack h ~advance:(ms 5) mss;
  (* The only segment fully acked was retransmitted: Karn forbids the
     sample. *)
  Alcotest.(check (option int)) "no RTT sample" None (Tcp.Sender.srtt h.sender)

let source_refusal_stops_sending () =
  let sched = Engine.Sched.create () in
  let budget = ref 3 in
  let sent = ref 0 in
  let sender =
    Tcp.Sender.create ~sched ~config:Tcp.Sender.default_config ~conn:1
      ~subflow:0 ~src:0 ~dst:1 ~tag:1
      ~fresh_id:(fun () -> 0)
      ~transmit:(fun _ -> incr sent)
      ~source:(fun ~max_len ->
        if !budget = 0 then None
        else begin
          decr budget;
          Some { Tcp.Sender.dss = None; len = max_len }
        end)
      ~cc:Tcp.Cc_reno.factory ()
  in
  Tcp.Sender.kick sender;
  Alcotest.(check int) "only what the source grants" 3 !sent;
  budget := 2;
  Tcp.Sender.kick sender;
  Alcotest.(check int) "kick resumes" 5 !sent

(* --- SACK recovery --- *)

let sack_harness () = make_harness ~config:Tcp.Sender.default_config ()

let ack_sack h ?(advance = ms 10) ~sack value =
  Engine.Sched.run ~until:(Engine.Time.add (Engine.Sched.now h.sched) advance)
    h.sched;
  Tcp.Sender.handle_ack h.sender
    {
      Packet.conn = 1; subflow = 0; kind = Packet.Ack; seq = 0; payload = 0;
      ack = value; sack; ece = false; dss = None; data_ack = 0;
    }

let sack_triggers_recovery_early () =
  let h = sack_harness () in
  Tcp.Sender.kick h.sender;
  h.sent <- [];
  (* One duplicate ACK whose SACK blocks already cover three segments is
     dup-ACK-equivalent (RFC 6675): recovery starts at once and the first
     hole (seq 0) is retransmitted. *)
  ack_sack h ~sack:[ (mss, 4 * mss) ] 0;
  Alcotest.(check bool) "in recovery" true (Tcp.Sender.in_recovery h.sender);
  (match List.rev h.sent with
  | p :: _ ->
    Alcotest.(check int) "hole at 0 retransmitted" 0
      (Packet.tcp_exn p).Packet.seq
  | [] -> Alcotest.fail "expected a retransmission");
  Alcotest.(check int) "counted" 1
    (Tcp.Sender.stats h.sender).Tcp.Sender.fast_recoveries

let sack_pipe_releases_new_data () =
  let h = sack_harness () in
  Tcp.Sender.kick h.sender; (* segments 0..9 *)
  ack_sack h ~sack:[ (mss, 4 * mss) ] 0; (* recovery, cwnd 5 *)
  h.sent <- [];
  (* More SACKed data shrinks the pipe below cwnd: new data must flow
     even though the cumulative ACK is stuck. *)
  ack_sack h ~sack:[ (mss, 9 * mss) ] 0;
  Alcotest.(check bool) "new data sent" true (List.length h.sent >= 1);
  List.iter
    (fun p ->
      Alcotest.(check bool) "beyond old snd_max" true
        ((Packet.tcp_exn p).Packet.seq >= 10 * mss))
    h.sent

let sack_no_hole_re_retransmit () =
  let h = sack_harness () in
  Tcp.Sender.kick h.sender;
  ack_sack h ~sack:[ (mss, 4 * mss) ] 0;
  h.sent <- [];
  (* The same SACK information again: the hole was already retransmitted
     in this recovery, so nothing (and certainly not seq 0) is resent. *)
  ack_sack h ~sack:[ (mss, 4 * mss) ] 0;
  List.iter
    (fun p ->
      Alcotest.(check bool) "no duplicate hole retransmit" true
        ((Packet.tcp_exn p).Packet.seq <> 0))
    h.sent

let sack_full_ack_exits () =
  let h = sack_harness () in
  Tcp.Sender.kick h.sender;
  ack_sack h ~sack:[ (mss, 4 * mss) ] 0;
  ack_sack h ~sack:[] (11 * mss);
  Alcotest.(check bool) "recovered" false (Tcp.Sender.in_recovery h.sender)

let sack_rto_skips_sacked () =
  let h = sack_harness () in
  Tcp.Sender.kick h.sender; (* 0..9 *)
  (* Receiver holds 1..8; segments 0 and 9 are missing. *)
  ack_sack h ~sack:[ (mss, 9 * mss) ] 0;
  h.sent <- [];
  (* Silence until the retransmission timer fires. *)
  Engine.Sched.run ~until:(Engine.Time.s 3) h.sched;
  Alcotest.(check bool) "timed out" true
    ((Tcp.Sender.stats h.sender).Tcp.Sender.timeouts >= 1);
  let resent =
    List.sort_uniq compare
      (List.map (fun p -> (Packet.tcp_exn p).Packet.seq) h.sent)
  in
  List.iter
    (fun seq ->
      Alcotest.(check bool)
        (Printf.sprintf "only the true holes resent (got seq %d)" seq)
        true
        (seq = 0 || seq = 9 * mss))
    resent;
  Alcotest.(check bool) "hole 0 resent" true (List.mem 0 resent)

(* Fuzz: the sender must preserve its invariants under ANY sequence of
   ACKs, duplicate ACKs, SACK blocks and timer advances the network
   could produce. *)
type fuzz_op = FAck of int | FDup | FSack of int * int | FTick of int

let gen_fuzz_ops =
  QCheck.Gen.(
    list_size (1 -- 60)
      (frequency
         [ (4, map (fun k -> FAck k) (1 -- 8));
           (3, return FDup);
           (2, map2 (fun a b -> FSack (a, b)) (0 -- 30) (1 -- 6));
           (2, map (fun t -> FTick t) (1 -- 400)) ]))

let qcheck_sender_fuzz sack name =
  QCheck.Test.make ~name ~count:300 (QCheck.make gen_fuzz_ops) (fun ops ->
      let config = { Tcp.Sender.default_config with Tcp.Sender.sack } in
      let h = make_harness ~config () in
      Tcp.Sender.kick h.sender;
      let una = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | FAck k ->
            (* Cumulative ACK within the sent range. *)
            let target = !una + (k * mss) in
            let sent_hi =
              List.fold_left
                (fun acc p ->
                  let tcp = Packet.tcp_exn p in
                  max acc (tcp.Packet.seq + tcp.Packet.payload))
                0 h.sent
            in
            let a = min target sent_hi in
            if a > !una then begin
              una := a;
              ack h a
            end
            else ack h !una
          | FDup -> ack h !una
          | FSack (start_seg, len_segs) ->
            let s = !una + (start_seg * mss) in
            let e = s + (len_segs * mss) in
            ack_sack h ~sack:[ (s, e) ] !una
          | FTick t ->
            Engine.Sched.run
              ~until:(Engine.Time.add (Engine.Sched.now h.sched)
                        (Engine.Time.ms t))
              h.sched);
          let inflight = Tcp.Sender.in_flight_bytes h.sender in
          if Tcp.Sender.cwnd h.sender < 1.0 || inflight < 0 then ok := false)
        ops;
      !ok)

(* --- handshake --- *)

let hs_config = { Tcp.Sender.default_config with Tcp.Sender.handshake = true }

let syn_ack_packet =
  {
    Packet.conn = 1; subflow = 0; kind = Packet.Syn_ack; seq = 0; payload = 0;
    ack = 0; sack = []; ece = false; dss = None; data_ack = 0;
  }

let handshake_blocks_data () =
  let h = make_harness ~config:hs_config () in
  Tcp.Sender.kick h.sender;
  (* Only the SYN goes out; no data before the handshake completes. *)
  Alcotest.(check int) "one packet" 1 (List.length h.sent);
  (match h.sent with
  | [ p ] ->
    Alcotest.(check bool) "it is a SYN" true
      ((Packet.tcp_exn p).Packet.kind = Packet.Syn)
  | _ -> Alcotest.fail "expected exactly the SYN");
  Alcotest.(check bool) "not established" false
    (Tcp.Sender.is_established h.sender);
  h.sent <- [];
  (* SYN-ACK opens the gate: the initial window flows at once. *)
  Engine.Sched.run ~until:(ms 30) h.sched;
  Tcp.Sender.handle_ack h.sender syn_ack_packet;
  Alcotest.(check bool) "established" true (Tcp.Sender.is_established h.sender);
  Alcotest.(check int) "IW10 released" 10 (List.length h.sent);
  (* The SYN round trip primed the RTT estimator. *)
  Alcotest.(check (option int)) "srtt from the handshake" (Some (ms 30))
    (Tcp.Sender.srtt h.sender)

let handshake_syn_retransmission () =
  let h = make_harness ~config:hs_config () in
  Tcp.Sender.kick h.sender;
  h.sent <- [];
  (* No SYN-ACK: the initial 1 s RTO fires and the SYN is resent with
     backoff. *)
  Engine.Sched.run ~until:(Engine.Time.s 1) h.sched;
  Alcotest.(check int) "SYN resent" 1 (Tcp.Sender.syn_retransmits h.sender);
  Engine.Sched.run ~until:(Engine.Time.s 3) h.sched;
  Alcotest.(check int) "backoff doubles" 2 (Tcp.Sender.syn_retransmits h.sender);
  (* Karn: the retransmitted SYN's reply must not poison the estimator. *)
  Tcp.Sender.handle_ack h.sender syn_ack_packet;
  Alcotest.(check (option int)) "no sample from a retransmitted SYN" None
    (Tcp.Sender.srtt h.sender);
  Alcotest.(check bool) "established anyway" true
    (Tcp.Sender.is_established h.sender)

(* --- receiver --- *)

let make_receiver () =
  let sched = Engine.Sched.create () in
  let acks = ref [] in
  let sacks = ref [] in
  let delivered = ref [] in
  let r =
    Tcp.Receiver.create ~sched ~conn:1 ~subflow:0 ~addr:1 ~peer:0 ~tag:1
      ~fresh_id:(fun () -> 0)
      ~transmit:(fun p ->
        let tcp = Packet.tcp_exn p in
        acks := tcp.Packet.ack :: !acks;
        sacks := tcp.Packet.sack :: !sacks)
      ~on_deliver:(fun ~seq ~len ~dss:_ -> delivered := (seq, len) :: !delivered)
      ~data_ack:(fun () -> 0)
      ()
  in
  (r, acks, sacks, delivered)

let data_packet ~seq ~len =
  Packet.make_tcp ~id:0 ~src:0 ~dst:1 ~tag:1 ~born:0
    {
      Packet.conn = 1; subflow = 0; kind = Packet.Data; seq; payload = len;
      ack = 0; sack = []; ece = false; dss = None; data_ack = 0;
    }

(* --- ECN --- *)

let ecn_config = { Tcp.Sender.default_config with Tcp.Sender.ecn = true }

let ece_ack ?(ece = true) value =
  {
    Packet.conn = 1; subflow = 0; kind = Packet.Ack; seq = 0; payload = 0;
    ack = value; sack = []; ece; dss = None; data_ack = 0;
  }

let ecn_sender_marks_packets () =
  let h = make_harness ~config:ecn_config () in
  Tcp.Sender.kick h.sender;
  List.iter
    (fun p ->
      Alcotest.(check bool) "data is ECT" true (p.Packet.ecn = Packet.Ect))
    h.sent;
  let h2 = make_harness () in
  Tcp.Sender.kick h2.sender;
  List.iter
    (fun p ->
      Alcotest.(check bool) "default is Not-ECT" true
        (p.Packet.ecn = Packet.Not_ect))
    h2.sent

let ecn_echo_halves_once_per_window () =
  let h = make_harness ~config:ecn_config () in
  Tcp.Sender.kick h.sender;
  let before = Tcp.Sender.cwnd h.sender in
  Tcp.Sender.handle_ack h.sender (ece_ack mss);
  let after1 = Tcp.Sender.cwnd h.sender in
  Alcotest.(check bool)
    (Printf.sprintf "first ECE halves (%.1f -> %.1f)" before after1)
    true
    (after1 < before);
  (* A second ECE within the same window must NOT halve again. *)
  Tcp.Sender.handle_ack h.sender (ece_ack (2 * mss));
  Alcotest.(check (float 0.6)) "no double reaction" after1
    (Tcp.Sender.cwnd h.sender)

let ecn_ignored_when_disabled () =
  let h = make_harness () in
  Tcp.Sender.kick h.sender;
  let before = Tcp.Sender.cwnd h.sender in
  Tcp.Sender.handle_ack h.sender (ece_ack mss);
  Alcotest.(check bool) "grows despite stray ECE" true
    (Tcp.Sender.cwnd h.sender >= before)

let ecn_receiver_echoes_ce () =
  let eces = ref [] in
  let sched = Engine.Sched.create () in
  let r2 =
    Tcp.Receiver.create ~sched ~conn:1 ~subflow:0 ~addr:1 ~peer:0 ~tag:1
      ~fresh_id:(fun () -> 0)
      ~transmit:(fun p -> eces := (Packet.tcp_exn p).Packet.ece :: !eces)
      ~on_deliver:(fun ~seq:_ ~len:_ ~dss:_ -> ())
      ~data_ack:(fun () -> 0)
      ()
  in
  let marked = data_packet ~seq:0 ~len:mss in
  marked.Packet.ecn <- Packet.Ce;
  Tcp.Receiver.handle_data r2 marked;
  Tcp.Receiver.handle_data r2 (data_packet ~seq:mss ~len:mss);
  Alcotest.(check (list bool)) "CE echoed exactly once" [ true; false ]
    (List.rev !eces)

let receiver_in_order () =
  let r, acks, _, delivered = make_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Tcp.Receiver.handle_data r (data_packet ~seq:mss ~len:mss);
  Alcotest.(check int) "rcv_nxt" (2 * mss) (Tcp.Receiver.rcv_nxt r);
  Alcotest.(check (list int)) "cumulative acks" [ mss; 2 * mss ]
    (List.rev !acks);
  Alcotest.(check int) "both delivered" 2 (List.length !delivered)

let receiver_out_of_order () =
  let r, acks, _, delivered = make_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:mss ~len:mss);
  Alcotest.(check (list int)) "dup ack at 0" [ 0 ] (List.rev !acks);
  Alcotest.(check int) "nothing delivered" 0 (List.length !delivered);
  Alcotest.(check int) "buffered" 1 (Tcp.Receiver.out_of_order r);
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Alcotest.(check int) "gap filled" (2 * mss) (Tcp.Receiver.rcv_nxt r);
  Alcotest.(check (list (pair int int))) "in-order delivery"
    [ (0, mss); (mss, mss) ]
    (List.rev !delivered)

let receiver_duplicate () =
  let r, acks, _, _ = make_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Alcotest.(check int) "duplicate counted" 1 (Tcp.Receiver.duplicates r);
  Alcotest.(check (list int)) "dup re-acked" [ mss; mss ] (List.rev !acks)

let receiver_sack_blocks () =
  let r, _, sacks, _ = make_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:mss ~len:mss);
  Alcotest.(check (list (pair int int))) "first gap advertised"
    [ (mss, 2 * mss) ] (List.hd !sacks);
  Tcp.Receiver.handle_data r (data_packet ~seq:(3 * mss) ~len:mss);
  (* Newest block first (RFC 2018). *)
  Alcotest.(check (list (pair int int))) "newest first"
    [ (3 * mss, 4 * mss); (mss, 2 * mss) ] (List.hd !sacks);
  Tcp.Receiver.handle_data r (data_packet ~seq:(2 * mss) ~len:mss);
  Alcotest.(check (list (pair int int))) "blocks merge"
    [ (mss, 4 * mss) ] (List.hd !sacks);
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Alcotest.(check (list (pair int int))) "no blocks once contiguous" []
    (List.hd !sacks)

let receiver_sack_capped_at_three () =
  let r, _, sacks, _ = make_receiver () in
  (* Five separate gaps. *)
  List.iter
    (fun i -> Tcp.Receiver.handle_data r (data_packet ~seq:(2 * i * mss) ~len:mss))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "at most 3 blocks" 3 (List.length (List.hd !sacks))

let make_delack_receiver () =
  let sched = Engine.Sched.create () in
  let acks = ref [] in
  let r =
    Tcp.Receiver.create ~sched ~conn:1 ~subflow:0 ~addr:1 ~peer:0 ~tag:1
      ~fresh_id:(fun () -> 0)
      ~transmit:(fun p -> acks := (Packet.tcp_exn p).Packet.ack :: !acks)
      ~on_deliver:(fun ~seq:_ ~len:_ ~dss:_ -> ())
      ~data_ack:(fun () -> 0)
      ~delayed_ack:true ()
  in
  (sched, r, acks)

let delack_every_second_segment () =
  let _, r, acks = make_delack_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Alcotest.(check int) "first segment unacknowledged" 0 (List.length !acks);
  Tcp.Receiver.handle_data r (data_packet ~seq:mss ~len:mss);
  Alcotest.(check (list int)) "one ack for two segments" [ 2 * mss ] !acks;
  Alcotest.(check int) "counter" 1 (Tcp.Receiver.acks_sent r)

let delack_timer_fires () =
  let sched, r, acks = make_delack_receiver () in
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Engine.Sched.run ~until:(ms 100) sched;
  Alcotest.(check (list int)) "acked by the 40 ms timer" [ mss ] !acks

let delack_immediate_on_gap () =
  let _, r, acks = make_delack_receiver () in
  (* Out of order: the duplicate ACK must not be delayed. *)
  Tcp.Receiver.handle_data r (data_packet ~seq:mss ~len:mss);
  Alcotest.(check (list int)) "immediate dup ack" [ 0 ] !acks;
  (* Filling the gap must also be acknowledged at once. *)
  Tcp.Receiver.handle_data r (data_packet ~seq:0 ~len:mss);
  Alcotest.(check (list int)) "immediate on fill" [ 2 * mss; 0 ] !acks

let qcheck_receiver_permutation =
  QCheck.Test.make ~name:"receiver delivers in order under any arrival order"
    ~count:200
    QCheck.(list_of_size Gen.(2 -- 12) (int_bound 11))
    (fun order_hint ->
      (* Build a random permutation of 12 segments from the hint. *)
      let n = 12 in
      let order =
        List.sort_uniq compare order_hint
        @ List.filter
            (fun i -> not (List.mem i order_hint))
            (List.init n (fun i -> i))
      in
      let r, _, _, delivered = make_receiver () in
      List.iter
        (fun i -> Tcp.Receiver.handle_data r (data_packet ~seq:(i * mss) ~len:mss))
        order;
      let got = List.rev !delivered in
      Tcp.Receiver.rcv_nxt r = n * mss
      && got = List.init n (fun i -> (i * mss, mss)))

(* --- end-to-end over the simulated network --- *)

let dumbbell ?(bottleneck = 40) () =
  let b = Netgraph.Topology.builder () in
  let a1 = Netgraph.Topology.add_node b "a1" in
  let a2 = Netgraph.Topology.add_node b "a2" in
  let l = Netgraph.Topology.add_node b "l" in
  let r = Netgraph.Topology.add_node b "r" in
  let z1 = Netgraph.Topology.add_node b "z1" in
  let z2 = Netgraph.Topology.add_node b "z2" in
  let link u v mbps =
    ignore
      (Netgraph.Topology.add_link b ~u ~v ~capacity_bps:(mb mbps)
         ~delay:(ms 2))
  in
  link a1 l 100;
  link a2 l 100;
  link l r bottleneck;
  link r z1 100;
  link r z2 100;
  (Netgraph.Topology.build b, a1, a2, z1, z2)

let delack_halves_ack_traffic () =
  (* End-to-end: delayed ACKs roughly halve the number of ACK packets
     without collapsing throughput. *)
  let run delayed_ack =
    let topo, a1, _, z1, _ = dumbbell () in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
    Netsim.Net.install_path net ~tag:1
      (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
    let src = Tcp.Endpoint.create net ~node:a1 in
    let dst = Tcp.Endpoint.create net ~node:z1 in
    let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 ~delayed_ack () in
    (* Count ACK packets arriving back at the sender. *)
    let acks = ref 0 in
    Netsim.Net.add_tap net ~node:a1 (fun p ->
        match p.Packet.body with
        | Packet.Tcp { kind = Packet.Ack; _ } -> incr acks
        | _ -> ());
    Engine.Sched.run ~until:(Engine.Time.s 4) sched;
    (!acks, Tcp.Flow.bytes_delivered flow)
  in
  let acks_per_seg, bytes_per_seg = run false in
  let acks_del, bytes_del = run true in
  Alcotest.(check bool)
    (Printf.sprintf "ack count drops (%d -> %d)" acks_per_seg acks_del)
    true
    (float_of_int acks_del < 0.7 *. float_of_int acks_per_seg);
  Alcotest.(check bool)
    (Printf.sprintf "throughput keeps up (%d vs %d bytes)" bytes_del
       bytes_per_seg)
    true
    (float_of_int bytes_del > 0.7 *. float_of_int bytes_per_seg)

let handshake_end_to_end () =
  let topo, a1, _, z1, _ = dumbbell () in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
  Netsim.Net.install_path net ~tag:1
    (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
  let src = Tcp.Endpoint.create net ~node:a1 in
  let dst = Tcp.Endpoint.create net ~node:z1 in
  let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 ~config:hs_config () in
  (* Path RTT is 12 ms + serialization; nothing delivered in the first
     RTT, plenty soon after. *)
  Engine.Sched.run ~until:(ms 12) sched;
  Alcotest.(check int) "nothing before the handshake" 0
    (Tcp.Flow.bytes_delivered flow);
  Engine.Sched.run ~until:(Engine.Time.s 3) sched;
  Alcotest.(check bool) "transfer proceeds" true
    (Tcp.Flow.bytes_delivered flow > 1_000_000)

let ecn_end_to_end_fewer_drops () =
  (* CUBIC through an ECN-enabled RED bottleneck: throughput comparable,
     but congestion is signalled by marks, not drops. *)
  let run qdisc ecn =
    let topo, a1, _, z1, _ = dumbbell ~bottleneck:20 () in
    let sched = Engine.Sched.create () in
    let config = { Netsim.Net.qdisc; limit_pkts = 30;
                   delay_jitter = Engine.Time.zero } in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) ~config topo in
    Netsim.Net.install_path net ~tag:1
      (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
    let src = Tcp.Endpoint.create net ~node:a1 in
    let dst = Tcp.Endpoint.create net ~node:z1 in
    let sender_config = { Tcp.Sender.default_config with Tcp.Sender.ecn } in
    let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 ~config:sender_config () in
    Engine.Sched.run ~until:(Engine.Time.s 6) sched;
    let marked =
      Array.fold_left
        (fun acc (l : Netgraph.Topology.link) ->
          let st d = Netsim.Linkq.stats (Netsim.Net.linkq net ~link:l.Netgraph.Topology.id ~dir:d) in
          acc + (st Netsim.Net.Fwd).Netsim.Linkq.marked
          + (st Netsim.Net.Rev).Netsim.Linkq.marked)
        0
        (Netgraph.Topology.links topo)
    in
    (Tcp.Flow.bytes_delivered flow, Netsim.Net.total_drops net, marked)
  in
  let red = Netsim.Qdisc.Red Netsim.Qdisc.default_red in
  let red_ecn = Netsim.Qdisc.Red Netsim.Qdisc.default_red_ecn in
  let bytes_plain, drops_plain, marked_plain = run red false in
  let bytes_ecn, drops_ecn, marked_ecn = run red_ecn true in
  Alcotest.(check int) "no marks without ECN" 0 marked_plain;
  Alcotest.(check bool)
    (Printf.sprintf "ECN shifts congestion to marks (%d drops -> %d, %d marks)"
       drops_plain drops_ecn marked_ecn)
    true
    (marked_ecn > 0 && drops_ecn < drops_plain);
  Alcotest.(check bool)
    (Printf.sprintf "throughput holds (%.1f vs %.1f MB)"
       (float_of_int bytes_ecn /. 1e6)
       (float_of_int bytes_plain /. 1e6))
    true
    (float_of_int bytes_ecn > 0.7 *. float_of_int bytes_plain)

let single_flow_fills_bottleneck () =
  let topo, a1, _, z1, _ = dumbbell () in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
  Netsim.Net.install_path net ~tag:1
    (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
  let src = Tcp.Endpoint.create net ~node:a1 in
  let dst = Tcp.Endpoint.create net ~node:z1 in
  let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 () in
  Engine.Sched.run ~until:(Engine.Time.s 6) sched;
  (* Steady goodput over the last 2 s must be near 40 Mbps * 1448/1500. *)
  let at4 = Tcp.Flow.bytes_delivered flow in
  Engine.Sched.run ~until:(Engine.Time.s 8) sched;
  let tail_mbps =
    float_of_int ((Tcp.Flow.bytes_delivered flow - at4) * 8) /. 2.0 /. 1e6
  in
  Alcotest.(check bool)
    (Printf.sprintf "tail goodput %.1f in [34, 38.6]" tail_mbps)
    true
    (tail_mbps > 34.0 && tail_mbps <= 38.7)

let two_flows_share_fairly () =
  let topo, a1, a2, z1, z2 = dumbbell () in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
  Netsim.Net.install_path net ~tag:1
    (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
  Netsim.Net.install_path net ~tag:2
    (Netgraph.Path.of_names topo [ "a2"; "l"; "r"; "z2" ]);
  let s1 = Tcp.Endpoint.create net ~node:a1 in
  let s2 = Tcp.Endpoint.create net ~node:a2 in
  let d1 = Tcp.Endpoint.create net ~node:z1 in
  let d2 = Tcp.Endpoint.create net ~node:z2 in
  let f1 = Tcp.Flow.start ~src:s1 ~dst:d1 ~tag:1 ~conn:1 () in
  let f2 = Tcp.Flow.start ~src:s2 ~dst:d2 ~tag:2 ~conn:2 () in
  Engine.Sched.run ~until:(Engine.Time.s 10) sched;
  let b1 = float_of_int (Tcp.Flow.bytes_delivered f1) in
  let b2 = float_of_int (Tcp.Flow.bytes_delivered f2) in
  let jain = Measure.Converge.jain_fairness [| b1; b2 |] in
  Alcotest.(check bool)
    (Printf.sprintf "fair share (jain %.3f)" jain)
    true (jain > 0.9);
  let total_mbps = (b1 +. b2) *. 8.0 /. 10.0 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck used (%.1f Mbps)" total_mbps)
    true (total_mbps > 30.0)

let bounded_transfer_completes () =
  let topo, a1, _, z1, _ = dumbbell () in
  let sched = Engine.Sched.create () in
  let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
  Netsim.Net.install_path net ~tag:1
    (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
  let src = Tcp.Endpoint.create net ~node:a1 in
  let dst = Tcp.Endpoint.create net ~node:z1 in
  let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 ~total_bytes:500_000 () in
  Engine.Sched.run ~until:(Engine.Time.s 5) sched;
  Alcotest.(check int) "exact bytes delivered" 500_000
    (Tcp.Flow.bytes_delivered flow);
  match Tcp.Flow.completed_at flow with
  | Some t ->
    (* The raw transfer is ~0.1 s at 40 Mbps, but the initial slow-start
       overshoot costs a multi-RTT NewReno recovery (no SACK), so allow
       a couple of seconds. *)
    Alcotest.(check bool) "finished within 3 s" true (t < Engine.Time.s 3)
  | None -> Alcotest.fail "transfer never completed"

let reno_vs_cubic_throughput () =
  (* Both should fill the pipe; CUBIC should not be slower in steady
     state on this short-RTT path. *)
  let run cc =
    let topo, a1, _, z1, _ = dumbbell () in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 2) topo in
    Netsim.Net.install_path net ~tag:1
      (Netgraph.Path.of_names topo [ "a1"; "l"; "r"; "z1" ]);
    let src = Tcp.Endpoint.create net ~node:a1 in
    let dst = Tcp.Endpoint.create net ~node:z1 in
    let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 ~cc () in
    Engine.Sched.run ~until:(Engine.Time.s 8) sched;
    float_of_int (Tcp.Flow.bytes_delivered flow)
  in
  let reno = run Tcp.Cc_reno.factory in
  let cubic = run Tcp.Cc_cubic.factory in
  Alcotest.(check bool)
    (Printf.sprintf "both near capacity (reno %.1f MB, cubic %.1f MB)"
       (reno /. 1e6) (cubic /. 1e6))
    true
    (reno > 25e6 && cubic > 25e6)

(* --- Scoreboard edge cases --- *)

module Sb = Tcp.Scoreboard

let sb_append sb ~seq ~len = ignore (Sb.append sb ~seq ~len ~dss:None : int)

(* Cumulative ACK lands in the middle of a partially-SACKed range: the
   front drop must take the SACKed segment's flag out of the O(1)
   counter while leaving the later SACK standing. *)
let scoreboard_front_drop_partial_sack () =
  let sb = Sb.create () in
  for i = 0 to 4 do
    sb_append sb ~seq:(i * 100) ~len:100
  done;
  ignore (Sb.mark_sacked sb (Sb.idx sb 1) : bool);
  ignore (Sb.mark_sacked sb (Sb.idx sb 3) : bool);
  Sb.mark_lost sb (Sb.idx sb 0);
  Alcotest.(check int) "sacked before" 2 (Sb.sacked_count sb);
  Alcotest.(check int) "pipe before" 200 (Sb.pipe_recount sb);
  (* ACK to 200: segment 0 (lost) and segment 1 (SACKed) leave the ring *)
  Sb.pop_front sb;
  Sb.pop_front sb;
  Alcotest.(check int) "length" 3 (Sb.length sb);
  Alcotest.(check int) "sacked after" 1 (Sb.sacked_count sb);
  Alcotest.(check int) "front seq" 200 (Sb.seq_at sb (Sb.idx sb 0));
  Alcotest.(check bool) "surviving SACK kept" true
    (Sb.sacked_at sb (Sb.idx sb 1));
  Alcotest.(check int) "pipe after" 200 (Sb.pipe_recount sb);
  Alcotest.(check bool) "consistent" true (Sb.consistent sb)

(* Fill the ring to its initial capacity, drain the front, refill: the
   tail wraps around the physical end while the searches and the
   consistency recount keep working; one more append then grows and
   re-bases a wrapped ring. *)
let scoreboard_wraparound () =
  let sb = Sb.create () in
  let next = ref 0 in
  let append_one () =
    sb_append sb ~seq:!next ~len:10;
    next := !next + 10
  in
  for _ = 1 to 64 do
    append_one ()
  done;
  for _ = 1 to 40 do
    Sb.pop_front sb
  done;
  for _ = 1 to 40 do
    append_one ()
  done;
  (* 64 live segments, physically wrapped *)
  Alcotest.(check int) "length at capacity" 64 (Sb.length sb);
  Alcotest.(check bool) "consistent wrapped" true (Sb.consistent sb);
  Alcotest.(check int) "front" 400 (Sb.seq_at sb (Sb.idx sb 0));
  Alcotest.(check int) "back" 1030 (Sb.seq_at sb (Sb.idx sb 63));
  Alcotest.(check int) "lower_bound across the seam" 30
    (Sb.lower_bound sb 700);
  let f = Sb.find sb 900 in
  Alcotest.(check bool) "find lands" true (f >= 0);
  Alcotest.(check int) "find exact" 900 (Sb.seq_at sb f);
  (* growth re-bases the wrapped ring *)
  append_one ();
  Alcotest.(check int) "length after growth" 65 (Sb.length sb);
  Alcotest.(check bool) "consistent after growth" true (Sb.consistent sb);
  Alcotest.(check int) "front preserved" 400 (Sb.seq_at sb (Sb.idx sb 0));
  Alcotest.(check int) "back preserved" 1040 (Sb.seq_at sb (Sb.idx sb 64));
  Alcotest.(check int) "end_seq" 1050 (Sb.end_seq sb)

(* A popped slot's physical cell is reused by a later append once the
   tail wraps to it: none of the old segment's state (SACK, loss, retx
   count, timestamps) may leak into the new occupant. *)
let scoreboard_pop_then_reuse () =
  let sb = Sb.create () in
  for i = 0 to 63 do
    sb_append sb ~seq:(i * 10) ~len:10
  done;
  (* decorate physical slot 0 heavily, then free it *)
  let p0 = Sb.idx sb 0 in
  ignore (Sb.mark_sacked sb p0 : bool);
  Sb.mark_lost sb p0;
  Sb.incr_retx sb p0;
  Sb.incr_retx sb p0;
  Sb.set_sent_at sb p0 (Engine.Time.ms 123);
  Sb.set_epoch sb p0 7;
  Sb.pop_front sb;
  (* tail is at capacity, so this append wraps into the freed cell *)
  sb_append sb ~seq:640 ~len:10;
  let fresh = Sb.idx sb 63 in
  Alcotest.(check int) "reused cell holds the new segment" 640
    (Sb.seq_at sb fresh);
  Alcotest.(check bool) "no stale SACK" false (Sb.sacked_at sb fresh);
  Alcotest.(check bool) "no stale loss" false (Sb.lost_at sb fresh);
  Alcotest.(check int) "no stale retx count" 0 (Sb.retx_at sb fresh);
  Alcotest.(check bool) "no stale send time" true
    (Sb.sent_at sb fresh = Engine.Time.zero);
  Alcotest.(check int) "sacked counter clean" 0 (Sb.sacked_count sb);
  Alcotest.(check bool) "consistent" true (Sb.consistent sb)

let () =
  Alcotest.run "tcp"
    [
      ( "rtt",
        [
          Alcotest.test_case "first sample" `Quick rtt_first_sample;
          Alcotest.test_case "RFC 6298 smoothing" `Quick rtt_smoothing;
          Alcotest.test_case "200 ms floor" `Quick rtt_min_rto;
          Alcotest.test_case "exponential backoff" `Quick rtt_backoff;
          Alcotest.test_case "max cap" `Quick rtt_max_cap;
        ] );
      ( "cc-unit",
        [
          Alcotest.test_case "reno slow start" `Quick reno_slow_start;
          Alcotest.test_case "slow start capped at ssthresh" `Quick
            reno_slow_start_capped;
          Alcotest.test_case "reno congestion avoidance" `Quick
            reno_congestion_avoidance;
          Alcotest.test_case "reno halves on loss" `Quick reno_loss_halves;
          Alcotest.test_case "reno collapses on RTO" `Quick reno_rto_collapses;
          Alcotest.test_case "cubic beta decrease" `Quick cubic_decrease;
          Alcotest.test_case "cubic regrows past w_max" `Quick
            cubic_regrows_toward_wmax;
          Alcotest.test_case "cubic concave then convex" `Quick
            cubic_concave_then_convex;
        ] );
      ( "sender",
        [
          Alcotest.test_case "initial window" `Quick initial_window;
          Alcotest.test_case "ACK advances and grows" `Quick
            ack_advances_and_grows;
          Alcotest.test_case "RTT sampled" `Quick rtt_sampled_from_ack;
          Alcotest.test_case "fast retransmit at 3 dupacks" `Quick
            fast_retransmit_on_3_dupacks;
          Alcotest.test_case "NewReno partial ACK" `Quick newreno_partial_ack;
          Alcotest.test_case "dupack inflation sends new data" `Quick
            dupack_inflation_sends_new_data;
          Alcotest.test_case "RTO fires and backs off" `Quick
            rto_fires_and_backs_off;
          Alcotest.test_case "Karn: no sample from retransmits" `Quick
            karn_no_sample_from_retx;
          Alcotest.test_case "source refusal pauses the sender" `Quick
            source_refusal_stops_sending;
        ] );
      ( "sack",
        [
          Alcotest.test_case "dup-ACK-equivalent entry" `Quick
            sack_triggers_recovery_early;
          Alcotest.test_case "pipe releases new data" `Quick
            sack_pipe_releases_new_data;
          Alcotest.test_case "holes retransmitted once per recovery" `Quick
            sack_no_hole_re_retransmit;
          Alcotest.test_case "full ACK exits recovery" `Quick
            sack_full_ack_exits;
          Alcotest.test_case "RTO resends only true holes" `Quick
            sack_rto_skips_sacked;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest
            (qcheck_sender_fuzz true "sender survives arbitrary SACK streams");
          QCheck_alcotest.to_alcotest
            (qcheck_sender_fuzz false
               "sender survives arbitrary NewReno streams");
        ] );
      ( "ecn",
        [
          Alcotest.test_case "sender marks data ECT" `Quick
            ecn_sender_marks_packets;
          Alcotest.test_case "ECE halves once per window" `Quick
            ecn_echo_halves_once_per_window;
          Alcotest.test_case "ignored when disabled" `Quick
            ecn_ignored_when_disabled;
          Alcotest.test_case "receiver echoes CE once" `Quick
            ecn_receiver_echoes_ce;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "SYN gates data" `Quick handshake_blocks_data;
          Alcotest.test_case "SYN retransmission with backoff" `Quick
            handshake_syn_retransmission;
          Alcotest.test_case "end to end over the simulator" `Quick
            handshake_end_to_end;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "in-order" `Quick receiver_in_order;
          Alcotest.test_case "SACK block generation" `Quick
            receiver_sack_blocks;
          Alcotest.test_case "SACK blocks capped at 3" `Quick
            receiver_sack_capped_at_three;
          Alcotest.test_case "out-of-order buffered" `Quick
            receiver_out_of_order;
          Alcotest.test_case "duplicates re-acked" `Quick receiver_duplicate;
          QCheck_alcotest.to_alcotest qcheck_receiver_permutation;
          Alcotest.test_case "delayed ACK: every 2nd segment" `Quick
            delack_every_second_segment;
          Alcotest.test_case "delayed ACK: 40 ms timer" `Quick
            delack_timer_fires;
          Alcotest.test_case "delayed ACK: immediate on gap" `Quick
            delack_immediate_on_gap;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "single flow fills the bottleneck" `Quick
            single_flow_fills_bottleneck;
          Alcotest.test_case "two flows share fairly" `Quick
            two_flows_share_fairly;
          Alcotest.test_case "bounded transfer completes" `Quick
            bounded_transfer_completes;
          Alcotest.test_case "reno and cubic both fill the pipe" `Quick
            reno_vs_cubic_throughput;
          Alcotest.test_case "delayed ACK halves ACK traffic" `Quick
            delack_halves_ack_traffic;
          Alcotest.test_case "ECN: marks replace drops" `Quick
            ecn_end_to_end_fewer_drops;
        ] );
      ( "scoreboard",
        [
          Alcotest.test_case "front drop of partially-SACKed range" `Quick
            scoreboard_front_drop_partial_sack;
          Alcotest.test_case "ring wraparound at capacity" `Quick
            scoreboard_wraparound;
          Alcotest.test_case "freed slot reused clean" `Quick
            scoreboard_pop_then_reuse;
        ] );
    ]
