#!/bin/sh
# Documentation gate: type-check and parse the odoc markup in every
# public .mli of the core libraries with ocamldoc.  The toolchain in CI
# has no odoc, so `dune build @doc` alone proves nothing; this script is
# what the `doc` alias actually runs.  ocamldoc hard-fails on malformed
# markup (unclosed {b ...}, bad {!refs} syntax) while cross-library
# references it cannot resolve only warn, so the gate catches broken
# comments without demanding a fully linked doc tree.
#
# Usage: check_docs.sh <build-root> <out-dir>
#   <build-root>  the dune context root (contains lib/engine/...)
#   <out-dir>     scratch space for logs and dump sinks
set -eu

root=$1
out=$2
mkdir -p "$out"

objs() { echo "$root/lib/$1/.$1.objs/byte"; }

# doc_one <lib> <-open flags...> -- <mli...>: parse + type-check the
# listed interfaces with every in-repo dependency's compiled interfaces
# on the include path.  Wrapped multi-module libraries need their alias
# module opened (Engine, Obs); single-module libraries must not open
# the very module they define.
doc_one() {
    lib=$1
    shift
    opens=""
    while [ "$1" != "--" ]; do
        opens="$opens -open $1"
        shift
    done
    shift
    incs=""
    for dep in engine packet netgraph netsim tcp mptcp measure lp core audit fuzz obs fluid events; do
        [ -d "$(objs "$dep")" ] && incs="$incs -I $(objs "$dep")"
    done
    # shellcheck disable=SC2086
    if ! ocamlfind ocamldoc -package fmt,unix,qcheck-core \
        $incs $opens -dump "$out/$lib.odump" "$@" \
        >"$out/$lib.log" 2>&1; then
        echo "check_docs: ocamldoc failed for $lib:" >&2
        cat "$out/$lib.log" >&2
        exit 1
    fi
    # Surface real warnings; unresolvable cross-library {!refs} are
    # expected (no linked doc tree) and filtered out.
    grep -v "^Warning: Element .* not found" "$out/$lib.log" || true
    echo "doc ok: $lib"
}

doc_one engine Engine -- \
    "$root/lib/engine/time.mli" \
    "$root/lib/engine/heap.mli" \
    "$root/lib/engine/wheel.mli" \
    "$root/lib/engine/rng.mli" \
    "$root/lib/engine/sched.mli" \
    "$root/lib/engine/pool.mli"

doc_one audit -- \
    "$root/lib/audit/audit.mli"

doc_one fuzz -- \
    "$root/lib/fuzz/fuzz.mli"

doc_one fluid Fluid -- \
    "$root/lib/fluid/controller.mli" \
    "$root/lib/fluid/ode.mli" \
    "$root/lib/fluid/model.mli" \
    "$root/lib/fluid/equilibrium.mli" \
    "$root/lib/fluid/trajectory.mli" \
    "$root/lib/fluid/validate.mli"

doc_one obs Obs -- \
    "$root/lib/obs/ring.mli" \
    "$root/lib/obs/trace.mli" \
    "$root/lib/obs/metrics.mli" \
    "$root/lib/obs/collect.mli"

doc_one events Events -- \
    "$root/lib/events/sexp.mli" \
    "$root/lib/events/event.mli" \
    "$root/lib/events/parse.mli"

echo "documentation gate passed"
