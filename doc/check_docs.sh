#!/bin/sh
# Documentation gate: type-check and parse the odoc markup in every
# public .mli of the core libraries with ocamldoc.  The toolchain in CI
# has no odoc, so `dune build @doc` alone proves nothing; this script is
# what the `doc` alias actually runs.  ocamldoc hard-fails on malformed
# markup (unclosed {b ...}, bad {!refs} syntax) while cross-library
# references it cannot resolve only warn, so the gate catches broken
# comments without demanding a fully linked doc tree.
#
# Usage: check_docs.sh <build-root> <out-dir>
#   <build-root>  the dune context root (contains lib/engine/...)
#   <out-dir>     scratch space for logs and dump sinks
set -eu

root=$1
out=$2
mkdir -p "$out"

objs() { echo "$root/lib/$1/.$1.objs/byte"; }

# doc_one <lib> <-open flags...> -- <mli...>: parse + type-check the
# listed interfaces with every in-repo dependency's compiled interfaces
# on the include path.  Wrapped multi-module libraries need their alias
# module opened (Engine, Obs); single-module libraries must not open
# the very module they define; a wrapped library with a main module of
# the library's own name (daemon) opens the generated `Lib__` alias
# instead, since the main module is the thing being checked.
doc_one() {
    lib=$1
    shift
    opens=""
    while [ "$1" != "--" ]; do
        opens="$opens -open $1"
        shift
    done
    shift
    incs=""
    for dep in engine packet netgraph netsim tcp mptcp measure lp core audit fuzz obs fluid validate events serve daemon; do
        [ -d "$(objs "$dep")" ] && incs="$incs -I $(objs "$dep")"
    done
    # shellcheck disable=SC2086
    if ! ocamlfind ocamldoc -package fmt,unix,qcheck-core \
        $incs $opens -dump "$out/$lib.odump" "$@" \
        >"$out/$lib.log" 2>&1; then
        echo "check_docs: ocamldoc failed for $lib:" >&2
        cat "$out/$lib.log" >&2
        exit 1
    fi
    # Surface real warnings; unresolvable cross-library {!refs} are
    # expected (no linked doc tree) and filtered out.
    grep -v "^Warning: Element .* not found" "$out/$lib.log" || true
    echo "doc ok: $lib"
}

doc_one engine Engine -- \
    "$root/lib/engine/time.mli" \
    "$root/lib/engine/heap.mli" \
    "$root/lib/engine/wheel.mli" \
    "$root/lib/engine/rng.mli" \
    "$root/lib/engine/sched.mli" \
    "$root/lib/engine/pool.mli"

doc_one audit -- \
    "$root/lib/audit/audit.mli"

doc_one fuzz -- \
    "$root/lib/fuzz/fuzz.mli"

doc_one fluid Fluid -- \
    "$root/lib/fluid/controller.mli" \
    "$root/lib/fluid/ode.mli" \
    "$root/lib/fluid/model.mli" \
    "$root/lib/fluid/equilibrium.mli" \
    "$root/lib/fluid/trajectory.mli" \
    "$root/lib/fluid/background.mli"

doc_one validate -- \
    "$root/lib/validate/validate.mli"

doc_one obs Obs -- \
    "$root/lib/obs/ring.mli" \
    "$root/lib/obs/trace.mli" \
    "$root/lib/obs/metrics.mli" \
    "$root/lib/obs/collect.mli"

doc_one events Events -- \
    "$root/lib/events/sexp.mli" \
    "$root/lib/events/event.mli" \
    "$root/lib/events/parse.mli"

doc_one core Core -- \
    "$root/lib/core/canon.mli"

doc_one serve Serve -- \
    "$root/lib/serve/store.mli" \
    "$root/lib/serve/trend.mli" \
    "$root/lib/serve/batch.mli" \
    "$root/lib/serve/service.mli"

doc_one daemon Daemon__ -- \
    "$root/lib/daemon/protocol.mli" \
    "$root/lib/daemon/daemon.mli"

# --- markdown link check ---
# Every relative link target written as [text](target) in the user-facing
# markdown docs must exist on disk (anchors and external URLs are
# skipped).  Catches the classic drift: a renamed or promised-but-absent
# document.
check_links() {
    ok=0
    for md in "$@"; do
        dir=$(dirname "$md")
        for target in $(grep -o '](\([^)]*\))' "$md" 2>/dev/null \
                            | sed 's/^](//; s/)$//'); do
            case $target in
            http://* | https://* | mailto:* | \#*) continue ;;
            esac
            path=${target%%#*}
            [ -z "$path" ] && continue
            if ! [ -e "$dir/$path" ]; then
                echo "check_docs: dead link in $md -> $target" >&2
                ok=1
            fi
        done
    done
    return $ok
}

docs_root=$(dirname "$0")
check_links \
    "$docs_root/../README.md" \
    "$docs_root/../DESIGN.md" \
    "$docs_root/../EXPERIMENTS.md" \
    "$docs_root"/*.md
echo "markdown links ok"

# Negative self-test: the checker must actually flag a dead link, or the
# pass above proves nothing.
mkdir -p "$out/linkcheck"
printf 'see [gone](no-such-file.md) but [not](https://example.org) this\n' \
    >"$out/linkcheck/bad.md"
if check_links "$out/linkcheck/bad.md" 2>/dev/null; then
    echo "check_docs: link checker failed to flag a dead link" >&2
    exit 1
fi
echo "link checker self-test ok"

echo "documentation gate passed"
