(* Command-line front end for the MPTCP overlapping-paths reproduction.

   Subcommands:
     paths    - show the paper's network, paths, and their overlaps
     lp-opt   - solve the Fig. 1c throughput LP
     run      - run one measured scenario with full control of parameters
     figures  - regenerate the paper's figures (2a, 2b, 2c, 1, 1c)
     sweep    - the convergence summary table (cc x default path)
     serve    - run scenario batches against the content-addressed cache,
                or stay resident with --listen and serve a socket
     submit   - send batches/control requests to a serve --listen daemon
     report   - render the trend table from the store's history
     cache    - inspect or clear the result store *)

open Cmdliner

(* --- shared argument definitions --- *)

let cc_arg =
  let parse s =
    match Mptcp.Algorithm.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown congestion control %S" s))
  in
  let print fmt a = Mptcp.Algorithm.pp fmt a in
  Arg.conv (parse, print)

let scheduler_arg =
  let parse s =
    match Mptcp.Scheduler.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Mptcp.Scheduler.policy_name p)
  in
  Arg.conv (parse, print)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let duration_t =
  Arg.(
    value
    & opt float 4.0
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated duration.")

let sampling_t =
  Arg.(
    value
    & opt float 0.1
    & info [ "sampling" ] ~docv:"SECONDS"
        ~doc:"Sampling window (the paper uses 0.1 and 0.01).")

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the time series as CSV.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent simulations (default: the \
           machine's recommended domain count).  Results are identical \
           for every value; 1 disables parallelism.")

let check_jobs = function
  | Some j when j < 1 ->
    Format.eprintf "--jobs must be >= 1@.";
    exit 2
  | jobs -> jobs

(* --- paths --- *)

let paths_cmd =
  let run () =
    let f = Core.Figures.fig1 () in
    print_string f.Core.Figures.chart;
    let topo = Core.Paper_net.topology () in
    let ps = Core.Paper_net.paths topo in
    List.iteri
      (fun i p ->
        List.iteri
          (fun j q ->
            if j > i then
              Format.printf "Paths %d and %d share %d link(s)@," (i + 1)
                (j + 1)
                (List.length (Netgraph.Path.shared_links p q)))
          ps)
      ps;
    Format.printf "@."
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Show the paper's network and path overlaps")
    Term.(const run $ const ())

(* --- lp-opt --- *)

let lp_opt_cmd =
  let run () =
    let f = Core.Figures.fig1c () in
    print_string f.Core.Figures.chart
  in
  Cmd.v
    (Cmd.info "lp-opt" ~doc:"Solve the Fig. 1c throughput maximisation LP")
    Term.(const run $ const ())

(* --- run --- *)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let run_cmd =
  let exec cc default scheduler duration sampling seed buffer csv ptrace audit
      trace_json trace_csv metrics_path profile topo_file xp_file background
      background_cc background_flows background_mbps background_rtt_ms tick_ms
      =
    let want_trace = trace_json <> None || trace_csv <> None in
    let obs =
      if want_trace || metrics_path <> None then
        Some
          {
            Obs.Collect.default_conf with
            trace = want_trace;
            metrics = metrics_path <> None;
          }
      else None
    in
    let spec, title =
      match (topo_file, xp_file) with
      | Some topo_file, Some xp_file ->
        (* Scenario as data: the experiment file fixes everything except
           the output/audit switches, which stay CLI-controlled. *)
        let _topo, spec =
          try Core.Expfile.load ~topo_file ~xp_file
          with Events.Sexp.Parse_error msg ->
            Format.eprintf "%s@." msg;
            exit 2
        in
        ( {
            spec with
            Core.Scenario.audit;
            obs;
            trace_limit = Option.map (fun _ -> 50_000) ptrace;
          },
          Printf.sprintf "experiment %s (cc=%s, Mbps)"
            (Filename.basename xp_file)
            (Mptcp.Algorithm.name spec.Core.Scenario.cc) )
      | None, None ->
        let topo = Core.Paper_net.topology () in
        let paths = Core.Paper_net.tagged_paths ~default topo in
        ( Core.Scenario.make ~topo ~paths ~cc ~scheduler
            ~duration:(Engine.Time.of_float_s duration)
            ~sampling:(Engine.Time.of_float_s sampling)
            ~seed ?send_buffer:buffer
            ?trace_limit:(Option.map (fun _ -> 50_000) ptrace)
            ~audit ?obs (),
          Printf.sprintf "MPTCP-%s on the paper network (Mbps)"
            (String.uppercase_ascii (Mptcp.Algorithm.name cc)) )
      | _ ->
        Format.eprintf
          "--topology and --experiment must be given together@.";
        exit 2
    in
    (* --background N adds N fluid flow classes between the connection's
       endpoints (shortest path), on top of whatever the experiment file
       declared; the classes start at t=0 and run for the whole
       scenario. *)
    let spec =
      if background = 0 then spec
      else begin
        let src, dst =
          match spec.Core.Scenario.paths with
          | (_, p) :: _ -> (Netgraph.Path.src p, Netgraph.Path.dst p)
          | [] -> assert false
        in
        let bg_cc =
          match String.lowercase_ascii background_cc with
          | "cbr" -> None
          | name -> (
            match Mptcp.Algorithm.of_string name with
            | Some a when Fluid.Controller.of_algorithm a <> None -> Some a
            | Some _ ->
              Format.eprintf "--background-cc %s has no fluid model@." name;
              exit 2
            | None ->
              Format.eprintf "unknown --background-cc %s@." name;
              exit 2)
        in
        let ev =
          Events.Event.at
            (Events.Event.Background_start
               { src; dst; classes = background; flows = background_flows;
                 cc = bg_cc;
                 rate_bps = int_of_float (background_mbps *. 1e6);
                 rtt = Engine.Time.of_float_s (background_rtt_ms /. 1e3) })
            ~at:Engine.Time.zero
        in
        { spec with
          Core.Scenario.events = spec.Core.Scenario.events @ [ ev ];
          hybrid_tick = Engine.Time.of_float_s (tick_ms /. 1e3) }
      end
    in
    let wall0 = Unix.gettimeofday () in
    let result = Core.Scenario.run spec in
    let wall_s = Unix.gettimeofday () -. wall0 in
    let named =
      List.map
        (fun (tag, s) -> (Printf.sprintf "path%d" tag, s))
        result.Core.Scenario.per_tag
      @ [ ("total", result.Core.Scenario.total) ]
    in
    print_string (Measure.Render.ascii_chart ~y_max:100.0 ~title named);
    Format.printf "%a@." Core.Scenario.pp_summary result;
    Format.printf "LP optimum %.1f Mbps; measured tail %.1f Mbps@."
      (Core.Scenario.optimal_total_mbps result)
      (Core.Scenario.tail_mean_mbps result);
    List.iter
      (fun (tag, v) -> Format.printf "  path %d tail: %.1f Mbps@." tag v)
      (Core.Scenario.per_path_tail_mbps result);
    (match Core.Scenario.time_to_optimum_s result with
    | Some t -> Format.printf "time to optimum: %.2f s@." t
    | None -> Format.printf "optimum not reached within the run@.");
    (match csv with
    | Some path ->
      Measure.Render.write_file ~path (Measure.Render.series_csv named);
      Format.printf "wrote %s@." path
    | None -> ());
    (match (ptrace, result.Core.Scenario.trace_text) with
    | Some path, Some text ->
      Measure.Render.write_file ~path text;
      Format.printf "wrote packet trace to %s@." path
    | _ -> ());
    (match result.Core.Scenario.obs with
    | Some o ->
      (match (trace_json, Obs.Collect.trace o) with
      | Some path, Some tr ->
        with_out path (Obs.Trace.write_chrome tr);
        Format.printf
          "wrote Chrome trace to %s (%d events kept, %d overwritten)@." path
          (List.length (Obs.Trace.events tr))
          (Obs.Trace.dropped tr)
      | _ -> ());
      (match (trace_csv, Obs.Collect.trace o) with
      | Some path, Some tr ->
        with_out path (Obs.Trace.write_csv tr);
        Format.printf "wrote trace CSV to %s@." path
      | _ -> ());
      (match (metrics_path, Obs.Collect.metrics o) with
      | Some path, Some m ->
        with_out path (Obs.Metrics.write_csv m);
        Format.printf "wrote metrics CSV to %s (%d snapshots)@." path
          (List.length (Obs.Metrics.snapshots m))
      | _ -> ())
    | None -> ());
    if profile then
      Format.printf
        "profile: wall %.3f s, %d events dispatched, %.0f events/s@." wall_s
        result.Core.Scenario.events_processed
        (if wall_s > 0.0 then
           float_of_int result.Core.Scenario.events_processed /. wall_s
         else 0.0);
    match result.Core.Scenario.audit with
    | None -> ()
    | Some rep ->
      Format.printf "%a@." Audit.pp_report rep;
      if rep.Audit.total_violations > 0 then exit 1
  in
  let cc_t =
    Arg.(
      value
      & opt cc_arg Mptcp.Algorithm.Cubic
      & info [ "cc" ] ~docv:"ALGO"
          ~doc:"Congestion control: cubic, reno, lia, olia, balia, ewtcp.")
  in
  let default_t =
    Arg.(
      value
      & opt int 2
      & info [ "default" ] ~docv:"PATH"
          ~doc:"Which path (1-3) is the default subflow.")
  in
  let sched_t =
    Arg.(
      value
      & opt scheduler_arg Mptcp.Scheduler.Min_rtt
      & info [ "scheduler" ] ~docv:"POLICY"
          ~doc:"Subflow scheduler: minrtt, roundrobin, redundant.")
  in
  let buffer_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "send-buffer" ] ~docv:"BYTES"
          ~doc:"Connection-level send buffer cap (default unlimited).")
  in
  let ptrace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "packet-trace" ] ~docv:"PATH"
          ~doc:"Write a tcpdump-style packet trace of the connection.")
  in
  let trace_json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Write a structured Chrome trace-event JSON file (loadable in \
             about://tracing or ui.perfetto.dev): event-loop dispatches, \
             link enqueue/drop/deliver, TCP cwnd and state changes, MPTCP \
             scheduler decisions.")
  in
  let trace_csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-csv" ] ~docv:"PATH"
          ~doc:"Write the same structured trace as CSV.")
  in
  let metrics_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Write the metrics registry (counters, gauges, histograms \
             sampled every --sampling period) as CSV.")
  in
  let profile_t =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print wall time and event-loop throughput after the run.")
  in
  let audit_t =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "Run the invariant checker alongside the simulation (byte \
             conservation, queue occupancy, sequence monotonicity, LP \
             feasibility) and print its report; exits 1 on any violation.")
  in
  let topo_file_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "t"; "topology" ] ~docv:"FILE"
          ~doc:
            "Topology file (S-expression).  Replaces the paper network; \
             requires --experiment.")
  in
  let xp_file_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "x"; "experiment" ] ~docv:"FILE"
          ~doc:
            "Experiment file (S-expression): paths, congestion control, \
             transfer size and timed events (failover, capacity ramps, \
             subflow churn, cross-traffic).  Overrides the scenario \
             flags; requires --topology.")
  in
  let background_t =
    Arg.(
      value & opt int 0
      & info [ "background" ] ~docv:"CLASSES"
          ~doc:
            "Add this many fluid background flow classes between the \
             connection's endpoints (hybrid co-simulation: the classes are \
             ODE fields sharing the link queues, not packet flows).  \
             Default 0 (off).")
  in
  let background_cc_t =
    Arg.(
      value & opt string "reno"
      & info [ "background-cc" ] ~docv:"ALGO"
          ~doc:
            "Window law of the background classes: reno, cubic, lia, olia, \
             or cbr for open-loop constant-rate classes.")
  in
  let background_flows_t =
    Arg.(
      value & opt int 10
      & info [ "background-flows" ] ~docv:"N"
          ~doc:"Identical flows aggregated per background class.")
  in
  let background_mbps_t =
    Arg.(
      value & opt float 1.0
      & info [ "background-mbps" ] ~docv:"MBPS"
          ~doc:"Per-flow rate of cbr background classes.")
  in
  let background_rtt_ms_t =
    Arg.(
      value & opt float 20.0
      & info [ "background-rtt-ms" ] ~docv:"MS"
          ~doc:"Mean propagation RTT of the background classes.")
  in
  let tick_ms_t =
    Arg.(
      value & opt float 1.0
      & info [ "tick-ms" ] ~docv:"MS"
          ~doc:"Coarse-tick period of the hybrid fluid driver.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one MPTCP scenario on the paper's network, or an experiment \
          file with -t/-x")
    Term.(
      const exec $ cc_t $ default_t $ sched_t $ duration_t $ sampling_t
      $ seed_t $ buffer_t $ csv_t $ ptrace_t $ audit_t $ trace_json_t
      $ trace_csv_t $ metrics_t $ profile_t $ topo_file_t $ xp_file_t
      $ background_t $ background_cc_t $ background_flows_t
      $ background_mbps_t $ background_rtt_ms_t $ tick_ms_t)

(* --- fluid --- *)

let fluid_cmd =
  let exec cc default validate timing csv horizon samples tol =
    let topo = Core.Paper_net.topology () in
    let paths = Core.Paper_net.tagged_paths ~default topo in
    let kinds =
      match String.lowercase_ascii cc with
      | "all" ->
        [ Fluid.Controller.Cubic; Fluid.Controller.Lia; Fluid.Controller.Olia ]
      | s -> (
        match Fluid.Controller.of_string s with
        | Some k -> [ k ]
        | None ->
          Format.eprintf "unknown fluid controller %S (cubic, reno, lia, olia, all)@." s;
          exit 2)
    in
    let spec_of kind =
      Core.Scenario.make ~topo ~paths ~cc:(Fluid.Controller.to_algorithm kind)
        ()
    in
    let failures = ref 0 in
    List.iter
      (fun kind ->
        let spec = spec_of kind in
        let wall0 = Unix.gettimeofday () in
        let report =
          if validate then Validate.against_sim ~tol spec
          else Validate.equilibrium ~tol spec
        in
        let wall_s = Unix.gettimeofday () -. wall0 in
        match report with
        | Error msg ->
          Format.eprintf "fluid %s: %s@." (Fluid.Controller.name kind) msg;
          incr failures
        | Ok rep ->
          Format.printf "%a@." Validate.pp rep;
          if timing then Format.printf "wall time: %.3f ms@." (wall_s *. 1e3);
          Format.printf "@.";
          if not rep.Validate.diag.Fluid.Equilibrium.converged then
            incr failures)
      kinds;
    (match (csv, kinds) with
    | None, _ -> ()
    | Some path, [ kind ] ->
      let m =
        Fluid.Model.compile topo ~paths:(List.map snd paths) ~controller:kind
          ()
      in
      let samples', _stats =
        Fluid.Trajectory.run m ~horizon ~samples ()
      in
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      Fluid.Trajectory.write_csv m ppf samples';
      Format.pp_print_flush ppf ();
      Measure.Render.write_file ~path (Buffer.contents buf);
      Format.printf "wrote %s@." path
    | Some _, _ ->
      Format.eprintf "--csv needs a single --cc (not all)@.";
      exit 2);
    if !failures > 0 then exit 1
  in
  let cc_t =
    Arg.(
      value & opt string "all"
      & info [ "cc" ] ~docv:"ALGO"
          ~doc:"Fluid controller: cubic, reno, lia, olia, or all.")
  in
  let default_t =
    Arg.(
      value & opt int 2
      & info [ "default" ] ~docv:"PATH"
          ~doc:"Which path (1-3) is the default subflow.")
  in
  let validate_t =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Also run the packet-level simulator on the same scenario and \
             report per-path fluid-vs-sim deviations.")
  in
  let timing_t =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Print wall time per solve (off by default so output is \
             byte-stable for the CLI smoke tests).")
  in
  let horizon_t =
    Arg.(
      value & opt float 4.0
      & info [ "horizon" ] ~docv:"SECONDS"
          ~doc:"Trajectory length for --csv.")
  in
  let samples_t =
    Arg.(
      value & opt int 200
      & info [ "samples" ] ~docv:"N" ~doc:"Trajectory samples for --csv.")
  in
  let tol_t =
    Arg.(
      value & opt float 1e-4
      & info [ "tol" ] ~docv:"X"
          ~doc:"Equilibrium residual target (state units per second).")
  in
  Cmd.v
    (Cmd.info "fluid"
       ~doc:
         "Solve the fluid (ODE) model of the paper scenario: per-path \
          equilibrium rates vs the LP optimum, optional simulator \
          cross-validation and trajectory CSV")
    Term.(
      const exec $ cc_t $ default_t $ validate_t $ timing_t $ csv_t
      $ horizon_t $ samples_t $ tol_t)

(* --- serve / report / cache: the scenario service --- *)

let store_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Result-store directory (created if missing): content-addressed \
           records under objects/, the version file, and the append-only \
           trend.log.")

let serve_cmd =
  let exec store batches no_cache invalidate perf jobs listen watch max_queue
      gc_max_bytes gc_interval =
    let jobs = check_jobs jobs in
    match listen with
    | Some socket_path ->
      (* daemon mode: stay resident and serve Protocol requests *)
      if batches <> [] then begin
        Format.eprintf
          "serve --listen runs as a daemon; submit batches with 'mptcp_sim \
           submit --socket %s BATCH.sexp'@."
          socket_path;
        exit 2
      end;
      if no_cache then begin
        Format.eprintf "serve --listen does not support --no-cache@.";
        exit 2
      end;
      if invalidate then begin
        let st = Serve.Store.open_store ~dir:store in
        Format.printf "invalidated %d cached records@."
          (Serve.Store.invalidate st)
      end;
      let conf =
        {
          (Daemon.default_conf ~socket_path ~store_dir:store) with
          Daemon.jobs;
          max_queue;
          gc_max_bytes;
          gc_interval_s = gc_interval;
          watch_dir = watch;
        }
      in
      (try Daemon.run conf
       with Failure msg ->
         Format.eprintf "serve: %s@." msg;
         exit 1)
    | None ->
    if watch <> None then begin
      Format.eprintf "serve --watch requires --listen@.";
      exit 2
    end;
    if batches = [] then begin
      Format.eprintf "serve: no batch files given@.";
      exit 2
    end;
    let st = Serve.Store.open_store ~dir:store in
    if invalidate then
      Format.printf "invalidated %d cached records@." (Serve.Store.invalidate st);
    List.iter
      (fun batch_file ->
        let entries =
          try Serve.Batch.load batch_file with
          | Events.Sexp.Parse_error msg ->
            Format.eprintf "%s: %s@." batch_file msg;
            exit 2
          | Invalid_argument msg ->
            Format.eprintf "%s: %s@." batch_file msg;
            exit 2
        in
        let outcomes, stats =
          Serve.Service.run_batch ?jobs ~cache:(not no_cache) ~store:st entries
        in
        Format.printf "=== batch %s ===@." (Filename.basename batch_file);
        List.iter
          (fun ((_ : Serve.Batch.entry), outcome) ->
            let kind, (r : Serve.Store.record) =
              match outcome with
              | Serve.Service.Hit r -> ("hit  ", r)
              | Serve.Service.Fresh r -> ("fresh", r)
            in
            Format.printf "%s %s %-24s tail %.1f / opt %.1f Mbps%s@." kind
              (Core.Canon.short r.Serve.Store.hash)
              r.Serve.Store.label r.Serve.Store.tail_mbps
              r.Serve.Store.opt_mbps
              (if perf then Printf.sprintf "  (%.3f s)" r.Serve.Store.wall_s
               else ""))
          outcomes;
        Format.printf
          "batch: %d entries, %d hits, %d fresh, %d simulation events%s@."
          stats.Serve.Service.entries stats.Serve.Service.hits
          stats.Serve.Service.fresh stats.Serve.Service.fresh_sim_events
          (if perf then
             Printf.sprintf " (wall %.3f s)" stats.Serve.Service.wall_s
           else ""))
      batches
  in
  let batches_t =
    Arg.(value & pos_all file [] & info [] ~docv:"BATCH.sexp")
  in
  let no_cache_t =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Skip cache lookups: re-simulate every entry and overwrite its \
             stored record (results still land in the store and the trend \
             log).")
  in
  let invalidate_t =
    Arg.(
      value & flag
      & info [ "invalidate" ]
          ~doc:"Delete every cached record before processing the batches.")
  in
  let perf_t =
    Arg.(
      value & flag
      & info [ "perf" ]
          ~doc:
            "Also print wall-clock timings (off by default so output is \
             byte-stable for the golden tests).")
  in
  let listen_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"SOCK"
          ~doc:
            "Stay resident: bind a Unix-domain socket and serve submissions \
             from 'mptcp_sim submit' over one warm domain pool.  Identical \
             concurrent submissions share a single simulation; SIGTERM (or \
             a submit --drain) drains cleanly.")
  in
  let watch_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "watch" ] ~docv:"DIR"
          ~doc:
            "With --listen: also poll DIR and submit every *.sexp batch \
             file dropped there, renaming it .done (or .err) once served.")
  in
  let max_queue_t =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "With --listen: reject submissions (typed busy reply) once this \
             many entries are in flight.")
  in
  let gc_max_bytes_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc-max-bytes" ] ~docv:"N"
          ~doc:
            "With --listen: keep the store under N bytes with a periodic \
             LRU eviction pass.")
  in
  let gc_interval_t =
    Arg.(
      value & opt float 5.0
      & info [ "gc-interval" ] ~docv:"SECONDS"
          ~doc:"Period of the --gc-max-bytes pass.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run scenario batches against the content-addressed result cache \
          (hits are served from the store with zero simulation work, misses \
          run on the domain pool and are stored; every outcome is appended \
          to the trend log), or stay resident with --listen and serve \
          submissions over a socket")
    Term.(
      const exec $ store_t $ batches_t $ no_cache_t $ invalidate_t $ perf_t
      $ jobs_t $ listen_t $ watch_t $ max_queue_t $ gc_max_bytes_t
      $ gc_interval_t)

(* --- submit: client side of the resident daemon --- *)

let submit_cmd =
  let exec socket batches status stats invalidate gc_bytes drain =
    let rpc req =
      match Daemon.Protocol.call_once ~socket req with
      | resp -> resp
      | exception Daemon.Protocol.Protocol_error msg ->
        Format.eprintf "submit: protocol error: %s@." msg;
        exit 1
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "submit: cannot reach a daemon on %s: %s@." socket
          (Unix.error_message e);
        exit 1
    in
    let fail_reply kind msg =
      Format.eprintf "submit: daemon error (%s): %s@."
        (Daemon.Protocol.error_kind_name kind)
        msg;
      exit 1
    in
    let nothing_else =
      (not status) && (not stats) && (not invalidate) && (not drain)
      && gc_bytes = None
    in
    if batches = [] && nothing_else then begin
      Format.eprintf "submit: no batch files and no control flags given@.";
      exit 2
    end;
    List.iter
      (fun batch_file ->
        let forms =
          try Events.Sexp.load batch_file with
          | Events.Sexp.Parse_error msg ->
            Format.eprintf "%s: %s@." batch_file msg;
            exit 2
          | Sys_error msg ->
            Format.eprintf "%s@." msg;
            exit 2
        in
        match rpc (Daemon.Protocol.Submit forms) with
        | Daemon.Protocol.Batch b ->
          Format.printf "=== batch %s ===@." (Filename.basename batch_file);
          List.iter
            (fun (o : Daemon.Protocol.outcome) ->
              Format.printf "%-6s %s %-24s tail %.1f / opt %.1f Mbps@."
                (Daemon.Protocol.outcome_kind_name o.Daemon.Protocol.kind)
                (Core.Canon.short o.Daemon.Protocol.hash)
                o.Daemon.Protocol.label o.Daemon.Protocol.tail_mbps
                o.Daemon.Protocol.opt_mbps)
            b.Daemon.Protocol.outcomes;
          Format.printf
            "batch: %d entries, %d hits, %d fresh, %d shared, %d simulation \
             events@."
            b.Daemon.Protocol.entries b.Daemon.Protocol.hits
            b.Daemon.Protocol.fresh b.Daemon.Protocol.shared
            b.Daemon.Protocol.fresh_sim_events
        | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
        | _ ->
          Format.eprintf "submit: unexpected reply to a batch@.";
          exit 1)
      batches;
    if invalidate then begin
      match rpc Daemon.Protocol.Invalidate with
      | Daemon.Protocol.Invalidated n ->
        Format.printf "invalidated %d cached records@." n
      | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
      | _ ->
        Format.eprintf "submit: unexpected reply to invalidate@.";
        exit 1
    end;
    (match gc_bytes with
    | None -> ()
    | Some budget -> (
      match rpc (Daemon.Protocol.Gc budget) with
      | Daemon.Protocol.Gc_done g ->
        Format.printf
          "gc: evicted %d of %d records (%dB), kept %d (%dB <= %dB budget)@."
          g.Daemon.Protocol.evicted g.Daemon.Protocol.examined
          g.Daemon.Protocol.evicted_bytes g.Daemon.Protocol.kept
          g.Daemon.Protocol.kept_bytes budget
      | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
      | _ ->
        Format.eprintf "submit: unexpected reply to gc@.";
        exit 1));
    if status then begin
      match rpc Daemon.Protocol.Status with
      | Daemon.Protocol.Status_reply s ->
        Format.printf
          "daemon pid %d: draining %b, queue %d, inflight %d, %d pool \
           domains, %d records@."
          s.Daemon.Protocol.pid s.Daemon.Protocol.draining
          s.Daemon.Protocol.queue_depth s.Daemon.Protocol.inflight
          s.Daemon.Protocol.pool_domains s.Daemon.Protocol.store_records
      | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
      | _ ->
        Format.eprintf "submit: unexpected reply to status@.";
        exit 1
    end;
    if stats then begin
      match rpc Daemon.Protocol.Stats with
      | Daemon.Protocol.Stats_reply s ->
        Format.printf
          "daemon stats: %d submissions, %d entries (%d hits, %d fresh, %d \
           shared), %d rejected, %d protocol errors, %d gc runs@."
          s.Daemon.Protocol.submissions s.Daemon.Protocol.served_entries
          s.Daemon.Protocol.s_hits s.Daemon.Protocol.s_fresh
          s.Daemon.Protocol.s_shared s.Daemon.Protocol.rejected
          s.Daemon.Protocol.protocol_errors s.Daemon.Protocol.gc_runs;
        Format.printf "store: %d records (%dB), %d trend entries@."
          s.Daemon.Protocol.store_records s.Daemon.Protocol.store_bytes
          s.Daemon.Protocol.trend_entries
      | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
      | _ ->
        Format.eprintf "submit: unexpected reply to stats@.";
        exit 1
    end;
    if drain then begin
      match rpc Daemon.Protocol.Drain with
      | Daemon.Protocol.Drained -> Format.printf "daemon drained@."
      | Daemon.Protocol.Error (kind, msg) -> fail_reply kind msg
      | _ ->
        Format.eprintf "submit: unexpected reply to drain@.";
        exit 1
    end
  in
  let socket_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"SOCK"
          ~doc:"The daemon's Unix-domain socket (serve --listen SOCK).")
  in
  let batches_t =
    Arg.(value & pos_all file [] & info [] ~docv:"BATCH.sexp")
  in
  let status_t =
    Arg.(
      value & flag
      & info [ "status" ]
          ~doc:"Print the daemon's lifecycle snapshot after any batches.")
  in
  let stats_t =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the daemon's service counters.")
  in
  let invalidate_t =
    Arg.(
      value & flag
      & info [ "invalidate" ] ~doc:"Ask the daemon to drop every record.")
  in
  let gc_bytes_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "gc" ] ~docv:"BYTES"
          ~doc:"Ask the daemon for one LRU pass down to this byte budget.")
  in
  let drain_t =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:
            "Drain the daemon: in-flight runs complete, the socket is \
             unlinked, the process exits.  Runs after everything else.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit batches (and control requests) to a resident 'serve \
          --listen' daemon over its socket")
    Term.(
      const exec $ socket_t $ batches_t $ status_t $ stats_t $ invalidate_t
      $ gc_bytes_t $ drain_t)

let report_cmd =
  let exec store last perf =
    let entries, skipped = Serve.Trend.load ~dir:store in
    Serve.Trend.report ~perf ?last Format.std_formatter entries;
    Format.pp_print_flush Format.std_formatter ();
    if skipped > 0 then
      Format.printf "(%d unparseable trend line(s) skipped)@." skipped
  in
  let last_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N" ~doc:"Only the N most recent submissions.")
  in
  let perf_t =
    Arg.(
      value & flag
      & info [ "perf" ]
          ~doc:"Add wall-clock columns (non-deterministic; off by default).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the per-scenario goodput/perf trend table from the store's \
          append-only history")
    Term.(const exec $ store_t $ last_t $ perf_t)

let cache_cmd =
  let exec store invalidate gc max_bytes =
    let st = Serve.Store.open_store ~dir:store in
    if invalidate then
      Format.printf "invalidated %d cached records@." (Serve.Store.invalidate st)
    else if gc then begin
      match max_bytes with
      | None ->
        Format.eprintf "cache --gc requires --max-bytes@.";
        exit 2
      | Some budget ->
        let s = Serve.Store.gc st ~max_bytes:budget in
        Format.printf
          "gc: evicted %d of %d records (%dB), kept %d (%dB <= %dB budget)@."
          s.Serve.Store.evicted s.Serve.Store.examined
          s.Serve.Store.evicted_bytes s.Serve.Store.kept
          s.Serve.Store.kept_bytes budget
    end
    else begin
      let entries, skipped = Serve.Trend.load ~dir:store in
      Format.printf
        "store %s: format v%d, %d cached records (%dB), %d trend entries@."
        store Serve.Store.format_version (Serve.Store.count st)
        (Serve.Store.bytes st) (List.length entries);
      if skipped > 0 then
        Format.printf "(%d unparseable trend line(s) skipped)@." skipped
    end
  in
  let invalidate_t =
    Arg.(
      value & flag
      & info [ "invalidate" ] ~doc:"Delete every cached record and exit.")
  in
  let gc_t =
    Arg.(
      value & flag
      & info [ "gc" ]
          ~doc:
            "Evict records, oldest first, until the store fits the \
             --max-bytes budget.")
  in
  let max_bytes_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"N"
          ~doc:"Byte budget the store must fit after --gc.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect (or clear with --invalidate, shrink with --gc) the result \
          store")
    Term.(const exec $ store_t $ invalidate_t $ gc_t $ max_bytes_t)

(* --- figures --- *)

let figures_cmd =
  let exec fig seed csv_dir jobs =
    let jobs = check_jobs jobs in
    let figs =
      match fig with
      | "all" -> Core.Figures.all ~seed ?jobs ()
      | id -> (
        match Core.Figures.by_id id with
        | Some f -> [ f ~seed () ]
        | None ->
          Format.eprintf "unknown figure %S (use 1, 1c, 2a, 2b, 2c, all)@." id;
          exit 1)
    in
    List.iter
      (fun (f : Core.Figures.figure) ->
        Format.printf "=== %s ===@." f.Core.Figures.title;
        print_string f.Core.Figures.chart;
        Format.printf "@.";
        match csv_dir with
        | Some dir when f.Core.Figures.csv <> "" ->
          let path = Filename.concat dir ("fig" ^ f.Core.Figures.id ^ ".csv") in
          Measure.Render.write_file ~path f.Core.Figures.csv;
          Format.printf "wrote %s@." path
        | Some _ | None -> ())
      figs
  in
  let fig_t =
    Arg.(
      value & opt string "all"
      & info [ "fig" ] ~docv:"ID" ~doc:"Figure id: 1, 1c, 2a, 2b, 2c or all.")
  in
  let dir_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Write each figure's CSV here.")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures")
    Term.(const exec $ fig_t $ seed_t $ dir_t $ jobs_t)

(* --- scaling --- *)

let scaling_cmd =
  let exec max_n duration csv jobs =
    let jobs = check_jobs jobs in
    let rows =
      Core.Scaling.sweep
        ~ns:(List.init (max_n - 1) (fun i -> i + 2))
        ~duration:(Engine.Time.of_float_s duration)
        ?jobs ()
    in
    Format.printf "%a@." Core.Scaling.pp_table rows;
    match csv with
    | Some path ->
      Measure.Render.write_file ~path (Core.Scaling.to_csv rows);
      Format.printf "wrote %s@." path
    | None -> ()
  in
  let max_n_t =
    Arg.(
      value & opt int 5
      & info [ "max-n" ] ~docv:"N"
          ~doc:"Largest number of pairwise-overlapping paths.")
  in
  let duration_t =
    Arg.(
      value & opt float 15.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Per-run duration.")
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:
         "Generalise the paper's construction to n pairwise-overlapping           paths and measure achieved/optimal per algorithm")
    Term.(const exec $ max_n_t $ duration_t $ csv_t $ jobs_t)

(* --- sweep --- *)

let sweep_cmd =
  let exec duration seeds csv jobs =
    let jobs = check_jobs jobs in
    let rows =
      Core.Summary.sweep
        ~seeds:(List.init seeds (fun i -> i + 1))
        ~duration:(Engine.Time.of_float_s duration)
        ?jobs ()
    in
    Format.printf "%a@." Core.Summary.pp_table rows;
    Format.printf
      "(optimum %.0f Mbps; greedy Pareto point from Path 2: %.0f Mbps)@."
      Core.Paper_net.optimal_total_mbps
      (Core.Paper_net.greedy_total_mbps ~default:2);
    match csv with
    | Some path ->
      Measure.Render.write_file ~path (Core.Summary.to_csv rows);
      Format.printf "wrote %s@." path
    | None -> ()
  in
  let duration_t =
    Arg.(
      value & opt float 20.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Per-run duration.")
  in
  let seeds_t =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per cell (1..N).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Convergence summary: congestion control x default path")
    Term.(const exec $ duration_t $ seeds_t $ csv_t $ jobs_t)

let () =
  let doc = "Reproduction of 'The Performance of MPTCP with Overlapping Paths'" in
  let info = Cmd.info "mptcp_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ paths_cmd; lp_opt_cmd; run_cmd; fluid_cmd; figures_cmd;
            sweep_cmd; scaling_cmd; serve_cmd; submit_cmd; report_cmd;
            cache_cmd ]))
