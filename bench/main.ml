(* Benchmark and reproduction harness.

   `dune exec bench/main.exe` regenerates, in order:
     1. every figure of the paper (Fig. 1a/1b, 1c, 2a, 2b, 2c), printed
        as ASCII charts with paper-vs-measured summary rows;
     2. "Table 1": the congestion-control x default-path convergence
        sweep condensing the paper's prose results;
     3. the ablations DESIGN.md calls out (buffer size, queue discipline,
        scheduler, single-path baselines);
     4. Bechamel micro-benchmarks of the hot components.

   Independent simulations run on a `--jobs N` domain pool (default:
   `Domain.recommended_domain_count`); every grid is printed from
   order-preserved results, so the output is byte-identical to a serial
   run.  A machine-readable summary (micro-benchmark estimates plus the
   wall clock of each phase) is written to `BENCH_results.json` so
   successive revisions leave a perf trajectory.

   `dune exec bench/main.exe -- --quick` trims the sweeps for CI use. *)

let quick = Array.exists (fun a -> a = "--quick" || a = "-q") Sys.argv

(* `--audit` adds an invariant-audit phase: the paper-figure grid re-run
   with the runtime checker enabled (see lib/audit and doc/AUDIT.md). *)
let audit = Array.exists (fun a -> a = "--audit") Sys.argv

(* `--profile` prints a per-phase domain-utilisation table (per-domain
   busy/idle wall time, effective speedup) from the pool's worker
   accounting, and adds a "profile" section to BENCH_results.json.  Off
   by default so the default output and JSON stay byte-identical. *)
let profile = Array.exists (fun a -> a = "--profile") Sys.argv

let flag_value names =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if List.mem Sys.argv.(i) names then
      if i = Array.length Sys.argv - 1 then (
        Printf.eprintf "bench: %s expects a value\n" Sys.argv.(i);
        exit 2)
      else Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* `--csv-dir DIR` writes each regenerated dataset as CSV next to the
   terminal output, for external plotting. *)
let csv_dir = flag_value [ "--csv-dir" ]

(* `--gate` turns the run into a perf-regression check: after writing
   the JSON summary, the paper-sim and fluid microbenches and the
   allocations-per-packet figure are compared against the committed
   baseline (`--baseline PATH`, default BENCH_results.json), plus the
   same-run structural floors in [gate_check]; the process exits
   non-zero on any failure. *)
let gate = Array.exists (fun a -> a = "--gate") Sys.argv

(* `--alloc-only` runs just the GC-bracketed allocation profile and
   exits: the tight loop for iterating on hot-path allocation work
   without paying for the full figure/sweep suite. *)
let alloc_only = Array.exists (fun a -> a = "--alloc-only") Sys.argv

(* `--perf` (also `dune build @perf` in bench/) runs just the hybrid
   fluid/packet phase with the full 10^3-10^6 class scaling sweep and
   exits — the tight loop for the co-simulation's scaling work. *)
let perf_only = Array.exists (fun a -> a = "--perf") Sys.argv

let baseline_path =
  match flag_value [ "--baseline" ] with
  | Some p -> p
  | None -> "BENCH_results.json"

(* Baseline-ratio tolerance.  The reference box is a single loaded
   core: the microsecond-scale microbenches (fluid solve especially)
   wander +-15-20% run to run with the code untouched, so a 10%
   tolerance flagged noise as regression.  The structural floors below
   (same-run ratios and absolute limits with measured margin) do the
   strict enforcement; the baseline ratios are a coarse backstop. *)
let gate_tolerance = 1.25

(* [jobs_source] records where the worker count came from, so a stored
   BENCH_results.json can be compared across machines: "flag" means the
   operator pinned it, "detected" means it tracked the box's cpu count
   (also recorded in the header) and will drift with the hardware. *)
let jobs, jobs_source =
  match flag_value [ "--jobs"; "-j" ] with
  | None -> (Core.Runner.default_jobs (), "detected")
  | Some v -> (
    match int_of_string_opt v with
    | Some j when j >= 1 -> (j, "flag")
    | Some _ | None ->
      Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" v;
      exit 2)

let bench_json =
  match flag_value [ "--bench-json" ] with
  | Some p -> p
  | None -> "BENCH_results.json"

(* `open Bechamel` below shadows `Measure`; keep a handle on ours. *)
let write_text_file = Measure.Render.write_file

let write_csv name content =
  match csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir name in
    Measure.Render.write_file ~path content;
    Printf.printf "[csv] wrote %s\n" path

let hr title =
  Printf.printf "\n%s\n=== %s ===\n" (String.make 72 '=') title

(* Wall clock per phase, for BENCH_results.json. *)
let phase_times : (string * float) list ref = ref []

type phase_profile = {
  p_name : string;
  p_wall : float;
  p_pools : int;
  p_workers : Engine.Pool.worker_stats array;
}

let phase_profiles : phase_profile list ref = ref []

let timed name f =
  if profile then Engine.Pool.reset_global_stats ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  phase_times := (name, dt) :: !phase_times;
  if profile then
    phase_profiles :=
      {
        p_name = name;
        p_wall = dt;
        p_pools = Engine.Pool.global_pools ();
        p_workers = Engine.Pool.global_worker_stats ();
      }
      :: !phase_profiles;
  r

let phase_speedup p =
  let busy =
    Array.fold_left (fun a w -> a +. w.Engine.Pool.busy_s) 0.0 p.p_workers
  in
  if p.p_wall > 0.0 then busy /. p.p_wall else 0.0

let print_profile () =
  hr "profile: per-phase domain utilisation";
  Printf.printf "  %-24s %8s %6s %6s %8s  %s\n" "phase" "wall s" "pools"
    "jobs" "speedup" "per-domain busy s";
  List.iter
    (fun p ->
      let jobs_n =
        Array.fold_left (fun a w -> a + w.Engine.Pool.jobs) 0 p.p_workers
      in
      Printf.printf "  %-24s %8.3f %6d %6d %7.2fx  [%s]\n" p.p_name p.p_wall
        p.p_pools jobs_n (phase_speedup p)
        (String.concat " "
           (Array.to_list
              (Array.map
                 (fun w -> Printf.sprintf "%.2f" w.Engine.Pool.busy_s)
                 p.p_workers)));
      Array.iteri
        (fun i w ->
          Printf.printf "      domain %d: %d jobs, busy %.3f s, idle %.3f s\n"
            i w.Engine.Pool.jobs w.Engine.Pool.busy_s
            (Float.max 0.0 (p.p_wall -. w.Engine.Pool.busy_s)))
        p.p_workers)
    (List.rev !phase_profiles);
  Printf.printf
    "  (speedup = total domain busy time / phase wall time; phases with 0 \
     pools ran serially)\n"

(* ------------------------------------------------------------------ *)
(* 1. Figures                                                          *)
(* ------------------------------------------------------------------ *)

let show_figure (f : Core.Figures.figure) =
  hr f.Core.Figures.title;
  print_string f.Core.Figures.chart;
  match f.Core.Figures.result with
  | None -> ()
  | Some r ->
    let opt = Core.Scenario.optimal_total_mbps r in
    Printf.printf
      "measured: tail %.1f Mbps of %.0f optimal; time-to-optimum %s\n"
      (Core.Scenario.tail_mean_mbps r) opt
      (match Core.Scenario.time_to_optimum_s r with
      | Some t -> Printf.sprintf "%.2f s" t
      | None -> "not within this run");
    List.iter
      (fun (tag, v) -> Printf.printf "  path %d tail: %.1f Mbps\n" tag v)
      (Core.Scenario.per_path_tail_mbps r)

let figures () =
  let figs = Core.Figures.all ~seed:1 ~jobs () in
  List.iter
    (fun (f : Core.Figures.figure) ->
      show_figure f;
      if f.Core.Figures.csv <> "" then
        write_csv ("fig" ^ f.Core.Figures.id ^ ".csv") f.Core.Figures.csv)
    figs;
  hr "paper vs measured (figure summary)";
  Printf.printf
    "Fig 1c | LP optimum          | paper: 90 Mbps at (10,30,50) | \
     measured: exact (simplex + enumeration agree)\n";
  let result_of id =
    List.find_map
      (fun (f : Core.Figures.figure) ->
        if f.Core.Figures.id = id then f.Core.Figures.result else None)
      figs
  in
  match (result_of "2a", result_of "2b") with
  | Some ra, Some rb ->
    Printf.printf
      "Fig 2a | CUBIC finds optimum | paper: yes, ~3 s, then unstable | \
       measured: %s, tail %.1f Mbps\n"
      (match Core.Scenario.time_to_optimum_s ra with
      | Some t -> Printf.sprintf "yes, %.1f s" t
      | None -> "no")
      (Core.Scenario.tail_mean_mbps ra);
    Printf.printf
      "Fig 2b | OLIA at 4 s         | paper: below optimum            | \
       measured: %s, tail %.1f Mbps\n"
      (match Core.Scenario.time_to_optimum_s rb with
      | Some _ -> "reached (differs)"
      | None -> "below optimum")
      (Core.Scenario.tail_mean_mbps rb)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* 2. Table 1: the sweep behind the paper's prose                      *)
(* ------------------------------------------------------------------ *)

let table1 () =
  hr "Table 1: convergence by congestion control x default path";
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let duration = Engine.Time.s (if quick then 8 else 20) in
  let rows = Core.Summary.sweep ~seeds ~duration ~jobs () in
  Format.printf "%a@." Core.Summary.pp_table rows;
  write_csv "table1_sweep.csv" (Core.Summary.to_csv rows);
  Printf.printf
    "(optimum 90 Mbps; greedy fill from the default path reaches 80)\n";
  Printf.printf
    "paper: CUBIC always reached (transiently unstable); LIA never; \
     OLIA only with Path 2 default, ~20 s.\n"

(* ------------------------------------------------------------------ *)
(* 3. Ablations                                                        *)
(* ------------------------------------------------------------------ *)

let run_paper ?(cc = Mptcp.Algorithm.Cubic) ?(default = 2) ?net_config
    ?sender_config ?scheduler ?(duration = 12) ?(seed = 1) () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default topo in
  let spec =
    Core.Scenario.make ~topo ~paths ~cc ?scheduler ?net_config ?sender_config
      ~duration:(Engine.Time.s duration) ~sampling:(Engine.Time.ms 100) ~seed
      ()
  in
  Core.Scenario.run spec

let describe r =
  Printf.sprintf "tail %5.1f Mbps, t_opt %s, residency %.2f"
    (Core.Scenario.tail_mean_mbps r)
    (match Core.Scenario.time_to_optimum_s r with
    | Some t -> Printf.sprintf "%5.1fs" t
    | None -> "never ")
    (Measure.Converge.fraction_above r.Core.Scenario.total ~target:90.0
       ~tolerance:0.05 ~from_s:2.0 ())

let ablation_buffers () =
  hr "Ablation: buffer size (drop-tail, packets per link direction)";
  let buffers = if quick then [ 16; 40 ] else [ 8; 16; 24; 40 ] in
  let ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ] in
  let grid =
    List.concat_map (fun limit -> List.map (fun cc -> (limit, cc)) ccs) buffers
  in
  let descs =
    Core.Runner.map ~jobs
      (fun (limit, cc) ->
        let net_config =
          { Netsim.Net.qdisc = Netsim.Qdisc.Drop_tail; limit_pkts = limit;
      delay_jitter = Engine.Time.zero }
        in
        describe (run_paper ~cc ~net_config ()))
      grid
  in
  let tagged = List.combine grid descs in
  List.iter
    (fun limit ->
      Printf.printf "buffer %2d pkts:\n" limit;
      List.iter
        (fun ((l, cc), desc) ->
          if l = limit then
            Printf.printf "  %-6s %s\n" (Mptcp.Algorithm.name cc) desc)
        tagged)
    buffers;
  Printf.printf
    "(the paper's qualitative picture needs shallow buffers; at 40 pkts \
     ~ 1.5 BDP every algorithm converges)\n"

let ablation_qdisc () =
  hr "Ablation: queue discipline (16-packet buffers)";
  let disciplines =
    [ ("drop-tail", Netsim.Qdisc.Drop_tail, false);
      ("RED", Netsim.Qdisc.Red Netsim.Qdisc.default_red, false);
      ("RED + ECN", Netsim.Qdisc.Red Netsim.Qdisc.default_red_ecn, true);
      ("CoDel", Netsim.Qdisc.Codel Netsim.Qdisc.default_codel, false) ]
  in
  let ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ] in
  let grid =
    List.concat_map (fun d -> List.map (fun cc -> (d, cc)) ccs) disciplines
  in
  let descs =
    Core.Runner.map ~jobs
      (fun ((_, qdisc, ecn), cc) ->
        let net_config =
          { Netsim.Net.qdisc; limit_pkts = 16;
            delay_jitter = Engine.Time.zero }
        in
        let sender_config =
          { Tcp.Sender.default_config with Tcp.Sender.ecn }
        in
        describe (run_paper ~cc ~net_config ~sender_config ()))
      grid
  in
  let tagged = List.combine grid descs in
  List.iter
    (fun (name, _, _) ->
      Printf.printf "%s:\n" name;
      List.iter
        (fun (((n, _, _), cc), desc) ->
          if n = name then
            Printf.printf "  %-6s %s\n" (Mptcp.Algorithm.name cc) desc)
        tagged)
    disciplines;
  Printf.printf
    "(16-packet buffers drain in under CoDel's 5 ms target, so CoDel \
     never fires here and matches drop-tail; its effect shows on deep \
     buffers - see the bufferbloat test in test/test_netsim.ml)\n"

let ablation_scheduler () =
  hr "Ablation: subflow scheduler (CUBIC)";
  let policies = Mptcp.Scheduler.[ Min_rtt; Round_robin; Redundant ] in
  let descs =
    Core.Runner.map ~jobs
      (fun scheduler -> describe (run_paper ~scheduler ()))
      policies
  in
  List.iter2
    (fun scheduler desc ->
      Printf.printf "  %-10s %s\n"
        (Mptcp.Scheduler.policy_name scheduler)
        desc)
    policies descs;
  Printf.printf
    "(the chart numbers are wire rates; under `redundant' every byte \
     travels all three paths, so application goodput is roughly a third \
     of the wire total)\n"

let scaling_experiment () =
  hr "Extension: n pairwise-overlapping paths (achieved / LP optimal)";
  let ns = if quick then [ 2; 3 ] else [ 2; 3; 4; 5 ] in
  let rows =
    Core.Scaling.sweep ~ns
      ~duration:(Engine.Time.s (if quick then 8 else 15))
      ~jobs ()
  in
  Format.printf "%a@." Core.Scaling.pp_table rows;
  write_csv "scaling.csv" (Core.Scaling.to_csv rows);
  Printf.printf
    "(capacities 30 + 5(i+j) Mbps per pair; the LP dimension grows as      C(n,2))
"

let ablation_delayed_ack () =
  hr "Ablation: delayed ACKs (receiver acks every 2nd segment / 40 ms)";
  let ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ] in
  let grid =
    List.concat_map
      (fun delayed -> List.map (fun cc -> (delayed, cc)) ccs)
      [ false; true ]
  in
  let descs =
    Core.Runner.map ~jobs
      (fun (delayed, cc) ->
        let topo = Core.Paper_net.topology () in
        let paths = Core.Paper_net.tagged_paths ~default:2 topo in
        let spec =
          Core.Scenario.make ~topo ~paths ~cc ~delayed_ack:delayed
            ~duration:(Engine.Time.s 12) ~sampling:(Engine.Time.ms 100) ()
        in
        describe (Core.Scenario.run spec))
      grid
  in
  let tagged = List.combine grid descs in
  List.iter
    (fun delayed ->
      Printf.printf "%s:
" (if delayed then "delayed" else "per-segment");
      List.iter
        (fun ((d, cc), desc) ->
          if d = delayed then
            Printf.printf "  %-6s %s
" (Mptcp.Algorithm.name cc) desc)
        tagged)
    [ false; true ]

let ablation_hol_buffer () =
  hr "Ablation: scheduler under a 64 KB send buffer, asymmetric RTTs";
  let run (policy, reinjection) =
    let b = Netgraph.Topology.builder () in
    let a = Netgraph.Topology.add_node b "a" in
    let fast = Netgraph.Topology.add_node b "fast" in
    let slow = Netgraph.Topology.add_node b "slow" in
    let z = Netgraph.Topology.add_node b "z" in
    let link u v delay =
      ignore
        (Netgraph.Topology.add_link b ~u ~v
           ~capacity_bps:(Netgraph.Topology.mbps 20) ~delay)
    in
    link a fast (Engine.Time.ms 2);
    link fast z (Engine.Time.ms 2);
    link a slow (Engine.Time.ms 50);
    link slow z (Engine.Time.ms 50);
    let topo = Netgraph.Topology.build b in
    let paths =
      Mptcp.Path_manager.tag_paths
        [
          Netgraph.Path.of_names topo [ "a"; "fast"; "z" ];
          Netgraph.Path.of_names topo [ "a"; "slow"; "z" ];
        ]
    in
    let sched = Engine.Sched.create () in
    let net = Netsim.Net.create ~sched ~rng:(Engine.Rng.create 3) topo in
    let src = Tcp.Endpoint.create net ~node:a in
    let dst = Tcp.Endpoint.create net ~node:z in
    let config =
      { Mptcp.Connection.default_config with
        Mptcp.Connection.scheduler = policy;
        send_buffer = Some 65_536;
        reinjection }
    in
    let conn =
      Mptcp.Connection.establish ~net ~src ~dst ~conn:1 ~paths
        ~cc:Mptcp.Algorithm.Lia ~config ()
    in
    Engine.Sched.run ~until:(Engine.Time.s 10) sched;
    ( float_of_int (Mptcp.Connection.delivered_bytes conn) *. 8.0 /. 10.0
      /. 1e6,
      Mptcp.Connection.reinjections conn )
  in
  let cases =
    [ ("minrtt", Mptcp.Scheduler.Min_rtt, false);
      ("roundrobin", Mptcp.Scheduler.Round_robin, false);
      ("roundrobin + reinject", Mptcp.Scheduler.Round_robin, true) ]
  in
  let outcomes =
    Core.Runner.map ~jobs (fun (_, policy, r) -> run (policy, r)) cases
  in
  List.iter2
    (fun (label, _, _) (goodput, reinjected) ->
      Printf.printf "  %-24s goodput %5.1f Mbps%s\n" label goodput
        (if reinjected > 0 then Printf.sprintf " (%d reinjections)" reinjected
         else ""))
    cases outcomes;
  Printf.printf
    "(chunks mapped to the 100 ms path stall the 64 KB data-sequence      window: head-of-line blocking; the default min-RTT scheduler avoids      it)
"

let baseline_single_path () =
  hr "Baseline: single-path TCP on each of the three paths (CUBIC)";
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.paths topo in
  let rates =
    Core.Runner.map ~jobs
      (fun path ->
        let sched = Engine.Sched.create () in
        let rng = Engine.Rng.create 1 in
        let net =
          Netsim.Net.create ~sched ~rng
            ~config:Core.Scenario.default_net_config topo
        in
        Netsim.Net.install_path net ~tag:1 path;
        let src = Tcp.Endpoint.create net ~node:(Netgraph.Path.src path) in
        let dst = Tcp.Endpoint.create net ~node:(Netgraph.Path.dst path) in
        let flow = Tcp.Flow.start ~src ~dst ~tag:1 ~conn:1 () in
        Engine.Sched.run ~until:(Engine.Time.s 8) sched;
        Tcp.Flow.goodput_bps flow ~now:(Engine.Sched.now sched) /. 1e6)
      paths
  in
  List.iteri
    (fun i (path, mbps) ->
      Printf.printf "  path %d alone: %.1f Mbps (bottleneck %d Mbps)\n" (i + 1)
        mbps
        (Netgraph.Path.bottleneck_bps topo path / 1_000_000))
    (List.combine paths rates);
  Printf.printf
    "(MPTCP's 90 Mbps optimum more than doubles the best single path)\n"

let two_connections_fairness () =
  hr "Extension: two MPTCP connections sharing the paper network";
  let run cc =
    let topo = Core.Paper_net.topology () in
    let paths = Core.Paper_net.tagged_paths ~default:2 topo in
    let sched = Engine.Sched.create () in
    let rng = Engine.Rng.create 1 in
    let net =
      Netsim.Net.create ~sched ~rng ~config:Core.Scenario.default_net_config
        topo
    in
    let s_node = Netgraph.Topology.node_id topo "s" in
    let d_node = Netgraph.Topology.node_id topo "d" in
    let src = Tcp.Endpoint.create net ~node:s_node in
    let dst = Tcp.Endpoint.create net ~node:d_node in
    let conns =
      List.map
        (fun id ->
          Mptcp.Connection.establish ~net ~src ~dst ~conn:id ~paths ~cc
            ~rng:(Engine.Rng.split rng)
            ~config:
              { Mptcp.Connection.default_config with
                Mptcp.Connection.start_jitter = Engine.Time.ms 2 }
            ())
        [ 1; 2 ]
    in
    Engine.Sched.run ~until:(Engine.Time.s 20) sched;
    List.map
      (fun c ->
        Mptcp.Connection.total_throughput_bps c
          ~now:(Engine.Sched.now sched)
        /. 1e6)
      conns
  in
  let ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ] in
  let outcomes = Core.Runner.map ~jobs run ccs in
  List.iter2
    (fun cc rates ->
      match rates with
      | [ c1; c2 ] ->
        Printf.printf
          "  %-6s conn1 %5.1f + conn2 %5.1f = %5.1f Mbps (jain %.3f)
"
          (Mptcp.Algorithm.name cc) c1 c2 (c1 +. c2)
          (Measure.Converge.jain_fairness [| c1; c2 |])
      | _ -> ())
    ccs outcomes;
  Printf.printf
    "(the LP optimum is still 90 Mbps; fairness between the two      connections is the new question)
"

(* ------------------------------------------------------------------ *)
(* 3b. Hybrid fluid/packet co-simulation                               *)
(* ------------------------------------------------------------------ *)

(* Background flow classes as fluid fields (lib/fluid/background.ml)
   against the run they abstract: the same flow population simulated
   per-flow at packet fidelity.  Both sides carry four foreground
   MPTCP-CUBIC connections at full packet fidelity on the paper
   network; the background is either one fluid field (one windowed Reno
   class per [classes], aggregating [bg_flows_per_class] flows each) or
   [classes * bg_flows_per_class] individual packet-level Reno senders
   on the same route.  The 20x same-run floor in [gate_check] rides on
   this pair. *)

let bg_flows_per_class = 12
let bg_rtt_s = 0.02
let hybrid_duration = Engine.Time.ms 200

type hybrid_run = {
  hy_wall_s : float;
  hy_fg_mbps : float;  (* four foreground connections, summed *)
  hy_steps : int;
  hy_dormant : int;
}

type hybrid_outcome = {
  ho_floor_classes : int;
  ho_hybrid : hybrid_run;
  ho_packet_wall_s : float;
  ho_packet_fg_mbps : float;
  ho_scaling : (int * hybrid_run) list;
}

let hybrid_setup () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default:2 topo in
  let sched = Engine.Sched.create () in
  let rng = Engine.Rng.create 1 in
  let net =
    Netsim.Net.create ~sched ~rng ~config:Core.Scenario.default_net_config
      topo
  in
  let s_node = Netgraph.Topology.node_id topo "s" in
  let d_node = Netgraph.Topology.node_id topo "d" in
  let src = Tcp.Endpoint.create net ~node:s_node in
  let dst = Tcp.Endpoint.create net ~node:d_node in
  let conns =
    List.map
      (fun id ->
        Mptcp.Connection.establish ~net ~src ~dst ~conn:id ~paths
          ~cc:Mptcp.Algorithm.Cubic
          ~rng:(Engine.Rng.split rng)
          ~config:
            { Mptcp.Connection.default_config with
              Mptcp.Connection.start_jitter = Engine.Time.ms 2 }
          ())
      [ 1; 2; 3; 4 ]
  in
  let bg_path =
    match
      Netgraph.Shortest.shortest_path topo ~src:s_node ~dst:d_node
        ~weight:Netgraph.Shortest.delay_ns
    with
    | Some p -> p
    | None -> assert false
  in
  (topo, sched, net, src, dst, conns, bg_path)

let foreground_mbps sched conns =
  List.fold_left
    (fun acc c ->
      acc
      +. Mptcp.Connection.total_throughput_bps c ~now:(Engine.Sched.now sched)
         /. 1e6)
    0.0 conns

let run_hybrid ~classes () =
  let topo, sched, net, _src, _dst, conns, bg_path = hybrid_setup () in
  let links =
    Array.mapi
      (fun k l ->
        ( l,
          (Netgraph.Topology.link topo l).Netgraph.Topology.u
          = bg_path.Netgraph.Path.nodes.(k) ))
      bg_path.Netgraph.Path.links
  in
  let decls =
    Array.init classes (fun i ->
        let frac =
          if classes = 1 then 0.5
          else float_of_int i /. float_of_int (classes - 1)
        in
        { Fluid.Background.Driver.links;
          flows = bg_flows_per_class;
          kind = Some Fluid.Controller.Reno;
          flow_rate_bps = 0;
          rtt_s = bg_rtt_s *. (0.85 +. (0.3 *. frac));
          start_s = 0.0 })
  in
  (* Clean heap per measurement: without this, major-GC slices
     collecting the previous run's garbage land in the next timing. *)
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let d =
    Fluid.Background.Driver.attach ~sched ~net ~tick:(Engine.Time.ms 1)
      ~until:hybrid_duration decls
  in
  Engine.Sched.run ~until:hybrid_duration sched;
  let wall = Unix.gettimeofday () -. t0 in
  let f = Fluid.Background.Driver.field d in
  { hy_wall_s = wall;
    hy_fg_mbps = foreground_mbps sched conns;
    hy_steps = Fluid.Background.ode_steps f;
    hy_dormant = Fluid.Background.dormant_ticks f }

let run_packet_equivalent ~classes () =
  let _topo, sched, net, src, dst, conns, bg_path = hybrid_setup () in
  Netsim.Net.install_path net ~tag:100 bg_path;
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let flows =
    List.init (classes * bg_flows_per_class) (fun i ->
        Tcp.Flow.start ~src ~dst ~tag:100 ~conn:(1000 + i)
          ~cc:Tcp.Cc_reno.factory ())
  in
  Engine.Sched.run ~until:hybrid_duration sched;
  let wall = Unix.gettimeofday () -. t0 in
  ignore flows;
  (wall, foreground_mbps sched conns)

let hybrid_phase () =
  hr "Hybrid: fluid background classes vs all-packet equivalent";
  (* Scaling sweep first, while the heap is small: the 10^5/10^6 rows
     allocate hundreds of MB and would otherwise measure page churn
     left behind by the packet-equivalent run below. *)
  Printf.printf "  class-count scaling (windowed Reno x %d flows, 200 ms, 4 \
                 CUBIC foreground connections):\n"
    bg_flows_per_class;
  let scales =
    if quick && not perf_only then [ 1_000; 10_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let scaling =
    List.map
      (fun n ->
        let r = run_hybrid ~classes:n () in
        Printf.printf
          "    %8d classes  %8.3f s wall  %6d ODE steps  %4d dormant ticks  \
           fg %.1f Mbps\n"
          n r.hy_wall_s r.hy_steps r.hy_dormant r.hy_fg_mbps;
        (n, r))
      scales
  in
  let floor_classes = if quick && not perf_only then 2_000 else 10_000 in
  Printf.printf
    "  same-run floor pair: %d classes x %d flows, fluid field vs per-flow \
     packet TCP:\n"
    floor_classes bg_flows_per_class;
  let h = run_hybrid ~classes:floor_classes () in
  Printf.printf
    "    hybrid fluid field %8.3f s wall  (%d ODE steps, %d dormant ticks, \
     fg %.1f Mbps)\n"
    h.hy_wall_s h.hy_steps h.hy_dormant h.hy_fg_mbps;
  let pk_wall, pk_fg = run_packet_equivalent ~classes:floor_classes () in
  Printf.printf
    "    all-packet (%d TCP flows) %8.3f s wall  (fg %.1f Mbps)\n"
    (floor_classes * bg_flows_per_class)
    pk_wall pk_fg;
  Printf.printf "    speedup %.0fx (gate floor 20x)\n" (pk_wall /. h.hy_wall_s);
  { ho_floor_classes = floor_classes;
    ho_hybrid = h;
    ho_packet_wall_s = pk_wall;
    ho_packet_fg_mbps = pk_fg;
    ho_scaling = scaling }

(* ------------------------------------------------------------------ *)
(* 3b. Resident daemon: cold process vs warm daemon                    *)
(* ------------------------------------------------------------------ *)

(* The daemon's reason to exist is amortisation: a cold `serve` process
   pays store open + domain-pool spawn + batch dispatch on every
   submission, the resident daemon pays a socket round-trip into an
   already-warm pool.  Both sides run the same fully-cached one-entry
   batch (populated once up front), so simulation cost is out of the
   picture and the distributions compare pure submission latency. *)

type daemon_result = {
  dm_submissions : int;
  dm_cold_p50_ms : float;
  dm_cold_p99_ms : float;
  dm_warm_p50_ms : float;
  dm_warm_p99_ms : float;
}

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let daemon_batch_text =
  "(preset (label bench-daemon) (cc cubic) (seed 7) (duration-s 0.5) \
   (sampling-ms 100))"

let daemon_phase () =
  hr "Daemon: cold-process vs warm-daemon submission latency";
  let store_dir = "_bench_daemon_store" and socket = "_bench_daemon.sock" in
  rm_rf store_dir;
  rm_rf socket;
  let entries () =
    Serve.Batch.of_sexps ~base_dir:(Sys.getcwd ())
      (Events.Sexp.parse_string daemon_batch_text)
  in
  (* Populate the store once: every timed submission below is a hit. *)
  let store = Serve.Store.open_store ~dir:store_dir in
  ignore (Serve.Service.run_batch ~jobs:1 ~store (entries ()));
  let submissions = if quick then 20 else 60 in
  let pool_domains = min 2 jobs in
  (* Cold side: everything a fresh process pays per submission once it
     must be *ready to simulate* — store open, pool spawn, parse, hash,
     lookup, pool shutdown — minus only fork/exec itself. *)
  let cold =
    Array.init submissions (fun _ ->
        let t0 = Unix.gettimeofday () in
        let store = Serve.Store.open_store ~dir:store_dir in
        let pool = Engine.Pool.create ~domains:pool_domains () in
        let _, stats = Serve.Service.run_batch ~pool ~store (entries ()) in
        Engine.Pool.shutdown pool;
        assert (stats.Serve.Service.fresh = 0);
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  (* Warm side: one resident daemon, one client process per submission
     (connect, framed request, framed reply, close — `call_once` is
     exactly the CLI `submit` path). *)
  let conf =
    {
      (Daemon.default_conf ~socket_path:socket ~store_dir) with
      Daemon.jobs = Some pool_domains;
      log = false;
    }
  in
  let d = Daemon.start conf in
  let server = Thread.create Daemon.serve d in
  let request = Daemon.Protocol.Submit (Events.Sexp.parse_string daemon_batch_text) in
  let warm =
    Array.init submissions (fun _ ->
        let t0 = Unix.gettimeofday () in
        (match Daemon.Protocol.call_once ~socket request with
        | Daemon.Protocol.Batch b -> assert (b.Daemon.Protocol.fresh = 0)
        | _ -> failwith "daemon bench: unexpected reply");
        (Unix.gettimeofday () -. t0) *. 1e3)
  in
  ignore (Daemon.handle d Daemon.Protocol.Drain);
  Thread.join server;
  rm_rf store_dir;
  let p a p = Measure.Stats.percentile a ~p in
  let r =
    {
      dm_submissions = submissions;
      dm_cold_p50_ms = p cold 50.;
      dm_cold_p99_ms = p cold 99.;
      dm_warm_p50_ms = p warm 50.;
      dm_warm_p99_ms = p warm 99.;
    }
  in
  Printf.printf
    "  %d cached submissions each way (batch of 1, %d-domain pool):\n"
    submissions pool_domains;
  Printf.printf "    cold process   p50 %8.3f ms   p99 %8.3f ms\n"
    r.dm_cold_p50_ms r.dm_cold_p99_ms;
  Printf.printf "    warm daemon    p50 %8.3f ms   p99 %8.3f ms\n"
    r.dm_warm_p50_ms r.dm_warm_p99_ms;
  Printf.printf "    p50 speedup %.1fx\n"
    (r.dm_cold_p50_ms /. Float.max 1e-6 r.dm_warm_p50_ms);
  r

(* ------------------------------------------------------------------ *)
(* 4. Bechamel micro-benchmarks                                        *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* Keys are microsecond-spaced, like the simulation's real timers
   (RTTs are milliseconds, events microseconds apart).  The old
   [i * 7919 mod 1000] keys packed all 1000 entries into a nanosecond
   range — a single wheel slot — which benchmarks the degenerate dense
   case instead of the structure; that case keeps its own entry below. *)
let bench_heap =
  Test.make ~name:"heap push+pop 1k"
    (Staged.stage @@ fun () ->
     let h = Engine.Heap.create () in
     for i = 0 to 999 do
       Engine.Heap.push h ~key:(Engine.Time.us (i * 7919 mod 1000)) ~tie:i i
     done;
     while not (Engine.Heap.is_empty h) do
       ignore (Engine.Heap.pop h)
     done)

let bench_heap_compact =
  Test.make ~name:"heap push+compact 1k"
    (Staged.stage @@ fun () ->
     let h = Engine.Heap.create () in
     for i = 0 to 999 do
       Engine.Heap.push h ~key:(i * 7919 mod 1000) ~tie:i i
     done;
     Engine.Heap.compact h ~keep:(fun ~tie:_ v -> v land 7 = 0);
     while not (Engine.Heap.is_empty h) do
       ignore (Engine.Heap.pop h)
     done)

let bench_wheel =
  (* Mirror of [bench_heap]: same keys, same drain — the structural
     speedup of the timing wheel read off directly. *)
  Test.make ~name:"wheel push+pop 1k"
    (Staged.stage @@ fun () ->
     let w = Engine.Wheel.create () in
     for i = 0 to 999 do
       ignore
         (Engine.Wheel.push w ~key:(Engine.Time.us (i * 7919 mod 1000)) ~tie:i
            i)
     done;
     while not (Engine.Wheel.is_empty w) do
       ignore (Engine.Wheel.pop_exn w)
     done)

let bench_wheel_dense =
  (* Worst case: every key inside one level-0 granule, so pops lean
     entirely on the sorted-slot path (heapsort over the full slot).
     Held to stay within the heap's ballpark, not to beat it. *)
  Test.make ~name:"wheel push+pop 1k dense slot"
    (Staged.stage @@ fun () ->
     let w = Engine.Wheel.create () in
     for i = 0 to 999 do
       ignore (Engine.Wheel.push w ~key:(i * 7919 mod 1000) ~tie:i i)
     done;
     while not (Engine.Wheel.is_empty w) do
       ignore (Engine.Wheel.pop_exn w)
     done)

(* Insert/cancel and expiry cost against a standing population of
   pending timers (the regime where a heap's log n shows): [n] backdrop
   timers parked far in the future, then 1k operations per run.

   The backdrop is built lazily on the test's first run and at most one
   is alive at a time — a 100k-cell wheel held live across the whole
   suite would tax every allocation-heavy benchmark after it with GC
   marking work and skew their numbers. *)
let wheel_fixture : (int * int Engine.Wheel.t) option ref = ref None

let wheel_with_pending n =
  match !wheel_fixture with
  | Some (m, w) when m = n -> w
  | _ ->
    let w = Engine.Wheel.create () in
    let far = 1 lsl 41 in
    for i = 0 to n - 1 do
      ignore (Engine.Wheel.push w ~key:(far + (i * 104729)) ~tie:i i : int)
    done;
    wheel_fixture := Some (n, w);
    w

let bench_wheel_churn n =
  Test.make ~name:(Printf.sprintf "wheel insert+cancel 1k @%dk pending" (n / 1000))
    (Staged.stage @@ fun () ->
     let w = wheel_with_pending n in
     let handles = Array.make 1000 (-1) in
     for i = 0 to 999 do
       handles.(i) <-
         Engine.Wheel.push w ~key:(i * 7919 mod 100_000) ~tie:(n + i) i
     done;
     for i = 0 to 999 do
       Engine.Wheel.cancel w handles.(i)
     done)

let bench_wheel_expire n =
  Test.make ~name:(Printf.sprintf "wheel expire 1k @%dk pending" (n / 1000))
    (Staged.stage @@ fun () ->
     let w = wheel_with_pending n in
     (* Near-future inserts relative to the wheel's moving position,
        then drain them past the backdrop — steady-state expiry. *)
     let base = Engine.Wheel.now w + 1 in
     for i = 0 to 999 do
       ignore (Engine.Wheel.push w ~key:(base + (i * 7919 mod 100_000)) ~tie:i i : int)
     done;
     for _ = 0 to 999 do
       ignore (Engine.Wheel.pop_exn w)
     done)

let bench_scoreboard =
  (* The SACK hot loop: append a window of segments, SACK-mark every
     other one (binary search + flag flip), then cumulatively ACK the
     lot off the front. *)
  Test.make ~name:"scoreboard mark/ack 1k segs"
    (Staged.stage @@ fun () ->
     let sb = Tcp.Scoreboard.create () in
     let mss = 1448 in
     for i = 0 to 999 do
       ignore (Tcp.Scoreboard.append sb ~seq:(i * mss) ~len:mss ~dss:None : int)
     done;
     for i = 0 to 499 do
       let lb = Tcp.Scoreboard.lower_bound sb (((2 * i) + 1) * mss) in
       ignore (Tcp.Scoreboard.mark_sacked sb (Tcp.Scoreboard.idx sb lb) : bool)
     done;
     while not (Tcp.Scoreboard.is_empty sb) do
       Tcp.Scoreboard.pop_front sb
     done)

let bench_sched =
  Test.make ~name:"sched 1k events"
    (Staged.stage @@ fun () ->
     let s = Engine.Sched.create () in
     for i = 1 to 1000 do
       ignore (Engine.Sched.at s (Engine.Time.us i) (fun () -> ()))
     done;
     Engine.Sched.run s)

let bench_sched_cancel =
  (* The retransmit-timer pattern: almost everything scheduled is
     cancelled before it fires; compaction keeps the queue at the live
     population. *)
  Test.make ~name:"sched 1k events, 90% cancelled"
    (Staged.stage @@ fun () ->
     let s = Engine.Sched.create () in
     let timers =
       List.init 1000 (fun i ->
           Engine.Sched.at s (Engine.Time.us (i + 1)) (fun () -> ()))
     in
     List.iteri
       (fun i tm -> if i mod 10 <> 0 then Engine.Sched.cancel tm)
       timers;
     Engine.Sched.run s)

let bench_pool =
  Test.make ~name:"pool map 8 jobs (2 domains)"
    (Staged.stage @@ fun () ->
     ignore
       (Engine.Pool.map ~domains:2
          (fun i ->
            let acc = ref 0 in
            for j = 0 to 9_999 do acc := !acc + ((i + j) land 1023) done;
            !acc)
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]))

let bench_simplex =
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  let b = [| 40.; 60.; 80. |] in
  let c = [| 1.; 1.; 1. |] in
  Test.make ~name:"simplex paper LP"
    (Staged.stage @@ fun () -> ignore (Lp.Simplex.solve ~c ~a ~b))

let bench_cc name factory =
  Test.make ~name
    (Staged.stage @@ fun () ->
     let cwnd = ref 10.0 and ssthresh = ref 1e9 in
     let now = ref 0.0 in
     let g = Tcp.Cc.group_create 3 in
     Array.iteri
       (fun i w ->
         g.Tcp.Cc.cwnds.(i) <- w;
         g.Tcp.Cc.srtts.(i) <- 0.01;
         g.Tcp.Cc.loss_intervals.(i) <- 100_000.0;
         Tcp.Cc.group_set_established g i true)
       [| 10.0; 20.0; 30.0 |];
     let group () =
       g.Tcp.Cc.cwnds.(0) <- !cwnd;
       g
     in
     let ctx =
       {
         Tcp.Cc.now_s = (fun () -> !now);
         mss = Packet.default_mss;
         get_cwnd = (fun () -> !cwnd);
         set_cwnd = (fun w -> cwnd := w);
         get_ssthresh = (fun () -> !ssthresh);
         set_ssthresh = (fun w -> ssthresh := w);
         srtt_s = (fun () -> 0.01);
         group;
         self_index = (fun () -> 0);
       }
     in
     let cc = factory ctx in
     for i = 1 to 1000 do
       now := float_of_int i *. 0.001;
       cc.Tcp.Cc.on_ack ~acked:Packet.default_mss;
       if i mod 100 = 0 then cc.Tcp.Cc.on_loss ()
     done)

let bench_reassembly =
  Test.make ~name:"reassembly 1k shuffled"
    (Staged.stage @@ fun () ->
     let r = Mptcp.Reassembly.create () in
     for i = 0 to 999 do
       let j = i * 769 mod 1000 in
       Mptcp.Reassembly.insert r ~dseq:(j * 1448) ~len:1448
     done)

let bench_paper_sim =
  Test.make ~name:"paper sim 200ms (CUBIC)"
    (Staged.stage @@ fun () ->
     let topo = Core.Paper_net.topology () in
     let paths = Core.Paper_net.tagged_paths ~default:2 topo in
     let spec =
       Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
         ~duration:(Engine.Time.ms 200) ~sampling:(Engine.Time.ms 100) ()
     in
     ignore (Core.Scenario.run spec))

(* The fluid analogue of [bench_paper_sim]: compile the paper topology
   into the ODE model and solve for the equilibrium, end to end.  The
   gate holds the CUBIC entry to >= 100x faster than the packet sim
   measured in the same run. *)
let bench_fluid name controller =
  Test.make ~name
    (Staged.stage @@ fun () ->
     let topo = Core.Paper_net.topology () in
     let paths = Core.Paper_net.paths topo in
     let m = Fluid.Model.compile topo ~paths ~controller () in
     ignore (Fluid.Equilibrium.solve m ()))

let fluid_key = "fluid equilibrium paper (CUBIC)"

let microbench () =
  hr "Bechamel micro-benchmarks (ns per run, OLS on the monotonic clock)";
  let tests =
    [
      bench_heap; bench_heap_compact; bench_wheel; bench_wheel_dense;
      bench_scoreboard;
      bench_sched; bench_sched_cancel;
      bench_pool; bench_simplex;
      bench_cc "cubic 1k acks" Tcp.Cc_cubic.factory;
      bench_cc "lia 1k acks" Mptcp.Cc_lia.factory;
      bench_cc "olia 1k acks" Mptcp.Cc_olia.factory;
      bench_reassembly; bench_paper_sim;
      bench_fluid fluid_key Fluid.Controller.Cubic;
      bench_fluid "fluid equilibrium paper (LIA)" Fluid.Controller.Lia;
      bench_fluid "fluid equilibrium paper (OLIA)" Fluid.Controller.Olia;
      (* Standing-population wheel benches last: their lazily built
         backdrop (up to 100k live cells) must not sit on the major heap
         while the allocation-sensitive benches above run. *)
      bench_wheel_churn 1_000; bench_wheel_churn 10_000;
      bench_wheel_churn 100_000; bench_wheel_expire 1_000;
      bench_wheel_expire 10_000; bench_wheel_expire 100_000;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  (* Quick mode trims the per-bench quota for CI turnaround — except
     under --gate, where the estimates feed pass/fail floors: the 0.2 s
     quota's OLS is too noisy to gate on (the wheel push+pop estimate
     jittered 88-230 us run to run on the 1-core box; at 0.5 s it holds
     within a few percent). *)
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if quick && not gate then 0.2 else 0.5))
      ~stabilize:false ()
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some (t :: _) ->
            estimates := (Test.Elt.name elt, t) :: !estimates;
            Printf.printf "  %-32s %12.0f ns/run\n" (Test.Elt.name elt) t
          | Some [] | None ->
            Printf.printf "  %-32s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests;
  let estimates = List.rev !estimates in
  (* The fluid engine's reason to exist: equilibria in microseconds
     where the packet sim takes milliseconds.  Both sides are measured
     in this same run, so the ratio is machine-independent. *)
  (match
     ( List.assoc_opt "paper sim 200ms (CUBIC)" estimates,
       List.assoc_opt fluid_key estimates )
   with
  | Some sim_ns, Some fluid_ns when fluid_ns > 0.0 ->
    Printf.printf
      "  fluid speedup: paper equilibrium in %.0f ns vs %.0f ns packet sim \
       = %.0fx faster\n"
      fluid_ns sim_ns (sim_ns /. fluid_ns)
  | _ -> ());
  estimates

(* ------------------------------------------------------------------ *)
(* 5. Invariant audit sweep (opt-in via --audit)                       *)
(* ------------------------------------------------------------------ *)

(* The paper-figure grid (congestion control x default path) re-run
   with the runtime invariant checker attached.  Not part of the default
   output so the golden CLI expectations stay byte-identical. *)
let audit_sweep () =
  hr "invariant audit: cc x default path with the checker enabled";
  let ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ] in
  let grid =
    List.concat_map (fun cc -> List.map (fun d -> (cc, d)) [ 1; 2; 3 ]) ccs
  in
  let duration = Engine.Time.s (if quick then 2 else 4) in
  let specs =
    List.map
      (fun (cc, default) ->
        let topo = Core.Paper_net.topology () in
        let paths = Core.Paper_net.tagged_paths ~default topo in
        Core.Scenario.make ~topo ~paths ~cc ~duration
          ~sampling:(Engine.Time.ms 100) ~audit:true ())
      grid
  in
  let results = Core.Runner.scenarios ~jobs specs in
  let failures = ref 0 in
  List.iter2
    (fun (cc, default) r ->
      match r.Core.Scenario.audit with
      | None -> assert false
      | Some rep ->
        Printf.printf "  %-6s default=%d: %d violations over %d checks\n"
          (Mptcp.Algorithm.name cc) default rep.Audit.total_violations
          rep.Audit.checks;
        if rep.Audit.total_violations > 0 then begin
          incr failures;
          print_string (Format.asprintf "%a@." Audit.pp_report rep)
        end)
    grid results;
  if !failures = 0 then
    Printf.printf "all %d audited runs clean\n" (List.length grid)
  else Printf.printf "AUDIT FAILURES in %d of %d runs\n" !failures
      (List.length grid)

(* ------------------------------------------------------------------ *)
(* 6. Allocation profile and regression gate                           *)
(* ------------------------------------------------------------------ *)

type alloc_profile = {
  a_packets : int;
  a_allocated_words : float;
  a_words_per_packet : float;
  a_minor_collections : int;
  a_major_collections : int;
  a_promoted_words : float;
  a_pool_acquired : int;
  a_pool_recycled : int;
  a_wall_s : float;
}

(* One paper-figure simulation bracketed by GC counters: the
   steady-state allocation cost per simulated packet, the number the
   freelist/ring work exists to keep flat.  A warm-up run populates the
   freelist and code caches first. *)
let alloc_profile () =
  hr "allocation profile: paper sim (CUBIC), GC-counter bracketed";
  let make_spec () =
    let topo = Core.Paper_net.topology () in
    let paths = Core.Paper_net.tagged_paths ~default:2 topo in
    Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
      ~duration:(Engine.Time.s (if quick then 1 else 4))
      ~sampling:(Engine.Time.ms 100) ()
  in
  ignore (Core.Scenario.run (make_spec ()));
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let c0 = Engine.Gctune.counters () in
  let r = Core.Scenario.run (make_spec ()) in
  let c1 = Engine.Gctune.counters () in
  let wall = Unix.gettimeofday () -. t0 in
  let d = Engine.Gctune.diff c0 c1 in
  let words = Engine.Gctune.allocated_words d in
  let packets = r.Core.Scenario.packets_created in
  let pool = r.Core.Scenario.pool_stats in
  let profile =
    {
      a_packets = packets;
      a_allocated_words = words;
      a_words_per_packet =
        (if packets > 0 then words /. float_of_int packets else 0.0);
      a_minor_collections = d.Engine.Gctune.minor_collections;
      a_major_collections = d.Engine.Gctune.major_collections;
      a_promoted_words = d.Engine.Gctune.promoted_words;
      a_pool_acquired = pool.Packet.Pool.acquired;
      a_pool_recycled = pool.Packet.Pool.recycled;
      a_wall_s = wall;
    }
  in
  Printf.printf "  packets simulated     %12d\n" profile.a_packets;
  Printf.printf "  events processed      %12d (%.1f words/event)\n"
    r.Core.Scenario.events_processed
    (if r.Core.Scenario.events_processed > 0 then
       words /. float_of_int r.Core.Scenario.events_processed
     else 0.0);
  Printf.printf "  allocated words       %12.0f\n" profile.a_allocated_words;
  Printf.printf "  words per packet      %12.1f\n" profile.a_words_per_packet;
  Printf.printf "  minor collections     %12d\n" profile.a_minor_collections;
  Printf.printf "  major collections     %12d\n" profile.a_major_collections;
  Printf.printf "  promoted words        %12.0f\n" profile.a_promoted_words;
  Printf.printf "  pool acquired         %12d\n" profile.a_pool_acquired;
  Printf.printf "  pool recycled         %12d (%.1f%% of acquires)\n"
    profile.a_pool_recycled
    (if profile.a_pool_acquired > 0 then
       100.0 *. float_of_int profile.a_pool_recycled
       /. float_of_int profile.a_pool_acquired
     else 0.0);
  Printf.printf "  wall %.3f s\n" profile.a_wall_s;
  profile

(* Minimal JSON number extraction for the gate: finds ["key": <num>] in
   the baseline file.  Good enough for the flat structure
   write_bench_json emits; no dependency needed. *)
let json_number content key =
  let needle = "\"" ^ key ^ "\"" in
  let nl = String.length needle and hl = String.length content in
  let rec find i =
    if i + nl > hl then None
    else if String.sub content i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
    let j = ref j in
    while
      !j < hl && (content.[!j] = ':' || content.[!j] = ' ')
    do incr j done;
    let start = !j in
    while
      !j < hl
      && (match content.[!j] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do incr j done;
    if !j = start then None
    else float_of_string_opt (String.sub content start (!j - start))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gate_check ~microbench_ns ~alloc ~hybrid =
  hr "perf gate";
  if not (Sys.file_exists baseline_path) then begin
    Printf.eprintf "[gate] baseline %s not found\n" baseline_path;
    exit 1
  end;
  let base = read_file baseline_path in
  let failures = ref [] in
  let check name current baseline =
    match baseline with
    | None ->
      Printf.printf "  %-34s current %12.1f (no baseline, skipped)\n" name
        current
    | Some b when b <= 0.0 ->
      Printf.printf "  %-34s current %12.1f (zero baseline, skipped)\n" name
        current
    | Some b ->
      let ratio = current /. b in
      Printf.printf "  %-34s current %12.1f baseline %12.1f ratio %.3f%s\n"
        name current b ratio
        (if ratio > gate_tolerance then "  REGRESSION" else "");
      if ratio > gate_tolerance then failures := name :: !failures
  in
  let sim_key = "paper sim 200ms (CUBIC)" in
  (match List.assoc_opt sim_key microbench_ns with
  | Some ns -> check (sim_key ^ " ns/run") ns (json_number base sim_key)
  | None -> Printf.printf "  %s missing from this run, skipped\n" sim_key);
  (match List.assoc_opt fluid_key microbench_ns with
  | Some ns -> check (fluid_key ^ " ns/run") ns (json_number base fluid_key)
  | None -> Printf.printf "  %s missing from this run, skipped\n" fluid_key);
  (* Absolute floor, not a baseline ratio: the fluid solve must stay
     >= 50x faster than the packet sim measured in this same run.  The
     floor was 100x in the heap era; the round-2 wheel/scoreboard work
     sped the packet sim (the denominator) ~1.5x with the solver
     untouched, so ~80x is the new steady state. *)
  (match
     (List.assoc_opt sim_key microbench_ns, List.assoc_opt fluid_key
        microbench_ns)
   with
  | Some sim_ns, Some fluid_ns when fluid_ns > 0.0 ->
    let speedup = sim_ns /. fluid_ns in
    Printf.printf "  %-34s %12.0fx (floor 50x)%s\n" "fluid speedup vs sim"
      speedup
      (if speedup < 50.0 then "  REGRESSION" else "");
    if speedup < 50.0 then failures := "fluid speedup vs sim" :: !failures
  | _ -> ());
  check "alloc words_per_packet" alloc.a_words_per_packet
    (json_number base "words_per_packet");
  (* Round-2 structural floors.  Every floor is *same-run* relative or
     a deterministic counter: absolute wall-clock floors against the
     heap-era seed numbers proved un-gateable on the 1-core reference
     box (the identical binary measured sched 1k events anywhere from
     102 to 186 us depending on background load, around a min-of-N
     truth of ~77 us vs the 153 us seed).  The measured vs-seed wins
     are recorded in doc/PERFORMANCE.md "round 2" instead; what is
     enforced here cannot be washed out by load because both sides of
     every comparison ran moments apart in this process. *)
  let floor_check name current limit =
    Printf.printf "  %-34s current %12.1f floor %12.1f%s\n" name current
      limit
      (if current > limit then "  REGRESSION" else "");
    if current > limit then failures := name :: !failures
  in
  (* Load-immune structural check: heap and wheel run the same keys in
     the same process moments apart, so background noise cancels.  The
     wheel must beat the heap outright on realistic (us-spaced) keys —
     measured ~2x; 1.0 is the floor, not the target. *)
  (match
     ( List.assoc_opt "wheel push+pop 1k" microbench_ns,
       List.assoc_opt "heap push+pop 1k" microbench_ns )
   with
  | Some wheel_ns, Some heap_ns when heap_ns > 0.0 ->
    floor_check "wheel <= heap push+pop (same run)" wheel_ns heap_ns
  | _ -> ());
  (* Floor 110: the quick scenario amortises its fixed per-run
     allocations over fewer packets than the full one (measured 101
     quick vs 95 full on the current reference box, up from the 84 the
     heap-era box measured — the counter is deterministic per build
     environment, not across them). *)
  floor_check "alloc words_per_packet < 110" alloc.a_words_per_packet 110.0;
  (* OLIA's per-ack formula is ~3n float divisions (rate sum, quality
     pass, coupled term) against CUBIC's division-free cubic update, so
     a small constant multiple of CUBIC is the honest steady state;
     measured 2.2-2.9x after the flat-pass rewrite (down from ~7x). *)
  (match
     ( List.assoc_opt "olia 1k acks" microbench_ns,
       List.assoc_opt "cubic 1k acks" microbench_ns )
   with
  | Some olia_ns, Some cubic_ns when cubic_ns > 0.0 ->
    floor_check "olia 1k acks <= 3.5x cubic (same run)" olia_ns
      (3.5 *. cubic_ns)
  | _ -> ());
  (* The hybrid co-simulation's reason to exist, enforced same-run: the
     fluid background field must be >= 20x cheaper than simulating the
     identical flow population packet by packet (both measurements from
     this process, moments apart, foreground identical on both sides). *)
  floor_check "hybrid <= packet/20 ms (same run)"
    (hybrid.ho_hybrid.hy_wall_s *. 1e3)
    (hybrid.ho_packet_wall_s /. 20.0 *. 1e3);
  if !failures = [] then
    Printf.printf "  gate passed (tolerance %.0f%%, baseline %s)\n"
      ((gate_tolerance -. 1.0) *. 100.0)
      baseline_path
  else begin
    Printf.printf "  GATE FAILED: %s regressed >%.0f%% vs %s\n"
      (String.concat ", " (List.rev !failures))
      ((gate_tolerance -. 1.0) *. 100.0)
      baseline_path;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* 7. Machine-readable results                                         *)
(* ------------------------------------------------------------------ *)

let write_bench_json ~microbench_ns ~alloc ~hybrid ~daemon ~total_s =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": 1,\n";
  add "  \"quick\": %b,\n" quick;
  add "  \"jobs\": %d,\n" jobs;
  add "  \"jobs_source\": \"%s\",\n" jobs_source;
  add "  \"cpu_count\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"recommended_domains\": %d,\n" (Core.Runner.default_jobs ());
  add "  \"wall_clock_s\": {\n";
  let phases = List.rev !phase_times in
  List.iter
    (fun (name, dt) -> add "    \"%s\": %.3f,\n" name dt)
    phases;
  add "    \"total\": %.3f\n" total_s;
  add "  },\n";
  add "  \"alloc\": {\n";
  add "    \"packets\": %d,\n" alloc.a_packets;
  add "    \"allocated_words\": %.0f,\n" alloc.a_allocated_words;
  add "    \"words_per_packet\": %.2f,\n" alloc.a_words_per_packet;
  add "    \"minor_collections\": %d,\n" alloc.a_minor_collections;
  add "    \"major_collections\": %d,\n" alloc.a_major_collections;
  add "    \"promoted_words\": %.0f,\n" alloc.a_promoted_words;
  add "    \"pool_acquired\": %d,\n" alloc.a_pool_acquired;
  add "    \"pool_recycled\": %d,\n" alloc.a_pool_recycled;
  add "    \"wall_s\": %.3f\n" alloc.a_wall_s;
  add "  },\n";
  add "  \"hybrid\": {\n";
  add "    \"floor_classes\": %d,\n" hybrid.ho_floor_classes;
  add "    \"flows_per_class\": %d,\n" bg_flows_per_class;
  add "    \"hybrid_wall_s\": %.3f,\n" hybrid.ho_hybrid.hy_wall_s;
  add "    \"packet_wall_s\": %.3f,\n" hybrid.ho_packet_wall_s;
  add "    \"speedup\": %.1f,\n"
    (hybrid.ho_packet_wall_s /. hybrid.ho_hybrid.hy_wall_s);
  add "    \"hybrid_foreground_mbps\": %.1f,\n" hybrid.ho_hybrid.hy_fg_mbps;
  add "    \"packet_foreground_mbps\": %.1f,\n" hybrid.ho_packet_fg_mbps;
  add "    \"scaling\": [\n";
  let ns = List.length hybrid.ho_scaling in
  List.iteri
    (fun i (n, r) ->
      add
        "      {\"classes\": %d, \"wall_s\": %.3f, \"ode_steps\": %d, \
         \"dormant_ticks\": %d, \"foreground_mbps\": %.1f}%s\n"
        n r.hy_wall_s r.hy_steps r.hy_dormant r.hy_fg_mbps
        (if i = ns - 1 then "" else ","))
    hybrid.ho_scaling;
  add "    ]\n";
  add "  },\n";
  add "  \"daemon\": {\n";
  add "    \"submissions\": %d,\n" daemon.dm_submissions;
  add "    \"cold_p50_ms\": %.3f,\n" daemon.dm_cold_p50_ms;
  add "    \"cold_p99_ms\": %.3f,\n" daemon.dm_cold_p99_ms;
  add "    \"warm_p50_ms\": %.3f,\n" daemon.dm_warm_p50_ms;
  add "    \"warm_p99_ms\": %.3f\n" daemon.dm_warm_p99_ms;
  add "  },\n";
  add "  \"microbench_ns\": {\n";
  let n = List.length microbench_ns in
  List.iteri
    (fun i (name, ns) ->
      add "    \"%s\": %.1f%s\n" name ns (if i = n - 1 then "" else ","))
    microbench_ns;
  if profile then begin
    add "  },\n";
    add "  \"profile\": {\n";
    let pps = List.rev !phase_profiles in
    let np = List.length pps in
    List.iteri
      (fun i p ->
        let workers =
          String.concat ", "
            (Array.to_list
               (Array.map
                  (fun w ->
                    Printf.sprintf "{\"jobs\": %d, \"busy_s\": %.3f}"
                      w.Engine.Pool.jobs w.Engine.Pool.busy_s)
                  p.p_workers))
        in
        add
          "    \"%s\": {\"wall_s\": %.3f, \"pools\": %d, \"speedup\": %.2f, \
           \"workers\": [%s]}%s\n"
          p.p_name p.p_wall p.p_pools (phase_speedup p) workers
          (if i = np - 1 then "" else ","))
      pps;
    add "  }\n"
  end
  else add "  }\n";
  add "}\n";
  write_text_file ~path:bench_json (Buffer.contents buf);
  Printf.printf "[json] wrote %s\n" bench_json

let () =
  Engine.Gctune.tune ();
  Printf.printf
    "MPTCP overlapping-paths reproduction - benchmark harness%s (jobs=%d)\n"
    (if quick then " (quick mode)" else "")
    jobs;
  if alloc_only then begin
    ignore (alloc_profile ());
    exit 0
  end;
  if perf_only then begin
    ignore (hybrid_phase ());
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  timed "figures" figures;
  timed "table1" table1;
  timed "ablation_buffers" ablation_buffers;
  timed "ablation_qdisc" ablation_qdisc;
  timed "ablation_scheduler" ablation_scheduler;
  timed "ablation_delayed_ack" ablation_delayed_ack;
  timed "ablation_hol_buffer" ablation_hol_buffer;
  timed "baseline_single_path" baseline_single_path;
  timed "scaling" scaling_experiment;
  timed "two_connections" two_connections_fairness;
  let hybrid = timed "hybrid" hybrid_phase in
  let daemon = timed "daemon" daemon_phase in
  if audit then timed "audit_sweep" audit_sweep;
  let alloc = timed "alloc_profile" alloc_profile in
  let microbench_ns = timed "microbench" microbench in
  if profile then print_profile ();
  write_bench_json ~microbench_ns ~alloc ~hybrid ~daemon
    ~total_s:(Unix.gettimeofday () -. t0);
  if gate then gate_check ~microbench_ns ~alloc ~hybrid;
  hr "done"
