(* Min-of-N profiler for the wheel/sched/CC hot paths.

   The bechamel harness (bench/main.exe) does OLS over sampled runs,
   which is the right tool for the committed baseline but wanders
   +-50% on a loaded 1-core box.  For iterating on an optimisation the
   minimum over many short repetitions is the robust statistic — the
   fastest observed run is the one with the least interference — so
   this binary reports min-of-60 x 20 inner iterations per case.
   Expect bechamel numbers to read ~1.3-1.5x higher than these.

   Run with: dune exec bench/scratch.exe *)

let time_min ~reps ~inner f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to inner do f () done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int inner in
    if dt < !best then best := dt
  done;
  !best *. 1e9

let report name ns = Printf.printf "%-40s %10.0f ns\n%!" name ns

let () =
  let reps = 60 and inner = 20 in
  report "heap push+pop 1k (us keys)"
    (time_min ~reps ~inner (fun () ->
         let h = Engine.Heap.create () in
         for i = 1 to 1000 do
           Engine.Heap.push h ~key:(Engine.Time.us i) ~tie:i i
         done;
         while not (Engine.Heap.is_empty h) do
           ignore (Engine.Heap.pop h)
         done));
  report "wheel push+pop 1k (us keys)"
    (time_min ~reps ~inner (fun () ->
         let w = Engine.Wheel.create () in
         for i = 1 to 1000 do
           ignore (Engine.Wheel.push w ~key:(Engine.Time.us i) ~tie:i i : int)
         done;
         while not (Engine.Wheel.is_empty w) do
           ignore (Engine.Wheel.pop_exn w)
         done));
  report "wheel push+pop 1k (small keys)"
    (time_min ~reps ~inner (fun () ->
         let w = Engine.Wheel.create () in
         for i = 0 to 999 do
           ignore (Engine.Wheel.push w ~key:(i * 7919 mod 1000) ~tie:i i : int)
         done;
         while not (Engine.Wheel.is_empty w) do
           ignore (Engine.Wheel.pop_exn w)
         done));
  report "wheel push only 1k (us keys)"
    (time_min ~reps ~inner (fun () ->
         let w = Engine.Wheel.create () in
         for i = 1 to 1000 do
           ignore (Engine.Wheel.push w ~key:(Engine.Time.us i) ~tie:i i : int)
         done));
  report "sched 1k events"
    (time_min ~reps ~inner (fun () ->
         let s = Engine.Sched.create () in
         for i = 1 to 1000 do
           ignore (Engine.Sched.at s (Engine.Time.us i) (fun () -> ()))
         done;
         Engine.Sched.run s));
  report "sched 1k anon events"
    (time_min ~reps ~inner (fun () ->
         let s = Engine.Sched.create () in
         for i = 1 to 1000 do
           Engine.Sched.at_anon s (Engine.Time.us i) (fun () -> ())
         done;
         Engine.Sched.run s));
  report "sched 1k events, 90% cancelled"
    (time_min ~reps ~inner (fun () ->
         let s = Engine.Sched.create () in
         let timers =
           List.init 1000 (fun i ->
               Engine.Sched.at s (Engine.Time.us (i + 1)) (fun () -> ()))
         in
         List.iteri
           (fun i tm -> if i mod 10 <> 0 then Engine.Sched.cancel tm)
           timers;
         Engine.Sched.run s));
  report "sched create only"
    (time_min ~reps ~inner:200 (fun () ->
         ignore (Engine.Sched.create ())));
  let cc_run factory =
    let cwnd = ref 10.0 and ssthresh = ref 1e9 in
    let now = ref 0.0 in
    let g = Tcp.Cc.group_create 3 in
    Array.iteri
      (fun i w ->
        g.Tcp.Cc.cwnds.(i) <- w;
        g.Tcp.Cc.srtts.(i) <- 0.01;
        g.Tcp.Cc.loss_intervals.(i) <- 100_000.0;
        Tcp.Cc.group_set_established g i true)
      [| 10.0; 20.0; 30.0 |];
    let group () =
      g.Tcp.Cc.cwnds.(0) <- !cwnd;
      g
    in
    let ctx =
      {
        Tcp.Cc.now_s = (fun () -> !now);
        mss = Packet.default_mss;
        get_cwnd = (fun () -> !cwnd);
        set_cwnd = (fun w -> cwnd := w);
        get_ssthresh = (fun () -> !ssthresh);
        set_ssthresh = (fun w -> ssthresh := w);
        srtt_s = (fun () -> 0.01);
        group;
        self_index = (fun () -> 0);
      }
    in
    let cc = factory ctx in
    for i = 1 to 1000 do
      now := float_of_int i *. 0.001;
      cc.Tcp.Cc.on_ack ~acked:Packet.default_mss;
      if i mod 100 = 0 then cc.Tcp.Cc.on_loss ()
    done
  in
  let cc_bench name factory =
    let w0 = Gc.minor_words () in
    cc_run factory;
    let words = Gc.minor_words () -. w0 in
    report
      (Printf.sprintf "%s 1k acks (%.0f w/ack)" name (words /. 1000.0))
      (time_min ~reps ~inner (fun () -> cc_run factory))
  in
  cc_bench "cubic" Tcp.Cc_cubic.factory;
  cc_bench "lia" Mptcp.Cc_lia.factory;
  cc_bench "olia" Mptcp.Cc_olia.factory;
  report "paper sim 200ms (CUBIC)"
    (time_min ~reps:7 ~inner:1 (fun () ->
         let topo = Core.Paper_net.topology () in
         let paths = Core.Paper_net.tagged_paths ~default:2 topo in
         let spec =
           Core.Scenario.make ~topo ~paths ~cc:Mptcp.Algorithm.Cubic
             ~duration:(Engine.Time.ms 200) ~sampling:(Engine.Time.ms 100) ()
         in
         ignore (Core.Scenario.run spec)))
