type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable busy_ns : int;
  mutable lost_down : int;
  mutable marked : int;
}

type event =
  | Enqueued of Packet.t
  | Dropped of Packet.t
  | Delivered of Packet.t
  | Lost_down of Packet.t

type t = {
  sched : Engine.Sched.t;
  rng : Engine.Rng.t;
  rate_bps : int;
  delay : Engine.Time.t;
  jitter : Engine.Time.t;
  qdisc : Qdisc.t;
  qstate : Qdisc.state;
  limit_pkts : int;
  deliver : Packet.t -> unit;
  queue : (Packet.t * Engine.Time.t) Queue.t; (* with enqueue timestamp *)
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable up : bool;
  mutable monitor : (event -> unit) option;
  stats : stats;
}

let create ~sched ~rng ~rate_bps ~delay ?(jitter = Engine.Time.zero) ~qdisc
    ~limit_pkts ~deliver () =
  if rate_bps <= 0 then invalid_arg "Linkq.create: rate must be positive";
  if limit_pkts < 1 then invalid_arg "Linkq.create: limit must be >= 1";
  if Engine.Time.( < ) jitter Engine.Time.zero then
    invalid_arg "Linkq.create: negative jitter";
  {
    sched; rng; rate_bps; delay; jitter; qdisc;
    qstate = Qdisc.make_state qdisc;
    limit_pkts; deliver;
    queue = Queue.create ();
    queued_bytes = 0;
    busy = false;
    up = true;
    monitor = None;
    stats =
      { enqueued = 0; dropped = 0; delivered = 0; bytes_delivered = 0;
        busy_ns = 0; lost_down = 0; marked = 0 };
  }

let rec start_tx t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some (p, enqueued_at) ->
    let now = Engine.Sched.now t.sched in
    t.queued_bytes <- t.queued_bytes - p.Packet.size;
    (* CoDel inspects the head packet's sojourn time and may discard it
       (and keep discarding) before anything is serialized. *)
    if
      Qdisc.dequeue_drop t.qdisc t.qstate
        ~sojourn:(Engine.Time.diff now enqueued_at) ~now
    then begin
      t.stats.dropped <- t.stats.dropped + 1;
      (match t.monitor with None -> () | Some f -> f (Dropped p));
      start_tx t
    end
    else begin
    t.busy <- true;
    let tx = Engine.Time.tx_time ~bits:(Packet.wire_bits p) ~rate_bps:t.rate_bps in
    t.stats.busy_ns <- t.stats.busy_ns + tx;
    ignore
      (Engine.Sched.after t.sched tx (fun () ->
           (* Last bit on the wire: arrival is one propagation delay
              later; the serializer is free immediately.  A packet in
              flight when the link goes down never arrives. *)
           let prop =
             if t.jitter = Engine.Time.zero then t.delay
             else
               Engine.Time.add t.delay
                 (Engine.Rng.uniform_time t.rng ~lo:Engine.Time.zero
                    ~hi:t.jitter)
           in
           ignore
             (Engine.Sched.after t.sched prop (fun () ->
                  if t.up then begin
                    t.stats.delivered <- t.stats.delivered + 1;
                    t.stats.bytes_delivered <-
                      t.stats.bytes_delivered + p.Packet.size;
                    (match t.monitor with
                     | None -> ()
                     | Some f -> f (Delivered p));
                    t.deliver p
                  end
                  else begin
                    t.stats.lost_down <- t.stats.lost_down + 1;
                    match t.monitor with
                    | None -> ()
                    | Some f -> f (Lost_down p)
                  end));
           start_tx t))
    end

let enqueue t p =
  (* The buffer limit counts queued packets only; the one in the
     serializer has already left the queue (tc semantics). *)
  if not t.up then begin
    t.stats.lost_down <- t.stats.lost_down + 1;
    match t.monitor with None -> () | Some f -> f (Lost_down p)
  end
  else begin
    let admit () =
      t.stats.enqueued <- t.stats.enqueued + 1;
      Queue.add (p, Engine.Sched.now t.sched) t.queue;
      t.queued_bytes <- t.queued_bytes + p.Packet.size;
      (match t.monitor with None -> () | Some f -> f (Enqueued p));
      if not t.busy then start_tx t
    in
    match
      Qdisc.decide t.qdisc t.qstate ~queue_pkts:(Queue.length t.queue)
        ~limit_pkts:t.limit_pkts
        ~ecn_capable:(p.Packet.ecn <> Packet.Not_ect)
        ~rng:t.rng
    with
    | Qdisc.Admit -> admit ()
    | Qdisc.Mark ->
      p.Packet.ecn <- Packet.Ce;
      t.stats.marked <- t.stats.marked + 1;
      admit ()
    | Qdisc.Drop ->
      t.stats.dropped <- t.stats.dropped + 1;
      (match t.monitor with None -> () | Some f -> f (Dropped p))
  end

let queue_pkts t = Queue.length t.queue
let queued_bytes t = t.queued_bytes
let stats t = t.stats
let rate_bps t = t.rate_bps
let limit_pkts t = t.limit_pkts
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor

let set_up t up =
  t.up <- up;
  if not up then begin
    t.stats.lost_down <- t.stats.lost_down + Queue.length t.queue;
    (match t.monitor with
     | None -> ()
     | Some f -> Queue.iter (fun (p, _) -> f (Lost_down p)) t.queue);
    Queue.clear t.queue;
    t.queued_bytes <- 0
  end

let is_up t = t.up

let utilisation t ~now =
  if now <= 0 then 0.0 else float_of_int t.stats.busy_ns /. float_of_int now
