type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable busy_ns : int;
  mutable lost_down : int;
  mutable marked : int;
}

type event =
  | Enqueued of Packet.t
  | Dropped of Packet.t
  | Delivered of Packet.t
  | Lost_down of Packet.t

type t = {
  sched : Engine.Sched.t;
  rng : Engine.Rng.t;
  mutable rate_bps : int;
  mutable delay : Engine.Time.t;
  mutable loss : float;
  jitter : Engine.Time.t;
  qdisc : Qdisc.t;
  qstate : Qdisc.state;
  limit_pkts : int;
  deliver : Packet.t -> unit;
  release : Packet.t -> unit;
      (* terminal fates owned by this queue (drop, link-down loss) hand
         the packet back to the owner's freelist *)
  queue : Pktring.t; (* flat ring: packet slots + enqueue timestamps *)
  flight : Pktring.t;
      (* packets serialized but not yet arrived, oldest first.  Only
         used when the link has no jitter: propagation is then constant,
         arrivals are FIFO, and the shared [arrive_done] thunk can pop
         this ring instead of closing over the packet — one fewer
         allocation per transmitted packet.  A jittered link can reorder
         arrivals, so it falls back to a per-packet closure. *)
  mutable queued_bytes : int;
  mutable busy : bool;
  mutable up : bool;
  mutable last_arrival : Engine.Time.t;
      (* latest scheduled no-jitter arrival: a delay decrease must not
         let a later packet overtake one already in [flight] (the wire
         delivers in order), so arrivals are clamped to be monotone *)
  mutable bg_occupancy : float;
      (* fluid background queue sharing this buffer (packets); the qdisc
         sees it on top of the real ring, so background load costs the
         packet side buffer space without materialising packets *)
  mutable bg_rate_bps : int;
      (* bandwidth the fluid background claims; the serializer drains at
         [rate - bg], floored (see [effective_rate_bps]) *)
  mutable min_eff_rate_bps : int;
      (* slowest effective rate any packet may have serialized at, for
         the audit's busy-time slack *)
  mutable cap_bits_before : float;
      (* capacity integral over past effective-rate regimes, up to
         [rate_since] — the bound on *delivered* bits, so it integrates
         what the serializer can actually drain, not the nominal rate *)
  mutable rate_since : Engine.Time.t;
  mutable monitor : (event -> unit) option;
  mutable tx_done : unit -> unit;
      (* the serializer-free continuation, allocated once at create
         instead of a fresh closure per packet *)
  mutable arrive_done : unit -> unit;
  stats : stats;
}

(* What the packet side may drain: nominal rate minus the background's
   bandwidth share, floored at 1/64 of nominal so a saturating fluid
   field slows the serializer rather than stalling it (a stalled
   serializer would never re-check the share, and its tx events would
   land arbitrarily far out on the wheel). *)
let effective_rate_bps t =
  let floor_bps = max 1 (t.rate_bps asr 6) in
  max floor_bps (t.rate_bps - t.bg_rate_bps)

(* Close the capacity integral over the regime ending now, at the rate
   that regime drained at.  Every change to [rate_bps] or [bg_rate_bps]
   must call this first so audit bounds stay exact. *)
let close_capacity t =
  let now = Engine.Sched.now t.sched in
  t.cap_bits_before <-
    t.cap_bits_before
    +. (float_of_int (effective_rate_bps t)
        *. (float_of_int (Engine.Time.diff now t.rate_since) /. 1e9));
  t.rate_since <- now

let rec create ~sched ~rng ~rate_bps ~delay ?(jitter = Engine.Time.zero) ~qdisc
    ~limit_pkts ~deliver ?(release = ignore) () =
  if rate_bps <= 0 then invalid_arg "Linkq.create: rate must be positive";
  if limit_pkts < 1 then invalid_arg "Linkq.create: limit must be >= 1";
  if Engine.Time.( < ) jitter Engine.Time.zero then
    invalid_arg "Linkq.create: negative jitter";
  let t =
    {
      sched; rng; rate_bps; delay; loss = 0.0; jitter; qdisc;
      qstate = Qdisc.make_state qdisc;
      limit_pkts; deliver; release;
      queue = Pktring.create ~capacity:(min 64 (limit_pkts + 1)) ();
      flight = Pktring.create ~capacity:16 ();
      queued_bytes = 0;
      busy = false;
      up = true;
      last_arrival = Engine.Time.zero;
      bg_occupancy = 0.0;
      bg_rate_bps = 0;
      min_eff_rate_bps = rate_bps;
      cap_bits_before = 0.0;
      rate_since = Engine.Sched.now sched;
      monitor = None;
      tx_done = ignore;
      arrive_done = ignore;
      stats =
        { enqueued = 0; dropped = 0; delivered = 0; bytes_delivered = 0;
          busy_ns = 0; lost_down = 0; marked = 0 };
    }
  in
  t.tx_done <- (fun () -> start_tx t);
  t.arrive_done <- (fun () -> arrive t (Pktring.pop t.flight));
  t

(* A packet in flight when the link goes down never arrives. *)
and arrive t p =
  if t.up then begin
    t.stats.delivered <- t.stats.delivered + 1;
    t.stats.bytes_delivered <- t.stats.bytes_delivered + p.Packet.size;
    (match t.monitor with None -> () | Some f -> f (Delivered p));
    t.deliver p
  end
  else begin
    t.stats.lost_down <- t.stats.lost_down + 1;
    (match t.monitor with None -> () | Some f -> f (Lost_down p));
    t.release p
  end

and start_tx t =
  if Pktring.is_empty t.queue then t.busy <- false
  else begin
    let enqueued_at = Pktring.head_stamp t.queue in
    let p = Pktring.pop t.queue in
    let now = Engine.Sched.now t.sched in
    t.queued_bytes <- t.queued_bytes - p.Packet.size;
    (* CoDel inspects the head packet's sojourn time and may discard it
       (and keep discarding) before anything is serialized. *)
    if
      Qdisc.dequeue_drop t.qdisc t.qstate
        ~sojourn:(Engine.Time.diff now enqueued_at) ~now
    then begin
      t.stats.dropped <- t.stats.dropped + 1;
      (match t.monitor with None -> () | Some f -> f (Dropped p));
      t.release p;
      start_tx t
    end
    else begin
      t.busy <- true;
      let tx =
        Engine.Time.tx_time ~bits:(Packet.wire_bits p)
          ~rate_bps:(effective_rate_bps t)
      in
      t.stats.busy_ns <- t.stats.busy_ns + tx;
      (* Last bit on the wire at [now + tx]: the serializer is free then
         (shared [tx_done] closure), and the packet arrives one
         propagation delay later.  Both events are scheduled here — the
         old nested-closure chain allocated a fresh continuation per
         packet at each stage; [tx_done] first so that a zero-delay link
         frees the serializer before delivering, as the nesting did. *)
      Engine.Sched.after_anon t.sched tx t.tx_done;
      if t.jitter = Engine.Time.zero then begin
        Pktring.push t.flight p ~stamp:now;
        (* [flight] is popped FIFO, so arrivals must be monotone even if
           [set_delay] shrank the delay while packets were in flight. *)
        let at =
          let nominal = Engine.Time.add now (Engine.Time.add tx t.delay) in
          if Engine.Time.( < ) nominal t.last_arrival then t.last_arrival
          else nominal
        in
        t.last_arrival <- at;
        Engine.Sched.at_anon t.sched at t.arrive_done
      end
      else begin
        let prop =
          Engine.Time.add t.delay
            (Engine.Rng.uniform_time t.rng ~lo:Engine.Time.zero ~hi:t.jitter)
        in
        Engine.Sched.after_anon t.sched (Engine.Time.add tx prop) (fun () ->
            arrive t p)
      end
    end
  end

let enqueue t p =
  (* The buffer limit counts queued packets only; the one in the
     serializer has already left the queue (tc semantics). *)
  if not t.up then begin
    t.stats.lost_down <- t.stats.lost_down + 1;
    (match t.monitor with None -> () | Some f -> f (Lost_down p));
    t.release p
  end
  else if t.loss > 0.0 && Engine.Rng.float t.rng 1.0 < t.loss then begin
    (* Random wire loss (lossy-regime scenarios).  Counted as a drop so
       the conservation ledger needs no new fate; the [loss > 0.0] guard
       keeps the rng stream untouched on loss-free links. *)
    t.stats.dropped <- t.stats.dropped + 1;
    (match t.monitor with None -> () | Some f -> f (Dropped p));
    t.release p
  end
  else begin
    let admit () =
      t.stats.enqueued <- t.stats.enqueued + 1;
      Pktring.push t.queue p ~stamp:(Engine.Sched.now t.sched);
      t.queued_bytes <- t.queued_bytes + p.Packet.size;
      (match t.monitor with None -> () | Some f -> f (Enqueued p));
      if not t.busy then start_tx t
    in
    match
      Qdisc.decide t.qdisc t.qstate
        ~queue_pkts:(Pktring.length t.queue + int_of_float t.bg_occupancy)
        ~limit_pkts:t.limit_pkts
        ~ecn_capable:(p.Packet.ecn <> Packet.Not_ect)
        ~rng:t.rng
    with
    | Qdisc.Admit -> admit ()
    | Qdisc.Mark ->
      p.Packet.ecn <- Packet.Ce;
      t.stats.marked <- t.stats.marked + 1;
      admit ()
    | Qdisc.Drop ->
      t.stats.dropped <- t.stats.dropped + 1;
      (match t.monitor with None -> () | Some f -> f (Dropped p));
      t.release p
  end

let queue_pkts t = Pktring.length t.queue
let queued_bytes t = t.queued_bytes
let stats t = t.stats
let rate_bps t = t.rate_bps
let limit_pkts t = t.limit_pkts

let set_rate t rate_bps =
  if rate_bps <= 0 then invalid_arg "Linkq.set_rate: rate must be positive";
  if rate_bps <> t.rate_bps then begin
    (* Close the capacity integral over the old regime so the audit's
       link.rate bound stays exact across re-rating.  The packet in the
       serializer (if any) keeps its old transmission time; the new rate
       applies from the next [start_tx]. *)
    close_capacity t;
    t.rate_bps <- rate_bps;
    let eff = effective_rate_bps t in
    if eff < t.min_eff_rate_bps then t.min_eff_rate_bps <- eff
  end

let set_background t ~occupancy_pkts ~rate_bps =
  if occupancy_pkts < 0.0 then
    invalid_arg "Linkq.set_background: negative occupancy";
  if rate_bps < 0 then invalid_arg "Linkq.set_background: negative rate";
  if rate_bps <> t.bg_rate_bps then begin
    close_capacity t;
    t.bg_rate_bps <- rate_bps;
    let eff = effective_rate_bps t in
    if eff < t.min_eff_rate_bps then t.min_eff_rate_bps <- eff
  end;
  t.bg_occupancy <- occupancy_pkts

let background_occupancy_pkts t = t.bg_occupancy
let background_rate_bps t = t.bg_rate_bps
let min_effective_rate_bps t = t.min_eff_rate_bps

let set_delay t delay =
  if Engine.Time.( < ) delay Engine.Time.zero then
    invalid_arg "Linkq.set_delay: negative delay";
  t.delay <- delay

let set_loss t loss =
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Linkq.set_loss: probability outside [0, 1]";
  t.loss <- loss

let loss t = t.loss
let delay t = t.delay

let capacity_bits t ~now =
  t.cap_bits_before
  +. (float_of_int (effective_rate_bps t)
      *. (float_of_int (Engine.Time.diff now t.rate_since) /. 1e9))
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor

let set_up t up =
  t.up <- up;
  if not up then begin
    t.stats.lost_down <- t.stats.lost_down + Pktring.length t.queue;
    (match t.monitor with
     | None -> ()
     | Some f -> Pktring.iter t.queue (fun p -> f (Lost_down p)));
    Pktring.iter t.queue t.release;
    Pktring.clear t.queue;
    t.queued_bytes <- 0
  end

let is_up t = t.up

let utilisation t ~now =
  if now <= 0 then 0.0 else float_of_int t.stats.busy_ns /. float_of_int now
