(* Growable flat FIFO of packets with per-slot enqueue timestamps.

   Two parallel arrays replace the old [(Packet.t * Time.t) Queue.t]: no
   boxed pair and no list cell per enqueue, and freed slots are nulled
   to a shared dummy so the ring retains no packet beyond its dequeue
   (the same capacity/compaction discipline as [Engine.Heap]). *)

type t = {
  mutable pkts : Packet.t array;
  mutable stamps : int array; (* enqueue time, ns *)
  mutable head : int;         (* index of the oldest element *)
  mutable len : int;
}

(* Shared empty-slot filler; never handed out.  A plain record (not a
   pooled packet) so it can never alias live traffic. *)
let nil : Packet.t =
  Packet.make_plain ~id:max_int ~src:(-1) ~dst:(-1) ~tag:(-1)
    ~born:Engine.Time.zero ~size:1

let default_capacity = 16

let create ?(capacity = default_capacity) () =
  let capacity = max capacity 1 in
  { pkts = Array.make capacity nil; stamps = Array.make capacity 0;
    head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.pkts

let grow t =
  let cap = Array.length t.pkts in
  let fresh_cap = 2 * cap in
  let pkts = Array.make fresh_cap nil in
  let stamps = Array.make fresh_cap 0 in
  (* Unroll the ring so head restarts at 0. *)
  let tail_n = min t.len (cap - t.head) in
  Array.blit t.pkts t.head pkts 0 tail_n;
  Array.blit t.stamps t.head stamps 0 tail_n;
  if tail_n < t.len then begin
    Array.blit t.pkts 0 pkts tail_n (t.len - tail_n);
    Array.blit t.stamps 0 stamps tail_n (t.len - tail_n)
  end;
  t.pkts <- pkts;
  t.stamps <- stamps;
  t.head <- 0

let push t p ~stamp =
  let cap = Array.length t.pkts in
  if t.len = cap then grow t;
  let cap = Array.length t.pkts in
  let i = t.head + t.len in
  let i = if i >= cap then i - cap else i in
  t.pkts.(i) <- p;
  t.stamps.(i) <- stamp;
  t.len <- t.len + 1

let head_stamp t =
  if t.len = 0 then invalid_arg "Pktring.head_stamp: empty";
  t.stamps.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Pktring.pop: empty";
  let i = t.head in
  let p = t.pkts.(i) in
  t.pkts.(i) <- nil;
  let cap = Array.length t.pkts in
  let h = i + 1 in
  t.head <- (if h >= cap then 0 else h);
  t.len <- t.len - 1;
  p

let iter t f =
  let cap = Array.length t.pkts in
  for k = 0 to t.len - 1 do
    let i = t.head + k in
    let i = if i >= cap then i - cap else i in
    f t.pkts.(i)
  done

let clear t =
  let cap = Array.length t.pkts in
  for k = 0 to t.len - 1 do
    let i = t.head + k in
    let i = if i >= cap then i - cap else i in
    t.pkts.(i) <- nil
  done;
  t.head <- 0;
  t.len <- 0
