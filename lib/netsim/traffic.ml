type t = {
  mutable running : bool;
  mutable packets : int;
  mutable bytes : int;
}

let stop t = t.running <- false
let packets_sent t = t.packets
let bytes_sent t = t.bytes

let interval ~pkt_bytes ~rate_bps =
  Engine.Time.tx_time ~bits:(pkt_bytes * 8) ~rate_bps

let send net t ~src ~dst ~tag ~pkt_bytes =
  let sched = Net.sched net in
  let p =
    Packet.make_plain ~id:(Net.fresh_packet_id net) ~src ~dst ~tag
      ~born:(Engine.Sched.now sched) ~size:pkt_bytes
  in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + pkt_bytes;
  Net.inject net ~at:src p

let cbr ~net ~src ~dst ~tag ~rate_bps ?(pkt_bytes = 1500)
    ?(start = Engine.Time.zero) ?stop_at () =
  if rate_bps <= 0 then invalid_arg "Traffic.cbr: rate must be positive";
  let sched = Net.sched net in
  let t = { running = true; packets = 0; bytes = 0 } in
  let gap = interval ~pkt_bytes ~rate_bps in
  let expired () =
    match stop_at with
    | None -> false
    | Some horizon -> Engine.Time.( >= ) (Engine.Sched.now sched) horizon
  in
  let rec tick () =
    if t.running && not (expired ()) then begin
      send net t ~src ~dst ~tag ~pkt_bytes;
      Engine.Sched.after_anon sched gap tick
    end
  in
  Engine.Sched.at_anon sched start tick;
  t

let on_off ~net ~rng ~src ~dst ~tag ~rate_bps ~mean_on ~mean_off
    ?(pkt_bytes = 1500) ?(start = Engine.Time.zero) ?stop_at () =
  if rate_bps <= 0 then invalid_arg "Traffic.on_off: rate must be positive";
  let sched = Net.sched net in
  let t = { running = true; packets = 0; bytes = 0 } in
  let gap = interval ~pkt_bytes ~rate_bps in
  let expired () =
    match stop_at with
    | None -> false
    | Some horizon -> Engine.Time.( >= ) (Engine.Sched.now sched) horizon
  in
  let draw mean =
    Engine.Time.of_float_s
      (Engine.Rng.exponential rng ~mean:(Engine.Time.to_float_s mean))
  in
  let rec burst until =
    if t.running && not (expired ()) then
      if Engine.Time.( < ) (Engine.Sched.now sched) until then begin
        send net t ~src ~dst ~tag ~pkt_bytes;
        Engine.Sched.after_anon sched gap (fun () -> burst until)
      end
      else
        Engine.Sched.after_anon sched (draw mean_off) start_burst
  and start_burst () =
    if t.running && not (expired ()) then
      burst (Engine.Time.add (Engine.Sched.now sched) (draw mean_on))
  in
  Engine.Sched.at_anon sched start start_burst;
  t
