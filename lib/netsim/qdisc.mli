(** Queue disciplines for link buffers.

    The paper's Mininet links use default tail-drop FIFOs; {!Drop_tail}
    reproduces that and is the default everywhere.  {!Red} (Random Early
    Detection) is provided for the ablation study on how active queue
    management changes the convergence behaviour. *)

type red = {
  min_th : int;   (** packets: below this average, never drop *)
  max_th : int;   (** packets: above this average, always drop *)
  max_p : float;  (** drop probability as the average reaches [max_th] *)
  weight : float; (** EWMA weight for the average queue size *)
  ecn : bool;     (** mark ECN-capable packets instead of dropping them *)
}

type codel = {
  target : Engine.Time.t;    (** acceptable standing-queue sojourn (5 ms) *)
  interval : Engine.Time.t;  (** sliding window for the judgement (100 ms) *)
}

type t =
  | Drop_tail
  | Red of red
  | Codel of codel
      (** CoDel (Nichols-Jacobson, RFC 8289): drops at {e dequeue} time
          based on how long packets actually sat in the queue, attacking
          bufferbloat independently of the buffer's size *)
  | Broken_oversubscribe
      (** Test-only: admits every packet, ignoring [limit_pkts].  Exists
          to prove the audit subsystem catches a misbehaving qdisc (the
          buffer-occupancy invariant fires); never use it in scenarios
          meant to mean anything. *)

val default_red : red
(** min_th 5, max_th 15, max_p 0.1, weight 0.002, no ECN — the classic
    Floyd–Jacobson parameters scaled to the buffers used here. *)

val default_red_ecn : red
(** {!default_red} with ECN marking enabled. *)

val default_codel : codel
(** target 5 ms, interval 100 ms — the RFC 8289 defaults. *)

type state

val make_state : t -> state

type decision =
  | Admit
  | Mark   (** admit, but set Congestion Experienced (RFC 3168) *)
  | Drop

val decide : t -> state -> queue_pkts:int -> limit_pkts:int
  -> ecn_capable:bool -> rng:Engine.Rng.t -> decision
(** Decision for one arriving packet given the current queue occupancy
    (packets, not counting the arriving one).  A full buffer
    ([queue_pkts >= limit_pkts]) always drops; RED's early "drops" become
    {!Mark}s when both the discipline and the packet are ECN-capable. *)

val admit : t -> state -> queue_pkts:int -> limit_pkts:int
  -> rng:Engine.Rng.t -> bool
(** [decide] without ECN, as a boolean — kept for plain uses and tests. *)

val dequeue_drop : t -> state -> sojourn:Engine.Time.t
  -> now:Engine.Time.t -> bool
(** CoDel's head-drop decision, consulted by the link each time a packet
    reaches the front of the queue: [true] means drop it and try the
    next.  Always [false] for drop-tail and RED (they act at enqueue). *)

val avg_queue : state -> float
(** RED's smoothed queue estimate (0 for drop-tail). *)
