type red = {
  min_th : int;
  max_th : int;
  max_p : float;
  weight : float;
  ecn : bool;
}

type codel = { target : Engine.Time.t; interval : Engine.Time.t }

type t =
  | Drop_tail
  | Red of red
  | Codel of codel
  | Broken_oversubscribe

let default_red =
  { min_th = 5; max_th = 15; max_p = 0.1; weight = 0.002; ecn = false }

let default_red_ecn = { default_red with ecn = true }

let default_codel = { target = Engine.Time.ms 5; interval = Engine.Time.ms 100 }

type state = {
  (* RED *)
  mutable avg : float;
  mutable since_drop : int;
  (* CoDel (RFC 8289 pseudocode variables) *)
  mutable first_above_time : Engine.Time.t; (* 0 = not above target *)
  mutable dropping : bool;
  mutable drop_next : Engine.Time.t;
  mutable drop_count : int;
}

let make_state (_ : t) =
  { avg = 0.0; since_drop = 0; first_above_time = 0; dropping = false;
    drop_next = 0; drop_count = 0 }

type decision = Admit | Mark | Drop

let decide t state ~queue_pkts ~limit_pkts ~ecn_capable ~rng =
  match t with
  | Broken_oversubscribe -> Admit (* deliberately ignores limit_pkts *)
  | _ when queue_pkts >= limit_pkts -> Drop
  | Drop_tail | Codel _ -> Admit (* CoDel acts at dequeue *)
    | Red { min_th; max_th; max_p; weight; ecn } ->
      state.avg <-
        ((1.0 -. weight) *. state.avg) +. (weight *. float_of_int queue_pkts);
      let congest () = if ecn && ecn_capable then Mark else Drop in
      if state.avg < float_of_int min_th then begin
        state.since_drop <- state.since_drop + 1;
        Admit
      end
      else if state.avg >= float_of_int max_th then begin
        state.since_drop <- 0;
        congest ()
      end
      else begin
        (* Early-drop region: probability grows linearly with the average
           and with the count of packets admitted since the last drop
           (Floyd-Jacobson uniformisation). *)
        let pb =
          max_p *. (state.avg -. float_of_int min_th)
          /. float_of_int (max_th - min_th)
        in
        let pa =
          let denom = 1.0 -. (float_of_int state.since_drop *. pb) in
          if denom <= 0.0 then 1.0 else pb /. denom
        in
        if Engine.Rng.float rng 1.0 < pa then begin
          state.since_drop <- 0;
          congest ()
        end
        else begin
          state.since_drop <- state.since_drop + 1;
          Admit
        end
      end

(* CoDel control law: the next drop comes interval / sqrt(count) after
   the previous one, so the drop rate gently increases while the queue
   stays bloated. *)
let control_law codel state now =
  now
  + int_of_float
      (float_of_int codel.interval
       /. Float.sqrt (float_of_int (max 1 state.drop_count)))

let dequeue_drop t state ~sojourn ~now =
  match t with
  | Drop_tail | Red _ | Broken_oversubscribe -> false
  | Codel codel ->
    if sojourn < codel.target then begin
      (* Below target: leave the dropping state entirely. *)
      state.first_above_time <- 0;
      state.dropping <- false;
      false
    end
    else if not state.dropping then begin
      if state.first_above_time = 0 then begin
        state.first_above_time <- now + codel.interval;
        false
      end
      else if now >= state.first_above_time then begin
        (* Sojourn stayed above target for a whole interval: start
           dropping. *)
        state.dropping <- true;
        state.drop_count <- (if state.drop_count > 2 then state.drop_count - 2
                             else 1);
        state.drop_next <- control_law codel state now;
        true
      end
      else false
    end
    else if now >= state.drop_next then begin
      state.drop_count <- state.drop_count + 1;
      state.drop_next <- control_law codel state now;
      true
    end
    else false

let admit t state ~queue_pkts ~limit_pkts ~rng =
  match decide t state ~queue_pkts ~limit_pkts ~ecn_capable:false ~rng with
  | Admit -> true
  | Mark | Drop -> false

let avg_queue state = state.avg
