(** Growable flat packet FIFO with per-slot enqueue timestamps.

    The link-queue buffer: parallel arrays for packet slots and enqueue
    times replace a [Queue.t] of boxed pairs, so the steady-state
    enqueue/dequeue path allocates nothing.  Freed slots are overwritten
    with a shared dummy, so the ring never retains a packet past its
    dequeue — a requirement of the {!Packet.Pool} recycle discipline. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity defaults to 16 slots; the ring doubles on demand
    and never shrinks (link buffers are bounded by [limit_pkts]). *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current slot count (for tests; capacity growth is amortised O(1)). *)

val push : t -> Packet.t -> stamp:int -> unit
(** Appends a packet with its enqueue timestamp (ns). *)

val head_stamp : t -> int
(** Enqueue timestamp of the oldest element.  Raises
    [Invalid_argument] when empty. *)

val pop : t -> Packet.t
(** Removes and returns the oldest element; the slot is nulled.  Raises
    [Invalid_argument] when empty. *)

val iter : t -> (Packet.t -> unit) -> unit
(** Oldest-first iteration (used when a link goes down). *)

val clear : t -> unit
(** Empties the ring, nulling every live slot. *)
