(** One direction of a link: a FIFO buffer draining into a fixed-rate
    serializer followed by a propagation delay.

    This is the element whose tail-drop behaviour creates the TCP
    sawtooth the paper's argument rests on, so its timing is exact: a
    packet finishing transmission at [t] arrives at the far end at
    [t + delay], and the next packet starts serializing at [t]. *)

type stats = {
  mutable enqueued : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable bytes_delivered : int;
  mutable busy_ns : int;  (** cumulative transmission time, for utilisation *)
  mutable lost_down : int;
      (** packets destroyed because the link was down (on arrival at the
          queue, or mid-flight when the link went down) *)
  mutable marked : int;
      (** packets marked Congestion Experienced instead of dropped *)
}

type event =
  | Enqueued of Packet.t  (** admitted to the buffer (possibly CE-marked) *)
  | Dropped of Packet.t  (** discarded by the qdisc (enqueue or dequeue) *)
  | Delivered of Packet.t  (** handed to [deliver] at the far end *)
  | Lost_down of Packet.t  (** destroyed because the link direction was down *)

type t

val create :
  sched:Engine.Sched.t ->
  rng:Engine.Rng.t ->
  rate_bps:int ->
  delay:Engine.Time.t ->
  ?jitter:Engine.Time.t ->
  qdisc:Qdisc.t ->
  limit_pkts:int ->
  deliver:(Packet.t -> unit) ->
  ?release:(Packet.t -> unit) ->
  unit -> t
(** [deliver] runs at the receiving end of the link, [delay] (plus a
    uniform draw from [\[0, jitter\]], default 0) after each packet's
    last bit leaves the serializer.  Jitter can reorder packets — as a
    wireless or load-balanced hop would.

    [release] (default a no-op) is invoked exactly once on every packet
    whose terminal fate this queue owns — qdisc drops (enqueue and
    dequeue) and link-down losses — after the stats and monitor have
    seen it.  {!Netsim.Net} passes its freelist's release here.
    Delivered packets are handed to [deliver] instead, which owns their
    release. *)

val enqueue : t -> Packet.t -> unit
(** Admits (or drops, per qdisc) one packet. *)

val queue_pkts : t -> int
(** Packets buffered, excluding the one in transmission. *)

val queued_bytes : t -> int
val stats : t -> stats

val rate_bps : t -> int
(** Current serialization rate (may change mid-run via {!set_rate}). *)

val set_rate : t -> int -> unit
(** Re-rate the serializer.  Takes effect from the next packet to start
    transmission; a packet already serializing keeps the old rate.  The
    capacity integral used by {!capacity_bits} is closed over the old
    regime first, so audit bounds stay exact.  Raises [Invalid_argument]
    on a non-positive rate. *)

val delay : t -> Engine.Time.t

val set_delay : t -> Engine.Time.t -> unit
(** Change the propagation delay for packets starting transmission after
    the call.  A decrease cannot reorder a jitter-free link: arrivals are
    clamped to remain FIFO, as a store-and-forward wire would deliver.
    Raises [Invalid_argument] on a negative delay. *)

val loss : t -> float

val set_loss : t -> float -> unit
(** Independent per-packet random loss probability applied on enqueue
    (before the qdisc).  Losses count as drops in the stats, monitor and
    conservation ledger.  Default [0.0]; the rng is only consulted when
    the probability is positive, so loss-free runs keep their stream.
    Raises [Invalid_argument] outside [0, 1]. *)

val set_background : t -> occupancy_pkts:float -> rate_bps:int -> unit
(** Couple a fluid background field to this queue
    ({!Fluid.Background.Driver} calls this every coarse tick).
    [occupancy_pkts] is the background's standing queue: the qdisc sees
    it on top of the real ring, so background load costs foreground
    packets buffer space (and tail-drops them at a shared-buffer
    horizon) without materialising a single background packet.
    [rate_bps] is the bandwidth share the background claims: packets
    serialize at the {e effective} rate [nominal - rate_bps], floored
    at 1/64 of nominal so a saturating field slows the serializer
    rather than stalling it.  A share change closes the capacity
    integral over the old regime first, so {!capacity_bits} stays an
    exact bound for the audit.  Raises [Invalid_argument] on a negative
    occupancy or rate. *)

val background_occupancy_pkts : t -> float
val background_rate_bps : t -> int
(** The most recent {!set_background} values ([0.] and [0] when no
    field is coupled). *)

val effective_rate_bps : t -> int
(** The rate packets currently serialize at: the nominal {!rate_bps}
    minus the background's share, floored at 1/64 of nominal. *)

val min_effective_rate_bps : t -> int
(** The slowest effective rate any packet may have started serializing
    at since creation — the audit's busy-time slack must assume the
    in-flight packet transmits this slowly. *)

val capacity_bits : t -> now:Engine.Time.t -> float
(** Total bits the serializer could have transmitted by [now],
    integrating the {e effective} rate over every regime since creation
    (nominal rate changes and background-share changes both close a
    regime) — the bound the audit's link.rate invariant checks
    delivered bytes against. *)

val limit_pkts : t -> int
(** The buffer limit this queue was created with. *)

val set_monitor : t -> (event -> unit) option -> unit
(** Installs (or clears) a per-packet event tap.  The callback fires
    after the queue's own state and counters are updated, exactly once
    per packet fate transition; [None] (the default) costs one mutable
    load on the hot path.  Used by [Audit] for conservation ledgers. *)

val monitor : t -> (event -> unit) option
(** The currently installed tap, so a second subscriber (e.g. the
    observability layer) can chain rather than clobber it. *)

val utilisation : t -> now:Engine.Time.t -> float
(** Fraction of wall time the serializer has been busy so far. *)

val set_up : t -> bool -> unit
(** Fail or restore the link direction.  While down, arriving packets are
    destroyed (counted in [lost_down]), queued packets are flushed, and
    packets already past the serializer never reach the far end —
    modelling a cable cut. *)

val is_up : t -> bool
