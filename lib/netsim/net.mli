(** The simulated network: topology + per-direction link queues +
    tag-based forwarding — the role Mininet played in the paper.

    Forwarding is deterministic on [(destination, tag)], the tagging
    scheme of the paper's modified [ndiffports] path manager: routes are
    pre-installed per tag with {!install_path}, and every packet of a
    subflow carries that subflow's tag. *)

type dir = Fwd | Rev
(** [Fwd] is the [u -> v] orientation of a {!Netgraph.Topology.link}. *)

type config = {
  qdisc : Qdisc.t;
  limit_pkts : int;  (** buffer size per link direction, in packets *)
  delay_jitter : Engine.Time.t;
      (** extra uniform per-packet propagation jitter on every link
          direction (0 = exact timing; can reorder packets) *)
}

val default_config : config
(** Drop-tail, 40-packet buffers (about one bandwidth-delay product for
    the paper's 100 Mbps / few-ms network). *)

type t

val create :
  sched:Engine.Sched.t -> rng:Engine.Rng.t -> ?config:config
  -> Netgraph.Topology.t -> t

val sched : t -> Engine.Sched.t
val topology : t -> Netgraph.Topology.t

val pool : t -> Packet.Pool.t
(** The network's packet freelist.  Every packet that terminates inside
    the network — host delivery, qdisc drop, link-down loss, no-route —
    is handed back here exactly once, so senders that allocate through
    this pool run allocation-flat at steady state.  Host handlers (and
    taps/monitors) must not retain a packet past their return; copy with
    {!Packet.copy} if longer retention is needed. *)

val fresh_packet_id : t -> int
(** Allocates a unique wire id for a new packet. *)

val packets_created : t -> int
(** Total wire ids handed out so far — the denominator for
    allocations-per-packet accounting. *)

(** {1 Routing} *)

val install_route :
  t -> node:int -> dst:Packet.addr -> tag:Packet.tag -> link:int -> unit
(** At [node], packets for [dst] carrying [tag] exit via [link].  Raises
    [Invalid_argument] when [node] is not an endpoint of [link].
    Re-installation overwrites. *)

val install_path : t -> tag:Packet.tag -> Netgraph.Path.t -> unit
(** Installs forwarding for the path's destination at every node along
    the path, {e and} the reverse route (towards the path's source, same
    tag) so acknowledgements retrace the same links. *)

val route : t -> node:int -> dst:Packet.addr -> tag:Packet.tag -> int option
(** The installed outgoing link, if any. *)

(** {1 Hosts and taps} *)

val attach_host : t -> node:int -> (Packet.t -> unit) -> unit
(** Handler for packets addressed to [node].  One host per node; raises
    [Invalid_argument] on double attachment. *)

val add_tap : t -> node:int -> (Packet.t -> unit) -> unit
(** Observes every packet arriving at [node] (whether delivered locally
    or forwarded on) — the simulator's tshark. *)

(** {1 Sending} *)

val inject : t -> at:int -> Packet.t -> unit
(** Hands a packet to the network at node [at].  Without a route it is
    counted in {!no_route_drops} and discarded. *)

(** {1 Introspection} *)

val linkq : t -> link:int -> dir:dir -> Linkq.t

type monitor = {
  on_inject : node:int -> Packet.t -> unit;
      (** a host handed a fresh packet to the network at [node] *)
  on_host_deliver : node:int -> Packet.t -> unit;
      (** a packet reached its destination node and left the network
          (fires whether or not a host handler is attached) *)
  on_no_route : node:int -> Packet.t -> unit;
      (** a packet was discarded at [node] for lack of a route *)
}

val set_monitor : t -> monitor option -> unit
(** Installs (or clears) a network-edge event tap; [None] (the default)
    is free on the forwarding path.  Together with {!Linkq.set_monitor}
    on every queue this is enough to account for every packet's fate —
    the hook the audit subsystem builds its conservation ledger on. *)

val monitor : t -> monitor option
(** The currently installed tap, so a second subscriber (e.g. the
    observability layer) can chain rather than clobber it. *)

val iter_linkqs : t -> (link:int -> dir:dir -> Linkq.t -> unit) -> unit
(** Applies [f] to both directions of every link. *)

val set_link_up : t -> link:int -> bool -> unit
(** Fail or restore both directions of a link (see {!Linkq.set_up}). *)

val link_is_up : t -> link:int -> bool

val set_link_rate : t -> link:int -> int -> unit
(** Re-rate both directions of a live link (see {!Linkq.set_rate}) —
    a capacity ramp or a handover to a slower radio. *)

val set_link_delay : t -> link:int -> Engine.Time.t -> unit
(** Change both directions' propagation delay (see {!Linkq.set_delay}). *)

val set_link_loss : t -> link:int -> float -> unit
(** Set both directions' random loss probability (see {!Linkq.set_loss}). *)

val no_route_drops : t -> int

val total_drops : t -> int
(** Queue drops summed over every link direction. *)
