type dir = Fwd | Rev

type config = { qdisc : Qdisc.t; limit_pkts : int; delay_jitter : Engine.Time.t }

let default_config =
  { qdisc = Qdisc.Drop_tail; limit_pkts = 40; delay_jitter = Engine.Time.zero }

type monitor = {
  on_inject : node:int -> Packet.t -> unit;
  on_host_deliver : node:int -> Packet.t -> unit;
  on_no_route : node:int -> Packet.t -> unit;
}

(* Routing keys are flattened to one immediate int so the per-hop lookup
   neither allocates a (dst, tag) pair nor runs the polymorphic hash
   over a block.  20 bits of tag leave 42 for the destination — both far
   beyond any topology here, and install_route rejects the rest. *)
let tag_bits = 20
let tag_mask = (1 lsl tag_bits) - 1

let route_key ~dst ~tag = (dst lsl tag_bits) lor (tag land tag_mask)

let check_route_key ~dst ~tag =
  if dst < 0 || tag < 0 || tag > tag_mask || dst > max_int lsr tag_bits then
    invalid_arg "Net.install_route: destination or tag out of range"

type t = {
  sched : Engine.Sched.t;
  topo : Netgraph.Topology.t;
  pool : Packet.Pool.t;
  mutable linkqs : Linkq.t array array; (* link id -> [| fwd; rev |] *)
  tables : (int, int) Hashtbl.t array; (* node -> route_key -> link *)
  hosts : (Packet.t -> unit) option array;
  taps : (Packet.t -> unit) list array;
  mutable next_id : int;
  mutable no_route : int;
  mutable monitor : monitor option;
}

let dir_index = function Fwd -> 0 | Rev -> 1

let release_pkt t p = Packet.Pool.release t.pool p

let rec receive t ~node p =
  List.iter (fun f -> f p) t.taps.(node);
  if p.Packet.dst = node then begin
    (match t.monitor with None -> () | Some m -> m.on_host_deliver ~node p);
    (match t.hosts.(node) with
    | Some h -> h p
    | None -> () (* destination without a host: silently sink *));
    (* The packet has left the network: the host handler is done with it
       (anything longer-lived must have copied), so the record can be
       recycled. *)
    release_pkt t p
  end
  else forward t ~node p

and forward t ~node p =
  match
    Hashtbl.find_opt t.tables.(node)
      (route_key ~dst:p.Packet.dst ~tag:p.Packet.tag)
  with
  | None ->
    t.no_route <- t.no_route + 1;
    (match t.monitor with None -> () | Some m -> m.on_no_route ~node p);
    release_pkt t p
  | Some lid ->
    let l = Netgraph.Topology.link t.topo lid in
    let d = if l.Netgraph.Topology.u = node then 0 else 1 in
    Linkq.enqueue t.linkqs.(lid).(d) p

let create ~sched ~rng ?(config = default_config) topo =
  let n = Netgraph.Topology.num_nodes topo in
  let t =
    {
      sched;
      topo;
      pool = Packet.Pool.create ();
      linkqs = [||];
      tables = Array.init n (fun _ -> Hashtbl.create 8);
      hosts = Array.make n None;
      taps = Array.make n [];
      next_id = 0;
      no_route = 0;
      monitor = None;
    }
  in
  let make_q (l : Netgraph.Topology.link) ~to_node =
    Linkq.create ~sched ~rng:(Engine.Rng.split rng)
      ~rate_bps:l.Netgraph.Topology.capacity_bps
      ~delay:l.Netgraph.Topology.delay ~jitter:config.delay_jitter
      ~qdisc:config.qdisc
      ~limit_pkts:config.limit_pkts
      ~deliver:(fun p -> receive t ~node:to_node p)
      ~release:(fun p -> release_pkt t p)
      ()
  in
  t.linkqs <-
    Array.map
      (fun (l : Netgraph.Topology.link) ->
        [| make_q l ~to_node:l.Netgraph.Topology.v;
           make_q l ~to_node:l.Netgraph.Topology.u |])
      (Netgraph.Topology.links topo);
  t

let sched t = t.sched
let topology t = t.topo
let pool t = t.pool

let fresh_packet_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let packets_created t = t.next_id

let install_route t ~node ~dst ~tag ~link =
  let l = Netgraph.Topology.link t.topo link in
  if l.Netgraph.Topology.u <> node && l.Netgraph.Topology.v <> node then
    invalid_arg "Net.install_route: node is not an endpoint of link";
  check_route_key ~dst ~tag;
  Hashtbl.replace t.tables.(node) (route_key ~dst ~tag) link

let install_path t ~tag path =
  let nodes = path.Netgraph.Path.nodes and links = path.Netgraph.Path.links in
  let dst = Netgraph.Path.dst path and src = Netgraph.Path.src path in
  Array.iteri
    (fun i lid ->
      install_route t ~node:nodes.(i) ~dst ~tag ~link:lid;
      install_route t ~node:nodes.(i + 1) ~dst:src ~tag ~link:lid)
    links

let route t ~node ~dst ~tag =
  Hashtbl.find_opt t.tables.(node) (route_key ~dst ~tag)

let attach_host t ~node h =
  match t.hosts.(node) with
  | Some _ -> invalid_arg "Net.attach_host: host already attached"
  | None -> t.hosts.(node) <- Some h

let add_tap t ~node f = t.taps.(node) <- t.taps.(node) @ [ f ]

let inject t ~at p =
  (match t.monitor with None -> () | Some m -> m.on_inject ~node:at p);
  if p.Packet.dst = at then receive t ~node:at p else forward t ~node:at p

let set_monitor t m = t.monitor <- m
let monitor t = t.monitor

let iter_linkqs t f =
  Array.iteri
    (fun lid qs ->
      f ~link:lid ~dir:Fwd qs.(0);
      f ~link:lid ~dir:Rev qs.(1))
    t.linkqs

let linkq t ~link ~dir = t.linkqs.(link).(dir_index dir)

let set_link_up t ~link up =
  Linkq.set_up t.linkqs.(link).(0) up;
  Linkq.set_up t.linkqs.(link).(1) up

let link_is_up t ~link = Linkq.is_up t.linkqs.(link).(0)

let set_link_rate t ~link rate_bps =
  Linkq.set_rate t.linkqs.(link).(0) rate_bps;
  Linkq.set_rate t.linkqs.(link).(1) rate_bps

let set_link_delay t ~link delay =
  Linkq.set_delay t.linkqs.(link).(0) delay;
  Linkq.set_delay t.linkqs.(link).(1) delay

let set_link_loss t ~link loss =
  Linkq.set_loss t.linkqs.(link).(0) loss;
  Linkq.set_loss t.linkqs.(link).(1) loss

let no_route_drops t = t.no_route

let total_drops t =
  Array.fold_left
    (fun acc qs ->
      acc + (Linkq.stats qs.(0)).Linkq.dropped + (Linkq.stats qs.(1)).Linkq.dropped)
    0 t.linkqs
