(** Model-based scenario fuzzing for the invariant audit.

    A {!case} is a compact, fully-shrinkable description of a random
    experiment: a pairwise-overlap topology from {!Netgraph.Generate}
    (the paper's Fig. 1 construction generalised to [n] paths), one of
    the registered congestion controllers, a scheduler, a queue
    discipline and buffer size, optional propagation jitter and a finite
    send buffer.  {!to_spec} turns it into a {!Core.Scenario.spec} with
    [audit = true]; the property under test ({!test}) is simply that the
    resulting {!Audit.report} contains zero violations — every byte
    conserved, queues within bounds, sequence numbers monotone, and the
    measured rates inside the LP feasible region.

    On failure QCheck shrinks toward the minimal failing case (fewest
    paths, smallest capacities and buffers, shortest duration) and the
    counterexample is printed together with the full audit report. *)

type case = {
  n : int;  (** number of pairwise-overlapping paths (2-4) *)
  base_mbps : int;  (** bottleneck capacity ramp base (5-25 Mbps) *)
  step_mbps : int;  (** bottleneck capacity ramp step (1-6 Mbps) *)
  cc_idx : int;  (** index into {!Mptcp.Algorithm.all} *)
  sched_idx : int;  (** 0 min-RTT, 1 round-robin, 2 redundant *)
  qdisc_idx : int;  (** 0 drop-tail, 1 RED, 2 RED+ECN, 3 CoDel *)
  limit_pkts : int;  (** per-link-direction buffer (4-32 packets) *)
  jitter_us : int;  (** uniform per-packet propagation jitter (0-300) *)
  delayed_ack : bool;
  buffer_pkts : int;  (** send buffer in MSS units; 0 = unlimited *)
  duration_ms : int;  (** simulated duration (200-500 ms) *)
  seed : int;
}

val cc_of : case -> Mptcp.Algorithm.t
val scheduler_of : case -> Mptcp.Scheduler.policy
val qdisc_of : case -> Netsim.Qdisc.t

val send_buffer : case -> int option
(** [buffer_pkts * default MSS] bytes, or [None] when unlimited. *)

val to_string : case -> string
(** One-line rendering, also used as the QCheck counterexample print. *)

val to_spec : case -> Core.Scenario.spec
(** Build the audited scenario.  Deterministic in the case. *)

val run_case : case -> Audit.report
(** Run {!to_spec} and return its audit report (never [None]). *)

val arbitrary : case QCheck.arbitrary
(** Generator with shrinking toward the smallest failing scenario. *)

val test : ?count:int -> unit -> QCheck.Test.t
(** The property: [count] (default 120) random audited scenarios all
    produce violation-free reports. *)

val fluid_test : ?count:int -> unit -> QCheck.Test.t
(** The analytic property: over [count] (default 100) random scenarios
    from the same generator, the fluid model (when the drawn algorithm
    has one) converges and its equilibrium goodputs are LP-feasible —
    checked through the same {!Netgraph.Constraints.violations} path as
    the audit's [lp.feasibility] invariant. *)

val pool_test : ?count:int -> unit -> QCheck.Test.t
(** The freelist property: over [count] (default 60) random audited
    scenarios the packet pool never double-releases or resurrects a live
    record (audit mode arms the pool's poison checks, so a violation
    raises mid-run) and its end-of-run counters are coherent
    ([double_releases = 0], [recycled <= released <= acquired]). *)

val wheel_test : ?count:int -> unit -> QCheck.Test.t
(** Timer-queue equivalence: [count] (default 400) random
    insert/cancel/pop programs driven against {!Engine.Timer_queue}'s
    wheel and heap implementations in lockstep must produce identical
    lengths, minima and pop streams.  Keys cover overdue pushes,
    multi-level cascades and beyond-span overflow entries. *)

val scoreboard_test : ?count:int -> unit -> QCheck.Test.t
(** Scoreboard equivalence: [count] (default 400) random
    append/ack/SACK/loss traces driven against {!Tcp.Scoreboard} and a
    naive list model must agree on every segment's flags, the O(1)
    SACK counter, the RFC 6675 pipe recount and both binary searches,
    with {!Tcp.Scoreboard.consistent} holding after every step. *)

val determinism_test : ?count:int -> unit -> QCheck.Test.t
(** Parallel determinism: [count] (default 20) random audited scenario
    pairs run through {!Core.Runner.scenarios} with [jobs = 1] and
    [jobs = 4] must be bit-identical — with the audit's heap shadow
    lockstep armed, so the timing wheel is cross-checked on every
    dispatch of both runs. *)

type events_case = {
  base : case;
  rto_sel : int;  (** 0 = no failover cap, else rto_cap = 1 + rto_sel *)
  evs : ev list;  (** compact timed-event descriptors (1-6 of them) *)
}
(** A {!case} plus a random timed-event script: link kills and repairs,
    capacity cuts and ramps, delay and loss changes, subflow churn and
    cross-traffic, all materialised against the generated topology by
    {!to_events_spec}. *)

and ev = { kind : int; which : int; t_pct : int; mag : int }

val to_events_spec : events_case -> Core.Scenario.spec
(** Build the audited dynamic scenario.  Event times land in the first
    three quarters of the run, capacity targets never exceed a link's
    declared rate (the static LP stays a valid bound) and loss stays
    below 30%.  Deterministic in the case. *)

val events_to_string : events_case -> string
val events_arbitrary : events_case QCheck.arbitrary

val events_test : ?count:int -> unit -> QCheck.Test.t
(** The dynamic property: [count] (default 200) random timed-event
    scripts interleaved with random topologies keep the full audit
    clean — conservation ledger (including lost-on-down-link fates),
    no delivery through a down link, monotone subflow liveness, and
    tail rates inside the static LP polytope. *)

val events_determinism_test : ?count:int -> unit -> QCheck.Test.t
(** Dynamic parallel determinism: [count] (default 12) random
    dynamic-scenario pairs run with [jobs = 1] and [jobs = 4] must
    agree on every counter — event processing, goodput, liveness churn
    and cross-traffic — and on the printed summary. *)

type bg_mix = {
  bg_classes : int;  (** fluid background classes (1-30) *)
  bg_flows : int;  (** flows aggregated per class (1-8) *)
  bg_cc_sel : int;  (** 0 CBR, 1 Reno, 2 CUBIC, 3 LIA, 4 OLIA *)
  bg_mbps10 : int;  (** CBR per-flow rate in tenths of Mbps (0.1-3.0) *)
  bg_rtt_ms : int;  (** class base RTT (5-60 ms) *)
  bg_start_pct : int;  (** activation time as % of the run (0-50) *)
}
(** A compact background-mix descriptor: one
    {!Events.Event.Background_start} declaration riding the generated
    topology's first path. *)

type hybrid_case = { hbase : case; mixes : bg_mix list }
(** A {!case} plus 1-3 background mixes: the hybrid fluid/packet
    co-simulation fuzzed end to end. *)

val to_hybrid_spec : hybrid_case -> Core.Scenario.spec
(** Build the audited hybrid scenario — foreground subflows at packet
    fidelity, each mix compiled into the shared fluid field by
    {!Core.Scenario.run}.  Deterministic in the case. *)

val hybrid_to_string : hybrid_case -> string
val hybrid_arbitrary : hybrid_case QCheck.arbitrary

val hybrid_test : ?count:int -> unit -> QCheck.Test.t
(** The hybrid property: [count] (default 40) random topologies crossed
    with random background mixes keep the full audit clean (capacity
    integrals against the effective rate, occupancy bounds, foreground
    rates inside the static LP polytope), produce a background summary
    whose occupancy respects the buffer and whose goodput never exceeds
    the offered load, and stay bit-identical between [jobs = 1] and
    [jobs = 4] sweeps. *)

val daemon_test : ?count:int -> unit -> QCheck.Test.t
(** Daemon robustness: [count] (default 12) random garbage scripts —
    unframed bytes, oversized length prefixes, truncated frames,
    unbalanced sexps, unknown request forms, single-bit flips and
    wrong-version frames — fired at a live daemon.  The server never
    crashes: every frame it can answer gets a typed error reply, a
    well-formed request on a fresh connection succeeds after each
    piece of garbage, and the daemon still drains cleanly (socket
    unlinked) at the end. *)
