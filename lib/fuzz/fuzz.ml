type case = {
  n : int;
  base_mbps : int;
  step_mbps : int;
  cc_idx : int;
  sched_idx : int;
  qdisc_idx : int;
  limit_pkts : int;
  jitter_us : int;
  delayed_ack : bool;
  buffer_pkts : int;
  duration_ms : int;
  seed : int;
}

let cc_of c = List.nth Mptcp.Algorithm.all (c.cc_idx mod List.length Mptcp.Algorithm.all)

let scheduler_of c =
  match c.sched_idx mod 3 with
  | 0 -> Mptcp.Scheduler.Min_rtt
  | 1 -> Mptcp.Scheduler.Round_robin
  | _ -> Mptcp.Scheduler.Redundant

let qdisc_of c =
  match c.qdisc_idx mod 4 with
  | 0 -> Netsim.Qdisc.Drop_tail
  | 1 -> Netsim.Qdisc.Red Netsim.Qdisc.default_red
  | 2 -> Netsim.Qdisc.Red Netsim.Qdisc.default_red_ecn
  | _ -> Netsim.Qdisc.Codel Netsim.Qdisc.default_codel

let qdisc_name c =
  match c.qdisc_idx mod 4 with
  | 0 -> "droptail"
  | 1 -> "red"
  | 2 -> "red+ecn"
  | _ -> "codel"

let send_buffer c =
  if c.buffer_pkts <= 0 then None else Some (c.buffer_pkts * Packet.default_mss)

let to_string c =
  Printf.sprintf
    "{n=%d caps=%d+%d cc=%s sched=%s qdisc=%s limit=%d jitter=%dus \
     dack=%b buf=%s dur=%dms seed=%d}"
    c.n c.base_mbps c.step_mbps
    (Mptcp.Algorithm.name (cc_of c))
    (Mptcp.Scheduler.policy_name (scheduler_of c))
    (qdisc_name c) c.limit_pkts c.jitter_us c.delayed_ack
    (match send_buffer c with
    | None -> "inf"
    | Some b -> string_of_int b)
    c.duration_ms c.seed

let build_spec ?rto_cap ?(events_of = fun _ -> []) c =
  let topo, paths =
    Netgraph.Generate.pairwise_overlap ~n:c.n
      ~cap_bps:
        (Netgraph.Generate.spread_caps ~base_mbps:c.base_mbps
           ~step_mbps:c.step_mbps)
      ()
  in
  let tagged = Mptcp.Path_manager.tag_paths paths in
  let net_config =
    { Netsim.Net.qdisc = qdisc_of c; limit_pkts = c.limit_pkts;
      delay_jitter = Engine.Time.us c.jitter_us }
  in
  Core.Scenario.make ~topo ~paths:tagged ~cc:(cc_of c)
    ~scheduler:(scheduler_of c)
    ~duration:(Engine.Time.ms c.duration_ms)
    ~sampling:(Engine.Time.ms (max 20 (c.duration_ms / 5)))
    ~seed:c.seed ~net_config ~delayed_ack:c.delayed_ack
    ?send_buffer:(send_buffer c) ~audit:true ?rto_cap
    ~events:(events_of topo) ()

let to_spec c = build_spec c

let run_case c =
  let result = Core.Scenario.run (to_spec c) in
  match result.Core.Scenario.audit with
  | Some rep -> rep
  | None -> assert false (* to_spec sets audit = true *)

let arbitrary =
  let open QCheck in
  let build
      ( (n, base_mbps, step_mbps, cc_idx),
        (sched_idx, qdisc_idx, limit_pkts, jitter_us),
        (delayed_ack, buffer_pkts, duration_ms, seed) ) =
    {
      n; base_mbps; step_mbps; cc_idx; sched_idx; qdisc_idx; limit_pkts;
      jitter_us; delayed_ack; buffer_pkts; duration_ms; seed;
    }
  and strip c =
    ( (c.n, c.base_mbps, c.step_mbps, c.cc_idx),
      (c.sched_idx, c.qdisc_idx, c.limit_pkts, c.jitter_us),
      (c.delayed_ack, c.buffer_pkts, c.duration_ms, c.seed) )
  in
  set_print to_string
    (map ~rev:strip build
       (triple
          (quad (int_range 2 4) (int_range 5 25) (int_range 1 6)
             (int_range 0 (List.length Mptcp.Algorithm.all - 1)))
          (quad (int_range 0 2) (int_range 0 3) (int_range 4 32)
             (int_range 0 300))
          (quad bool (int_range 0 64) (int_range 200 500)
             (int_range 1 1000))))

let pool_test ?(count = 60) () =
  QCheck.Test.make ~count
    ~name:"fuzz: pooled packets are never double-released or resurrected"
    arbitrary
    (fun c ->
      (* [to_spec] sets [audit = true], which also switches the net's
         packet pool into debug mode: a double release raises [Failure]
         mid-run, and popping a freelist slot that holds a live record (a
         released packet resurrected behind the pool's back) does the
         same — so either bug aborts the run and fails the property with
         the offending case attached.  On top of that, the end-of-run
         counters must be coherent. *)
      let r = Core.Scenario.run (to_spec c) in
      let s = r.Core.Scenario.pool_stats in
      let fail fmt =
        QCheck.Test.fail_reportf ("case %s: " ^^ fmt) (to_string c)
      in
      if s.Packet.Pool.double_releases > 0 then
        fail "%d double releases" s.Packet.Pool.double_releases
      else if s.Packet.Pool.released > s.Packet.Pool.acquired then
        fail "released %d > acquired %d - a packet the pool never handed out"
          s.Packet.Pool.released s.Packet.Pool.acquired
      else if s.Packet.Pool.recycled > s.Packet.Pool.released then
        fail "recycled %d > released %d - freelist invented a record"
          s.Packet.Pool.recycled s.Packet.Pool.released
      else if s.Packet.Pool.acquired = 0 then
        fail "no pooled acquisitions - property is vacuous"
      else true)

let fluid_test ?(count = 100) () =
  QCheck.Test.make ~count
    ~name:"fuzz: fluid equilibria are LP-feasible on random topologies"
    arbitrary
    (fun c ->
      (* Same generator as the packet-level sweep, but the property is
         analytic: compile the scenario's fluid model, solve for the
         equilibrium, and require the resulting goodputs to sit inside
         the LP polytope — through the same
         Netgraph.Constraints.violations checker the audit uses.
         Algorithms without a fluid counterpart are skipped (the
         compile step reports them), never silently passed: the match
         is exhaustive over the compile result. *)
      match Validate.equilibrium (to_spec c) with
      | Error _ -> true (* BALIA / EWTCP / wVegas: no fluid model *)
      | Ok v ->
        if not v.Validate.diag.Fluid.Equilibrium.converged then
          QCheck.Test.fail_reportf "case %s: fluid solve did not converge@.%a"
            (to_string c) Validate.pp v
        else if not v.Validate.lp_feasible then
          QCheck.Test.fail_reportf
            "case %s: fluid equilibrium outside the LP polytope@.%a"
            (to_string c) Validate.pp v
        else true)

(* --- timing-wheel vs reference-heap equivalence --- *)

module Wq = Engine.Timer_queue.Of_wheel
module Hq = Engine.Timer_queue.Of_heap

(* A program is a list of (opcode, operand) pairs interpreted against
   both queue implementations in lockstep.  Keys are derived from the
   operand so that shrinking stays meaningful, and deliberately cover
   the wheel's awkward regions: overdue keys (below the last popped
   key), far-future keys several levels up, and beyond-span keys that
   land in the overflow heap. *)
let wheel_ops =
  QCheck.(
    list_of_size Gen.(int_range 1 300)
      (pair (int_range 0 5) (int_range 0 1_000_000)))

let wheel_test ?(count = 400) () =
  QCheck.Test.make ~count
    ~name:"fuzz: timing wheel and reference heap pop identically" wheel_ops
    (fun prog ->
      let w = Wq.create () and h = Hq.create () in
      let handles = ref [] and n_handles = ref 0 in
      let tie = ref 0 and clock = ref 0 in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let agree ctx =
        if Wq.length w <> Hq.length h then
          fail "%s: wheel length %d <> heap length %d" ctx (Wq.length w)
            (Hq.length h)
        else if
          Wq.length w > 0
          && (Wq.min_key_exn w <> Hq.min_key_exn h
             || Wq.min_tie_exn w <> Hq.min_tie_exn h)
        then
          fail "%s: wheel min (%d,%d) <> heap min (%d,%d)" ctx
            (Wq.min_key_exn w) (Wq.min_tie_exn w) (Hq.min_key_exn h)
            (Hq.min_tie_exn h)
      in
      let pop_both () =
        agree "pre-pop";
        if Wq.length w > 0 then begin
          clock := max !clock (Wq.min_key_exn w);
          let vw = Wq.pop_exn w and vh = Hq.pop_exn h in
          if vw <> vh then fail "pop: wheel value %d <> heap value %d" vw vh
        end
      in
      List.iter
        (fun (code, a) ->
          match code with
          | 0 | 1 ->
            (* Push: bucket the operand into key regimes. *)
            let key =
              match a mod 5 with
              | 0 -> !clock + (a / 5 mod 1_000)          (* near future *)
              | 1 -> max 0 (!clock - (a / 5 mod 1_000))  (* overdue *)
              | 2 -> !clock + (a / 5 * 1_000_000)        (* higher levels *)
              | 3 -> !clock + (1 lsl 52) + a             (* overflow heap *)
              | _ -> a                                   (* anywhere *)
            in
            incr tie;
            let v = !tie in
            let hw = Wq.push w ~key ~tie:!tie v in
            let hh = Hq.push h ~key ~tie:!tie v in
            handles := (hw, hh) :: !handles;
            incr n_handles
          | 2 | 3 ->
            (* Cancel a random handle — possibly one already popped or
               already cancelled, exercising idempotence. *)
            if !n_handles > 0 then begin
              let hw, hh = List.nth !handles (a mod !n_handles) in
              Wq.cancel w hw;
              Hq.cancel h hh
            end
          | _ -> pop_both ())
        prog;
      (* Drain: the full residual pop streams must match. *)
      while Wq.length w > 0 || Hq.length h > 0 do
        pop_both ()
      done;
      true)

(* --- flat scoreboard vs reference model --- *)

(* Reference model: a plain list of (seq, len, sacked, lost) cells kept
   in append order — the same information the ring stores, maintained
   naively. *)
type sb_cell = {
  m_seq : int;
  m_len : int;
  mutable m_sacked : bool;
  mutable m_lost : bool;
}

let scoreboard_ops =
  QCheck.(
    list_of_size Gen.(int_range 1 300)
      (pair (int_range 0 7) (int_range 0 1_000_000)))

let scoreboard_test ?(count = 400) () =
  QCheck.Test.make ~count
    ~name:"fuzz: flat scoreboard matches reference model on random traces"
    scoreboard_ops
    (fun prog ->
      let sb = Tcp.Scoreboard.create () in
      let model = ref [] in (* newest first; reversed for logical order *)
      let n = ref 0 and next_seq = ref 0 in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let logical () = List.rev !model in
      let nth_cell i = List.nth (logical ()) i in
      let verify ctx =
        if Tcp.Scoreboard.length sb <> !n then
          fail "%s: length %d <> model %d" ctx (Tcp.Scoreboard.length sb) !n;
        if not (Tcp.Scoreboard.consistent sb) then
          fail "%s: consistency check failed" ctx;
        let sacked = ref 0 and pipe = ref 0 in
        List.iteri
          (fun i c ->
            let p = Tcp.Scoreboard.idx sb i in
            if
              Tcp.Scoreboard.seq_at sb p <> c.m_seq
              || Tcp.Scoreboard.len_at sb p <> c.m_len
              || Tcp.Scoreboard.sacked_at sb p <> c.m_sacked
              || Tcp.Scoreboard.lost_at sb p <> c.m_lost
            then
              fail "%s: segment %d is (%d,%d,%b,%b), model (%d,%d,%b,%b)" ctx
                i
                (Tcp.Scoreboard.seq_at sb p)
                (Tcp.Scoreboard.len_at sb p)
                (Tcp.Scoreboard.sacked_at sb p)
                (Tcp.Scoreboard.lost_at sb p)
                c.m_seq c.m_len c.m_sacked c.m_lost;
            if c.m_sacked then incr sacked;
            if (not c.m_sacked) && not c.m_lost then pipe := !pipe + c.m_len)
          (logical ());
        if Tcp.Scoreboard.sacked_count sb <> !sacked then
          fail "%s: sacked_count %d <> model %d" ctx
            (Tcp.Scoreboard.sacked_count sb)
            !sacked;
        if Tcp.Scoreboard.pipe_recount sb <> !pipe then
          fail "%s: pipe_recount %d <> model %d" ctx
            (Tcp.Scoreboard.pipe_recount sb)
            !pipe
      in
      List.iter
        (fun (code, a) ->
          (match code with
          | 0 | 1 | 2 ->
            let len = 1 + (a mod 1448) in
            ignore
              (Tcp.Scoreboard.append sb ~seq:!next_seq ~len ~dss:None : int);
            model :=
              { m_seq = !next_seq; m_len = len; m_sacked = false;
                m_lost = false }
              :: !model;
            next_seq := !next_seq + len;
            incr n
          | 3 ->
            if !n > 0 then begin
              Tcp.Scoreboard.pop_front sb;
              model := List.rev (List.tl (logical ()));
              decr n
            end
          | 4 ->
            if !n > 0 then begin
              let i = a mod !n in
              let c = nth_cell i in
              let was = c.m_sacked in
              c.m_sacked <- true;
              let transition =
                Tcp.Scoreboard.mark_sacked sb (Tcp.Scoreboard.idx sb i)
              in
              if transition <> not was then
                fail "mark_sacked transition %b, model %b" transition
                  (not was)
            end
          | 5 ->
            if !n > 0 then begin
              let i = a mod !n in
              (nth_cell i).m_lost <- true;
              Tcp.Scoreboard.mark_lost sb (Tcp.Scoreboard.idx sb i)
            end
          | 6 ->
            if !n > 0 then begin
              let i = a mod !n in
              (nth_cell i).m_lost <- false;
              Tcp.Scoreboard.clear_lost sb (Tcp.Scoreboard.idx sb i)
            end
          | _ ->
            (* Probe the searches against the model. *)
            if !n > 0 then begin
              let first = (nth_cell 0).m_seq in
              let x = first + (a mod (!next_seq - first + 20)) - 10 in
              let cells = logical () in
              let expect_lb =
                let rec go i = function
                  | [] -> !n
                  | c :: tl -> if c.m_seq >= x then i else go (i + 1) tl
                in
                go 0 cells
              in
              let lb = Tcp.Scoreboard.lower_bound sb x in
              if lb <> expect_lb then
                fail "lower_bound %d = %d, model %d" x lb expect_lb;
              let expect_find =
                List.exists (fun c -> c.m_seq = x) cells
              in
              let f = Tcp.Scoreboard.find sb x in
              if (f >= 0) <> expect_find then
                fail "find %d = %d, model %b" x f expect_find;
              if f >= 0 && Tcp.Scoreboard.seq_at sb f <> x then
                fail "find %d returned segment at %d" x
                  (Tcp.Scoreboard.seq_at sb f)
            end);
          verify "post-op")
        prog;
      true)

(* --- parallel-sweep determinism (wheel edition) --- *)

let determinism_test ?(count = 20) () =
  QCheck.Test.make ~count
    ~name:
      "fuzz: random scenario batches identical for jobs 1 and 4 (wheel \
       lockstep armed)"
    QCheck.(pair arbitrary arbitrary)
    (fun (c1, c2) ->
      (* Both runs are audited, so the scheduler replays every event
         through the heap shadow as well — parallel domains must still
         be bit-identical to the serial run. *)
      let specs = [ to_spec c1; to_spec c2 ] in
      let fingerprint jobs =
        Core.Runner.scenarios ~jobs specs
        |> List.map (fun r ->
               ( r.Core.Scenario.events_processed,
                 r.Core.Scenario.delivered_bytes,
                 Format.asprintf "%a" Core.Scenario.pp_summary r ))
      in
      let f1 = fingerprint 1 and f4 = fingerprint 4 in
      if f1 <> f4 then
        QCheck.Test.fail_reportf
          "cases %s / %s: jobs=1 and jobs=4 runs diverge" (to_string c1)
          (to_string c2)
      else true)

(* --- dynamic-events fuzzing --- *)

module E = Events.Event

type ev = { kind : int; which : int; t_pct : int; mag : int }
type events_case = { base : case; rto_sel : int; evs : ev list }

let events_rto_cap ec = if ec.rto_sel = 0 then None else Some (1 + ec.rto_sel)

let ev_to_string e =
  Printf.sprintf "(k%d w%d t%d m%d)" e.kind e.which e.t_pct e.mag

let events_to_string ec =
  Printf.sprintf "%s rto_cap=%s events=[%s]" (to_string ec.base)
    (match events_rto_cap ec with
    | None -> "-"
    | Some c -> string_of_int c)
    (String.concat " " (List.map ev_to_string ec.evs))

(* Turn the compact descriptors into concrete, validate-clean events
   against the generated topology.  Fire times sit in [10%, 75%] of the
   run so dynamics always land while traffic flows; capacity targets
   stay in [25%, 100%] of the declared rate so the static LP remains a
   valid upper bound; loss tops out at 29%. *)
let materialise_events ec topo =
  let dur = Engine.Time.ms ec.base.duration_ms in
  let num_links = Netgraph.Topology.num_links topo in
  let num_nodes = Netgraph.Topology.num_nodes topo in
  List.mapi
    (fun i e ->
      let t_at =
        Engine.Time.scale dur ((10. +. float (e.t_pct mod 66)) /. 100.)
      in
      let link = e.which mod num_links in
      let cap = (Netgraph.Topology.link topo link).Netgraph.Topology.capacity_bps in
      let shrunk = max 1 (cap * (25 + (e.mag mod 76)) / 100) in
      let action =
        match e.kind mod 8 with
        | 0 -> E.Link_down { link }
        | 1 -> E.Link_up { link }
        | 2 -> E.Capacity_set { link; rate_bps = shrunk }
        | 3 ->
          E.Capacity_ramp
            {
              link;
              to_bps = shrunk;
              over = Engine.Time.ms (10 + (e.mag mod 50));
              steps = 2 + (e.mag mod 4);
            }
        | 4 -> E.Delay_set { link; delay = Engine.Time.us (100 + (e.mag mod 5000)) }
        | 5 -> E.Loss_set { link; loss = float_of_int (e.mag mod 30) /. 100. }
        | 6 ->
          let subflow = e.which mod ec.base.n in
          if e.mag land 1 = 0 then E.Subflow_close { subflow }
          else E.Subflow_add { subflow }
        | _ ->
          let src = e.which mod num_nodes in
          let dst = (src + 1 + (e.which / 7 mod (num_nodes - 1))) mod num_nodes in
          E.Traffic_start
            {
              src;
              dst;
              tag = 100 + i;
              rate_bps = max 1 (cap / 4);
              stop_at =
                Some (Engine.Time.add t_at (Engine.Time.ms (20 + (e.mag mod 100))));
            }
      in
      E.at action ~at:t_at)
    ec.evs

let to_events_spec ec =
  build_spec
    ?rto_cap:(events_rto_cap ec)
    ~events_of:(materialise_events ec) ec.base

let events_arbitrary =
  let open QCheck in
  let build (base, rto_sel, raw) =
    {
      base;
      rto_sel;
      evs =
        List.map (fun (kind, which, t_pct, mag) -> { kind; which; t_pct; mag }) raw;
    }
  and strip ec =
    ( ec.base,
      ec.rto_sel,
      List.map (fun e -> (e.kind, e.which, e.t_pct, e.mag)) ec.evs )
  in
  set_print events_to_string
    (map ~rev:strip build
       (triple arbitrary (int_range 0 3)
          (list_of_size
             Gen.(int_range 1 6)
             (quad (int_range 0 7) (int_range 0 10_000) (int_range 0 100)
                (int_range 0 10_000)))))

let events_test ?(count = 200) () =
  QCheck.Test.make ~count
    ~name:
      "fuzz: random timed events over random topologies stay violation-free"
    events_arbitrary
    (fun ec ->
      let r = Core.Scenario.run (to_events_spec ec) in
      let rep =
        match r.Core.Scenario.audit with
        | Some rep -> rep
        | None -> assert false
      in
      if rep.Audit.total_violations > 0 then
        QCheck.Test.fail_reportf "case %s@.%a" (events_to_string ec)
          Audit.pp_report rep
      else if rep.Audit.checks = 0 || rep.Audit.ledger.Audit.injected_pkts = 0
      then
        QCheck.Test.fail_reportf "case %s: no checks performed (%d injected)"
          (events_to_string ec) rep.Audit.ledger.Audit.injected_pkts
      else true)

let events_determinism_test ?(count = 12) () =
  QCheck.Test.make ~count
    ~name:"fuzz: dynamic-event batches identical for jobs 1 and 4"
    QCheck.(pair events_arbitrary events_arbitrary)
    (fun (e1, e2) ->
      let specs = [ to_events_spec e1; to_events_spec e2 ] in
      let fingerprint jobs =
        Core.Runner.scenarios ~jobs specs
        |> List.map (fun r ->
               ( r.Core.Scenario.events_processed,
                 r.Core.Scenario.delivered_bytes,
                 r.Core.Scenario.subflow_churn,
                 r.Core.Scenario.cross_traffic_bytes,
                 Format.asprintf "%a" Core.Scenario.pp_summary r ))
      in
      let f1 = fingerprint 1 and f4 = fingerprint 4 in
      if f1 <> f4 then
        QCheck.Test.fail_reportf
          "cases %s / %s: jobs=1 and jobs=4 dynamic runs diverge"
          (events_to_string e1) (events_to_string e2)
      else true)

(* --- hybrid fluid/packet fuzzing --- *)

type bg_mix = {
  bg_classes : int;
  bg_flows : int;
  bg_cc_sel : int;
  bg_mbps10 : int;
  bg_rtt_ms : int;
  bg_start_pct : int;
}

type hybrid_case = { hbase : case; mixes : bg_mix list }

let bg_cc m =
  match m.bg_cc_sel mod 5 with
  | 0 -> None (* constant bit-rate *)
  | 1 -> Some Mptcp.Algorithm.Reno
  | 2 -> Some Mptcp.Algorithm.Cubic
  | 3 -> Some Mptcp.Algorithm.Lia
  | _ -> Some Mptcp.Algorithm.Olia

let bg_to_string m =
  Printf.sprintf "(c%d f%d %s r%d t%d)" (1 + (m.bg_classes mod 30))
    (1 + (m.bg_flows mod 8))
    (match bg_cc m with
    | None -> Printf.sprintf "cbr%.1f" (float (1 + (m.bg_mbps10 mod 30)) /. 10.)
    | Some a -> Mptcp.Algorithm.name a)
    (5 + (m.bg_rtt_ms mod 56))
    (m.bg_start_pct mod 51)

let hybrid_to_string hc =
  Printf.sprintf "%s bg=[%s]" (to_string hc.hbase)
    (String.concat " " (List.map bg_to_string hc.mixes))

let to_hybrid_spec hc =
  (* Same topology construction as [build_spec], but the paths are
     needed here too: every generated path runs s -> d, and the
     background field rides the shortest of them, contending with the
     foreground subflows on whichever bottlenecks it crosses. *)
  let c = hc.hbase in
  let topo, paths =
    Netgraph.Generate.pairwise_overlap ~n:c.n
      ~cap_bps:
        (Netgraph.Generate.spread_caps ~base_mbps:c.base_mbps
           ~step_mbps:c.step_mbps)
      ()
  in
  let p0 = List.hd paths in
  let src = Netgraph.Path.src p0 and dst = Netgraph.Path.dst p0 in
  let dur = Engine.Time.ms c.duration_ms in
  let events =
    List.map
      (fun m ->
        let cc = bg_cc m in
        let rate_bps =
          match cc with
          | None -> (1 + (m.bg_mbps10 mod 30)) * 100_000
          | Some _ -> 0
        in
        E.at
          (E.Background_start
             {
               src;
               dst;
               classes = 1 + (m.bg_classes mod 30);
               flows = 1 + (m.bg_flows mod 8);
               cc;
               rate_bps;
               rtt = Engine.Time.ms (5 + (m.bg_rtt_ms mod 56));
             })
          ~at:(Engine.Time.scale dur (float (m.bg_start_pct mod 51) /. 100.)))
      hc.mixes
  in
  let tagged = Mptcp.Path_manager.tag_paths paths in
  let net_config =
    { Netsim.Net.qdisc = qdisc_of c; limit_pkts = c.limit_pkts;
      delay_jitter = Engine.Time.us c.jitter_us }
  in
  Core.Scenario.make ~topo ~paths:tagged ~cc:(cc_of c)
    ~scheduler:(scheduler_of c) ~duration:dur
    ~sampling:(Engine.Time.ms (max 20 (c.duration_ms / 5)))
    ~seed:c.seed ~net_config ~delayed_ack:c.delayed_ack
    ?send_buffer:(send_buffer c) ~audit:true ~events ()

let hybrid_arbitrary =
  let open QCheck in
  let build_mix (bg_classes, bg_flows, bg_cc_sel, (bg_mbps10, bg_rtt_ms, bg_start_pct)) =
    { bg_classes; bg_flows; bg_cc_sel; bg_mbps10; bg_rtt_ms; bg_start_pct }
  and strip_mix m =
    (m.bg_classes, m.bg_flows, m.bg_cc_sel, (m.bg_mbps10, m.bg_rtt_ms, m.bg_start_pct))
  in
  set_print hybrid_to_string
    (map
       ~rev:(fun hc -> (hc.hbase, List.map strip_mix hc.mixes))
       (fun (hbase, raw) -> { hbase; mixes = List.map build_mix raw })
       (pair arbitrary
          (list_of_size
             Gen.(int_range 1 3)
             (quad (int_range 0 29) (int_range 0 7) (int_range 0 4)
                (triple (int_range 0 29) (int_range 0 55) (int_range 0 50))))))

let hybrid_test ?(count = 40) () =
  QCheck.Test.make ~count
    ~name:
      "fuzz: hybrid fluid/packet runs stay audit-clean and jobs-deterministic"
    hybrid_arbitrary
    (fun hc ->
      (* The audit's capacity/occupancy/conservation invariants all run
         with the fluid field slowing the shared serializers, and its
         lp.feasibility check keeps the measured foreground rates inside
         the static LP polytope (background only removes capacity, so
         the LP stays a true upper bound).  The whole co-simulation must
         also stay bit-identical between serial and parallel sweeps. *)
      let spec = to_hybrid_spec hc in
      let fail fmt =
        QCheck.Test.fail_reportf ("case %s: " ^^ fmt) (hybrid_to_string hc)
      in
      let run jobs =
        match Core.Runner.scenarios ~jobs [ spec ] with
        | [ r ] -> r
        | _ -> assert false
      in
      let fingerprint r =
        ( r.Core.Scenario.events_processed,
          r.Core.Scenario.delivered_bytes,
          Format.asprintf "%a" Core.Scenario.pp_summary r )
      in
      let r = run 1 in
      let rep =
        match r.Core.Scenario.audit with
        | Some rep -> rep
        | None -> assert false
      in
      if rep.Audit.total_violations > 0 then
        QCheck.Test.fail_reportf "case %s@.%a" (hybrid_to_string hc)
          Audit.pp_report rep
      else begin
        (match r.Core.Scenario.background with
        | None -> fail "no background summary on a hybrid run"
        | Some s ->
          if s.Fluid.Background.Driver.ticks = 0 then
            fail "background driver never ticked"
          else if
            s.Fluid.Background.Driver.max_occupancy_pkts
            > float_of_int hc.hbase.limit_pkts +. 1e-9
          then
            fail "fluid occupancy %.2f above the %d-packet buffer"
              s.Fluid.Background.Driver.max_occupancy_pkts
              hc.hbase.limit_pkts
          else if
            s.Fluid.Background.Driver.goodput_mbps
            > s.Fluid.Background.Driver.offered_mbps +. 1e-9
          then
            fail "background goodput %.2f above offered %.2f"
              s.Fluid.Background.Driver.goodput_mbps
              s.Fluid.Background.Driver.offered_mbps
          else if fingerprint r <> fingerprint (run 4) then
            fail "jobs=1 and jobs=4 hybrid runs diverge"
          else ());
        true
      end)

let test ?(count = 120) () =
  QCheck.Test.make ~count
    ~name:"fuzz: random audited scenarios are violation-free" arbitrary
    (fun c ->
      let rep = run_case c in
      if rep.Audit.total_violations > 0 then
        QCheck.Test.fail_reportf "case %s@.%a" (to_string c) Audit.pp_report
          rep
      else if rep.Audit.checks = 0 || rep.Audit.ledger.Audit.injected_pkts = 0
      then
        (* a run that never evaluated anything would pass vacuously *)
        QCheck.Test.fail_reportf "case %s: no checks performed (%d injected)"
          (to_string c) rep.Audit.ledger.Audit.injected_pkts
      else true)

(* --- daemon protocol robustness --- *)

(* Deterministic garbage: a tiny LCG so cases shrink and replay without
   a shared RNG. *)
let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let garbage_bytes n seed =
  let b = Bytes.create n in
  let s = ref (lcg (seed + 7)) in
  for i = 0 to n - 1 do
    s := lcg !s;
    Bytes.set b i (Char.chr (!s land 0xff))
  done;
  Bytes.to_string b

let write_raw fd s =
  (* the server may already have dropped the connection: that is a
     legal answer to garbage, not a test failure *)
  try
    let rec go off =
      if off < String.length s then
        go (off + Unix.write_substring fd s off (String.length s - off))
    in
    go 0
  with Unix.Unix_error _ -> ()

let frame_header n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let daemon_garbage_kinds = 7

(* Send one garbage transmission on a fresh connection.  Kinds 1 and
   3-6 are framed well enough that the server owes a typed error reply;
   kinds 0 and 2 break the framing itself, where dropping the
   connection is the only sound answer. *)
let send_daemon_garbage ~socket i kind =
  let fd = Daemon.Protocol.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let expect_reply =
        match kind with 1 | 3 | 4 | 5 | 6 -> true | _ -> false
      in
      (match kind with
      | 0 ->
        (* raw bytes, no framing at all *)
        write_raw fd (garbage_bytes (8 + i) i)
      | 1 ->
        (* oversized declared length *)
        write_raw fd (frame_header (Daemon.Protocol.max_frame + 1 + i))
      | 2 ->
        (* truncated: declare more than we send, then hang up *)
        write_raw fd (frame_header (128 + i) ^ garbage_bytes 64 i)
      | 3 ->
        (* complete frame, unbalanced sexp *)
        Daemon.Protocol.write_frame fd "(mptcp-daemon (status"
      | 4 ->
        (* well-formed sexp, unknown request form *)
        Daemon.Protocol.write_frame fd
          (Printf.sprintf "(mptcp-daemon %d (frobnicate 3))"
             Daemon.Protocol.version)
      | 5 ->
        (* a valid request with one bit flipped *)
        let s = Bytes.of_string (Daemon.Protocol.render_request Daemon.Protocol.Status) in
        let pos = (i * 13) mod Bytes.length s in
        Bytes.set s pos
          (Char.chr (Char.code (Bytes.get s pos) lxor (1 lsl (i mod 8))));
        Daemon.Protocol.write_frame fd (Bytes.to_string s)
      | 6 ->
        (* structurally valid frame from a future protocol version *)
        Daemon.Protocol.write_frame fd
          (Printf.sprintf "(mptcp-daemon %d (status))"
             (Daemon.Protocol.version + 1))
      | _ -> assert false);
      if expect_reply then
        match Daemon.Protocol.read_frame fd with
        | Daemon.Protocol.Frame s -> (
          match Daemon.Protocol.parse_response s with
          | Daemon.Protocol.Error _ -> ()
          | _ ->
            QCheck.Test.fail_reportf
              "garbage kind %d got a non-error reply" kind
          | exception Events.Sexp.Parse_error msg ->
            QCheck.Test.fail_reportf
              "garbage kind %d got an unreadable reply: %s" kind msg)
        | _ ->
          QCheck.Test.fail_reportf "garbage kind %d got no reply frame" kind)

let daemon_seq = ref 0

let daemon_test ?(count = 12) () =
  QCheck.Test.make ~count
    ~name:"fuzz: the daemon survives protocol garbage and still drains"
    (QCheck.list_of_size
       QCheck.Gen.(int_range 1 8)
       (QCheck.int_bound (daemon_garbage_kinds - 1)))
    (fun kinds ->
      incr daemon_seq;
      (* relative paths: dune sandboxes the test cwd, and a short
         relative socket path dodges the 108-byte sockaddr_un limit *)
      let tag = Printf.sprintf "%d_%d" (Unix.getpid ()) !daemon_seq in
      let socket = Printf.sprintf "_dfz_%s.sock" tag in
      let conf =
        {
          (Daemon.default_conf ~socket_path:socket
             ~store_dir:(Printf.sprintf "_dfz_store_%s" tag))
          with
          Daemon.jobs = Some 1;
          log = false;
        }
      in
      let t = Daemon.start conf in
      let server = Thread.create Daemon.serve t in
      Fun.protect
        ~finally:(fun () ->
          (try ignore (Daemon.handle t Daemon.Protocol.Drain)
           with _ -> ());
          Thread.join server)
        (fun () ->
          List.iteri
            (fun i kind ->
              send_daemon_garbage ~socket i kind;
              (* the daemon must still answer a well-formed request on a
                 fresh connection after every piece of garbage *)
              match Daemon.Protocol.call_once ~socket Daemon.Protocol.Status with
              | Daemon.Protocol.Status_reply s ->
                if s.Daemon.Protocol.pid <> Unix.getpid () then
                  QCheck.Test.fail_report "status reply from a foreign pid"
              | _ ->
                QCheck.Test.fail_reportf
                  "no status reply after garbage kind %d" kind)
            kinds);
      if Sys.file_exists socket then
        QCheck.Test.fail_reportf "socket %s still present after drain" socket;
      true)
