type case = {
  n : int;
  base_mbps : int;
  step_mbps : int;
  cc_idx : int;
  sched_idx : int;
  qdisc_idx : int;
  limit_pkts : int;
  jitter_us : int;
  delayed_ack : bool;
  buffer_pkts : int;
  duration_ms : int;
  seed : int;
}

let cc_of c = List.nth Mptcp.Algorithm.all (c.cc_idx mod List.length Mptcp.Algorithm.all)

let scheduler_of c =
  match c.sched_idx mod 3 with
  | 0 -> Mptcp.Scheduler.Min_rtt
  | 1 -> Mptcp.Scheduler.Round_robin
  | _ -> Mptcp.Scheduler.Redundant

let qdisc_of c =
  match c.qdisc_idx mod 4 with
  | 0 -> Netsim.Qdisc.Drop_tail
  | 1 -> Netsim.Qdisc.Red Netsim.Qdisc.default_red
  | 2 -> Netsim.Qdisc.Red Netsim.Qdisc.default_red_ecn
  | _ -> Netsim.Qdisc.Codel Netsim.Qdisc.default_codel

let qdisc_name c =
  match c.qdisc_idx mod 4 with
  | 0 -> "droptail"
  | 1 -> "red"
  | 2 -> "red+ecn"
  | _ -> "codel"

let send_buffer c =
  if c.buffer_pkts <= 0 then None else Some (c.buffer_pkts * Packet.default_mss)

let to_string c =
  Printf.sprintf
    "{n=%d caps=%d+%d cc=%s sched=%s qdisc=%s limit=%d jitter=%dus \
     dack=%b buf=%s dur=%dms seed=%d}"
    c.n c.base_mbps c.step_mbps
    (Mptcp.Algorithm.name (cc_of c))
    (Mptcp.Scheduler.policy_name (scheduler_of c))
    (qdisc_name c) c.limit_pkts c.jitter_us c.delayed_ack
    (match send_buffer c with
    | None -> "inf"
    | Some b -> string_of_int b)
    c.duration_ms c.seed

let to_spec c =
  let topo, paths =
    Netgraph.Generate.pairwise_overlap ~n:c.n
      ~cap_bps:
        (Netgraph.Generate.spread_caps ~base_mbps:c.base_mbps
           ~step_mbps:c.step_mbps)
      ()
  in
  let tagged = Mptcp.Path_manager.tag_paths paths in
  let net_config =
    { Netsim.Net.qdisc = qdisc_of c; limit_pkts = c.limit_pkts;
      delay_jitter = Engine.Time.us c.jitter_us }
  in
  Core.Scenario.make ~topo ~paths:tagged ~cc:(cc_of c)
    ~scheduler:(scheduler_of c)
    ~duration:(Engine.Time.ms c.duration_ms)
    ~sampling:(Engine.Time.ms (max 20 (c.duration_ms / 5)))
    ~seed:c.seed ~net_config ~delayed_ack:c.delayed_ack
    ?send_buffer:(send_buffer c) ~audit:true ()

let run_case c =
  let result = Core.Scenario.run (to_spec c) in
  match result.Core.Scenario.audit with
  | Some rep -> rep
  | None -> assert false (* to_spec sets audit = true *)

let arbitrary =
  let open QCheck in
  let build
      ( (n, base_mbps, step_mbps, cc_idx),
        (sched_idx, qdisc_idx, limit_pkts, jitter_us),
        (delayed_ack, buffer_pkts, duration_ms, seed) ) =
    {
      n; base_mbps; step_mbps; cc_idx; sched_idx; qdisc_idx; limit_pkts;
      jitter_us; delayed_ack; buffer_pkts; duration_ms; seed;
    }
  and strip c =
    ( (c.n, c.base_mbps, c.step_mbps, c.cc_idx),
      (c.sched_idx, c.qdisc_idx, c.limit_pkts, c.jitter_us),
      (c.delayed_ack, c.buffer_pkts, c.duration_ms, c.seed) )
  in
  set_print to_string
    (map ~rev:strip build
       (triple
          (quad (int_range 2 4) (int_range 5 25) (int_range 1 6)
             (int_range 0 (List.length Mptcp.Algorithm.all - 1)))
          (quad (int_range 0 2) (int_range 0 3) (int_range 4 32)
             (int_range 0 300))
          (quad bool (int_range 0 64) (int_range 200 500)
             (int_range 1 1000))))

let pool_test ?(count = 60) () =
  QCheck.Test.make ~count
    ~name:"fuzz: pooled packets are never double-released or resurrected"
    arbitrary
    (fun c ->
      (* [to_spec] sets [audit = true], which also switches the net's
         packet pool into debug mode: a double release raises [Failure]
         mid-run, and popping a freelist slot that holds a live record (a
         released packet resurrected behind the pool's back) does the
         same — so either bug aborts the run and fails the property with
         the offending case attached.  On top of that, the end-of-run
         counters must be coherent. *)
      let r = Core.Scenario.run (to_spec c) in
      let s = r.Core.Scenario.pool_stats in
      let fail fmt =
        QCheck.Test.fail_reportf ("case %s: " ^^ fmt) (to_string c)
      in
      if s.Packet.Pool.double_releases > 0 then
        fail "%d double releases" s.Packet.Pool.double_releases
      else if s.Packet.Pool.released > s.Packet.Pool.acquired then
        fail "released %d > acquired %d - a packet the pool never handed out"
          s.Packet.Pool.released s.Packet.Pool.acquired
      else if s.Packet.Pool.recycled > s.Packet.Pool.released then
        fail "recycled %d > released %d - freelist invented a record"
          s.Packet.Pool.recycled s.Packet.Pool.released
      else if s.Packet.Pool.acquired = 0 then
        fail "no pooled acquisitions - property is vacuous"
      else true)

let fluid_test ?(count = 100) () =
  QCheck.Test.make ~count
    ~name:"fuzz: fluid equilibria are LP-feasible on random topologies"
    arbitrary
    (fun c ->
      (* Same generator as the packet-level sweep, but the property is
         analytic: compile the scenario's fluid model, solve for the
         equilibrium, and require the resulting goodputs to sit inside
         the LP polytope — through the same
         Netgraph.Constraints.violations checker the audit uses.
         Algorithms without a fluid counterpart are skipped (the
         compile step reports them), never silently passed: the match
         is exhaustive over the compile result. *)
      match Fluid.Validate.equilibrium (to_spec c) with
      | Error _ -> true (* BALIA / EWTCP / wVegas: no fluid model *)
      | Ok v ->
        if not v.Fluid.Validate.diag.Fluid.Equilibrium.converged then
          QCheck.Test.fail_reportf "case %s: fluid solve did not converge@.%a"
            (to_string c) Fluid.Validate.pp v
        else if not v.Fluid.Validate.lp_feasible then
          QCheck.Test.fail_reportf
            "case %s: fluid equilibrium outside the LP polytope@.%a"
            (to_string c) Fluid.Validate.pp v
        else true)

let test ?(count = 120) () =
  QCheck.Test.make ~count
    ~name:"fuzz: random audited scenarios are violation-free" arbitrary
    (fun c ->
      let rep = run_case c in
      if rep.Audit.total_violations > 0 then
        QCheck.Test.fail_reportf "case %s@.%a" (to_string c) Audit.pp_report
          rep
      else if rep.Audit.checks = 0 || rep.Audit.ledger.Audit.injected_pkts = 0
      then
        (* a run that never evaluated anything would pass vacuously *)
        QCheck.Test.fail_reportf "case %s: no checks performed (%d injected)"
          (to_string c) rep.Audit.ledger.Audit.injected_pkts
      else true)
