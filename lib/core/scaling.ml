type row = {
  n : int;
  cc : Mptcp.Algorithm.t;
  optimal_mbps : float;
  achieved_mbps : float;
  ratio : float;
  time_to_opt_s : float option;
}

let one ~n ~cc ~duration ~seed =
  let topo, paths =
    Netgraph.Generate.pairwise_overlap ~n
      ~cap_bps:(Netgraph.Generate.spread_caps ~base_mbps:30 ~step_mbps:5) ()
  in
  let spec =
    Scenario.make ~topo ~paths:(Mptcp.Path_manager.tag_paths paths) ~cc
      ~duration ~sampling:(Engine.Time.ms 100) ~seed ()
  in
  let r = Scenario.run spec in
  let optimal_mbps = Scenario.optimal_total_mbps r in
  let achieved_mbps = Scenario.tail_mean_mbps r in
  {
    n;
    cc;
    optimal_mbps;
    achieved_mbps;
    ratio = achieved_mbps /. optimal_mbps;
    time_to_opt_s = Scenario.time_to_optimum_s r;
  }

let sweep ?(ns = [ 2; 3; 4; 5 ])
    ?(ccs = Mptcp.Algorithm.[ Cubic; Lia; Olia ])
    ?(duration = Engine.Time.s 15) ?(seed = 1) ?jobs () =
  let grid = List.concat_map (fun n -> List.map (fun cc -> (n, cc)) ccs) ns in
  Runner.map ?jobs (fun (n, cc) -> one ~n ~cc ~duration ~seed) grid

let pp_table fmt rows =
  Format.fprintf fmt "@[<v>%-4s %-7s %-10s %-10s %-7s %-8s@," "n" "cc"
    "opt[Mbps]" "got[Mbps]" "ratio" "t_opt[s]";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-4d %-7s %-10.1f %-10.1f %-7.3f %-8s@," r.n
        (Mptcp.Algorithm.name r.cc) r.optimal_mbps r.achieved_mbps r.ratio
        (match r.time_to_opt_s with
        | Some t -> Printf.sprintf "%.2f" t
        | None -> "never"))
    rows;
  Format.fprintf fmt "@]"

let to_csv rows =
  Measure.Render.to_csv
    ~header:[ "n"; "cc_id"; "optimal_mbps"; "achieved_mbps"; "ratio" ]
    ~rows:
      (List.map
         (fun r ->
           [ float_of_int r.n;
             float_of_int
               (match r.cc with
               | Mptcp.Algorithm.Cubic -> 0
               | Mptcp.Algorithm.Reno -> 1
               | Mptcp.Algorithm.Lia -> 2
               | Mptcp.Algorithm.Olia -> 3
               | Mptcp.Algorithm.Balia -> 4
               | Mptcp.Algorithm.Ewtcp -> 5
               | Mptcp.Algorithm.Wvegas -> 6);
             r.optimal_mbps; r.achieved_mbps; r.ratio ])
         rows)
