(** Experiment builder: one MPTCP bulk transfer over a path set, measured
    at the receiver — the whole methodology of the paper's Section 2 in
    one record.

    A {!spec} is pure data; {!run} builds a fresh simulator (scheduler,
    network, endpoints, connection, capture), executes it and returns the
    sampled series plus summary statistics.  Runs with equal specs are
    bit-for-bit identical. *)

type spec = {
  topo : Netgraph.Topology.t;
  paths : Mptcp.Path_manager.t;  (** first entry = default subflow *)
  cc : Mptcp.Algorithm.t;
  scheduler : Mptcp.Scheduler.policy;
  duration : Engine.Time.t;
  sampling : Engine.Time.t;
  seed : int;
  net_config : Netsim.Net.config;
  sender_config : Tcp.Sender.config;
  join_delay : Engine.Time.t;
  start_jitter : Engine.Time.t;
  delayed_ack : bool;
  send_buffer : int option;
  total_bytes : int option;
  trace_limit : int option;
      (** when set, keep a packet trace of up to this many events at both
          endpoints (see {!result.trace_text}) *)
  audit : bool;
      (** run the {!Audit} invariant checker alongside the simulation
          and attach its report to the result (default [false]; the
          [--audit] CLI flag and all audit tests set it) *)
  obs : Obs.Collect.conf option;
      (** attach the observability collector (trace ring and/or metrics
          registry, per the conf) and return it in [result.obs]; the
          [--trace]/[--metrics] CLI flags set it.  [None] (default)
          leaves every monitor hook untouched, so the run is
          bit-identical to a pre-observability build *)
  events : Events.Event.t list;
      (** timed scenario events (failover, ramps, churn, cross-traffic),
          validated by {!make} and armed on the run's scheduler; default
          empty — the static setup of the paper's grid *)
  rto_cap : int option;
      (** MPTCP failover threshold, passed through to
          {!Mptcp.Connection.config.rto_cap}; default [None] *)
  hybrid_tick : Engine.Time.t;
      (** coarse-tick period of the hybrid fluid background driver
          (default 1 ms); only consulted when [events] declare
          background classes ({!Events.Event.action.Background_start}) *)
}

val default_net_config : Netsim.Net.config
(** Drop-tail with 16-packet buffers — about half the fastest path's
    bandwidth-delay product, reproducing the shallow-buffer dynamics of
    the paper's Mininet links.  (The generic {!Netsim.Net.default_config}
    keeps 40-packet buffers.) *)

val make :
  topo:Netgraph.Topology.t -> paths:Mptcp.Path_manager.t
  -> cc:Mptcp.Algorithm.t -> ?scheduler:Mptcp.Scheduler.policy
  -> ?duration:Engine.Time.t -> ?sampling:Engine.Time.t -> ?seed:int
  -> ?net_config:Netsim.Net.config -> ?sender_config:Tcp.Sender.config
  -> ?join_delay:Engine.Time.t -> ?start_jitter:Engine.Time.t
  -> ?delayed_ack:bool -> ?send_buffer:int -> ?total_bytes:int
  -> ?trace_limit:int -> ?audit:bool -> ?obs:Obs.Collect.conf
  -> ?events:Events.Event.t list -> ?rto_cap:int
  -> ?hybrid_tick:Engine.Time.t -> unit -> spec
(** Defaults: min-RTT scheduler, 4 s at 100 ms sampling (the paper's
    Fig. 2a/2b setup), seed 1, {!default_net_config}, default sender
    config, 10 ms join delay with up to 2 ms of seeded start jitter,
    unlimited buffer and bulk data, no timed events, no failover cap,
    1 ms hybrid tick.  Raises [Invalid_argument] when
    {!Events.Event.validate} rejects the event list, when the tick is
    not positive, or when a background declaration names a congestion
    control without a fluid model. *)

type subflow_report = {
  tag : Packet.tag;
  cwnd : float;
  srtt_s : float option;
  segments_sent : int;
  retransmits : int;
  timeouts : int;
  fast_recoveries : int;
  bytes_acked : int;
  rx_bytes : int;
}

type result = {
  spec : spec;
  per_tag : (Packet.tag * Measure.Series.t) list;
      (** wire Mbps per path, in tag order *)
  total : Measure.Series.t;
  cwnd_series : (Packet.tag * Measure.Series.t) list;
      (** each subflow's congestion window (MSS units) sampled every
          [sampling] period — the sawtooth behind Fig. 2c *)
  optimum : Netgraph.Constraints.optimum;
  subflows : subflow_report list;
  delivered_bytes : int;  (** connection-level in-order goodput *)
  completed_at_s : float option;
      (** when the [total_bytes] transfer finished, in seconds; [None]
          when unbounded or unfinished — the failover scenarios' key
          output *)
  subflow_churn : int;
      (** path-liveness transitions over the run (failover + recovery) *)
  cross_traffic_bytes : int;
      (** bytes emitted by event-scripted traffic sources *)
  queue_drops : int;
  events_processed : int;
  packets_created : int;
      (** wire ids handed out by the network — the denominator for
          allocations-per-packet accounting *)
  pool_stats : Packet.Pool.stats;
      (** freelist counters at end of run; [recycled / acquired] is the
          hot path's recycle hit rate *)
  trace_text : string option;
      (** tcpdump-style rendering of the packet trace, when requested *)
  audit : Audit.report option;
      (** invariant-audit report, when [spec.audit] was set; a clean run
          has [total_violations = 0] *)
  obs : Obs.Collect.t option;
      (** the observability collector, when [spec.obs] was set — its
          trace ring and metrics snapshots (including the end-of-run
          [core.wall_time_s]) are ready for export *)
  background : Fluid.Background.Driver.summary option;
      (** end-of-run summary of the hybrid fluid background field, when
          the events declared background classes: class/flow/channel
          counts, driver ticks, ODE steps, offered and delivered
          aggregate rate, peak fluid queue *)
}

val run : spec -> result

val constraint_system : spec -> Netgraph.Constraints.system
(** The spec's capacity-constraint system, in [spec.paths] order — the
    same extraction {!run} solves for [result.optimum] and the audit
    checks feasibility against. *)

val optimum_rates : spec -> float array
(** Per-path LP-optimal rates in bits per second, in [spec.paths]
    order: the reusable "what should this scenario achieve" entry point
    shared by the CLI, the fluid validator and the tests. *)

val optimal_total_mbps : result -> float

val tail_mean_mbps : result -> float
(** Mean total throughput over the last quarter of the run. *)

val per_path_tail_mbps : result -> (Packet.tag * float) list

val time_to_optimum_s : ?tolerance:float -> ?hold:int -> result -> float option
(** When the total first sustainedly reached the LP optimum. *)

val pp_summary : Format.formatter -> result -> unit
