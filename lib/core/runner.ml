type 'a job = { label : string; run : unit -> 'a }

let job ?(label = "") run = { label; run }
let label j = j.label
let default_jobs () = Engine.Pool.default_domains ()

let map ?jobs f xs = Engine.Pool.map ?domains:jobs f xs
let run_jobs ?jobs js = map ?jobs (fun j -> j.run ()) js

let scenarios ?jobs specs = map ?jobs Scenario.run specs

let scenario_jobs specs =
  List.map
    (fun (spec : Scenario.spec) ->
      job
        ~label:
          (Printf.sprintf "%s seed=%d" (Mptcp.Algorithm.name spec.Scenario.cc)
             spec.Scenario.seed)
        (fun () -> Scenario.run spec))
    specs
