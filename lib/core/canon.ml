(* Canonical rendering of a Scenario.spec.

   The writer walks the spec in one fixed order, resolving everything
   to primitive values (node/link ids, nanoseconds, %.17g floats), so
   field order in the *source* (an experiment file, a batch grid, OCaml
   code) cannot leak into the text.  Exhaustive record patterns make
   the compiler flag any future spec/config field this module forgets
   to either render or deliberately exclude. *)

let version = 2

let f17 = Printf.sprintf "%.17g"

let time_ns (t : Engine.Time.t) = string_of_int t

let opt_int = function None -> "none" | Some v -> string_of_int v

let add_qdisc buf (q : Netsim.Qdisc.t) =
  match q with
  | Netsim.Qdisc.Drop_tail -> Buffer.add_string buf "drop-tail"
  | Netsim.Qdisc.Red { min_th; max_th; max_p; weight; ecn } ->
    Buffer.add_string buf
      (Printf.sprintf "(red %d %d %s %s %b)" min_th max_th (f17 max_p)
         (f17 weight) ecn)
  | Netsim.Qdisc.Codel { target; interval } ->
    Buffer.add_string buf
      (Printf.sprintf "(codel %s %s)" (time_ns target) (time_ns interval))
  | Netsim.Qdisc.Broken_oversubscribe ->
    Buffer.add_string buf "broken-oversubscribe"

let add_action buf (a : Events.Event.action) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match a with
  | Events.Event.Link_down { link } -> p "(link-down %d)" link
  | Events.Event.Link_up { link } -> p "(link-up %d)" link
  | Events.Event.Capacity_set { link; rate_bps } ->
    p "(capacity-set %d %d)" link rate_bps
  | Events.Event.Capacity_ramp { link; to_bps; over; steps } ->
    p "(capacity-ramp %d %d %s %d)" link to_bps (time_ns over) steps
  | Events.Event.Delay_set { link; delay } ->
    p "(delay-set %d %s)" link (time_ns delay)
  | Events.Event.Loss_set { link; loss } ->
    p "(loss-set %d %s)" link (f17 loss)
  | Events.Event.Subflow_close { subflow } -> p "(subflow-close %d)" subflow
  | Events.Event.Subflow_add { subflow } -> p "(subflow-add %d)" subflow
  | Events.Event.Traffic_start { src; dst; tag; rate_bps; stop_at } ->
    p "(traffic-start %d %d %d %d %s)" src dst tag rate_bps
      (match stop_at with None -> "none" | Some t -> time_ns t)
  | Events.Event.Background_start { src; dst; classes; flows; cc; rate_bps; rtt }
    ->
    p "(background %d %d %d %d %s %d %s)" src dst classes flows
      (match cc with None -> "cbr" | Some a -> Mptcp.Algorithm.name a)
      rate_bps (time_ns rtt)

let text (spec : Scenario.spec) =
  (* Destructure exhaustively: a new spec field will not compile until
     it is classified as rendered or excluded. *)
  let {
    Scenario.topo;
    paths;
    cc;
    scheduler;
    duration;
    sampling;
    seed;
    net_config = { Netsim.Net.qdisc; limit_pkts; delay_jitter };
    sender_config =
      {
        Tcp.Sender.mss;
        initial_cwnd;
        initial_ssthresh;
        dupack_threshold;
        sack;
        handshake;
        ecn;
        initial_rto;
        min_rto;
        max_rto;
      };
    join_delay;
    start_jitter;
    delayed_ack;
    send_buffer;
    total_bytes;
    trace_limit = _;  (* observation-only: packet trace text *)
    audit = _;        (* observation-only: results bit-identical *)
    obs = _;          (* observation-only: results bit-identical *)
    events;
    rto_cap;
    hybrid_tick;
  } =
    spec
  in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "(canon %d" version;
  p " (cc %s)" (Mptcp.Algorithm.name cc);
  p " (delayed-ack %b)" delayed_ack;
  p " (duration-ns %s)" (time_ns duration);
  p " (events";
  List.iter
    (fun { Events.Event.at; action } ->
      p " (at-ns %s " (time_ns at);
      add_action buf action;
      p ")")
    events;
  p ")";
  p " (hybrid-tick-ns %s)" (time_ns hybrid_tick);
  p " (join-delay-ns %s)" (time_ns join_delay);
  p " (net-config (delay-jitter-ns %s) (limit-pkts %d) (qdisc "
    (time_ns delay_jitter) limit_pkts;
  add_qdisc buf qdisc;
  p "))";
  p " (paths";
  List.iter
    (fun (tag, path) ->
      p " (%d (nodes" tag;
      Array.iter (fun n -> p " %d" n) path.Netgraph.Path.nodes;
      p ") (links";
      Array.iter (fun l -> p " %d" l) path.Netgraph.Path.links;
      p "))")
    paths;
  p ")";
  p " (rto-cap %s)" (opt_int rto_cap);
  p " (sampling-ns %s)" (time_ns sampling);
  p " (scheduler %s)" (Mptcp.Scheduler.policy_name scheduler);
  p " (seed %d)" seed;
  p " (send-buffer %s)" (opt_int send_buffer);
  p
    " (sender-config (dupack-threshold %d) (ecn %b) (handshake %b) \
     (initial-cwnd %s) (initial-rto-ns %s) (initial-ssthresh %s) \
     (max-rto-ns %s) (min-rto-ns %s) (mss %d) (sack %b))"
    dupack_threshold ecn handshake (f17 initial_cwnd) (time_ns initial_rto)
    (f17 initial_ssthresh) (time_ns max_rto) (time_ns min_rto) mss sack;
  p " (start-jitter-ns %s)" (time_ns start_jitter);
  (* Topology: nodes in id order (names included: forwarding ignores
     them, but a renamed node is a different scenario to the operator
     and to path specs), links in id order. *)
  p " (topo (nodes";
  for n = 0 to Netgraph.Topology.num_nodes topo - 1 do
    p " %s" (Netgraph.Topology.node_name topo n)
  done;
  p ") (links";
  Array.iter
    (fun { Netgraph.Topology.id; u; v; capacity_bps; delay } ->
      p " (%d %d %d %d %s)" id u v capacity_bps (time_ns delay))
    (Netgraph.Topology.links topo);
  p "))";
  p " (total-bytes %s)" (opt_int total_bytes);
  p ")";
  Buffer.contents buf

let hash spec = Digest.to_hex (Digest.string (text spec))

let short h = if String.length h <= 12 then h else String.sub h 0 12
