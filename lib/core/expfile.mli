(** Experiment files: a {!Scenario.spec} as data.

    Pairs a topology file ({!Events.Parse.topology} format) with an
    experiment file naming the paths, congestion control, transfer size
    and timed events — the [mptcp_sim run -t topo.sexp -x xp.sexp]
    entry point, so dynamic scenarios live in version-controlled data
    files rather than OCaml code:

    {v
    (experiment
     (cc lia)
     (scheduler min-rtt)
     (duration-s 12)
     (total-mb 8)
     (rto-cap 2)
     (paths (a p1 z) (a p2 z))
     (events
      (at-s 3.6 (link-down a p1))))
    v}

    Every field except [paths] is optional; defaults match
    {!Scenario.make}.  Paths are node-name sequences, tagged 1, 2, ...
    in file order (the first is the default subflow). *)

val spec_of_sexps : topo:Netgraph.Topology.t -> Events.Sexp.t list -> Scenario.spec
(** Raises {!Events.Sexp.Parse_error} on malformed input and
    [Invalid_argument] when the event list fails validation. *)

val load : topo_file:string -> xp_file:string -> Netgraph.Topology.t * Scenario.spec
(** Load both files. *)
