type spec = {
  topo : Netgraph.Topology.t;
  paths : Mptcp.Path_manager.t;
  cc : Mptcp.Algorithm.t;
  scheduler : Mptcp.Scheduler.policy;
  duration : Engine.Time.t;
  sampling : Engine.Time.t;
  seed : int;
  net_config : Netsim.Net.config;
  sender_config : Tcp.Sender.config;
  join_delay : Engine.Time.t;
  start_jitter : Engine.Time.t;
  delayed_ack : bool;
  send_buffer : int option;
  total_bytes : int option;
  trace_limit : int option;
  audit : bool;
  obs : Obs.Collect.conf option;
  events : Events.Event.t list;
  rto_cap : int option;
  hybrid_tick : Engine.Time.t;
      (* coarse-tick period of the fluid background driver (only
         consulted when the events declare background classes) *)
}

(* The paper's Mininet links have shallow buffers relative to the
   bandwidth-delay product; 16 packets (~0.5 BDP of the fastest path)
   reproduces the measured dynamics, and the bench harness sweeps this
   value as an ablation. *)
let default_net_config =
  { Netsim.Net.qdisc = Netsim.Qdisc.Drop_tail; limit_pkts = 16;
        delay_jitter = Engine.Time.zero }

let make ~topo ~paths ~cc ?(scheduler = Mptcp.Scheduler.Min_rtt)
    ?(duration = Engine.Time.s 4) ?(sampling = Engine.Time.ms 100) ?(seed = 1)
    ?(net_config = default_net_config)
    ?(sender_config = Tcp.Sender.default_config)
    ?(join_delay = Engine.Time.ms 10) ?(start_jitter = Engine.Time.ms 2)
    ?(delayed_ack = false) ?send_buffer ?total_bytes ?trace_limit
    ?(audit = false) ?obs ?(events = []) ?rto_cap
    ?(hybrid_tick = Engine.Time.ms 1) () =
  if paths = [] then invalid_arg "Scenario.make: no paths";
  (match
     Events.Event.validate ~topo ~num_subflows:(List.length paths)
       ~reserved_tags:(List.map fst paths) events
   with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "Scenario.make: invalid events: %s"
         (String.concat "; " errs)));
  if Engine.Time.( <= ) hybrid_tick Engine.Time.zero then
    invalid_arg "Scenario.make: hybrid tick must be positive";
  (* Background classes need a fluid window law; reject the algorithms
     without one here rather than mid-run. *)
  List.iter
    (fun { Events.Event.action; _ } ->
      match action with
      | Events.Event.Background_start { cc = Some a; _ }
        when Fluid.Controller.of_algorithm a = None ->
        invalid_arg
          (Printf.sprintf "Scenario.make: %s has no fluid background model"
             (Mptcp.Algorithm.name a))
      | _ -> ())
    events;
  {
    topo; paths; cc; scheduler; duration; sampling; seed; net_config;
    sender_config; join_delay; start_jitter; delayed_ack; send_buffer;
    total_bytes; trace_limit; audit; obs; events; rto_cap; hybrid_tick;
  }

type subflow_report = {
  tag : Packet.tag;
  cwnd : float;
  srtt_s : float option;
  segments_sent : int;
  retransmits : int;
  timeouts : int;
  fast_recoveries : int;
  bytes_acked : int;
  rx_bytes : int;
}

type result = {
  spec : spec;
  per_tag : (Packet.tag * Measure.Series.t) list;
  total : Measure.Series.t;
  cwnd_series : (Packet.tag * Measure.Series.t) list;
      (* congestion window (MSS) sampled at the same period *)
  optimum : Netgraph.Constraints.optimum;
  subflows : subflow_report list;
  delivered_bytes : int;
  completed_at_s : float option;
  subflow_churn : int;
  cross_traffic_bytes : int;
  queue_drops : int;
  events_processed : int;
  packets_created : int;
  pool_stats : Packet.Pool.stats;
  trace_text : string option;
  audit : Audit.report option;
  obs : Obs.Collect.t option;
  background : Fluid.Background.Driver.summary option;
}

let endpoints_of_paths paths =
  match paths with
  | [] -> invalid_arg "Scenario: no paths"
  | (_, first) :: rest ->
    let src = Netgraph.Path.src first and dst = Netgraph.Path.dst first in
    List.iter
      (fun (_, p) ->
        if Netgraph.Path.src p <> src || Netgraph.Path.dst p <> dst then
          invalid_arg "Scenario: all paths must share source and destination")
      rest;
    (src, dst)

let run spec =
  let src_node, dst_node = endpoints_of_paths spec.paths in
  let sched = Engine.Sched.create () in
  (* Audited runs shadow the timing wheel with the reference heap and
     fail loudly on any dispatch-order divergence. *)
  if spec.audit then Engine.Sched.set_lockstep sched true;
  let rng = Engine.Rng.create spec.seed in
  let net =
    Netsim.Net.create ~sched ~rng ~config:spec.net_config spec.topo
  in
  let auditor =
    if spec.audit then Some (Audit.create ~sched ()) else None
  in
  (* Audited runs also arm the freelist's poison checks: a double
     release or a resurrected live packet raises instead of silently
     corrupting the run. *)
  if spec.audit then Packet.Pool.set_debug (Netsim.Net.pool net) true;
  Option.iter (fun a -> Audit.attach_net a net) auditor;
  let src_ep = Tcp.Endpoint.create net ~node:src_node in
  let dst_ep = Tcp.Endpoint.create net ~node:dst_node in
  let capture = Measure.Capture.attach net ~node:dst_node ~conn:1 () in
  let trace =
    Option.map
      (fun limit ->
        Measure.Trace.attach net
          ~nodes:[ src_node; dst_node ]
          ~keep:(Measure.Trace.conn_filter 1) ~limit ())
      spec.trace_limit
  in
  let config =
    {
      Mptcp.Connection.sender = spec.sender_config;
      scheduler = spec.scheduler;
      send_buffer = spec.send_buffer;
      join_delay = spec.join_delay;
      start_jitter = spec.start_jitter;
      delayed_ack = spec.delayed_ack;
      reinjection = false;
      rto_cap = spec.rto_cap;
    }
  in
  let conn =
    Mptcp.Connection.establish ~net ~src:src_ep ~dst:dst_ep ~conn:1
      ~paths:spec.paths ~cc:spec.cc ~config ~rng:(Engine.Rng.split rng)
      ?total_bytes:spec.total_bytes ()
  in
  Option.iter
    (fun a ->
      Audit.attach_connection a ~label:"conn1" conn;
      (* Connection-level invariants are evaluated once per sampling
         period, and a last time at the end of the run. *)
      let rec arm at =
        if Engine.Time.( <= ) at spec.duration then
          ignore
            (Engine.Sched.at sched at (fun () ->
                 Audit.tick a;
                 arm (Engine.Time.add at spec.sampling)))
      in
      arm spec.sampling)
    auditor;
  (* Observability attaches after the auditor so its taps chain onto
     (rather than clobber) the audit hooks; the audit attach functions
     overwrite monitors, the collector reads and extends them. *)
  let obs =
    Option.map (fun conf -> Obs.Collect.create ~sched conf) spec.obs
  in
  Option.iter
    (fun o ->
      Obs.Collect.attach_sched o sched;
      Obs.Collect.attach_net o net;
      Obs.Collect.attach_connection o conn;
      Option.iter
        (fun a ->
          Audit.set_monitor a
            (Some
               (fun v -> Obs.Collect.violation o ~invariant:v.Audit.invariant)))
        auditor;
      (* Metrics snapshots share the run's sampling cadence. *)
      let rec arm at =
        if Engine.Time.( <= ) at spec.duration then
          ignore
            (Engine.Sched.at sched at (fun () ->
                 Obs.Collect.snapshot o;
                 arm (Engine.Time.add at spec.sampling)))
      in
      arm spec.sampling)
    obs;
  (* Timed events arm last, after the audit's and collector's link taps
     are in place, so every event-induced packet fate is observed. *)
  let traffic = Events.Event.arm ~sched ~net ~conn spec.events in
  (* Background declarations compile into one fluid field whose driver
     ticks through the same wheel as everything else; each declaration
     expands to [classes] single-path class fields along the current
     shortest path, with propagation RTTs spread +/-15% around the
     declared mean so the classes don't move as one synchronized cohort. *)
  let background_driver =
    let decls =
      List.concat_map
        (fun { Events.Event.at = start; action } ->
          match action with
          | Events.Event.Background_start
              { src; dst; classes; flows; cc; rate_bps; rtt } ->
            let path =
              match
                Netgraph.Shortest.shortest_path spec.topo ~src ~dst
                  ~weight:Netgraph.Shortest.delay_ns
              with
              | Some p -> p
              | None -> invalid_arg "Scenario.run: no route for background"
            in
            let links =
              Array.mapi
                (fun k l ->
                  ( l,
                    (Netgraph.Topology.link spec.topo l).Netgraph.Topology.u
                    = path.Netgraph.Path.nodes.(k) ))
                path.Netgraph.Path.links
            in
            let kind =
              Option.map
                (fun a -> Option.get (Fluid.Controller.of_algorithm a))
                cc
            in
            let start_s = Engine.Time.to_float_s start in
            let rtt_s = Engine.Time.to_float_s rtt in
            List.init classes (fun i ->
                let frac =
                  if classes = 1 then 0.5
                  else float_of_int i /. float_of_int (classes - 1)
                in
                { Fluid.Background.Driver.links;
                  flows;
                  kind;
                  flow_rate_bps = rate_bps;
                  rtt_s = rtt_s *. (0.85 +. (0.3 *. frac));
                  start_s })
          | _ -> [])
        spec.events
    in
    match decls with
    | [] -> None
    | decls ->
      let config =
        { Fluid.Model.default_config with
          mss_bytes = spec.sender_config.Tcp.Sender.mss;
          buffer_pkts = spec.net_config.Netsim.Net.limit_pkts }
      in
      Some
        (Fluid.Background.Driver.attach ~sched ~net ~tick:spec.hybrid_tick
           ~until:spec.duration ~config (Array.of_list decls))
  in
  let probes =
    List.init (Mptcp.Connection.subflow_count conn) (fun i ->
        let sender = Mptcp.Connection.subflow_sender conn i in
        ( Mptcp.Connection.subflow_tag conn i,
          Measure.Probe.attach ~sched ~period:spec.sampling
            ~until:spec.duration (fun () -> Tcp.Sender.cwnd sender) ))
  in
  let wall0 = Unix.gettimeofday () in
  Engine.Sched.run ~until:spec.duration sched;
  let wall_s = Unix.gettimeofday () -. wall0 in
  Option.iter
    (fun o ->
      (* Wall-derived metrics carry "wall" in their name so determinism
         comparisons can filter them out. *)
      Obs.Collect.set_value o "core.wall_time_s" wall_s;
      Obs.Collect.set_value o "core.wall_events_per_s"
        (if wall_s > 0.0 then
           float_of_int (Engine.Sched.events_processed sched) /. wall_s
         else 0.0);
      Obs.Collect.snapshot o)
    obs;
  let per_tag, total =
    Measure.Sampler.per_tag capture ~window:spec.sampling ~until:spec.duration
  in
  let path_list = List.map snd spec.paths in
  let optimum = Netgraph.Constraints.optimum spec.topo path_list in
  let audit_report =
    Option.map
      (fun a ->
        Audit.tick a;
        (* Tail-mean per-path rates (the figures' measurement) must lie
           in the LP feasible region; 5% tolerance absorbs window
           granularity at the paper's 100 ms sampling. *)
        let from_s = 0.75 *. Engine.Time.to_float_s spec.duration in
        let measured_bps =
          Array.of_list
            (List.map
               (fun (tag, _) ->
                 match List.assoc_opt tag per_tag with
                 | Some series ->
                   let mbps = Measure.Series.mean_from series ~from_s in
                   if Float.is_finite mbps then mbps *. 1e6 else 0.0
                 | None -> 0.0)
               spec.paths)
        in
        Audit.check_lp a ~topo:spec.topo ~paths:path_list ~measured_bps
          ~tolerance:0.05 ();
        Audit.finish a ~elapsed:spec.duration ();
        Audit.report a)
      auditor
  in
  let subflows =
    List.init (Mptcp.Connection.subflow_count conn) (fun i ->
        let sender = Mptcp.Connection.subflow_sender conn i in
        let stats = Tcp.Sender.stats sender in
        {
          tag = Mptcp.Connection.subflow_tag conn i;
          cwnd = Tcp.Sender.cwnd sender;
          srtt_s =
            Option.map Engine.Time.to_float_s (Tcp.Sender.srtt sender);
          segments_sent = stats.Tcp.Sender.segments_sent;
          retransmits = stats.Tcp.Sender.retransmits;
          timeouts = stats.Tcp.Sender.timeouts;
          fast_recoveries = stats.Tcp.Sender.fast_recoveries;
          bytes_acked = stats.Tcp.Sender.bytes_acked;
          rx_bytes = Mptcp.Connection.subflow_rx_bytes conn i;
        })
  in
  {
    spec;
    per_tag;
    total;
    cwnd_series =
      List.map (fun (tag, p) -> (tag, Measure.Probe.series p)) probes;
    optimum;
    subflows;
    delivered_bytes = Mptcp.Connection.delivered_bytes conn;
    completed_at_s =
      Option.map Engine.Time.to_float_s (Mptcp.Connection.completed_at conn);
    subflow_churn =
      Mptcp.Path_manager.Liveness.churn (Mptcp.Connection.liveness conn);
    cross_traffic_bytes =
      List.fold_left (fun acc s -> acc + Netsim.Traffic.bytes_sent s) 0 traffic;
    queue_drops = Netsim.Net.total_drops net;
    events_processed = Engine.Sched.events_processed sched;
    packets_created = Netsim.Net.packets_created net;
    pool_stats = Packet.Pool.stats (Netsim.Net.pool net);
    trace_text = Option.map (fun tr -> Measure.Trace.to_text net tr) trace;
    audit = audit_report;
    obs;
    background = Option.map Fluid.Background.Driver.summary background_driver;
  }

let constraint_system spec =
  Netgraph.Constraints.extract spec.topo (List.map snd spec.paths)

let optimum_rates spec =
  (Netgraph.Constraints.optimum spec.topo (List.map snd spec.paths))
    .Netgraph.Constraints.per_path_bps

let optimal_total_mbps result = result.optimum.Netgraph.Constraints.total_bps /. 1e6

let tail_start result =
  0.75 *. Engine.Time.to_float_s result.spec.duration

let tail_mean_mbps result =
  Measure.Series.mean_from result.total ~from_s:(tail_start result)

let per_path_tail_mbps result =
  let from_s = tail_start result in
  List.map
    (fun (tag, s) -> (tag, Measure.Series.mean_from s ~from_s))
    result.per_tag

let time_to_optimum_s ?(tolerance = 0.05) ?(hold = 3) result =
  Measure.Converge.time_to_reach result.total
    ~target:(optimal_total_mbps result) ~tolerance ~hold ()

let pp_summary fmt result =
  Format.fprintf fmt
    "@[<v>cc=%a scheduler=%s seed=%d duration=%a@,\
     optimum=%.1f Mbps, tail mean=%.1f Mbps, time-to-optimum=%s@,\
     delivered=%d bytes, queue drops=%d@,"
    Mptcp.Algorithm.pp result.spec.cc
    (Mptcp.Scheduler.policy_name result.spec.scheduler)
    result.spec.seed Engine.Time.pp result.spec.duration
    (optimal_total_mbps result) (tail_mean_mbps result)
    (match time_to_optimum_s result with
    | Some t -> Printf.sprintf "%.2fs" t
    | None -> "never")
    result.delivered_bytes result.queue_drops;
  (match (result.spec.total_bytes, result.completed_at_s) with
  | Some total, Some t ->
    Format.fprintf fmt "transfer of %d bytes completed at %.2fs@," total t
  | Some total, None ->
    Format.fprintf fmt "transfer of %d bytes did not complete@," total
  | None, _ -> ());
  if result.subflow_churn > 0 then
    Format.fprintf fmt "subflow liveness transitions: %d@," result.subflow_churn;
  (match result.background with
  | Some b -> Format.fprintf fmt "%a@," Fluid.Background.Driver.pp_summary b
  | None -> ());
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  tag %d: cwnd=%.1f rtx=%d rto=%d acked=%dB rx=%dB@," r.tag r.cwnd
        r.retransmits r.timeouts r.bytes_acked r.rx_bytes)
    result.subflows;
  Format.fprintf fmt "@]"
