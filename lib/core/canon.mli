(** Canonical serialization and stable hashing of scenarios.

    The result cache ({!Serve.Store}) is keyed by content: two
    submissions that describe the same simulation must map to the same
    key however they were constructed — built in OCaml with
    {!Scenario.make}, loaded from an experiment file with fields in any
    order, or expanded from a batch grid.  {!text} therefore renders
    the {e result-determining} fields of a {!Scenario.spec} into one
    canonical string (fixed field order, fully resolved values, times
    in integer nanoseconds, floats at full [%.17g] precision) and
    {!hash} digests it.

    Excluded from the canonical form — and so from the hash — are the
    observation-only switches [trace_limit], [audit] and [obs]: runs
    with and without them are bit-identical (the monitor hooks cost one
    mutable load when unused, and the audit/obs layers only read), so a
    traced or audited submission may reuse a result cached by a plain
    one and vice versa.

    {!version} is baked into the canonical text: any change to the
    rendering (new field, different unit, reordering) must bump it,
    which changes every hash and turns the whole store into clean
    misses rather than silent mis-hits. *)

val version : int
(** Version of the canonical encoding, included in {!text}. *)

val text : Scenario.spec -> string
(** The canonical rendering.  Deterministic: equal specs (same
    topology, paths, algorithm, scheduler, timing, seed, queueing,
    sender tuning, transfer bounds and timed events) yield equal
    strings, whatever order their sources spelled the fields in. *)

val hash : Scenario.spec -> string
(** Hex digest (MD5, 32 characters) of {!text} — the content address
    used by the result store. *)

val short : string -> string
(** First 12 characters of a hash, for display. *)
