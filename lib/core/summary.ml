type row = {
  cc : Mptcp.Algorithm.t;
  default_path : int;
  seeds : int;
  reached : int;
  mean_time_to_opt_s : float;
  mean_tail_mbps : float;
  tail_std_mbps : float;
  mean_dips : float;
  tail_cv : float;
}

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let cell_specs ~cc ~default_path ~seeds ~duration =
  List.map
    (fun seed ->
      let topo = Paper_net.topology () in
      let paths = Paper_net.tagged_paths ~default:default_path topo in
      Scenario.make ~topo ~paths ~cc ~duration ~sampling:(Engine.Time.ms 100)
        ~seed ())
    seeds

let cell_of_runs ~cc ~default_path ~tolerance runs =
  let times =
    List.filter_map (Scenario.time_to_optimum_s ~tolerance ~hold:3) runs
  in
  let target = Paper_net.optimal_total_mbps in
  let tails = List.map Scenario.tail_mean_mbps runs in
  {
    cc;
    default_path;
    seeds = List.length runs;
    reached = List.length times;
    mean_time_to_opt_s = mean times;
    mean_tail_mbps = mean tails;
    tail_std_mbps =
      (match Measure.Stats.summarise tails with
      | Some s -> s.Measure.Stats.std
      | None -> Float.nan);
    mean_dips =
      mean
        (List.map
           (fun r ->
             float_of_int
               (Measure.Converge.dip_count r.Scenario.total ~target ~tolerance
                  ()))
           runs);
    tail_cv =
      mean
        (List.map
           (fun r ->
             let from_s =
               0.75 *. Engine.Time.to_float_s r.Scenario.spec.Scenario.duration
             in
             Measure.Converge.coefficient_of_variation r.Scenario.total
               ~from_s)
           runs);
  }

(* The grid is flattened to individual (cc, default, seed) scenario runs
   — the unit of parallelism — then folded back into per-cell rows, so a
   parallel sweep aggregates exactly the same runs in the same order as
   a serial one. *)
let sweep
    ?(ccs =
      Mptcp.Algorithm.[ Cubic; Lia; Olia; Balia; Ewtcp; Wvegas ])
    ?(defaults = [ 1; 2; 3 ]) ?(seeds = [ 1; 2; 3 ])
    ?(duration = Engine.Time.s 20) ?(tolerance = 0.05) ?jobs () =
  let cells =
    List.concat_map
      (fun cc -> List.map (fun default_path -> (cc, default_path)) defaults)
      ccs
  in
  let specs =
    List.concat_map
      (fun (cc, default_path) -> cell_specs ~cc ~default_path ~seeds ~duration)
      cells
  in
  let runs = Runner.scenarios ?jobs specs in
  let per_cell = List.length seeds in
  let rec chunk acc runs = function
    | [] -> List.rev acc
    | (cc, default_path) :: rest ->
      let mine = List.filteri (fun i _ -> i < per_cell) runs in
      let others = List.filteri (fun i _ -> i >= per_cell) runs in
      chunk
        (cell_of_runs ~cc ~default_path ~tolerance mine :: acc)
        others rest
  in
  chunk [] runs cells

let pp_table fmt rows =
  Format.fprintf fmt
    "@[<v>%-7s %-7s %-8s %-10s %-14s %-7s %-7s@,"
    "cc" "default" "reached" "t_opt[s]" "tail[Mbps]" "dips" "tailCV";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-7s %-7d %d/%-6d %-10s %5.1f +/-%-5.1f %-7.1f %-7.3f@,"
        (Mptcp.Algorithm.name r.cc)
        r.default_path r.reached r.seeds
        (if r.reached = 0 then "never"
         else Printf.sprintf "%.2f" r.mean_time_to_opt_s)
        r.mean_tail_mbps
        (if Float.is_nan r.tail_std_mbps then 0.0 else r.tail_std_mbps)
        r.mean_dips r.tail_cv)
    rows;
  Format.fprintf fmt "@]"

let to_csv rows =
  Measure.Render.to_csv
    ~header:
      [ "cc_id"; "default_path"; "seeds"; "reached"; "mean_time_to_opt_s";
        "mean_tail_mbps"; "tail_std_mbps"; "mean_dips"; "tail_cv" ]
    ~rows:
      (List.map
         (fun r ->
           [ float_of_int
               (match r.cc with
               | Mptcp.Algorithm.Cubic -> 0
               | Mptcp.Algorithm.Reno -> 1
               | Mptcp.Algorithm.Lia -> 2
               | Mptcp.Algorithm.Olia -> 3
               | Mptcp.Algorithm.Balia -> 4
               | Mptcp.Algorithm.Ewtcp -> 5
               | Mptcp.Algorithm.Wvegas -> 6);
             float_of_int r.default_path;
             float_of_int r.seeds;
             float_of_int r.reached;
             r.mean_time_to_opt_s;
             r.mean_tail_mbps;
             r.tail_std_mbps;
             r.mean_dips;
             r.tail_cv ])
         rows)
