open Events.Sexp

(* (experiment
    (cc lia)
    (scheduler min-rtt)
    (duration-s 12)
    (sampling-ms 100)
    (seed 1)
    (total-mb 8)
    (rto-cap 2)
    (limit-pkts 16)
    (paths (a p1 z) (a p2 z))
    (events
     (at-s 3.6 (link-down a p1)))) *)

let path_of topo form =
  match form with
  | List names ->
    let names = List.map atom_exn names in
    (try Netgraph.Path.of_names topo names
     with Invalid_argument msg | Failure msg ->
       fail "bad path (%s): %s" (String.concat " " names) msg
     | Not_found ->
       fail "bad path (%s): unknown node" (String.concat " " names))
  | Atom _ -> fail "expected a path (node node ...), got %s" (to_string form)

let spec_of_sexps ~topo sexps =
  let body =
    match sexps with
    | [ List (Atom "experiment" :: body) ] -> body
    | _ -> fail "expected a single (experiment ...) form"
  in
  let one name conv = Option.map conv (find_field name body) in
  let scalar name conv =
    one name (function
      | [ x ] -> conv x
      | _ -> fail "(%s ...) takes exactly one value" name)
  in
  let cc =
    match scalar "cc" atom_exn with
    | None -> Mptcp.Algorithm.Lia
    | Some name -> (
      match Mptcp.Algorithm.of_string name with
      | Some cc -> cc
      | None -> fail "unknown congestion control %s" name)
  in
  let scheduler =
    match scalar "scheduler" atom_exn with
    | None -> Mptcp.Scheduler.Min_rtt
    | Some name -> (
      (* the DSL spells multi-word atoms with dashes; policy_of_string
         expects underscores *)
      let canon = String.map (function '-' -> '_' | c -> c) name in
      match Mptcp.Scheduler.policy_of_string canon with
      | Some p -> p
      | None -> fail "unknown scheduler %s" name)
  in
  let duration =
    match scalar "duration-s" float_exn with
    | Some s -> Events.Parse.time_of_s s
    | None -> Engine.Time.s 4
  in
  let sampling =
    match scalar "sampling-ms" float_exn with
    | Some ms -> Events.Parse.time_of_s (ms /. 1e3)
    | None -> Engine.Time.ms 100
  in
  let seed = Option.value (scalar "seed" int_exn) ~default:1 in
  let total_bytes =
    match (scalar "total-mb" float_exn, scalar "total-bytes" int_exn) with
    | Some mb, _ -> Some (int_of_float (mb *. 1e6))
    | None, (Some _ as b) -> b
    | None, None -> None
  in
  let rto_cap = scalar "rto-cap" int_exn in
  let hybrid_tick =
    Option.map
      (fun ms -> Events.Parse.time_of_s (ms /. 1e3))
      (scalar "tick-ms" float_exn)
  in
  let send_buffer = scalar "send-buffer-bytes" int_exn in
  let net_config =
    match scalar "limit-pkts" int_exn with
    | Some limit_pkts ->
      { Scenario.default_net_config with Netsim.Net.limit_pkts }
    | None -> Scenario.default_net_config
  in
  let paths =
    match find_field "paths" body with
    | Some (_ :: _ as forms) ->
      Mptcp.Path_manager.tag_paths (List.map (path_of topo) forms)
    | Some [] | None -> fail "experiment: missing (paths (a b c) ...)"
  in
  let events =
    match find_field "events" body with
    | Some forms -> Events.Parse.events topo forms
    | None -> []
  in
  Scenario.make ~topo ~paths ~cc ~scheduler ~duration ~sampling ~seed
    ~net_config ?send_buffer ?total_bytes ~events ?rto_cap ?hybrid_tick ()

let load ~topo_file ~xp_file =
  let topo = Events.Parse.load_topology topo_file in
  (topo, spec_of_sexps ~topo (Events.Sexp.load xp_file))
