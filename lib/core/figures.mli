(** Regeneration of every figure in the paper.

    Each generator returns the raw {!Scenario.result} plus rendered CSV
    and an ASCII chart, so both `bin/mptcp_sim figures` and
    `bench/main.exe` can print them.  Figure numbering follows the
    paper:

    - {!fig1}: the topology and path listing (Fig. 1a/1b);
    - {!fig1c}: the throughput constraint system and its LP optimum;
    - {!fig2a}: per-path rates under CUBIC, 100 ms sampling, 4 s;
    - {!fig2b}: per-path rates under OLIA, 100 ms sampling, 4 s (the
      run that has not yet found the optimum);
    - {!fig2c}: the first 0.5 s under CUBIC at 10 ms sampling (the
      slow-start/sawtooth close-up). *)

type figure = {
  id : string;
  title : string;
  chart : string;      (** ASCII rendering for terminals *)
  csv : string;        (** time series for external plotting *)
  result : Scenario.result option;  (** [None] for the analytic figures *)
}

val fig1 : unit -> figure
val fig1c : unit -> figure
val fig2a : ?seed:int -> unit -> figure
val fig2b : ?seed:int -> unit -> figure
val fig2c : ?seed:int -> unit -> figure

val all : ?seed:int -> ?jobs:int -> unit -> figure list
(** All five figures, generated as independent jobs on [?jobs] domains
    (default {!Runner.default_jobs}); output is identical for every
    [?jobs] value. *)

val by_id : string -> (?seed:int -> unit -> figure) option
(** Lookup by ["1"], ["1c"], ["2a"], ["2b"], ["2c"]. *)
