(* Background flow classes as fluid fields.

   A class aggregates [flows] identical single-path flows: one window
   state evolved by the controller's single-flow law
   (Controller.dwindows_single), or a constant per-flow rate for
   CBR-style classes.  Classes share directional link *channels*; each
   channel carries one queue state with the same quadratic loss ramp
   and Lipschitz boundary layers as Model, so the class fields and the
   connection model describe queues identically.  The channel's packet
   side (the foreground simulation) enters as an exogenous arrival rate
   refreshed each coarse tick; the field's outputs — occupancy and
   bandwidth share per channel — drive Netsim.Linkq's service and drop
   decisions through Driver below. *)

type law = Constant | Windowed of Controller.kind

type class_spec = {
  flows : int;
  law : law;
  flow_rate_pps : float;  (* Constant classes: per-flow sending rate *)
  base_rtt_s : float;
  chans : int array;      (* channel indices the class crosses *)
  start_s : float;        (* field time at which the class becomes active *)
}

type channel_spec = { cap_pps : float; limit_pkts : int }

type t = {
  config : Model.config;  (* buffer_pkts unused: channels carry their own *)
  tol : float;
  classes : class_spec array;
  c : int;
  l : int;
  extra_off : int;
  dim : int;
  reno_idx : int array;   (* Windowed Reno/Lia/Olia classes *)
  cubic_idx : int array;
  cubic_pos : int array;  (* class -> position in cubic_idx, or -1 *)
  cap_pps : float array;
  qmax : float array;
  q0 : float array;
  y : float array;
  mutable time_s : float;
  mutable last_dt : float;
  mutable n_inactive : int;
  active : bool array;
  starts : float array;   (* distinct future activation times, ascending *)
  mutable start_ptr : int;
  fg_pps : float array;   (* exogenous foreground arrival per channel *)
  (* scratch reused by [deriv]; a [t] is single-domain *)
  rtt : float array;
  loss : float array;
  rate : float array;     (* per-flow pps *)
  chan_loss : float array;
  chan_qdelay : float array;
  arrival : float array;  (* aggregate, foreground included *)
  qss_s : float array;    (* overload blend per channel, 0 = pure ODE *)
  qss_qeq : float array;  (* slaved equilibrium queue where qss_s > 0 *)
  (* outputs, refreshed after every [advance] *)
  occupancy : float array;
  departure : float array;  (* background bandwidth share, pps *)
  mutable steps : int;
  mutable rejected : int;
  (* tick-level dormancy: a converged field holds its outputs and skips
     integration until an input moves or a class activates *)
  y_prev : float array;
  sleep_fg : float array;
  mutable calm : int;
  mutable dormant : bool;
  mutable dormant_skips : int;
}

let compile ~(channels : channel_spec array) ~classes
    ?(config = Model.default_config) ?(tol = 1e-4) () =
  let c = Array.length classes and l = Array.length channels in
  if c = 0 then invalid_arg "Background.compile: no classes";
  Array.iter
    (fun cl ->
      if cl.flows < 1 then invalid_arg "Background.compile: class without flows";
      if Array.length cl.chans = 0 then
        invalid_arg "Background.compile: class crosses no channel";
      Array.iter
        (fun ch ->
          if ch < 0 || ch >= l then
            invalid_arg "Background.compile: channel index out of range")
        cl.chans;
      match cl.law with
      | Constant ->
        if cl.flow_rate_pps <= 0.0 then
          invalid_arg "Background.compile: constant class needs a rate"
      | Windowed _ -> ())
    classes;
  let reno = ref [] and cubic = ref [] in
  for i = c - 1 downto 0 do
    match classes.(i).law with
    | Windowed Controller.Cubic -> cubic := i :: !cubic
    | Windowed (Controller.Reno | Controller.Lia | Controller.Olia) ->
      reno := i :: !reno
    | Constant -> ()
  done;
  let cubic_idx = Array.of_list !cubic in
  let cubic_pos = Array.make c (-1) in
  Array.iteri (fun j i -> cubic_pos.(i) <- j) cubic_idx;
  let extra_off = c + l in
  let dim = extra_off + (2 * Array.length cubic_idx) in
  let qmax =
    Array.map (fun ch -> float_of_int (max 1 ch.limit_pkts)) channels
  in
  let starts =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun cl -> if cl.start_s > 1e-12 then Hashtbl.replace tbl cl.start_s ())
      classes;
    let a = Array.of_seq (Hashtbl.to_seq_keys tbl) in
    Array.sort Float.compare a;
    a
  in
  let t =
    { config;
      tol;
      classes;
      c;
      l;
      extra_off;
      dim;
      reno_idx = Array.of_list !reno;
      cubic_idx;
      cubic_pos;
      cap_pps = Array.map (fun (ch : channel_spec) -> ch.cap_pps) channels;
      qmax;
      q0 = Array.map (fun q -> config.Model.loss_start *. q) qmax;
      y = Array.make dim 0.0;
      time_s = 0.0;
      last_dt = 1e-4;
      n_inactive = 0;
      active = Array.make c true;
      starts;
      start_ptr = 0;
      fg_pps = Array.make l 0.0;
      rtt = Array.make c 0.0;
      loss = Array.make c 0.0;
      rate = Array.make c 0.0;
      chan_loss = Array.make l 0.0;
      chan_qdelay = Array.make l 0.0;
      arrival = Array.make l 0.0;
      qss_s = Array.make l 0.0;
      qss_qeq = Array.make l 0.0;
      occupancy = Array.make l 0.0;
      departure = Array.make l 0.0;
      steps = 0;
      rejected = 0;
      y_prev = Array.make dim 0.0;
      sleep_fg = Array.make l 0.0;
      calm = 0;
      dormant = false;
      dormant_skips = 0 }
  in
  for i = 0 to c - 1 do t.y.(i) <- config.Model.min_cwnd done;
  t

let n_classes t = t.c
let n_channels t = t.l
let dim t = t.dim
let time_s t = t.time_s

(* Quasi-steady state for deeply overloaded channels.  The queue ODE's
   fast mode has rate [arrival * ramp'(q)]: under heavy overload the
   explicit stepper would be stability-limited to microsecond steps
   resolving a queue that is simply pinned at its equilibrium.  Above
   [qss_lo * capacity] we blend the integrated queue toward the
   algebraic equilibrium of the ramp — [p_eq = 1 - c/A], [q_eq =
   q0 + (qmax - q0) * sqrt p_eq] — reaching a pure slaved treatment at
   [qss_hi * capacity]; the blend uses the previous derivative
   evaluation's aggregate arrival, which moves on the slow (window)
   timescale.  Below [qss_lo] the dynamics are untouched. *)
let qss_lo = 1.5
let qss_hi = 2.5
let qss_tau = Model.boundary_tau

(* Dormancy: once [calm_ticks] consecutive advances each finish in a
   couple of accepted steps with relative state drift under [calm_eps],
   the field is at its operating point and further ticks are skipped
   outright.  A foreground-rate move beyond [wake_frac] of the
   channel's aggregate arrival, a capacity change or a pending class
   activation wakes it. *)
let calm_eps = 1e-5
let calm_ticks = 3
let wake_frac = 0.02

let wake t =
  t.dormant <- false;
  t.calm <- 0

let set_foreground t ~chan ~pps =
  let pps = Float.max 0.0 pps in
  if t.dormant then begin
    let scale =
      Float.max t.arrival.(chan) (0.01 *. t.cap_pps.(chan))
    in
    if Float.abs (pps -. t.sleep_fg.(chan)) > wake_frac *. scale then wake t
  end;
  t.fg_pps.(chan) <- pps

let set_capacity t ~chan ~cap_pps =
  if cap_pps <= 0.0 then invalid_arg "Background.set_capacity: rate <= 0";
  if
    t.dormant
    && Float.abs (cap_pps -. t.cap_pps.(chan)) > 1e-9 *. t.cap_pps.(chan)
  then wake t;
  t.cap_pps.(chan) <- cap_pps

(* Channel queues and per-class views from a state vector (mid-step RK
   states may sit slightly outside the box, so reads are clamped). *)
let refresh t y =
  for ch = 0 to t.l - 1 do
    let q = Float.min t.qmax.(ch) (Float.max 0.0 y.(t.c + ch)) in
    let cap = t.cap_pps.(ch) in
    let r = t.arrival.(ch) /. cap in
    let s =
      if r <= qss_lo then 0.0
      else if r >= qss_hi then 1.0
      else begin
        let u = (r -. qss_lo) /. (qss_hi -. qss_lo) in
        u *. u *. (3.0 -. (2.0 *. u))
      end
    in
    t.qss_s.(ch) <- s;
    if s = 0.0 then begin
      t.qss_qeq.(ch) <- 0.0;
      t.chan_loss.(ch) <- Model.ramp_loss ~q0:t.q0.(ch) ~qmax:t.qmax.(ch) q;
      t.chan_qdelay.(ch) <- q /. cap
    end
    else begin
      let p_eq = 1.0 -. (1.0 /. r) in
      let q_eq =
        t.q0.(ch) +. ((t.qmax.(ch) -. t.q0.(ch)) *. sqrt p_eq)
      in
      t.qss_qeq.(ch) <- q_eq;
      let ramp = Model.ramp_loss ~q0:t.q0.(ch) ~qmax:t.qmax.(ch) q in
      t.chan_loss.(ch) <- ((1.0 -. s) *. ramp) +. (s *. p_eq);
      t.chan_qdelay.(ch) <- (((1.0 -. s) *. q) +. (s *. q_eq)) /. cap
    end
  done;
  Array.fill t.arrival 0 t.l 0.0;
  for i = 0 to t.c - 1 do
    let cl = Array.unsafe_get t.classes i in
    let chans = cl.chans in
    let rtt = ref cl.base_rtt_s and surv = ref 1.0 in
    for j = 0 to Array.length chans - 1 do
      let ch = Array.unsafe_get chans j in
      rtt := !rtt +. Array.unsafe_get t.chan_qdelay ch;
      surv := !surv *. (1.0 -. Array.unsafe_get t.chan_loss ch)
    done;
    t.rtt.(i) <- !rtt;
    t.loss.(i) <- 1.0 -. !surv;
    let x =
      if not (Array.unsafe_get t.active i) then 0.0
      else
        match cl.law with
        | Constant -> cl.flow_rate_pps
        | Windowed _ ->
          Float.max t.config.Model.min_cwnd (Array.unsafe_get y i) /. !rtt
    in
    t.rate.(i) <- x;
    if x > 0.0 then begin
      let agg = x *. float_of_int cl.flows in
      for j = 0 to Array.length chans - 1 do
        let ch = Array.unsafe_get chans j in
        Array.unsafe_set t.arrival ch (Array.unsafe_get t.arrival ch +. agg)
      done
    end
  done;
  for ch = 0 to t.l - 1 do
    t.arrival.(ch) <- t.arrival.(ch) +. t.fg_pps.(ch)
  done

let deriv t y dy =
  refresh t y;
  (* Queues: admitted aggregate arrivals minus drain, with Model's
     Lipschitz boundary layers at both box edges. *)
  let tau = Model.boundary_tau in
  for ch = 0 to t.l - 1 do
    let q = Float.max 0.0 y.(t.c + ch) in
    let d =
      (t.arrival.(ch) *. (1.0 -. t.chan_loss.(ch))) -. t.cap_pps.(ch)
    in
    let d = Float.max d (-.q /. tau) in
    let d = Float.min d ((t.qmax.(ch) -. q) /. tau) in
    let s = t.qss_s.(ch) in
    let d =
      if s = 0.0 then d
      else ((1.0 -. s) *. d) +. (s *. ((t.qss_qeq.(ch) -. q) /. qss_tau))
    in
    dy.(t.c + ch) <- d
  done;
  (* Windows, batched per law family; constant-rate classes hold. *)
  Array.fill dy 0 t.c 0.0;
  if Array.length t.reno_idx > 0 then
    Controller.dwindows_single Controller.Reno ~idx:t.reno_idx ~w:y ~rtt:t.rtt
      ~rate:t.rate ~loss:t.loss ~extras:y ~extras_off:t.extra_off ~dextras:dy
      ~out:dy;
  if Array.length t.cubic_idx > 0 then
    Controller.dwindows_single Controller.Cubic ~idx:t.cubic_idx ~w:y
      ~rtt:t.rtt ~rate:t.rate ~loss:t.loss ~extras:y ~extras_off:t.extra_off
      ~dextras:dy ~out:dy;
  (* Window floor boundary layer, and a frozen field for classes that
     have not started yet (their rate is zero, but CUBIC's epoch age
     would still tick). *)
  for i = 0 to t.c - 1 do
    if not t.active.(i) then begin
      dy.(i) <- 0.0;
      let j = t.cubic_pos.(i) in
      if j >= 0 then begin
        dy.(t.extra_off + (2 * j)) <- 0.0;
        dy.(t.extra_off + (2 * j) + 1) <- 0.0
      end
    end
    else
      match t.classes.(i).law with
      | Constant -> ()
      | Windowed _ ->
        let slack =
          (y.(i) -. t.config.Model.min_cwnd) /. Model.boundary_tau
        in
        dy.(i) <- Float.max dy.(i) (-.Float.max 0.0 slack)
  done

let project t y =
  let floor = t.config.Model.min_cwnd in
  for i = 0 to t.c - 1 do
    if y.(i) < floor then y.(i) <- floor
  done;
  for ch = 0 to t.l - 1 do
    (* Fully slaved channels snap straight to the ramp equilibrium: a
       deeply overloaded queue fills in microseconds (qmax / excess
       arrival), far inside one step, so the snap is more accurate than
       relaxing toward it — and it kills the settle tail that would
       otherwise keep the field integrating for tens of ticks. *)
    if t.qss_s.(ch) = 1.0 then y.(t.c + ch) <- t.qss_qeq.(ch)
    else begin
      let q = y.(t.c + ch) in
      if q < 0.0 then y.(t.c + ch) <- 0.0
      else if q > t.qmax.(ch) then y.(t.c + ch) <- t.qmax.(ch)
    end
  done;
  for j = t.extra_off to t.dim - 1 do
    if y.(j) < 0.0 then y.(j) <- 0.0
  done

let problem t =
  { Ode.dim = t.dim; f = (fun y dy -> deriv t y dy); project = project t }

(* Final-state outputs: channel occupancy and the background's
   bandwidth share (its admitted arrivals, capped at capacity). *)
let refresh_outputs t =
  refresh t t.y;
  for ch = 0 to t.l - 1 do
    t.occupancy.(ch) <- Float.min t.qmax.(ch) (Float.max 0.0 t.y.(t.c + ch));
    let bg_arr = Float.max 0.0 (t.arrival.(ch) -. t.fg_pps.(ch)) in
    t.departure.(ch) <-
      Float.min (bg_arr *. (1.0 -. t.chan_loss.(ch))) t.cap_pps.(ch)
  done

let advance t ~dt_s =
  if dt_s <= 0.0 then invalid_arg "Background.advance: non-positive step";
  (* A class activation landing inside this step means the dynamics are
     about to change: never sleep across it. *)
  let activating =
    t.start_ptr < Array.length t.starts
    && t.starts.(t.start_ptr) <= t.time_s +. dt_s +. 1e-12
  in
  if t.dormant && not activating then begin
    t.time_s <- t.time_s +. dt_s;
    t.dormant_skips <- t.dormant_skips + 1;
    { Ode.steps = 0; rejected = 0; last_dt = t.last_dt }
  end
  else begin
    if activating then wake t;
    t.n_inactive <- 0;
    for i = 0 to t.c - 1 do
      let a = t.classes.(i).start_s <= t.time_s +. 1e-12 in
      t.active.(i) <- a;
      if not a then t.n_inactive <- t.n_inactive + 1
    done;
    Array.blit t.y 0 t.y_prev 0 t.dim;
    let stats =
      Ode.integrate (problem t) ~y:t.y ~t0:t.time_s ~t1:(t.time_s +. dt_s)
        ~dt0:t.last_dt ~tol:t.tol ~dt_max:dt_s ()
    in
    t.time_s <- t.time_s +. dt_s;
    t.last_dt <- stats.Ode.last_dt;
    t.steps <- t.steps + stats.Ode.steps;
    t.rejected <- t.rejected + stats.Ode.rejected;
    while
      t.start_ptr < Array.length t.starts
      && t.starts.(t.start_ptr) <= t.time_s +. 1e-12
    do
      t.start_ptr <- t.start_ptr + 1
    done;
    refresh_outputs t;
    (* Quiescence: a cheap integration whose state barely moved.  After
       [calm_ticks] of those in a row, go dormant and hold the outputs
       until an input wakes the field. *)
    let drift = ref 0.0 in
    for i = 0 to t.dim - 1 do
      let d =
        Float.abs (t.y.(i) -. t.y_prev.(i)) /. (1.0 +. Float.abs t.y.(i))
      in
      if d > !drift then drift := d
    done;
    if
      stats.Ode.steps <= 2 && stats.Ode.rejected = 0 && !drift < calm_eps
      && not activating
    then begin
      t.calm <- t.calm + 1;
      if t.calm >= calm_ticks then begin
        t.dormant <- true;
        Array.blit t.fg_pps 0 t.sleep_fg 0 t.l
      end
    end
    else t.calm <- 0;
    stats
  end

let occupancy_pkts t ~chan = t.occupancy.(chan)
let departure_pps t ~chan = t.departure.(chan)
let loss_prob t ~chan = t.chan_loss.(chan)
let windows t = Array.sub t.y 0 t.c
let queues_pkts t = Array.sub t.y t.c t.l

let offered_pps t =
  let acc = ref 0.0 in
  for i = 0 to t.c - 1 do
    acc := !acc +. (t.rate.(i) *. float_of_int t.classes.(i).flows)
  done;
  !acc

let goodput_pps t =
  let acc = ref 0.0 in
  for i = 0 to t.c - 1 do
    acc :=
      !acc
      +. (t.rate.(i) *. (1.0 -. t.loss.(i)) *. float_of_int t.classes.(i).flows)
  done;
  !acc

let ode_steps t = t.steps
let ode_rejected t = t.rejected
let dormant t = t.dormant
let dormant_ticks t = t.dormant_skips

(* --- the co-simulation driver --- *)

module Driver = struct
  type decl = {
    links : (int * bool) array;  (* (topology link id, forward?) *)
    flows : int;
    kind : Controller.kind option;  (* [None] = constant-rate *)
    flow_rate_bps : int;
    rtt_s : float;
    start_s : float;
  }

  type field = t

  type t = {
    field : field;
    qs : Netsim.Linkq.t array;  (* per channel *)
    tick_s : float;
    bits_per_pkt : float;
    prev_delivered : int array;
    fg_ewma : float array;
    mutable ticks : int;
  }

  (* Foreground-rate smoothing: one tick of history carries half the
     weight, so a single quiet tick cannot collapse the estimate. *)
  let fg_alpha = 0.5

  let tick d =
    let field = d.field in
    for ch = 0 to Array.length d.qs - 1 do
      let q = d.qs.(ch) in
      set_capacity field ~chan:ch
        ~cap_pps:(float_of_int (Netsim.Linkq.rate_bps q) /. d.bits_per_pkt);
      let delivered = (Netsim.Linkq.stats q).Netsim.Linkq.bytes_delivered in
      let inst =
        float_of_int ((delivered - d.prev_delivered.(ch)) * 8)
        /. d.tick_s /. d.bits_per_pkt
      in
      d.prev_delivered.(ch) <- delivered;
      d.fg_ewma.(ch) <-
        (if d.ticks = 0 then inst
         else (fg_alpha *. inst) +. ((1.0 -. fg_alpha) *. d.fg_ewma.(ch)));
      set_foreground field ~chan:ch ~pps:d.fg_ewma.(ch)
    done;
    ignore (advance field ~dt_s:d.tick_s);
    for ch = 0 to Array.length d.qs - 1 do
      Netsim.Linkq.set_background d.qs.(ch)
        ~occupancy_pkts:(occupancy_pkts field ~chan:ch)
        ~rate_bps:
          (int_of_float (departure_pps field ~chan:ch *. d.bits_per_pkt))
    done;
    d.ticks <- d.ticks + 1

  let attach ~sched ~net ~tick:period ~until
      ?(config = Model.default_config) ?(tol = 1e-4) decls =
    if Array.length decls = 0 then invalid_arg "Background.Driver: no classes";
    let bits_per_pkt = float_of_int (8 * config.Model.mss_bytes) in
    (* Dedup (link, direction) pairs into channels. *)
    let table = Hashtbl.create 16 in
    let qs = ref [] and n_chans = ref 0 in
    let chan_of (link, fwd) =
      match Hashtbl.find_opt table (link, fwd) with
      | Some ch -> ch
      | None ->
        let dir = if fwd then Netsim.Net.Fwd else Netsim.Net.Rev in
        let q = Netsim.Net.linkq net ~link ~dir in
        let ch = !n_chans in
        Hashtbl.add table (link, fwd) ch;
        qs := q :: !qs;
        incr n_chans;
        ch
    in
    let classes =
      Array.map
        (fun decl ->
          { flows = decl.flows;
            law =
              (match decl.kind with
              | None -> Constant
              | Some k -> Windowed k);
            flow_rate_pps = float_of_int decl.flow_rate_bps /. bits_per_pkt;
            base_rtt_s = decl.rtt_s;
            chans = Array.map chan_of decl.links;
            start_s = decl.start_s })
        decls
    in
    let qs = Array.of_list (List.rev !qs) in
    let channels =
      Array.map
        (fun q ->
          { cap_pps = float_of_int (Netsim.Linkq.rate_bps q) /. bits_per_pkt;
            limit_pkts = Netsim.Linkq.limit_pkts q })
        qs
    in
    let d =
      { field = compile ~channels ~classes ~config ~tol ();
        qs;
        tick_s = Engine.Time.to_float_s period;
        bits_per_pkt;
        prev_delivered = Array.map (fun _ -> 0) qs;
        fg_ewma = Array.make (Array.length qs) 0.0;
        ticks = 0 }
    in
    Engine.Sched.periodic sched ~period ~until (fun () -> tick d);
    d

  let field d = d.field
  let ticks d = d.ticks

  type summary = {
    classes : int;
    flows : int;
    channels : int;
    ticks : int;
    ode_steps : int;
    offered_mbps : float;
    goodput_mbps : float;
    max_occupancy_pkts : float;
  }

  let summary d =
    let f = d.field in
    let max_occ = Array.fold_left Float.max 0.0 f.occupancy in
    { classes = f.c;
      flows =
        Array.fold_left
          (fun acc (cl : class_spec) -> acc + cl.flows)
          0 f.classes;
      channels = f.l;
      ticks = d.ticks;
      ode_steps = f.steps;
      offered_mbps = offered_pps f *. d.bits_per_pkt /. 1e6;
      goodput_mbps = goodput_pps f *. d.bits_per_pkt /. 1e6;
      max_occupancy_pkts = max_occ }

  let pp_summary fmt s =
    Format.fprintf fmt
      "background: %d classes (%d flows) over %d channels, %d ticks \
       (%d ODE steps), offered %.1f Mbps, goodput %.1f Mbps, max queue \
       %.1f pkts"
      s.classes s.flows s.channels s.ticks s.ode_steps s.offered_mbps
      s.goodput_mbps s.max_occupancy_pkts
end
