type kind = Reno | Cubic | Lia | Olia

let all = [ Reno; Cubic; Lia; Olia ]

let name = function
  | Reno -> "reno"
  | Cubic -> "cubic"
  | Lia -> "lia"
  | Olia -> "olia"

let of_string s =
  match String.lowercase_ascii s with
  | "reno" -> Some Reno
  | "cubic" -> Some Cubic
  | "lia" -> Some Lia
  | "olia" -> Some Olia
  | _ -> None

let of_algorithm = function
  | Mptcp.Algorithm.Cubic -> Some Cubic
  | Mptcp.Algorithm.Reno -> Some Reno
  | Mptcp.Algorithm.Lia -> Some Lia
  | Mptcp.Algorithm.Olia -> Some Olia
  | Mptcp.Algorithm.Balia | Mptcp.Algorithm.Ewtcp | Mptcp.Algorithm.Wvegas ->
    None

let to_algorithm = function
  | Reno -> Mptcp.Algorithm.Reno
  | Cubic -> Mptcp.Algorithm.Cubic
  | Lia -> Mptcp.Algorithm.Lia
  | Olia -> Mptcp.Algorithm.Olia

let coupled = function Lia | Olia -> true | Reno | Cubic -> false

let extra_dim = function Cubic -> 2 | Reno | Lia | Olia -> 0

type view = {
  n : int;
  w : float array;
  rtt : float array;
  rate : float array;
  loss : float array;
}

(* CUBIC parameters, matching Tcp.Cc_cubic.factory's defaults. *)
let cubic_c = 0.4
let cubic_beta = 0.7
let reno_gain = 3.0 *. (1.0 -. cubic_beta) /. (1.0 +. cubic_beta)

let eps = 1e-9

(* Sum of w_k / rtt_k over every subflow — Coupled.rate_sum with all
   subflows established (the fluid model has no three-way handshake). *)
let rate_sum v =
  let acc = ref 0.0 in
  for k = 0 to v.n - 1 do acc := !acc +. v.rate.(k) done;
  !acc

let max_rate2 v =
  let acc = ref 0.0 in
  for k = 0 to v.n - 1 do
    let r = v.w.(k) /. (v.rtt.(k) *. v.rtt.(k)) in
    if r > !acc then acc := r
  done;
  !acc

(* OLIA's alpha, from Mptcp.Cc_olia.alpha_for with the loss interval
   l_p taken at its fluid mean of 1/p packets — but with the packet
   law's hard set memberships ("best quality", "largest window")
   replaced by continuous ramps over a relative band.  The exact
   indicator sets make the vector field discontinuous exactly at the
   equilibrium OLIA steers towards (where path qualities tie), so the
   relaxation chatters instead of settling; the membership band keeps
   the same sets away from ties and smooths the boundary. *)
let olia_band = 0.25

(* Membership in [0,1]: 1 at the set's argmax, fading to 0 below
   (1 - band) of it. *)
let member x top =
  if top <= 0.0 then 0.0
  else begin
    let lo = (1.0 -. olia_band) *. top in
    if x <= lo then 0.0
    else begin
      let u = Float.min 1.0 ((x -. lo) /. (olia_band *. top)) in
      (* C1 smoothstep: no derivative kink at either edge. *)
      u *. u *. (3.0 -. (2.0 *. u))
    end
  end

let olia_quality v k =
  let l = 1.0 /. Float.max v.loss.(k) 1e-12 in
  l *. l /. v.rtt.(k)

let dwindows kind v ~extras ~dextras ~out =
  let n = v.n in
  match kind with
  | Reno ->
    for i = 0 to n - 1 do
      let w = v.w.(i) and x = v.rate.(i) and p = v.loss.(i) in
      out.(i) <- (x *. (1.0 -. p) /. w) -. (x *. p *. w *. 0.5)
    done
  | Lia ->
    let denom = rate_sum v in
    let coupled =
      if denom <= 0.0 then 0.0 else max_rate2 v /. (denom *. denom)
    in
    for i = 0 to n - 1 do
      let w = v.w.(i) and x = v.rate.(i) and p = v.loss.(i) in
      let inc = Float.min coupled (1.0 /. w) in
      out.(i) <- (x *. (1.0 -. p) *. inc) -. (x *. p *. w *. 0.5)
    done
  | Olia ->
    let denom = rate_sum v in
    let inv_denom2 =
      if denom <= 0.0 then 0.0 else 1.0 /. (denom *. denom)
    in
    (* The coupled sums and both argmax sets are shared by every
       subflow; one pass sizes them, a second hands out the alphas. *)
    let best_q = ref 0.0 and max_w = ref 0.0 in
    for k = 0 to n - 1 do
      let q = olia_quality v k in
      if q > !best_q then best_q := q;
      if v.w.(k) > !max_w then max_w := v.w.(k)
    done;
    let c_sum = ref 0.0 and m_sum = ref 0.0 in
    for k = 0 to n - 1 do
      let mu_b = member (olia_quality v k) !best_q in
      let mu_m = member v.w.(k) !max_w in
      c_sum := !c_sum +. (mu_b *. (1.0 -. mu_m));
      m_sum := !m_sum +. mu_m
    done;
    (* The packet law hands +1/n to the collected set and -1/n to the
       maxers, split per member; the gate fades both out as the
       collected set empties (no redistribution when best paths already
       carry the largest windows). *)
    let scale =
      if !c_sum <= eps then 0.0
      else Float.min 1.0 !c_sum /. float_of_int n
    in
    for i = 0 to n - 1 do
      let w = v.w.(i) and x = v.rate.(i) and p = v.loss.(i) in
      let alpha =
        if scale = 0.0 then 0.0
        else begin
          let mu_b = member (olia_quality v i) !best_q in
          let mu_m = member w !max_w in
          let c = mu_b *. (1.0 -. mu_m) in
          scale *. ((c /. !c_sum) -. (mu_m /. Float.max !m_sum eps))
        end
      in
      let coupled = w /. (v.rtt.(i) *. v.rtt.(i)) *. inv_denom2 in
      let inc = Float.min (coupled +. (alpha /. w)) (1.0 /. w) in
      out.(i) <- (x *. (1.0 -. p) *. inc) -. (x *. p *. w *. 0.5)
    done
  | Cubic ->
    for i = 0 to n - 1 do
      let w = v.w.(i) and x = v.rate.(i) and p = v.loss.(i) in
      let ack_rate = x *. (1.0 -. p) in
      let loss_rate = x *. p in
      let s = extras.(2 * i) and w_max = extras.((2 * i) + 1) in
      let k =
        Float.cbrt (Float.max 0.0 (w_max *. (1.0 -. cubic_beta)) /. cubic_c)
      in
      let ds = s -. k in
      let growth_cubic = 3.0 *. cubic_c *. ds *. ds in
      let growth_reno = ack_rate *. reno_gain /. w in
      (* The packet law clamps the one-RTT target at 1.5 cwnd. *)
      let growth_cap = 0.5 *. w /. v.rtt.(i) in
      let growth =
        Float.min (Float.max growth_cubic growth_reno) growth_cap
      in
      dextras.(2 * i) <- 1.0 -. (loss_rate *. s);
      dextras.((2 * i) + 1) <- loss_rate *. (w -. w_max);
      out.(i) <- growth -. (loss_rate *. (1.0 -. cubic_beta) *. w)
    done

(* The n = 1 specialization of [dwindows], applied independently to the
   classes listed in [idx] — the law Fluid.Background evaluates for
   thousands of single-path flow classes per call.  For LIA the coupled
   increase [max_rate2 / denom^2] collapses to [1/w] when a connection
   has one subflow, and OLIA's redistribution alphas vanish (its only
   path is both best-quality and largest-window), so both share Reno's
   law exactly — no approximation.  CUBIC keeps its two auxiliary
   states, stored compactly: position [j] in [idx] owns slots
   [extras_off + 2j] and [extras_off + 2j + 1] of [extras]/[dextras]. *)
let dwindows_single kind ~idx ~w ~rtt ~rate ~loss ~extras ~extras_off ~dextras
    ~out =
  let n = Array.length idx in
  match kind with
  | Reno | Lia | Olia ->
    for j = 0 to n - 1 do
      let i = Array.unsafe_get idx j in
      let wi = Array.unsafe_get w i
      and x = Array.unsafe_get rate i
      and p = Array.unsafe_get loss i in
      Array.unsafe_set out i
        ((x *. (1.0 -. p) /. wi) -. (x *. p *. wi *. 0.5))
    done
  | Cubic ->
    for j = 0 to n - 1 do
      let i = Array.unsafe_get idx j in
      let wi = Array.unsafe_get w i
      and x = Array.unsafe_get rate i
      and p = Array.unsafe_get loss i in
      let ack_rate = x *. (1.0 -. p) in
      let loss_rate = x *. p in
      let s = Array.unsafe_get extras (extras_off + (2 * j))
      and w_max = Array.unsafe_get extras (extras_off + (2 * j) + 1) in
      let k =
        Float.cbrt (Float.max 0.0 (w_max *. (1.0 -. cubic_beta)) /. cubic_c)
      in
      let ds = s -. k in
      let growth_cubic = 3.0 *. cubic_c *. ds *. ds in
      let growth_reno = ack_rate *. reno_gain /. wi in
      let growth_cap = 0.5 *. wi /. Array.unsafe_get rtt i in
      let growth =
        Float.min (Float.max growth_cubic growth_reno) growth_cap
      in
      Array.unsafe_set dextras (extras_off + (2 * j))
        (1.0 -. (loss_rate *. s));
      Array.unsafe_set dextras
        (extras_off + (2 * j) + 1)
        (loss_rate *. (wi -. w_max));
      Array.unsafe_set out i
        (growth -. (loss_rate *. (1.0 -. cubic_beta) *. wi))
    done

let init_extras kind ~n = Array.make (extra_dim kind * n) 0.0

let seed_extras kind ~w ~loss_rate =
  let n = Array.length w in
  let e = Array.make (extra_dim kind * n) 0.0 in
  (match kind with
  | Cubic ->
    for i = 0 to n - 1 do
      (* At a fluid equilibrium dw_max = 0 forces w_max = w, and
         ds = 1 - x p s = 0 pins the epoch age at the mean loss
         interval 1 / (x p); fall back to the age where cubic growth
         vanishes when the seed carries no loss yet. *)
      let lr = loss_rate i in
      e.(2 * i) <-
        (if lr > eps then 1.0 /. lr
         else Float.cbrt (w.(i) *. (1.0 -. cubic_beta) /. cubic_c));
      e.((2 * i) + 1) <- w.(i)
    done
  | Reno | Lia | Olia -> ());
  e
