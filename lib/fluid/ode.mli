(** Deterministic explicit integration of autonomous ODE systems.

    The fluid models in this library are autonomous ([dy/dt = f(y)]) and
    live on a box (windows above the minimum congestion window, queues
    inside their buffers), so a {!problem} couples the vector field with
    a projection onto that box.  {!integrate} advances the state in
    place with classic RK4 and step-doubling error control: every
    attempted step is computed both as one full step and as two half
    steps, the componentwise discrepancy is the error estimate, and the
    step size adapts to hold it at [tol].

    Everything is plain float-array arithmetic with preallocated
    scratch, so a solve allocates a handful of arrays once and nothing
    per step — integration of the paper model runs in microseconds,
    which is the whole point of the subsystem. *)

type problem = {
  dim : int;
  f : float array -> float array -> unit;
      (** [f y dy] writes the derivative of [y] into [dy]; it must not
          retain either array and should not allocate *)
  project : float array -> unit;
      (** clamp [y] onto the feasible box, in place (identity for
          unconstrained systems) *)
}

type stats = {
  steps : int;      (** accepted RK4 double-steps *)
  rejected : int;   (** step-doubling rejections (halved and retried) *)
  last_dt : float;  (** step size in use when integration finished *)
}

val integrate :
  problem -> y:float array -> t0:float -> t1:float -> ?dt0:float
  -> ?tol:float -> ?dt_min:float -> ?dt_max:float -> unit -> stats
(** Advance [y] in place from [t0] to [t1].  [tol] (default [1e-6]) is
    the per-step componentwise error bound relative to
    [max 1.0 (abs y.(i))]; [dt0] (default [1e-4] s) seeds the adaptive
    step, clamped to [[dt_min, dt_max]] (defaults [1e-7] and a quarter
    of the horizon).  The projection runs after every accepted step, so
    trajectories never leave the feasible box by more than one step's
    worth of drift.  Raises [Invalid_argument] when [t1 < t0] or [y]
    has the wrong length. *)

val merge_stats : stats -> stats -> stats
(** Accumulate the counters of two consecutive integrations (keeps the
    second argument's [last_dt]) — used by {!Trajectory} when
    integrating sample window by sample window. *)
