(** Background flow classes as fluid fields, for hybrid co-simulation.

    {!Model} compiles a handful of foreground connections into a coupled
    ODE; this module scales the other axis: {e thousands} of background
    flow {e classes}, each an aggregate of identical single-path flows,
    sharing directional link {e channels}.  Per class one window state
    evolves by the controller's single-flow law
    ({!Controller.dwindows_single} — LIA and OLIA degenerate to Reno
    exactly for one path, CUBIC keeps its two auxiliary states), or
    holds a constant per-flow rate for CBR-style classes.  Per channel
    one queue state integrates admitted aggregate arrivals minus the
    drain rate, with the same quadratic loss ramp ({!Model.ramp_loss})
    and Lipschitz boundary layers ({!Model.boundary_tau}) as the
    connection model, so the class fields and the foreground fluid model
    describe queues identically.

    The coupling to the packet simulation is two-sided and runs on a
    coarse tick ({!Driver}): the field sees the foreground's measured
    arrival rate as exogenous load on its channels, and the packet-level
    {!Netsim.Linkq} sees the field's queue occupancy and bandwidth share
    ({!Netsim.Linkq.set_background}) in its service rate and drop
    decisions.  Cost per ODE step is linear in classes + channels, so a
    million background flows (say 10^5 classes of 10) advance in
    microseconds per tick while four foreground connections keep full
    packet fidelity — the hybrid scaling argument of Peng et al.
    (arXiv:1308.3119) realised on this repository's simulator. *)

(** How a class's per-flow sending rate is determined. *)
type law =
  | Constant  (** open-loop: every flow sends at [flow_rate_pps] *)
  | Windowed of Controller.kind
      (** closed-loop: one fluid window per class, rate [w / rtt] *)

type class_spec = {
  flows : int;  (** identical flows aggregated in this class *)
  law : law;
  flow_rate_pps : float;
      (** per-flow rate for [Constant] classes (ignored otherwise) *)
  base_rtt_s : float;  (** propagation RTT, excluding queueing *)
  chans : int array;  (** channel indices the class's path crosses *)
  start_s : float;
      (** field time at which the class activates; before it the class
          sends nothing and its states are frozen *)
}

type channel_spec = {
  cap_pps : float;  (** drain rate, packets per second *)
  limit_pkts : int;  (** buffer limit, as {!Netsim.Linkq.limit_pkts} *)
}

type t

val compile :
  channels:channel_spec array -> classes:class_spec array
  -> ?config:Model.config -> ?tol:float -> unit -> t
(** Builds the field: state vector [windows (one per class); queues
    (one per channel); CUBIC auxiliary pairs (per CUBIC class)], windows
    at the floor, queues empty.  [config] supplies the loss-ramp knee,
    window floor and MSS exactly as for {!Model.compile}; [tol] (default
    [1e-4]) is the step-doubling error bound passed to {!Ode.integrate}
    — coarser than the foreground default because class fields are
    aggregates.  Raises [Invalid_argument] on empty or inconsistent
    specs (no classes, a class with no flows or channels, a channel
    index out of range, a [Constant] class without a positive rate). *)

val n_classes : t -> int
val n_channels : t -> int
val dim : t -> int
val time_s : t -> float

val set_foreground : t -> chan:int -> pps:float -> unit
(** Exogenous packet-level arrival rate sharing channel [chan],
    refreshed by the driver each tick (clamped at 0). *)

val set_capacity : t -> chan:int -> cap_pps:float -> unit
(** Re-rate a channel — tracks {!Netsim.Linkq.set_rate} mid-run.
    Raises [Invalid_argument] on a non-positive rate. *)

val problem : t -> Ode.problem
(** The vector field plus box projection.  The closures reuse per-field
    scratch, so a [t] must not be shared across domains. *)

val advance : t -> dt_s:float -> Ode.stats
(** Integrate the field forward by [dt_s] seconds (one coarse tick) and
    refresh the per-channel outputs below.  Classes whose [start_s] has
    not been reached are held frozen for the whole step.  Raises
    [Invalid_argument] on a non-positive step.

    Two regime-aware fast paths keep the cost flat at scale.  {e Deeply
    overloaded channels} (aggregate arrival beyond ~1.5x capacity, where
    an explicit stepper would be stability-limited resolving a queue
    pinned at its equilibrium) blend smoothly into a quasi-steady-state
    treatment: the queue is slaved to the loss ramp's algebraic
    equilibrium [q_eq = q0 + (qmax - q0) sqrt(1 - c/A)] and the stiff
    fast mode disappears.  {e Converged fields} go dormant: after a few
    consecutive advances whose state barely moves, [advance] returns
    immediately ([steps = 0]) and the outputs hold, until a
    foreground-rate move beyond a small fraction of the channel's
    aggregate arrival, a capacity change or a pending class activation
    wakes the field.  Both paths are deterministic functions of the
    input sequence. *)

val dormant : t -> bool
(** Whether the field is currently holding its outputs (see
    {!advance}). *)

val dormant_ticks : t -> int
(** Cumulative advances skipped while dormant. *)

(** {1 Outputs} (state after the last {!advance}) *)

val occupancy_pkts : t -> chan:int -> float
(** Background queue standing on the channel, packets. *)

val departure_pps : t -> chan:int -> float
(** Bandwidth the background claims on the channel: admitted aggregate
    arrivals, capped at capacity — what the packet side must surrender
    from its service rate. *)

val loss_prob : t -> chan:int -> float
(** The channel's current ramp loss probability. *)

val windows : t -> float array
(** Per-class window snapshot (fresh array, class order). *)

val queues_pkts : t -> float array
(** Per-channel queue snapshot (fresh array, channel order). *)

val offered_pps : t -> float
(** Aggregate pre-loss sending rate over all classes and flows. *)

val goodput_pps : t -> float
(** Aggregate post-loss delivered rate over all classes and flows. *)

val ode_steps : t -> int
val ode_rejected : t -> int
(** Cumulative {!Ode.stats} counters over every {!advance}. *)

(** Couples a field to a live {!Netsim.Net}: translates class
    declarations over topology links into channels, then on every coarse
    tick (armed through {!Engine.Sched.periodic}, so ticks ride the
    timing wheel like any other event) refreshes channel capacities from
    the live link rates, measures the foreground arrival rate from
    delivered-byte deltas (EWMA-smoothed), advances the field, and
    pushes occupancy and bandwidth share into each
    {!Netsim.Linkq.set_background}. *)
module Driver : sig
  type decl = {
    links : (int * bool) array;
        (** the class path as (topology link id, forward?) hops *)
    flows : int;
    kind : Controller.kind option;  (** [None] = constant-rate (CBR) *)
    flow_rate_bps : int;  (** per-flow rate for CBR classes *)
    rtt_s : float;  (** propagation RTT *)
    start_s : float;
  }

  type field = t
  (** The coupled class field (the enclosing module's [t]). *)

  type t

  val attach :
    sched:Engine.Sched.t -> net:Netsim.Net.t -> tick:Engine.Time.t
    -> until:Engine.Time.t -> ?config:Model.config -> ?tol:float
    -> decl array -> t
  (** Compiles the field (deduplicating [(link, dir)] pairs into
      channels), arms the per-tick coupling from [now + tick] to
      [until], and returns the driver.  [config] defaults to
      {!Model.default_config} — its [mss_bytes] sets the bits-per-packet
      conversion between the field's pps and the link's bps.  Raises
      [Invalid_argument] on an empty declaration array or an unknown
      link. *)

  val field : t -> field
  val ticks : t -> int

  type summary = {
    classes : int;
    flows : int;
    channels : int;
    ticks : int;
    ode_steps : int;
    offered_mbps : float;
    goodput_mbps : float;
    max_occupancy_pkts : float;
  }

  val summary : t -> summary
  val pp_summary : Format.formatter -> summary -> unit
end
