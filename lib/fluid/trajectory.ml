type sample = {
  t : float;
  windows : float array;
  queues : float array;
  rates_mbps : float array;
  total_mbps : float;
}

let sample_of m ~t y =
  { t;
    windows = Model.windows m y;
    queues = Model.queues_pkts m y;
    rates_mbps = Array.map (fun r -> r /. 1e6) (Model.rates_bps m y);
    total_mbps = Model.total_mbps m y }

let run m ?y0 ~horizon ~samples ?(tol = 1e-6) () =
  if samples <= 0 then invalid_arg "Trajectory.run: samples must be positive";
  if not (Float.is_finite horizon) || horizon <= 0.0 then
    invalid_arg "Trajectory.run: horizon must be positive";
  let p = Model.problem m in
  let y =
    match y0 with Some y -> Array.copy y | None -> Model.initial m
  in
  p.Ode.project y;
  let dt = horizon /. float_of_int samples in
  let acc = ref { Ode.steps = 0; rejected = 0; last_dt = 0.0 } in
  let out = ref [ sample_of m ~t:0.0 y ] in
  for k = 1 to samples do
    let t0 = dt *. float_of_int (k - 1) in
    let t1 = dt *. float_of_int k in
    let stats = Ode.integrate p ~y ~t0 ~t1 ~tol () in
    acc := Ode.merge_stats !acc stats;
    out := sample_of m ~t:t1 y :: !out
  done;
  (List.rev !out, !acc)

let write_csv m ppf samples =
  let n = Model.n_flows m in
  let ids = Model.link_ids m in
  Format.fprintf ppf "t_s";
  for i = 0 to n - 1 do Format.fprintf ppf ",w%d" i done;
  Array.iter (fun id -> Format.fprintf ppf ",q_link%d" id) ids;
  for i = 0 to n - 1 do Format.fprintf ppf ",rate%d_mbps" i done;
  Format.fprintf ppf ",total_mbps@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "%.6g" s.t;
      Array.iter (fun w -> Format.fprintf ppf ",%.6g" w) s.windows;
      Array.iter (fun q -> Format.fprintf ppf ",%.6g" q) s.queues;
      Array.iter (fun r -> Format.fprintf ppf ",%.6g" r) s.rates_mbps;
      Format.fprintf ppf ",%.6g@." s.total_mbps)
    samples
