(** Fluid (mean-field) window dynamics of the congestion controllers.

    Each packet-level law in [lib/tcp]/[lib/mptcp] acts per ACK and per
    loss; its fluid counterpart is the expected drift of the window when
    ACKs arrive at rate [x (1 - p)] and loss events at rate [x p], with
    [x = w / rtt] the subflow's sending rate in packets per second —
    the framework of Peng et al. (arXiv:1308.3119) instantiated with the
    per-algorithm increase laws catalogued by Kimura & Loureiro
    (arXiv:1812.03210), matched term for term to this repository's
    packet implementations:

    - {e Reno} ({!Tcp.Cc_reno}): [dw = x(1-p)/w - x p w/2].
    - {e LIA} ({!Mptcp.Cc_lia}, RFC 6356): the per-ACK increase
      [min(alpha / w_total, 1/w)] with
      [alpha = w_total * max_k (w_k / rtt_k^2) / (sum_k w_k / rtt_k)^2];
      halving on loss.
    - {e OLIA} ({!Mptcp.Cc_olia}): per-ACK increase
      [(w / rtt^2) / (sum_k w_k / rtt_k)^2 + alpha_i / w] where the
      [alpha_i] redistribute between the best-loss paths (the paper's
      [l_p^2 / rtt_p] quality, with loss interval [l_p ~ 1/p]) and the
      max-window paths; halving on loss.  The packet law's hard set
      memberships are smoothed over a relative band — the exact
      indicators are discontinuous precisely at the quality ties OLIA
      converges to, which would leave the fluid field chattering.
    - {e CUBIC} ({!Tcp.Cc_cubic}, RFC 8312): a hybrid fluid model with
      two extra states per subflow — the epoch age [s] (time since the
      last loss, [ds = 1 - x p s]) and the pre-loss plateau [w_max]
      ([dw_max = x p (w - w_max)]).  Between losses the window follows
      the cubic curve, [dw = 3 C (s - K)^2] with
      [K = cbrt(w_max (1 - beta) / C)], floored at the Reno-friendly
      growth rate of RFC 8312 section 4.2 and capped at half a window
      per RTT (the packet law's [1.5 * cwnd] target clamp); losses
      remove [(1 - beta) w] per event.

    All controllers are projected onto [w >= min_cwnd] (2 MSS) by the
    model, mirroring {!Tcp.Cc.min_cwnd}. *)

type kind = Reno | Cubic | Lia | Olia

val all : kind list

val name : kind -> string

val of_string : string -> kind option

val of_algorithm : Mptcp.Algorithm.t -> kind option
(** The fluid counterpart of a packet-level algorithm, or [None] for the
    algorithms without a fluid model yet (BALIA, EWTCP, wVegas). *)

val to_algorithm : kind -> Mptcp.Algorithm.t
(** The packet-level algorithm a fluid model is validated against. *)

val coupled : kind -> bool

val extra_dim : kind -> int
(** Number of auxiliary ODE states per subflow (0 except CUBIC's 2). *)

(** Read-only snapshot of every subflow, the fluid analogue of
    {!Tcp.Cc.group}: filled in by {!Model.deriv} before the window
    laws run.  Arrays are indexed by subflow. *)
type view = {
  n : int;
  w : float array;     (** windows, MSS units *)
  rtt : float array;   (** round-trip times including queueing, seconds *)
  rate : float array;  (** [w /. rtt], packets per second *)
  loss : float array;  (** end-to-end loss probability per path *)
}

val dwindows :
  kind -> view -> extras:float array -> dextras:float array
  -> out:float array -> unit
(** [dwindows kind v ~extras ~dextras ~out] writes [dw_i/dt] (MSS per
    second) for every subflow into [out], reading and differentiating
    the controller's auxiliary states in [extras]/[dextras] (laid out
    as [extra_dim kind] consecutive slots per subflow).  Batched so the
    coupled laws compute their shared rate sums and argmax sets once
    per call instead of once per subflow.  Pure float arithmetic; does
    not allocate. *)

val dwindows_single :
  kind -> idx:int array -> w:float array -> rtt:float array
  -> rate:float array -> loss:float array -> extras:float array
  -> extras_off:int -> dextras:float array -> out:float array -> unit
(** The [n = 1] specialization of {!dwindows}, applied independently to
    each index in [idx]: no coupling between entries, so thousands of
    single-path background classes evaluate in one array pass
    ({!Background} is the caller).  [w]/[rtt]/[rate]/[loss]/[out] are
    indexed by the {e entries} of [idx]; CUBIC's auxiliary states live
    compactly at [extras_off + 2j] and [extras_off + 2j + 1] for
    {e position} [j] in [idx] (the same slots of [dextras] receive their
    derivatives; both untouched for the other kinds).  For a
    single-subflow connection LIA's coupled increase and OLIA's
    redistribution both collapse to Reno's [1/w] exactly, so those
    kinds share the Reno law — a degeneration, not an approximation.
    Pure float arithmetic; does not allocate. *)

val init_extras : kind -> n:int -> float array
(** Auxiliary-state vector for an [n]-subflow connection at start of
    day (CUBIC epochs open at age 0 with no recorded plateau). *)

val seed_extras :
  kind -> w:float array -> loss_rate:(int -> float) -> float array
(** Auxiliary states consistent with an equilibrium guess at windows
    [w] whose subflows see loss events at [loss_rate i] per second
    (CUBIC plateaus at [w] with the epoch age pinned at the mean loss
    interval, or where cubic growth vanishes when lossless) — used by
    {!Model.warm_start}. *)
