(** Fixed-point equilibrium solving for compiled fluid models.

    An equilibrium of the fluid model is a state where every window and
    queue derivative vanishes (up to the box constraints: a queue
    pinned at empty or a window at the floor may carry a one-sided
    residual).  The solver is a hybrid: a quasi-Newton polish on the
    projected field — a finite-difference Jacobian is LU-factored only
    when progress stalls, Newton directions are backtracked until
    [|F|^2] drops, and accepted full-length steps update the inverse
    with Broyden's good method (kept as the LU factors plus a list of
    Sherman-Morrison rank-1 corrections, so a step costs two field
    evaluations and O(dim^2) arithmetic) — interleaved with phases of
    damped explicit relaxation (projected Euler steps under an adaptive
    pseudo-time step that grows while the residual shrinks and backs
    off when it rebounds).  Heavily backtracked steps signal a kink in
    the piecewise-smooth field; their secants are never folded into the
    Broyden inverse — the Jacobian is rebuilt instead.  The Euler
    phases inherit the dynamics' own stability, so they walk the state
    into Newton's basin whenever the warm start is not already inside
    it; in practice the paper scenarios converge in the polish alone.

    Convergence is declared on the scaled residual
    [max_i |dy_i| / max(1, |y_i|)] measured in state units per second;
    windows move in MSS per second and queues in packets per second, so
    a residual of 1e-3 means every component drifts by less than a
    thousandth of an MSS (or packet) per simulated second. *)

type diag = {
  converged : bool;
  iterations : int;    (** field evaluations spent (all phases) *)
  residual : float;    (** final scaled residual, 1/s *)
  dt : float;          (** final Euler pseudo-time step, s *)
}

val pp_diag : Format.formatter -> diag -> unit

val solve :
  Model.t -> ?y0:float array -> ?tol:float -> ?max_iter:int -> unit
  -> float array * diag
(** [solve m ()] returns an equilibrium state and its diagnostics.
    [y0] seeds the iteration (default {!Model.warm_start}; the array is
    not mutated), [tol] is the residual target (default [1e-4]),
    [max_iter] the field-evaluation budget (default [200_000]).  A
    result with
    [diag.converged = false] is the best point reached; callers decide
    whether to fall back to {!Trajectory} integration. *)

val refine :
  Model.t -> y:float array -> horizon:float -> ?tol:float -> unit
  -> Ode.stats
(** [refine m ~y ~horizon ()] polishes [y] in place by integrating the
    true dynamics for [horizon] seconds with {!Ode.integrate} — useful
    when the relaxation stalls near a limit cycle (CUBIC's sawtooth
    has a genuine one; the damped iteration averages over it, and a
    short refine exposes how much the orbit actually moves). *)
