type diag = {
  converged : bool;
  iterations : int;
  residual : float;
  dt : float;
}

let pp_diag ppf d =
  Format.fprintf ppf "%s in %d iterations (residual %.2e, dt %.2e)"
    (if d.converged then "converged" else "NOT converged")
    d.iterations d.residual d.dt

let dt_min = 1e-6
let dt_max = 1e-2

let residual dim y dy =
  let r = ref 0.0 in
  for i = 0 to dim - 1 do
    let s = Float.max 1.0 (Float.abs y.(i)) in
    let e = Float.abs dy.(i) /. s in
    if e > !r then r := e
  done;
  !r

let norm2 v =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x *. x)) v;
  !acc

let dot dim a b =
  let acc = ref 0.0 in
  for i = 0 to dim - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

(* Scratch for the quasi-Newton polish, sized once per solve.  The
   inverse Jacobian is never formed explicitly: it is kept as the LU
   factors of the last finite-difference build plus a list of
   Sherman-Morrison rank-1 corrections [us.(j) vs.(j)^T] from Broyden
   updates, so a rebuild costs an O(dim^3 / 3) factorisation instead of
   a full O(dim^3) inversion and applying the inverse stays O(dim^2). *)
let max_rank1 = 24

type qn_scratch = {
  lu : float array array;     (* row-major LU factor scratch *)
  piv : int array;
  us : float array array;     (* Broyden rank-1 corrections ... *)
  vs : float array array;     (* ... J^{-1} = LU^{-1} + sum us vs^T *)
  delta : float array;
  y_try : float array;
  f0 : float array;
  f1 : float array;
  dvec : float array;         (* accepted state displacement *)
  t1 : float array;           (* solve / apply scratch *)
  t2 : float array;
}

let qn_scratch dim =
  { lu = Array.make_matrix dim dim 0.0;
    piv = Array.make dim 0;
    us = Array.make_matrix max_rank1 dim 0.0;
    vs = Array.make_matrix max_rank1 dim 0.0;
    delta = Array.make dim 0.0;
    y_try = Array.make dim 0.0;
    f0 = Array.make dim 0.0;
    f1 = Array.make dim 0.0;
    dvec = Array.make dim 0.0;
    t1 = Array.make dim 0.0;
    t2 = Array.make dim 0.0 }

(* LU-factor [s.lu] (row-major, in place) with partial pivoting.
   Returns false on a collapsed pivot. *)
let lu_factor s dim =
  let lu = s.lu and piv = s.piv in
  let ok = ref true in
  (try
     for k = 0 to dim - 1 do
       let p = ref k and best = ref (Float.abs lu.(k).(k)) in
       for i = k + 1 to dim - 1 do
         let m = Float.abs lu.(i).(k) in
         if m > !best then begin
           best := m;
           p := i
         end
       done;
       if !best < 1e-300 then raise Exit;
       if !p <> k then begin
         let t = lu.(k) in
         lu.(k) <- lu.(!p);
         lu.(!p) <- t
       end;
       piv.(k) <- !p;
       let rk = lu.(k) in
       let inv_pivot = 1.0 /. rk.(k) in
       for i = k + 1 to dim - 1 do
         let ri = lu.(i) in
         let m = ri.(k) *. inv_pivot in
         ri.(k) <- m;
         if m <> 0.0 then
           for j = k + 1 to dim - 1 do
             Array.unsafe_set ri j
               (Array.unsafe_get ri j -. (m *. Array.unsafe_get rk j))
           done
       done
     done
   with Exit -> ok := false);
  !ok

(* x := J0^{-1} b given the LU factors: permute, forward- then
   back-substitute. *)
let lu_solve s dim b x =
  let lu = s.lu and piv = s.piv in
  Array.blit b 0 x 0 dim;
  for i = 0 to dim - 1 do
    let p = piv.(i) in
    if p <> i then begin
      let t = x.(i) in
      x.(i) <- x.(p);
      x.(p) <- t
    end
  done;
  for i = 1 to dim - 1 do
    let ri = lu.(i) in
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get ri j *. Array.unsafe_get x j)
    done;
    x.(i) <- !acc
  done;
  for i = dim - 1 downto 0 do
    let ri = lu.(i) in
    let acc = ref x.(i) in
    for j = i + 1 to dim - 1 do
      acc := !acc -. (Array.unsafe_get ri j *. Array.unsafe_get x j)
    done;
    x.(i) <- !acc /. ri.(i)
  done

(* x := J0^{-T} b: with P J0 = L U we have J0^T = U^T L^T P, so solve
   U^T z = b (forward, U^T is lower triangular), L^T y = z (backward,
   unit diagonal), then undo the row swaps in reverse order. *)
let lut_solve s dim b x =
  let lu = s.lu and piv = s.piv in
  Array.blit b 0 x 0 dim;
  for i = 0 to dim - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get lu.(j) i *. Array.unsafe_get x j)
    done;
    x.(i) <- !acc /. lu.(i).(i)
  done;
  for i = dim - 2 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to dim - 1 do
      acc := !acc -. (Array.unsafe_get lu.(j) i *. Array.unsafe_get x j)
    done;
    x.(i) <- !acc
  done;
  for i = dim - 1 downto 0 do
    let p = piv.(i) in
    if p <> i then begin
      let t = x.(i) in
      x.(i) <- x.(p);
      x.(p) <- t
    end
  done

(* out := J^{-1} b with the current rank-[rank] correction list. *)
let apply_jinv s dim rank b out =
  lu_solve s dim b out;
  for j = 0 to rank - 1 do
    let c = dot dim s.vs.(j) b in
    if c <> 0.0 then begin
      let u = s.us.(j) in
      for i = 0 to dim - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get out i +. (c *. Array.unsafe_get u i))
      done
    end
  done

(* out := J^{-T} b (the transpose of the same operator). *)
let apply_jinv_t s dim rank b out =
  lut_solve s dim b out;
  for j = 0 to rank - 1 do
    let c = dot dim s.us.(j) b in
    if c <> 0.0 then begin
      let v = s.vs.(j) in
      for i = 0 to dim - 1 do
        Array.unsafe_set out i
          (Array.unsafe_get out i +. (c *. Array.unsafe_get v i))
      done
    end
  done

(* Quasi-Newton polish on [F(y) = 0] where [F] is the projected fluid
   field.  A finite-difference Jacobian is built (and inverted) only
   when needed; accepted steps update the inverse directly with
   Broyden's good method via Sherman-Morrison, so the steady-state cost
   per step is two field evaluations plus O(dim^2) arithmetic instead
   of a fresh Jacobian and an O(dim^3) factorisation.  Every trial step
   must shrink [|F|^2] (backtracking line search) or the Jacobian is
   rebuilt; a rebuild that still cannot make progress ends the polish,
   so it can stall on a kink but never diverge.  Returns the field
   evaluations spent. *)
let qn_polish p s ~y ~tol ~max_steps =
  let dim = p.Ode.dim in
  let evals = ref 0 in
  let f v out =
    p.Ode.f v out;
    incr evals
  in
  let steps = ref 0 in
  let stop = ref false in
  let fresh = ref false in
  let stale = ref true in
  let rank = ref 0 in
  f y s.f0;
  while (not !stop) && !steps < max_steps do
    incr steps;
    if residual dim y s.f0 <= tol then stop := true
    else begin
      if !stale then begin
        (* Forward-difference Jacobian straight into the row-major LU
           scratch, then factor (the corrections list restarts). *)
        for j = 0 to dim - 1 do
          let h = 1e-6 *. Float.max 1.0 (Float.abs y.(j)) in
          let saved = y.(j) in
          y.(j) <- saved +. h;
          f y s.f1;
          y.(j) <- saved;
          let inv_h = 1.0 /. h in
          for i = 0 to dim - 1 do
            s.lu.(i).(j) <-
              (Array.unsafe_get s.f1 i -. Array.unsafe_get s.f0 i) *. inv_h
          done
        done;
        if lu_factor s dim then begin
          rank := 0;
          stale := false;
          fresh := true
        end
        else stop := true (* singular even with a fresh build *)
      end;
      if not !stop then begin
        let phi0 = norm2 s.f0 in
        apply_jinv s dim !rank s.f0 s.delta;
        for i = 0 to dim - 1 do
          s.delta.(i) <- -.s.delta.(i)
        done;
        (* Backtracking line search: halve the step until |F|^2
           drops. *)
        let t = ref 1.0 in
        let accepted = ref false in
        let tries = ref 0 in
        while (not !accepted) && !tries < 20 do
          incr tries;
          for i = 0 to dim - 1 do
            s.y_try.(i) <- y.(i) +. (!t *. s.delta.(i))
          done;
          p.Ode.project s.y_try;
          f s.y_try s.f1;
          if norm2 s.f1 < phi0 then accepted := true
          else t := !t *. 0.5
        done;
        if !accepted then begin
          for i = 0 to dim - 1 do
            s.dvec.(i) <- s.y_try.(i) -. y.(i);
            s.f1.(i) <- s.f1.(i) -. s.f0.(i) (* f1 becomes df *)
          done;
          Array.blit s.y_try 0 y 0 dim;
          for i = 0 to dim - 1 do
            s.f0.(i) <- s.f0.(i) +. s.f1.(i) (* back to F(y_new) *)
          done;
          if !t < 0.05 then
            (* A heavily backtracked step means the local linear model
               is wrong here (a kink, or a stale inverse); folding the
               secant of such a step into J^{-1} poisons later
               directions, so rebuild instead. *)
            stale := true
          else if !rank >= max_rank1 then stale := true
          else begin
            (* Broyden's good update of the inverse via
               Sherman-Morrison, appended to the correction list:
               Jinv += (dy - Jinv df) (dy^T Jinv) / (dy^T Jinv df). *)
            apply_jinv s dim !rank s.f1 s.t1; (* Jinv df *)
            apply_jinv_t s dim !rank s.dvec s.t2; (* (dy^T Jinv)^T *)
            let denom = dot dim s.t2 s.f1 in
            if Float.abs denom > 1e-300 then begin
              let inv_denom = 1.0 /. denom in
              let u = s.us.(!rank) and v = s.vs.(!rank) in
              for i = 0 to dim - 1 do
                u.(i) <- (s.dvec.(i) -. s.t1.(i)) *. inv_denom;
                v.(i) <- s.t2.(i)
              done;
              incr rank;
              fresh := false
            end
            else stale := true (* degenerate update; rebuild next time *)
          end
        end
        else if !fresh then stop := true (* fresh J and still stalled *)
        else stale := true (* stale J was to blame; rebuild *)
      end
    end
  done;
  !evals

let solve m ?y0 ?(tol = 1e-4) ?(max_iter = 200_000) () =
  let p = Model.problem m in
  let y =
    match y0 with
    | Some y -> Array.copy y
    | None -> Model.warm_start m
  in
  p.Ode.project y;
  let dim = p.Ode.dim in
  let dy = Array.make dim 0.0 in
  let s = qn_scratch dim in
  let dt = ref 2e-4 in
  let prev = ref infinity in
  let res = ref infinity in
  let evals = ref 0 in
  let converged () = !res <= tol in
  let check () =
    p.Ode.f y dy;
    incr evals;
    res := residual dim y dy
  in
  (* The polish converges in a handful of Jacobian builds when it
     starts inside Newton's basin; the damped-Euler phases walk it
     there along the (stable) fluid dynamics when the warm start is not
     already close enough.  Every phase costs field evaluations out of
     the same [max_iter] budget. *)
  let euler_phase budget =
    let steps = ref 0 in
    while (not (converged ())) && !steps < budget && !evals < max_iter do
      incr steps;
      check ();
      if not (converged ()) then begin
        if !res > !prev *. 1.2 then dt := Float.max dt_min (!dt *. 0.5)
        else dt := Float.min dt_max (!dt *. 1.05);
        prev := !res;
        for i = 0 to dim - 1 do
          y.(i) <- y.(i) +. (!dt *. dy.(i))
        done;
        p.Ode.project y
      end
    done
  in
  check ();
  let rounds = ref 0 in
  while (not (converged ())) && !evals < max_iter && !rounds < 40 do
    incr rounds;
    evals := !evals + qn_polish p s ~y ~tol ~max_steps:60;
    check ();
    if not (converged ()) then euler_phase 500
  done;
  ( y,
    { converged = converged ();
      iterations = !evals;
      residual = !res;
      dt = !dt } )

let refine m ~y ~horizon ?(tol = 1e-6) () =
  let p = Model.problem m in
  Ode.integrate p ~y ~t0:0.0 ~t1:horizon ~tol ()
