(** Compile a topology and path set into the coupled window/queue ODE.

    The compiled system has one window state per subflow, one queue
    state per link that carries at least one path, and
    {!Controller.extra_dim} auxiliary states per subflow:

    - {e Rates.}  Subflow [i] sends at [x_i = w_i / rtt_i] packets per
      second, where [rtt_i] is twice the path's propagation delay plus
      the queueing delay [q_l / c_l] of every link it crosses.
    - {e Queues.}  Link [l] with capacity [c_l] (packets per second)
      accepts the aggregate arrival rate [y_l = sum over paths] thinned
      by its loss probability: [dq_l = y_l (1 - p_l) - c_l], clamped to
      [[0, buffer]].
    - {e Loss.}  A smooth RED-style ramp approximates drop-tail: below
      [loss_start] of the buffer the link is lossless, above it
      [p_l = ((q - q0) / (qmax - q0))^2] rises to 1 at a full buffer.
      Equilibrium queues therefore sit just above the ramp's knee, and
      the complementarity of the paper's LP (a link is either saturated
      or lossless) emerges from the dynamics instead of being assumed.
    - {e Paths.}  A path's loss is [1 - prod (1 - p_l)] over its links;
      its windows evolve by {!Controller.dwindows}.

    The link rows, capacities and incidence structure come from
    {!Netgraph.Constraints.extract} — the same extraction that feeds
    the LP solver and the audit's feasibility invariant, so the fluid
    model can never disagree with them about what the constraint system
    is. *)

type config = {
  mss_bytes : int;       (** packet size for bps/pps conversions *)
  buffer_pkts : int;     (** per-link queue limit, as in {!Netsim.Net.config} *)
  loss_start : float;    (** ramp knee as a fraction of the buffer *)
  min_cwnd : float;      (** window floor, MSS ({!Tcp.Cc.min_cwnd}) *)
}

val default_config : config
(** [Packet.default_mss], 16-packet buffers (the paper scenario's
    {!Core.Scenario.default_net_config}), knee at half the buffer,
    2-MSS floor. *)

val boundary_tau : float
(** Width (pseudo-time seconds) of the Lipschitz boundary layer that
    replaces hard derivative stalls at the state box's edges — shared
    with {!Background}'s class fields so both systems are integrable by
    the same stepper. *)

val ramp_loss : q0:float -> qmax:float -> float -> float
(** [ramp_loss ~q0 ~qmax q] is the quadratic drop-tail ramp above: [0]
    at or below the knee [q0], rising as [((q - q0) / (qmax - q0))^2]
    to [1] at [qmax].  Clamps [q] into [[0, qmax]] first.  Exposed so
    {!Background} compiles its per-channel class fields with the exact
    loss law this model uses. *)

type t

val compile :
  Netgraph.Topology.t -> paths:Netgraph.Path.t list
  -> controller:Controller.kind -> ?config:config -> unit -> t
(** Raises [Invalid_argument] on an empty path list (via
    {!Netgraph.Constraints.extract}). *)

val topo : t -> Netgraph.Topology.t
val controller : t -> Controller.kind
val config : t -> config
val n_flows : t -> int
val n_links : t -> int
val link_ids : t -> int array
(** Topology link id per queue row, in {!Netgraph.Constraints.system}
    row order. *)

val system : t -> Netgraph.Constraints.system
(** The LP constraint system the model was compiled from. *)

val dim : t -> int

val problem : t -> Ode.problem
(** The vector field plus box projection, ready for {!Ode.integrate}
    or {!Equilibrium.solve}.  The closures reuse per-model scratch, so
    a [t] must not be shared across domains (compile one per job). *)

val initial : t -> float array
(** Cold start: every window at the floor, queues empty, fresh epochs. *)

val warm_start : t -> float array
(** Start near the expected operating point — windows sized to send
    the LP-optimal rates, the LP's binding queues seeded {e inside} the
    loss ramp at the depth that makes the ramp's loss probability
    consistent with the Reno-balance loss those windows imply (exactly
    at the knee both [p] and [dp/dq] vanish, which zeroes CUBIC's
    auxiliary Jacobian rows and strands Newton), the remaining queues
    empty, and CUBIC epochs aged to the mean loss interval — so the
    equilibrium solver converges in few iterations.  Deterministic. *)

(** {1 Observers}  (fresh arrays; indexed like the compiled paths) *)

val windows : t -> float array -> float array
val queues_pkts : t -> float array -> float array
val rtts_s : t -> float array -> float array
val path_loss : t -> float array -> float array

val rates_bps : t -> float array -> float array
(** Delivered (post-loss) rate per path, bits per second — the fluid
    counterpart of the wire rate the simulator measures at the
    receiver. *)

val offered_bps : t -> float array -> float array
(** Pre-loss sending rate per path, bits per second. *)

val total_mbps : t -> float array -> float
(** Sum of {!rates_bps}, in Mbps. *)
