type problem = {
  dim : int;
  f : float array -> float array -> unit;
  project : float array -> unit;
}

type stats = { steps : int; rejected : int; last_dt : float }

let merge_stats a b =
  { steps = a.steps + b.steps;
    rejected = a.rejected + b.rejected;
    last_dt = b.last_dt }

(* One classic RK4 step from [y] with step [dt], result into [out].
   [k1..k4] and [tmp] are caller-provided scratch of length [dim]. *)
let rk4_step p ~dt ~y ~out ~k1 ~k2 ~k3 ~k4 ~tmp =
  let n = p.dim in
  p.f y k1;
  for i = 0 to n - 1 do tmp.(i) <- y.(i) +. (0.5 *. dt *. k1.(i)) done;
  p.f tmp k2;
  for i = 0 to n - 1 do tmp.(i) <- y.(i) +. (0.5 *. dt *. k2.(i)) done;
  p.f tmp k3;
  for i = 0 to n - 1 do tmp.(i) <- y.(i) +. (dt *. k3.(i)) done;
  p.f tmp k4;
  let c = dt /. 6.0 in
  for i = 0 to n - 1 do
    out.(i) <-
      y.(i) +. (c *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i)))
  done

let integrate p ~y ~t0 ~t1 ?(dt0 = 1e-4) ?(tol = 1e-6) ?(dt_min = 1e-7)
    ?dt_max () =
  if Array.length y <> p.dim then
    invalid_arg "Ode.integrate: state has the wrong dimension";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  let horizon = t1 -. t0 in
  let dt_max =
    match dt_max with Some d -> d | None -> Float.max dt_min (horizon /. 4.0)
  in
  let n = p.dim in
  let k1 = Array.make n 0.0 and k2 = Array.make n 0.0 in
  let k3 = Array.make n 0.0 and k4 = Array.make n 0.0 in
  let tmp = Array.make n 0.0 in
  let tmp2 = Array.make n 0.0 in
  let full = Array.make n 0.0 in
  let half = Array.make n 0.0 in
  let steps = ref 0 and rejected = ref 0 in
  let t = ref t0 in
  let dt = ref (Float.min (Float.max dt0 dt_min) dt_max) in
  p.project y;
  while t1 -. !t > 1e-12 do
    let dt_now = Float.min !dt (t1 -. !t) in
    (* One full step ... *)
    rk4_step p ~dt:dt_now ~y ~out:full ~k1 ~k2 ~k3 ~k4 ~tmp;
    (* ... versus two half steps. *)
    let h = 0.5 *. dt_now in
    rk4_step p ~dt:h ~y ~out:half ~k1 ~k2 ~k3 ~k4 ~tmp;
    (* [tmp2] keeps the stage scratch distinct from [k1] here: aliasing
       them corrupts the k1 term of the final RK4 combination. *)
    Array.blit half 0 tmp 0 n;
    rk4_step p ~dt:h ~y:tmp ~out:half ~k1 ~k2 ~k3 ~k4 ~tmp:tmp2;
    let err = ref 0.0 in
    for i = 0 to n - 1 do
      let scale = Float.max 1.0 (Float.abs half.(i)) in
      let e = Float.abs (full.(i) -. half.(i)) /. scale in
      if e > !err then err := e
    done;
    let finite = Float.is_finite !err in
    if (not finite) && dt_now <= dt_min then
      failwith "Ode.integrate: non-finite derivative at the minimum step";
    if finite && (!err <= tol || dt_now <= dt_min) then begin
      Array.blit half 0 y 0 n;
      p.project y;
      t := !t +. dt_now;
      incr steps;
      (* Standard fifth-order growth rule, kept conservative. *)
      let grow =
        if !err <= 0.0 then 2.0
        else Float.min 2.0 (0.9 *. ((tol /. !err) ** 0.2))
      in
      dt := Float.min dt_max (Float.max dt_min (dt_now *. Float.max 0.5 grow))
    end
    else begin
      incr rejected;
      dt := Float.max dt_min (dt_now *. 0.5)
    end
  done;
  { steps = !steps; rejected = !rejected; last_dt = !dt }
