type config = {
  mss_bytes : int;
  buffer_pkts : int;
  loss_start : float;
  min_cwnd : float;
}

let default_config =
  { mss_bytes = Packet.default_mss;
    buffer_pkts = 16;
    loss_start = 0.5;
    min_cwnd = 2.0 }

type t = {
  topo : Netgraph.Topology.t;
  paths : Netgraph.Path.t array;
  kind : Controller.kind;
  config : config;
  sys : Netgraph.Constraints.system;
  n : int;  (* subflows *)
  m : int;  (* links with traffic *)
  extra_off : int;
  dim : int;
  cap_pps : float array;         (* per link row *)
  flow_links : int array array;  (* per flow: link-row indices *)
  base_rtt : float array;        (* 2x propagation, seconds *)
  qmax : float;
  q0 : float;
  (* scratch reused by [deriv]; a [t] is single-domain *)
  view : Controller.view;
  link_loss : float array;
  link_qdelay : float array;  (* clamped q / capacity, seconds *)
  link_surv : float array;    (* 1 - link loss *)
  link_arrival : float array;
  extras : float array;
  dextras : float array;
}

let compile topo ~paths ~controller ?(config = default_config) () =
  let sys = Netgraph.Constraints.extract topo paths in
  let paths = sys.Netgraph.Constraints.paths in
  let n = Array.length paths in
  let m = Array.length sys.Netgraph.Constraints.link_rows in
  let bits_per_pkt = float_of_int (8 * config.mss_bytes) in
  let cap_pps =
    Array.map (fun b -> b /. bits_per_pkt) sys.Netgraph.Constraints.b
  in
  let flow_links =
    Array.init n (fun i ->
        let rows = ref [] in
        for l = m - 1 downto 0 do
          if sys.Netgraph.Constraints.a.(l).(i) > 0.0 then rows := l :: !rows
        done;
        Array.of_list !rows)
  in
  let base_rtt =
    Array.map
      (fun p ->
        2.0 *. Engine.Time.to_float_s (Netgraph.Path.one_way_delay topo p))
      paths
  in
  let qmax = float_of_int config.buffer_pkts in
  let extra = Controller.extra_dim controller * n in
  { topo;
    paths;
    kind = controller;
    config;
    sys;
    n;
    m;
    extra_off = n + m;
    dim = n + m + extra;
    cap_pps;
    flow_links;
    base_rtt;
    qmax;
    q0 = config.loss_start *. qmax;
    view =
      { Controller.n;
        w = Array.make n 0.0;
        rtt = Array.make n 0.0;
        rate = Array.make n 0.0;
        loss = Array.make n 0.0 };
    link_loss = Array.make m 0.0;
    link_qdelay = Array.make m 0.0;
    link_surv = Array.make m 0.0;
    link_arrival = Array.make m 0.0;
    extras = Array.make extra 0.0;
    dextras = Array.make extra 0.0 }

(* Width (in pseudo-time seconds) of the Lipschitz boundary layer that
   replaces hard derivative stalls at the state box's edges. *)
let boundary_tau = 2e-3

(* Quadratic loss ramp from the knee [q0] to the full buffer [qmax] —
   the one field compilation shared between the connection model here
   and the per-class background fields in {!Background}, so both
   engines agree on what a given queue level means. *)
let ramp_loss ~q0 ~qmax q =
  let q = Float.min qmax (Float.max 0.0 q) in
  if q <= q0 then 0.0
  else begin
    let r = Float.min 1.0 ((q -. q0) /. (qmax -. q0)) in
    r *. r
  end

let topo t = t.topo
let controller t = t.kind
let config t = t.config
let n_flows t = t.n
let n_links t = t.m
let link_ids t = Array.copy t.sys.Netgraph.Constraints.link_rows
let system t = t.sys
let dim t = t.dim

(* Fill [t.view] and [t.link_loss] from a state vector.  Mid-step RK
   states may sit slightly outside the box, so reads are clamped. *)
let refresh_view t y =
  let v = t.view in
  for l = 0 to t.m - 1 do
    let q = Float.min t.qmax (Float.max 0.0 (Array.unsafe_get y (t.n + l))) in
    let p = ramp_loss ~q0:t.q0 ~qmax:t.qmax q in
    Array.unsafe_set t.link_loss l p;
    Array.unsafe_set t.link_surv l (1.0 -. p);
    Array.unsafe_set t.link_qdelay l (q /. Array.unsafe_get t.cap_pps l)
  done;
  for i = 0 to t.n - 1 do
    let w = Float.max t.config.min_cwnd (Array.unsafe_get y i) in
    let rtt = ref (Array.unsafe_get t.base_rtt i) in
    let surv = ref 1.0 in
    let links = Array.unsafe_get t.flow_links i in
    for j = 0 to Array.length links - 1 do
      let l = Array.unsafe_get links j in
      rtt := !rtt +. Array.unsafe_get t.link_qdelay l;
      surv := !surv *. Array.unsafe_get t.link_surv l
    done;
    Array.unsafe_set v.Controller.w i w;
    Array.unsafe_set v.Controller.rtt i !rtt;
    Array.unsafe_set v.Controller.rate i (w /. !rtt);
    Array.unsafe_set v.Controller.loss i (1.0 -. !surv)
  done

let deriv t y dy =
  refresh_view t y;
  let v = t.view in
  (* Aggregate per-link arrivals. *)
  Array.fill t.link_arrival 0 t.m 0.0;
  for i = 0 to t.n - 1 do
    let links = Array.unsafe_get t.flow_links i in
    let rate = Array.unsafe_get v.Controller.rate i in
    for j = 0 to Array.length links - 1 do
      let l = Array.unsafe_get links j in
      Array.unsafe_set t.link_arrival l
        (Array.unsafe_get t.link_arrival l +. rate)
    done
  done;
  (* Queues: admitted arrivals minus drain.  The box edges are handled
     with a Lipschitz boundary layer rather than a hard stall: within
     [boundary_tau] of the edge the outward component fades linearly
     ([dq >= -q / tau], [dq <= (qmax - q) / tau]), so the field is
     continuous across the boundary — a hard zero-at-the-edge stall
     would put a jump discontinuity exactly where underloaded queues
     sit, breaking both the step-doubling error estimate and the
     Newton polish of {!Equilibrium}. *)
  for l = 0 to t.m - 1 do
    let q = Float.max 0.0 y.(t.n + l) in
    let d = (t.link_arrival.(l) *. (1.0 -. t.link_loss.(l))) -. t.cap_pps.(l) in
    let d = Float.max d (-.q /. boundary_tau) in
    let d = Float.min d ((t.qmax -. q) /. boundary_tau) in
    dy.(t.n + l) <- d
  done;
  (* Windows and controller extras; the same boundary layer keeps the
     field Lipschitz at the window floor. *)
  let extra = t.dim - t.extra_off in
  if extra > 0 then Array.blit y t.extra_off t.extras 0 extra;
  Controller.dwindows t.kind v ~extras:t.extras ~dextras:t.dextras ~out:dy;
  for i = 0 to t.n - 1 do
    let slack = (y.(i) -. t.config.min_cwnd) /. boundary_tau in
    dy.(i) <- Float.max dy.(i) (-.Float.max 0.0 slack)
  done;
  if extra > 0 then Array.blit t.dextras 0 dy t.extra_off extra

let project t y =
  for i = 0 to t.n - 1 do
    if y.(i) < t.config.min_cwnd then y.(i) <- t.config.min_cwnd
  done;
  for l = 0 to t.m - 1 do
    let q = y.(t.n + l) in
    if q < 0.0 then y.(t.n + l) <- 0.0
    else if q > t.qmax then y.(t.n + l) <- t.qmax
  done;
  for j = t.extra_off to t.dim - 1 do
    if y.(j) < 0.0 then y.(j) <- 0.0
  done

let problem t =
  { Ode.dim = t.dim; f = (fun y dy -> deriv t y dy); project = project t }


let initial t =
  let y = Array.make t.dim 0.0 in
  for i = 0 to t.n - 1 do y.(i) <- t.config.min_cwnd done;
  let e = Controller.init_extras t.kind ~n:t.n in
  Array.blit e 0 y t.extra_off (Array.length e);
  y

let warm_start t =
  let opt =
    Netgraph.Constraints.optimum t.topo (Array.to_list t.paths)
  in
  let bits_per_pkt = float_of_int (8 * t.config.mss_bytes) in
  let y = Array.make t.dim 0.0 in
  (* Queues inside the loss ramp on the LP's binding links and empty
     elsewhere (underloaded, pinned at the box edge).  The queue level
     is chosen so the link's loss probability matches the Reno-style
     window balance p ~ 2 / w^2 of the flows crossing it (split across
     each flow's binding links): the warm loss then roughly balances
     the window growth, not just the queue drain.  Never seed exactly
     at the knee — there both [p] and [dp/dq] vanish (the ramp is
     quadratic), so every state that only moves through loss (CUBIC's
     epoch age and w_max) would have an identically zero Jacobian row
     and Newton could not start. *)
  let binding = Array.make t.m false in
  List.iter
    (fun (link_id, _) ->
      Array.iteri
        (fun l id -> if id = link_id then binding.(l) <- true)
        t.sys.Netgraph.Constraints.link_rows)
    opt.Netgraph.Constraints.bottlenecks;
  (* First pass: provisional windows at knee-level queues, to size the
     loss balance. *)
  let rates = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    rates.(i) <- opt.Netgraph.Constraints.per_path_bps.(i) /. bits_per_pkt
  done;
  let w_rough = Array.make t.n 0.0 in
  let n_binding = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    let rtt = ref t.base_rtt.(i) in
    let links = t.flow_links.(i) in
    for j = 0 to Array.length links - 1 do
      let l = links.(j) in
      if binding.(l) then begin
        rtt := !rtt +. (t.q0 /. t.cap_pps.(l));
        n_binding.(i) <- n_binding.(i) + 1
      end
    done;
    w_rough.(i) <- Float.max t.config.min_cwnd (rates.(i) *. !rtt)
  done;
  for l = 0 to t.m - 1 do
    if binding.(l) then begin
      (* Average the per-flow loss targets over the flows that cross
         this link. *)
      let acc = ref 0.0 and cnt = ref 0 in
      for i = 0 to t.n - 1 do
        let links = t.flow_links.(i) in
        for j = 0 to Array.length links - 1 do
          if links.(j) = l then begin
            let w = w_rough.(i) in
            acc :=
              !acc
              +. (2.0 /. (w *. w) /. float_of_int (max 1 n_binding.(i)));
            incr cnt
          end
        done
      done;
      let p = if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt in
      (* Invert the quadratic ramp, keeping a floor inside it. *)
      let r = Float.min 0.9 (Float.max 0.02 (sqrt p)) in
      y.(t.n + l) <- t.q0 +. (r *. (t.qmax -. t.q0))
    end
  done;
  (* Windows sized to send exactly the LP-optimal rates at those
     queues. *)
  for i = 0 to t.n - 1 do
    let rtt = ref t.base_rtt.(i) in
    let links = t.flow_links.(i) in
    for j = 0 to Array.length links - 1 do
      let l = links.(j) in
      rtt := !rtt +. (y.(t.n + l) /. t.cap_pps.(l))
    done;
    y.(i) <- Float.max t.config.min_cwnd (rates.(i) *. !rtt)
  done;
  let w = Array.sub y 0 t.n in
  refresh_view t y;
  let e =
    Controller.seed_extras t.kind ~w ~loss_rate:(fun i ->
        t.view.Controller.rate.(i) *. t.view.Controller.loss.(i))
  in
  Array.blit e 0 y t.extra_off (Array.length e);
  y

let windows t y = Array.sub y 0 t.n

let queues_pkts t y = Array.sub y t.n t.m

let rtts_s t y =
  refresh_view t y;
  Array.copy t.view.Controller.rtt

let path_loss t y =
  refresh_view t y;
  Array.copy t.view.Controller.loss

let offered_bps t y =
  refresh_view t y;
  let bits_per_pkt = float_of_int (8 * t.config.mss_bytes) in
  Array.map (fun x -> x *. bits_per_pkt) t.view.Controller.rate

let rates_bps t y =
  refresh_view t y;
  let bits_per_pkt = float_of_int (8 * t.config.mss_bytes) in
  Array.init t.n (fun i ->
      t.view.Controller.rate.(i)
      *. (1.0 -. t.view.Controller.loss.(i))
      *. bits_per_pkt)

let total_mbps t y =
  let r = rates_bps t y in
  Array.fold_left ( +. ) 0.0 r /. 1e6
