(** Sampled transient solutions of a fluid model.

    Integrates the compiled ODE from a start state over a horizon and
    records evenly spaced samples — the fluid counterpart of the
    simulator's per-interval measurement, and the data behind the
    [fluid --csv] trajectory export. *)

type sample = {
  t : float;                 (** seconds since start *)
  windows : float array;     (** MSS, per path *)
  queues : float array;      (** packets, per {!Model.link_ids} entry *)
  rates_mbps : float array;  (** delivered rate per path *)
  total_mbps : float;
}

val run :
  Model.t -> ?y0:float array -> horizon:float -> samples:int -> ?tol:float
  -> unit -> sample list * Ode.stats
(** [run m ~horizon ~samples ()] integrates from [y0] (default
    {!Model.initial}; not mutated) and returns [samples + 1] samples
    including both endpoints, in time order.  [samples] must be
    positive.  [tol] is passed to {!Ode.integrate} (default [1e-6]). *)

val write_csv : Model.t -> Format.formatter -> sample list -> unit
(** Header then one row per sample: time, per-path windows, per-link
    queues, per-path delivered rates, total.  Columns are labelled with
    path indices and topology link ids.  Numbers print with [%.6g], so
    the output is stable across runs and platforms. *)
