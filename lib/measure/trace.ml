type event = { time : Engine.Time.t; node : int; packet : Packet.t }

type t = {
  mutable items : event array;
  mutable size : int;
  limit : int;
  mutable dropped : int;
}

let record t ev =
  if t.size >= t.limit then t.dropped <- t.dropped + 1
  else begin
    let cap = Array.length t.items in
    if cap = 0 then t.items <- Array.make 256 ev
    else if t.size = cap then begin
      let fresh = Array.make (2 * cap) ev in
      Array.blit t.items 0 fresh 0 t.size;
      t.items <- fresh
    end;
    t.items.(t.size) <- ev;
    t.size <- t.size + 1
  end

let attach net ~nodes ?(keep = fun _ -> true) ?(limit = 100_000) () =
  if limit < 1 then invalid_arg "Trace.attach: limit must be >= 1";
  let t = { items = [||]; size = 0; limit; dropped = 0 } in
  let sched = Netsim.Net.sched net in
  List.iter
    (fun node ->
      Netsim.Net.add_tap net ~node (fun p ->
          (* Tap callbacks must not retain the (pooled, recyclable)
             packet past their return: snapshot it. *)
          if keep p then
            record t
              { time = Engine.Sched.now sched; node; packet = Packet.copy p }))
    nodes;
  t

let conn_filter conn p =
  match p.Packet.body with
  | Packet.Tcp tcp -> tcp.Packet.conn = conn
  | Packet.Plain -> false

let data_filter = Packet.is_data
let events t = Array.sub t.items 0 t.size
let count t = t.size
let dropped t = t.dropped

let to_text ?(max_lines = 10_000) net t =
  let topo = Netsim.Net.topology net in
  let buf = Buffer.create 4096 in
  let n = min t.size max_lines in
  for i = 0 to n - 1 do
    let ev = t.items.(i) in
    Buffer.add_string buf
      (Format.asprintf "%.6f %s: %a@."
         (Engine.Time.to_float_s ev.time)
         (Netgraph.Topology.node_name topo ev.node)
         Packet.pp ev.packet)
  done;
  if t.size > n then
    Buffer.add_string buf (Printf.sprintf "... (%d more events)\n" (t.size - n));
  Buffer.contents buf
