type event = { time : Engine.Time.t; tag : Packet.tag; bytes : int }

(* Parallel int arrays instead of an array of event records: one data
   packet is one capture record, so a boxed event per packet would be
   steady-state allocation in the hot path.  The boxed view is built on
   demand by [events] (once per run, in Sampler). *)
type t = {
  mutable times : int array;
  mutable tags_ : int array;
  mutable sizes : int array;
  mutable size : int;
}

let create () = { times = [||]; tags_ = [||]; sizes = [||]; size = 0 }

let record t ~time ~tag ~bytes =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let fresh_cap = max 1024 (2 * cap) in
    let grow a =
      let fresh = Array.make fresh_cap 0 in
      Array.blit a 0 fresh 0 t.size;
      fresh
    in
    t.times <- grow t.times;
    t.tags_ <- grow t.tags_;
    t.sizes <- grow t.sizes
  end;
  t.times.(t.size) <- time;
  t.tags_.(t.size) <- tag;
  t.sizes.(t.size) <- bytes;
  t.size <- t.size + 1

let attach net ~node ?conn () =
  let t = create () in
  let sched = Netsim.Net.sched net in
  Netsim.Net.add_tap net ~node (fun p ->
      if p.Packet.dst = node && Packet.is_data p then begin
        let keep =
          match conn with
          | None -> true
          | Some c -> (Packet.tcp_exn p).Packet.conn = c
        in
        if keep then
          record t ~time:(Engine.Sched.now sched) ~tag:p.Packet.tag
            ~bytes:p.Packet.size
      end);
  t

let events t =
  Array.init t.size (fun i ->
      { time = t.times.(i); tag = t.tags_.(i); bytes = t.sizes.(i) })

let count t = t.size

let bytes_for_tag t tag =
  let acc = ref 0 in
  for i = 0 to t.size - 1 do
    if t.tags_.(i) = tag then acc := !acc + t.sizes.(i)
  done;
  !acc

let tags t =
  let seen = Hashtbl.create 8 in
  for i = 0 to t.size - 1 do
    Hashtbl.replace seen t.tags_.(i) ()
  done;
  Hashtbl.fold (fun tag () acc -> tag :: acc) seen [] |> List.sort Int.compare
