type summary = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

let percentile values ~p =
  let n = Array.length values in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy values in
  (* Float.compare, not polymorphic compare: same order on finite
     floats, but no boxed-comparison cost and well-defined on nan. *)
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarise values =
  match values with
  | [] -> None
  | _ ->
    List.iter
      (fun v ->
        if not (Float.is_finite v) then
          invalid_arg "Stats.summarise: non-finite value")
      values;
    let arr = Array.of_list values in
    let n = Array.length arr in
    let m = mean values in
    let ss =
      List.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 values
    in
    let std = if n < 2 then 0.0 else Float.sqrt (ss /. float_of_int (n - 1)) in
    Some
      {
        count = n;
        mean = m;
        std;
        min = Array.fold_left Float.min infinity arr;
        max = Array.fold_left Float.max neg_infinity arr;
        p50 = percentile arr ~p:50.0;
        p90 = percentile arr ~p:90.0;
      }

let confidence95 s =
  if s.count < 2 then 0.0
  else 1.96 *. s.std /. Float.sqrt (float_of_int s.count)

let pp fmt s =
  Format.fprintf fmt "n=%d mean=%.3g +/-%.3g (std %.3g, p50 %.3g, p90 %.3g)"
    s.count s.mean (confidence95 s) s.std s.p50 s.p90
