(** Cross-validation of the fluid model against the LP and the
    packet-level simulator.

    A {!Core.Scenario.spec} already names everything the fluid model
    needs — topology, tagged paths, congestion controller, buffer
    sizes, packet size — so validation takes the {e same} spec the
    simulator runs, compiles it (via {!model_of_spec}), solves for the
    fluid equilibrium, and lines the three predictions up per path:

    - the fluid equilibrium goodput,
    - the LP optimum from the shared {!Core.Scenario.optimum_rates}
      entry point,
    - optionally the simulator's tail-mean throughput from an actual
      {!Core.Scenario.run}.

    Paths keep [spec.paths] order throughout and carry their subflow
    tags, so fluid path [i], LP rate [i] and the simulator's series for
    the same tag always describe the same path.  Fluid equilibria are
    also checked for LP feasibility through the same
    {!Netgraph.Constraints.violations} code path the audit uses. *)

type path_report = {
  tag : Packet.tag;
  fluid_mbps : float;        (** fluid equilibrium goodput *)
  lp_mbps : float;           (** LP-optimal rate *)
  sim_mbps : float option;   (** simulator tail mean, when a run was done *)
}

type t = {
  controller : Fluid.Controller.kind;
  diag : Fluid.Equilibrium.diag;
  per_path : path_report list;       (** in [spec.paths] order *)
  fluid_total_mbps : float;
  lp_total_mbps : float;
  sim_total_mbps : float option;
  lp_gap : float;
      (** [(lp - fluid) / lp]: positive when the fluid equilibrium
          falls short of the optimum (CUBIC and LIA do, by design of
          their window laws), near zero when it attains it *)
  max_sim_dev_mbps : float option;
      (** worst per-path [|fluid - sim|], when a run was done *)
  lp_feasible : bool;
      (** fluid goodputs satisfy every capacity constraint (1% slack) *)
}

val model_of_spec :
  ?config:Fluid.Model.config -> Core.Scenario.spec -> (Fluid.Model.t, string) result
(** Compiles the spec's topology, paths and controller.  [Error] names
    the algorithm when it has no fluid counterpart (BALIA, EWTCP,
    wVegas).  The default [config] takes the MSS from
    [spec.sender_config], the buffer from [spec.net_config] and
    {!Fluid.Model.default_config} for the rest. *)

val equilibrium :
  ?config:Fluid.Model.config -> ?tol:float -> Core.Scenario.spec
  -> (t, string) result
(** Fluid-vs-LP only ([sim_mbps = None] everywhere); microseconds. *)

val against_sim :
  ?config:Fluid.Model.config -> ?tol:float -> Core.Scenario.spec
  -> (t, string) result
(** {!equilibrium} plus a full packet-level {!Core.Scenario.run} of the
    same spec, with per-path deviations filled in.  Costs a simulation. *)

val sweep :
  ?jobs:int -> ?config:Fluid.Model.config -> ?tol:float -> Core.Scenario.spec list
  -> (t, string) result list
(** Batched {!equilibrium} over {!Core.Runner.map} — results are in
    input order and bit-identical for every [jobs] value (each job
    compiles its own model, so no scratch state is shared across
    domains). *)

val pp : Format.formatter -> t -> unit
(** Table of per-path fluid/LP/sim rates with the totals, gaps and the
    convergence diagnostics — the [fluid --validate] report. *)
