type path_report = {
  tag : Packet.tag;
  fluid_mbps : float;
  lp_mbps : float;
  sim_mbps : float option;
}

type t = {
  controller : Fluid.Controller.kind;
  diag : Fluid.Equilibrium.diag;
  per_path : path_report list;
  fluid_total_mbps : float;
  lp_total_mbps : float;
  sim_total_mbps : float option;
  lp_gap : float;
  max_sim_dev_mbps : float option;
  lp_feasible : bool;
}

let model_of_spec ?config (spec : Core.Scenario.spec) =
  match Fluid.Controller.of_algorithm spec.Core.Scenario.cc with
  | None ->
    Error
      (Printf.sprintf "no fluid model for %s"
         (Mptcp.Algorithm.name spec.Core.Scenario.cc))
  | Some kind ->
    let config =
      match config with
      | Some c -> c
      | None ->
        { Fluid.Model.default_config with
          mss_bytes = spec.Core.Scenario.sender_config.Tcp.Sender.mss;
          buffer_pkts = spec.Core.Scenario.net_config.Netsim.Net.limit_pkts }
    in
    let paths = List.map snd spec.Core.Scenario.paths in
    Ok
      (Fluid.Model.compile spec.Core.Scenario.topo ~paths ~controller:kind ~config
         ())

let report_of ~spec ~m ~diag ~y ~sim =
  let tags = List.map fst spec.Core.Scenario.paths in
  let fluid_bps = Fluid.Model.rates_bps m y in
  let lp_bps = Core.Scenario.optimum_rates spec in
  let per_path =
    List.mapi
      (fun i tag ->
        { tag;
          fluid_mbps = fluid_bps.(i) /. 1e6;
          lp_mbps = lp_bps.(i) /. 1e6;
          sim_mbps = Option.map (fun rates -> List.assoc tag rates) sim })
      tags
  in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 per_path in
  let fluid_total = sum (fun r -> r.fluid_mbps) in
  let lp_total = sum (fun r -> r.lp_mbps) in
  let sim_total =
    Option.map (fun rates -> List.fold_left (fun a (_, r) -> a +. r) 0.0 rates)
      sim
  in
  let max_sim_dev =
    match sim with
    | None -> None
    | Some _ ->
      Some
        (List.fold_left
           (fun acc r ->
             match r.sim_mbps with
             | Some s -> Float.max acc (Float.abs (r.fluid_mbps -. s))
             | None -> acc)
           0.0 per_path)
  in
  { controller = Fluid.Model.controller m;
    diag;
    per_path;
    fluid_total_mbps = fluid_total;
    lp_total_mbps = lp_total;
    sim_total_mbps = sim_total;
    lp_gap = (if lp_total > 0.0 then (lp_total -. fluid_total) /. lp_total else 0.0);
    max_sim_dev_mbps = max_sim_dev;
    lp_feasible =
      Netgraph.Constraints.feasible ~slack_frac:0.01 (Fluid.Model.system m)
        ~x:fluid_bps }

let equilibrium ?config ?tol (spec : Core.Scenario.spec) =
  match model_of_spec ?config spec with
  | Error _ as e -> e
  | Ok m ->
    let y, diag = Fluid.Equilibrium.solve m ?tol () in
    Ok (report_of ~spec ~m ~diag ~y ~sim:None)

let against_sim ?config ?tol (spec : Core.Scenario.spec) =
  match model_of_spec ?config spec with
  | Error _ as e -> e
  | Ok m ->
    let y, diag = Fluid.Equilibrium.solve m ?tol () in
    let result = Core.Scenario.run spec in
    let sim = Core.Scenario.per_path_tail_mbps result in
    Ok (report_of ~spec ~m ~diag ~y ~sim:(Some sim))

let sweep ?jobs ?config ?tol specs =
  Core.Runner.map ?jobs (fun spec -> equilibrium ?config ?tol spec) specs

let pp ppf t =
  Format.fprintf ppf "@[<v>fluid %s equilibrium (%a)@,"
    (Fluid.Controller.name t.controller)
    Fluid.Equilibrium.pp_diag t.diag;
  Format.fprintf ppf "%-6s %12s %12s %12s@," "path" "fluid Mbps" "LP Mbps"
    "sim Mbps";
  List.iter
    (fun r ->
      Format.fprintf ppf "tag %-2d %12.2f %12.2f %12s@," r.tag r.fluid_mbps
        r.lp_mbps
        (match r.sim_mbps with
        | Some s -> Printf.sprintf "%.2f" s
        | None -> "-"))
    t.per_path;
  Format.fprintf ppf "total  %12.2f %12.2f %12s@," t.fluid_total_mbps
    t.lp_total_mbps
    (match t.sim_total_mbps with
    | Some s -> Printf.sprintf "%.2f" s
    | None -> "-");
  Format.fprintf ppf "LP gap %.1f%%, LP-feasible: %b" (100.0 *. t.lp_gap)
    t.lp_feasible;
  (match t.max_sim_dev_mbps with
  | Some d -> Format.fprintf ppf ", max |fluid-sim| %.2f Mbps" d
  | None -> ());
  Format.fprintf ppf "@]"
