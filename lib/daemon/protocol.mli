(** Wire protocol of the resident scenario daemon.

    Frames are length-prefixed sexps over a Unix-domain stream socket:
    a 4-byte big-endian payload length, then that many bytes of sexp
    text ({!Events.Sexp} grammar — no quoting, [;] comments legal).
    Every payload is wrapped as [(mptcp-daemon <version> <body>)], so a
    client and server from different builds fail with a typed version
    error instead of a silent misparse.

    Requests reuse the batch-file grammar as the submission payload:
    [(submit <preset|grid|experiment forms...>)] carries exactly the
    forms a batch file holds ({!Serve.Batch.of_sexps}), so anything
    that can be written as a batch file can be submitted over the
    socket unchanged.

    The server never crashes on garbage: an oversized length prefix, a
    truncated frame, flipped bytes or a malformed sexp each produce a
    typed {!response.Error} frame (or a clean connection drop when the
    stream cannot be resynchronised), and the next well-formed request
    on a fresh connection succeeds — the property [Fuzz.daemon_test]
    hammers. *)

val version : int
(** Bump on any frame-grammar change; mismatched peers get a typed
    [Error (Version, _)] reply. *)

val max_frame : int
(** Largest accepted payload (1 MiB).  A length prefix beyond it is
    answered with [Error (Oversized, _)] and the connection is closed
    (the stream cannot be resynchronised without trusting the bogus
    length). *)

(** {1 Messages} *)

type request =
  | Submit of Events.Sexp.t list
      (** batch forms, verbatim from the batch-file grammar *)
  | Status  (** lifecycle snapshot: draining flag, queue, in-flight *)
  | Stats  (** service counters and store totals *)
  | Invalidate  (** drop every cached record *)
  | Gc of int  (** LRU-evict records down to the byte budget *)
  | Drain
      (** stop admitting, finish in-flight runs, reply, then exit *)

type error_kind =
  | Parse  (** unreadable or unrecognised request sexp *)
  | Version  (** frame from a different protocol version *)
  | Oversized  (** length prefix beyond {!max_frame} *)
  | Busy  (** bounded admission: queue full, resubmit later *)
  | Draining  (** daemon is shutting down; no new work *)
  | Failed  (** the request itself raised (bad batch, store error) *)

type outcome_kind =
  | Hit  (** served from the store; no simulation ran anywhere *)
  | Fresh  (** this daemon simulated it on this submission *)
  | Shared
      (** deduped: rode another client's (or process's) in-flight run *)

type outcome = {
  kind : outcome_kind;
  hash : string;
  label : string;
  tail_mbps : float;
  opt_mbps : float;
  sim_events : int;
}

type batch_reply = {
  outcomes : outcome list;  (** submission order *)
  entries : int;
  hits : int;
  fresh : int;
  shared : int;
  fresh_sim_events : int;
      (** engine events this submission's own fresh runs dispatched —
          [0] exactly when the warm daemon did no simulation work *)
}

type status_reply = {
  pid : int;
  draining : bool;
  queue_depth : int;  (** submissions currently being processed *)
  inflight : int;  (** deduped single-flight simulations running *)
  pool_domains : int;
  store_records : int;
}

type stats_reply = {
  submissions : int;
  served_entries : int;
  s_hits : int;
  s_fresh : int;
  s_shared : int;
  rejected : int;  (** backpressure + draining rejections *)
  protocol_errors : int;
  gc_runs : int;
  store_records : int;
  store_bytes : int;
  trend_entries : int;
}

type gc_reply = {
  examined : int;
  evicted : int;
  evicted_bytes : int;
  kept : int;
  kept_bytes : int;
}

type response =
  | Batch of batch_reply
  | Status_reply of status_reply
  | Stats_reply of stats_reply
  | Invalidated of int
  | Gc_done of gc_reply
  | Drained  (** sent after every in-flight run has completed *)
  | Error of error_kind * string

val error_kind_name : error_kind -> string
val outcome_kind_name : outcome_kind -> string

(** {1 Sexp codecs}

    Both sides use both directions: the server parses requests and
    renders responses, the client renders requests and parses
    responses.  Parsers raise {!Events.Sexp.Parse_error} on malformed
    input (the server maps that to a typed [Error (Parse, _)] reply). *)

exception Wrong_version of int
(** Raised by the parsers on a structurally valid frame from a
    different protocol {!version} (the server answers it with a typed
    [Error (Version, _)]). *)

val render_request : request -> string
val parse_request : string -> request
val render_response : response -> string
val parse_response : string -> response

(** {1 Framing} *)

type frame =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean close before any byte of a frame *)
  | Truncated  (** stream ended (or stalled out) mid-frame *)
  | Too_large of int  (** declared length beyond {!max_frame} *)
  | Idle_stop  (** [idle_stop] asked to give up between frames *)

val read_frame :
  ?idle_stop:(unit -> bool) -> Unix.file_descr -> frame
(** Blocking frame read.  The wait for the {e first} byte of a frame is
    unbounded — an idle connection between requests, or a reply still
    being computed, is healthy, however long it takes — and is the only
    place [idle_stop] is polled (4 Hz): the drain loop uses it to shed
    idle connections without cutting off a client mid-send.  Once a
    frame has started, a stream that stalls for 10 s mid-frame reads as
    {!Truncated}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Complete write of the length prefix and payload (EINTR-safe).
    Raises [Invalid_argument] on a payload beyond {!max_frame}. *)

(** {1 Client helpers} *)

exception Protocol_error of string
(** The peer broke framing: closed mid-reply, oversized reply, or a
    reply that does not parse. *)

val connect : string -> Unix.file_descr
(** Connect to the daemon's socket (raises [Unix.Unix_error]). *)

val call : Unix.file_descr -> request -> response
(** One request/response exchange on an open connection. *)

val call_once : socket:string -> request -> response
(** {!connect}, one {!call}, close. *)
