module Protocol = Protocol

module Flights = struct
  type payload = Serve.Store.record * Serve.Service.sim_kind
  type slot = { mutable result : (payload, exn) result option }
  type role = Leader of slot | Follower of slot

  type t = {
    m : Mutex.t;
    c : Condition.t;
    tbl : (string, slot) Hashtbl.t;
  }

  let create () =
    { m = Mutex.create (); c = Condition.create (); tbl = Hashtbl.create 16 }

  let inflight t =
    Mutex.lock t.m;
    let n = Hashtbl.length t.tbl in
    Mutex.unlock t.m;
    n

  let enter t ~hash =
    Mutex.lock t.m;
    let role =
      match Hashtbl.find_opt t.tbl hash with
      | Some slot -> Follower slot
      | None ->
        let slot = { result = None } in
        Hashtbl.add t.tbl hash slot;
        Leader slot
    in
    Mutex.unlock t.m;
    role

  let publish t ~hash slot res =
    Mutex.lock t.m;
    slot.result <- Some res;
    (* Retire the hash so the next [enter] opens a fresh flight; guard
       against a stale publish retiring a newer flight of the same
       hash. *)
    (match Hashtbl.find_opt t.tbl hash with
    | Some s when s == slot -> Hashtbl.remove t.tbl hash
    | _ -> ());
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let wait t slot =
    Mutex.lock t.m;
    let rec settled () =
      match slot.result with
      | Some r -> r
      | None ->
        Condition.wait t.c t.m;
        settled ()
    in
    let r = settled () in
    Mutex.unlock t.m;
    r
end

type conf = {
  socket_path : string;
  store_dir : string;
  base_dir : string;
  jobs : int option;
  max_queue : int;
  gc_max_bytes : int option;
  gc_interval_s : float;
  watch_dir : string option;
  watch_poll_s : float;
  log : bool;
}

let default_conf ~socket_path ~store_dir =
  {
    socket_path;
    store_dir;
    base_dir = Filename.current_dir_name;
    jobs = None;
    max_queue = 64;
    gc_max_bytes = None;
    gc_interval_s = 5.;
    watch_dir = None;
    watch_poll_s = 0.5;
    log = true;
  }

type t = {
  conf : conf;
  store : Serve.Store.t;
  pool : Engine.Pool.t;
  flights : Flights.t;
  listen : Unix.file_descr;
  m : Mutex.t;
  cond : Condition.t;
  drain_requested : bool Atomic.t;
      (** set from signal handlers; the accept loop promotes it to a
          real drain outside signal context *)
  mutable is_draining : bool;
  mutable busy_entries : int;  (** entries admitted and not yet replied *)
  mutable active_conns : int;
  mutable helpers : Thread.t list;
  metrics : Obs.Metrics.t;
  c_submissions : Obs.Metrics.counter;
  c_entries : Obs.Metrics.counter;
  c_hits : Obs.Metrics.counter;
  c_fresh : Obs.Metrics.counter;
  c_shared : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  c_proto_errors : Obs.Metrics.counter;
  c_gc_runs : Obs.Metrics.counter;
  warm_hit_ms : Obs.Metrics.histogram;
}

let store t = t.store
let metrics t = t.metrics

let log t fmt =
  if t.conf.log then
    Printf.ksprintf (fun s -> Printf.eprintf "[mptcp-daemon] %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

let draining t =
  Mutex.lock t.m;
  let d = t.is_draining in
  Mutex.unlock t.m;
  d

let queue_depth t =
  Mutex.lock t.m;
  let n = t.busy_entries in
  Mutex.unlock t.m;
  n

let bump ?by t c =
  Mutex.lock t.m;
  Obs.Metrics.incr ?by c;
  Mutex.unlock t.m

let initiate_drain t =
  Mutex.lock t.m;
  let first = not t.is_draining in
  t.is_draining <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.m;
  if first then log t "draining: no new work; letting in-flight runs land"

(* Async-signal-safe drain request: signal handlers run at poll points
   on whatever thread happens to be executing, so they must not touch
   [t.m] (the thread may already hold it — instant self-deadlock).
   They only flip this atomic; the accept loop, which polls at 4 Hz,
   promotes it to [initiate_drain] from ordinary thread context. *)
let request_drain t = Atomic.set t.drain_requested true

(* One submission's entry, after the store lookup and flight entry.
   Leaders carry the pool ticket for their own simulation; followers
   (of this or another submission) only carry the slot to wait on. *)
type item =
  | Cached of Serve.Batch.entry * string * Serve.Store.record
  | Lead of
      Serve.Batch.entry
      * string
      * Flights.slot
      * (Serve.Store.record * Serve.Service.sim_kind) Engine.Pool.ticket
  | Join of Serve.Batch.entry * string * Flights.slot

(* Resolve every entry to (entry, hash, record, outcome kind), dispatch
   order preserved.  Phase 1 enters flights and enqueues every miss on
   the pool before phase 2 awaits any of them, so a submission's misses
   run in parallel and a concurrent submission of the same hash joins
   the flight instead of re-simulating. *)
let resolve t entries =
  let items =
    List.map
      (fun (e : Serve.Batch.entry) ->
        let hash = Serve.Service.hash_entry e in
        match Serve.Store.lookup t.store ~hash with
        | Some r -> Cached (e, hash, r)
        | None -> (
          match Flights.enter t.flights ~hash with
          | Flights.Follower slot -> Join (e, hash, slot)
          | Flights.Leader slot -> (
            match
              Engine.Pool.submit t.pool (fun () ->
                  Serve.Service.simulate_entry ~store:t.store e ~hash)
            with
            | ticket -> Lead (e, hash, slot, ticket)
            | exception ex ->
              (* never leave a flight unpublished: followers would
                 block forever *)
              Flights.publish t.flights ~hash slot (Error ex);
              Join (e, hash, slot))))
      entries
  in
  List.iter
    (function
      | Lead (_, hash, slot, ticket) ->
        let res =
          match Engine.Pool.await ticket with
          | payload -> Ok payload
          | exception ex -> Error ex
        in
        Flights.publish t.flights ~hash slot res
      | Cached _ | Join _ -> ())
    items;
  List.map
    (function
      | Cached (e, hash, r) -> (e, hash, r, Protocol.Hit)
      | Lead (e, _, slot, _) -> (
        match Flights.wait t.flights slot with
        | Ok (r, Serve.Service.Simulated) ->
          (e, r.Serve.Store.hash, r, Protocol.Fresh)
        | Ok (r, Serve.Service.Adopted) ->
          (* a peer process held the store claim; we rode its run *)
          (e, r.Serve.Store.hash, r, Protocol.Shared)
        | Error ex -> raise ex)
      | Join (e, hash, slot) -> (
        match Flights.wait t.flights slot with
        | Ok (r, _) -> (e, hash, r, Protocol.Shared)
        | Error ex -> raise ex))
    items

let submit_entries t entries =
  let wall0 = Unix.gettimeofday () in
  let n = List.length entries in
  Mutex.lock t.m;
  if t.is_draining then begin
    Obs.Metrics.incr t.c_rejected;
    Mutex.unlock t.m;
    Protocol.Error (Protocol.Draining, "daemon is draining; no new work")
  end
  else if t.busy_entries + n > t.conf.max_queue then begin
    Obs.Metrics.incr t.c_rejected;
    let depth = t.busy_entries in
    Mutex.unlock t.m;
    Protocol.Error
      ( Protocol.Busy,
        Printf.sprintf
          "queue full: %d entries in flight plus %d submitted exceeds limit %d"
          depth n t.conf.max_queue )
  end
  else begin
    t.busy_entries <- t.busy_entries + n;
    Obs.Metrics.incr t.c_submissions;
    Obs.Metrics.incr ~by:n t.c_entries;
    Mutex.unlock t.m;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.m;
        t.busy_entries <- t.busy_entries - n;
        Condition.broadcast t.cond;
        Mutex.unlock t.m)
      (fun () ->
        match resolve t entries with
        | exception ex ->
          Protocol.Error (Protocol.Failed, Printexc.to_string ex)
        | resolved ->
          let at_unix = Unix.gettimeofday () in
          List.iter
            (fun (_, _, r, kind) ->
              Serve.Trend.append ~dir:(Serve.Store.dir t.store)
                (Serve.Trend.entry_of_record ~at_unix
                   ~cached:(kind <> Protocol.Fresh) r))
            resolved;
          let count k =
            List.length (List.filter (fun (_, _, _, k') -> k' = k) resolved)
          in
          let hits = count Protocol.Hit in
          let fresh = count Protocol.Fresh in
          let shared = count Protocol.Shared in
          let fresh_sim_events =
            List.fold_left
              (fun acc (_, _, r, k) ->
                if k = Protocol.Fresh then acc + r.Serve.Store.sim_events
                else acc)
              0 resolved
          in
          Mutex.lock t.m;
          Obs.Metrics.incr ~by:hits t.c_hits;
          Obs.Metrics.incr ~by:fresh t.c_fresh;
          Obs.Metrics.incr ~by:shared t.c_shared;
          Mutex.unlock t.m;
          if fresh = 0 && shared = 0 then
            Obs.Metrics.observe t.warm_hit_ms
              ((Unix.gettimeofday () -. wall0) *. 1000.);
          let outcomes =
            List.map
              (fun ((e : Serve.Batch.entry), hash, r, kind) ->
                {
                  Protocol.kind;
                  hash;
                  label = e.Serve.Batch.label;
                  tail_mbps = r.Serve.Store.tail_mbps;
                  opt_mbps = r.Serve.Store.opt_mbps;
                  sim_events = r.Serve.Store.sim_events;
                })
              resolved
          in
          Protocol.Batch
            { Protocol.outcomes; entries = n; hits; fresh; shared;
              fresh_sim_events })
  end

let gc_now t =
  match t.conf.gc_max_bytes with
  | None -> None
  | Some budget ->
    let g = Serve.Store.gc t.store ~max_bytes:budget in
    bump t t.c_gc_runs;
    if g.Serve.Store.evicted > 0 then
      log t "gc: evicted %d records (%d bytes), %d kept"
        g.Serve.Store.evicted g.Serve.Store.evicted_bytes g.Serve.Store.kept;
    Some g

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Submit forms -> (
    match Serve.Batch.of_sexps ~base_dir:t.conf.base_dir forms with
    | [] -> Protocol.Error (Protocol.Failed, "empty batch")
    | entries -> submit_entries t entries
    | exception Events.Sexp.Parse_error msg ->
      bump t t.c_proto_errors;
      Protocol.Error (Protocol.Parse, msg)
    | exception Invalid_argument msg ->
      Protocol.Error (Protocol.Failed, msg))
  | Protocol.Status ->
    Mutex.lock t.m;
    let queue_depth = t.busy_entries in
    let draining = t.is_draining in
    Mutex.unlock t.m;
    Protocol.Status_reply
      {
        Protocol.pid = Unix.getpid ();
        draining;
        queue_depth;
        inflight = Flights.inflight t.flights;
        pool_domains = Engine.Pool.size t.pool;
        store_records = Serve.Store.count t.store;
      }
  | Protocol.Stats ->
    let v = Obs.Metrics.value in
    let trend_entries =
      List.length (fst (Serve.Trend.load ~dir:(Serve.Store.dir t.store)))
    in
    Protocol.Stats_reply
      {
        Protocol.submissions = v t.c_submissions;
        served_entries = v t.c_entries;
        s_hits = v t.c_hits;
        s_fresh = v t.c_fresh;
        s_shared = v t.c_shared;
        rejected = v t.c_rejected;
        protocol_errors = v t.c_proto_errors;
        gc_runs = v t.c_gc_runs;
        store_records = Serve.Store.count t.store;
        store_bytes = Serve.Store.bytes t.store;
        trend_entries;
      }
  | Protocol.Invalidate ->
    Protocol.Invalidated (Serve.Store.invalidate t.store)
  | Protocol.Gc budget -> (
    match Serve.Store.gc t.store ~max_bytes:budget with
    | g ->
      bump t t.c_gc_runs;
      Protocol.Gc_done
        {
          Protocol.examined = g.Serve.Store.examined;
          evicted = g.Serve.Store.evicted;
          evicted_bytes = g.Serve.Store.evicted_bytes;
          kept = g.Serve.Store.kept;
          kept_bytes = g.Serve.Store.kept_bytes;
        }
    | exception Invalid_argument msg -> Protocol.Error (Protocol.Failed, msg))
  | Protocol.Drain ->
    initiate_drain t;
    Mutex.lock t.m;
    while t.busy_entries > 0 do
      Condition.wait t.cond t.m
    done;
    Mutex.unlock t.m;
    Protocol.Drained

(* Helper-thread sleep that notices a drain within 0.1 s. *)
let sleep_interruptible t seconds =
  let rec go remaining =
    if remaining > 0. && not (draining t) then begin
      Thread.delay (min 0.1 remaining);
      go (remaining -. 0.1)
    end
  in
  go seconds

let gc_loop t =
  while not (draining t) do
    sleep_interruptible t t.conf.gc_interval_s;
    if not (draining t) then ignore (gc_now t)
  done

let watch_loop t dir =
  let processed = Hashtbl.create 16 in
  let shelve path suffix =
    try Sys.rename path (path ^ suffix) with Sys_error _ -> ()
  in
  while not (draining t) do
    (match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
      Array.sort compare names;
      Array.iter
        (fun name ->
          if
            Filename.check_suffix name ".sexp"
            && (not (Hashtbl.mem processed name))
            && not (draining t)
          then begin
            Hashtbl.add processed name ();
            let path = Filename.concat dir name in
            match Serve.Batch.load path with
            | exception ex ->
              log t "watch: %s: %s" name (Printexc.to_string ex);
              shelve path ".err"
            | [] ->
              log t "watch: %s: empty batch" name;
              shelve path ".err"
            | entries -> (
              match submit_entries t entries with
              | Protocol.Batch b ->
                log t "watch: %s: %d entries, %d hits, %d fresh, %d shared"
                  name b.Protocol.entries b.Protocol.hits b.Protocol.fresh
                  b.Protocol.shared;
                shelve path ".done"
              | Protocol.Error ((Protocol.Busy | Protocol.Draining), _) ->
                (* transient rejects — backpressure, or a drain racing
                   the poll: leave the file in place so a later poll or
                   the next daemon instance retries it, instead of
                   shelving a perfectly good batch as [.err] *)
                Hashtbl.remove processed name;
                log t "watch: %s: rejected transiently, will retry" name
              | Protocol.Error (_, msg) ->
                log t "watch: %s: rejected: %s" name msg;
                shelve path ".err"
              | _ -> ())
          end)
        names);
    sleep_interruptible t t.conf.watch_poll_s
  done

let handle_conn t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.m;
      t.active_conns <- t.active_conns - 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.m)
    (fun () ->
      let idle_stop () = draining t in
      let reply resp =
        match Protocol.write_frame fd (Protocol.render_response resp) with
        | () -> true
        | exception (Unix.Unix_error _ | Invalid_argument _) -> false
      in
      let rec loop () =
        match Protocol.read_frame ~idle_stop fd with
        | Protocol.Eof | Protocol.Idle_stop -> ()
        | Protocol.Truncated ->
          (* stream died mid-frame: nothing sensible to answer *)
          bump t t.c_proto_errors
        | Protocol.Too_large n ->
          bump t t.c_proto_errors;
          (* answer, then drop the connection: the stream cannot be
             resynchronised without trusting the bogus length *)
          ignore
            (reply
               (Protocol.Error
                  ( Protocol.Oversized,
                    Printf.sprintf
                      "frame of %d bytes exceeds the %d byte limit" n
                      Protocol.max_frame )))
        | Protocol.Frame payload ->
          let resp =
            match Protocol.parse_request payload with
            | req -> (
              try handle t req
              with ex ->
                Protocol.Error (Protocol.Failed, Printexc.to_string ex))
            | exception Events.Sexp.Parse_error msg ->
              bump t t.c_proto_errors;
              Protocol.Error (Protocol.Parse, msg)
            | exception Protocol.Wrong_version v ->
              bump t t.c_proto_errors;
              Protocol.Error
                ( Protocol.Version,
                  Printf.sprintf
                    "peer speaks protocol %d, this daemon speaks %d" v
                    Protocol.version )
          in
          if reply resp then loop ()
      in
      loop ())

let start conf =
  (match Unix.stat conf.socket_path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* leftover from a dead daemon, or a live one?  probe it *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX conf.socket_path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith
        (Printf.sprintf "a daemon is already listening on %s" conf.socket_path)
    else (try Sys.remove conf.socket_path with Sys_error _ -> ())
  | _ -> failwith (conf.socket_path ^ " exists and is not a socket"));
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen;
  Unix.bind listen (Unix.ADDR_UNIX conf.socket_path);
  Unix.listen listen 16;
  let store = Serve.Store.open_store ~dir:conf.store_dir in
  let domains =
    match conf.jobs with
    | Some j -> j
    | None -> Engine.Pool.default_domains ()
  in
  let pool = Engine.Pool.create ~domains () in
  let metrics = Obs.Metrics.create () in
  let t =
    {
      conf;
      store;
      pool;
      flights = Flights.create ();
      listen;
      m = Mutex.create ();
      cond = Condition.create ();
      drain_requested = Atomic.make false;
      is_draining = false;
      busy_entries = 0;
      active_conns = 0;
      helpers = [];
      metrics;
      c_submissions = Obs.Metrics.counter metrics "daemon.submissions";
      c_entries = Obs.Metrics.counter metrics "daemon.entries";
      c_hits = Obs.Metrics.counter metrics "daemon.hits";
      c_fresh = Obs.Metrics.counter metrics "daemon.fresh";
      c_shared = Obs.Metrics.counter metrics "daemon.shared";
      c_rejected = Obs.Metrics.counter metrics "daemon.rejected";
      c_proto_errors = Obs.Metrics.counter metrics "daemon.protocol_errors";
      c_gc_runs = Obs.Metrics.counter metrics "daemon.gc_runs";
      warm_hit_ms = Obs.Metrics.histogram metrics "daemon.warm_hit_ms";
    }
  in
  Obs.Metrics.gauge metrics "daemon.queue_depth" (fun () ->
      float_of_int (queue_depth t));
  Obs.Metrics.gauge metrics "daemon.inflight_singles" (fun () ->
      float_of_int (Flights.inflight t.flights));
  let helpers = ref [] in
  (match conf.gc_max_bytes with
  | Some _ -> helpers := Thread.create gc_loop t :: !helpers
  | None -> ());
  (match conf.watch_dir with
  | Some dir -> helpers := Thread.create (watch_loop t) dir :: !helpers
  | None -> ());
  t.helpers <- !helpers;
  t

let serve t =
  (* a client that hangs up before reading its reply must not kill the
     daemon: surface EPIPE as an exception instead *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  log t "listening on %s (pid %d, %d worker domains, %d records cached)"
    t.conf.socket_path (Unix.getpid ())
    (Engine.Pool.size t.pool)
    (Serve.Store.count t.store);
  let rec accept_loop () =
    if Atomic.get t.drain_requested then initiate_drain t;
    if draining t then ()
    else begin
      (match Unix.select [ t.listen ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.listen with
        | exception
            Unix.Unix_error
              (( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
               | Unix.ECONNABORTED ),
                _, _ ) ->
          (* spurious wakeup, or the peer gave up before we got there *)
          ()
        | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _)
          ->
          (* fd exhaustion (a burst of per-connection threads): shed
             this client and back off until handlers release fds *)
          log t "accept: %s; backing off" (Unix.error_message e);
          Thread.delay 0.2
        | exception Unix.Unix_error (e, _, _) ->
          (* anything else transient must not take the daemon down
             mid-drain with the socket still linked *)
          log t "accept: %s" (Unix.error_message e)
        | fd, _ ->
          Unix.clear_nonblock fd;
          Mutex.lock t.m;
          t.active_conns <- t.active_conns + 1;
          Mutex.unlock t.m;
          ignore (Thread.create (handle_conn t) fd)));
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: every admitted entry replies, every connection closes *)
  Mutex.lock t.m;
  while t.busy_entries > 0 || t.active_conns > 0 do
    Condition.wait t.cond t.m
  done;
  Mutex.unlock t.m;
  List.iter Thread.join t.helpers;
  (try Unix.close t.listen with Unix.Unix_error _ -> ());
  (try Sys.remove t.conf.socket_path with Sys_error _ -> ());
  Engine.Pool.shutdown t.pool;
  log t "drained: socket unlinked, pool shut down"

let run conf =
  let t = start conf in
  let drain_signal _ = request_drain t in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle drain_signal) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle drain_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () -> serve t)
