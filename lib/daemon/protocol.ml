(* Length-prefixed sexp frames.  The framing layer is deliberately
   dumb — 4 bytes of big-endian length, then bytes — so that every
   interesting failure (truncation, bit flips, oversized lengths,
   garbage sexps) is handled in exactly one place each and the fuzzer
   can reach them all. *)

let version = 1

let max_frame = 1 lsl 20

type request =
  | Submit of Events.Sexp.t list
  | Status
  | Stats
  | Invalidate
  | Gc of int
  | Drain

type error_kind = Parse | Version | Oversized | Busy | Draining | Failed

type outcome_kind = Hit | Fresh | Shared

type outcome = {
  kind : outcome_kind;
  hash : string;
  label : string;
  tail_mbps : float;
  opt_mbps : float;
  sim_events : int;
}

type batch_reply = {
  outcomes : outcome list;
  entries : int;
  hits : int;
  fresh : int;
  shared : int;
  fresh_sim_events : int;
}

type status_reply = {
  pid : int;
  draining : bool;
  queue_depth : int;
  inflight : int;
  pool_domains : int;
  store_records : int;
}

type stats_reply = {
  submissions : int;
  served_entries : int;
  s_hits : int;
  s_fresh : int;
  s_shared : int;
  rejected : int;
  protocol_errors : int;
  gc_runs : int;
  store_records : int;
  store_bytes : int;
  trend_entries : int;
}

type gc_reply = {
  examined : int;
  evicted : int;
  evicted_bytes : int;
  kept : int;
  kept_bytes : int;
}

type response =
  | Batch of batch_reply
  | Status_reply of status_reply
  | Stats_reply of stats_reply
  | Invalidated of int
  | Gc_done of gc_reply
  | Drained
  | Error of error_kind * string

let error_kind_name = function
  | Parse -> "parse"
  | Version -> "version"
  | Oversized -> "oversized"
  | Busy -> "busy"
  | Draining -> "draining"
  | Failed -> "failed"

let error_kind_of_name = function
  | "parse" -> Some Parse
  | "version" -> Some Version
  | "oversized" -> Some Oversized
  | "busy" -> Some Busy
  | "draining" -> Some Draining
  | "failed" -> Some Failed
  | _ -> None

let outcome_kind_name = function
  | Hit -> "hit"
  | Fresh -> "fresh"
  | Shared -> "shared"

let outcome_kind_of_name = function
  | "hit" -> Some Hit
  | "fresh" -> Some Fresh
  | "shared" -> Some Shared
  | _ -> None

(* --- sexp codecs --- *)

let f17 = Printf.sprintf "%.17g"

(* The sexp reader has no quoting, so any free text persisted on the
   wire (error messages) is split into delimiter-free word atoms and
   re-joined with single spaces on parse. *)
let sanitize_word w =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '.' || c = '_' || c = '-' || c = '/' || c = ':' || c = '%'
  in
  let w = String.map (fun c -> if ok c then c else '_') w in
  if w = "" then "_" else w

let words_of_text msg =
  match String.split_on_char ' ' msg |> List.filter (fun w -> w <> "") with
  | [] -> [ "_" ]
  | ws -> List.map sanitize_word ws

exception Wrong_version of int

let wrap body = Printf.sprintf "(mptcp-daemon %d %s)" version body

let unwrap s =
  let open Events.Sexp in
  match parse_string s with
  | [ List (Atom "mptcp-daemon" :: v :: body) ] ->
    if int_exn v <> version then raise (Wrong_version (int_exn v)) else body
  | _ -> fail "expected a single (mptcp-daemon %d ...) frame" version

let render_request = function
  | Submit forms ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "(submit";
    List.iter
      (fun f ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Events.Sexp.to_string f))
      forms;
    Buffer.add_char buf ')';
    wrap (Buffer.contents buf)
  | Status -> wrap "(status)"
  | Stats -> wrap "(stats)"
  | Invalidate -> wrap "(invalidate)"
  | Gc max_bytes -> wrap (Printf.sprintf "(gc %d)" max_bytes)
  | Drain -> wrap "(drain)"

let parse_request s =
  let open Events.Sexp in
  match unwrap s with
  | [ List (Atom "submit" :: forms) ] -> Submit forms
  | [ List [ Atom "status" ] ] -> Status
  | [ List [ Atom "stats" ] ] -> Stats
  | [ List [ Atom "invalidate" ] ] -> Invalidate
  | [ List [ Atom "gc"; n ] ] -> Gc (int_exn n)
  | [ List [ Atom "drain" ] ] -> Drain
  | [ s ] -> fail "unknown request %s" (to_string s)
  | _ -> fail "expected exactly one request form"

let render_response r =
  let buf = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match r with
  | Batch b ->
    p "(batch (entries %d) (hits %d) (fresh %d) (shared %d)" b.entries b.hits
      b.fresh b.shared;
    p " (fresh-sim-events %d) (outcomes" b.fresh_sim_events;
    List.iter
      (fun o ->
        p " (o %s %s %s %s %s %d)"
          (outcome_kind_name o.kind)
          o.hash
          (sanitize_word o.label)
          (f17 o.tail_mbps) (f17 o.opt_mbps) o.sim_events)
      b.outcomes;
    p "))"
  | Status_reply s ->
    p
      "(status (pid %d) (draining %b) (queue-depth %d) (inflight %d) \
       (pool-domains %d) (store-records %d))"
      s.pid s.draining s.queue_depth s.inflight s.pool_domains s.store_records
  | Stats_reply s ->
    p
      "(stats (submissions %d) (served-entries %d) (hits %d) (fresh %d) \
       (shared %d) (rejected %d) (protocol-errors %d) (gc-runs %d) \
       (store-records %d) (store-bytes %d) (trend-entries %d))"
      s.submissions s.served_entries s.s_hits s.s_fresh s.s_shared s.rejected
      s.protocol_errors s.gc_runs s.store_records s.store_bytes
      s.trend_entries
  | Invalidated n -> p "(invalidated %d)" n
  | Gc_done g ->
    p
      "(gc-done (examined %d) (evicted %d) (evicted-bytes %d) (kept %d) \
       (kept-bytes %d))"
      g.examined g.evicted g.evicted_bytes g.kept g.kept_bytes
  | Drained -> p "(drained)"
  | Error (kind, msg) ->
    p "(error %s" (error_kind_name kind);
    List.iter (fun w -> p " %s" w) (words_of_text msg);
    p ")");
  wrap (Buffer.contents buf)

let parse_response s =
  let open Events.Sexp in
  let get name fields =
    match find_field name fields with
    | Some [ v ] -> v
    | _ -> fail "response: missing or malformed (%s ...)" name
  in
  let geti name fields = int_exn (get name fields) in
  let bool_exn s =
    match atom_exn s with
    | "true" -> true
    | "false" -> false
    | a -> fail "expected a boolean, got %s" a
  in
  match unwrap s with
  | [ List (Atom "batch" :: fields) ] ->
    let outcomes =
      match find_field "outcomes" fields with
      | None -> fail "batch reply: missing (outcomes ...)"
      | Some os ->
        List.map
          (function
            | List [ Atom "o"; k; h; l; tail; opt; ev ] ->
              let kind =
                match outcome_kind_of_name (atom_exn k) with
                | Some k -> k
                | None -> fail "unknown outcome kind %s" (atom_exn k)
              in
              {
                kind;
                hash = atom_exn h;
                label = atom_exn l;
                tail_mbps = float_exn tail;
                opt_mbps = float_exn opt;
                sim_events = int_exn ev;
              }
            | o -> fail "bad outcome %s" (to_string o))
          os
    in
    Batch
      {
        outcomes;
        entries = geti "entries" fields;
        hits = geti "hits" fields;
        fresh = geti "fresh" fields;
        shared = geti "shared" fields;
        fresh_sim_events = geti "fresh-sim-events" fields;
      }
  | [ List (Atom "status" :: fields) ] ->
    Status_reply
      {
        pid = geti "pid" fields;
        draining = bool_exn (get "draining" fields);
        queue_depth = geti "queue-depth" fields;
        inflight = geti "inflight" fields;
        pool_domains = geti "pool-domains" fields;
        store_records = geti "store-records" fields;
      }
  | [ List (Atom "stats" :: fields) ] ->
    Stats_reply
      {
        submissions = geti "submissions" fields;
        served_entries = geti "served-entries" fields;
        s_hits = geti "hits" fields;
        s_fresh = geti "fresh" fields;
        s_shared = geti "shared" fields;
        rejected = geti "rejected" fields;
        protocol_errors = geti "protocol-errors" fields;
        gc_runs = geti "gc-runs" fields;
        store_records = geti "store-records" fields;
        store_bytes = geti "store-bytes" fields;
        trend_entries = geti "trend-entries" fields;
      }
  | [ List [ Atom "invalidated"; n ] ] -> Invalidated (int_exn n)
  | [ List (Atom "gc-done" :: fields) ] ->
    Gc_done
      {
        examined = geti "examined" fields;
        evicted = geti "evicted" fields;
        evicted_bytes = geti "evicted-bytes" fields;
        kept = geti "kept" fields;
        kept_bytes = geti "kept-bytes" fields;
      }
  | [ List [ Atom "drained" ] ] -> Drained
  | [ List (Atom "error" :: Atom kind :: words) ] ->
    let kind =
      match error_kind_of_name kind with
      | Some k -> k
      | None -> fail "unknown error kind %s" kind
    in
    Error (kind, String.concat " " (List.map atom_exn words))
  | [ s ] -> fail "unknown response %s" (to_string s)
  | _ -> fail "expected exactly one response form"

(* --- framing --- *)

type frame =
  | Frame of string
  | Eof
  | Truncated
  | Too_large of int
  | Idle_stop

(* Wait until [fd] is readable, polling [idle_stop] at 4 Hz.  A
   [deadline] of [infinity] waits forever.  [`Ready] never lies: the
   following [read] may still return 0 (EOF), which the callers treat
   per-position. *)
let rec wait_readable ?idle_stop fd ~deadline =
  let now = Unix.gettimeofday () in
  if now >= deadline then `Timeout
  else
    match Unix.select [ fd ] [] [] 0.25 with
    | [], _, _ -> (
      match idle_stop with
      | Some stop when stop () -> `Stop
      | _ -> wait_readable ?idle_stop fd ~deadline)
    | _ -> `Ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_readable ?idle_stop fd ~deadline

(* Returns how many bytes it managed before EOF or a stall.
   [first_timeout_s] bounds the wait for byte 0 ([infinity] waits
   indefinitely, polling [idle_stop]); every later byte is bounded by
   [mid_frame_timeout_s] — a peer that stalls inside a frame is broken,
   one that is merely quiet before it is not. *)
let read_bytes ?idle_stop ~first_timeout_s fd buf ~len ~mid_frame_timeout_s =
  let rec go off =
    if off >= len then `All
    else
      let idle_stop = if off = 0 then idle_stop else None in
      let timeout_s = if off = 0 then first_timeout_s else mid_frame_timeout_s in
      match
        wait_readable ?idle_stop fd
          ~deadline:(Unix.gettimeofday () +. timeout_s)
      with
      | `Stop -> `Stopped
      | `Timeout -> `Partial off
      | `Ready -> (
        match Unix.read fd buf off (len - off) with
        | 0 -> `Partial off
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
  in
  go 0

let mid_frame_timeout_s = 10.

let read_frame ?idle_stop fd =
  let hdr = Bytes.create 4 in
  (* No deadline before a frame starts: an idle-but-healthy peer — a
     client between requests, or a server still computing a long reply —
     is not an error.  [idle_stop] is the only way to give up here, so
     `Partial 0` can only mean a genuine EOF. *)
  match
    read_bytes ?idle_stop ~first_timeout_s:infinity fd hdr ~len:4
      ~mid_frame_timeout_s
  with
  | `Stopped -> Idle_stop
  | `Partial 0 -> Eof
  | `Partial _ -> Truncated
  | `All ->
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then Too_large len
    else if len = 0 then Frame ""
    else
      let payload = Bytes.create len in
      (* the header already arrived, so the payload is mid-frame from
         its first byte: the stall deadline applies throughout *)
      (match
         read_bytes ~first_timeout_s:mid_frame_timeout_s fd payload ~len
           ~mid_frame_timeout_s
       with
      | `All -> Frame (Bytes.unsafe_to_string payload)
      | `Partial _ | `Stopped -> Truncated)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: %d bytes > max_frame" len);
  let msg = Bytes.create (4 + len) in
  Bytes.set msg 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set msg 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set msg 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set msg 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 msg 4 len;
  let total = 4 + len in
  let rec go off =
    if off < total then
      match Unix.write fd msg off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* --- client helpers --- *)

exception Protocol_error of string

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  fd

let call fd req =
  write_frame fd (render_request req);
  match read_frame fd with
  | Frame s -> (
    try parse_response s
    with Events.Sexp.Parse_error msg ->
      raise (Protocol_error ("unreadable reply: " ^ msg)))
  | Eof -> raise (Protocol_error "connection closed before the reply")
  | Truncated -> raise (Protocol_error "reply truncated")
  | Too_large n ->
    raise (Protocol_error (Printf.sprintf "oversized reply (%d bytes)" n))
  | Idle_stop -> assert false

let call_once ~socket req =
  let fd = connect socket in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> call fd req)
