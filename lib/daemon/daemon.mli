(** The resident scenario daemon: a warm-pool socket service.

    [mptcp_sim serve --listen SOCK] keeps one process resident with a
    single {!Engine.Pool} of worker domains, an open {!Serve.Store} and
    the trend log, and serves {!Protocol} requests over a Unix-domain
    socket.  Compared to one-shot [serve] runs it amortises process
    start, domain spawn and store open across every submission: a warm
    resubmission of a cached batch does zero simulation work and spawns
    nothing.

    Concurrency model: one [Thread] per connection, all sharing the one
    domain pool.  Submissions are deduplicated twice over —

    - {e in-process} by {!Flights}: concurrent clients submitting the
      same spec share one simulation (one leader runs it, followers
      wait for the published record);
    - {e cross-process} by the store's advisory claims
      ({!Serve.Store.try_claim} via {!Serve.Service.simulate_entry}):
      a second daemon or one-shot [serve] on the same store adopts this
      daemon's in-flight result instead of re-running it.

    Admission is bounded: when the entries already in flight plus a new
    submission would exceed [max_queue], the client gets a typed
    [Busy] error immediately (backpressure) instead of queueing without
    limit.  Draining ([drain] request, SIGTERM or SIGINT) stops
    admission with typed [Draining] errors, lets in-flight runs
    complete and their clients receive full replies, flushes
    store/trend (both are written synchronously per outcome), unlinks
    the socket and shuts the pool down. *)

module Protocol = Protocol
(** Re-exported: this module is the library's interface module, which
    hides its siblings, so the wire protocol rides along here. *)

(** In-process single-flight: at most one running simulation per hash.

    The first thread to {!Flights.enter} a hash becomes the [Leader]
    and must eventually {!Flights.publish} a result (even a failure) —
    every concurrent [Follower] of that hash blocks in {!Flights.wait}
    until then.  The split between [enter] (non-blocking) and [wait]
    lets a submission dispatch all its misses to the pool before
    awaiting any of them, and lets tests drive the leader/follower
    handshake deterministically. *)
module Flights : sig
  type payload = Serve.Store.record * Serve.Service.sim_kind
  (** What a flight lands with: the record, and whether this process
      simulated it or adopted a peer process's run. *)

  type slot
  (** One in-flight (or landed) simulation of one hash. *)

  type role =
    | Leader of slot  (** first in: run it, then {!publish} *)
    | Follower of slot  (** someone is on it: {!wait} for the result *)

  type t

  val create : unit -> t

  val inflight : t -> int
  (** Flights currently between [enter] and [publish]. *)

  val enter : t -> hash:string -> role
  (** Join (or open) the flight for [hash].  Never blocks. *)

  val publish : t -> hash:string -> slot -> (payload, exn) result -> unit
  (** Leader only: land the flight, wake every waiter, and retire the
      hash so the next [enter] starts a fresh flight. *)

  val wait : t -> slot -> (payload, exn) result
  (** Block until the slot's leader has published. *)
end

(** {1 Configuration and lifecycle} *)

type conf = {
  socket_path : string;  (** Unix-domain socket to bind *)
  store_dir : string;  (** result store + trend log directory *)
  base_dir : string;
      (** directory that relative paths in submitted batch forms
          (experiment files) resolve against *)
  jobs : int option;  (** pool domains; [None] = recommended count *)
  max_queue : int;  (** max entries in flight before [Busy] rejection *)
  gc_max_bytes : int option;
      (** when set, a periodic LRU pass keeps the store under this many
          bytes (the [cache --gc --max-bytes] policy, resident) *)
  gc_interval_s : float;  (** period of that pass *)
  watch_dir : string option;
      (** when set, a poller submits every [*.sexp] batch file dropped
          here and renames it [.done] (or [.err]) once served *)
  watch_poll_s : float;
  log : bool;  (** lifecycle lines on stderr *)
}

val default_conf : socket_path:string -> store_dir:string -> conf
(** [base_dir "."], recommended domains, [max_queue 64], no GC, no
    watch dir, 5 s GC interval, 0.5 s watch poll, logging on. *)

type t

val start : conf -> t
(** Bind the socket, open the store, spawn the pool and the helper
    threads (GC / watch, when configured).  A stale socket file left by
    a dead daemon is probed and replaced; a live daemon on the same
    path raises [Failure].  The caller still owes a {!serve}. *)

val serve : t -> unit
(** Accept loop: one handler thread per connection.  Returns only
    after a drain completes — every in-flight run finished and
    replied, helper threads joined, socket closed and unlinked, pool
    shut down. *)

val run : conf -> unit
(** {!start} + SIGTERM/SIGINT → {!request_drain} wiring + {!serve}:
    the whole [serve --listen] server mode. *)

val initiate_drain : t -> unit
(** Flip to draining (idempotent): new submissions get typed
    [Draining] errors, the accept loop winds down, {!serve} completes
    once in-flight work lands.  Takes the daemon mutex — never call it
    from a signal handler; that is what {!request_drain} is for. *)

val request_drain : t -> unit
(** Async-signal-safe drain request: only flips an atomic flag (OCaml
    signal handlers run at poll points on whatever thread is current,
    so a handler that locked the daemon mutex could self-deadlock).
    The accept loop notices within 0.25 s and runs {!initiate_drain}
    from ordinary thread context. *)

val draining : t -> bool

(** {1 In-process service access}

    The socket is one transport; tests, the watch poller and the bench
    harness call straight into the same request handler. *)

val handle : t -> Protocol.request -> Protocol.response
(** Serve one request exactly as a connection handler would — including
    admission control, single-flight dedup and counter updates.
    [Drain] blocks until in-flight submissions land, then answers
    [Drained]. *)

val gc_now : t -> Serve.Store.gc_stats option
(** One LRU pass at [gc_max_bytes] (what the periodic timer runs);
    [None] when no byte budget is configured. *)

val store : t -> Serve.Store.t

val metrics : t -> Obs.Metrics.t
(** The daemon's instrument registry: gauges [daemon.queue_depth] and
    [daemon.inflight_singles], histogram [daemon.warm_hit_ms] (service
    latency of all-hit submissions) and the [daemon.*] counters
    surfaced by the [stats] request. *)
