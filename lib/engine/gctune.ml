(* A simulation run is a long steady-state loop over small short-lived
   values; the OCaml defaults (256k-word minor heap) promote far too
   eagerly for that shape.  One knob application at startup, plus cheap
   counter snapshots for the allocation accounting in bench and obs. *)

let default_minor_heap_words = 8 * 1024 * 1024 (* 64 MB on 64-bit: segments
                                                  die young, keep them minor *)
let default_space_overhead = 200

let tune ?(minor_heap_words = default_minor_heap_words)
    ?(space_overhead = default_space_overhead) () =
  let g = Gc.get () in
  Gc.set
    { g with
      Gc.minor_heap_size = minor_heap_words;
      space_overhead;
    }

type counters = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

(* [Gc.quick_stat] reports [minor_words] as of the last minor
   collection; with the large nursery from {!tune} a whole run can fit
   between collections and the bracketed delta would be mostly noise.
   [Gc.minor_words ()] reads the live allocation pointer instead. *)
let counters () =
  let s = Gc.quick_stat () in
  {
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
  }

let diff a b =
  {
    minor_collections = b.minor_collections - a.minor_collections;
    major_collections = b.major_collections - a.major_collections;
    compactions = b.compactions - a.compactions;
    minor_words = b.minor_words -. a.minor_words;
    promoted_words = b.promoted_words -. a.promoted_words;
    major_words = b.major_words -. a.major_words;
  }

(* Words allocated overall: everything born in the minor heap plus
   blocks allocated directly in the major heap (promotions would
   otherwise be double-counted). *)
let allocated_words c = c.minor_words +. c.major_words -. c.promoted_words
