(** Hierarchical timing wheel — the event queue behind {!Sched}.

    Same ordering contract as {!Heap} (pop in lexicographic (key, tie)
    order, exact, deterministic) but with O(1) insert, O(1) cancel via
    an explicit cell handle, and amortised O(1) expiry: eight levels of
    32 slots over a coarse 2{^12} ns level-0 granule cover 2{^52} ns of
    future, entries beyond that wait in an overflow heap and migrate in
    as the wheel drains.  Timer cells are
    free-listed parallel arrays, so steady-state operation allocates
    nothing.

    Keys must be non-negative (they are {!Time.t} nanosecond stamps in
    the scheduler).  Unlike a search structure, the wheel has a notion
    of current position: it only moves forward, so a key below the
    highest key already popped still pops correctly (it is queued as
    overdue) but costs a scan rather than O(1). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty wheel with [capacity] timer cells preallocated
    (default 256); the cell pool grows as needed. *)

val length : 'a t -> int
(** Number of queued, not-cancelled entries. *)

val is_empty : 'a t -> bool

val now : 'a t -> int
(** The wheel's internal position: no queued key is known to be below
    it.  Diagnostic — callers track simulated time themselves. *)

val push : 'a t -> key:int -> tie:int -> 'a -> int
(** [push t ~key ~tie v] queues [v]; among equal keys the smaller [tie]
    pops first.  Returns the cell handle used by {!cancel}.  The handle
    is valid until the entry pops or is cancelled — using it after
    either is an error the wheel cannot always detect, so callers keep
    their own liveness flag (as {!Sched} does).  Raises
    [Invalid_argument] on a negative key. *)

val cancel : 'a t -> int -> unit
(** Removes a queued entry by handle in O(1) (overflow entries are
    marked dead and reaped when they outnumber live ones).  Raises
    [Invalid_argument] on a handle already popped or cancelled. *)

val min_key_exn : 'a t -> int
(** Key of the minimum entry without removing it; raises
    [Invalid_argument] when empty.  With {!min_tie_exn} and {!pop_exn}
    this is the same allocation-free pop protocol as {!Heap}. *)

val min_tie_exn : 'a t -> int
(** Tie of the minimum entry without removing it; raises
    [Invalid_argument] when empty. *)

val pop_exn : 'a t -> 'a
(** Removes the minimum entry and returns its value alone; raises
    [Invalid_argument] when empty. *)

val cascade_count : 'a t -> int
(** Total slot redistributions performed (diagnostics: each cascade
    relinks one slot's cells one level down). *)
