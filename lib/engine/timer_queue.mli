(** The timer-queue contract shared by {!Heap} and {!Wheel}.

    {!Sched} runs on the wheel; the heap stays alive as the reference
    implementation.  Both are wrapped here behind one signature with
    handle-based cancellation, which is what lets the fuzz suite drive
    the two with identical random insert/cancel/pop programs and demand
    bit-identical pop streams ([Fuzz.wheel_equivalence]), and what the
    scheduler's [--audit] lockstep shadow mode (see
    {!Sched.set_lockstep}) checks end-to-end on real simulations. *)

module type S = sig
  type 'a t

  type 'a handle
  (** Handle for one queued entry, valid until it pops. *)

  val create : unit -> 'a t

  val length : 'a t -> int
  (** Queued, not-cancelled entries. *)

  val is_empty : 'a t -> bool

  val push : 'a t -> key:int -> tie:int -> 'a -> 'a handle
  (** Queue a value; among equal keys the smaller [tie] pops first.
      Keys must be non-negative. *)

  val cancel : 'a t -> 'a handle -> unit
  (** Remove a queued entry.  Idempotent; cancelling after the entry
      popped is a no-op. *)

  val min_key_exn : 'a t -> int
  (** Key of the minimum live entry; raises [Invalid_argument] when
      empty. *)

  val min_tie_exn : 'a t -> int
  (** Tie of the minimum live entry; raises [Invalid_argument] when
      empty. *)

  val pop_exn : 'a t -> 'a
  (** Remove and return the minimum live entry's value; raises
      [Invalid_argument] when empty. *)
end

module Of_wheel : S
(** {!Wheel} behind the shared signature. *)

module Of_heap : S
(** {!Heap} behind the shared signature: cancellation marks entries
    dead and pops filter them, so the observable pop stream matches
    {!Of_wheel}'s eager removal exactly. *)
