(* Parallel-array binary heap: keys and ties live in unboxed int arrays,
   values in a third array, so a sift compares machine ints in cache
   instead of chasing entry records, and push/pop allocate nothing (the
   old layout boxed a 4-word entry per push and a [Some (k, t, v)] per
   pop — measurable minor-GC churn at simulator event rates).

   The value array is [Obj.t] behind the phantom ['a]: values are
   [Obj.repr]ed on the way in and [Obj.obj]ed on the way out, both
   identities for the boxed values stored here.  A flat ['a array] would
   be unsound for ['a = float] (Array.make with a magicked filler would
   build a non-float array tagged as a float array), so the indirection
   is load-bearing, not style. *)

type 'a t = {
  mutable keys : int array;
  mutable ties : int array;
  mutable values : Obj.t array;
  mutable size : int;
}

(* Slot 0 is the root.  Slots at or past [size] hold [nil], never a user
   value: [pop], [clear] and [compact] overwrite freed slots so the heap
   retains no values beyond their lifetime. *)
let nil = Obj.repr 0

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  let capacity = max capacity 0 in
  {
    keys = Array.make capacity 0;
    ties = Array.make capacity 0;
    values = Array.make capacity nil;
    size = 0;
  }

let length h = h.size
let capacity h = Array.length h.keys
let is_empty h = h.size = 0

(* Hole-based sifts: carry the moving (key, tie, value) in locals, slide
   displaced slots over the hole, and write the carried element once at
   its final position — one store per level instead of a three-array
   swap. *)

let sift_up h i0 =
  let k = h.keys.(i0) and t = h.ties.(i0) and v = h.values.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pk = h.keys.(parent) in
    if k < pk || (k = pk && t < h.ties.(parent)) then begin
      h.keys.(!i) <- pk;
      h.ties.(!i) <- h.ties.(parent);
      h.values.(!i) <- h.values.(parent);
      i := parent
    end
    else moving := false
  done;
  if !i <> i0 then begin
    h.keys.(!i) <- k;
    h.ties.(!i) <- t;
    h.values.(!i) <- v
  end

let sift_down h i0 =
  let size = h.size in
  let k = h.keys.(i0) and t = h.ties.(i0) and v = h.values.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let left = (2 * !i) + 1 in
    if left >= size then moving := false
    else begin
      let right = left + 1 in
      let child =
        if
          right < size
          && (h.keys.(right) < h.keys.(left)
             || (h.keys.(right) = h.keys.(left)
                && h.ties.(right) < h.ties.(left)))
        then right
        else left
      in
      let ck = h.keys.(child) in
      if ck < k || (ck = k && h.ties.(child) < t) then begin
        h.keys.(!i) <- ck;
        h.ties.(!i) <- h.ties.(child);
        h.values.(!i) <- h.values.(child);
        i := child
      end
      else moving := false
    end
  done;
  if !i <> i0 then begin
    h.keys.(!i) <- k;
    h.ties.(!i) <- t;
    h.values.(!i) <- v
  end

let grow h =
  let cap = Array.length h.keys in
  let fresh_cap = max 16 (2 * cap) in
  let keys = Array.make fresh_cap 0 in
  let ties = Array.make fresh_cap 0 in
  let values = Array.make fresh_cap nil in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.ties 0 ties 0 h.size;
  Array.blit h.values 0 values 0 h.size;
  h.keys <- keys;
  h.ties <- ties;
  h.values <- values

let push h ~key ~tie value =
  if h.size = Array.length h.keys then grow h;
  let i = h.size in
  h.keys.(i) <- key;
  h.ties.(i) <- tie;
  h.values.(i) <- Obj.repr value;
  h.size <- i + 1;
  sift_up h i

let min_key_exn h =
  if h.size = 0 then invalid_arg "Heap.min_key_exn: empty heap";
  h.keys.(0)

let min_tie_exn h =
  if h.size = 0 then invalid_arg "Heap.min_tie_exn: empty heap";
  h.ties.(0)

(* Shared removal of the root; the caller has already read it out. *)
let drop_root h =
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    h.keys.(0) <- h.keys.(last);
    h.ties.(0) <- h.ties.(last);
    h.values.(0) <- h.values.(last);
    h.values.(last) <- nil;
    sift_down h 0
  end
  else h.values.(0) <- nil

let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let v = h.values.(0) in
  drop_root h;
  Obj.obj v

let pop h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and t = h.ties.(0) and v = h.values.(0) in
    drop_root h;
    Some (k, t, Obj.obj v)
  end

let peek h =
  if h.size = 0 then None
  else Some (h.keys.(0), h.ties.(0), Obj.obj h.values.(0))

let clear h =
  Array.fill h.values 0 h.size nil;
  h.size <- 0

let compact h ~keep =
  let n = h.size in
  let live = ref 0 in
  for i = 0 to n - 1 do
    if keep ~tie:h.ties.(i) (Obj.obj h.values.(i)) then begin
      h.keys.(!live) <- h.keys.(i);
      h.ties.(!live) <- h.ties.(i);
      h.values.(!live) <- h.values.(i);
      incr live
    end
  done;
  Array.fill h.values !live (n - !live) nil;
  h.size <- !live;
  (* Floyd heapify: entries keep their (key, tie), so the pop order of
     survivors is exactly what it would have been without compaction. *)
  for i = (!live / 2) - 1 downto 0 do
    sift_down h i
  done

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    acc := f !acc ~key:h.keys.(i) (Obj.obj h.values.(i))
  done;
  !acc
