(** Fixed-size worker pool on OCaml 5 domains.

    The simulator itself is single-threaded and deterministic; what
    parallelises is the layer above it, where dozens of independent
    scenarios (figures, sweep cells, ablations) each own their private
    {!Sched} and {!Rng}.  [Pool] runs such independent thunks across a
    fixed set of domains with a mutex/condition work queue.

    Results always come back in input order and the first (by input
    index) exception is re-raised in the caller, so
    [Pool.map ~domains:n f xs] is observationally [List.map f xs] as
    long as [f] touches no shared mutable state — which makes parallel
    sweeps bit-identical to serial ones.

    Do not call [map]/[run_list] from inside a pool job: workers would
    wait on themselves. *)

type t
(** A pool of worker domains sharing one job queue. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?domains:int -> unit -> t
(** Spawns [domains] workers (default {!default_domains}).  Raises
    [Invalid_argument] when [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** Runs every thunk on the pool, blocking until all finish.  Results
    are in input order.  If any thunk raises, the exception of the
    lowest-index failing thunk is re-raised (with its backtrace) after
    all jobs have settled. *)

val map_pool : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool pool f xs] is [run_list pool] over [fun () -> f x]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: spawn a pool, map, shut it down.
    [~domains:1] (and lists of length <= 1) short-circuits to
    [List.map] with no domain spawned, so [--jobs 1] is exactly the
    serial code path. *)

(** {1 Incremental submission}

    [run_list]/[map] are all-or-nothing: the caller blocks until the
    whole batch settles.  A long-running service (the scenario cache's
    [serve] loop) instead discovers work incrementally — cache hits
    return immediately, misses trickle in as batches arrive — so it
    needs to enqueue jobs one at a time and collect each result when it
    is ready.  Idle workers pull from the shared queue, so load
    balances across domains without the submitter choosing placements. *)

type 'a ticket
(** A claim on one submitted job's eventual result. *)

val submit : t -> (unit -> 'a) -> 'a ticket
(** Enqueues the thunk and returns immediately.  Raises
    [Invalid_argument] on a shut-down pool. *)

val await : 'a ticket -> 'a
(** Blocks until the job finishes and returns its result, re-raising
    (with backtrace) if the thunk raised.  [await] may be called at
    most once from one thread per ticket's completion; calling it again
    returns the same outcome.  Do not [await] from inside a pool job:
    the worker would wait on itself. *)

val shutdown : t -> unit
(** Joins all workers.  Idempotent.  The pool is unusable afterwards. *)

(** {1 Profiling}

    Each worker records how many jobs it ran and how much wall-clock
    time it spent inside job thunks.  Idle time for a worker is the
    pool's wall time minus its busy time; dividing total busy time by
    wall time gives the effective speedup.  Accounting costs two
    [Unix.gettimeofday] calls and one short critical section per job —
    negligible against jobs that are whole simulations. *)

type worker_stats = { jobs : int; busy_s : float }
(** Jobs executed and wall-clock seconds spent inside job thunks, for
    one worker domain. *)

val worker_stats : t -> worker_stats array
(** Per-worker accounting snapshot, indexed by worker; consistent (taken
    under the pool lock). *)

val wall_s : t -> float
(** Wall-clock seconds since the pool was created. *)

val global_worker_stats : unit -> worker_stats array
(** Process-wide accounting aggregated across every pool created since
    the last {!reset_global_stats}, indexed by worker slot.  Lets
    [bench --profile] report busy/idle per domain even though each
    benchmark phase creates and destroys its own pools internally. *)

val global_pools : unit -> int
(** Number of pools created since the last {!reset_global_stats}. *)

val reset_global_stats : unit -> unit
(** Clears the process-wide accounting (e.g. between benchmark
    phases). *)
