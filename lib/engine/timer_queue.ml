module type S = sig
  type 'a t
  type 'a handle

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> key:int -> tie:int -> 'a -> 'a handle
  val cancel : 'a t -> 'a handle -> unit
  val min_key_exn : 'a t -> int
  val min_tie_exn : 'a t -> int
  val pop_exn : 'a t -> 'a
end

module Of_wheel : S = struct
  (* The wheel removes cancelled cells eagerly and recycles their
     slots, so a raw cell index must not be cancelled twice or after
     its pop.  Queued values are boxed with an [alive] flag that the
     pop clears, which honours the interface's idempotent-cancel
     contract without touching the wheel itself. *)
  type 'a box = { mutable alive : bool; mutable cell : int; v : 'a }
  type 'a handle = 'a box
  type 'a t = 'a box Wheel.t

  let create () = Wheel.create ()
  let length = Wheel.length
  let is_empty = Wheel.is_empty

  let push t ~key ~tie v =
    let b = { alive = true; cell = -1; v } in
    b.cell <- Wheel.push t ~key ~tie b;
    b

  let cancel t b =
    if b.alive then begin
      b.alive <- false;
      Wheel.cancel t b.cell
    end

  let min_key_exn = Wheel.min_key_exn
  let min_tie_exn = Wheel.min_tie_exn

  let pop_exn t =
    let b = Wheel.pop_exn t in
    b.alive <- false;
    b.v
end

module Of_heap : S = struct
  (* The heap has no random-access removal, so cancellation marks the
     entry dead and pops filter: before any root read the dead prefix
     is dropped, which makes the observable pop stream identical to the
     wheel's eager removal. *)
  type 'a cell = { mutable alive : bool; v : 'a }
  type 'a handle = 'a cell
  type 'a t = { heap : 'a cell Heap.t; mutable live : int }

  let create () = { heap = Heap.create (); live = 0 }
  let length t = t.live
  let is_empty t = t.live = 0

  let push t ~key ~tie v =
    let cell = { alive = true; v } in
    Heap.push t.heap ~key ~tie cell;
    t.live <- t.live + 1;
    cell

  let cancel t cell =
    if cell.alive then begin
      cell.alive <- false;
      t.live <- t.live - 1;
      if t.live * 2 < Heap.length t.heap then
        Heap.compact t.heap ~keep:(fun ~tie:_ c -> c.alive)
    end

  let rec clean t =
    if not (Heap.is_empty t.heap) then begin
      match Heap.peek t.heap with
      | Some (_, _, c) when not c.alive ->
        ignore (Heap.pop_exn t.heap);
        clean t
      | _ -> ()
    end

  let min_key_exn t =
    clean t;
    Heap.min_key_exn t.heap

  let min_tie_exn t =
    clean t;
    Heap.min_tie_exn t.heap

  let pop_exn t =
    clean t;
    let c = Heap.pop_exn t.heap in
    c.alive <- false;
    t.live <- t.live - 1;
    c.v
end
