(** Discrete-event scheduler.

    Single-threaded, deterministic: events fire in (time, insertion-order)
    order.  Callbacks may schedule and cancel further events freely. *)

type t

type timer
(** Handle for a scheduled event, usable to cancel it. *)

val create : unit -> t
(** Fresh scheduler with clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current simulated time (the timestamp of the running event, or of the
    last completed one). *)

val at : t -> Time.t -> (unit -> unit) -> timer
(** [at t when_ f] schedules [f] at absolute time [when_].  Raises
    [Invalid_argument] when [when_] is in the past. *)

val after : t -> Time.t -> (unit -> unit) -> timer
(** [after t delay f] schedules [f] at [now t + delay]; [delay >= 0]. *)

val at_anon : t -> Time.t -> (unit -> unit) -> unit
(** Like {!at}, but returns no handle: the event cannot be cancelled.
    The callback is stored directly in the event queue, so anonymous
    scheduling allocates nothing beyond the closure itself — use it for
    fire-and-forget events on hot paths (the link model's serializer
    and arrival events go through this). *)

val after_anon : t -> Time.t -> (unit -> unit) -> unit
(** Like {!after}, with {!at_anon}'s no-handle contract. *)

val cancel : timer -> unit
(** Prevents a pending event from firing.  Cancelling an already-fired or
    already-cancelled timer is a no-op.  The timing wheel unlinks the
    entry immediately — O(1), no dead entries retained — so workloads
    that rearm timers constantly (TCP retransmission) pay nothing
    beyond the unlink. *)

val pending : timer -> bool
(** [pending tm] is [true] until the timer fires or is cancelled. *)

val run : ?until:Time.t -> t -> unit
(** Processes events in order.  With [until], stops once every event at
    time <= [until] has run and advances the clock to exactly [until];
    without it, runs until the queue drains. *)

val step : t -> bool
(** Processes exactly one event; [false] when the queue is empty. *)

val queue_length : t -> int
(** Number of live (not yet fired, not cancelled) queued events. *)

val events_processed : t -> int
(** Total number of callbacks fired so far (diagnostics / benchmarks). *)

val cancelled_count : t -> int
(** Total number of timers cancelled over the scheduler's lifetime. *)

type stats = { pending : int; fired : int; cancelled : int }

val stats : t -> stats
(** Snapshot of {!queue_length}, {!events_processed} and
    {!cancelled_count} — cheap enough for per-event instrumentation. *)

val set_lockstep : t -> bool -> unit
(** Arms (or disarms) the cross-check shadow queue: every subsequent
    event is mirrored into a reference {!Heap}, and each dispatch pops
    both queues and raises [Failure] on any (time, insertion-order)
    divergence between the timing wheel and the heap.  Must be armed
    while the queue is empty ([Invalid_argument] otherwise).
    [Core.Scenario.run] arms it whenever the scenario's audit flag is
    set, so every [--audit] run exercises the wheel against the
    reference implementation end-to-end. *)

val lockstep : t -> bool
(** Whether the lockstep shadow queue is armed. *)

val set_monitor : t -> (Time.t -> unit) option -> unit
(** Installs (or clears) an event-dispatch tap: the callback fires once
    per live event, with the event's timestamp, after the clock has
    advanced but before the event's own callback runs.  [None] (the
    default) costs one mutable load per dispatch — the same optional-
    monitor discipline as [Netsim.Linkq.set_monitor].  The observability
    layer ([Obs.Collect]) uses it to trace event-loop dispatches. *)

val monitor : t -> (Time.t -> unit) option
(** The currently installed dispatch tap, for monitor chaining. *)

val periodic : t -> period:Time.t -> until:Time.t -> (unit -> unit) -> unit
(** [periodic t ~period ~until f] fires [f] at [now + period],
    [now + 2 * period], ... for every multiple at or before [until].
    Each firing re-arms the next through the timing wheel (one pending
    anonymous event per task at any time), so coarse ticks — the hybrid
    fluid background driver, samplers — co-exist with packet events at
    any population, in deterministic (time, insertion-order) order.
    Raises [Invalid_argument] on a non-positive period. *)
