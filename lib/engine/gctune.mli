(** GC tuning and allocation accounting for the simulation hot loop.

    The event loop allocates small, short-lived values at a high rate;
    {!tune} sizes the minor heap so they die before promotion, and
    {!counters}/{!diff} bracket a run for the allocations-per-packet
    numbers in the bench JSON and the observability metrics. *)

val default_minor_heap_words : int
(** 8 Mwords (64 MB on 64-bit). *)

val default_space_overhead : int

val tune : ?minor_heap_words:int -> ?space_overhead:int -> unit -> unit
(** Applies the simulator-friendly GC settings to this domain.  Values
    default to {!default_minor_heap_words} / {!default_space_overhead};
    other [Gc.control] fields are left untouched. *)

type counters = {
  minor_collections : int;
  major_collections : int;
  compactions : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

val counters : unit -> counters
(** Snapshot of this domain's GC counters (cheap, no heap walk).
    [minor_words] comes from the live allocation pointer
    ([Gc.minor_words ()]) rather than [Gc.quick_stat], which only
    updates it at minor collections — a whole run can fit inside the
    {!tune}d nursery without collecting. *)

val diff : counters -> counters -> counters
(** [diff before after]: counter deltas over a bracketed region. *)

val allocated_words : counters -> float
(** Total words allocated in a delta: minor allocations plus direct
    major allocations (promotions counted once). *)
