type t = {
  wheel : timer Wheel.t;
  mutable clock : Time.t;
  mutable seq : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable monitor : (Time.t -> unit) option;
  mutable shadow : timer Heap.t option;
      (* lockstep cross-check: mirror of every push, popped (skipping
         cancelled timers) alongside the wheel under [--audit] *)
}

and timer = {
  mutable alive : bool;
  action : unit -> unit;
  owner : t;
  mutable cell : int; (* wheel handle; valid only while [alive] *)
}

let create () =
  {
    wheel = Wheel.create ();
    clock = Time.zero;
    seq = 0;
    fired = 0;
    cancelled = 0;
    monitor = None;
    shadow = None;
  }

let now t = t.clock

(* The wheel holds two kinds of entry, told apart by the tie's low bit:
   cancellable timers (a [timer] record, bit 0) and anonymous timers
   (the callback closure itself, bit 1).  Anonymous scheduling skips the
   handle record entirely — most events a simulation fires (link
   serializer done, packet arrival) are never cancelled, so this erases
   a 5-word allocation from the per-packet path.  The [Obj.magic] is
   confined to this module and guarded by the tie bit: a closure is
   only ever read back as a closure. *)

let fresh_tie t anon =
  t.seq <- t.seq + 1;
  (t.seq lsl 1) lor (if anon then 1 else 0)

let check_future t when_ =
  if Time.( < ) when_ t.clock then
    invalid_arg
      (Format.asprintf "Sched.at: %a is before now (%a)" Time.pp when_
         Time.pp t.clock)

let mirror t ~key ~tie v =
  match t.shadow with
  | None -> ()
  | Some h -> Heap.push h ~key ~tie v

let at t when_ f =
  check_future t when_;
  let tie = fresh_tie t false in
  let timer = { alive = true; action = f; owner = t; cell = -1 } in
  timer.cell <- Wheel.push t.wheel ~key:when_ ~tie timer;
  mirror t ~key:when_ ~tie timer;
  timer

let after t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at t (Time.add t.clock delay) f

let at_anon t when_ f =
  check_future t when_;
  let tie = fresh_tie t true in
  let v = (Obj.magic (f : unit -> unit) : timer) in
  ignore (Wheel.push t.wheel ~key:when_ ~tie v : int);
  mirror t ~key:when_ ~tie v

let after_anon t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at_anon t (Time.add t.clock delay) f

(* Cancellation unlinks the wheel cell immediately — O(1), no dead
   entries accumulating, no compaction pass (the heap-era amortisation
   this replaces).  The shadow heap, when armed, keeps the dead entry
   and filters it at pop time instead. *)
let cancel tm =
  if tm.alive then begin
    tm.alive <- false;
    let t = tm.owner in
    Wheel.cancel t.wheel tm.cell;
    tm.cell <- -1;
    t.cancelled <- t.cancelled + 1
  end

let pending timer = timer.alive

let set_lockstep t on =
  if on then begin
    if t.shadow = None then begin
      if not (Wheel.is_empty t.wheel) then
        invalid_arg "Sched.set_lockstep: scheduler already has queued events";
      t.shadow <- Some (Heap.create ())
    end
  end
  else t.shadow <- None

let lockstep t = t.shadow <> None

(* Drop cancelled timers sitting at the shadow root, then demand its
   live minimum agrees with what the wheel is about to fire. *)
let check_shadow h ~key ~tie =
  let rec clean () =
    match Heap.peek h with
    | Some (_, ht, v) when ht land 1 = 0 && not v.alive ->
      ignore (Heap.pop_exn h : timer);
      clean ()
    | _ -> ()
  in
  clean ();
  if Heap.is_empty h then
    failwith "Sched lockstep: wheel has an event the shadow heap lacks";
  let hk = Heap.min_key_exn h and ht = Heap.min_tie_exn h in
  if hk <> key || ht <> tie then
    failwith
      (Printf.sprintf
         "Sched lockstep divergence: wheel fires (%d, %d), heap expects (%d, %d)"
         key tie hk ht);
  ignore (Heap.pop_exn h : timer)

let fire t when_ timer =
  t.clock <- when_;
  if timer.alive then begin
    timer.alive <- false;
    timer.cell <- -1;
    t.fired <- t.fired + 1;
    (match t.monitor with None -> () | Some f -> f when_);
    timer.action ()
  end

(* min_key_exn + pop_exn instead of [pop]: no option or tuple boxed per
   event — this is the innermost loop of every simulation. *)
let step t =
  if Wheel.is_empty t.wheel then false
  else begin
    let when_ = Wheel.min_key_exn t.wheel in
    let tie = Wheel.min_tie_exn t.wheel in
    (match t.shadow with
    | None -> ()
    | Some h -> check_shadow h ~key:when_ ~tie);
    let v = Wheel.pop_exn t.wheel in
    if tie land 1 = 1 then begin
      t.clock <- when_;
      t.fired <- t.fired + 1;
      (match t.monitor with None -> () | Some f -> f when_);
      (Obj.magic (v : timer) : unit -> unit) ()
    end
    else fire t when_ v;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      if Wheel.is_empty t.wheel || Time.( < ) horizon (Wheel.min_key_exn t.wheel)
      then continue := false
      else ignore (step t)
    done;
    if Time.( < ) t.clock horizon then t.clock <- horizon

let queue_length t = Wheel.length t.wheel
let events_processed t = t.fired
let cancelled_count t = t.cancelled

type stats = { pending : int; fired : int; cancelled : int }

let stats t =
  let fired = events_processed t and cancelled = cancelled_count t in
  { pending = queue_length t; fired; cancelled }

let set_monitor t m = t.monitor <- m
let monitor t = t.monitor

(* Coarse periodic ticks (the hybrid fluid/packet driver's cadence, and
   a natural fit for any sampling loop).  Each firing re-arms the next
   through the timing wheel, so a periodic task keeps exactly one
   pending anonymous event regardless of how many times it has fired,
   and its dispatches interleave deterministically with packet events
   in (time, insertion-order) order. *)
let periodic t ~period ~until f =
  if Time.( <= ) period Time.zero then
    invalid_arg "Sched.periodic: period must be positive";
  let rec arm at =
    if Time.( <= ) at until then
      at_anon t at (fun () ->
          f ();
          arm (Time.add at period))
  in
  arm (Time.add (now t) period)
