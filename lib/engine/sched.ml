type t = {
  heap : timer Heap.t;
  mutable clock : Time.t;
  mutable seq : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable dead_in_heap : int;
  mutable monitor : (Time.t -> unit) option;
}

and timer = { mutable alive : bool; action : unit -> unit; owner : t }

let create () =
  {
    heap = Heap.create ();
    clock = Time.zero;
    seq = 0;
    fired = 0;
    cancelled = 0;
    dead_in_heap = 0;
    monitor = None;
  }

let now t = t.clock

let at t when_ f =
  if Time.( < ) when_ t.clock then
    invalid_arg
      (Format.asprintf "Sched.at: %a is before now (%a)" Time.pp when_
         Time.pp t.clock);
  let timer = { alive = true; action = f; owner = t } in
  t.seq <- t.seq + 1;
  Heap.push t.heap ~key:when_ ~tie:t.seq timer;
  timer

let after t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at t (Time.add t.clock delay) f

let compact t =
  Heap.compact t.heap ~keep:(fun tm -> tm.alive);
  t.dead_in_heap <- 0

(* Cancelled timers stay queued until they reach the root, so a workload
   that cancels most of what it schedules (TCP retransmit timers are
   rearmed on every ACK) would otherwise grow the heap with dead weight.
   Compact once dead entries outnumber live ones; the O(n) rebuild then
   amortises to O(1) per cancellation. *)
let cancel tm =
  if tm.alive then begin
    tm.alive <- false;
    let t = tm.owner in
    t.cancelled <- t.cancelled + 1;
    t.dead_in_heap <- t.dead_in_heap + 1;
    if t.dead_in_heap * 2 > Heap.length t.heap then compact t
  end

let pending timer = timer.alive

let fire t when_ timer =
  t.clock <- when_;
  if timer.alive then begin
    timer.alive <- false;
    t.fired <- t.fired + 1;
    (match t.monitor with None -> () | Some f -> f when_);
    timer.action ()
  end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (when_, _, timer) ->
    if not timer.alive then t.dead_in_heap <- t.dead_in_heap - 1;
    fire t when_ timer;
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Heap.peek t.heap with
      | Some (when_, _, _) when Time.( <= ) when_ horizon ->
        ignore (step t)
      | Some _ | None -> continue := false
    done;
    if Time.( < ) t.clock horizon then t.clock <- horizon

let queue_length t = Heap.length t.heap - t.dead_in_heap
let events_processed t = t.fired
let cancelled_count t = t.cancelled

type stats = { pending : int; fired : int; cancelled : int }

let stats t =
  let fired = events_processed t and cancelled = cancelled_count t in
  { pending = queue_length t; fired; cancelled }

let set_monitor t m = t.monitor <- m
let monitor t = t.monitor
