type t = {
  heap : timer Heap.t;
  mutable clock : Time.t;
  mutable seq : int;
  mutable fired : int;
  mutable cancelled : int;
  mutable dead_in_heap : int;
  mutable monitor : (Time.t -> unit) option;
}

and timer = { mutable alive : bool; action : unit -> unit; owner : t }

let create () =
  {
    heap = Heap.create ();
    clock = Time.zero;
    seq = 0;
    fired = 0;
    cancelled = 0;
    dead_in_heap = 0;
    monitor = None;
  }

let now t = t.clock

(* The heap holds two kinds of entry, told apart by the tie's low bit:
   cancellable timers (a [timer] record, bit 0) and anonymous timers
   (the callback closure itself, bit 1).  Anonymous scheduling skips the
   handle record entirely — most events a simulation fires (link
   serializer done, packet arrival) are never cancelled, so this erases
   a 4-word allocation from the per-packet path.  The [Obj.magic] is
   confined to this module and guarded by the tie bit: a closure is
   only ever read back as a closure. *)

let fresh_tie t anon =
  t.seq <- t.seq + 1;
  (t.seq lsl 1) lor (if anon then 1 else 0)

let check_future t when_ =
  if Time.( < ) when_ t.clock then
    invalid_arg
      (Format.asprintf "Sched.at: %a is before now (%a)" Time.pp when_
         Time.pp t.clock)

let at t when_ f =
  check_future t when_;
  let timer = { alive = true; action = f; owner = t } in
  Heap.push t.heap ~key:when_ ~tie:(fresh_tie t false) timer;
  timer

let after t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at t (Time.add t.clock delay) f

let at_anon t when_ f =
  check_future t when_;
  Heap.push t.heap ~key:when_ ~tie:(fresh_tie t true) (Obj.magic (f : unit -> unit) : timer)

let after_anon t delay f =
  if Time.( < ) delay Time.zero then invalid_arg "Sched.after: negative delay";
  at_anon t (Time.add t.clock delay) f

let compact t =
  (* Anonymous entries carry no liveness flag — they are always live. *)
  Heap.compact t.heap ~keep:(fun ~tie tm -> tie land 1 = 1 || tm.alive);
  t.dead_in_heap <- 0

(* Cancelled timers stay queued until they reach the root, so a workload
   that cancels most of what it schedules (TCP retransmit timers are
   rearmed on every ACK) would otherwise grow the heap with dead weight.
   Compact once dead entries outnumber live ones; the O(n) rebuild then
   amortises to O(1) per cancellation. *)
let cancel tm =
  if tm.alive then begin
    tm.alive <- false;
    let t = tm.owner in
    t.cancelled <- t.cancelled + 1;
    t.dead_in_heap <- t.dead_in_heap + 1;
    if t.dead_in_heap * 2 > Heap.length t.heap then compact t
  end

let pending timer = timer.alive

let fire t when_ timer =
  t.clock <- when_;
  if timer.alive then begin
    timer.alive <- false;
    t.fired <- t.fired + 1;
    (match t.monitor with None -> () | Some f -> f when_);
    timer.action ()
  end

(* min_key_exn + pop_exn instead of [pop]: no option or tuple boxed per
   event — this is the innermost loop of every simulation. *)
let step t =
  if Heap.is_empty t.heap then false
  else begin
    let when_ = Heap.min_key_exn t.heap in
    let anon = Heap.min_tie_exn t.heap land 1 = 1 in
    let v = Heap.pop_exn t.heap in
    if anon then begin
      t.clock <- when_;
      t.fired <- t.fired + 1;
      (match t.monitor with None -> () | Some f -> f when_);
      (Obj.magic (v : timer) : unit -> unit) ()
    end
    else begin
      if not v.alive then t.dead_in_heap <- t.dead_in_heap - 1;
      fire t when_ v
    end;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      if Heap.is_empty t.heap || Time.( < ) horizon (Heap.min_key_exn t.heap)
      then continue := false
      else ignore (step t)
    done;
    if Time.( < ) t.clock horizon then t.clock <- horizon

let queue_length t = Heap.length t.heap - t.dead_in_heap
let events_processed t = t.fired
let cancelled_count t = t.cancelled

type stats = { pending : int; fired : int; cancelled : int }

let stats t =
  let fired = events_processed t and cancelled = cancelled_count t in
  { pending = queue_length t; fired; cancelled }

let set_monitor t m = t.monitor <- m
let monitor t = t.monitor
