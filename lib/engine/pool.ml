(* Fixed-size worker pool on OCaml 5 domains.

   One mutex guards both the job queue and each map call's completion
   state; workers block on [nonempty] and callers on a per-call
   condition.  Jobs are plain thunks, so the pool itself is monomorphic
   and every [run_list]/[map] call closes over its own (polymorphic)
   result array.

   Every pool also keeps per-worker accounting (jobs executed, wall
   seconds spent inside thunks) and feeds a module-level aggregate, so
   `bench --profile` can print busy/idle and speedup tables without the
   jobs themselves cooperating.  The accounting costs two
   [Unix.gettimeofday] calls and one short mutex section per job —
   noise against jobs that are whole simulations. *)

type job = Run of (unit -> unit) | Quit

type worker_stats = { jobs : int; busy_s : float }

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable workers : unit Domain.t array;
  mutable live : bool;
  created_at : float;
  mutable w_jobs : int array;    (* per worker index, under [mutex] *)
  mutable w_busy : float array;
}

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* --- process-wide accounting (for the bench's --profile) --- *)

let acct_mutex = Mutex.create ()
let acct_jobs : int array ref = ref [||]
let acct_busy : float array ref = ref [||]
let acct_pools = ref 0

let acct_grow n =
  if Array.length !acct_jobs < n then begin
    let jobs = Array.make n 0 and busy = Array.make n 0.0 in
    Array.blit !acct_jobs 0 jobs 0 (Array.length !acct_jobs);
    Array.blit !acct_busy 0 busy 0 (Array.length !acct_busy);
    acct_jobs := jobs;
    acct_busy := busy
  end

let acct_job ~worker ~busy =
  Mutex.lock acct_mutex;
  acct_grow (worker + 1);
  !acct_jobs.(worker) <- !acct_jobs.(worker) + 1;
  !acct_busy.(worker) <- !acct_busy.(worker) +. busy;
  Mutex.unlock acct_mutex

let global_worker_stats () =
  Mutex.lock acct_mutex;
  let stats =
    Array.init (Array.length !acct_jobs) (fun i ->
        { jobs = !acct_jobs.(i); busy_s = !acct_busy.(i) })
  in
  Mutex.unlock acct_mutex;
  stats

let global_pools () = !acct_pools

let reset_global_stats () =
  Mutex.lock acct_mutex;
  acct_jobs := [||];
  acct_busy := [||];
  acct_pools := 0;
  Mutex.unlock acct_mutex

(* --- workers --- *)

let rec worker pool index =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.jobs do
    Condition.wait pool.nonempty pool.mutex
  done;
  let job = Queue.pop pool.jobs in
  Mutex.unlock pool.mutex;
  match job with
  | Quit -> ()
  | Run f ->
    let t0 = Unix.gettimeofday () in
    f ();
    let busy = Unix.gettimeofday () -. t0 in
    Mutex.lock pool.mutex;
    pool.w_jobs.(index) <- pool.w_jobs.(index) + 1;
    pool.w_busy.(index) <- pool.w_busy.(index) +. busy;
    Mutex.unlock pool.mutex;
    acct_job ~worker:index ~busy;
    worker pool index

let create ?(domains = default_domains ()) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      workers = [||];
      live = true;
      created_at = Unix.gettimeofday ();
      w_jobs = Array.make domains 0;
      w_busy = Array.make domains 0.0;
    }
  in
  pool.workers <-
    Array.init domains (fun i -> Domain.spawn (fun () -> worker pool i));
  Mutex.lock acct_mutex;
  incr acct_pools;
  Mutex.unlock acct_mutex;
  pool

let size pool = Array.length pool.workers

let worker_stats pool =
  Mutex.lock pool.mutex;
  let stats =
    Array.init (Array.length pool.w_jobs) (fun i ->
        { jobs = pool.w_jobs.(i); busy_s = pool.w_busy.(i) })
  in
  Mutex.unlock pool.mutex;
  stats

let wall_s pool = Unix.gettimeofday () -. pool.created_at

let shutdown pool =
  if pool.live then begin
    pool.live <- false;
    Mutex.lock pool.mutex;
    Array.iter (fun _ -> Queue.add Quit pool.jobs) pool.workers;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers
  end

let run_list pool thunks =
  if not pool.live then invalid_arg "Pool.run_list: pool is shut down";
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ ->
    let thunks = Array.of_list thunks in
    let n = Array.length thunks in
    let results = Array.make n None in
    (* Lowest input index wins when several jobs raise, so the propagated
       exception does not depend on worker timing. *)
    let error = ref None in
    let remaining = ref n in
    let finished = Condition.create () in
    Mutex.lock pool.mutex;
    for i = 0 to n - 1 do
      let work () =
        let outcome =
          match thunks.(i) () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.mutex;
        (match outcome with
        | Ok v -> results.(i) <- Some v
        | Error err -> (
          match !error with
          | Some (j, _) when j < i -> ()
          | Some _ | None -> error := Some (i, err)));
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock pool.mutex
      in
      Queue.add (Run work) pool.jobs
    done;
    Condition.broadcast pool.nonempty;
    while !remaining > 0 do
      Condition.wait finished pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (match !error with
    | Some (_, (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all jobs ran *))
         results)

(* --- incremental submission (the serve daemon's entry point) --- *)

type 'a outcome =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a ticket = {
  t_mutex : Mutex.t;
  t_done : Condition.t;
  mutable t_outcome : 'a outcome;
}

let submit pool f =
  if not pool.live then invalid_arg "Pool.submit: pool is shut down";
  let ticket =
    { t_mutex = Mutex.create (); t_done = Condition.create ();
      t_outcome = Pending }
  in
  let work () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock ticket.t_mutex;
    ticket.t_outcome <- outcome;
    Condition.broadcast ticket.t_done;
    Mutex.unlock ticket.t_mutex
  in
  Mutex.lock pool.mutex;
  Queue.add (Run work) pool.jobs;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mutex;
  ticket

let await ticket =
  Mutex.lock ticket.t_mutex;
  while (match ticket.t_outcome with Pending -> true | _ -> false) do
    Condition.wait ticket.t_done ticket.t_mutex
  done;
  let outcome = ticket.t_outcome in
  Mutex.unlock ticket.t_mutex;
  match outcome with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map_pool pool f xs = run_list pool (List.map (fun x -> fun () -> f x) xs)

let map ?domains f xs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains < 1 then invalid_arg "Pool.map: domains must be >= 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when domains = 1 -> List.map f xs
  | _ ->
    let pool = create ~domains:(min domains (List.length xs)) () in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () -> map_pool pool f xs)
