(* Hierarchical timing wheel: the O(1) event queue behind [Sched].

   Eight levels of 32 slots, over a coarse 2^12 ns level-0 granule,
   cover 2^52 ns (~52 simulated days) of future; a timer at distance d
   lands at the level whose granule just contains d (the highest 5-bit
   block above the granule in which [key lxor now] differs), so
   insertion is a shift and a mask, not a sift.  Cells are
   intrusive: every timer lives in one slot's doubly-linked list, so
   cancellation unlinks in O(1) — no dead weight left behind, no
   periodic compaction, unlike the binary heap this replaces.

   Cells are parallel int arrays plus one [Obj.t] value array (same
   soundness argument as [Heap]: a flat ['a array] would be unsound for
   ['a = float]).  Freed cells chain through [nexts] as a free list, so
   steady-state push/cancel/pop allocates nothing.

   Ordering is exact, not approximate: [min_key_exn]/[min_tie_exn]/
   [pop_exn] return the true (key, tie)-lexicographic minimum.  The
   wheel cascades the lowest occupied slot down a level at a time until
   level 0 is occupied; the current level-0 slot (at most ~4 us worth
   of keys) is sorted once when it becomes current and kept sorted by
   in-position insertion, so pops from it are O(1) head removals.  [now]
   (the wheel's notion of "no key below this will pop next") only ever
   advances to a granule start that is <= every key still queued, so
   cascading on a peek — which [Sched.run ~until] does without popping
   — can never strand a later, earlier-keyed push: a push below [now]
   (possible only through that peek path, or through deliberate abuse
   by the equivalence fuzzer) is placed in sorted position in the
   *current* level-0 slot, so overdue entries still pop first and in
   the right order.

   Entries beyond the span go to an overflow binary heap and
   migrate into the wheel once it drains down to them; cancelling an
   overflow entry marks it dead and the heap is compacted when dead
   entries outnumber live ones (the same amortisation the old
   all-heap scheduler used for everything). *)

type 'a t = {
  mutable keys : int array;
  mutable ties : int array;
  mutable values : Obj.t array;
  mutable nexts : int array; (* slot list forward link / free-list link *)
  mutable prevs : int array;
  mutable locs : int array;  (* level*32+slot, or loc_{ovf,ovf_dead,free} *)
  mutable free_head : int;
  slots : int array;         (* levels*32 list heads, -1 = empty *)
  bitmaps : int array;       (* per level: bit s set iff slot s occupied *)
  mutable levels_mask : int; (* bit l set iff bitmaps.(l) <> 0 *)
  mutable now : int;
  mutable live : int;        (* queued and not cancelled, incl. overflow *)
  mutable hot : int;         (* cached min cell, -1 = recompute *)
  overflow : int Heap.t;     (* cell indices keyed by (key, tie) *)
  mutable overflow_dead : int;
  mutable cascades : int;    (* diagnostic: slot redistributions *)
  mutable sorted_slot : int; (* level-0 slot whose list is kept in
                                (key, tie) order, -1 = none; pops from
                                it are O(1) head removals *)
  mutable scratch : int array; (* cell-index buffer for slot sorting *)
}

let bits = 5
let slot_count = 1 lsl bits (* 32 *)
let slot_mask = slot_count - 1
let levels = 8

(* Level-0 slots are deliberately coarse: one slot covers [2^shift] ns
   (~4 us), so the microsecond-scale timers the simulator actually
   arms (serialisation, pacing, delayed-ACK) place directly at level 0
   or 1 and cascade at most once instead of filtering down four levels
   one redistribution at a time.  Ordering stays exact — the current
   slot is sorted by full (key, tie) — so coarseness trades one
   O(k log k) slot sort for most of the cascade traffic, and pops stay
   O(1).  The span grows to 2^52 ns (~52 simulated days). *)
let shift = 12
let span = 1 lsl (shift + (bits * levels)) (* 2^52 ns *)

let loc_ovf = -2 (* queued in the overflow heap *)
let loc_ovf_dead = -3 (* cancelled, awaiting overflow compaction *)
let loc_free = -4

let nil = Obj.repr 0

let create ?(capacity = 256) () =
  let capacity = max capacity 1 in
  let t =
    {
      keys = Array.make capacity 0;
      ties = Array.make capacity 0;
      values = Array.make capacity nil;
      nexts = Array.make capacity (-1);
      prevs = Array.make capacity (-1);
      locs = Array.make capacity loc_free;
      free_head = 0;
      slots = Array.make (levels * slot_count) (-1);
      bitmaps = Array.make levels 0;
      levels_mask = 0;
      now = 0;
      live = 0;
      hot = -1;
      overflow = Heap.create ~capacity:16 ();
      overflow_dead = 0;
      cascades = 0;
      sorted_slot = -1;
      scratch = Array.make 16 (-1);
    }
  in
  for i = 0 to capacity - 1 do
    t.nexts.(i) <- (if i = capacity - 1 then -1 else i + 1)
  done;
  t

let length t = t.live
let is_empty t = t.live = 0
let now t = t.now
let cascade_count t = t.cascades

(* Index of the highest set bit (0-based); [x] > 0. *)
let hibit x =
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then incr r;
  !r

(* Index of the lowest set bit; [x] > 0. *)
let lobit x = hibit (x land -x)

let grow t =
  let cap = Array.length t.keys in
  let fresh = 2 * cap in
  let extend a fill =
    let b = Array.make fresh fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.keys <- extend t.keys 0;
  t.ties <- extend t.ties 0;
  t.values <- extend t.values nil;
  t.nexts <- extend t.nexts (-1);
  t.prevs <- extend t.prevs (-1);
  t.locs <- extend t.locs loc_free;
  for i = cap to fresh - 1 do
    t.nexts.(i) <- (if i = fresh - 1 then t.free_head else i + 1)
  done;
  t.free_head <- cap

let alloc t =
  if t.free_head < 0 then grow t;
  let c = t.free_head in
  t.free_head <- t.nexts.(c);
  c

let free t c =
  t.locs.(c) <- loc_free;
  t.values.(c) <- nil;
  t.prevs.(c) <- -1;
  t.nexts.(c) <- t.free_head;
  t.free_head <- c

(* Link cell [c] into the slot its key calls for, relative to [t.now].
   Keys at or below [now] (overdue; see the header comment) go into the
   current level-0 slot. *)
let place t c =
  let key = t.keys.(c) in
  let lvl, slot =
    if key <= t.now then 0, (t.now lsr shift) land slot_mask
    else begin
      let d = hibit (key lxor t.now) in
      let l = if d < shift then 0 else (d - shift) / bits in
      if l >= levels then -1, 0
      else l, (key lsr (shift + (bits * l))) land slot_mask
    end
  in
  if lvl < 0 then begin
    t.locs.(c) <- loc_ovf;
    Heap.push t.overflow ~key ~tie:t.ties.(c) c
  end
  else begin
    let sl = (lvl lsl bits) lor slot in
    if sl = t.sorted_slot then begin
      (* Insert in (key, tie) position so the current slot stays a
         sorted list and pops stay O(1) head removals. *)
      let tie = t.ties.(c) in
      let prev = ref (-1) and cur = ref t.slots.(sl) in
      while
        !cur >= 0
        && (let ck = t.keys.(!cur) in
            ck < key || (ck = key && t.ties.(!cur) < tie))
      do
        prev := !cur;
        cur := t.nexts.(!cur)
      done;
      t.nexts.(c) <- !cur;
      t.prevs.(c) <- !prev;
      if !cur >= 0 then t.prevs.(!cur) <- c;
      if !prev >= 0 then t.nexts.(!prev) <- c else t.slots.(sl) <- c;
      t.locs.(c) <- sl
    end
    else begin
      let head = t.slots.(sl) in
      t.nexts.(c) <- head;
      t.prevs.(c) <- -1;
      if head >= 0 then t.prevs.(head) <- c;
      t.slots.(sl) <- c;
      t.locs.(c) <- sl;
      t.bitmaps.(lvl) <- t.bitmaps.(lvl) lor (1 lsl slot);
      t.levels_mask <- t.levels_mask lor (1 lsl lvl)
    end
  end

let push t ~key ~tie v =
  if key < 0 then invalid_arg "Wheel.push: negative key";
  let c = alloc t in
  t.keys.(c) <- key;
  t.ties.(c) <- tie;
  t.values.(c) <- Obj.repr v;
  place t c;
  t.live <- t.live + 1;
  (* The cached minimum survives a push that cannot beat it, so a peek /
     push / pop sequence (the [Sched.run ~until] shape) does not rescan
     the slot for every arming. *)
  (if t.hot >= 0 then
     let hk = t.keys.(t.hot) in
     if key < hk || (key = hk && tie < t.ties.(t.hot)) then t.hot <- -1);
  c

let unlink t c sl =
  let p = t.prevs.(c) and n = t.nexts.(c) in
  if p >= 0 then t.nexts.(p) <- n else t.slots.(sl) <- n;
  if n >= 0 then t.prevs.(n) <- p;
  if t.slots.(sl) < 0 then begin
    let lvl = sl lsr bits and slot = sl land slot_mask in
    t.bitmaps.(lvl) <- t.bitmaps.(lvl) land lnot (1 lsl slot);
    if t.bitmaps.(lvl) = 0 then
      t.levels_mask <- t.levels_mask land lnot (1 lsl lvl);
    if sl = t.sorted_slot then t.sorted_slot <- -1
  end

let compact_overflow t =
  Heap.compact t.overflow ~keep:(fun ~tie:_ c ->
      if t.locs.(c) = loc_ovf_dead then begin
        free t c;
        false
      end
      else true);
  t.overflow_dead <- 0

let cancel t c =
  match t.locs.(c) with
  | l when l >= 0 ->
    unlink t c l;
    free t c;
    t.live <- t.live - 1;
    if t.hot = c then t.hot <- -1
  | l when l = loc_ovf ->
    t.locs.(c) <- loc_ovf_dead;
    t.live <- t.live - 1;
    t.overflow_dead <- t.overflow_dead + 1;
    if t.overflow_dead * 2 > Heap.length t.overflow then compact_overflow t
  | _ -> invalid_arg "Wheel.cancel: stale handle"

(* Move every cell of slot (lvl, slot) down a level (or several).
   Advances [now] to the slot's granule start — which is <= every key
   still queued, since this only runs when all lower levels are empty
   and (lvl, slot) is the lowest occupied slot. *)
let cascade t lvl slot =
  let granule = shift + (bits * lvl) in
  let base = t.now land lnot ((1 lsl (granule + bits)) - 1) in
  let g = base lor (slot lsl granule) in
  if g > t.now then t.now <- g;
  let sl = (lvl lsl bits) lor slot in
  let cell = ref t.slots.(sl) in
  t.slots.(sl) <- -1;
  t.bitmaps.(lvl) <- t.bitmaps.(lvl) land lnot (1 lsl slot);
  if t.bitmaps.(lvl) = 0 then
    t.levels_mask <- t.levels_mask land lnot (1 lsl lvl);
  if lvl = 1 then begin
    (* Common case: a level-1 slot spans exactly level 0's full window,
       so with [now] at its base every cell lands at level 0 — link
       directly by slot index, skipping [place]'s level search (the
       sorted slot cannot be active here: level 0 was empty). *)
    let nexts = t.nexts and prevs = t.prevs and locs = t.locs in
    while !cell >= 0 do
      let c = !cell in
      cell := nexts.(c);
      let s0 = (t.keys.(c) lsr shift) land slot_mask in
      let head = t.slots.(s0) in
      nexts.(c) <- head;
      prevs.(c) <- -1;
      if head >= 0 then prevs.(head) <- c;
      t.slots.(s0) <- c;
      locs.(c) <- s0;
      t.bitmaps.(0) <- t.bitmaps.(0) lor (1 lsl s0)
    done;
    if t.bitmaps.(0) <> 0 then t.levels_mask <- t.levels_mask lor 1
  end
  else
    while !cell >= 0 do
      let c = !cell in
      cell := t.nexts.(c);
      place t c
    done;
  t.cascades <- t.cascades + 1

(* The wheel proper is empty: advance [now] to the overflow minimum and
   pull every entry now within the wheel's span back in. *)
let migrate_overflow t =
  let rec clean_root () =
    match Heap.peek t.overflow with
    | Some (_, _, c) when t.locs.(c) = loc_ovf_dead ->
      ignore (Heap.pop_exn t.overflow : int);
      free t c;
      t.overflow_dead <- t.overflow_dead - 1;
      clean_root ()
    | _ -> ()
  in
  clean_root ();
  if Heap.is_empty t.overflow then invalid_arg "Wheel: empty";
  let k = Heap.min_key_exn t.overflow in
  if k > t.now then t.now <- k;
  let continue = ref true in
  while !continue && not (Heap.is_empty t.overflow) do
    if Heap.min_key_exn t.overflow lxor t.now < span then begin
      let c = Heap.pop_exn t.overflow in
      if t.locs.(c) = loc_ovf_dead then begin
        free t c;
        t.overflow_dead <- t.overflow_dead - 1
      end
      else place t c
    end
    else continue := false
  done

(* Sort level-0 slot [slot]'s cells into (key, tie) order and relink
   them: insertion sort for typical small slots, heapsort above that so
   a pathologically dense slot stays O(k log k).  Once sorted (and with
   {!place} inserting in position), every pop from the slot is an O(1)
   head removal instead of an O(k) rescan.

   [now] advances to the slot's granule start first.  That is sound —
   this is the lowest occupied slot, so every queued key is at or above
   its base — and it makes the sorted slot the *current* slot: any
   later level-0 placement must land in it or above it (a key in a
   lower slot index would be in the next wheel revolution, hence at
   level >= 1), which is what lets {!ensure_hot} trust the slot head
   without rescanning the bitmaps.

   The comparator and heapsort sift live at module level and take the
   arrays as arguments: local versions would capture them in a closure
   allocated on every [sort_slot] call — and with the simulation's
   sparse timers this runs roughly once per event, so those few words
   were visible in the words-per-packet budget. *)
let cell_before keys ties a b =
  let ka : int = keys.(a) and kb : int = keys.(b) in
  ka < kb || (ka = kb && ties.(a) < ties.(b))

let rec sift keys ties a root len =
  let l = (2 * root) + 1 in
  if l < len then begin
    let child =
      if l + 1 < len && cell_before keys ties a.(l) a.(l + 1) then l + 1
      else l
    in
    if cell_before keys ties a.(root) a.(child) then begin
      let tmp = a.(root) in
      a.(root) <- a.(child);
      a.(child) <- tmp;
      sift keys ties a child len
    end
  end

let sort_slot t slot =
  let base =
    t.now land lnot ((1 lsl (shift + bits)) - 1) lor (slot lsl shift)
  in
  if base > t.now then t.now <- base;
  let keys = t.keys and ties = t.ties in
  let n = ref 0 in
  let c = ref t.slots.(slot) in
  while !c >= 0 do
    if !n >= Array.length t.scratch then begin
      let bigger = Array.make (2 * Array.length t.scratch) (-1) in
      Array.blit t.scratch 0 bigger 0 !n;
      t.scratch <- bigger
    end;
    t.scratch.(!n) <- !c;
    incr n;
    c := t.nexts.(!c)
  done;
  let a = t.scratch and n = !n in
  if n > 1 then
    if n <= 48 then
      for i = 1 to n - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && cell_before keys ties x a.(!j) do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      for i = (n / 2) - 1 downto 0 do
        sift keys ties a i n
      done;
      for last = n - 1 downto 1 do
        let tmp = a.(0) in
        a.(0) <- a.(last);
        a.(last) <- tmp;
        sift keys ties a 0 last
      done
    end;
  if n > 0 then begin
    t.slots.(slot) <- a.(0);
    t.prevs.(a.(0)) <- -1;
    for i = 0 to n - 2 do
      t.nexts.(a.(i)) <- a.(i + 1);
      t.prevs.(a.(i + 1)) <- a.(i)
    done;
    t.nexts.(a.(n - 1)) <- -1
  end;
  t.sorted_slot <- slot

(* Find (and cache) the live minimum.  Fast path: while a sorted slot is
   active it is non-empty (unlink resets it on empty) and it is the
   lowest occupied slot (placement can only add to it or above, and
   overflow keys are beyond every in-wheel key), so its head IS the
   minimum — no bitmap scan.  Slow path: cascade until level 0 is
   occupied, then sort the lowest level-0 slot (once — it stays sorted
   while current) and take its head. *)
let ensure_hot t =
  if t.hot < 0 then
    if t.sorted_slot >= 0 then t.hot <- t.slots.(t.sorted_slot)
    else begin
      if t.live = 0 then invalid_arg "Wheel: empty";
      if t.levels_mask = 0 then migrate_overflow t;
      while t.levels_mask land 1 = 0 do
        let lvl = lobit t.levels_mask in
        cascade t lvl (lobit t.bitmaps.(lvl))
      done;
      let slot = lobit t.bitmaps.(0) in
      sort_slot t slot;
      t.hot <- t.slots.(slot)
    end

let min_key_exn t =
  ensure_hot t;
  t.keys.(t.hot)

let min_tie_exn t =
  ensure_hot t;
  t.ties.(t.hot)

let pop_exn t =
  ensure_hot t;
  let c = t.hot in
  let key = t.keys.(c) and v = t.values.(c) in
  unlink t c t.locs.(c);
  free t c;
  t.live <- t.live - 1;
  t.hot <- -1;
  if key > t.now then t.now <- key;
  Obj.obj v
