(** Imperative binary min-heap, specialised to integer priorities.

    This is the event queue of the simulator, so it favours raw speed:
    a growable array, no functors, integer keys.  Ties are broken by a
    secondary integer key supplied at insertion (the scheduler uses a
    monotonically increasing sequence number, giving FIFO order among
    simultaneous events and hence deterministic replay). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap with [capacity] slots preallocated (default 256);
    the heap grows as needed. *)

val length : 'a t -> int

val capacity : 'a t -> int
(** Current number of allocated slots (>= {!length}). *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> tie:int -> 'a -> unit
(** [push h ~key ~tie v] inserts [v] with primary priority [key]; among
    equal keys the smaller [tie] pops first. *)

val pop : 'a t -> (int * int * 'a) option
(** Removes and returns the minimum [(key, tie, value)]. *)

val min_key_exn : 'a t -> int
(** Key of the minimum entry without removing it.  Raises
    [Invalid_argument] when empty.  Together with {!pop_exn} this is the
    scheduler's allocation-free pop protocol: read the key, then take
    the value, no option or tuple boxed per event. *)

val min_tie_exn : 'a t -> int
(** Tie of the minimum entry without removing it.  Raises
    [Invalid_argument] when empty.  The scheduler tags its entries
    through the tie's low bit, so dispatch needs the root's tie before
    deciding how to interpret the popped value. *)

val pop_exn : 'a t -> 'a
(** Removes the minimum entry and returns its value alone.  Raises
    [Invalid_argument] when empty. *)

val peek : 'a t -> (int * int * 'a) option
(** Returns the minimum without removing it. *)

val clear : 'a t -> unit
(** Empties the heap.  Freed slots are overwritten, so cleared (and
    popped) values are not retained. *)

val compact : 'a t -> keep:(tie:int -> 'a -> bool) -> unit
(** [compact h ~keep] drops every entry whose value fails [keep], in
    O(n).  [keep] also sees the entry's tie, so a caller that encodes a
    value discriminant there (the scheduler's anonymous-timer bit) can
    avoid misreading the value.  Surviving entries keep their
    [(key, tie)] pair, so their pop order is unchanged.  The scheduler
    uses this to purge cancelled timers before they reach the root. *)

val fold : 'a t -> init:'b -> f:('b -> key:int -> 'a -> 'b) -> 'b
(** Folds over live entries in unspecified order (used for diagnostics). *)
