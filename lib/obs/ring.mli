(** Fixed-capacity ring buffer that keeps the most recent elements.

    The backing array is allocated once at {!create}; a [push] past
    capacity overwrites the oldest element.  This bounds both the memory
    and the per-event cost of tracing: a long simulation keeps the tail
    of its event stream instead of growing without limit. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** O(1).  Overwrites the oldest element once the ring is full. *)

val length : 'a t -> int
(** Elements currently held, [<= capacity]. *)

val pushed : 'a t -> int
(** Total number of pushes over the ring's lifetime. *)

val overwritten : 'a t -> int
(** Number of elements lost to overwriting, i.e.
    [pushed - length]. *)

val to_list : 'a t -> 'a list
(** Current contents, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Applies [f] to the contents, oldest first. *)

val clear : 'a t -> unit
(** Empties the ring (capacity unchanged). *)
