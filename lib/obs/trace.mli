(** Structured trace layer: a bounded ring of typed events with both
    simulated and wall-clock timestamps, exportable as Chrome
    [about://tracing] JSON (loads in Perfetto) and as CSV.

    Events live on integer {e tracks} (Chrome "thread" ids) so that
    related events render as one timeline lane: the event loop, each
    MPTCP subflow, each link direction.  The ring keeps the most recent
    [capacity] events (see {!Ring}); {!recorded}/{!dropped} say how much
    of the run the export covers. *)

type kind =
  | Loop_dispatch  (** the event loop dispatched a timer callback *)
  | Link_enqueue  (** a packet was admitted to a link buffer *)
  | Link_dequeue  (** a packet was delivered at the far end of a link *)
  | Link_drop  (** a packet was discarded by the qdisc *)
  | Link_lost  (** a packet was destroyed by a downed link *)
  | Tcp_sent  (** a fresh data segment left a subflow sender *)
  | Tcp_retransmit  (** a retransmitted segment left a subflow sender *)
  | Tcp_ack  (** a cumulative ACK advanced [snd_una] *)
  | Tcp_cwnd  (** congestion control changed the window *)
  | Tcp_state  (** the sender crossed a loss-state boundary *)
  | Tcp_rx  (** a receiver delivered an in-order segment *)
  | Sched_grant  (** the MPTCP scheduler mapped bytes onto a subflow *)
  | Sched_defer  (** the MPTCP scheduler steered a request elsewhere *)
  | Reinject  (** a head-of-line-blocking chunk was re-sent *)
  | Subflow_state  (** a subflow was declared dead or usable again *)
  | Audit_violation  (** the invariant auditor flagged a violation *)
  | Metrics_snapshot  (** the metrics registry was sampled *)
  | Span_begin  (** start of a user-defined span (Chrome ["B"]) *)
  | Span_end  (** end of a user-defined span (Chrome ["E"]) *)

val kind_name : kind -> string
(** Stable dotted name used in both export formats, e.g.
    ["link.enqueue"], ["tcp.cwnd"], ["mptcp.sched.grant"]. *)

type event = {
  kind : kind;
  sim_ns : int;  (** simulated time (integer nanoseconds) *)
  wall_ns : int;  (** wall-clock nanoseconds since the trace was created *)
  track : int;  (** timeline lane (Chrome [tid]) *)
  a : int;  (** kind-specific payload, e.g. sequence number *)
  b : int;  (** kind-specific payload, e.g. length in bytes *)
  label : string;  (** free-form annotation; [""] for most events *)
}

type t

val create : ?capacity:int -> unit -> t
(** A fresh trace ring; default capacity 65536 events. *)

val record :
  t -> kind -> sim_ns:int -> track:int -> ?a:int -> ?b:int -> ?label:string
  -> unit -> unit
(** Appends one event, stamping the wall clock.  O(1); overwrites the
    oldest event when the ring is full. *)

val name_track : t -> int -> string -> unit
(** Associates a human-readable name with a track; exported as Chrome
    [thread_name] metadata so Perfetto labels the lane. *)

val events : t -> event list
(** Current ring contents, oldest first (ascending [sim_ns]). *)

val recorded : t -> int
(** Total events recorded over the trace's lifetime. *)

val dropped : t -> int
(** Events lost to ring overwrites ([recorded] minus what {!events}
    returns). *)

val write_chrome : t -> out_channel -> unit
(** Chrome trace-event JSON: a single array, one event object per line.
    [ts] is simulated time in microseconds, [pid] is 0, [tid] the track;
    instants use [ph:"i"], spans ["B"]/["E"].  Kind payloads and the
    wall-clock stamp ride in [args].  Loads directly in
    [about://tracing] and {{:https://ui.perfetto.dev}Perfetto}. *)

val write_csv : t -> out_channel -> unit
(** CSV with header [kind,sim_ns,wall_ns,track,a,b,label], one event
    per row, oldest first. *)
