(** Metrics registry: named counters, gauges and histograms, sampled
    into timestamped snapshots and dumped as CSV.

    Names are dotted and layer-prefixed ([engine.events_dispatched],
    [netsim.pkts_dropped], [tcp.retransmits], [mptcp.delivered_bytes],
    [core.wall_time_s] — see doc/OBSERVABILITY.md for the full list).
    Snapshots list values in name order, so two runs that take snapshots
    at the same simulated times produce identical output — the property
    the determinism tests rely on (wall-clock metrics excepted). *)

type t

type counter
(** Monotone integer count; one mutable increment on the hot path. *)

type histogram
(** Streaming aggregate (count/sum/min/max); no per-sample storage. *)

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or retrieves) the counter [name].  Raises
    [Invalid_argument] when [name] is already registered as a different
    instrument kind. *)

val incr : ?by:int -> counter -> unit

val value : counter -> int

val gauge : t -> string -> (unit -> float) -> unit
(** Registers a callback gauge: sampled lazily at each {!snapshot}.
    Re-registration replaces the callback. *)

val histogram : t -> string -> histogram
(** Registers (or retrieves) the histogram [name]; snapshots expand it
    to [name.count], [name.sum], [name.min], [name.max], [name.mean]. *)

val observe : histogram -> float -> unit

val set : t -> string -> float -> unit
(** Sets the plain value [name] (registering it on first use) — for
    one-off end-of-run facts such as [core.wall_time_s]. *)

type snapshot = {
  sim_ns : int;
  values : (string * float) list;  (** sorted by name *)
}

val snapshot : t -> sim_ns:int -> unit
(** Samples every instrument now and appends a {!snapshot}. *)

val snapshots : t -> snapshot list
(** All snapshots taken so far, oldest first. *)

val latest : t -> snapshot option
(** The most recent snapshot — the end-of-run state when the scenario
    layer has just taken its final sample.  O(1), unlike walking
    {!snapshots}. *)

val write_csv : t -> out_channel -> unit
(** Long-format CSV with header [sim_ns,name,value]: one row per
    (snapshot, instrument), snapshots in time order, names sorted within
    each snapshot.  Values print with [%.17g] so reading them back is
    lossless. *)
