type 'a t = {
  data : 'a option array;
  mutable next : int; (* next write slot *)
  mutable pushed : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { data = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.data

let push t x =
  t.data.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.data;
  t.pushed <- t.pushed + 1

let length t = min t.pushed (Array.length t.data)
let pushed t = t.pushed
let overwritten t = t.pushed - length t

let get_exn t i =
  match t.data.(i) with Some x -> x | None -> assert false

let iter f t =
  let cap = Array.length t.data in
  if t.pushed <= cap then
    for i = 0 to t.pushed - 1 do
      f (get_exn t i)
    done
  else
    for k = 0 to cap - 1 do
      f (get_exn t ((t.next + k) mod cap))
    done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.next <- 0;
  t.pushed <- 0
