type kind =
  | Loop_dispatch
  | Link_enqueue
  | Link_dequeue
  | Link_drop
  | Link_lost
  | Tcp_sent
  | Tcp_retransmit
  | Tcp_ack
  | Tcp_cwnd
  | Tcp_state
  | Tcp_rx
  | Sched_grant
  | Sched_defer
  | Reinject
  | Subflow_state
  | Audit_violation
  | Metrics_snapshot
  | Span_begin
  | Span_end

let kind_name = function
  | Loop_dispatch -> "loop.dispatch"
  | Link_enqueue -> "link.enqueue"
  | Link_dequeue -> "link.dequeue"
  | Link_drop -> "link.drop"
  | Link_lost -> "link.lost"
  | Tcp_sent -> "tcp.sent"
  | Tcp_retransmit -> "tcp.retransmit"
  | Tcp_ack -> "tcp.ack"
  | Tcp_cwnd -> "tcp.cwnd"
  | Tcp_state -> "tcp.state"
  | Tcp_rx -> "tcp.rx"
  | Sched_grant -> "mptcp.sched.grant"
  | Sched_defer -> "mptcp.sched.defer"
  | Reinject -> "mptcp.reinject"
  | Subflow_state -> "mptcp.subflow.state"
  | Audit_violation -> "audit.violation"
  | Metrics_snapshot -> "metrics.snapshot"
  | Span_begin -> "span"
  | Span_end -> "span"

type event = {
  kind : kind;
  sim_ns : int;
  wall_ns : int;
  track : int;
  a : int;
  b : int;
  label : string;
}

type t = {
  ring : event Ring.t;
  wall0 : float;
  track_names : (int, string) Hashtbl.t;
}

let create ?(capacity = 65536) () =
  {
    ring = Ring.create ~capacity;
    wall0 = Unix.gettimeofday ();
    track_names = Hashtbl.create 8;
  }

let record t kind ~sim_ns ~track ?(a = 0) ?(b = 0) ?(label = "") () =
  let wall_ns =
    int_of_float ((Unix.gettimeofday () -. t.wall0) *. 1e9)
  in
  Ring.push t.ring { kind; sim_ns; wall_ns; track; a; b; label }

let name_track t track name = Hashtbl.replace t.track_names track name
let events t = Ring.to_list t.ring
let recorded t = Ring.pushed t.ring
let dropped t = Ring.overwritten t.ring

(* Labels are invariant names and scenario tags — short ASCII — but the
   escaper still covers the full JSON string grammar. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_chrome t oc =
  output_string oc "[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  Hashtbl.fold (fun track name acc -> (track, name) :: acc) t.track_names []
  |> List.sort compare
  |> List.iter (fun (track, name) ->
         emit
           (Printf.sprintf
              {|{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|}
              track (json_escape name)));
  Ring.iter
    (fun e ->
      let name =
        match e.kind with
        | (Span_begin | Span_end) when e.label <> "" -> e.label
        | _ -> kind_name e.kind
      in
      let ts_us = float_of_int e.sim_ns /. 1e3 in
      let common =
        Printf.sprintf
          {|"name":"%s","pid":0,"tid":%d,"ts":%.3f,"args":{"a":%d,"b":%d,"wall_ns":%d%s}|}
          (json_escape name) e.track ts_us e.a e.b e.wall_ns
          (if e.label <> "" && name <> e.label then
             Printf.sprintf {|,"label":"%s"|} (json_escape e.label)
           else "")
      in
      let line =
        match e.kind with
        | Span_begin -> Printf.sprintf {|{"ph":"B",%s}|} common
        | Span_end -> Printf.sprintf {|{"ph":"E",%s}|} common
        | _ -> Printf.sprintf {|{"ph":"i","s":"t",%s}|} common
      in
      emit line)
    t.ring;
  output_string oc "\n]\n"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let write_csv t oc =
  output_string oc "kind,sim_ns,wall_ns,track,a,b,label\n";
  Ring.iter
    (fun e ->
      Printf.fprintf oc "%s,%d,%d,%d,%d,%d,%s\n" (kind_name e.kind) e.sim_ns
        e.wall_ns e.track e.a e.b (csv_escape e.label))
    t.ring
