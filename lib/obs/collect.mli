(** Wiring layer: subscribes a {!Trace} ring and a {!Metrics} registry
    to the simulator's monitor hooks.

    Every attach function {e chains} onto the hook's current subscriber
    (read via the layer's [monitor] getter) instead of replacing it, so
    the collector composes with the audit subsystem: attach the auditor
    first, then the collector.  With both [trace] and [metrics] off the
    collector attaches nothing, and every hook stays [None] — disabled
    runs execute exactly the pre-observability code path.

    Trace tracks: 0 = event loop, 1 = MPTCP scheduler, 2 = audit,
    3 = metrics/meta, [10+i] = subflow [i], [100 + 2*link + dir] = one
    link direction ([dir] 0 forward, 1 reverse). *)

type conf = {
  trace : bool;
  metrics : bool;
  trace_capacity : int;  (** ring size in events *)
}

val default_conf : conf
(** Both layers on, 65536-event ring — what [--trace]/[--metrics]
    request. *)

type t

val create : sched:Engine.Sched.t -> conf -> t
(** A collector stamping events with [sched]'s clock.  The trace ring
    and metrics registry are only allocated for the enabled layers. *)

val trace : t -> Trace.t option
val metrics : t -> Metrics.t option

val enabled : t -> bool
(** Whether any layer is on. *)

val attach_sched : t -> Engine.Sched.t -> unit
(** Event-loop dispatch trace (track 0) and the
    [engine.events_dispatched] counter / [engine.heap_depth] gauge. *)

val attach_net : t -> Netsim.Net.t -> unit
(** Per-link-direction enqueue/dequeue/drop/lost trace events and the
    [netsim.*] packet and byte counters; [netsim.no_route] via the
    network-edge monitor. *)

val attach_connection : t -> Mptcp.Connection.t -> unit
(** Scheduler-decision trace (track 1), per-subflow TCP trace (tracks
    [10+i]) and the [tcp.*] / [mptcp.*] counters and gauges, including
    per-subflow [tcp.cwnd.<i>] and [mptcp.subflow.<i>.goodput_bps]. *)

val violation : t -> invariant:string -> unit
(** Records an audit violation (track 2, [audit.violations] counter).
    Kept generic so this library does not depend on [Audit]; the
    scenario layer bridges [Audit.set_monitor] to it. *)

val snapshot : t -> unit
(** Samples the metrics registry at the current simulated time and
    marks the snapshot on the trace (track 3). *)

val set_value : t -> string -> float -> unit
(** Forwards to {!Metrics.set} when the metrics layer is on — for
    end-of-run facts such as [core.wall_time_s]. *)

val final_metrics : ?drop_wall:bool -> t -> (string * float) list
(** The last metrics snapshot's values (name-sorted), or [[]] when the
    metrics layer is off or never sampled — the per-run capture the
    result store persists.  [drop_wall] (default [true]) filters out
    metrics with "wall" in their name, leaving a fully deterministic
    list. *)
