type conf = { trace : bool; metrics : bool; trace_capacity : int }

let default_conf = { trace = true; metrics = true; trace_capacity = 65536 }

type t = {
  sched : Engine.Sched.t;
  trace : Trace.t option;
  metrics : Metrics.t option;
}

let create ~sched (conf : conf) =
  {
    sched;
    trace =
      (if conf.trace then Some (Trace.create ~capacity:conf.trace_capacity ())
       else None);
    metrics = (if conf.metrics then Some (Metrics.create ()) else None);
  }

let trace t = t.trace
let metrics t = t.metrics
let enabled t = t.trace <> None || t.metrics <> None
let now_ns t = Engine.Sched.now t.sched

let rec_trace t kind ~track ?a ?b ?label () =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr kind ~sim_ns:(now_ns t) ~track ?a ?b ?label ()

(* Chain [f] after a hook's current subscriber. *)
let chain prev f =
  match prev with None -> f | Some g -> fun ev -> g ev; f ev

(* --- tracks --- *)

let track_loop = 0
let track_mptcp = 1
let track_audit = 2
let track_meta = 3
let track_subflow i = 10 + i
let track_link ~link ~dir = 100 + (2 * link) + dir

(* --- engine --- *)

let attach_sched t sched =
  if enabled t then begin
    (match t.trace with
    | Some tr ->
      Trace.name_track tr track_loop "event-loop";
      Trace.name_track tr track_mptcp "mptcp-scheduler";
      Trace.name_track tr track_audit "audit";
      Trace.name_track tr track_meta "metrics"
    | None -> ());
    let count =
      match t.metrics with
      | None -> ignore
      | Some m ->
        Metrics.gauge m "engine.heap_depth" (fun () ->
            float_of_int (Engine.Sched.queue_length sched));
        (* GC counters are process-wide and scheduling-dependent, so —
           like wall-clock gauges — their names carry "wall" to opt out
           of cross-run determinism comparisons. *)
        let gc0 = Engine.Gctune.counters () in
        Metrics.gauge m "gc.wall.minor_collections" (fun () ->
            float_of_int
              ((Engine.Gctune.counters ()).Engine.Gctune.minor_collections
              - gc0.Engine.Gctune.minor_collections));
        Metrics.gauge m "gc.wall.major_collections" (fun () ->
            float_of_int
              ((Engine.Gctune.counters ()).Engine.Gctune.major_collections
              - gc0.Engine.Gctune.major_collections));
        Metrics.gauge m "gc.wall.promoted_words" (fun () ->
            (Engine.Gctune.counters ()).Engine.Gctune.promoted_words
            -. gc0.Engine.Gctune.promoted_words);
        Metrics.gauge m "gc.wall.allocated_words" (fun () ->
            Engine.Gctune.allocated_words
              (Engine.Gctune.diff gc0 (Engine.Gctune.counters ())));
        let c = Metrics.counter m "engine.events_dispatched" in
        fun () -> Metrics.incr c
    in
    let tap _when = count (); rec_trace t Trace.Loop_dispatch ~track:track_loop () in
    Engine.Sched.set_monitor sched
      (Some (chain (Engine.Sched.monitor sched) tap))
  end

(* --- network --- *)

let attach_net t net =
  if enabled t then begin
    (match t.metrics, t.trace with
    | None, None -> ()
    | _ ->
      let counter name =
        match t.metrics with
        | None -> None
        | Some m -> Some (Metrics.counter m name)
      in
      let bump = function
        | None -> ()
        | Some c -> Metrics.incr c
      in
      let bump_by c by =
        match c with None -> () | Some c -> Metrics.incr ~by c
      in
      let enq = counter "netsim.pkts_enqueued"
      and drp = counter "netsim.pkts_dropped"
      and dlv = counter "netsim.pkts_delivered"
      and dlv_b = counter "netsim.bytes_delivered"
      and lost = counter "netsim.pkts_lost_down"
      and nort = counter "netsim.no_route" in
      (* Freelist health: recycled/live counts are functions of the
         deterministic simulation, so they are safe to compare across
         job counts. *)
      (match t.metrics with
      | Some m ->
        let pool = Netsim.Net.pool net in
        Metrics.gauge m "netsim.pool.acquired" (fun () ->
            float_of_int (Packet.Pool.stats pool).Packet.Pool.acquired);
        Metrics.gauge m "netsim.pool.recycled" (fun () ->
            float_of_int (Packet.Pool.stats pool).Packet.Pool.recycled);
        Metrics.gauge m "netsim.pool.live" (fun () ->
            float_of_int (Packet.Pool.live pool))
      | None -> ());
      Netsim.Net.iter_linkqs net (fun ~link ~dir q ->
          let dir_i = match dir with Netsim.Net.Fwd -> 0 | Rev -> 1 in
          let track = track_link ~link ~dir:dir_i in
          (match t.trace with
          | Some tr ->
            Trace.name_track tr track
              (Printf.sprintf "link%d.%s" link
                 (if dir_i = 0 then "fwd" else "rev"))
          | None -> ());
          let tap ev =
            match ev with
            | Netsim.Linkq.Enqueued p ->
              bump enq;
              rec_trace t Trace.Link_enqueue ~track ~a:p.Packet.id
                ~b:p.Packet.size ()
            | Netsim.Linkq.Dropped p ->
              bump drp;
              rec_trace t Trace.Link_drop ~track ~a:p.Packet.id
                ~b:p.Packet.size ()
            | Netsim.Linkq.Delivered p ->
              bump dlv;
              bump_by dlv_b p.Packet.size;
              rec_trace t Trace.Link_dequeue ~track ~a:p.Packet.id
                ~b:p.Packet.size ()
            | Netsim.Linkq.Lost_down p ->
              bump lost;
              rec_trace t Trace.Link_lost ~track ~a:p.Packet.id
                ~b:p.Packet.size ()
          in
          Netsim.Linkq.set_monitor q
            (Some (chain (Netsim.Linkq.monitor q) tap)));
      let edge_tap =
        {
          Netsim.Net.on_inject = (fun ~node:_ _ -> ());
          on_host_deliver = (fun ~node:_ _ -> ());
          on_no_route = (fun ~node:_ _ -> bump nort);
        }
      in
      Netsim.Net.set_monitor net
        (Some
           (match Netsim.Net.monitor net with
           | None -> edge_tap
           | Some prev ->
             {
               Netsim.Net.on_inject =
                 (fun ~node p -> prev.Netsim.Net.on_inject ~node p);
               on_host_deliver =
                 (fun ~node p -> prev.Netsim.Net.on_host_deliver ~node p);
               on_no_route =
                 (fun ~node p ->
                   prev.Netsim.Net.on_no_route ~node p;
                   edge_tap.Netsim.Net.on_no_route ~node p);
             })))
  end

(* --- TCP / MPTCP --- *)

let attach_connection t conn =
  if enabled t then begin
    let counter name =
      match t.metrics with
      | None -> None
      | Some m -> Some (Metrics.counter m name)
    in
    let bump = function None -> () | Some c -> Metrics.incr c in
    let sent = counter "tcp.segments_sent"
    and retx = counter "tcp.retransmits"
    and acks = counter "tcp.acks"
    and rxs = counter "tcp.segments_delivered"
    and grants = counter "mptcp.sched_grants"
    and defers = counter "mptcp.sched_defers"
    and reinj = counter "mptcp.reinjections" in
    (match t.metrics with
    | Some m ->
      Metrics.gauge m "mptcp.delivered_bytes" (fun () ->
          float_of_int (Mptcp.Connection.delivered_bytes conn));
      Metrics.gauge m "mptcp.reassembly_buffered" (fun () ->
          float_of_int (Mptcp.Connection.reassembly_buffered conn));
      Metrics.gauge m "mptcp.reinjections_total" (fun () ->
          float_of_int (Mptcp.Connection.reinjections conn))
    | None -> ());
    let conn_tap ev =
      match ev with
      | Mptcp.Connection.Sched_grant { subflow; dseq; len } ->
        bump grants;
        rec_trace t Trace.Sched_grant ~track:track_mptcp ~a:dseq ~b:len
          ~label:(Printf.sprintf "sf%d" subflow) ()
      | Mptcp.Connection.Sched_defer { subflow; preferred } ->
        bump defers;
        rec_trace t Trace.Sched_defer ~track:track_mptcp ~a:subflow
          ~b:(match preferred with Some j -> j | None -> -1)
          ()
      | Mptcp.Connection.Reinjected { subflow; dseq; len; owner = _ } ->
        bump reinj;
        rec_trace t Trace.Reinject ~track:track_mptcp ~a:dseq ~b:len
          ~label:(Printf.sprintf "sf%d" subflow) ()
      | Mptcp.Connection.Subflow_state { subflow; active } ->
        rec_trace t Trace.Subflow_state ~track:track_mptcp ~a:subflow
          ~b:(if active then 1 else 0)
          ~label:(Printf.sprintf "sf%d" subflow) ()
    in
    Mptcp.Connection.set_monitor conn
      (Some (chain (Mptcp.Connection.monitor conn) conn_tap));
    for i = 0 to Mptcp.Connection.subflow_count conn - 1 do
      let track = track_subflow i in
      let sender = Mptcp.Connection.subflow_sender conn i in
      let receiver = Mptcp.Connection.subflow_receiver conn i in
      (match t.trace with
      | Some tr -> Trace.name_track tr track (Printf.sprintf "subflow%d" i)
      | None -> ());
      (match t.metrics with
      | Some m ->
        Metrics.gauge m (Printf.sprintf "tcp.cwnd.%d" i) (fun () ->
            Tcp.Sender.cwnd sender);
        Metrics.gauge m (Printf.sprintf "mptcp.subflow.%d.goodput_bps" i)
          (fun () ->
            Tcp.Sender.throughput_bps sender ~now:(Engine.Sched.now t.sched))
      | None -> ());
      let sender_tap ev =
        match ev with
        | Tcp.Sender.Seg_sent { seq; len; retx = is_retx } ->
          if is_retx then begin
            bump retx;
            rec_trace t Trace.Tcp_retransmit ~track ~a:seq ~b:len ()
          end
          else begin
            bump sent;
            rec_trace t Trace.Tcp_sent ~track ~a:seq ~b:len ()
          end
        | Tcp.Sender.Ack_advanced { una } ->
          bump acks;
          rec_trace t Trace.Tcp_ack ~track ~a:una ()
        | Tcp.Sender.Cwnd_changed { cwnd } ->
          (* milli-MSS: integer payload keeps the event unboxed-friendly *)
          rec_trace t Trace.Tcp_cwnd ~track
            ~a:(int_of_float (cwnd *. 1000.0))
            ()
        | Tcp.Sender.State_changed { state } ->
          let code, label =
            match state with
            | Tcp.Sender.Open -> (0, "open")
            | Tcp.Sender.Recovery -> (1, "recovery")
            | Tcp.Sender.Loss -> (2, "loss")
          in
          rec_trace t Trace.Tcp_state ~track ~a:code ~label ()
      in
      Tcp.Sender.set_monitor sender
        (Some (chain (Tcp.Sender.monitor sender) sender_tap));
      let receiver_tap (Tcp.Receiver.Delivered { seq; len }) =
        bump rxs;
        rec_trace t Trace.Tcp_rx ~track ~a:seq ~b:len ()
      in
      Tcp.Receiver.set_monitor receiver
        (Some (chain (Tcp.Receiver.monitor receiver) receiver_tap))
    done
  end

(* --- audit bridge and snapshots --- *)

let violation t ~invariant =
  (match t.metrics with
  | Some m -> Metrics.incr (Metrics.counter m "audit.violations")
  | None -> ());
  rec_trace t Trace.Audit_violation ~track:track_audit ~label:invariant ()

let snapshot t =
  match t.metrics with
  | None -> ()
  | Some m ->
    Metrics.snapshot m ~sim_ns:(now_ns t);
    rec_trace t Trace.Metrics_snapshot ~track:track_meta ()

let set_value t name x =
  match t.metrics with None -> () | Some m -> Metrics.set m name x

(* "wall" appears in every wall-clock-derived metric name by
   convention (core.wall_time_s, core.wall_events_per_s), so dropping
   on substring keeps the returned list deterministic. *)
let wall_metric name =
  let n = String.length name and sub = "wall" in
  let rec at i =
    if i + 4 > n then false
    else if String.sub name i 4 = sub then true
    else at (i + 1)
  in
  at 0

let final_metrics ?(drop_wall = true) t =
  match t.metrics with
  | None -> []
  | Some m -> (
    match Metrics.latest m with
    | None -> []
    | Some s ->
      List.filter
        (fun (name, _) -> not (drop_wall && wall_metric name))
        s.Metrics.values)
