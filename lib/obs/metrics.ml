type counter = { mutable count : int }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

type instrument =
  | Counter of counter
  | Gauge of (unit -> float)
  | Histogram of histogram
  | Value of float ref

type snapshot = { sim_ns : int; values : (string * float) list }

type t = {
  instruments : (string, instrument) Hashtbl.t;
  mutable snaps_rev : snapshot list;
}

let create () = { instruments = Hashtbl.create 32; snaps_rev = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Value _ -> "value"

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name existing)
       wanted)

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Counter c) -> c
  | Some other -> clash name other "counter"
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace t.instruments name (Counter c);
    c

let incr ?(by = 1) c = c.count <- c.count + by
let value c = c.count

let gauge t name f =
  match Hashtbl.find_opt t.instruments name with
  | Some (Gauge _) | None -> Hashtbl.replace t.instruments name (Gauge f)
  | Some other -> clash name other "gauge"

let histogram t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (Histogram h) -> h
  | Some other -> clash name other "histogram"
  | None ->
    let h = { n = 0; sum = 0.0; minv = infinity; maxv = neg_infinity } in
    Hashtbl.replace t.instruments name (Histogram h);
    h

let observe h x =
  h.n <- h.n + 1;
  h.sum <- h.sum +. x;
  if x < h.minv then h.minv <- x;
  if x > h.maxv then h.maxv <- x

let set t name x =
  match Hashtbl.find_opt t.instruments name with
  | Some (Value r) -> r := x
  | Some other -> clash name other "value"
  | None -> Hashtbl.replace t.instruments name (Value (ref x))

let sample name = function
  | Counter c -> [ (name, float_of_int c.count) ]
  | Gauge f -> [ (name, f ()) ]
  | Value r -> [ (name, !r) ]
  | Histogram h ->
    let mean = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n in
    [
      (name ^ ".count", float_of_int h.n);
      (name ^ ".sum", h.sum);
      (name ^ ".min", (if h.n = 0 then 0.0 else h.minv));
      (name ^ ".max", (if h.n = 0 then 0.0 else h.maxv));
      (name ^ ".mean", mean);
    ]

let snapshot t ~sim_ns =
  let values =
    Hashtbl.fold (fun name ins acc -> sample name ins @ acc) t.instruments []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  t.snaps_rev <- { sim_ns; values } :: t.snaps_rev

let snapshots t = List.rev t.snaps_rev

let latest t =
  match t.snaps_rev with [] -> None | s :: _ -> Some s

let write_csv t oc =
  output_string oc "sim_ns,name,value\n";
  List.iter
    (fun snap ->
      List.iter
        (fun (name, v) -> Printf.fprintf oc "%d,%s,%.17g\n" snap.sim_ns name v)
        snap.values)
    (snapshots t)
