(** Simulated wire format.

    Models exactly the header fields the reproduction needs: enough TCP to
    run a real congestion-control loop, the MPTCP data-sequence mapping
    (DSS), and the path {e tag} — the short routing identifier from the
    paper (Motiwala et al.'s path splicing / ECMP-style selector) that
    pins each subflow to its pre-installed route.

    Fields are mutable so {!Pool} can rebuild recycled records in place;
    outside the pool and the queues' [ecn] marking, treat packets as
    immutable.  See doc/PERFORMANCE.md for the freelist discipline. *)

type addr = int
(** Node id in the topology. *)

type tag = int
(** Path selector carried by every packet of a subflow.  Forwarding is
    deterministic per (destination, tag). *)

(** MPTCP Data Sequence Signal: maps this segment's payload into the
    connection-level byte stream. *)
type dss = { dseq : int; dlen : int }

type tcp_kind =
  | Syn
  | Syn_ack
  | Data
  | Ack
  | Fin

type tcp = {
  mutable conn : int;       (** connection id, unique per simulation *)
  mutable subflow : int;    (** subflow index within the connection *)
  mutable kind : tcp_kind;
  mutable seq : int;    (** subflow-level sequence of the first payload byte *)
  mutable payload : int;    (** payload length in bytes (0 for pure ACKs) *)
  mutable ack : int;        (** cumulative subflow-level acknowledgement *)
  mutable sack : (int * int) list;
      (** SACK blocks [(start, end_)] above [ack], at most
          {!max_sack_blocks}, most recently changed first (RFC 2018) *)
  mutable ece : bool;  (** ECN Echo: the receiver saw Congestion Experienced *)
  mutable dss : dss option; (** present on MPTCP data segments *)
  mutable data_ack : int;   (** cumulative connection-level acknowledgement *)
}

val max_sack_blocks : int
(** 3, as fits a TCP option block alongside timestamps. *)

type body =
  | Tcp of tcp
  | Plain  (** cross-traffic payload (CBR / on-off generators) *)

(** Explicit Congestion Notification (RFC 3168), reduced to what the
    transport needs: data packets advertise ECN capability and may be
    marked by a queue; ACKs echo the mark until the sender reacts. *)
type ecn =
  | Not_ect   (** not ECN-capable (cross traffic, handshakes) *)
  | Ect       (** ECN-capable transport, unmarked *)
  | Ce        (** congestion experienced: marked by a router *)

type t = {
  mutable id : int;         (** unique wire id, for tracing *)
  mutable src : addr;
  mutable dst : addr;
  mutable tag : tag;
  mutable size : int;  (** total wire size in bytes, headers included *)
  mutable body : body;
  mutable ecn : ecn;        (** queues mark packets in flight *)
  mutable born : Engine.Time.t;  (** when the packet entered the network *)
}

val header_bytes : int
(** Per-segment overhead modelled on IPv4 (20) + TCP (20) + MPTCP DSS
    option (12): 52 bytes. *)

val default_mss : int
(** 1448 payload bytes, so a full data segment is 1500 B on the wire. *)

val wire_bits : t -> int

val is_data : t -> bool
(** [true] for TCP segments carrying payload. *)

val tcp_exn : t -> tcp
(** Raises [Invalid_argument] on non-TCP packets. *)

val make_tcp :
  id:int -> src:addr -> dst:addr -> tag:tag -> born:Engine.Time.t
  -> ?ecn:ecn -> tcp -> t
(** Builds a TCP packet, deriving [size] from kind and payload.
    [ecn] defaults to [Not_ect].  The SACK bound check is O(1). *)

val make_plain :
  id:int -> src:addr -> dst:addr -> tag:tag -> born:Engine.Time.t
  -> size:int -> t
(** Cross-traffic packet of explicit wire [size] (>= 1 byte). *)

val copy : t -> t
(** Deep snapshot (including the TCP header record).  Anything that
    retains a packet past the handler it was delivered to — e.g. a
    capture trace rendered after the run — must copy, because the pool
    may rewrite the original in place once it is released. *)

val poison_id : int
(** The id stamped on released packets (-2); never a valid wire id. *)

val is_poisoned : t -> bool
(** [true] after {!Pool.release} until the record is re-acquired.  Any
    observation of a poisoned packet outside the pool is a lifecycle
    bug (use-after-release). *)

(** Per-{!Netsim.Net} packet freelist.

    The steady-state hot path recycles one record per simulated packet
    instead of allocating: producers acquire, the network releases on
    every terminal fate (host delivery, qdisc drop, link-down loss,
    no-route).  Recycling is deterministic (LIFO), so pooled runs stay
    bit-identical across domain counts.

    In debug mode (enabled by audited scenarios) releases scrub the
    record, double releases and resurrected packets raise [Failure],
    and the audit ledger sees poisoned ids as conservation violations. *)
module Pool : sig
  type packet = t

  type t

  type stats = {
    acquired : int;   (** acquire calls (fresh + recycled) *)
    recycled : int;   (** acquires served from the freelist *)
    released : int;   (** successful releases *)
    double_releases : int;
        (** releases of an already-poisoned packet (0 in a correct run;
            counted rather than raised unless {!debug} is on) *)
  }

  val create : ?debug:bool -> unit -> t
  (** An empty pool; [debug] (default [false]) enables poisoning checks. *)

  val set_debug : t -> bool -> unit
  val debug : t -> bool

  val stats : t -> stats

  val live : t -> int
  (** Packets acquired and not yet released. *)

  val acquire_tcp :
    ?pool:t -> id:int -> src:addr -> dst:addr -> tag:tag
    -> born:Engine.Time.t -> ?ecn:ecn -> conn:int -> subflow:int
    -> kind:tcp_kind -> seq:int -> payload:int -> ack:int
    -> sack:(int * int) list -> ece:bool -> dss:dss option -> data_ack:int
    -> unit -> packet
  (** Like {!make_tcp} but recycles a freelist record when [pool] is
      given and non-empty.  Same validation, zero allocation on the
      recycle path. *)

  val acquire_plain :
    ?pool:t -> id:int -> src:addr -> dst:addr -> tag:tag
    -> born:Engine.Time.t -> size:int -> unit -> packet
  (** Like {!make_plain}, recycling when possible. *)

  val release : t -> packet -> unit
  (** Returns a packet to the freelist.  The caller asserts nothing will
      read the record again.  A double release is counted (and raises
      [Failure] in debug mode); the record is not pushed twice. *)
end

val pp : Format.formatter -> t -> unit
