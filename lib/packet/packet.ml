type addr = int
type tag = int
type dss = { dseq : int; dlen : int }
type tcp_kind = Syn | Syn_ack | Data | Ack | Fin

(* Every field is mutable so the freelist (below) can rebuild a recycled
   record in place instead of allocating a fresh one per segment.  Code
   outside this module and the pool must treat packets as immutable
   (except [ecn], which queues mark in flight). *)
type tcp = {
  mutable conn : int;
  mutable subflow : int;
  mutable kind : tcp_kind;
  mutable seq : int;
  mutable payload : int;
  mutable ack : int;
  mutable sack : (int * int) list;
  mutable ece : bool;
  mutable dss : dss option;
  mutable data_ack : int;
}

type body = Tcp of tcp | Plain

type ecn = Not_ect | Ect | Ce

type t = {
  mutable id : int;
  mutable src : addr;
  mutable dst : addr;
  mutable tag : tag;
  mutable size : int;
  mutable body : body;
  mutable ecn : ecn;
  mutable born : Engine.Time.t;
}

let max_sack_blocks = 3
let header_bytes = 52
let default_mss = 1448
let wire_bits p = p.size * 8

let is_data p =
  match p.body with
  | Tcp { kind = Data; payload; _ } -> payload > 0
  | Tcp _ | Plain -> false

let tcp_exn p =
  match p.body with
  | Tcp tcp -> tcp
  | Plain -> invalid_arg "Packet.tcp_exn: not a TCP packet"

(* O(1) bound check: walks at most [max_sack_blocks + 1] cons cells,
   never the whole list (the old [List.length] was O(n) per packet). *)
let sack_overflows = function
  | _ :: _ :: _ :: _ :: _ -> true
  | _ -> false

let validate_tcp ~payload ~sack ~dss =
  if payload < 0 then invalid_arg "Packet.make_tcp: negative payload";
  if sack_overflows sack then
    invalid_arg "Packet.make_tcp: too many SACK blocks";
  match dss with
  | Some { dlen; _ } when dlen <> payload ->
    invalid_arg "Packet.make_tcp: DSS length must match payload"
  | Some _ | None -> ()

let make_tcp ~id ~src ~dst ~tag ~born ?(ecn = Not_ect) tcp =
  validate_tcp ~payload:tcp.payload ~sack:tcp.sack ~dss:tcp.dss;
  { id; src; dst; tag; size = header_bytes + tcp.payload; body = Tcp tcp;
    ecn; born }

let make_plain ~id ~src ~dst ~tag ~born ~size =
  if size < 1 then invalid_arg "Packet.make_plain: size must be >= 1";
  { id; src; dst; tag; size; body = Plain; ecn = Not_ect; born }

let copy p =
  let body =
    match p.body with
    | Plain -> Plain
    | Tcp tcp ->
      Tcp
        {
          conn = tcp.conn; subflow = tcp.subflow; kind = tcp.kind;
          seq = tcp.seq; payload = tcp.payload; ack = tcp.ack;
          sack = tcp.sack; ece = tcp.ece; dss = tcp.dss;
          data_ack = tcp.data_ack;
        }
  in
  { id = p.id; src = p.src; dst = p.dst; tag = p.tag; size = p.size; body;
    ecn = p.ecn; born = p.born }

(* --- freelist --- *)

let poison_id = -2

let is_poisoned p = p.id == poison_id

module Pool = struct
  type packet = t

  type stats = {
    acquired : int;
    recycled : int;
    released : int;
    double_releases : int;
  }

  type t = {
    mutable free : packet array;
    mutable free_len : int;
    mutable debug : bool;
    mutable acquired : int;
    mutable recycled : int;
    mutable released : int;
    mutable double_releases : int;
  }

  let create ?(debug = false) () =
    { free = [||]; free_len = 0; debug; acquired = 0; recycled = 0;
      released = 0; double_releases = 0 }

  let set_debug t on = t.debug <- on
  let debug t = t.debug

  let stats t =
    { acquired = t.acquired; recycled = t.recycled; released = t.released;
      double_releases = t.double_releases }

  let live t = t.acquired - t.released

  (* Dummy used to fill empty freelist slots so a popped packet is never
     reachable from the pool once handed out. *)
  let dummy () =
    { id = poison_id; src = -1; dst = -1; tag = -1; size = 1; body = Plain;
      ecn = Not_ect; born = 0 }

  let push t p =
    let cap = Array.length t.free in
    if t.free_len = cap then begin
      let fresh = Array.make (max 64 (2 * cap)) (dummy ()) in
      Array.blit t.free 0 fresh 0 t.free_len;
      t.free <- fresh
    end;
    t.free.(t.free_len) <- p;
    t.free_len <- t.free_len + 1

  let pop t =
    if t.free_len = 0 then None
    else begin
      let i = t.free_len - 1 in
      let p = t.free.(i) in
      t.free.(i) <- dummy ();
      t.free_len <- i;
      if t.debug && not (is_poisoned p) then
        failwith
          (Printf.sprintf
             "Packet.Pool: freelist slot holds a live packet (id %d) - a \
              released packet was resurrected"
             p.id);
      Some p
    end

  let release t p =
    if is_poisoned p then begin
      t.double_releases <- t.double_releases + 1;
      if t.debug then
        failwith "Packet.Pool.release: double release of a pooled packet"
    end
    else begin
      t.released <- t.released + 1;
      (* Poison unconditionally: the marker is what detects double
         releases; the remaining fields are scrubbed only in debug mode
         so use-after-release is loud there and free elsewhere. *)
      p.id <- poison_id;
      if t.debug then begin
        p.src <- -1;
        p.dst <- -1;
        p.tag <- -1;
        p.size <- min_int;
        p.ecn <- Not_ect;
        p.born <- -1;
        match p.body with
        | Plain -> ()
        | Tcp tcp ->
          tcp.seq <- min_int;
          tcp.payload <- min_int;
          tcp.ack <- min_int;
          tcp.sack <- [];
          tcp.dss <- None;
          tcp.data_ack <- min_int
      end;
      push t p
    end

  let acquire_tcp ?pool ~id ~src ~dst ~tag ~born ?(ecn = Not_ect) ~conn
      ~subflow ~kind ~seq ~payload ~ack ~sack ~ece ~dss ~data_ack () =
    validate_tcp ~payload ~sack ~dss;
    let size = header_bytes + payload in
    let fresh () =
      { id; src; dst; tag; size; ecn; born;
        body =
          Tcp { conn; subflow; kind; seq; payload; ack; sack; ece; dss;
                data_ack } }
    in
    match pool with
    | None -> fresh ()
    | Some t -> (
      t.acquired <- t.acquired + 1;
      match pop t with
      | None -> fresh ()
      | Some p ->
        t.recycled <- t.recycled + 1;
        p.id <- id;
        p.src <- src;
        p.dst <- dst;
        p.tag <- tag;
        p.size <- size;
        p.ecn <- ecn;
        p.born <- born;
        (match p.body with
        | Tcp tcp ->
          tcp.conn <- conn;
          tcp.subflow <- subflow;
          tcp.kind <- kind;
          tcp.seq <- seq;
          tcp.payload <- payload;
          tcp.ack <- ack;
          tcp.sack <- sack;
          tcp.ece <- ece;
          tcp.dss <- dss;
          tcp.data_ack <- data_ack
        | Plain ->
          p.body <-
            Tcp { conn; subflow; kind; seq; payload; ack; sack; ece; dss;
                  data_ack });
        p)

  let acquire_plain ?pool ~id ~src ~dst ~tag ~born ~size () =
    if size < 1 then invalid_arg "Packet.make_plain: size must be >= 1";
    match pool with
    | None -> make_plain ~id ~src ~dst ~tag ~born ~size
    | Some t -> (
      t.acquired <- t.acquired + 1;
      match pop t with
      | None -> make_plain ~id ~src ~dst ~tag ~born ~size
      | Some p ->
        t.recycled <- t.recycled + 1;
        p.id <- id;
        p.src <- src;
        p.dst <- dst;
        p.tag <- tag;
        p.size <- size;
        p.ecn <- Not_ect;
        p.born <- born;
        p.body <- Plain;
        p)
end

let pp_kind fmt = function
  | Syn -> Format.pp_print_string fmt "SYN"
  | Syn_ack -> Format.pp_print_string fmt "SYN-ACK"
  | Data -> Format.pp_print_string fmt "DATA"
  | Ack -> Format.pp_print_string fmt "ACK"
  | Fin -> Format.pp_print_string fmt "FIN"

let pp fmt p =
  if is_poisoned p then
    Format.fprintf fmt "#<released> %d->%d tag=%d" p.src p.dst p.tag
  else
    match p.body with
    | Plain ->
      Format.fprintf fmt "#%d %d->%d tag=%d plain %dB" p.id p.src p.dst p.tag
        p.size
    | Tcp tcp ->
      Format.fprintf fmt "#%d %d->%d tag=%d %a c%d.s%d seq=%d len=%d ack=%d%a"
        p.id p.src p.dst p.tag pp_kind tcp.kind tcp.conn tcp.subflow tcp.seq
        tcp.payload tcp.ack
        (fun fmt -> function
          | None -> ()
          | Some { dseq; dlen } -> Format.fprintf fmt " dss=%d+%d" dseq dlen)
        tcp.dss
