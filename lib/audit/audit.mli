(** Runtime invariant checker for the simulator.

    The paper's claim — coupled congestion control steering MPTCP to the
    LP optimum — is only evidence if the simulator itself conserves
    bytes, keeps sequence numbers monotone and never reports throughputs
    outside the feasible region.  This module taps the monitor hooks of
    {!Netsim.Net}/{!Netsim.Linkq}, {!Tcp.Sender}/{!Tcp.Receiver} and
    {!Mptcp.Connection} and checks, while a scenario runs:

    - {b conservation}: every injected packet is eventually delivered to
      a host, dropped by a qdisc, discarded for lack of a route, lost to
      a downed link, or still in flight — never duplicated or forgotten
      ([conservation.*]);
    - {b link sanity}: buffer occupancy never exceeds the configured
      limit, and no link direction delivers more bits than its rate
      allows over the run ([link.*]);
    - {b TCP}: [snd_una] only advances, never past [snd_nxt]; segments
      are non-empty and at most one MSS; the receiver delivers exactly
      the in-order prefix; cwnd/ssthresh stay within congestion-control
      bounds ([tcp.*]);
    - {b MPTCP}: DATA_ACKs are monotone and never exceed what the
      reassembly buffer has seen; delivered + buffered connection bytes
      never exceed the bytes mapped onto subflows ([mptcp.*]);
    - {b LP feasibility}: measured per-path goodputs satisfy every link
      constraint of the paper's LP (e.g. x1+x2 <= 40, x1+x3 <= 60,
      x2+x3 <= 80 Mbps on the paper net) within a tolerance, and their
      sum respects the max-flow bound ([lp.*]).

    All hooks are off by default and cost one mutable load when unused;
    a scenario opts in with [Core.Scenario.make ~audit:true] or the
    [--audit] CLI flag.  Violations carry the simulated timestamp and a
    human-readable event context.  See [doc/AUDIT.md]. *)

type violation = {
  at : Engine.Time.t;  (** simulated time of detection *)
  invariant : string;  (** stable identifier, e.g. ["link.occupancy"] *)
  detail : string;     (** event context, human-readable *)
}

type ledger = {
  injected_pkts : int;
  injected_bytes : int;
  delivered_pkts : int;  (** consumed by a destination host *)
  delivered_bytes : int;
  dropped_pkts : int;    (** discarded by a qdisc *)
  dropped_bytes : int;
  no_route_pkts : int;
  lost_down_pkts : int;  (** destroyed by a downed link *)
  inflight_pkts : int;   (** still live when {!finish} ran *)
  inflight_bytes : int;
}

type report = {
  violations : violation list;
      (** in detection order, capped at [max_violations] *)
  total_violations : int;  (** including any beyond the cap *)
  checks : int;            (** invariant evaluations performed *)
  ledger : ledger;
}

type t

val create : ?max_violations:int -> sched:Engine.Sched.t -> unit -> t
(** A fresh auditor; at most [max_violations] (default 50) violation
    records are retained (the total count is always exact). *)

val attach_net : t -> Netsim.Net.t -> unit
(** Installs the packet-conservation and link-sanity taps.  Attach
    before any packet is injected. *)

val attach_sender : t -> label:string -> Tcp.Sender.t -> unit
val attach_receiver : t -> label:string -> Tcp.Receiver.t -> unit

val attach_connection : t -> label:string -> Mptcp.Connection.t -> unit
(** Registers the connection for {!tick} checks and taps every subflow's
    sender and receiver. *)

val tick : t -> unit
(** Evaluates the MPTCP connection-level invariants now; call it
    periodically (the scenario runner does, once per sampling period). *)

val check_lp :
  t ->
  topo:Netgraph.Topology.t ->
  paths:Netgraph.Path.t list ->
  measured_bps:float array ->
  ?tolerance:float ->
  unit ->
  unit
(** Checks the measured per-path goodputs (bits per second, in [paths]
    order) against every link-capacity row of the LP extracted from the
    topology, and their sum against the max-flow bound.  [tolerance]
    (default 0.05) is relative, with an absolute floor of 1 Mbps to
    absorb sampling-window granularity. *)

val finish : t -> ?elapsed:Engine.Time.t -> unit -> unit
(** End-of-run sweep: final occupancy, per-link delivered-bits-vs-rate
    and serializer-busy-time checks, and the conservation ledger
    cross-checked against each queue's own counters.  [elapsed] defaults
    to the scheduler's current time.  Idempotent. *)

val set_monitor : t -> (violation -> unit) option -> unit
(** Installs (or clears) a violation tap: fires once per violation, at
    detection time, even after the stored-violation cap is reached.
    [None] (the default) is free.  The observability layer uses it to
    put audit violations on the trace timeline. *)

val ok : t -> bool
val violations : t -> violation list
val total_violations : t -> int
val checks : t -> int
val report : t -> report
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

val report_text : t -> string
(** Multi-line rendering of {!report} — what [--audit] prints. *)
