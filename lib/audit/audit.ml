type violation = {
  at : Engine.Time.t;
  invariant : string;
  detail : string;
}

type ledger = {
  injected_pkts : int;
  injected_bytes : int;
  delivered_pkts : int;
  delivered_bytes : int;
  dropped_pkts : int;
  dropped_bytes : int;
  no_route_pkts : int;
  lost_down_pkts : int;
  inflight_pkts : int;
  inflight_bytes : int;
}

type report = {
  violations : violation list;
  total_violations : int;
  checks : int;
  ledger : ledger;
}

type conn_watch = {
  c_label : string;
  conn : Mptcp.Connection.t;
  mutable last_data_ack : int;
  mutable last_data_ack_rx : int;
}

type t = {
  sched : Engine.Sched.t;
  max_violations : int;
  mutable violations_rev : violation list;
  mutable n_violations : int;
  mutable checks : int;
  live : (int, int) Hashtbl.t; (* wire id -> size in bytes *)
  mutable injected_pkts : int;
  mutable injected_bytes : int;
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable dropped_pkts : int;
  mutable dropped_bytes : int;
  mutable no_route_pkts : int;
  mutable lost_down_pkts : int;
  mutable nets : Netsim.Net.t list;
  mutable conns : conn_watch list;
  mutable finished : bool;
  mutable monitor : (violation -> unit) option;
}

let create ?(max_violations = 50) ~sched () =
  if max_violations < 1 then
    invalid_arg "Audit.create: max_violations must be >= 1";
  {
    sched;
    max_violations;
    violations_rev = [];
    n_violations = 0;
    checks = 0;
    live = Hashtbl.create 256;
    injected_pkts = 0;
    injected_bytes = 0;
    delivered_pkts = 0;
    delivered_bytes = 0;
    dropped_pkts = 0;
    dropped_bytes = 0;
    no_route_pkts = 0;
    lost_down_pkts = 0;
    nets = [];
    conns = [];
    finished = false;
    monitor = None;
  }

let violate t ~invariant detail =
  t.n_violations <- t.n_violations + 1;
  let v = { at = Engine.Sched.now t.sched; invariant; detail } in
  if t.n_violations <= t.max_violations then
    t.violations_rev <- v :: t.violations_rev;
  match t.monitor with None -> () | Some f -> f v

let set_monitor t m = t.monitor <- m

(* One invariant evaluation; [detail] is only built on failure. *)
let check t ~invariant cond detail =
  t.checks <- t.checks + 1;
  if not cond then violate t ~invariant (detail ())

(* --- packet conservation --- *)

let track_inject t ~node p =
  t.checks <- t.checks + 1;
  if Hashtbl.mem t.live p.Packet.id then
    violate t ~invariant:"conservation.duplicate-packet"
      (Printf.sprintf
         "packet id %d (size %dB) injected at node %d while already live"
         p.Packet.id p.Packet.size node)
  else begin
    Hashtbl.replace t.live p.Packet.id p.Packet.size;
    t.injected_pkts <- t.injected_pkts + 1;
    t.injected_bytes <- t.injected_bytes + p.Packet.size
  end

(* Transition a packet out of the live set; [false] means it was never
   (or no longer) tracked — itself a conservation violation. *)
let settle t p ~fate =
  t.checks <- t.checks + 1;
  if Hashtbl.mem t.live p.Packet.id then begin
    Hashtbl.remove t.live p.Packet.id;
    true
  end
  else begin
    violate t ~invariant:"conservation.unknown-packet"
      (Printf.sprintf "packet id %d reached fate %S but was never injected \
                       (or already settled)"
         p.Packet.id fate);
    false
  end

let assert_live t p ~where =
  check t ~invariant:"conservation.unknown-packet"
    (Hashtbl.mem t.live p.Packet.id)
    (fun () ->
      Printf.sprintf "packet id %d observed %s but is not live" p.Packet.id
        where)

let attach_net t net =
  t.nets <- net :: t.nets;
  Netsim.Net.set_monitor net
    (Some
       {
         Netsim.Net.on_inject = (fun ~node p -> track_inject t ~node p);
         on_host_deliver =
           (fun ~node:_ p ->
             if settle t p ~fate:"host delivery" then begin
               t.delivered_pkts <- t.delivered_pkts + 1;
               t.delivered_bytes <- t.delivered_bytes + p.Packet.size
             end);
         on_no_route =
           (fun ~node p ->
             if settle t p ~fate:(Printf.sprintf "no route at node %d" node)
             then t.no_route_pkts <- t.no_route_pkts + 1);
       });
  Netsim.Net.iter_linkqs net (fun ~link ~dir q ->
      let dir_name =
        match dir with Netsim.Net.Fwd -> "fwd" | Netsim.Net.Rev -> "rev"
      in
      Netsim.Linkq.set_monitor q
        (Some
           (function
           | Netsim.Linkq.Enqueued p ->
             assert_live t p
               ~where:(Printf.sprintf "enqueued on link %d/%s" link dir_name);
             check t ~invariant:"link.occupancy"
               (Netsim.Linkq.queue_pkts q <= Netsim.Linkq.limit_pkts q)
               (fun () ->
                 Printf.sprintf
                   "link %d/%s: %d packets queued exceeds limit %d after \
                    admitting packet id %d"
                   link dir_name
                   (Netsim.Linkq.queue_pkts q)
                   (Netsim.Linkq.limit_pkts q)
                   p.Packet.id)
           | Netsim.Linkq.Delivered p ->
             assert_live t p
               ~where:(Printf.sprintf "delivered by link %d/%s" link dir_name);
             check t ~invariant:"link.down-delivery"
               (Netsim.Linkq.is_up q)
               (fun () ->
                 Printf.sprintf
                   "link %d/%s: packet id %d delivered while the link is down"
                   link dir_name p.Packet.id)
           | Netsim.Linkq.Dropped p ->
             if
               settle t p
                 ~fate:(Printf.sprintf "qdisc drop on link %d/%s" link dir_name)
             then begin
               t.dropped_pkts <- t.dropped_pkts + 1;
               t.dropped_bytes <- t.dropped_bytes + p.Packet.size
             end
           | Netsim.Linkq.Lost_down p ->
             if
               settle t p
                 ~fate:
                   (Printf.sprintf "lost on downed link %d/%s" link dir_name)
             then t.lost_down_pkts <- t.lost_down_pkts + 1)))

(* --- per-subflow transport invariants --- *)

let attach_sender t ~label s =
  let mss = Tcp.Sender.mss s in
  let last_una = ref (Tcp.Sender.snd_una s) in
  Tcp.Sender.set_monitor s
    (Some
       (fun ev ->
         let cw = Tcp.Sender.cwnd s in
         check t ~invariant:"tcp.cwnd"
           (Float.is_finite cw && cw >= 1.0 -. 1e-9)
           (fun () ->
             Printf.sprintf "%s: cwnd=%g outside [1, +inf)" label cw);
         let ss = Tcp.Sender.ssthresh s in
         check t ~invariant:"tcp.ssthresh"
           (Float.is_finite ss && ss >= Tcp.Cc.min_cwnd -. 1e-9)
           (fun () ->
             Printf.sprintf "%s: ssthresh=%g below CC floor %g" label ss
               Tcp.Cc.min_cwnd);
         match ev with
         | Tcp.Sender.Seg_sent { seq; len; retx } ->
           check t ~invariant:"tcp.segment"
             (len > 0 && len <= mss && seq >= Tcp.Sender.snd_una s)
             (fun () ->
               Printf.sprintf
                 "%s: sent%s seq=%d len=%d outside (0, mss=%d] or below \
                  snd_una=%d"
                 label
                 (if retx then " (retx)" else "")
                 seq len mss (Tcp.Sender.snd_una s))
         | Tcp.Sender.Ack_advanced { una } ->
           check t ~invariant:"tcp.ack-monotone"
             (una > !last_una && una <= Tcp.Sender.snd_nxt s)
             (fun () ->
               Printf.sprintf
                 "%s: snd_una advanced to %d (previous %d, snd_nxt %d)" label
                 una !last_una (Tcp.Sender.snd_nxt s));
           last_una := max !last_una una;
           check t ~invariant:"tcp.pipe"
             (Tcp.Sender.pipe_consistent s)
             (fun () ->
               Printf.sprintf
                 "%s: incremental pipe diverged from scoreboard recount"
                 label);
           check t ~invariant:"tcp.scoreboard"
             (Tcp.Sender.scoreboard_consistent s)
             (fun () ->
               Printf.sprintf
                 "%s: flat scoreboard inconsistent (contiguity or SACK \
                  counter drift)"
                 label)
         | Tcp.Sender.Cwnd_changed _ | Tcp.Sender.State_changed _ ->
           (* observability events; window sanity is re-checked above on
              every event anyway *)
           ()))

let attach_receiver t ~label r =
  let expected = ref (Tcp.Receiver.rcv_nxt r) in
  Tcp.Receiver.set_monitor r
    (Some
       (fun (Tcp.Receiver.Delivered { seq; len }) ->
         check t ~invariant:"tcp.rx-order"
           (len > 0 && seq <= !expected
           && seq + len > !expected
           && Tcp.Receiver.rcv_nxt r = seq + len)
           (fun () ->
             Printf.sprintf
               "%s: delivered seq=%d len=%d but expected prefix up to %d \
                (rcv_nxt now %d)"
               label seq len !expected (Tcp.Receiver.rcv_nxt r));
         expected := max !expected (seq + len)))

let attach_connection t ~label conn =
  t.conns <-
    {
      c_label = label;
      conn;
      last_data_ack = Mptcp.Connection.data_ack conn;
      last_data_ack_rx = Mptcp.Connection.data_ack_rx conn;
    }
    :: t.conns;
  (* Scheduler-decision invariants: the scheduler must never map data
     onto a dead subflow, and liveness transitions must actually
     alternate (a repeated down or up for the same subflow means the
     idempotence guard broke).  The audit claims the monitor slot first;
     the observability collector chains onto it. *)
  let active = Array.make (Mptcp.Connection.subflow_count conn) true in
  Mptcp.Connection.set_monitor conn
    (Some
       (function
       | Mptcp.Connection.Sched_grant { subflow; dseq; len = _ } ->
         check t ~invariant:"mptcp.grant-inactive"
           (active.(subflow) && Mptcp.Connection.subflow_active conn subflow)
           (fun () ->
             Printf.sprintf
               "%s: scheduler granted dseq %d to inactive subflow %d" label
               dseq subflow)
       | Mptcp.Connection.Subflow_state { subflow; active = a } ->
         check t ~invariant:"mptcp.subflow-churn"
           (active.(subflow) <> a)
           (fun () ->
             Printf.sprintf
               "%s: subflow %d reported %s twice in a row" label subflow
               (if a then "active" else "inactive"));
         active.(subflow) <- a
       | Mptcp.Connection.Sched_defer _ | Mptcp.Connection.Reinjected _ -> ()));
  for i = 0 to Mptcp.Connection.subflow_count conn - 1 do
    let sub_label = Printf.sprintf "%s/sf%d" label i in
    attach_sender t ~label:sub_label (Mptcp.Connection.subflow_sender conn i);
    attach_receiver t ~label:sub_label
      (Mptcp.Connection.subflow_receiver conn i)
  done

let tick t =
  List.iter
    (fun w ->
      let da = Mptcp.Connection.data_ack w.conn in
      check t ~invariant:"mptcp.data-ack-monotone" (da >= w.last_data_ack)
        (fun () ->
          Printf.sprintf "%s: DATA_ACK went backwards: %d after %d" w.c_label
            da w.last_data_ack);
      w.last_data_ack <- max w.last_data_ack da;
      let rx = Mptcp.Connection.data_ack_rx w.conn in
      check t ~invariant:"mptcp.data-ack-monotone"
        (rx >= w.last_data_ack_rx && rx <= da)
        (fun () ->
          Printf.sprintf
            "%s: sender-side DATA_ACK %d outside [%d (previous), %d \
             (receiver cumulative)]"
            w.c_label rx w.last_data_ack_rx da);
      w.last_data_ack_rx <- max w.last_data_ack_rx rx;
      let delivered = Mptcp.Connection.delivered_bytes w.conn in
      let buffered = Mptcp.Connection.reassembly_buffered w.conn in
      let mapped = Mptcp.Connection.mapped_bytes w.conn in
      check t ~invariant:"mptcp.reassembly-ledger"
        (delivered >= 0 && buffered >= 0 && delivered + buffered <= mapped)
        (fun () ->
          Printf.sprintf
            "%s: delivered %dB + buffered %dB exceeds %dB mapped onto \
             subflows"
            w.c_label delivered buffered mapped))
    t.conns

(* --- LP feasibility --- *)

let check_lp t ~topo ~paths ~measured_bps ?(tolerance = 0.05) () =
  (match paths with [] -> invalid_arg "Audit.check_lp: no paths" | _ -> ());
  if Array.length measured_bps <> List.length paths then
    invalid_arg "Audit.check_lp: one measurement per path required";
  Array.iteri
    (fun j x ->
      check t ~invariant:"lp.measurement"
        (Float.is_finite x && x >= -1.0)
        (fun () -> Printf.sprintf "path %d: measured rate %g bps" j x))
    measured_bps;
  let finite x = if Float.is_finite x then x else 0.0 in
  let sys = Netgraph.Constraints.extract topo paths in
  (* One shared checker decides feasibility for the audit and the fluid
     validator alike (Netgraph.Constraints.violations); the audit only
     adds per-row bookkeeping and messages on top. *)
  let viols =
    Netgraph.Constraints.violations ~slack_frac:tolerance ~slack_abs:1e6 sys
      ~x:(Array.map finite measured_bps)
  in
  Array.iteri
    (fun i _ ->
      let viol =
        List.find_opt (fun v -> v.Netgraph.Constraints.row = i) viols
      in
      check t ~invariant:"lp.feasibility" (viol = None) (fun () ->
          let v = Option.get viol in
          let l =
            Netgraph.Topology.link topo v.Netgraph.Constraints.link_id
          in
          Printf.sprintf
            "link %s-%s: measured %.2f Mbps exceeds capacity %.2f Mbps \
             (tolerance %.0f%%)"
            (Netgraph.Topology.node_name topo l.Netgraph.Topology.u)
            (Netgraph.Topology.node_name topo l.Netgraph.Topology.v)
            (v.Netgraph.Constraints.load_bps /. 1e6)
            (v.Netgraph.Constraints.cap_bps /. 1e6)
            (tolerance *. 100.)))
    sys.Netgraph.Constraints.a;
  let first = List.hd paths in
  let src = Netgraph.Path.src first and dst = Netgraph.Path.dst first in
  let mf = float_of_int (Netgraph.Maxflow.max_flow topo ~src ~dst) in
  let total =
    Array.fold_left (fun acc x -> acc +. finite x) 0.0 measured_bps
  in
  check t ~invariant:"lp.maxflow-bound"
    (total <= (mf *. (1. +. tolerance)) +. 1e6)
    (fun () ->
      Printf.sprintf
        "total measured %.2f Mbps exceeds the %.2f Mbps max-flow bound"
        (total /. 1e6) (mf /. 1e6))

(* --- end-of-run sweep --- *)

let finish t ?elapsed () =
  if not t.finished then begin
    t.finished <- true;
    let elapsed =
      match elapsed with Some e -> e | None -> Engine.Sched.now t.sched
    in
    let elapsed_s = Engine.Time.to_float_s elapsed in
    let q_dropped = ref 0 and q_lost = ref 0 in
    List.iter
      (fun net ->
        Netsim.Net.iter_linkqs net (fun ~link ~dir q ->
            let dir_name =
              match dir with Netsim.Net.Fwd -> "fwd" | Netsim.Net.Rev -> "rev"
            in
            let st = Netsim.Linkq.stats q in
            q_dropped := !q_dropped + st.Netsim.Linkq.dropped;
            q_lost := !q_lost + st.Netsim.Linkq.lost_down;
            check t ~invariant:"link.occupancy"
              (Netsim.Linkq.queue_pkts q <= Netsim.Linkq.limit_pkts q)
              (fun () ->
                Printf.sprintf "link %d/%s: final occupancy %d exceeds limit %d"
                  link dir_name
                  (Netsim.Linkq.queue_pkts q)
                  (Netsim.Linkq.limit_pkts q));
            (* The capacity integral over every effective-rate regime
               bounds delivered bits even when events re-rated the link
               or a fluid background claimed a share mid-run; two wire
               MTUs of slack cover boundary packets. *)
            let cap_bits = Netsim.Linkq.capacity_bits q ~now:elapsed in
            check t ~invariant:"link.rate"
              (elapsed_s <= 0.0
              || float_of_int (st.Netsim.Linkq.bytes_delivered * 8)
                 <= (cap_bits *. 1.01) +. 24_000.)
              (fun () ->
                Printf.sprintf
                  "link %d/%s: delivered %dB in %.3fs exceeds the link's \
                   %.0f-bit capacity budget"
                  link dir_name st.Netsim.Linkq.bytes_delivered elapsed_s
                  cap_bits);
            (* A packet in the serializer at the horizon had its whole
               tx time charged up front; a fluid background can slow the
               serializer well below nominal, so the slack must assume
               the in-flight packet transmits at the slowest effective
               rate the link ever served at. *)
            let busy_slack =
              Engine.Time.tx_time ~bits:24_000
                ~rate_bps:(Netsim.Linkq.min_effective_rate_bps q)
            in
            check t ~invariant:"link.busy"
              (st.Netsim.Linkq.busy_ns <= Engine.Time.add elapsed busy_slack)
              (fun () ->
                Printf.sprintf
                  "link %d/%s: serializer busy %dns over an elapsed %dns"
                  link dir_name st.Netsim.Linkq.busy_ns elapsed)))
      t.nets;
    let no_route =
      List.fold_left
        (fun acc net -> acc + Netsim.Net.no_route_drops net)
        0 t.nets
    in
    check t ~invariant:"conservation.ledger"
      (!q_dropped = t.dropped_pkts)
      (fun () ->
        Printf.sprintf
          "queues report %d qdisc drops but the ledger settled %d" !q_dropped
          t.dropped_pkts);
    check t ~invariant:"conservation.ledger" (!q_lost = t.lost_down_pkts)
      (fun () ->
        Printf.sprintf
          "queues report %d link-down losses but the ledger settled %d"
          !q_lost t.lost_down_pkts);
    check t ~invariant:"conservation.ledger" (no_route = t.no_route_pkts)
      (fun () ->
        Printf.sprintf
          "the network reports %d no-route drops but the ledger settled %d"
          no_route t.no_route_pkts);
    check t ~invariant:"conservation.ledger"
      (t.injected_pkts
      = t.delivered_pkts + t.dropped_pkts + t.no_route_pkts
        + t.lost_down_pkts + Hashtbl.length t.live)
      (fun () ->
        Printf.sprintf
          "injected %d <> delivered %d + dropped %d + no-route %d + \
           lost-down %d + in-flight %d"
          t.injected_pkts t.delivered_pkts t.dropped_pkts t.no_route_pkts
          t.lost_down_pkts (Hashtbl.length t.live))
  end

(* --- reporting --- *)

let ok t = t.n_violations = 0
let violations t = List.rev t.violations_rev
let total_violations t = t.n_violations
let checks t = t.checks

let ledger t =
  let inflight_bytes = Hashtbl.fold (fun _ size acc -> acc + size) t.live 0 in
  {
    injected_pkts = t.injected_pkts;
    injected_bytes = t.injected_bytes;
    delivered_pkts = t.delivered_pkts;
    delivered_bytes = t.delivered_bytes;
    dropped_pkts = t.dropped_pkts;
    dropped_bytes = t.dropped_bytes;
    no_route_pkts = t.no_route_pkts;
    lost_down_pkts = t.lost_down_pkts;
    inflight_pkts = Hashtbl.length t.live;
    inflight_bytes;
  }

let report t =
  {
    violations = violations t;
    total_violations = t.n_violations;
    checks = t.checks;
    ledger = ledger t;
  }

let pp_violation fmt v =
  Format.fprintf fmt "[t=%.6fs] %s: %s"
    (Engine.Time.to_float_s v.at)
    v.invariant v.detail

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>audit: %d violation%s over %d checks@,\
     ledger: injected %d pkts (%dB), delivered %d (%dB), qdisc-dropped %d \
     (%dB), no-route %d, lost-down %d, in-flight %d (%dB)@,"
    r.total_violations
    (if r.total_violations = 1 then "" else "s")
    r.checks r.ledger.injected_pkts r.ledger.injected_bytes
    r.ledger.delivered_pkts r.ledger.delivered_bytes r.ledger.dropped_pkts
    r.ledger.dropped_bytes r.ledger.no_route_pkts r.ledger.lost_down_pkts
    r.ledger.inflight_pkts r.ledger.inflight_bytes;
  List.iter (fun v -> Format.fprintf fmt "  %a@," pp_violation v) r.violations;
  if r.total_violations > List.length r.violations then
    Format.fprintf fmt "  ... and %d more@,"
      (r.total_violations - List.length r.violations);
  Format.fprintf fmt "@]"

let report_text t = Format.asprintf "%a" pp_report (report t)
