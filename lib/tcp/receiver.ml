module Imap = Map.Make (Int)

type t = {
  sched : Engine.Sched.t;
  conn : int;
  subflow : int;
  addr : Packet.addr;
  peer : Packet.addr;
  tag : Packet.tag;
  fresh_id : unit -> int;
  transmit : Packet.t -> unit;
  pool : Packet.Pool.t option;
  on_deliver : seq:int -> len:int -> dss:Packet.dss option -> unit;
  data_ack : unit -> int;
  delayed_ack : bool;
  ack_delay : Engine.Time.t;
  mutable pending_segs : int; (* in-order segments not yet acknowledged *)
  mutable ack_timer : Engine.Sched.timer option;
  mutable ack_thunk : unit -> unit;
      (* delayed-ACK fire action, built once on first arm rather than a
         fresh closure per armed timer *)
  mutable acks_sent : int;
  mutable rcv_nxt : int;
  mutable ooo : (int * Packet.dss option) Imap.t; (* seq -> len, dss *)
  mutable last_sacked : int; (* start of the block holding the newest arrival *)
  mutable ce_pending : bool; (* echo Congestion Experienced on the next ACK *)
  mutable segments : int;
  mutable duplicates : int;
  (* scratch for sack_blocks: merged ranges as parallel arrays, reused
     across calls so range merging allocates nothing *)
  mutable scratch_s : int array;
  mutable scratch_e : int array;
  mutable scratch_n : int;
  mutable monitor : (monitor_event -> unit) option;
}

and monitor_event = Delivered of { seq : int; len : int }

(* Not-yet-built sentinel for the cached delayed-ACK thunk.  A
   module-level closure has one stable identity; [ignore] does not — it
   is the primitive [%ignore], eta-expanded to a distinct closure at
   every use site, so [t.ack_thunk == ignore] would never be true and
   the timer would fire the sentinel no-op forever. *)
let unarmed () = ()

let create ~sched ~conn ~subflow ~addr ~peer ~tag ~fresh_id ~transmit ?pool
    ~on_deliver ~data_ack ?(delayed_ack = false)
    ?(ack_delay = Engine.Time.ms 40) () =
  { sched; conn; subflow; addr; peer; tag; fresh_id; transmit; pool;
    on_deliver; data_ack; delayed_ack; ack_delay; pending_segs = 0;
    ack_timer = None; ack_thunk = unarmed; acks_sent = 0; rcv_nxt = 0;
    ooo = Imap.empty;
    last_sacked = -1; ce_pending = false; segments = 0; duplicates = 0;
    scratch_s = Array.make 16 0; scratch_e = Array.make 16 0; scratch_n = 0;
    monitor = None }

let scratch_push t s e =
  if t.scratch_n = Array.length t.scratch_s then begin
    let cap = 2 * t.scratch_n in
    let ns = Array.make cap 0 and ne = Array.make cap 0 in
    Array.blit t.scratch_s 0 ns 0 t.scratch_n;
    Array.blit t.scratch_e 0 ne 0 t.scratch_n;
    t.scratch_s <- ns;
    t.scratch_e <- ne
  end;
  t.scratch_s.(t.scratch_n) <- s;
  t.scratch_e.(t.scratch_n) <- e;
  t.scratch_n <- t.scratch_n + 1

(* Merge the out-of-order store into contiguous byte ranges and emit up
   to [Packet.max_sack_blocks], the block containing the newest arrival
   first (RFC 2018 section 4).  The common case — no out-of-order data —
   returns the shared empty list; otherwise ranges are merged on the
   receiver's scratch arrays and only the (bounded) result list is
   allocated. *)
let sack_blocks t =
  if Imap.is_empty t.ooo then []
  else begin
    t.scratch_n <- 0;
    Imap.iter
      (fun seq (len, _) ->
        let n = t.scratch_n in
        if n > 0 && seq <= t.scratch_e.(n - 1) then begin
          if seq + len > t.scratch_e.(n - 1) then
            t.scratch_e.(n - 1) <- seq + len
        end
        else scratch_push t seq (seq + len))
      t.ooo;
    (* Index of the range holding the newest arrival, if any. *)
    let newest = ref (-1) in
    for i = 0 to t.scratch_n - 1 do
      if t.scratch_s.(i) <= t.last_sacked && t.last_sacked < t.scratch_e.(i)
      then newest := i
    done;
    let blocks = ref [] and count = ref 0 in
    let add i =
      if !count < Packet.max_sack_blocks then begin
        blocks := (t.scratch_s.(i), t.scratch_e.(i)) :: !blocks;
        incr count
      end
    in
    if !newest >= 0 then add !newest;
    for i = 0 to t.scratch_n - 1 do
      if i <> !newest then add i
    done;
    List.rev !blocks
  end

let send_ack_now t =
  t.pending_segs <- 0;
  let ece = t.ce_pending in
  t.ce_pending <- false;
  (match t.ack_timer with
  | Some timer ->
    Engine.Sched.cancel timer;
    t.ack_timer <- None
  | None -> ());
  t.acks_sent <- t.acks_sent + 1;
  let p =
    Packet.Pool.acquire_tcp ?pool:t.pool ~id:(t.fresh_id ()) ~src:t.addr
      ~dst:t.peer ~tag:t.tag ~born:(Engine.Sched.now t.sched) ~conn:t.conn
      ~subflow:t.subflow ~kind:Packet.Ack ~seq:0 ~payload:0 ~ack:t.rcv_nxt
      ~sack:(sack_blocks t) ~ece ~dss:None ~data_ack:(t.data_ack ()) ()
  in
  t.transmit p

(* Delayed-ACK policy: an immediate ACK for anything out of the ordinary
   (gap, duplicate), otherwise at most one unacknowledged segment. *)
let ack_for_in_order t =
  if not t.delayed_ack then send_ack_now t
  else begin
    t.pending_segs <- t.pending_segs + 1;
    if t.pending_segs >= 2 then send_ack_now t
    else if t.ack_timer = None then begin
      if t.ack_thunk == unarmed then
        t.ack_thunk <-
          (fun () ->
            t.ack_timer <- None;
            if t.pending_segs > 0 then send_ack_now t);
      t.ack_timer <- Some (Engine.Sched.after t.sched t.ack_delay t.ack_thunk)
    end
  end

let rec drain t =
  match Imap.min_binding_opt t.ooo with
  | Some (seq, (len, dss)) when seq <= t.rcv_nxt ->
    t.ooo <- Imap.remove seq t.ooo;
    if seq + len > t.rcv_nxt then begin
      t.on_deliver ~seq ~len ~dss;
      t.rcv_nxt <- seq + len;
      match t.monitor with
      | None -> ()
      | Some f -> f (Delivered { seq; len })
    end;
    drain t
  | Some _ | None -> ()

let send_syn_ack t =
  t.transmit
    (Packet.Pool.acquire_tcp ?pool:t.pool ~id:(t.fresh_id ()) ~src:t.addr
       ~dst:t.peer ~tag:t.tag ~born:(Engine.Sched.now t.sched) ~conn:t.conn
       ~subflow:t.subflow ~kind:Packet.Syn_ack ~seq:0 ~payload:0 ~ack:0
       ~sack:[] ~ece:false ~dss:None ~data_ack:0 ())

let handle_data t p =
  let tcp = Packet.tcp_exn p in
  if p.Packet.ecn = Packet.Ce then t.ce_pending <- true;
  if tcp.Packet.kind = Packet.Syn then send_syn_ack t
  else begin
  t.segments <- t.segments + 1;
  let seq = tcp.Packet.seq and len = tcp.Packet.payload in
  if len > 0 then
    if seq = t.rcv_nxt then begin
      t.on_deliver ~seq ~len ~dss:tcp.Packet.dss;
      t.rcv_nxt <- seq + len;
      (match t.monitor with
      | None -> ()
      | Some f -> f (Delivered { seq; len }));
      let had_gap = not (Imap.is_empty t.ooo) in
      drain t;
      (* Filling a gap must be acknowledged at once so the sender exits
         recovery promptly. *)
      if had_gap then send_ack_now t else ack_for_in_order t
    end
    else if seq > t.rcv_nxt then begin
      t.ooo <- Imap.add seq (len, tcp.Packet.dss) t.ooo;
      t.last_sacked <- seq;
      send_ack_now t
    end
    else begin
      t.duplicates <- t.duplicates + 1;
      send_ack_now t
    end
  else send_ack_now t
  end

let acks_sent t = t.acks_sent
let rcv_nxt t = t.rcv_nxt
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor
let out_of_order t = Imap.cardinal t.ooo
let segments_received t = t.segments
let duplicates t = t.duplicates
