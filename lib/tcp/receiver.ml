module Imap = Map.Make (Int)

type t = {
  sched : Engine.Sched.t;
  conn : int;
  subflow : int;
  addr : Packet.addr;
  peer : Packet.addr;
  tag : Packet.tag;
  fresh_id : unit -> int;
  transmit : Packet.t -> unit;
  on_deliver : seq:int -> len:int -> dss:Packet.dss option -> unit;
  data_ack : unit -> int;
  delayed_ack : bool;
  ack_delay : Engine.Time.t;
  mutable pending_segs : int; (* in-order segments not yet acknowledged *)
  mutable ack_timer : Engine.Sched.timer option;
  mutable acks_sent : int;
  mutable rcv_nxt : int;
  mutable ooo : (int * Packet.dss option) Imap.t; (* seq -> len, dss *)
  mutable last_sacked : int; (* start of the block holding the newest arrival *)
  mutable ce_pending : bool; (* echo Congestion Experienced on the next ACK *)
  mutable segments : int;
  mutable duplicates : int;
  mutable monitor : (monitor_event -> unit) option;
}

and monitor_event = Delivered of { seq : int; len : int }

let create ~sched ~conn ~subflow ~addr ~peer ~tag ~fresh_id ~transmit
    ~on_deliver ~data_ack ?(delayed_ack = false)
    ?(ack_delay = Engine.Time.ms 40) () =
  { sched; conn; subflow; addr; peer; tag; fresh_id; transmit; on_deliver;
    data_ack; delayed_ack; ack_delay; pending_segs = 0; ack_timer = None;
    acks_sent = 0; rcv_nxt = 0; ooo = Imap.empty; last_sacked = -1;
    ce_pending = false; segments = 0; duplicates = 0; monitor = None }

(* Merge the out-of-order store into contiguous byte ranges and emit up
   to [Packet.max_sack_blocks], the block containing the newest arrival
   first (RFC 2018 section 4). *)
let sack_blocks t =
  let ranges =
    Imap.fold
      (fun seq (len, _) acc ->
        match acc with
        | (s, e) :: rest when seq <= e -> (s, max e (seq + len)) :: rest
        | _ -> (seq, seq + len) :: acc)
      t.ooo []
    |> List.rev
  in
  let newest, others =
    List.partition (fun (s, e) -> s <= t.last_sacked && t.last_sacked < e)
      ranges
  in
  let ordered = newest @ others in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take Packet.max_sack_blocks ordered

let send_ack_now t =
  t.pending_segs <- 0;
  let ece = t.ce_pending in
  t.ce_pending <- false;
  (match t.ack_timer with
  | Some timer ->
    Engine.Sched.cancel timer;
    t.ack_timer <- None
  | None -> ());
  t.acks_sent <- t.acks_sent + 1;
  let tcp =
    {
      Packet.conn = t.conn;
      subflow = t.subflow;
      kind = Packet.Ack;
      seq = 0;
      payload = 0;
      ack = t.rcv_nxt;
      sack = sack_blocks t;
      ece;
      dss = None;
      data_ack = t.data_ack ();
    }
  in
  let p =
    Packet.make_tcp ~id:(t.fresh_id ()) ~src:t.addr ~dst:t.peer ~tag:t.tag
      ~born:(Engine.Sched.now t.sched) tcp
  in
  t.transmit p

(* Delayed-ACK policy: an immediate ACK for anything out of the ordinary
   (gap, duplicate), otherwise at most one unacknowledged segment. *)
let ack_for_in_order t =
  if not t.delayed_ack then send_ack_now t
  else begin
    t.pending_segs <- t.pending_segs + 1;
    if t.pending_segs >= 2 then send_ack_now t
    else if t.ack_timer = None then
      t.ack_timer <-
        Some
          (Engine.Sched.after t.sched t.ack_delay (fun () ->
               t.ack_timer <- None;
               if t.pending_segs > 0 then send_ack_now t))
  end

let rec drain t =
  match Imap.min_binding_opt t.ooo with
  | Some (seq, (len, dss)) when seq <= t.rcv_nxt ->
    t.ooo <- Imap.remove seq t.ooo;
    if seq + len > t.rcv_nxt then begin
      t.on_deliver ~seq ~len ~dss;
      t.rcv_nxt <- seq + len;
      match t.monitor with
      | None -> ()
      | Some f -> f (Delivered { seq; len })
    end;
    drain t
  | Some _ | None -> ()

let send_syn_ack t =
  let tcp =
    {
      Packet.conn = t.conn;
      subflow = t.subflow;
      kind = Packet.Syn_ack;
      seq = 0;
      payload = 0;
      ack = 0;
      sack = [];
      ece = false;
      dss = None;
      data_ack = 0;
    }
  in
  t.transmit
    (Packet.make_tcp ~id:(t.fresh_id ()) ~src:t.addr ~dst:t.peer ~tag:t.tag
       ~born:(Engine.Sched.now t.sched) tcp)

let handle_data t p =
  let tcp = Packet.tcp_exn p in
  if p.Packet.ecn = Packet.Ce then t.ce_pending <- true;
  if tcp.Packet.kind = Packet.Syn then send_syn_ack t
  else begin
  t.segments <- t.segments + 1;
  let seq = tcp.Packet.seq and len = tcp.Packet.payload in
  if len > 0 then
    if seq = t.rcv_nxt then begin
      t.on_deliver ~seq ~len ~dss:tcp.Packet.dss;
      t.rcv_nxt <- seq + len;
      (match t.monitor with
      | None -> ()
      | Some f -> f (Delivered { seq; len }));
      let had_gap = not (Imap.is_empty t.ooo) in
      drain t;
      (* Filling a gap must be acknowledged at once so the sender exits
         recovery promptly. *)
      if had_gap then send_ack_now t else ack_for_in_order t
    end
    else if seq > t.rcv_nxt then begin
      t.ooo <- Imap.add seq (len, tcp.Packet.dss) t.ooo;
      t.last_sacked <- seq;
      send_ack_now t
    end
    else begin
      t.duplicates <- t.duplicates + 1;
      send_ack_now t
    end
  else send_ack_now t
  end

let acks_sent t = t.acks_sent
let rcv_nxt t = t.rcv_nxt
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor
let out_of_order t = Imap.cardinal t.ooo
let segments_received t = t.segments
let duplicates t = t.duplicates
