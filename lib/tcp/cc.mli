(** Pluggable congestion control.

    A congestion controller owns the window variables of one subflow; the
    sender machine calls it on every cumulative ACK, fast-retransmit loss
    and timeout.  Coupled (MPTCP) controllers additionally read the live
    state of their sibling subflows through {!ctx.group} — that coupling
    is exactly what distinguishes LIA/OLIA from running plain CUBIC per
    path, the comparison at the heart of the paper. *)

(** Flat, mutable view of every subflow of one connection: parallel
    unboxed float arrays, one slot per subflow, refreshed in place by
    the owning senders ([Tcp.Sender.sync_group_slot]) rather than
    re-snapshotted into records per ACK.  The established count is
    maintained incrementally so the controllers' "active set" test is
    O(1). *)
type group = {
  n : int;  (** subflows in the owning connection (array length) *)
  cwnds : float array;  (** congestion windows, MSS units *)
  srtts : float array;  (** smoothed RTTs, seconds (estimate before data) *)
  loss_intervals : float array;
      (** OLIA's l_p: bytes acknowledged in the current inter-loss
          interval, or in the previous one if that was larger *)
  established : bool array;
      (** has the slot's subflow sent at least one segment *)
  mutable n_established : int;
      (** number of [true] slots in [established] — update through
          {!group_set_established} *)
  scratch : float array;
      (** two accumulator cells for the coupled controllers' per-ACK
          folds.  Float-array stores are unboxed, so folding into these
          allocates nothing without flambda (a local [float ref] would
          box every update).  Living in the group — not at module
          level — keeps parallel scenario runs on separate domains from
          racing on shared cells; within one simulation the folds never
          nest, so two cells suffice. *)
  qualities : float array;
      (** [n] cells of per-slot scratch (OLIA's loss-interval quality,
          computed in one pass and consumed in the next); same
          unboxing/domain-safety rationale as [scratch] *)
}

val group_create : int -> group
(** [group_create n] is a fresh [n]-slot group, all slots idle (cwnd 0,
    RTT 1 s, not established).  Raises [Invalid_argument] when
    [n <= 0]. *)

val group_set_established : group -> int -> bool -> unit
(** Flip one slot's established flag, keeping [n_established] in
    sync. *)

type ctx = {
  now_s : unit -> float;        (** simulated seconds *)
  mss : int;
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;     (** clamped to [\[min_cwnd, +inf)] by the sender *)
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
  srtt_s : unit -> float;       (** this subflow's smoothed RTT, seconds *)
  group : unit -> group;
      (** all subflows of the owning connection, self included, synced
          to their live state; a single-path flow sees a 1-slot group *)
  self_index : unit -> int;     (** this subflow's slot in [group ()] *)
}

type instance = {
  name : string;
  on_ack : acked:int -> unit;
      (** [acked] bytes newly acknowledged by a cumulative ACK *)
  on_loss : unit -> unit;
      (** entering fast recovery (3 dup-ACKs): apply the multiplicative
          decrease to cwnd and ssthresh *)
  on_rto : unit -> unit;
      (** retransmission timeout: collapse the window *)
}

type factory = ctx -> instance
(** Controllers are created per subflow, after the context is wired. *)

val min_cwnd : float
(** 2 MSS, the floor Linux applies after any decrease. *)

val slow_start_ack : ctx -> acked:int -> bool
(** Shared helper: when [cwnd < ssthresh], grow by one MSS per MSS acked
    (capped at ssthresh) and return [true]; otherwise return [false] and
    leave the window to the caller's congestion-avoidance law. *)

val in_slow_start : ctx -> bool
