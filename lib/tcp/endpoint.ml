(* Demux keys are packed to one immediate int — (conn lsl 8) lor subflow —
   so the per-packet lookup neither allocates a pair nor runs the
   polymorphic hash over a block.  8 bits of subflow is far beyond the
   paper's 2–4 subflows; register rejects the rest. *)

let subflow_bits = 8
let subflow_mask = (1 lsl subflow_bits) - 1

let demux_key ~conn ~subflow = (conn lsl subflow_bits) lor subflow

let check_demux_key ~conn ~subflow =
  if
    conn < 0 || subflow < 0 || subflow > subflow_mask
    || conn > max_int lsr subflow_bits
  then invalid_arg "Endpoint.register: conn or subflow out of range"

type t = {
  net : Netsim.Net.t;
  node : int;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable plain : (Packet.t -> unit) option;
  mutable unmatched : int;
}

let create net ~node =
  let t = { net; node; handlers = Hashtbl.create 8; plain = None;
            unmatched = 0 } in
  Netsim.Net.attach_host net ~node (fun p ->
      match p.Packet.body with
      | Packet.Plain -> (
        match t.plain with Some f -> f p | None -> ())
      | Packet.Tcp tcp -> (
        match
          Hashtbl.find_opt t.handlers
            (demux_key ~conn:tcp.Packet.conn ~subflow:tcp.Packet.subflow)
        with
        | Some f -> f p
        | None -> t.unmatched <- t.unmatched + 1));
  t

let node t = t.node
let net t = t.net

let register t ~conn ~subflow f =
  check_demux_key ~conn ~subflow;
  let key = demux_key ~conn ~subflow in
  if Hashtbl.mem t.handlers key then
    invalid_arg "Endpoint.register: already registered";
  Hashtbl.replace t.handlers key f

let unregister t ~conn ~subflow =
  Hashtbl.remove t.handlers (demux_key ~conn ~subflow)

let on_plain t f = t.plain <- Some f
let unmatched t = t.unmatched
