(** TCP sender state machine (one subflow).

    Implements the loss-recovery mechanics of a NewReno sender — the
    machinery shared by every congestion-control algorithm in the paper:

    - window-clocked transmission ([cwnd] + dup-ACK inflation);
    - three duplicate ACKs trigger fast retransmit and fast recovery,
      with NewReno partial-ACK retransmission (RFC 6582);
    - retransmission timeout collapses to go-back-N from [snd_una] with
      exponential backoff (RFC 6298), honouring Karn's rule for RTT
      samples;
    - window growth/decrease is delegated to a {!Cc.instance}, so CUBIC,
      Reno and the coupled MPTCP algorithms plug in unchanged.

    The sender pulls data: whenever the window opens it asks its
    {!source} for the next chunk, which is how the MPTCP scheduler
    decides which subflow carries which data-sequence range. *)

type chunk = {
  dss : Packet.dss option;  (** MPTCP mapping; [None] for plain TCP *)
  len : int;                (** payload bytes, 1..mss *)
}

type source = max_len:int -> chunk option
(** [source ~max_len] returns the next chunk for this subflow (at most
    [max_len] bytes), or [None] when the application/scheduler has
    nothing for it right now.  A subflow refused data is re-activated
    with {!kick}. *)

type config = {
  mss : int;
  initial_cwnd : float;      (** MSS; Linux IW10 default *)
  initial_ssthresh : float;  (** effectively infinite by default *)
  dupack_threshold : int;
  sack : bool;
      (** SACK-based loss recovery (RFC 2018/6675): the receiver's SACK
          blocks feed a scoreboard, recovery retransmits only true holes,
          and post-RTO go-back-N skips delivered segments.  Default
          [true], matching the Linux stack the paper measured; [false]
          selects plain NewReno with dup-ACK window inflation. *)
  handshake : bool;
      (** model the SYN / SYN-ACK exchange: the subflow sends nothing
          until the handshake completes (one RTT, with RTO-backed SYN
          retransmission), and the SYN round-trip primes the RTT
          estimator.  Default [false]: subflows start established, the
          calibrated behaviour of the reproduction experiments. *)
  ecn : bool;
      (** send data as ECN-capable (ECT) and respond to ECN Echo like a
          loss, at most once per window (RFC 3168).  Pairs with an
          ECN-enabled RED queue ({!Netsim.Qdisc.default_red_ecn}).
          Default [false]. *)
  initial_rto : Engine.Time.t;
  min_rto : Engine.Time.t;
  max_rto : Engine.Time.t;
}

val default_config : config

type stats = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_recoveries : int;
  mutable bytes_acked : int;
}

type t

val create :
  sched:Engine.Sched.t ->
  config:config ->
  conn:int ->
  subflow:int ->
  src:Packet.addr ->
  dst:Packet.addr ->
  tag:Packet.tag ->
  fresh_id:(unit -> int) ->
  transmit:(Packet.t -> unit) ->
  ?pool:Packet.Pool.t ->
  source:source ->
  cc:Cc.factory ->
  ?group:(unit -> Cc.group) ->
  ?self_index:(unit -> int) ->
  unit -> t
(** [group]/[self_index] give coupled controllers their view of the
    owning connection — [group ()] returns the connection's flat
    {!Cc.group} with every slot synced to its sender's live state; they
    default to "this subflow alone" (a private 1-slot group).

    [pool] (normally the owning {!Netsim.Net.pool}) lets the sender
    recycle released packet records instead of allocating fresh ones;
    omitted, every segment allocates as before. *)

val handle_ack : t -> Packet.tcp -> unit
(** Feed an arriving ACK (or SYN-ACK) for this subflow. *)

val is_established : t -> bool
(** [true] once the handshake completed (always, when [handshake] is
    off). *)

val syn_retransmits : t -> int

val kick : t -> unit
(** Attempt to transmit now (new data became available, or the scheduler
    re-assigned this subflow). *)

val penalize : t -> unit
(** Apply the congestion controller's loss decrease without entering
    recovery — MPTCP's penalization of a subflow that is blocking the
    connection-level window (Raiciu et al., NSDI 2012).  No-op while the
    subflow is already in recovery. *)

val cwnd : t -> float
(** Congestion window in MSS units. *)

val ssthresh : t -> float
val in_recovery : t -> bool
val in_flight_bytes : t -> int

val pipe_consistent : t -> bool
(** [true] iff the incrementally maintained RFC 6675 pipe equals an O(n)
    recount of the SACK scoreboard.  Audit hook: the send loop gates on
    the incremental counter, so drift here means wrong pacing. *)

val scoreboard_consistent : t -> bool
(** [true] iff the flat scoreboard is structurally sound: outstanding
    segments contiguous and increasing, and the O(1) SACKed-segment
    counter equal to a recount.  Audit hook ([tcp.scoreboard]): fast
    retransmit triggers off the counter, so drift here means wrong
    recovery entry. *)

val srtt : t -> Engine.Time.t option
val rto : t -> Engine.Time.t
val stats : t -> stats
val cc_name : t -> string
val mss : t -> int
val tag : t -> Packet.tag

val snd_una : t -> int
(** Lowest unacknowledged sequence number. *)

val snd_nxt : t -> int
(** Next sequence number to transmit. *)

type cc_state =
  | Open  (** normal operation (slow start or congestion avoidance) *)
  | Recovery  (** fast recovery after duplicate ACKs / SACK loss *)
  | Loss  (** retransmission timeout; window collapsed, go-back-N *)

type monitor_event =
  | Seg_sent of { seq : int; len : int; retx : bool }
      (** a data segment left the sender (fresh or retransmitted) *)
  | Ack_advanced of { una : int }
      (** a cumulative ACK moved [snd_una] forward to [una] *)
  | Cwnd_changed of { cwnd : float }
      (** congestion control adjusted the window (new value, in MSS) *)
  | State_changed of { state : cc_state }
      (** the sender crossed a loss-state boundary *)

val set_monitor : t -> (monitor_event -> unit) option -> unit
(** Installs (or clears) an event tap for the audit and observability
    subsystems; fires after the sender's own state is updated.  [None]
    (the default) costs one mutable load per event. *)

val monitor : t -> (monitor_event -> unit) option
(** The currently installed tap, so a second subscriber can chain
    rather than clobber it. *)

val consecutive_timeouts : t -> int
(** RTO expiries (data or SYN) since the last forward ACK progress —
    resets to zero whenever [snd_una] advances or the handshake
    completes.  A run of these is the liveness signal that the path is
    dead (every retransmission, at exponentially backed-off intervals,
    vanished). *)

val forgive_timeouts : t -> unit
(** Zero the {!consecutive_timeouts} count without ACK progress.  Called
    when a path is administratively revived: the stale count (and the
    still-backed-off retransmit timer) predate the repair, and must not
    be allowed to re-trip the liveness threshold on the next expiry. *)

val set_on_timeout : t -> (unit -> unit) option -> unit
(** Installs (or clears) a callback fired after each RTO expiry has been
    processed ({!consecutive_timeouts} already incremented).  Distinct
    from {!set_monitor} so path-liveness detection keeps working when
    the audit claims the monitor slot. *)

val sync_group_slot : t -> Cc.group -> int -> unit
(** [sync_group_slot t g i] refreshes slot [i] of the flat coupled-CC
    group [g] from this sender's live state (cwnd, smoothed RTT, loss
    interval, established flag) — in place, no allocation.  Called by
    the owning connection for every subflow before handing [g] to a
    coupled controller. *)

val throughput_bps : t -> now:Engine.Time.t -> float
(** Average acknowledged goodput since the first transmission. *)
