(* All-float state record: OCaml stores float-only records flat, so the
   per-ACK field writes below never allocate a boxed float.  The
   immutable configuration (c, beta, fast_convergence) lives in the
   factory closure to keep the record float-only. *)
type state = {
  mutable w_max : float;        (* window just before the last reduction *)
  mutable epoch_start : float;  (* seconds; < 0 when no epoch is open *)
  mutable k : float;            (* time to regrow to w_max, seconds *)
  mutable origin : float;       (* plateau window of the current epoch *)
  mutable w_est : float;        (* Reno-equivalent window (TCP friendliness) *)
  mutable acked_in_epoch : float; (* MSS acked since epoch start *)
}

let make () =
  { w_max = 0.0; epoch_start = -1.0; k = 0.0; origin = 0.0; w_est = 0.0;
    acked_in_epoch = 0.0 }

let open_epoch st ~c ~now ~cwnd =
  st.epoch_start <- now;
  st.acked_in_epoch <- 0.0;
  if cwnd < st.w_max then begin
    st.k <- Float.cbrt ((st.w_max -. cwnd) /. c);
    st.origin <- st.w_max
  end
  else begin
    st.k <- 0.0;
    st.origin <- cwnd
  end;
  st.w_est <- cwnd

let congestion_avoidance st ~c ~reno_gain (ctx : Cc.ctx) ~acked_mss =
  let now = ctx.Cc.now_s () in
  let cwnd = ctx.Cc.get_cwnd () in
  let rtt = ctx.Cc.srtt_s () in
  if st.epoch_start < 0.0 then open_epoch st ~c ~now ~cwnd;
  st.acked_in_epoch <- st.acked_in_epoch +. acked_mss;
  (* Target window one RTT into the future (RFC 8312 section 4.1). *)
  let t = now -. st.epoch_start +. rtt in
  let dt = t -. st.k in
  let w_cubic = (c *. dt *. dt *. dt) +. st.origin in
  (* Reno-equivalent window grown at the standard coupled rate
     (section 4.2): 3 (1-beta) / (1+beta) MSS per RTT. *)
  st.w_est <- st.w_est +. (reno_gain *. acked_mss /. cwnd);
  let target =
    if w_cubic < st.w_est then st.w_est
    else Float.min w_cubic (1.5 *. cwnd)
  in
  if target > cwnd then
    ctx.Cc.set_cwnd (cwnd +. ((target -. cwnd) /. cwnd *. acked_mss))
  else
    (* Minimal growth to stay responsive near the plateau. *)
    ctx.Cc.set_cwnd (cwnd +. (0.01 *. acked_mss /. cwnd))

let factory_with ?(c = 0.4) ?(beta = 0.7) ?(fast_convergence = true) () ctx =
  let st = make () in
  let reno_gain = 3.0 *. (1.0 -. beta) /. (1.0 +. beta) in
  let on_ack ~acked =
    let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
    if not (Cc.slow_start_ack ctx ~acked) then
      congestion_avoidance st ~c ~reno_gain ctx ~acked_mss
  in
  let reduce () =
    let cwnd = ctx.Cc.get_cwnd () in
    st.epoch_start <- -1.0;
    if fast_convergence && cwnd < st.w_max then
      (* Release capacity faster when the window is still shrinking. *)
      st.w_max <- cwnd *. (2.0 -. beta) /. 2.0
    else st.w_max <- cwnd;
    Float.max Cc.min_cwnd (cwnd *. beta)
  in
  let on_loss () =
    let w = reduce () in
    ctx.Cc.set_ssthresh w;
    ctx.Cc.set_cwnd w
  in
  let on_rto () =
    let w = reduce () in
    ctx.Cc.set_ssthresh w;
    ctx.Cc.set_cwnd 1.0
  in
  { Cc.name = "cubic"; on_ack; on_loss; on_rto }

let factory ctx = factory_with () ctx
