(** TCP receiver (one subflow).

    Cumulative ACKs with out-of-order buffering: every arriving data
    segment triggers an immediate ACK carrying [rcv_nxt] (duplicate ACKs
    are what drive the sender's fast retransmit).  In-order payload is
    handed, with its DSS mapping, to the connection layer for
    data-sequence reassembly. *)

type t

val create :
  sched:Engine.Sched.t ->
  conn:int ->
  subflow:int ->
  addr:Packet.addr ->       (* this receiver's node *)
  peer:Packet.addr ->
  tag:Packet.tag ->
  fresh_id:(unit -> int) ->
  transmit:(Packet.t -> unit) ->
  ?pool:Packet.Pool.t ->
  on_deliver:(seq:int -> len:int -> dss:Packet.dss option -> unit) ->
  data_ack:(unit -> int) ->
  ?delayed_ack:bool ->
  ?ack_delay:Engine.Time.t ->
  unit -> t
(** [on_deliver] fires once per segment, in subflow-sequence order;
    [data_ack ()] supplies the connection-level cumulative ACK stamped on
    every outgoing ACK.

    With [delayed_ack] (default [false]: one ACK per segment, the
    simulator's calibrated behaviour), in-order segments are acknowledged
    every second segment or after [ack_delay] (default 40 ms, the Linux
    quick-ack ballpark), whichever comes first; out-of-order and
    duplicate segments are always acknowledged immediately, as fast
    retransmit requires (RFC 5681 section 4.2). *)

val acks_sent : t -> int

val handle_data : t -> Packet.t -> unit

val rcv_nxt : t -> int
val out_of_order : t -> int
(** Segments currently buffered out of order. *)

val segments_received : t -> int
val duplicates : t -> int

type monitor_event = Delivered of { seq : int; len : int }
    (** a segment was handed to [on_deliver]; by construction
        [seq <= old rcv_nxt < seq + len] and the new [rcv_nxt] is
        [seq + len] *)

val set_monitor : t -> (monitor_event -> unit) option -> unit
(** Installs (or clears) a delivery tap for the audit subsystem; fires
    after [rcv_nxt] has been advanced. *)

val monitor : t -> (monitor_event -> unit) option
(** The currently installed tap, so a second subscriber can chain
    rather than clobber it. *)
