(* Flat SACK scoreboard: the sender's retransmission queue as a ring of
   parallel arrays instead of a [Map.Make(Int)].

   The access pattern justifying the layout: segments are only ever
   appended at the right edge (new data leaves at [snd_nxt = snd_max],
   so appended sequence numbers are contiguous and increasing) and only
   ever removed at the left edge (a cumulative ACK drops fully covered
   segments; SACKed segments stay until cumulatively acknowledged).
   That makes the live set a FIFO over a contiguous sequence range —
   exactly a ring buffer.  Lookups that were O(log n) map descents
   (go-back-N resume point) or O(n) whole-map walks (SACK marking)
   become binary searches over a sorted int array plus a short linear
   walk over the covered range, and the per-packet add/remove stops
   allocating map nodes entirely — the single largest contributor to
   the pre-flattening 132.5 allocated words per simulated packet.

   Indices handed out ([append], [find], [idx]) are physical positions
   in the ring, stable for a segment's whole lifetime because cells
   never move (growth re-bases, so callers must not hold indices across
   [append]; the sender re-derives them per ACK, which is the natural
   usage anyway).  Logical position [i] (0 = oldest) maps to physical
   [idx t i]. *)

type t = {
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable head : int; (* physical index of the oldest segment *)
  mutable len : int;
  mutable seqs : int array;
  mutable lens : int array;
  mutable sents : Engine.Time.t array;
  mutable retxs : int array;
  mutable epochs : int array; (* recovery epoch of the last hole retransmit *)
  mutable flags : int array;  (* bit 0: SACKed, bit 1: presumed lost *)
  mutable dsss : Packet.dss option array;
  mutable sacked : int;       (* segments currently flagged SACKed *)
}

let initial_capacity = 64

let create () =
  {
    mask = initial_capacity - 1;
    head = 0;
    len = 0;
    seqs = Array.make initial_capacity 0;
    lens = Array.make initial_capacity 0;
    sents = Array.make initial_capacity Engine.Time.zero;
    retxs = Array.make initial_capacity 0;
    epochs = Array.make initial_capacity 0;
    flags = Array.make initial_capacity 0;
    dsss = Array.make initial_capacity None;
    sacked = 0;
  }

let length t = t.len
let is_empty t = t.len = 0
let idx t i = (t.head + i) land t.mask

let seq_at t p = t.seqs.(p)
let len_at t p = t.lens.(p)
let end_at t p = t.seqs.(p) + t.lens.(p)
let dss_at t p = t.dsss.(p)
let sent_at t p = t.sents.(p)
let set_sent_at t p v = t.sents.(p) <- v
let retx_at t p = t.retxs.(p)
let incr_retx t p = t.retxs.(p) <- t.retxs.(p) + 1
let epoch_at t p = t.epochs.(p)
let set_epoch t p v = t.epochs.(p) <- v
let sacked_at t p = t.flags.(p) land 1 <> 0
let lost_at t p = t.flags.(p) land 2 <> 0
let sacked_count t = t.sacked

let mark_sacked t p =
  if t.flags.(p) land 1 = 0 then begin
    t.flags.(p) <- t.flags.(p) lor 1;
    t.sacked <- t.sacked + 1;
    true
  end
  else false

let mark_lost t p = t.flags.(p) <- t.flags.(p) lor 2
let clear_lost t p = t.flags.(p) <- t.flags.(p) land lnot 2

let end_seq t =
  if t.len = 0 then invalid_arg "Scoreboard.end_seq: empty";
  end_at t (idx t (t.len - 1))

let grow t =
  let cap = t.mask + 1 in
  let fresh = 2 * cap in
  let copy a fill =
    let b = Array.make fresh fill in
    for i = 0 to t.len - 1 do
      b.(i) <- a.((t.head + i) land t.mask)
    done;
    b
  in
  t.seqs <- copy t.seqs 0;
  t.lens <- copy t.lens 0;
  t.sents <- copy t.sents Engine.Time.zero;
  t.retxs <- copy t.retxs 0;
  t.epochs <- copy t.epochs 0;
  t.flags <- copy t.flags 0;
  t.dsss <- copy t.dsss None;
  t.head <- 0;
  t.mask <- fresh - 1

let append t ~seq ~len ~dss =
  if len <= 0 then invalid_arg "Scoreboard.append: empty segment";
  if t.len > 0 && seq <> end_seq t then
    invalid_arg "Scoreboard.append: non-contiguous sequence";
  if t.len > t.mask then grow t;
  let p = (t.head + t.len) land t.mask in
  t.seqs.(p) <- seq;
  t.lens.(p) <- len;
  t.sents.(p) <- Engine.Time.zero;
  t.retxs.(p) <- 0;
  t.epochs.(p) <- -1;
  t.flags.(p) <- 0;
  t.dsss.(p) <- dss;
  t.len <- t.len + 1;
  p

let pop_front t =
  if t.len = 0 then invalid_arg "Scoreboard.pop_front: empty";
  let p = t.head in
  if t.flags.(p) land 1 <> 0 then t.sacked <- t.sacked - 1;
  t.dsss.(p) <- None;
  t.head <- (p + 1) land t.mask;
  t.len <- t.len - 1

(* Logical index of the first segment with [seq_at >= x]; [length t]
   when every segment starts below [x]. *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.seqs.((t.head + mid) land t.mask) < x then lo := mid + 1
    else hi := mid
  done;
  !lo

let find t x =
  let i = lower_bound t x in
  if i < t.len then begin
    let p = idx t i in
    if t.seqs.(p) = x then p else -1
  end
  else -1

(* Bytes neither SACKed nor marked lost: the RFC 6675 pipe recount the
   audit invariant compares the sender's incremental counter against. *)
let pipe_recount t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    let p = idx t i in
    if t.flags.(p) land 3 = 0 then acc := !acc + t.lens.(p)
  done;
  !acc

(* Structural self-check for the audit layer: segments contiguous and
   increasing, and the O(1) SACK counter agreeing with a recount. *)
let consistent t =
  let ok = ref true in
  let sacked = ref 0 in
  for i = 0 to t.len - 1 do
    let p = idx t i in
    if t.lens.(p) <= 0 then ok := false;
    if i > 0 && t.seqs.(p) <> end_at t (idx t (i - 1)) then ok := false;
    if t.flags.(p) land 1 <> 0 then incr sacked
  done;
  !ok && !sacked = t.sacked
