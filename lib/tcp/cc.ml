(* The coupled-controller view of a connection is a flat "group": one
   float array per per-subflow quantity, refreshed in place by each
   sender.  The previous representation — a fresh array of sibling
   records rebuilt by closure on every ACK of every subflow — allocated
   the array, five-field records, and (records mixing floats with other
   fields) a box per float, all minor-GC churn on the per-ACK path.
   Here the aggregate inputs (established count, per-slot windows and
   RTTs) are updated incrementally by plain stores, and the controllers
   fold over unboxed float arrays. *)

type group = {
  n : int;                      (* subflows in the owning connection *)
  cwnds : float array;          (* congestion windows, MSS units *)
  srtts : float array;          (* smoothed RTTs, seconds *)
  loss_intervals : float array; (* OLIA l_p, bytes *)
  established : bool array;     (* has the slot sent at least one segment *)
  mutable n_established : int;  (* O(1) aggregate over [established] *)
  scratch : float array;        (* fold accumulators (see cc.mli) *)
  qualities : float array;      (* per-slot scratch, n cells *)
}

let group_create n =
  if n <= 0 then invalid_arg "Cc.group_create: need at least one slot";
  {
    n;
    cwnds = Array.make n 0.0;
    srtts = Array.make n 1.0;
    loss_intervals = Array.make n 0.0;
    established = Array.make n false;
    n_established = 0;
    scratch = Array.make 2 0.0;
    qualities = Array.make n 0.0;
  }

let group_set_established g i v =
  if g.established.(i) <> v then begin
    g.established.(i) <- v;
    g.n_established <- (g.n_established + if v then 1 else -1)
  end

type ctx = {
  now_s : unit -> float;
  mss : int;
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
  srtt_s : unit -> float;
  group : unit -> group;
  self_index : unit -> int;
}

type instance = {
  name : string;
  on_ack : acked:int -> unit;
  on_loss : unit -> unit;
  on_rto : unit -> unit;
}

type factory = ctx -> instance

let min_cwnd = 2.0

let in_slow_start ctx = ctx.get_cwnd () < ctx.get_ssthresh ()

let slow_start_ack ctx ~acked =
  let cwnd = ctx.get_cwnd () in
  let ssthresh = ctx.get_ssthresh () in
  if cwnd < ssthresh then begin
    let grown = cwnd +. (float_of_int acked /. float_of_int ctx.mss) in
    ctx.set_cwnd (Float.min grown ssthresh);
    true
  end
  else false
