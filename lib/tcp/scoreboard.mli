(** Flat SACK scoreboard: the sender's retransmission queue.

    A ring buffer of parallel arrays over the in-flight sequence range.
    The sender's access pattern makes this exact: segments are appended
    only at the right edge (new data always leaves at [snd_nxt =
    snd_max], so sequence numbers are contiguous and increasing) and
    removed only at the left (cumulative ACKs drop covered segments
    from the front; SACKed segments stay until cumulatively covered).
    Appends, front drops and flag flips are O(1) and allocation-free;
    position lookups are binary searches.

    Physical indices returned by {!append}/{!find}/{!idx} are stable
    until the next {!append} (growth re-bases the ring), which suits
    the sender's per-ACK usage; logical index 0 is the oldest segment.

    The QCheck equivalence suite ([Fuzz.scoreboard_equivalence]) drives
    this module against a reference [Map.Make(Int)] model on random
    SACK/loss traces, and the [tcp.scoreboard] audit invariant recounts
    {!consistent} plus the RFC 6675 pipe on every cumulative ACK of an
    audited run. *)

type t

val create : unit -> t

val length : t -> int
(** Number of outstanding segments. *)

val is_empty : t -> bool

val idx : t -> int -> int
(** [idx t i] is the physical position of logical segment [i]
    (0 = oldest).  No bounds check. *)

val append : t -> seq:int -> len:int -> dss:Packet.dss option -> int
(** Append a fresh segment at the right edge and return its physical
    position.  Raises [Invalid_argument] if [len <= 0] or [seq] does
    not continue the last segment exactly. *)

val pop_front : t -> unit
(** Drop the oldest segment.  Raises [Invalid_argument] when empty. *)

val lower_bound : t -> int -> int
(** [lower_bound t x] is the logical index of the first segment whose
    sequence number is [>= x], or [length t] if none is. *)

val find : t -> int -> int
(** Physical position of the segment starting exactly at the given
    sequence number, or [-1]. *)

val end_seq : t -> int
(** Sequence number one past the last segment.  Raises
    [Invalid_argument] when empty. *)

(** {2 Per-segment accessors (physical positions)} *)

val seq_at : t -> int -> int
val len_at : t -> int -> int

val end_at : t -> int -> int
(** [seq_at + len_at]. *)

val dss_at : t -> int -> Packet.dss option
val sent_at : t -> int -> Engine.Time.t
val set_sent_at : t -> int -> Engine.Time.t -> unit

val retx_at : t -> int -> int
(** Times this segment has been retransmitted. *)

val incr_retx : t -> int -> unit

val epoch_at : t -> int -> int
(** Recovery epoch of the segment's last hole retransmission
    ([-1] until the first). *)

val set_epoch : t -> int -> int -> unit
val sacked_at : t -> int -> bool
val lost_at : t -> int -> bool

val mark_sacked : t -> int -> bool
(** Flag the segment SACKed; [true] iff this was a transition (so the
    caller can maintain its incremental pipe). *)

val mark_lost : t -> int -> unit
(** Flag the segment presumed lost (idempotent; caller maintains the
    pipe across the transition). *)

val clear_lost : t -> int -> unit
(** Clear the lost flag (the segment was just retransmitted). *)

val sacked_count : t -> int
(** Segments currently flagged SACKed, O(1). *)

val pipe_recount : t -> int
(** O(n) recount of bytes neither SACKed nor lost — the oracle the
    [tcp.pipe] audit invariant compares the incremental counter to. *)

val consistent : t -> bool
(** Structural self-check: contiguous increasing segments and a SACK
    counter that matches a recount. *)
