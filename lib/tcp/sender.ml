type chunk = { dss : Packet.dss option; len : int }
type source = max_len:int -> chunk option

type config = {
  mss : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  dupack_threshold : int;
  sack : bool;
  handshake : bool;
  ecn : bool;
  initial_rto : Engine.Time.t;
  min_rto : Engine.Time.t;
  max_rto : Engine.Time.t;
}

let default_config =
  {
    mss = Packet.default_mss;
    initial_cwnd = 10.0;
    initial_ssthresh = 1e9;
    dupack_threshold = 3;
    sack = true;
    handshake = false;
    ecn = false;
    initial_rto = Engine.Time.s 1;
    min_rto = Engine.Time.ms 200;
    max_rto = Engine.Time.s 60;
  }

type stats = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_recoveries : int;
  mutable bytes_acked : int;
}

type conn_state = Closed | Syn_sent | Established

type cc_state = Open | Recovery | Loss

type monitor_event =
  | Seg_sent of { seq : int; len : int; retx : bool }
  | Ack_advanced of { una : int }
  | Cwnd_changed of { cwnd : float }
  | State_changed of { state : cc_state }

type t = {
  sched : Engine.Sched.t;
  config : config;
  conn : int;
  subflow : int;
  src : Packet.addr;
  dst : Packet.addr;
  tag : Packet.tag;
  fresh_id : unit -> int;
  transmit : Packet.t -> unit;
  pool : Packet.Pool.t option;
  source : source;
  rtt : Rtt.t;
  mutable cc : Cc.instance option; (* set right after creation *)
  mutable cwnd : float;
  mutable ssthresh : float;
  sb : Scoreboard.t;
      (* outstanding segments, oldest first: the flat ring that replaced
         the [Map.Make(Int)] scoreboard (see scoreboard.ml's header for
         why the access pattern makes a ring exact) *)
  mutable pipe_bytes : int;
      (* RFC 6675 pipe, maintained incrementally across scoreboard flag
         transitions: the old O(n) fold ran once per packet inside the
         send loop, turning every window into a quadratic walk *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable inflation : float; (* MSS; dup-ACK inflation (non-SACK mode) *)
  mutable recovery_epoch : int;
  mutable highest_sacked : int; (* end of the highest SACKed range seen *)
  mutable holes_below : int;
      (* loss-marking cursor: every segment ending at or below this has
         been considered by [mark_lost_holes] in the current recovery *)
  mutable hole_seq : int;
      (* retransmission cursor: no unhandled hole starts below this.
         Pulled back whenever a segment below it is marked lost, reset
         on entering recovery — so [next_hole] is amortised O(1) instead
         of a scan from the left edge per call *)
  mutable rto_timer : Engine.Sched.timer option;
  mutable rto_thunk : unit -> unit;
      (* [fun () -> on_rto t], built once on first arm: the RTO is
         rearmed on every ACK, so a fresh closure per arm is
         steady-state allocation *)
  mutable established : bool;
  mutable conn_state : conn_state;
  mutable syn_sent_at : Engine.Time.t;
  mutable syn_retx : int;
  mutable first_send : Engine.Time.t option;
  (* OLIA loss intervals: bytes acked since the last loss event, and in
     the previous inter-loss interval. *)
  mutable interval_cur : int;
  mutable interval_prev : int;
  mutable ecn_react_until : int; (* no second ECN response before this seq *)
  mutable consecutive_timeouts : int;
      (* RTO expiries since the last forward ACK progress — the liveness
         signal a path manager caps to declare the path dead *)
  mutable on_timeout : (unit -> unit) option;
      (* explicit liveness callback, separate from [monitor] because the
         audit overwrites monitors when attached *)
  mutable monitor : (monitor_event -> unit) option;
  stats : stats;
}

let cc_exn t =
  match t.cc with
  | Some cc -> cc
  | None -> assert false

(* Not-yet-built sentinel for the cached RTO thunk.  A module-level
   closure has one stable identity; [ignore] does not — it is the
   primitive [%ignore], eta-expanded to a distinct closure at every use
   site, so [t.rto_thunk == ignore] would never be true and the timer
   would fire the sentinel no-op forever. *)
let unarmed () = ()

let default_srtt_s = 0.01 (* before any sample: 10 ms, a LAN-scale guess *)

let srtt_s t =
  match Rtt.srtt t.rtt with
  | Some v -> Engine.Time.to_float_s v
  | None -> default_srtt_s

(* Refresh this subflow's slot of the coupled-CC group in place: plain
   float/flag stores into the flat arrays, no snapshot records.  The
   previous design rebuilt a boxed sibling-record array on every ACK of
   every subflow. *)
let sync_group_slot t (g : Cc.group) i =
  g.Cc.cwnds.(i) <- t.cwnd;
  g.Cc.srtts.(i) <- srtt_s t;
  g.Cc.loss_intervals.(i) <-
    float_of_int (max t.interval_cur t.interval_prev);
  Cc.group_set_established g i t.established

let create ~sched ~config ~conn ~subflow ~src ~dst ~tag ~fresh_id ~transmit
    ?pool ~source ~cc ?group ?self_index () =
  let t =
    {
      sched; config; conn; subflow; src; dst; tag; fresh_id; transmit; pool;
      source;
      rtt =
        Rtt.create ~initial_rto:config.initial_rto ~min_rto:config.min_rto
          ~max_rto:config.max_rto ();
      cc = None;
      cwnd = config.initial_cwnd;
      ssthresh = config.initial_ssthresh;
      sb = Scoreboard.create ();
      pipe_bytes = 0;
      snd_una = 0;
      snd_nxt = 0;
      snd_max = 0;
      dupacks = 0;
      in_recovery = false;
      recover = 0;
      inflation = 0.0;
      recovery_epoch = 0;
      highest_sacked = 0;
      holes_below = 0;
      hole_seq = 0;
      rto_timer = None;
      rto_thunk = unarmed;
      established = false;
      conn_state = (if config.handshake then Closed else Established);
      syn_sent_at = Engine.Time.zero;
      syn_retx = 0;
      first_send = None;
      interval_cur = 0;
      interval_prev = 0;
      ecn_react_until = 0;
      consecutive_timeouts = 0;
      on_timeout = None;
      monitor = None;
      stats =
        { segments_sent = 0; retransmits = 0; timeouts = 0;
          fast_recoveries = 0; bytes_acked = 0 };
    }
  in
  let group =
    match group with
    | Some f -> f
    | None ->
      (* Single-path default: a one-slot group refreshed from this
         sender alone. *)
      let g = Cc.group_create 1 in
      fun () ->
        sync_group_slot t g 0;
        g
  in
  let self_index = match self_index with Some f -> f | None -> fun () -> 0 in
  let ctx =
    {
      Cc.now_s = (fun () -> Engine.Time.to_float_s (Engine.Sched.now sched));
      mss = config.mss;
      get_cwnd = (fun () -> t.cwnd);
      set_cwnd =
        (fun w ->
          t.cwnd <- Float.max 1.0 w;
          match t.monitor with
          | None -> ()
          | Some f -> f (Cwnd_changed { cwnd = t.cwnd }));
      get_ssthresh = (fun () -> t.ssthresh);
      set_ssthresh = (fun w -> t.ssthresh <- Float.max Cc.min_cwnd w);
      srtt_s = (fun () -> srtt_s t);
      group;
      self_index;
    }
  in
  t.cc <- Some (cc ctx);
  t

(* --- SACK scoreboard --- *)

(* Scoreboard flag transitions funnel through these helpers so the
   incremental pipe stays consistent: a segment counts toward the pipe
   exactly while it is neither SACKed nor marked lost. *)
let mark_sacked t p =
  if Scoreboard.mark_sacked t.sb p then
    if not (Scoreboard.lost_at t.sb p) then
      t.pipe_bytes <- t.pipe_bytes - Scoreboard.len_at t.sb p

let mark_lost t p =
  if not (Scoreboard.lost_at t.sb p || Scoreboard.sacked_at t.sb p) then begin
    Scoreboard.mark_lost t.sb p;
    t.pipe_bytes <- t.pipe_bytes - Scoreboard.len_at t.sb p;
    let s = Scoreboard.seq_at t.sb p in
    if s < t.hole_seq then t.hole_seq <- s
  end

let process_sack t blocks =
  List.iter
    (fun (s, e) ->
      if e > s then begin
        if e > t.highest_sacked then t.highest_sacked <- e;
        (* Outstanding segments are contiguous, so the block covers the
           run of segments from the first starting at or above [s] up
           to the last ending at or below [e] — a binary search and a
           walk over the covered range, where the map version visited
           every outstanding segment per block. *)
        let sb = t.sb in
        let n = Scoreboard.length sb in
        let i = ref (Scoreboard.lower_bound sb s) in
        let inside = ref true in
        while !inside && !i < n do
          let p = Scoreboard.idx sb !i in
          if Scoreboard.end_at sb p <= e then begin
            if not (Scoreboard.sacked_at sb p) then mark_sacked t p;
            incr i
          end
          else inside := false
        done
      end)
    blocks

(* RFC 6675-flavoured pipe: bytes believed in flight.  SACKed segments
   have arrived; segments marked lost are out of the network until their
   retransmission (which clears the mark) puts them back. *)
let pipe t = t.pipe_bytes

(* The scoreboard walk [pipe] used to be; kept as the oracle the
   invariant auditor compares the incremental counter against. *)
let pipe_scoreboard t = Scoreboard.pipe_recount t.sb

let pipe_consistent t = t.pipe_bytes = pipe_scoreboard t

let scoreboard_consistent t = Scoreboard.consistent t.sb

(* Mark as lost every unsacked segment with SACKed data wholly above it
   that has not already been retransmitted in this recovery (RFC 6675
   IsLost, simplified to the one-block criterion).  The [holes_below]
   cursor makes the repeated per-ACK calls walk only the range newly
   covered by [highest_sacked]: below the cursor every segment is
   already lost, SACKed, or retransmitted in this epoch, and none of
   those can become a fresh candidate within the epoch. *)
let mark_lost_holes t =
  if t.highest_sacked > t.holes_below then begin
    let sb = t.sb in
    let n = Scoreboard.length sb in
    let i0 = Scoreboard.lower_bound sb t.holes_below in
    let i = ref (if i0 > 0 then i0 - 1 else 0) in
    let inside = ref true in
    while !inside && !i < n do
      let p = Scoreboard.idx sb !i in
      if Scoreboard.end_at sb p <= t.highest_sacked then begin
        if
          (not (Scoreboard.sacked_at sb p))
          && Scoreboard.epoch_at sb p < t.recovery_epoch
        then mark_lost t p;
        incr i
      end
      else inside := false
    done;
    t.holes_below <- t.highest_sacked
  end

(* Next retransmission candidate under SACK: the lowest lost segment not
   yet retransmitted in this recovery.  Resumes from the [hole_seq]
   cursor; segments skipped are SACKed or already retransmitted in this
   epoch, neither of which can turn back into a candidate, and any
   late marking below the cursor pulls it back (see [mark_lost]). *)
let next_hole t =
  let sb = t.sb in
  let n = Scoreboard.length sb in
  let i = ref (Scoreboard.lower_bound sb t.hole_seq) in
  let found = ref (-1) in
  while !found < 0 && !i < n do
    let p = Scoreboard.idx sb !i in
    if
      Scoreboard.lost_at sb p
      && (not (Scoreboard.sacked_at sb p))
      && Scoreboard.epoch_at sb p < t.recovery_epoch
    then found := p
    else incr i
  done;
  if !found >= 0 then t.hole_seq <- Scoreboard.seq_at sb !found
  else if n > 0 then t.hole_seq <- Scoreboard.end_seq sb;
  !found

(* --- timers --- *)

let cancel_rto t =
  match t.rto_timer with
  | Some timer ->
    Engine.Sched.cancel timer;
    t.rto_timer <- None
  | None -> ()

let rec arm_rto t =
  cancel_rto t;
  if t.conn_state = Syn_sent || not (Scoreboard.is_empty t.sb) then begin
    if t.rto_thunk == unarmed then t.rto_thunk <- (fun () -> on_rto t);
    t.rto_timer <-
      Some (Engine.Sched.after t.sched (Rtt.rto t.rtt) t.rto_thunk)
  end

and send_syn t ~is_retx =
  let now = Engine.Sched.now t.sched in
  t.conn_state <- Syn_sent;
  t.syn_sent_at <- now;
  if is_retx then t.syn_retx <- t.syn_retx + 1;
  t.transmit
    (Packet.Pool.acquire_tcp ?pool:t.pool ~id:(t.fresh_id ()) ~src:t.src
       ~dst:t.dst ~tag:t.tag ~born:now ~conn:t.conn ~subflow:t.subflow
       ~kind:Packet.Syn ~seq:0 ~payload:0 ~ack:0 ~sack:[] ~ece:false
       ~dss:None ~data_ack:0 ());
  arm_rto t

(* --- transmission --- *)

and send_seg t p ~is_retx =
  let now = Engine.Sched.now t.sched in
  if t.first_send = None then t.first_send <- Some now;
  t.established <- true;
  let sb = t.sb in
  let seq = Scoreboard.seq_at sb p and len = Scoreboard.len_at sb p in
  Scoreboard.set_sent_at sb p now;
  if Scoreboard.lost_at sb p then begin
    Scoreboard.clear_lost sb p;
    if not (Scoreboard.sacked_at sb p) then
      t.pipe_bytes <- t.pipe_bytes + len
  end;
  if is_retx then begin
    Scoreboard.incr_retx sb p;
    t.stats.retransmits <- t.stats.retransmits + 1
  end;
  t.stats.segments_sent <- t.stats.segments_sent + 1;
  let pkt =
    Packet.Pool.acquire_tcp ?pool:t.pool ~id:(t.fresh_id ()) ~src:t.src
      ~dst:t.dst ~tag:t.tag ~born:now
      ~ecn:(if t.config.ecn then Packet.Ect else Packet.Not_ect)
      ~conn:t.conn ~subflow:t.subflow ~kind:Packet.Data ~seq
      ~payload:len ~ack:0 ~sack:[] ~ece:false
      ~dss:(Scoreboard.dss_at sb p) ~data_ack:0 ()
  in
  t.transmit pkt;
  (match t.monitor with
  | None -> ()
  | Some f -> f (Seg_sent { seq; len; retx = is_retx }));
  if t.rto_timer = None then arm_rto t

and window_bytes t =
  let w = (t.cwnd +. t.inflation) *. float_of_int t.config.mss in
  int_of_float w

and in_flight t = if t.config.sack then pipe t else t.snd_nxt - t.snd_una

and try_send t =
  (* With handshake modelling on, no data moves before the SYN exchange
     completes. *)
  if t.conn_state <> Established then begin
    if t.conn_state = Closed then send_syn t ~is_retx:false
  end
  else try_send_established t

and try_send_established t =
  let budget = ref 1000 in
  let continue = ref true in
  while !continue && !budget > 0 do
    decr budget;
    if in_flight t >= window_bytes t then continue := false
    else begin
      (* Highest priority: SACK hole retransmission during recovery. *)
      let hole =
        if t.config.sack && t.in_recovery then next_hole t else -1
      in
      if hole >= 0 then begin
        Scoreboard.set_epoch t.sb hole t.recovery_epoch;
        send_seg t hole ~is_retx:true
      end
      else if t.snd_nxt < t.snd_max then begin
        (* Go-back-N resend of an already-mapped segment (post-RTO);
           skip segments the scoreboard knows have arrived. *)
        let p = Scoreboard.find t.sb t.snd_nxt in
        if p >= 0 then begin
          if Scoreboard.sacked_at t.sb p then
            t.snd_nxt <- Scoreboard.end_at t.sb p
          else begin
            send_seg t p ~is_retx:true;
            t.snd_nxt <- Scoreboard.end_at t.sb p
          end
        end
        else begin
          (* Hole created by an odd partial ACK: skip to the next known
             segment boundary. *)
          let i = Scoreboard.lower_bound t.sb (t.snd_nxt + 1) in
          if i < Scoreboard.length t.sb then
            t.snd_nxt <- Scoreboard.seq_at t.sb (Scoreboard.idx t.sb i)
          else t.snd_nxt <- t.snd_max
        end
      end
      else begin
        match t.source ~max_len:t.config.mss with
        | None -> continue := false
        | Some { dss; len } ->
          if len <= 0 || len > t.config.mss then
            invalid_arg "Sender: source returned an invalid chunk length";
          let p = Scoreboard.append t.sb ~seq:t.snd_nxt ~len ~dss in
          t.pipe_bytes <- t.pipe_bytes + len;
          send_seg t p ~is_retx:false;
          t.snd_nxt <- t.snd_nxt + len;
          t.snd_max <- max t.snd_max t.snd_nxt
      end
    end
  done

(* --- loss events --- *)

and loss_event t =
  t.interval_prev <- t.interval_cur;
  t.interval_cur <- 0

and on_rto t =
  t.rto_timer <- None;
  if t.conn_state = Syn_sent then begin
    (* Lost SYN or SYN-ACK: back off and retry. *)
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.consecutive_timeouts <- t.consecutive_timeouts + 1;
    Rtt.backoff t.rtt;
    send_syn t ~is_retx:true;
    match t.on_timeout with None -> () | Some f -> f ()
  end
  else if not (Scoreboard.is_empty t.sb) then begin
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.consecutive_timeouts <- t.consecutive_timeouts + 1;
    loss_event t;
    (cc_exn t).Cc.on_rto ();
    Rtt.backoff t.rtt;
    t.in_recovery <- false;
    t.inflation <- 0.0;
    t.dupacks <- 0;
    (match t.monitor with
    | None -> ()
    | Some f -> f (State_changed { state = Loss }));
    (* Everything unacknowledged and unSACKed is presumed lost; rewind
       and let the (collapsed) window re-send, skipping SACKed segments
       (RFC 6675 section 5.1). *)
    for i = 0 to Scoreboard.length t.sb - 1 do
      mark_lost t (Scoreboard.idx t.sb i)
    done;
    t.snd_nxt <- t.snd_una;
    arm_rto t;
    try_send t;
    match t.on_timeout with None -> () | Some f -> f ()
  end

let retransmit_at t seq =
  let p = Scoreboard.find t.sb seq in
  if p >= 0 then send_seg t p ~is_retx:true

let enter_recovery t =
  t.in_recovery <- true;
  (match t.monitor with
  | None -> ()
  | Some f -> f (State_changed { state = Recovery }));
  t.recover <- t.snd_max;
  t.recovery_epoch <- t.recovery_epoch + 1;
  t.holes_below <- 0;
  t.hole_seq <- 0;
  t.stats.fast_recoveries <- t.stats.fast_recoveries + 1;
  loss_event t;
  (cc_exn t).Cc.on_loss ();
  if t.config.sack then begin
    mark_lost_holes t;
    (* The segment at snd_una is the surest hole: the duplicate ACKs
       prove data above it arrived. *)
    if not (Scoreboard.is_empty t.sb) then begin
      let p = Scoreboard.idx t.sb 0 in
      if not (Scoreboard.sacked_at t.sb p) then mark_lost t p
    end;
    let hole = next_hole t in
    if hole >= 0 then begin
      Scoreboard.set_epoch t.sb hole t.recovery_epoch;
      send_seg t hole ~is_retx:true
    end
  end
  else begin
    t.inflation <- float_of_int t.config.dupack_threshold;
    retransmit_at t t.snd_una
  end;
  arm_rto t

let sacked_segments t = Scoreboard.sacked_count t.sb

(* ECN response (RFC 3168 section 6.1.2): treat an ECN Echo like a loss
   for the congestion controller, at most once per window of data. *)
let react_to_ece t (tcp : Packet.tcp) =
  if
    t.config.ecn && tcp.Packet.ece && (not t.in_recovery)
    && t.snd_una >= t.ecn_react_until
  then begin
    loss_event t;
    (cc_exn t).Cc.on_loss ();
    t.ecn_react_until <- t.snd_nxt
  end

let handle_ack t (tcp : Packet.tcp) =
  react_to_ece t tcp;
  if tcp.Packet.kind = Packet.Syn_ack then begin
    if t.conn_state = Syn_sent then begin
      if t.syn_retx = 0 then
        Rtt.sample t.rtt
          (Engine.Time.diff (Engine.Sched.now t.sched) t.syn_sent_at);
      t.conn_state <- Established;
      t.consecutive_timeouts <- 0;
      cancel_rto t;
      try_send t
    end
  end
  else begin
  if t.config.sack then begin
    process_sack t tcp.Packet.sack;
    if t.in_recovery then mark_lost_holes t
  end;
  let a = tcp.Packet.ack in
  if a > t.snd_una then begin
    let newly = a - t.snd_una in
    t.stats.bytes_acked <- t.stats.bytes_acked + newly;
    t.interval_cur <- t.interval_cur + newly;
    (* Drop covered segments from the front; RTT sample from the newest
       segment that was never retransmitted (Karn's rule).  [-1] is the
       no-sample sentinel — send times are never negative. *)
    let sample = ref (-1) in
    let dropping = ref true in
    while !dropping && not (Scoreboard.is_empty t.sb) do
      let p = Scoreboard.idx t.sb 0 in
      if Scoreboard.end_at t.sb p <= a then begin
        if Scoreboard.retx_at t.sb p = 0 then
          sample := Scoreboard.sent_at t.sb p;
        if
          not (Scoreboard.sacked_at t.sb p || Scoreboard.lost_at t.sb p)
        then t.pipe_bytes <- t.pipe_bytes - Scoreboard.len_at t.sb p;
        Scoreboard.pop_front t.sb
      end
      else dropping := false
    done;
    if !sample >= 0 then
      Rtt.sample t.rtt (Engine.Time.diff (Engine.Sched.now t.sched) !sample);
    t.snd_una <- a;
    if t.snd_nxt < a then t.snd_nxt <- a;
    t.consecutive_timeouts <- 0;
    (match t.monitor with
    | None -> ()
    | Some f -> f (Ack_advanced { una = a }));
    t.dupacks <- 0;
    if t.in_recovery then begin
      if a >= t.recover then begin
        (* Full ACK: recovery complete; deflate the window. *)
        t.in_recovery <- false;
        t.inflation <- 0.0;
        match t.monitor with
        | None -> ()
        | Some f -> f (State_changed { state = Open })
      end
      else if not t.config.sack then
        (* Partial ACK (RFC 6582): retransmit the next hole, stay in
           recovery.  Under SACK the hole logic in try_send covers it. *)
        retransmit_at t a
    end
    else (cc_exn t).Cc.on_ack ~acked:newly;
    if Scoreboard.is_empty t.sb then cancel_rto t else arm_rto t;
    try_send t
  end
  else if not (Scoreboard.is_empty t.sb) then begin
    (* Duplicate ACK. *)
    t.dupacks <- t.dupacks + 1;
    if t.in_recovery then begin
      if not t.config.sack then t.inflation <- t.inflation +. 1.0;
      try_send t
    end
    else if
      t.dupacks = t.config.dupack_threshold
      || (t.config.sack && sacked_segments t >= t.config.dupack_threshold
          && t.dupacks >= 1)
    then begin
      enter_recovery t;
      try_send t
    end
  end
  end

let kick t = try_send t

let penalize t =
  if not t.in_recovery then begin
    loss_event t;
    (cc_exn t).Cc.on_loss ()
  end
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let in_recovery t = t.in_recovery
let in_flight_bytes t = t.snd_nxt - t.snd_una
let srtt t = Rtt.srtt t.rtt
let rto t = Rtt.rto t.rtt
let stats t = t.stats
let cc_name t = (cc_exn t).Cc.name
let is_established t = t.conn_state = Established
let syn_retransmits t = t.syn_retx
let mss t = t.config.mss
let tag t = t.tag
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let set_monitor t m = t.monitor <- m
let monitor t = t.monitor
let set_on_timeout t f = t.on_timeout <- f
let consecutive_timeouts t = t.consecutive_timeouts
let forgive_timeouts t = t.consecutive_timeouts <- 0

let throughput_bps t ~now =
  match t.first_send with
  | None -> 0.0
  | Some t0 ->
    let dt = Engine.Time.to_float_s (Engine.Time.diff now t0) in
    if dt <= 0.0 then 0.0
    else float_of_int (t.stats.bytes_acked * 8) /. dt
