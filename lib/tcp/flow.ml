type t = {
  sender : Sender.t;
  mutable delivered : int;
  mutable completed_at : Engine.Time.t option;
  total_bytes : int option;
  started_at : Engine.Time.t;
  sched : Engine.Sched.t;
}

let start ~src ~dst ~tag ~conn ?(config = Sender.default_config)
    ?(cc = Cc_cubic.factory) ?(delayed_ack = false) ?total_bytes
    ?(start_at = Engine.Time.zero) () =
  let net = Endpoint.net src in
  let sched = Netsim.Net.sched net in
  let fresh_id () = Netsim.Net.fresh_packet_id net in
  let next_byte = ref 0 in
  let source ~max_len =
    let remaining =
      match total_bytes with
      | None -> max_len
      | Some total -> min max_len (total - !next_byte)
    in
    if remaining <= 0 then None
    else begin
      next_byte := !next_byte + remaining;
      Some { Sender.dss = None; len = remaining }
    end
  in
  let t =
    {
      sender =
        Sender.create ~sched ~config ~conn ~subflow:0
          ~src:(Endpoint.node src) ~dst:(Endpoint.node dst) ~tag ~fresh_id
          ~transmit:(fun p -> Netsim.Net.inject net ~at:(Endpoint.node src) p)
          ~pool:(Netsim.Net.pool net) ~source ~cc ();
      delivered = 0;
      completed_at = None;
      total_bytes;
      started_at = start_at;
      sched;
    }
  in
  let receiver =
    Receiver.create ~sched ~conn ~subflow:0 ~addr:(Endpoint.node dst)
      ~peer:(Endpoint.node src) ~tag ~fresh_id
      ~transmit:(fun p ->
        Netsim.Net.inject (Endpoint.net dst) ~at:(Endpoint.node dst) p)
      ~pool:(Netsim.Net.pool (Endpoint.net dst))
      ~on_deliver:(fun ~seq:_ ~len ~dss:_ ->
        t.delivered <- t.delivered + len;
        match t.total_bytes with
        | Some total when t.delivered >= total && t.completed_at = None ->
          t.completed_at <- Some (Engine.Sched.now sched)
        | Some _ | None -> ())
      ~data_ack:(fun () -> 0)
      ~delayed_ack ()
  in
  Endpoint.register dst ~conn ~subflow:0 (fun p ->
      Receiver.handle_data receiver p);
  Endpoint.register src ~conn ~subflow:0 (fun p ->
      Sender.handle_ack t.sender (Packet.tcp_exn p));
  Engine.Sched.at_anon sched start_at (fun () -> Sender.kick t.sender);
  t

let sender t = t.sender
let bytes_delivered t = t.delivered
let completed_at t = t.completed_at

let goodput_bps t ~now =
  let dt = Engine.Time.to_float_s (Engine.Time.diff now t.started_at) in
  if dt <= 0.0 then 0.0 else float_of_int (t.delivered * 8) /. dt
