(** From a path set to the paper's throughput LP (Fig. 1c).

    Every link carried by at least one path contributes one inequality
    [sum over paths using it of x_p <= capacity]; maximizing
    [sum of x_p] over that polytope is exactly the optimization problem
    the paper argues MPTCP's congestion control is implicitly solving. *)

type system = {
  paths : Path.t array;
  link_rows : int array;  (** [link_rows.(i)] is the link id of row [i] *)
  a : float array array;  (** 0/1 incidence matrix, rows = links *)
  b : float array;        (** capacities in bits per second *)
}

val extract : Topology.t -> Path.t list -> system
(** Raises [Invalid_argument] on an empty path list. *)

(** One capacity constraint exceeded by a rate vector. *)
type violation = {
  row : int;           (** row index into {!system} *)
  link_id : int;       (** topology link id of that row *)
  load_bps : float;    (** offered load summed over the row's paths *)
  cap_bps : float;     (** the row's capacity *)
}

val violations :
  ?slack_frac:float -> ?slack_abs:float -> system -> x:float array
  -> violation list
(** Capacity rows that [x] (bits per second per path, in {!system} path
    order) overloads by more than [max (cap * slack_frac) slack_abs]
    (both default 0).  This single checker backs the audit's
    lp.feasibility invariant and the fluid validator, so "feasible"
    means the same thing everywhere.  Raises [Invalid_argument] when
    [x] has the wrong length. *)

val feasible :
  ?slack_frac:float -> ?slack_abs:float -> system -> x:float array -> bool
(** [violations = []]. *)

type optimum = {
  total_bps : float;
  per_path_bps : float array;
  bottlenecks : (int * float) list;
      (** (link id, shadow price) for every binding constraint — the
          links whose extra capacity would raise total throughput. *)
}

val optimum : Topology.t -> Path.t list -> optimum
(** Solves the LP.  The polytope is always feasible (x = 0) and bounded
    (capacities are finite), so a solution exists. *)

val greedy_from : Topology.t -> Path.t list -> order:int list -> float array
(** The rate vector reached by greedily filling paths one at a time in
    [order] (each path takes all residual capacity along its links).
    This models "increase each subflow independently until its own
    bottleneck" — the suboptimal Pareto point the paper contrasts with
    the LP optimum.  [order] must be a permutation of path indices. *)

val pp_system : Topology.t -> Format.formatter -> system -> unit
