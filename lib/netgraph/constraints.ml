type system = {
  paths : Path.t array;
  link_rows : int array;
  a : float array array;
  b : float array;
}

let extract topo path_list =
  if path_list = [] then invalid_arg "Constraints.extract: no paths";
  let paths = Array.of_list path_list in
  let n = Array.length paths in
  let used = Hashtbl.create 16 in
  Array.iter
    (fun p -> Array.iter (fun lid -> Hashtbl.replace used lid ()) p.Path.links)
    paths;
  let link_rows =
    Hashtbl.fold (fun lid () acc -> lid :: acc) used []
    |> List.sort Int.compare |> Array.of_list
  in
  let a =
    Array.map
      (fun lid ->
        Array.init n (fun j -> if Path.mem_link paths.(j) lid then 1.0 else 0.0))
      link_rows
  in
  let b =
    Array.map
      (fun lid -> float_of_int (Topology.link topo lid).Topology.capacity_bps)
      link_rows
  in
  { paths; link_rows; a; b }

type violation = { row : int; link_id : int; load_bps : float; cap_bps : float }

let violations ?(slack_frac = 0.0) ?(slack_abs = 0.0) sys ~x =
  let n = Array.length sys.paths in
  if Array.length x <> n then
    invalid_arg "Constraints.violations: rate vector has the wrong length";
  let out = ref [] in
  for i = Array.length sys.link_rows - 1 downto 0 do
    let load = ref 0.0 in
    for j = 0 to n - 1 do load := !load +. (sys.a.(i).(j) *. x.(j)) done;
    let allowance = Float.max (sys.b.(i) *. slack_frac) slack_abs in
    if !load > sys.b.(i) +. allowance then
      out :=
        { row = i;
          link_id = sys.link_rows.(i);
          load_bps = !load;
          cap_bps = sys.b.(i) }
        :: !out
  done;
  !out

let feasible ?slack_frac ?slack_abs sys ~x =
  violations ?slack_frac ?slack_abs sys ~x = []

type optimum = {
  total_bps : float;
  per_path_bps : float array;
  bottlenecks : (int * float) list;
}

let optimum topo path_list =
  let sys = extract topo path_list in
  let n = Array.length sys.paths in
  let c = Array.make n 1.0 in
  match Lp.Simplex.solve ~c ~a:sys.a ~b:sys.b with
  | Lp.Simplex.Unbounded | Lp.Simplex.Infeasible ->
    (* Impossible: 0 is feasible and capacities bound the region. *)
    assert false
  | Lp.Simplex.Optimal { objective; x; dual } ->
    let bottlenecks = ref [] in
    Array.iteri
      (fun i y ->
        if y > 1e-12 then bottlenecks := (sys.link_rows.(i), y) :: !bottlenecks)
      dual;
    { total_bps = objective;
      per_path_bps = x;
      bottlenecks = List.rev !bottlenecks }

let greedy_from topo path_list ~order =
  let sys = extract topo path_list in
  let n = Array.length sys.paths in
  if List.sort Int.compare order <> List.init n (fun i -> i) then
    invalid_arg "Constraints.greedy_from: order must be a permutation";
  let residual = Hashtbl.create 16 in
  Array.iteri
    (fun i lid -> Hashtbl.replace residual lid sys.b.(i))
    sys.link_rows;
  let x = Array.make n 0.0 in
  List.iter
    (fun j ->
      let p = sys.paths.(j) in
      let room =
        Array.fold_left
          (fun acc lid -> Float.min acc (Hashtbl.find residual lid))
          infinity p.Path.links
      in
      x.(j) <- room;
      Array.iter
        (fun lid ->
          Hashtbl.replace residual lid (Hashtbl.find residual lid -. room))
        p.Path.links)
    order;
  x

let pp_system topo fmt sys =
  let n = Array.length sys.paths in
  Format.fprintf fmt "@[<v>maximize  %s@,subject to"
    (String.concat " + " (List.init n (fun j -> Printf.sprintf "x%d" (j + 1))));
  Array.iteri
    (fun i row ->
      let terms = ref [] in
      Array.iteri
        (fun j v -> if v > 0.0 then terms := Printf.sprintf "x%d" (j + 1) :: !terms)
        row;
      let l = Topology.link topo sys.link_rows.(i) in
      Format.fprintf fmt "@,  %s <= %.6g Mbps   (link %s--%s)"
        (String.concat " + " (List.rev !terms))
        (sys.b.(i) /. 1e6)
        (Topology.node_name topo l.Topology.u)
        (Topology.node_name topo l.Topology.v))
    sys.a;
  Format.fprintf fmt "@]"
