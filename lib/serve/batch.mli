(** Batch files: lists of scenarios for the service, as data.

    A batch file holds any number of top-level forms, each expanding to
    one or more labelled scenarios:

    {v
    ; one paper-network scenario
    (preset (label cubic-d2) (cc cubic) (default 2) (seed 1)
            (duration-s 4) (sampling-ms 100) (scheduler min-rtt))

    ; the paper grid: the cross product of ccs x defaults x seeds
    (grid (ccs cubic lia olia) (defaults 1 2 3) (seeds 1 2 3)
          (duration-s 20))

    ; a dynamic scenario from topology + experiment files
    ; (paths resolve relative to the batch file)
    (experiment (label failover) (topology failover_topo.sexp)
                (experiment failover_xp.sexp))
    v}

    Every field is optional except [experiment]'s two files; defaults
    match {!Core.Scenario.make} ([cc] defaults to cubic, [default] path
    to 2, [seed] to 1).  Omitted labels are generated
    ([paper-<cc>-d<default>-s<seed>], or the experiment file's
    basename). *)

type entry = { label : string; spec : Core.Scenario.spec }

val of_sexps : base_dir:string -> Events.Sexp.t list -> entry list
(** Expands the forms.  Raises {!Events.Sexp.Parse_error} on malformed
    input and [Invalid_argument] on invalid scenarios (bad event lists,
    empty grids). *)

val load : string -> entry list
(** {!of_sexps} over a batch file, with [base_dir] its directory. *)
