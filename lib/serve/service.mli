(** The scenario service: batches in, cached-or-fresh results out.

    For each submitted entry the service canonicalizes and hashes the
    spec ({!Core.Canon}), consults the {!Store}, and either returns the
    cached record (zero simulation work) or schedules a fresh run.
    Misses are dispatched through {!Engine.Pool.submit}/[await] —
    hits resolve immediately while misses trickle through the worker
    domains — and every fresh result is inserted into the store.  Each
    outcome, hit or fresh, is appended to the {!Trend} log, so the
    history records every submission.

    Determinism: fresh runs execute the spec with the metrics layer
    attached (observation does not perturb results — see
    doc/OBSERVABILITY.md), and results come back in submission order,
    so a batch's outcomes are bit-identical for every [jobs] value and
    identical between a cached and a fresh pass
    ({!Store.same_results}). *)

type outcome =
  | Hit of Store.record    (** served from the store; no simulation ran *)
  | Fresh of Store.record  (** simulated on this submission *)

type stats = {
  entries : int;
  hits : int;
  fresh : int;
  fresh_sim_events : int;
      (** engine events dispatched by this batch's fresh runs — [0]
          exactly when the whole batch was served from the store *)
  wall_s : float;
}

val run_batch :
  ?jobs:int ->
  ?pool:Engine.Pool.t ->
  ?cache:bool ->
  store:Store.t ->
  Batch.entry list ->
  (Batch.entry * outcome) list * stats
(** Outcomes in submission order.  [?pool] reuses a caller-owned pool
    (the long-running serve loop's); otherwise a pool of [?jobs]
    workers (default {!Engine.Pool.default_domains}) is created for the
    batch when more than one miss needs it, and [~jobs:1] runs misses
    serially with no domain spawned.  [~cache:false] skips lookups
    (everything re-simulates and overwrites the store — the [--no-cache]
    flag). *)

val hash_entry : Batch.entry -> string
(** The content address the service uses for an entry —
    {!Core.Canon.hash} of its spec. *)

type sim_kind =
  | Simulated  (** this process ran the engine *)
  | Adopted
      (** a peer process held the advisory claim and this call adopted
          its record once it landed — zero simulation work here *)

val simulate_entry :
  ?claim:bool ->
  store:Store.t ->
  Batch.entry ->
  hash:string ->
  Store.record * sim_kind
(** Simulate one miss under the store's advisory claim
    ({!Store.try_claim}) and insert the record: the cross-process half
    of single-flight dedup.  While the claim is held, a helper thread
    refreshes its mtime ({!Store.refresh_claim}) every 10 s, so a live
    simulation longer than the staleness horizon is never mistaken for
    a crashed holder and re-run by a peer.  If a live peer already
    claimed [hash], polls for its record instead of re-simulating (a
    stale claim — crashed peer — is taken over).  [~claim:false] always
    simulates and never waits, the [--no-cache] contract.  Both
    {!run_batch} misses and the daemon's in-flight singles go through
    here, so two processes sharing a store run each scenario once
    between them. *)
