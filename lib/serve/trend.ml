(* trend.log: one "(run <version> ...)" sexp per line, appended with
   O_APPEND so concurrent serve processes interleave whole lines.  The
   loader is deliberately forgiving — skip-and-count — because an
   append-only history accretes across format changes and crashes. *)

let line_version = 1

type entry = {
  at_unix : float;
  label : string;
  hash : string;
  cc : string;
  cached : bool;
  tail_mbps : float;
  opt_mbps : float;
  wall_s : float;
  delivered_bytes : int;
  sim_events : int;
}

let entry_of_record ~at_unix ~cached (r : Store.record) =
  {
    at_unix;
    label = r.Store.label;
    hash = r.Store.hash;
    cc = r.Store.cc;
    cached;
    tail_mbps = r.Store.tail_mbps;
    opt_mbps = r.Store.opt_mbps;
    wall_s = r.Store.wall_s;
    delivered_bytes = r.Store.delivered_bytes;
    sim_events = r.Store.sim_events;
  }

let f17 = Printf.sprintf "%.17g"

let line_of_entry e =
  Printf.sprintf
    "(run %d (at %s) (label %s) (hash %s) (cc %s) (cached %b) (tail-mbps %s) \
     (opt-mbps %s) (wall-s %s) (delivered %d) (sim-events %d))\n"
    line_version (f17 e.at_unix) e.label e.hash e.cc e.cached (f17 e.tail_mbps)
    (f17 e.opt_mbps) (f17 e.wall_s) e.delivered_bytes e.sim_events

let log_path dir = Filename.concat dir "trend.log"

let append ~dir e =
  let fd =
    Unix.openfile (log_path dir)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let line = Bytes.of_string (line_of_entry e) in
      ignore (Unix.write fd line 0 (Bytes.length line)))

let entry_of_line line =
  let open Events.Sexp in
  match parse_string line with
  | [ List (Atom "run" :: Atom v :: fields) ]
    when int_of_string_opt v = Some line_version ->
    let scalar name conv =
      match find_field name fields with
      | Some [ x ] -> conv x
      | _ -> fail "trend: missing (%s ...)" name
    in
    Some
      {
        at_unix = scalar "at" float_exn;
        label = scalar "label" atom_exn;
        hash = scalar "hash" atom_exn;
        cc = scalar "cc" atom_exn;
        cached = scalar "cached" (fun s -> atom_exn s = "true");
        tail_mbps = scalar "tail-mbps" float_exn;
        opt_mbps = scalar "opt-mbps" float_exn;
        wall_s = scalar "wall-s" float_exn;
        delivered_bytes = scalar "delivered" int_exn;
        sim_events = scalar "sim-events" int_exn;
      }
  | _ -> None

let load ~dir =
  let path = log_path dir in
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    let entries = ref [] and skipped = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match entry_of_line line with
              | Some e -> entries := e :: !entries
              | None | (exception Events.Sexp.Parse_error _) -> incr skipped
          done
        with End_of_file -> ());
    (List.rev !entries, !skipped)
  end

(* --- the report table --- *)

let drop_to_last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let report ?(perf = false) ?last fmt entries =
  let entries =
    match last with None -> entries | Some n -> drop_to_last n entries
  in
  (* Group by label, preserving first-submission order. *)
  let order = ref [] in
  let groups : (string, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt groups e.label with
      | Some cell -> cell := e :: !cell
      | None ->
        order := e.label :: !order;
        Hashtbl.add groups e.label (ref [ e ]))
    entries;
  let labels = List.rev !order in
  if labels = [] then Format.fprintf fmt "trend store is empty@."
  else begin
    Format.fprintf fmt "@[<v>";
    if perf then
      Format.fprintf fmt "%-24s %-6s %4s %4s  %21s %8s  %17s@," "label" "cc"
        "runs" "hits" "tail Mbps first->last" "opt Mbps" "wall s first->last"
    else
      Format.fprintf fmt "%-24s %-6s %4s %4s  %21s %8s@," "label" "cc" "runs"
        "hits" "tail Mbps first->last" "opt Mbps";
    List.iter
      (fun label ->
        let runs = List.rev !(Hashtbl.find groups label) in
        let first = List.hd runs and last = List.nth runs (List.length runs - 1) in
        let hits = List.length (List.filter (fun e -> e.cached) runs) in
        let arrow =
          Printf.sprintf "%.1f -> %.1f" first.tail_mbps last.tail_mbps
        in
        if perf then
          Format.fprintf fmt "%-24s %-6s %4d %4d  %21s %8.1f  %8.3f -> %.3f@,"
            label first.cc (List.length runs) hits arrow last.opt_mbps
            first.wall_s last.wall_s
        else
          Format.fprintf fmt "%-24s %-6s %4d %4d  %21s %8.1f@," label first.cc
            (List.length runs) hits arrow last.opt_mbps)
      labels;
    Format.fprintf fmt "@]"
  end
