open Events.Sexp

type entry = { label : string; spec : Core.Scenario.spec }

let cc_of_atom s =
  match Mptcp.Algorithm.of_string s with
  | Some cc -> cc
  | None -> fail "batch: unknown congestion control %s" s

let scheduler_of_atom s =
  let canon = String.map (function '-' -> '_' | c -> c) s in
  match Mptcp.Scheduler.policy_of_string canon with
  | Some p -> p
  | None -> fail "batch: unknown scheduler %s" s

let scalar name fields conv =
  match find_field name fields with
  | Some [ x ] -> Some (conv x)
  | Some _ -> fail "batch: (%s ...) takes exactly one value" name
  | None -> None

let multi name fields conv =
  match find_field name fields with
  | Some (_ :: _ as xs) -> Some (List.map conv xs)
  | Some [] -> fail "batch: (%s ...) needs at least one value" name
  | None -> None

(* One paper-network cell; shared by preset and grid. *)
let paper_cell ?label ~cc ~default ~seed ~duration ~sampling ~scheduler
    ~total_bytes () =
  let topo = Core.Paper_net.topology () in
  let paths = Core.Paper_net.tagged_paths ~default topo in
  let spec =
    Core.Scenario.make ~topo ~paths ~cc ~scheduler ~duration ~sampling ~seed
      ?total_bytes ()
  in
  let label =
    match label with
    | Some l -> l
    | None ->
      Printf.sprintf "paper-%s-d%d-s%d" (Mptcp.Algorithm.name cc) default seed
  in
  { label; spec }

let times_of fields =
  let duration =
    match scalar "duration-s" fields float_exn with
    | Some s -> Events.Parse.time_of_s s
    | None -> Engine.Time.s 4
  in
  let sampling =
    match scalar "sampling-ms" fields float_exn with
    | Some ms -> Events.Parse.time_of_s (ms /. 1e3)
    | None -> Engine.Time.ms 100
  in
  (duration, sampling)

let preset fields =
  let cc =
    Option.value ~default:Mptcp.Algorithm.Cubic
      (scalar "cc" fields (fun s -> cc_of_atom (atom_exn s)))
  in
  let default = Option.value ~default:2 (scalar "default" fields int_exn) in
  let seed = Option.value ~default:1 (scalar "seed" fields int_exn) in
  let duration, sampling = times_of fields in
  let scheduler =
    Option.value ~default:Mptcp.Scheduler.Min_rtt
      (scalar "scheduler" fields (fun s -> scheduler_of_atom (atom_exn s)))
  in
  let total_bytes =
    Option.map
      (fun mb -> int_of_float (mb *. 1e6))
      (scalar "total-mb" fields float_exn)
  in
  let label = scalar "label" fields atom_exn in
  [ paper_cell ?label ~cc ~default ~seed ~duration ~sampling ~scheduler
      ~total_bytes () ]

let grid fields =
  let ccs =
    Option.value
      ~default:[ Mptcp.Algorithm.Cubic; Mptcp.Algorithm.Lia;
                 Mptcp.Algorithm.Olia ]
      (multi "ccs" fields (fun s -> cc_of_atom (atom_exn s)))
  in
  let defaults =
    Option.value ~default:[ 1; 2; 3 ] (multi "defaults" fields int_exn)
  in
  let seeds = Option.value ~default:[ 1 ] (multi "seeds" fields int_exn) in
  let duration, sampling = times_of fields in
  List.concat_map
    (fun cc ->
      List.concat_map
        (fun default ->
          List.map
            (fun seed ->
              paper_cell ~cc ~default ~seed ~duration ~sampling
                ~scheduler:Mptcp.Scheduler.Min_rtt ~total_bytes:None ())
            seeds)
        defaults)
    ccs

let experiment ~base_dir fields =
  let file name =
    match scalar name fields atom_exn with
    | Some f ->
      if Filename.is_relative f then Filename.concat base_dir f else f
    | None -> fail "batch: (experiment ...) needs (%s FILE)" name
  in
  let topo_file = file "topology" and xp_file = file "experiment" in
  let _topo, spec = Core.Expfile.load ~topo_file ~xp_file in
  let label =
    match scalar "label" fields atom_exn with
    | Some l -> l
    | None -> Filename.remove_extension (Filename.basename xp_file)
  in
  [ { label; spec } ]

let of_sexps ~base_dir sexps =
  let entries =
    List.concat_map
      (fun form ->
        match form with
        | List (Atom "preset" :: fields) -> preset fields
        | List (Atom "grid" :: fields) -> grid fields
        | List (Atom "experiment" :: fields) -> experiment ~base_dir fields
        | s -> fail "batch: unknown form %s" (to_string s))
      sexps
  in
  if entries = [] then fail "batch: no scenarios";
  entries

let load path =
  of_sexps ~base_dir:(Filename.dirname path) (Events.Sexp.load path)
