(** Append-only trend history: one line per batch submission.

    Where {!Store} answers "have I simulated this exact scenario?", the
    trend log answers "how has this scenario been doing over time?" —
    goodput and wall-clock per labelled scenario across every
    submission, cache hits included.  Appends go to [trend.log] in the
    store directory, one version-tagged sexp per line; readers skip
    lines they cannot parse (a torn final line, an older line format)
    and report how many they skipped, so one bad line never poisons the
    history.

    [mptcp_sim report] renders {!report}: per-label first/best/last
    goodput against the LP optimum, and (with [~perf:true]) wall-clock
    columns.  The default table contains only deterministic values, so
    the CLI golden test can pin it byte-for-byte. *)

type entry = {
  at_unix : float;   (** submission wall-clock time *)
  label : string;
  hash : string;
  cc : string;
  cached : bool;     (** [true] when served from the store *)
  tail_mbps : float;
  opt_mbps : float;
  wall_s : float;    (** simulation wall seconds (the original run's
                         when [cached]) *)
  delivered_bytes : int;
  sim_events : int;
}

val entry_of_record : at_unix:float -> cached:bool -> Store.record -> entry

val append : dir:string -> entry -> unit
(** Appends one line to [dir]/trend.log (creating it as needed). *)

val load : dir:string -> entry list * int
(** All parseable entries in append order, plus the number of skipped
    (unparseable or differently-versioned) lines.  An absent log is
    [([], 0)]. *)

val report : ?perf:bool -> ?last:int -> Format.formatter -> entry list -> unit
(** Renders the per-label trend table over the [last] (default: all)
    entries.  Labels appear in first-submission order.  [perf] adds
    wall-clock columns (non-deterministic; off by default). *)
