(** Content-addressed on-disk result store.

    Keys are {!Core.Canon.hash} digests of canonical scenario specs;
    values are {!record}s — the deterministic summary of one simulated
    run (goodputs, audit verdict, final obs metrics) plus perf metadata
    (wall time, allocation, creation time).  Because simulation is
    bit-for-bit deterministic in the spec, a stored record answers a
    re-submission of the same scenario exactly as a fresh run would,
    and the service skips the simulation entirely.

    On-disk layout under the store directory:
    {v
    version              "mptcp-sim-store <format_version>"
    objects/<h2>/<hash>  one record file per result (h2 = first 2 hex)
    trend.log            append-only history (see {!Trend})
    v}

    Each record file carries its own
    ["mptcp-sim-record <format_version>"] header and a trailing MD5
    checksum line over the body.  {!lookup} re-verifies both: a version
    mismatch is a {e stale} miss (a format bump invalidates cleanly), a
    checksum/parse failure — truncation, bit rot, a concurrent partial
    write — is a {e corrupt} miss.  Neither is ever mis-read as a hit.
    Writes go through a temp file + atomic rename, so readers never see
    a half-written record. *)

val format_version : int
(** Bump on any record-layout change; all existing records then read
    as stale misses and are re-simulated. *)

type audit_summary = { violations : int; checks : int }

type record = {
  hash : string;           (** the content address ({!Core.Canon.hash}) *)
  label : string;          (** batch label, atom-sanitized *)
  cc : string;
  seed : int;
  paths : int;
  tail_mbps : float;       (** mean total rate over the last quarter *)
  per_path_mbps : (int * float) list;  (** tag-keyed tail means *)
  opt_mbps : float;        (** the scenario's LP optimum *)
  delivered_bytes : int;
  completed_at_s : float option;
  subflow_churn : int;
  cross_traffic_bytes : int;
  queue_drops : int;
  sim_events : int;        (** engine events the original run dispatched *)
  packets_created : int;
  audit : audit_summary option;  (** when the run was audited *)
  metrics : (string * float) list;
      (** final obs metrics snapshot, wall-derived entries dropped *)
  wall_s : float;          (** perf metadata: not content, not compared *)
  alloc_words : float;     (** minor-heap words the run allocated *)
  created_unix : float;    (** perf metadata: when it was simulated *)
}

val of_result :
  hash:string -> label:string -> wall_s:float -> alloc_words:float ->
  created_unix:float -> Core.Scenario.result -> record
(** Condenses a scenario result (tail means, counters, audit totals,
    {!Obs.Collect.final_metrics}) into a record. *)

val same_results : record -> record -> bool
(** Equality on every deterministic field — everything except the
    [wall_s] / [alloc_words] / [created_unix] perf metadata.  A cached
    record and a fresh re-simulation of the same spec must satisfy
    this; the cache-correctness tests assert it. *)

type t

val open_store : dir:string -> t
(** Opens (creating directories and the version file as needed).  A
    store written by a different {!format_version} is left in place;
    its records simply read as stale. *)

val dir : t -> string

val lookup : t -> hash:string -> record option
(** [None] on absent, stale (version mismatch) or corrupt (checksum or
    parse failure) records; the latter two bump the {!stale_seen} /
    {!corrupt_seen} counters. *)

val insert : t -> record -> unit
(** Writes (temp file + rename, overwriting any previous record for
    the same hash). *)

val count : t -> int
(** Records currently on disk. *)

val invalidate : t -> int
(** Deletes every record (the trend history survives); returns how
    many were removed. *)

val bytes : t -> int
(** Total size of the record files currently on disk. *)

type gc_stats = {
  examined : int;       (** record files scanned *)
  evicted : int;        (** files removed *)
  evicted_bytes : int;
  kept : int;           (** files surviving the sweep *)
  kept_bytes : int;
}

val gc : t -> max_bytes:int -> gc_stats
(** Evict records, oldest mtime first, until the surviving files total
    at most [max_bytes] (the [cache --gc --max-bytes N] CLI).  Each
    eviction is a single unlink, so a concurrent reader sees a whole
    record or a miss, never a torn one; a record re-inserted while the
    sweep runs just reappears under its hash afterwards.  Evictions
    accumulate in {!evicted_total}.  Raises [Invalid_argument] on a
    negative budget. *)

val stale_seen : t -> int
val corrupt_seen : t -> int
val evicted_total : t -> int
(** Rejection/eviction counters since [open_store], for the [cache]
    CLI. *)

(** {1 Advisory in-flight claims}

    Two serve processes sharing one store interleave their {e writes}
    safely (atomic rename, O_APPEND), but nothing used to stop both
    from {e simulating} the same miss concurrently — wasted work, not
    corruption.  A claim closes that hole: before simulating hash [h],
    a process takes [objects/<h2>/<h>.lock] with [O_CREAT|O_EXCL]; a
    peer that finds the lock held waits for the record to land instead
    of re-running the scenario ({!Serve.Service.simulate_entry}).

    The claim is advisory and crash-safe: a live holder keeps the
    lock's mtime advancing with {!refresh_claim} (the service does this
    from a helper thread while simulating), a holder that dies stops,
    and {!try_claim} takes a lock whose mtime has fallen more than
    [stale_after_s] behind over (unlink + re-create) — so a crashed
    peer delays the simulation, never blocks it, while a live long run
    keeps its claim however long it takes.  Claims are never required
    for correctness; they only dedup effort. *)

type claim
(** A held advisory lock on one hash. *)

val try_claim :
  ?stale_after_s:float -> t -> hash:string -> [ `Claimed of claim | `Busy ]
(** Attempt to claim [hash].  [`Busy] means a live peer holds it (its
    lock file is younger than [stale_after_s], default 120 s); a stale
    lock is taken over.  Claims from the same process are not
    re-entrant: a second [try_claim] on a held hash is [`Busy]. *)

val release_claim : claim -> unit
(** Unlinks the lock file.  Idempotent; call after the record has been
    {!insert}ed so waiting peers find it. *)

val refresh_claim : claim -> unit
(** Touch the lock's mtime so a long-running live holder is never
    mistaken for a crashed one and taken over mid-simulation.  No-op
    after {!release_claim}; a refresh racing a concurrent takeover is
    harmless (the lock is advisory). *)

val claim_path : t -> hash:string -> string
(** Where the lock for [hash] lives — exposed so tests can backdate a
    lock's mtime to exercise the stale-takeover path. *)

val record_path : t -> hash:string -> string
(** Where the record for [hash] lives — exposed so tests can corrupt,
    truncate and re-version records deliberately. *)

val pp_record : Format.formatter -> record -> unit
