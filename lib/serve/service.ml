type outcome = Hit of Store.record | Fresh of Store.record

type stats = {
  entries : int;
  hits : int;
  fresh : int;
  fresh_sim_events : int;
  wall_s : float;
}

let hash_entry (e : Batch.entry) = Core.Canon.hash e.Batch.spec

(* A fresh run: attach the metrics layer (unless the spec already
   configured observability) so the record captures the final metrics
   snapshot; observation does not perturb results, and obs is excluded
   from the hash, so the cached record still answers plain
   re-submissions.  Gc.minor_words is per-domain in OCaml 5 and the
   whole thunk runs on one domain, so the delta is this run's own
   allocation. *)
let simulate (e : Batch.entry) ~hash () =
  let spec =
    match e.Batch.spec.Core.Scenario.obs with
    | Some _ -> e.Batch.spec
    | None ->
      {
        e.Batch.spec with
        Core.Scenario.obs =
          Some { Obs.Collect.default_conf with Obs.Collect.trace = false };
      }
  in
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  let result = Core.Scenario.run spec in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let alloc_words = Gc.minor_words () -. minor0 in
  Store.of_result ~hash ~label:e.Batch.label ~wall_s ~alloc_words
    ~created_unix:(Unix.gettimeofday ()) result

type sim_kind = Simulated | Adopted

(* Refresh cadence for a held claim — well inside [Store.try_claim]'s
   default 120 s staleness horizon, so a live simulation of any length
   keeps its lock from ever reading as stale to peers. *)
let claim_refresh_interval_s = 10.

(* Keep a held claim visibly alive: touch its mtime every
   [claim_refresh_interval_s] until [finished].  The thread is
   detached — it exits within one 0.1 s tick of [finished], and a last
   touch racing the release (or a takeover) is a caught ENOENT inside
   [Store.refresh_claim], not a hazard — so the simulating caller never
   waits on a join. *)
let keep_claim_fresh c ~finished =
  ignore
    (Thread.create
       (fun () ->
         let tick = 0.1 in
         let ticks_per_refresh =
           int_of_float (claim_refresh_interval_s /. tick)
         in
         let n = ref 0 in
         while not (Atomic.get finished) do
           Thread.delay tick;
           incr n;
           if !n >= ticks_per_refresh then begin
             n := 0;
             Store.refresh_claim c
           end
         done)
       ())

(* The cross-process single-flight primitive: claim the hash, then
   simulate-and-insert, so a peer process that loses the claim race
   adopts our record instead of re-running the scenario.  The claim is
   advisory — a stale lock (crashed holder) is taken over inside
   [Store.try_claim], so this always terminates with a record. *)
let rec simulate_entry ?(claim = true) ~store (e : Batch.entry) ~hash =
  if not claim then begin
    (* --no-cache: re-simulation was explicitly requested, so never
       adopt a peer's record (and don't make peers wait on us). *)
    let r = simulate e ~hash () in
    Store.insert store r;
    (r, Simulated)
  end
  else
    match Store.try_claim store ~hash with
    | `Claimed c ->
      let finished = Atomic.make false in
      keep_claim_fresh c ~finished;
      Fun.protect
        ~finally:(fun () ->
          Atomic.set finished true;
          Store.release_claim c)
        (fun () ->
          (* Re-check under the claim: a peer may have finished between
             our miss and the claim. *)
          match Store.lookup store ~hash with
          | Some r -> (r, Adopted)
          | None ->
            let r = simulate e ~hash () in
            Store.insert store r;
            (r, Simulated))
    | `Busy -> (
      (* A live peer is simulating this very hash; poll for its record.
         If the peer dies instead, its lock goes stale and the retry's
         [try_claim] takes over. *)
      Unix.sleepf 0.02;
      match Store.lookup store ~hash with
      | Some r -> (r, Adopted)
      | None -> simulate_entry ~claim ~store e ~hash)

let run_batch ?jobs ?pool ?(cache = true) ~store entries =
  let wall0 = Unix.gettimeofday () in
  let looked_up =
    List.map
      (fun e ->
        let hash = hash_entry e in
        (e, hash, if cache then Store.lookup store ~hash else None))
      entries
  in
  (* Unique misses only: a batch that repeats a scenario simulates it
     once and shares the record. *)
  let misses =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (function
        | _, _, Some _ -> None
        | e, hash, None ->
          if Hashtbl.mem seen hash then None
          else begin
            Hashtbl.add seen hash ();
            Some (e, hash)
          end)
      looked_up
  in
  let run_one (e, hash) () = simulate_entry ~claim:cache ~store e ~hash in
  let run_serially () = List.map (fun m -> run_one m ()) misses in
  let run_on pool =
    let tickets =
      List.map (fun m -> Engine.Pool.submit pool (run_one m)) misses
    in
    List.map Engine.Pool.await tickets
  in
  let miss_results =
    match (misses, pool) with
    | [], _ -> []
    | [ m ], None -> [ run_one m () ]
    | _, Some pool -> run_on pool
    | _, None ->
      let domains =
        min
          (match jobs with
          | Some j -> j
          | None -> Engine.Pool.default_domains ())
          (List.length misses)
      in
      if domains <= 1 then run_serially ()
      else begin
        let pool = Engine.Pool.create ~domains () in
        Fun.protect
          ~finally:(fun () -> Engine.Pool.shutdown pool)
          (fun () -> run_on pool)
      end
  in
  let miss_by_hash = Hashtbl.create 16 in
  List.iter2
    (fun (_, hash) rk -> Hashtbl.replace miss_by_hash hash rk)
    misses miss_results;
  let outcomes =
    List.map
      (fun (e, hash, hit) ->
        match hit with
        | Some r -> (e, Hit r)
        | None -> (
          match Hashtbl.find miss_by_hash hash with
          | r, Simulated -> (e, Fresh r)
          (* a peer process simulated it while we waited: a hit from
             the submitter's point of view — zero work of ours *)
          | r, Adopted -> (e, Hit r)))
      looked_up
  in
  let at_unix = Unix.gettimeofday () in
  List.iter
    (fun (_, outcome) ->
      let cached, r =
        match outcome with Hit r -> (true, r) | Fresh r -> (false, r)
      in
      Trend.append ~dir:(Store.dir store)
        (Trend.entry_of_record ~at_unix ~cached r))
    outcomes;
  let hits =
    List.length (List.filter (function _, Hit _ -> true | _ -> false) outcomes)
  in
  let stats =
    {
      entries = List.length entries;
      hits;
      fresh = List.length entries - hits;
      fresh_sim_events =
        List.fold_left
          (fun acc -> function
            | r, Simulated -> acc + r.Store.sim_events
            | _, Adopted -> acc)
          0 miss_results;
      wall_s = Unix.gettimeofday () -. wall0;
    }
  in
  (outcomes, stats)
