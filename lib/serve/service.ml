type outcome = Hit of Store.record | Fresh of Store.record

type stats = {
  entries : int;
  hits : int;
  fresh : int;
  fresh_sim_events : int;
  wall_s : float;
}

let hash_entry (e : Batch.entry) = Core.Canon.hash e.Batch.spec

(* A fresh run: attach the metrics layer (unless the spec already
   configured observability) so the record captures the final metrics
   snapshot; observation does not perturb results, and obs is excluded
   from the hash, so the cached record still answers plain
   re-submissions.  Gc.minor_words is per-domain in OCaml 5 and the
   whole thunk runs on one domain, so the delta is this run's own
   allocation. *)
let simulate (e : Batch.entry) ~hash () =
  let spec =
    match e.Batch.spec.Core.Scenario.obs with
    | Some _ -> e.Batch.spec
    | None ->
      {
        e.Batch.spec with
        Core.Scenario.obs =
          Some { Obs.Collect.default_conf with Obs.Collect.trace = false };
      }
  in
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  let result = Core.Scenario.run spec in
  let wall_s = Unix.gettimeofday () -. wall0 in
  let alloc_words = Gc.minor_words () -. minor0 in
  Store.of_result ~hash ~label:e.Batch.label ~wall_s ~alloc_words
    ~created_unix:(Unix.gettimeofday ()) result

let run_batch ?jobs ?pool ?(cache = true) ~store entries =
  let wall0 = Unix.gettimeofday () in
  let looked_up =
    List.map
      (fun e ->
        let hash = hash_entry e in
        (e, hash, if cache then Store.lookup store ~hash else None))
      entries
  in
  (* Unique misses only: a batch that repeats a scenario simulates it
     once and shares the record. *)
  let misses =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (function
        | _, _, Some _ -> None
        | e, hash, None ->
          if Hashtbl.mem seen hash then None
          else begin
            Hashtbl.add seen hash ();
            Some (e, hash)
          end)
      looked_up
  in
  let run_serially () =
    List.map (fun (e, hash) -> simulate e ~hash ()) misses
  in
  let run_on pool =
    let tickets =
      List.map (fun (e, hash) -> Engine.Pool.submit pool (simulate e ~hash))
        misses
    in
    List.map Engine.Pool.await tickets
  in
  let fresh_records =
    match (misses, pool) with
    | [], _ -> []
    | [ (e, hash) ], None -> [ simulate e ~hash () ]
    | _, Some pool -> run_on pool
    | _, None ->
      let domains =
        min
          (match jobs with
          | Some j -> j
          | None -> Engine.Pool.default_domains ())
          (List.length misses)
      in
      if domains <= 1 then run_serially ()
      else begin
        let pool = Engine.Pool.create ~domains () in
        Fun.protect
          ~finally:(fun () -> Engine.Pool.shutdown pool)
          (fun () -> run_on pool)
      end
  in
  List.iter (Store.insert store) fresh_records;
  let fresh_by_hash = Hashtbl.create 16 in
  List.iter2
    (fun (_, hash) r -> Hashtbl.replace fresh_by_hash hash r)
    misses fresh_records;
  let outcomes =
    List.map
      (fun (e, hash, hit) ->
        match hit with
        | Some r -> (e, Hit r)
        | None -> (e, Fresh (Hashtbl.find fresh_by_hash hash)))
      looked_up
  in
  let at_unix = Unix.gettimeofday () in
  List.iter
    (fun (_, outcome) ->
      let cached, r =
        match outcome with Hit r -> (true, r) | Fresh r -> (false, r)
      in
      Trend.append ~dir:(Store.dir store)
        (Trend.entry_of_record ~at_unix ~cached r))
    outcomes;
  let hits =
    List.length (List.filter (function _, Hit _ -> true | _ -> false) outcomes)
  in
  let stats =
    {
      entries = List.length entries;
      hits;
      fresh = List.length entries - hits;
      fresh_sim_events =
        List.fold_left (fun acc r -> acc + r.Store.sim_events) 0 fresh_records;
      wall_s = Unix.gettimeofday () -. wall0;
    }
  in
  (outcomes, stats)
