(* Record files are small (a few hundred bytes), so the format
   optimises for safety and greppability, not density: a version
   header, one sexp body, and a trailing checksum line.

     mptcp-sim-record <format_version>
     (record (hash ..) (label ..) ... (created-unix ..))
     checksum <md5-of-the-sexp-body>

   The checksum covers exactly the sexp body, so a version bump (a new
   header on an otherwise valid file) reads as *stale* while any damage
   to the body — truncation, a flipped byte, a torn write — fails the
   digest and reads as *corrupt*.  Both are misses; neither is ever
   handed to a caller as a result. *)

let format_version = 1

type audit_summary = { violations : int; checks : int }

type record = {
  hash : string;
  label : string;
  cc : string;
  seed : int;
  paths : int;
  tail_mbps : float;
  per_path_mbps : (int * float) list;
  opt_mbps : float;
  delivered_bytes : int;
  completed_at_s : float option;
  subflow_churn : int;
  cross_traffic_bytes : int;
  queue_drops : int;
  sim_events : int;
  packets_created : int;
  audit : audit_summary option;
  metrics : (string * float) list;
  wall_s : float;
  alloc_words : float;
  created_unix : float;
}

let f17 = Printf.sprintf "%.17g"

(* The sexp reader has no quoting, so anything persisted as an atom
   must contain no delimiters.  Labels come from user batch files;
   metric names are already dotted identifiers. *)
let sanitize_atom s =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '.' || c = '_' || c = '-'
  in
  let s = if s = "" then "_" else s in
  String.map (fun c -> if ok c then c else '_') s

let of_result ~hash ~label ~wall_s ~alloc_words ~created_unix
    (result : Core.Scenario.result) =
  {
    hash;
    label = sanitize_atom label;
    cc = Mptcp.Algorithm.name result.Core.Scenario.spec.Core.Scenario.cc;
    seed = result.Core.Scenario.spec.Core.Scenario.seed;
    paths = List.length result.Core.Scenario.spec.Core.Scenario.paths;
    tail_mbps = Core.Scenario.tail_mean_mbps result;
    per_path_mbps = Core.Scenario.per_path_tail_mbps result;
    opt_mbps = Core.Scenario.optimal_total_mbps result;
    delivered_bytes = result.Core.Scenario.delivered_bytes;
    completed_at_s = result.Core.Scenario.completed_at_s;
    subflow_churn = result.Core.Scenario.subflow_churn;
    cross_traffic_bytes = result.Core.Scenario.cross_traffic_bytes;
    queue_drops = result.Core.Scenario.queue_drops;
    sim_events = result.Core.Scenario.events_processed;
    packets_created = result.Core.Scenario.packets_created;
    audit =
      Option.map
        (fun (rep : Audit.report) ->
          { violations = rep.Audit.total_violations; checks = rep.Audit.checks })
        result.Core.Scenario.audit;
    metrics =
      (match result.Core.Scenario.obs with
      | None -> []
      | Some o -> Obs.Collect.final_metrics o);
    wall_s;
    alloc_words;
    created_unix;
  }

let same_results a b =
  a.hash = b.hash && a.label = b.label && a.cc = b.cc && a.seed = b.seed
  && a.paths = b.paths && a.tail_mbps = b.tail_mbps
  && a.per_path_mbps = b.per_path_mbps && a.opt_mbps = b.opt_mbps
  && a.delivered_bytes = b.delivered_bytes
  && a.completed_at_s = b.completed_at_s
  && a.subflow_churn = b.subflow_churn
  && a.cross_traffic_bytes = b.cross_traffic_bytes
  && a.queue_drops = b.queue_drops && a.sim_events = b.sim_events
  && a.packets_created = b.packets_created && a.audit = b.audit
  && a.metrics = b.metrics

(* --- record text --- *)

let body_of_record r =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "(record";
  p " (hash %s)" r.hash;
  p " (label %s)" r.label;
  p " (cc %s)" r.cc;
  p " (seed %d)" r.seed;
  p " (paths %d)" r.paths;
  p " (tail-mbps %s)" (f17 r.tail_mbps);
  p " (per-path";
  List.iter (fun (tag, v) -> p " (%d %s)" tag (f17 v)) r.per_path_mbps;
  p ")";
  p " (opt-mbps %s)" (f17 r.opt_mbps);
  p " (delivered-bytes %d)" r.delivered_bytes;
  p " (completed-at-s %s)"
    (match r.completed_at_s with None -> "none" | Some t -> f17 t);
  p " (subflow-churn %d)" r.subflow_churn;
  p " (cross-traffic-bytes %d)" r.cross_traffic_bytes;
  p " (queue-drops %d)" r.queue_drops;
  p " (sim-events %d)" r.sim_events;
  p " (packets-created %d)" r.packets_created;
  (match r.audit with
  | None -> p " (audit none)"
  | Some { violations; checks } ->
    p " (audit (violations %d) (checks %d))" violations checks);
  p " (metrics";
  List.iter (fun (name, v) -> p " (%s %s)" (sanitize_atom name) (f17 v)) r.metrics;
  p ")";
  p " (wall-s %s)" (f17 r.wall_s);
  p " (alloc-words %s)" (f17 r.alloc_words);
  p " (created-unix %s)" (f17 r.created_unix);
  p ")";
  Buffer.contents buf

let file_of_record r =
  let body = body_of_record r in
  Printf.sprintf "mptcp-sim-record %d\n%s\nchecksum %s\n" format_version body
    (Digest.to_hex (Digest.string body))

let record_of_body body =
  let open Events.Sexp in
  let fields =
    match parse_string body with
    | [ List (Atom "record" :: fields) ] -> fields
    | _ -> fail "record: expected a single (record ...) form"
  in
  let get name =
    match find_field name fields with
    | Some v -> v
    | None -> fail "record: missing (%s ...)" name
  in
  let scalar name conv =
    match get name with
    | [ x ] -> conv x
    | _ -> fail "record: (%s ...) takes one value" name
  in
  let pairs name kconv vconv =
    List.map
      (function
        | List [ k; v ] -> (kconv k, vconv v)
        | s -> fail "record: bad pair %s in (%s ...)" (to_string s) name)
      (get name)
  in
  {
    hash = scalar "hash" atom_exn;
    label = scalar "label" atom_exn;
    cc = scalar "cc" atom_exn;
    seed = scalar "seed" int_exn;
    paths = scalar "paths" int_exn;
    tail_mbps = scalar "tail-mbps" float_exn;
    per_path_mbps = pairs "per-path" int_exn float_exn;
    opt_mbps = scalar "opt-mbps" float_exn;
    delivered_bytes = scalar "delivered-bytes" int_exn;
    completed_at_s =
      scalar "completed-at-s" (function
        | Atom "none" -> None
        | s -> Some (float_exn s));
    subflow_churn = scalar "subflow-churn" int_exn;
    cross_traffic_bytes = scalar "cross-traffic-bytes" int_exn;
    queue_drops = scalar "queue-drops" int_exn;
    sim_events = scalar "sim-events" int_exn;
    packets_created = scalar "packets-created" int_exn;
    audit =
      (match get "audit" with
      | [ Atom "none" ] -> None
      | forms ->
        let sub name =
          match find_field name forms with
          | Some [ x ] -> int_exn x
          | _ -> fail "record: bad (audit ...) form"
        in
        Some { violations = sub "violations"; checks = sub "checks" });
    metrics = pairs "metrics" atom_exn float_exn;
    wall_s = scalar "wall-s" float_exn;
    alloc_words = scalar "alloc-words" float_exn;
    created_unix = scalar "created-unix" float_exn;
  }

(* --- the store --- *)

type t = {
  dir : string;
  mutable stale : int;
  mutable corrupt : int;
  mutable evicted : int;
}

let dir t = t.dir

let mkdir_p path =
  let rec make p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      (try Unix.mkdir p 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  make path

let objects_dir dir = Filename.concat dir "objects"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Temp names are built from pid + a process-wide atomic counter
   rather than [Filename.temp_file]: inserts now run on pool worker
   domains (Service.simulate_entry stores its own result under the
   advisory claim), and temp_file's shared PRNG state is not
   domain-safe. *)
let tmp_seq = Atomic.make 0

let write_file_atomic ~dir ~path content =
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let open_store ~dir =
  mkdir_p (objects_dir dir);
  let version_file = Filename.concat dir "version" in
  if not (Sys.file_exists version_file) then
    write_file_atomic ~dir ~path:version_file
      (Printf.sprintf "mptcp-sim-store %d\n" format_version);
  { dir; stale = 0; corrupt = 0; evicted = 0 }

let record_path t ~hash =
  let shard = if String.length hash >= 2 then String.sub hash 0 2 else "xx" in
  Filename.concat (Filename.concat (objects_dir t.dir) shard) hash

(* Split a record file into (header-version, body, checksum), or None
   when the shape is wrong (truncated files land here). *)
let split_file content =
  match String.index_opt content '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub content 0 nl in
    match String.rindex_opt content '\n' with
    | None -> None
    | Some _ ->
      (* body is between the first newline and the "\nchecksum " tail *)
      let tail_key = "\nchecksum " in
      let rec find_last from acc =
        match String.index_from_opt content from '\n' with
        | None -> acc
        | Some i ->
          let acc =
            if
              i + String.length tail_key <= String.length content
              && String.sub content i (String.length tail_key) = tail_key
            then Some i
            else acc
          in
          find_last (i + 1) acc
      in
      (match (find_last 0 None, String.length header) with
      | None, _ -> None
      | Some tail_at, _ ->
        let version =
          let prefix = "mptcp-sim-record " in
          if String.length header > String.length prefix
             && String.sub header 0 (String.length prefix) = prefix
          then
            int_of_string_opt
              (String.sub header (String.length prefix)
                 (String.length header - String.length prefix))
          else None
        in
        let body = String.sub content (nl + 1) (tail_at - nl - 1) in
        let csum_line_start = tail_at + String.length tail_key in
        let csum =
          String.trim
            (String.sub content csum_line_start
               (String.length content - csum_line_start))
        in
        (match version with
        | None -> None
        | Some v -> Some (v, body, csum))))

type read_outcome = Ok_record of record | Stale | Corrupt | Missing

let read_record path =
  if not (Sys.file_exists path) then Missing
  else
    match split_file (read_file path) with
    | None -> Corrupt
    | Some (v, body, csum) ->
      if Digest.to_hex (Digest.string body) <> csum then Corrupt
      else if v <> format_version then Stale
      else (
        match record_of_body body with
        | r -> Ok_record r
        | exception _ -> Corrupt)

let lookup t ~hash =
  match read_record (record_path t ~hash) with
  | Ok_record r -> Some r
  | Stale ->
    t.stale <- t.stale + 1;
    None
  | Corrupt ->
    t.corrupt <- t.corrupt + 1;
    None
  | Missing -> None

let insert t r =
  let path = record_path t ~hash:r.hash in
  let dir = Filename.dirname path in
  mkdir_p dir;
  write_file_atomic ~dir ~path (file_of_record r)

(* Record files only: the shard directories also hold transient
   [.tmp.*] halves of atomic writes and advisory [*.lock] claims, and
   neither may be counted, GC-evicted or invalidated as a record. *)
let is_record_name name =
  String.length name > 0
  && name.[0] <> '.'
  && not (Filename.check_suffix name ".lock")

let iter_objects t f =
  let objs = objects_dir t.dir in
  if Sys.file_exists objs then
    Array.iter
      (fun shard ->
        let sdir = Filename.concat objs shard in
        if Sys.is_directory sdir then
          Array.iter
            (fun name ->
              if is_record_name name then f (Filename.concat sdir name))
            (Sys.readdir sdir))
      (Sys.readdir objs)

let count t =
  let n = ref 0 in
  iter_objects t (fun _ -> incr n);
  !n

let invalidate t =
  let n = ref 0 in
  iter_objects t (fun path ->
      Sys.remove path;
      incr n);
  !n

let bytes t =
  let acc = ref 0 in
  iter_objects t (fun path ->
      match Unix.stat path with
      | { Unix.st_size; _ } -> acc := !acc + st_size
      | exception Unix.Unix_error _ -> ());
  !acc

type gc_stats = {
  examined : int;
  evicted : int;
  evicted_bytes : int;
  kept : int;
  kept_bytes : int;
}

let gc t ~max_bytes =
  if max_bytes < 0 then invalid_arg "Store.gc: negative byte budget";
  let files = ref [] in
  iter_objects t (fun path ->
      match Unix.stat path with
      | { Unix.st_mtime; st_size; _ } ->
        files := (path, st_mtime, st_size) :: !files
      | exception Unix.Unix_error _ ->
        (* raced with a concurrent invalidate/gc; nothing to evict *)
        ());
  (* Newest first: the scan keeps records while they fit the budget, so
     whatever falls past it — the oldest mtimes — is evicted. *)
  let files =
    List.sort (fun (_, a, _) (_, b, _) -> Float.compare b a) !files
  in
  let examined = List.length files in
  let total = List.fold_left (fun acc (_, _, s) -> acc + s) 0 files in
  let budget = ref max_bytes in
  let evicted = ref 0 and evicted_bytes = ref 0 in
  List.iter
    (fun (path, _, size) ->
      if size <= !budget then budget := !budget - size
      else begin
        (* Removal is one unlink per record file, so readers always see
           a whole record or none; a concurrent re-insert wins its
           rename race and simply re-creates the hash afterwards. *)
        (try Sys.remove path with Sys_error _ -> ());
        incr evicted;
        evicted_bytes := !evicted_bytes + size
      end)
    files;
  t.evicted <- t.evicted + !evicted;
  {
    examined;
    evicted = !evicted;
    evicted_bytes = !evicted_bytes;
    kept = examined - !evicted;
    kept_bytes = total - !evicted_bytes;
  }

let stale_seen t = t.stale
let corrupt_seen t = t.corrupt
let evicted_total (t : t) = t.evicted

(* --- advisory in-flight claims --- *)

type claim = { lock_path : string; mutable held : bool }

let claim_path t ~hash = record_path t ~hash ^ ".lock"

let release_claim c =
  if c.held then begin
    c.held <- false;
    try Sys.remove c.lock_path with Sys_error _ -> ()
  end

(* utimes with both times 0.0 sets atime and mtime to now.  Racing a
   release (lock already unlinked) is a caught ENOENT, not a hazard. *)
let refresh_claim c =
  if c.held then
    try Unix.utimes c.lock_path 0. 0. with Unix.Unix_error _ -> ()

(* O_CREAT|O_EXCL is the atomic test-and-set; the file body (pid +
   creation time) is for humans debugging a stuck store, the mtime is
   what staleness reads. *)
let try_claim ?(stale_after_s = 120.) t ~hash =
  let lock_path = claim_path t ~hash in
  mkdir_p (Filename.dirname lock_path);
  let attempt () =
    match
      Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
        0o644
    with
    | fd ->
      let body =
        Printf.sprintf "pid %d at %.6f\n" (Unix.getpid ())
          (Unix.gettimeofday ())
      in
      ignore (Unix.write_substring fd body 0 (String.length body));
      Unix.close fd;
      Some { lock_path; held = true }
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> None
  in
  match attempt () with
  | Some c -> `Claimed c
  | None -> (
    (* Held.  A holder that died stops refreshing the file; once its
       mtime is older than the staleness horizon, take it over. *)
    match Unix.stat lock_path with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
      (* released between our two looks; retry the create once *)
      match attempt () with Some c -> `Claimed c | None -> `Busy)
    | { Unix.st_mtime; _ } ->
      if Unix.gettimeofday () -. st_mtime <= stale_after_s then `Busy
      else begin
        (try Sys.remove lock_path with Sys_error _ -> ());
        match attempt () with Some c -> `Claimed c | None -> `Busy
      end)

let pp_record fmt r =
  Format.fprintf fmt "@[<v>%s %s (cc=%s seed=%d, %d paths)@,"
    (Core.Canon.short r.hash) r.label r.cc r.seed r.paths;
  Format.fprintf fmt "tail %.1f / optimal %.1f Mbps, delivered %d bytes@,"
    r.tail_mbps r.opt_mbps r.delivered_bytes;
  List.iter
    (fun (tag, v) -> Format.fprintf fmt "  path %d tail: %.1f Mbps@," tag v)
    r.per_path_mbps;
  (match r.audit with
  | None -> ()
  | Some { violations; checks } ->
    Format.fprintf fmt "audit: %d violations / %d checks@," violations checks);
  Format.fprintf fmt "@]"
