type t = Atom of string | List of t list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Hand-rolled reader: atoms are runs of non-delimiter characters,
   [;] comments run to end of line.  No quoting — scenario files need
   none, and the flat grammar keeps failure messages obvious. *)
let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let line = ref 1 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () =
    (if !pos < n && s.[!pos] = '\n' then incr line);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !pos < n && s.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | Some _ | None -> ()
  in
  let is_delim = function
    | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> true
    | _ -> false
  in
  let atom () =
    let start = !pos in
    while !pos < n && not (is_delim s.[!pos]) do
      advance ()
    done;
    Atom (String.sub s start (!pos - start))
  in
  let rec expr () =
    skip_ws ();
    match peek () with
    | None -> fail "line %d: unexpected end of input" !line
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | None -> fail "line %d: unclosed '('" !line
        | Some ')' -> advance ()
        | Some _ ->
          items := expr () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> fail "line %d: unexpected ')'" !line
    | Some _ -> atom ()
  in
  let exprs = ref [] in
  skip_ws ();
  while peek () <> None do
    exprs := expr () :: !exprs;
    skip_ws ()
  done;
  List.rev !exprs

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try parse_string s
  with Parse_error msg -> fail "%s: %s" path msg

let rec pp fmt = function
  | Atom a -> Format.pp_print_string fmt a
  | List items ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
      items

let to_string t = Format.asprintf "%a" pp t

(* --- accessors used by the file formats --- *)

let atom_exn = function
  | Atom a -> a
  | List _ as l -> fail "expected an atom, got %s" (to_string (List [ l ]))

let int_exn s =
  match int_of_string_opt (atom_exn s) with
  | Some v -> v
  | None -> fail "expected an integer, got %s" (to_string s)

let float_exn s =
  match float_of_string_opt (atom_exn s) with
  | Some v -> v
  | None -> fail "expected a number, got %s" (to_string s)

let field name = function
  | List (Atom head :: rest) when head = name -> Some rest
  | Atom _ | List _ -> None

let find_field name items = List.find_map (field name) items
