open Sexp

let time_of_s x =
  if x < 0.0 || not (Float.is_finite x) then fail "bad time %g s" x
  else Engine.Time.of_float_s x

(* A rate is written [(mbps X)] (decimal megabits) or [(bps N)]. *)
let rate_exn s =
  let r =
    match s with
    | List [ Atom "mbps"; v ] -> int_of_float (float_exn v *. 1e6)
    | List [ Atom "bps"; v ] -> int_exn v
    | _ -> fail "expected (mbps X) or (bps N), got %s" (to_string s)
  in
  if r <= 0 then fail "rate must be positive, got %s" (to_string s);
  r

(* A duration is written [(ms X)], [(us X)] or [(s X)]. *)
let duration_exn s =
  match s with
  | List [ Atom "ms"; v ] -> time_of_s (float_exn v /. 1e3)
  | List [ Atom "us"; v ] -> time_of_s (float_exn v /. 1e6)
  | List [ Atom "s"; v ] -> time_of_s (float_exn v)
  | _ -> fail "expected (ms X), (us X) or (s X), got %s" (to_string s)

(* --- topology files ---

   (topology
    (nodes a p1 p2 z)
    (links
     (a p1 (mbps 10) (delay-ms 5))
     (p1 z (mbps 10) (delay-ms 5))))  *)

let topology sexps =
  let body =
    match sexps with
    | [ List (Atom "topology" :: body) ] -> body
    | _ -> fail "expected a single (topology ...) form"
  in
  let b = Netgraph.Topology.builder () in
  let ids = Hashtbl.create 16 in
  (match find_field "nodes" body with
  | Some nodes ->
    List.iter
      (fun n ->
        let name = atom_exn n in
        Hashtbl.replace ids name (Netgraph.Topology.add_node b name))
      nodes
  | None -> fail "topology: missing (nodes ...)");
  let node name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> fail "topology: unknown node %s" name
  in
  (match find_field "links" body with
  | Some links ->
    List.iter
      (fun l ->
        match l with
        | List (u :: v :: attrs) ->
          let capacity_bps =
            match find_field "mbps" attrs with
            | Some [ x ] -> int_of_float (float_exn x *. 1e6)
            | Some _ | None -> (
              match find_field "bps" attrs with
              | Some [ x ] -> int_exn x
              | Some _ | None ->
                fail "link %s-%s: missing (mbps X) or (bps N)" (atom_exn u)
                  (atom_exn v))
          in
          let delay =
            match find_field "delay-ms" attrs with
            | Some [ x ] -> time_of_s (float_exn x /. 1e3)
            | Some _ | None -> (
              match find_field "delay-us" attrs with
              | Some [ x ] -> time_of_s (float_exn x /. 1e6)
              | Some _ | None ->
                fail "link %s-%s: missing (delay-ms X) or (delay-us X)"
                  (atom_exn u) (atom_exn v))
          in
          ignore
            (Netgraph.Topology.add_link b ~u:(node (atom_exn u))
               ~v:(node (atom_exn v)) ~capacity_bps ~delay)
        | _ -> fail "topology: malformed link %s" (to_string l))
      links
  | None -> fail "topology: missing (links ...)");
  Netgraph.Topology.build b

let load_topology path = topology (Sexp.load path)

(* --- event forms ---

   (at-s 3.6 (link-down a p1))
   (at-s 2 (capacity-ramp a p2 (mbps 40) (over-s 2) (steps 8)))
   (at-s 1 (traffic-start n1 z (tag 9) (mbps 20) (stop-s 8)))  *)

let link_ref topo u v =
  let id name =
    try Netgraph.Topology.node_id topo name
    with Not_found -> fail "unknown node %s" name
  in
  match Netgraph.Topology.find_link topo ~u:(id u) ~v:(id v) with
  | Some l -> l.Netgraph.Topology.id
  | None -> fail "no link between %s and %s" u v

let action topo s =
  match s with
  | List [ Atom "link-down"; u; v ] ->
    Event.Link_down { link = link_ref topo (atom_exn u) (atom_exn v) }
  | List [ Atom "link-up"; u; v ] ->
    Event.Link_up { link = link_ref topo (atom_exn u) (atom_exn v) }
  | List [ Atom "capacity-set"; u; v; rate ] ->
    Event.Capacity_set
      { link = link_ref topo (atom_exn u) (atom_exn v);
        rate_bps = rate_exn rate }
  | List (Atom "capacity-ramp" :: u :: v :: rate :: attrs) ->
    let over =
      match find_field "over-s" attrs with
      | Some [ x ] -> time_of_s (float_exn x)
      | Some _ | None -> fail "capacity-ramp: missing (over-s X)"
    in
    let steps =
      match find_field "steps" attrs with
      | Some [ x ] -> int_exn x
      | Some _ | None -> 8
    in
    Event.Capacity_ramp
      { link = link_ref topo (atom_exn u) (atom_exn v);
        to_bps = rate_exn rate; over; steps }
  | List [ Atom "delay-set"; u; v; d ] ->
    Event.Delay_set
      { link = link_ref topo (atom_exn u) (atom_exn v);
        delay = duration_exn d }
  | List [ Atom "loss-set"; u; v; p ] ->
    Event.Loss_set
      { link = link_ref topo (atom_exn u) (atom_exn v); loss = float_exn p }
  | List [ Atom "subflow-close"; i ] ->
    Event.Subflow_close { subflow = int_exn i }
  | List [ Atom "subflow-add"; i ] -> Event.Subflow_add { subflow = int_exn i }
  | List (Atom "traffic-start" :: src :: dst :: attrs) ->
    let node name =
      try Netgraph.Topology.node_id topo name
      with Not_found -> fail "unknown node %s" name
    in
    let tag =
      match find_field "tag" attrs with
      | Some [ x ] -> int_exn x
      | Some _ | None -> fail "traffic-start: missing (tag N)"
    in
    let rate_bps =
      match find_field "mbps" attrs with
      | Some [ x ] -> int_of_float (float_exn x *. 1e6)
      | Some _ | None -> fail "traffic-start: missing (mbps X)"
    in
    let stop_at =
      match find_field "stop-s" attrs with
      | Some [ x ] -> Some (time_of_s (float_exn x))
      | Some _ | None -> None
    in
    Event.Traffic_start
      { src = node (atom_exn src); dst = node (atom_exn dst); tag; rate_bps;
        stop_at }
  | List (Atom "background" :: src :: dst :: attrs) ->
    (* (background n1 z (count 100) (flows 10) (cc reno) (rtt-ms 20))
       (background n1 z (count 50) (mbps 1.2) (rtt-ms 30))   ; CBR *)
    let node name =
      try Netgraph.Topology.node_id topo name
      with Not_found -> fail "unknown node %s" name
    in
    let classes =
      match find_field "count" attrs with
      | Some [ x ] -> int_exn x
      | Some _ | None -> fail "background: missing (count N)"
    in
    let flows =
      match find_field "flows" attrs with
      | Some [ x ] -> int_exn x
      | Some _ | None -> 1
    in
    let cc =
      match find_field "cc" attrs with
      | Some [ x ] -> (
        match atom_exn x with
        | "cbr" -> None
        | name -> (
          match Mptcp.Algorithm.of_string name with
          | Some a -> Some a
          | None -> fail "background: unknown congestion control %s" name))
      | Some _ -> fail "background: (cc ...) takes one atom"
      | None -> None
    in
    let rate_bps =
      match find_field "mbps" attrs with
      | Some [ x ] -> int_of_float (float_exn x *. 1e6)
      | Some _ -> fail "background: (mbps ...) takes one value"
      | None ->
        if cc = None then fail "background: CBR classes need (mbps X)" else 0
    in
    let rtt =
      match find_field "rtt-ms" attrs with
      | Some [ x ] -> time_of_s (float_exn x /. 1e3)
      | Some _ | None -> fail "background: missing (rtt-ms X)"
    in
    Event.Background_start
      { src = node (atom_exn src); dst = node (atom_exn dst); classes; flows;
        cc; rate_bps; rtt }
  | _ -> fail "unknown event action %s" (to_string s)

let event topo s =
  match s with
  | List [ Atom "at-s"; when_; act ] ->
    { Event.at = time_of_s (float_exn when_); action = action topo act }
  | _ -> fail "expected (at-s T (action ...)), got %s" (to_string s)

let events topo sexps = List.map (event topo) sexps
