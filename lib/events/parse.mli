(** Readers for the S-expression scenario file formats.

    Topology files describe the static network:
    {v
    (topology
     (nodes a p1 p2 z)
     (links
      (a p1 (mbps 10) (delay-ms 5))
      (p1 z  (mbps 10) (delay-ms 5))))
    v}

    Event forms give a fire time and an action, with links referenced by
    their endpoint node names:
    {v
    (at-s 3.6 (link-down a p1))
    (at-s 2   (capacity-ramp a p2 (mbps 40) (over-s 2) (steps 8)))
    (at-s 1   (traffic-start n1 z (tag 9) (mbps 20) (stop-s 8)))
    v}

    All parse errors raise {!Sexp.Parse_error} with a description of the
    offending form.  The experiment-file format that wraps these (paths,
    congestion control, events) lives in [Core.Expfile], which owns the
    scenario dependency. *)

val topology : Sexp.t list -> Netgraph.Topology.t
val load_topology : string -> Netgraph.Topology.t

val action : Netgraph.Topology.t -> Sexp.t -> Event.action
val event : Netgraph.Topology.t -> Sexp.t -> Event.t

val events : Netgraph.Topology.t -> Sexp.t list -> Event.t list
(** One {!event} per form. *)

val rate_exn : Sexp.t -> int
(** [(mbps X)] or [(bps N)], in bits per second. *)

val duration_exn : Sexp.t -> Engine.Time.t
(** [(ms X)], [(us X)] or [(s X)]. *)

val time_of_s : float -> Engine.Time.t
(** Seconds to simulation time; rejects negatives and non-finite. *)
