type action =
  | Link_down of { link : int }
  | Link_up of { link : int }
  | Capacity_set of { link : int; rate_bps : int }
  | Capacity_ramp of {
      link : int;
      to_bps : int;
      over : Engine.Time.t;
      steps : int;
    }
  | Delay_set of { link : int; delay : Engine.Time.t }
  | Loss_set of { link : int; loss : float }
  | Subflow_close of { subflow : int }
  | Subflow_add of { subflow : int }
  | Traffic_start of {
      src : int;
      dst : int;
      tag : Packet.tag;
      rate_bps : int;
      stop_at : Engine.Time.t option;
    }
  | Background_start of {
      src : int;
      dst : int;
      classes : int;
      flows : int;
      cc : Mptcp.Algorithm.t option;
      rate_bps : int;
      rtt : Engine.Time.t;
    }

type t = { at : Engine.Time.t; action : action }

let at action ~at = { at; action }

let pp_action topo fmt action =
  let link_name lid =
    let l = Netgraph.Topology.link topo lid in
    Printf.sprintf "%s-%s"
      (Netgraph.Topology.node_name topo l.Netgraph.Topology.u)
      (Netgraph.Topology.node_name topo l.Netgraph.Topology.v)
  in
  match action with
  | Link_down { link } -> Format.fprintf fmt "link-down %s" (link_name link)
  | Link_up { link } -> Format.fprintf fmt "link-up %s" (link_name link)
  | Capacity_set { link; rate_bps } ->
    Format.fprintf fmt "capacity-set %s %.1f Mbps" (link_name link)
      (float_of_int rate_bps /. 1e6)
  | Capacity_ramp { link; to_bps; over; steps } ->
    Format.fprintf fmt "capacity-ramp %s to %.1f Mbps over %a in %d steps"
      (link_name link)
      (float_of_int to_bps /. 1e6)
      Engine.Time.pp over steps
  | Delay_set { link; delay } ->
    Format.fprintf fmt "delay-set %s %a" (link_name link) Engine.Time.pp delay
  | Loss_set { link; loss } ->
    Format.fprintf fmt "loss-set %s %.3f" (link_name link) loss
  | Subflow_close { subflow } -> Format.fprintf fmt "subflow-close %d" subflow
  | Subflow_add { subflow } -> Format.fprintf fmt "subflow-add %d" subflow
  | Traffic_start { src; dst; tag; rate_bps; stop_at } ->
    Format.fprintf fmt "traffic-start %s->%s tag=%d %.1f Mbps%s"
      (Netgraph.Topology.node_name topo src)
      (Netgraph.Topology.node_name topo dst)
      tag
      (float_of_int rate_bps /. 1e6)
      (match stop_at with
      | Some t -> Printf.sprintf " until %s" (Engine.Time.to_string t)
      | None -> "")
  | Background_start { src; dst; classes; flows; cc; rate_bps; rtt } ->
    Format.fprintf fmt "background %s->%s %dx%d %s rtt=%a"
      (Netgraph.Topology.node_name topo src)
      (Netgraph.Topology.node_name topo dst)
      classes flows
      (match cc with
      | Some a -> Mptcp.Algorithm.name a
      | None -> Printf.sprintf "cbr %.2f Mbps" (float_of_int rate_bps /. 1e6))
      Engine.Time.pp rtt

let pp topo fmt t =
  Format.fprintf fmt "@[at %a: %a@]" Engine.Time.pp t.at (pp_action topo)
    t.action

(* --- validation --- *)

let validate ~topo ?(num_subflows = 0) ?(reserved_tags = []) events =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let check_link lid what =
    if lid < 0 || lid >= Netgraph.Topology.num_links topo then
      err "%s: link id %d out of range" what lid
  in
  let check_node nid what =
    if nid < 0 || nid >= Netgraph.Topology.num_nodes topo then
      err "%s: node id %d out of range" what nid
  in
  List.iter
    (fun { at = when_; action } ->
      if Engine.Time.( < ) when_ Engine.Time.zero then
        err "event before t=0";
      match action with
      | Link_down { link } -> check_link link "link-down"
      | Link_up { link } -> check_link link "link-up"
      | Capacity_set { link; rate_bps } ->
        check_link link "capacity-set";
        if rate_bps <= 0 then err "capacity-set: rate must be positive";
        if
          link >= 0
          && link < Netgraph.Topology.num_links topo
          && rate_bps
             > (Netgraph.Topology.link topo link).Netgraph.Topology.capacity_bps
        then
          (* Raising a link above its declared capacity would invalidate
             the static LP bound the audit checks against. *)
          err "capacity-set: %d bps exceeds link %d's declared capacity"
            rate_bps link
      | Capacity_ramp { link; to_bps; over; steps } ->
        check_link link "capacity-ramp";
        if to_bps <= 0 then err "capacity-ramp: target must be positive";
        if steps < 1 then err "capacity-ramp: steps must be >= 1";
        if Engine.Time.( <= ) over Engine.Time.zero then
          err "capacity-ramp: duration must be positive";
        if
          link >= 0
          && link < Netgraph.Topology.num_links topo
          && to_bps
             > (Netgraph.Topology.link topo link).Netgraph.Topology.capacity_bps
        then
          err "capacity-ramp: %d bps exceeds link %d's declared capacity"
            to_bps link
      | Delay_set { link; delay } ->
        check_link link "delay-set";
        if Engine.Time.( < ) delay Engine.Time.zero then
          err "delay-set: negative delay"
      | Loss_set { link; loss } ->
        check_link link "loss-set";
        if loss < 0.0 || loss > 1.0 then
          err "loss-set: probability %g outside [0, 1]" loss
      | Subflow_close { subflow } | Subflow_add { subflow } ->
        if subflow < 0 || subflow >= num_subflows then
          err "subflow event: index %d outside the %d configured subflows"
            subflow num_subflows
      | Traffic_start { src; dst; tag; rate_bps; stop_at } ->
        check_node src "traffic-start source";
        check_node dst "traffic-start destination";
        if src = dst then err "traffic-start: source equals destination";
        if rate_bps <= 0 then err "traffic-start: rate must be positive";
        if List.mem tag reserved_tags then
          err "traffic-start: tag %d collides with a subflow tag" tag;
        (match stop_at with
        | Some stop when Engine.Time.( <= ) stop when_ ->
          err "traffic-start: stop time precedes start"
        | Some _ | None -> ())
      | Background_start { src; dst; classes; flows; cc; rate_bps; rtt } ->
        check_node src "background source";
        check_node dst "background destination";
        if src = dst then err "background: source equals destination";
        if classes < 1 then err "background: count must be >= 1";
        if flows < 1 then err "background: flows must be >= 1";
        if Engine.Time.( <= ) rtt Engine.Time.zero then
          err "background: rtt must be positive";
        if cc = None && rate_bps <= 0 then
          err "background: constant-rate classes need a positive rate")
    events;
  List.rev !errors

(* --- application --- *)

let apply_capacity_ramp ~sched ~net ~link ~to_bps ~over ~steps =
  (* Linear interpolation from the rate at ramp start, one re-rate per
     step, the last landing exactly on [to_bps] at [start + over]. *)
  let from_bps =
    Netsim.Linkq.rate_bps (Netsim.Net.linkq net ~link ~dir:Netsim.Net.Fwd)
  in
  let start = Engine.Sched.now sched in
  for k = 1 to steps do
    let frac = float_of_int k /. float_of_int steps in
    let rate =
      from_bps + int_of_float (frac *. float_of_int (to_bps - from_bps))
    in
    let rate = if k = steps then to_bps else max 1 rate in
    ignore
      (Engine.Sched.at sched
         (Engine.Time.add start (Engine.Time.scale over frac))
         (fun () ->
           if Netsim.Net.link_is_up net ~link then
             Netsim.Net.set_link_rate net ~link rate))
  done

let apply ~sched ~net ?conn action =
  match action with
  | Link_down { link } -> Netsim.Net.set_link_up net ~link false
  | Link_up { link } -> Netsim.Net.set_link_up net ~link true
  | Capacity_set { link; rate_bps } -> Netsim.Net.set_link_rate net ~link rate_bps
  | Capacity_ramp { link; to_bps; over; steps } ->
    apply_capacity_ramp ~sched ~net ~link ~to_bps ~over ~steps
  | Delay_set { link; delay } -> Netsim.Net.set_link_delay net ~link delay
  | Loss_set { link; loss } -> Netsim.Net.set_link_loss net ~link loss
  | Subflow_close { subflow } -> (
    match conn with
    | Some c -> Mptcp.Connection.deactivate_subflow c subflow
    | None -> invalid_arg "Event.apply: subflow event without a connection")
  | Subflow_add { subflow } -> (
    match conn with
    | Some c -> Mptcp.Connection.reactivate_subflow c subflow
    | None -> invalid_arg "Event.apply: subflow event without a connection")
  | Traffic_start _ ->
    (* Traffic sources are created at arm time (they need route
       installation before the run); nothing to do at fire time. *)
    ()
  | Background_start _ ->
    (* Fluid background fields are compiled into one ODE driver per run
       by the scenario layer (Core.Scenario), which owns the coarse-tick
       coupling; the event is pure declaration here. *)
    ()

let arm ~sched ~net ?conn events =
  let topo = Netsim.Net.topology net in
  let sources = ref [] in
  List.iter
    (fun { at = when_; action } ->
      match action with
      | Traffic_start { src; dst; tag; rate_bps; stop_at } ->
        (* Route the cross-traffic along the current shortest path and
           let the source itself start at the scheduled time. *)
        (match
           Netgraph.Shortest.shortest_path topo ~src ~dst
             ~weight:Netgraph.Shortest.delay_ns
         with
        | Some path -> Netsim.Net.install_path net ~tag path
        | None -> invalid_arg "Event.arm: no route for traffic-start");
        sources :=
          Netsim.Traffic.cbr ~net ~src ~dst ~tag ~rate_bps ~start:when_
            ?stop_at ()
          :: !sources
      | Background_start _ ->
        (* Declarative: the scenario layer compiles these into the
           hybrid fluid driver before the run starts. *)
        ()
      | _ ->
        ignore
          (Engine.Sched.at sched when_ (fun () ->
               apply ~sched ~net ?conn action)))
    events;
  List.rev !sources
