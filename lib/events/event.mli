(** Timed scenario events: the dynamic regimes — failover, handover,
    capacity ramps, lossy links, subflow churn, cross-traffic — that the
    paper's static grid leaves out, scripted as data and applied through
    the timing wheel.

    Link references are topology link ids, subflow references are the
    connection's subflow indices (path-list order).  Events are pure
    data until {!arm} schedules them on a concrete simulation. *)

type action =
  | Link_down of { link : int }
      (** cut both directions: queued and in-flight packets are lost *)
  | Link_up of { link : int }  (** restore a previously cut link *)
  | Capacity_set of { link : int; rate_bps : int }
      (** re-rate both directions; in-transmission packets finish at the
          old rate *)
  | Capacity_ramp of {
      link : int;
      to_bps : int;
      over : Engine.Time.t;
      steps : int;
    }
      (** linear ramp from the rate at fire time to [to_bps], applied as
          [steps] discrete re-rates over [over] *)
  | Delay_set of { link : int; delay : Engine.Time.t }
      (** change both directions' propagation delay (mobility/handover);
          a decrease never reorders a jitter-free link *)
  | Loss_set of { link : int; loss : float }
      (** independent per-packet random loss probability (lossy regime) *)
  | Subflow_close of { subflow : int }
      (** declare the subflow's path dead, as
          {!Mptcp.Connection.deactivate_subflow} *)
  | Subflow_add of { subflow : int }
      (** (re)activate a configured subflow, as
          {!Mptcp.Connection.reactivate_subflow} *)
  | Traffic_start of {
      src : int;
      dst : int;
      tag : Packet.tag;
      rate_bps : int;
      stop_at : Engine.Time.t option;
    }
      (** constant-bit-rate cross-traffic along the shortest path,
          starting at the event time *)
  | Background_start of {
      src : int;
      dst : int;
      classes : int;  (** fluid flow classes to create *)
      flows : int;  (** identical flows aggregated per class *)
      cc : Mptcp.Algorithm.t option;
          (** fluid congestion control per class, or [None] for
              constant-rate (CBR-style) classes *)
      rate_bps : int;  (** per-flow rate, constant-rate classes only *)
      rtt : Engine.Time.t;  (** mean propagation RTT of the classes *)
    }
      (** declare [classes] fluid background flow classes along the
          shortest path, active from the event time.  Unlike every
          other action this one never fires through the scheduler:
          {!Core.Scenario} compiles all declarations into one hybrid
          fluid field whose coarse-tick driver couples to the shared
          link queues ({!Fluid.Background.Driver}); {!arm} and {!apply}
          treat it as a no-op. *)

type t = { at : Engine.Time.t; action : action }

val at : action -> at:Engine.Time.t -> t

val validate :
  topo:Netgraph.Topology.t ->
  ?num_subflows:int ->
  ?reserved_tags:Packet.tag list ->
  t list ->
  string list
(** Static checks before a run: link/node/subflow references in range,
    probabilities in [0, 1], capacity targets not above the link's
    declared capacity (so the static LP stays a valid upper bound for
    the audit), traffic tags disjoint from [reserved_tags].  Returns
    human-readable errors; empty means valid. *)

val apply :
  sched:Engine.Sched.t ->
  net:Netsim.Net.t ->
  ?conn:Mptcp.Connection.t ->
  action ->
  unit
(** Apply one action now.  Subflow actions raise [Invalid_argument]
    without [conn]; [Traffic_start] is a no-op here (sources are
    created by {!arm}). *)

val arm :
  sched:Engine.Sched.t ->
  net:Netsim.Net.t ->
  ?conn:Mptcp.Connection.t ->
  t list ->
  Netsim.Traffic.t list
(** Schedule every event.  Traffic sources are created immediately
    (routes installed along the current shortest path, emission starting
    at the event time) and returned so callers can read their counters;
    every other action fires through the scheduler at its time. *)

val pp : Netgraph.Topology.t -> Format.formatter -> t -> unit
val pp_action : Netgraph.Topology.t -> Format.formatter -> action -> unit
