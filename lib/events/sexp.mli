(** Minimal S-expression reader for the scenario file formats.

    The container ships no sexp library, and the topology/experiment
    grammar is flat enough that a ~60-line reader with line-numbered
    errors beats a dependency: atoms are runs of non-delimiter
    characters, [;] comments run to end of line, no quoting. *)

type t = Atom of string | List of t list

exception Parse_error of string

val parse_string : string -> t list
(** All top-level expressions in the string.  Raises {!Parse_error}
    with a line number on malformed input. *)

val load : string -> t list
(** {!parse_string} over a file's contents. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Accessors}

    Small helpers the file formats share; all raise {!Parse_error} on
    shape mismatches so loaders report the offending form. *)

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Parse_error} with the formatted message. *)

val atom_exn : t -> string
val int_exn : t -> int
val float_exn : t -> float

val field : string -> t -> t list option
(** [field name s] is [Some rest] when [s] is [(name rest...)]. *)

val find_field : string -> t list -> t list option
(** First matching {!field} among the items. *)
