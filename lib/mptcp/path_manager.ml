type t = (Packet.tag * Netgraph.Path.t) list

let tag_paths ?(first_tag = 1) paths =
  List.mapi (fun i p -> (first_tag + i, p)) paths

let ndiffports topo ~src ~dst ~subflows ?(weight = Netgraph.Shortest.delay_ns)
    () =
  if subflows < 1 then invalid_arg "Path_manager.ndiffports: subflows < 1";
  let paths = Netgraph.Kshortest.yen topo ~src ~dst ~k:subflows ~weight in
  tag_paths paths

let fullmesh topo ~src ~dst ?(weight = Netgraph.Shortest.delay_ns) () =
  if src = dst then invalid_arg "Path_manager.fullmesh: src = dst";
  let src_links = List.map fst (Netgraph.Topology.neighbours topo src) in
  let dst_links = List.map fst (Netgraph.Topology.neighbours topo dst) in
  let paths =
    List.concat_map
      (fun ls ->
        List.filter_map
          (fun ld ->
            (* Force the exit and entry interfaces by banning the other
               access links of each host. *)
            let banned lid =
              (List.mem lid src_links && lid <> ls)
              || (List.mem lid dst_links && lid <> ld)
            in
            Netgraph.Shortest.shortest_path topo ~src ~dst ~weight
              ~avoid_links:banned)
          dst_links)
      src_links
  in
  let deduped =
    List.fold_left
      (fun acc p ->
        if List.exists (Netgraph.Path.equal p) acc then acc else p :: acc)
      [] paths
    |> List.rev
  in
  let sorted =
    List.sort
      (fun p q ->
        compare
          (Netgraph.Kshortest.path_weight topo weight p)
          (Netgraph.Kshortest.path_weight topo weight q))
      deduped
  in
  tag_paths sorted

let with_default t ~default_tag =
  let chosen = List.assoc default_tag t in
  (default_tag, chosen)
  :: List.filter (fun (tag, _) -> tag <> default_tag) t

let install net t =
  List.iter (fun (tag, path) -> Netsim.Net.install_path net ~tag path) t

(* --- liveness overlay --- *)

module Liveness = struct
  type nonrec pm = t

  type t = {
    tags : Packet.tag array;
    active : bool array;
    mutable churn : int;
    mutable on_change : (tag:Packet.tag -> active:bool -> unit) option;
  }

  let create (pm : pm) =
    {
      tags = Array.of_list (List.map fst pm);
      active = Array.make (List.length pm) true;
      churn = 0;
      on_change = None;
    }

  let index t tag =
    let n = Array.length t.tags in
    let rec go i =
      if i >= n then invalid_arg "Path_manager.Liveness: unknown tag"
      else if t.tags.(i) = tag then i
      else go (i + 1)
    in
    go 0

  let is_active t ~tag = t.active.(index t tag)

  let active_count t =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.active

  let set t ~tag v =
    let i = index t tag in
    if t.active.(i) = v then false
    else begin
      t.active.(i) <- v;
      t.churn <- t.churn + 1;
      (match t.on_change with
      | None -> ()
      | Some f -> f ~tag ~active:v);
      true
    end

  let deactivate t ~tag = set t ~tag false
  let reactivate t ~tag = set t ~tag true
  let churn t = t.churn
  let set_on_change t f = t.on_change <- f
end

let pp topo fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (tag, path) ->
      Format.fprintf fmt "%ssubflow tag=%d%s: %a@,"
        (if i = 0 then "" else "")
        tag
        (if i = 0 then " (default)" else "")
        (Netgraph.Path.pp topo) path)
    t;
  Format.fprintf fmt "@]"
