open Tcp

let factory (ctx : Cc.ctx) =
  let on_ack ~acked =
    if not (Cc.slow_start_ack ctx ~acked) then begin
      let n = Coupled.active_count (ctx.Cc.group ()) in
      let gain = 1.0 /. Float.sqrt (float_of_int (max 1 n)) in
      let w = ctx.Cc.get_cwnd () in
      let acked_mss = float_of_int acked /. float_of_int ctx.Cc.mss in
      ctx.Cc.set_cwnd (w +. (gain *. acked_mss /. w))
    end
  in
  {
    Cc.name = "ewtcp";
    on_ack;
    on_loss = (fun () -> Coupled.halve_on_loss ctx);
    on_rto = (fun () -> Coupled.collapse_on_rto ctx);
  }
